lib/support/gensym.ml: Atomic Printf
