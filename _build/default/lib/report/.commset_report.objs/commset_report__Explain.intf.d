lib/report/explain.mli: Commset_pdg Commset_pipeline Commset_support Loc
