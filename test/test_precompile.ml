(** Differential tests: the prepared-program engine ({!Precompile}) must
    be observationally identical to the reference interpreter
    ({!Interp}) — outputs, total cycles (bit-exact), diagnostics, fuel
    exhaustion points, final globals, and (on the instrumented path) the
    complete hook event stream — across every bundled workload, every
    annotation variant, and a set of handwritten corner cases. *)

module L = Commset_lang
module Ir = Commset_ir.Ir
module R = Commset_runtime
module W = Commset_workloads.Workload
module Registry = Commset_workloads.Registry
open Commset_support

let check = Alcotest.check

let compile src =
  let ast = L.Parser.parse_program ~file:"<diff>" src in
  let _ = L.Typecheck.check ~externs:R.Builtins.extern_sigs ast in
  Commset_ir.Lower.lower_program ast

(* ---- event-stream observers ---------------------------------------- *)

let fbits (f : float) = Int64.to_int (Int64.bits_of_float f)

let rec enc_value = function
  | R.Value.Vint n -> "i" ^ string_of_int n
  | R.Value.Vfloat f -> "f" ^ string_of_int (fbits f)
  | R.Value.Vbool b -> "b" ^ string_of_bool b
  | R.Value.Vstring s -> "s" ^ String.escaped s
  | R.Value.Varray a ->
      "[" ^ String.concat ";" (List.map enc_value (Array.to_list a)) ^ "]"

let enc_actuals actuals =
  String.concat "|"
    (List.map
       (fun (set, vs) -> set ^ "=" ^ String.concat "," (List.map enc_value vs))
       actuals)

(** Record every hook event into [sink] as a canonical string. Exact but
    allocation-heavy: for the big workloads use {!hashing_hooks}. *)
let recording_hooks sink =
  let h = R.Interp.null_hooks () in
  let add s = sink := s :: !sink in
  h.R.Interp.on_instr <- (fun f i -> add (Printf.sprintf "I:%s:%d" f.Ir.fname i.Ir.iid));
  h.R.Interp.on_block <- (fun f l -> add (Printf.sprintf "B:%s:%d" f.Ir.fname l));
  h.R.Interp.on_base_cost <- (fun c -> add (Printf.sprintf "C:%d" (fbits c)));
  h.R.Interp.on_builtin <-
    (fun bi c -> add (Printf.sprintf "X:%s:%d" bi.R.Builtins.name (fbits c)));
  h.R.Interp.on_output <- (fun s -> add ("O:" ^ String.escaped s));
  h.R.Interp.on_enter_func <- (fun f -> add ("E:" ^ f.Ir.fname));
  h.R.Interp.on_exit_func <- (fun f -> add ("F:" ^ f.Ir.fname));
  h.R.Interp.on_region_enter <-
    (fun f r actuals regs ->
      add
        (Printf.sprintf "R:%s:%d:%s:#%d" f.Ir.fname r.Ir.rid (enc_actuals actuals)
           (Array.length regs)));
  h.R.Interp.on_call_actuals <-
    (fun i argv en ->
      add
        (Printf.sprintf "A:%d:%s:%s" i.Ir.iid
           (String.concat "," (List.map enc_value argv))
           (String.concat "|"
              (List.map (fun (blk, sets) -> blk ^ "{" ^ enc_actuals sets ^ "}") en))));
  h

(** Fold every hook event into a running hash + count, without storing
    the stream. Identical streams give identical (hash, count); a
    divergence at any event perturbs all later mixes. *)
let hashing_hooks acc count =
  let h = R.Interp.null_hooks () in
  let mix x = acc := (!acc * 31) + x in
  let mixh v = mix (Hashtbl.hash v) in
  let ev tag =
    incr count;
    mix tag
  in
  h.R.Interp.on_instr <-
    (fun f i ->
      ev 1;
      mixh f.Ir.fname;
      mix i.Ir.iid);
  h.R.Interp.on_block <-
    (fun f l ->
      ev 2;
      mixh f.Ir.fname;
      mix l);
  h.R.Interp.on_base_cost <-
    (fun c ->
      ev 3;
      mix (fbits c));
  h.R.Interp.on_builtin <-
    (fun bi c ->
      ev 4;
      mixh bi.R.Builtins.name;
      mix (fbits c));
  h.R.Interp.on_output <-
    (fun s ->
      ev 5;
      mixh s);
  h.R.Interp.on_enter_func <-
    (fun f ->
      ev 6;
      mixh f.Ir.fname);
  h.R.Interp.on_exit_func <-
    (fun f ->
      ev 7;
      mixh f.Ir.fname);
  h.R.Interp.on_region_enter <-
    (fun f r actuals regs ->
      ev 8;
      mixh f.Ir.fname;
      mix r.Ir.rid;
      mixh (enc_actuals actuals);
      mix (Array.length regs));
  h.R.Interp.on_call_actuals <-
    (fun i argv en ->
      ev 9;
      mix i.Ir.iid;
      mixh (List.map enc_value argv);
      List.iter
        (fun (blk, sets) ->
          mixh blk;
          mixh (enc_actuals sets))
        en);
  h

(* ---- run outcomes --------------------------------------------------- *)

type outcome = {
  o_result : (float, string) result;  (** total cycles, or trap message *)
  o_outputs : string list;
  o_globals : (string * string) list;  (** name, canonical value *)
}

let canon_globals l =
  List.sort compare (List.map (fun (n, v) -> (n, enc_value v)) l)

let run_reference ?hooks ?fuel ~setup prog =
  let machine = R.Machine.create () in
  setup machine;
  let interp = R.Interp.create ?hooks ?fuel ~machine prog in
  let result =
    match R.Interp.run_main interp with
    | total -> Ok total
    | exception Diag.Error d -> Error (Diag.to_string d)
    | exception R.Interp.Out_of_fuel -> Error "<out of fuel>"
    | exception Not_found -> Error "<not found>"
  in
  {
    o_result = result;
    o_outputs = R.Machine.outputs machine;
    o_globals =
      canon_globals (Hashtbl.fold (fun n v l -> (n, v) :: l) interp.R.Interp.globals []);
  }

let run_prepared ?hooks ?fuel ~setup prepared =
  let machine = R.Machine.create () in
  setup machine;
  let ex = R.Precompile.executor ?hooks ?fuel ~machine prepared in
  let result =
    match R.Precompile.run_main ex with
    | total -> Ok total
    | exception Diag.Error d -> Error (Diag.to_string d)
    | exception R.Interp.Out_of_fuel -> Error "<out of fuel>"
    | exception Not_found -> Error "<not found>"
  in
  {
    o_result = result;
    o_outputs = R.Machine.outputs machine;
    o_globals = canon_globals (R.Precompile.globals ex);
  }

let result_t = Alcotest.(result (float 0.0) string)

let check_outcome what (expected : outcome) (got : outcome) =
  check result_t (what ^ ": total cycles") expected.o_result got.o_result;
  check Alcotest.(list string) (what ^ ": outputs") expected.o_outputs got.o_outputs;
  check
    Alcotest.(list (pair string string))
    (what ^ ": globals") expected.o_globals got.o_globals

(** Full differential on one program: fast path and instrumented path
    against the reference, plus exact hook-stream comparison. *)
let differential ?fuel ?(setup = fun _ -> ()) src =
  let prog = compile src in
  let prepared = R.Precompile.prepare prog in
  let ref_sink = ref [] in
  let reference = run_reference ~hooks:(recording_hooks ref_sink) ?fuel ~setup prog in
  let fast = run_prepared ?fuel ~setup prepared in
  check_outcome "fast path" reference fast;
  let ins_sink = ref [] in
  let instrumented =
    run_prepared ~hooks:(recording_hooks ins_sink) ?fuel ~setup prepared
  in
  check_outcome "instrumented path" reference instrumented;
  check Alcotest.(list string) "hook event stream" (List.rev !ref_sink)
    (List.rev !ins_sink)

(* ---- handwritten corner cases --------------------------------------- *)

let test_diff_basic () =
  differential
    {|
int g = 3;
float acc = 0.25;
int fib(int n) {
  if (n < 2) {
    return n;
  }
  return fib(n - 1) + fib(n - 2);
}
void main() {
  int[] a = iarray(6);
  for (int i = 0; i < 6; i++) {
    a[i] = fib(i) * g;
  }
  float x = acc;
  for (int i = 0; i < 6; i++) {
    x = x + int_to_float(a[i]) / 3.0;
    acc = x;
  }
  g = g + alen_i(a);
  print(float_to_string(x));
  print(int_to_string(g));
}
|}

let test_diff_strings_bools () =
  differential
    {|
void main() {
  string s = "";
  bool flip = false;
  for (int i = 0; i < 10; i++) {
    flip = !flip;
    if (flip && (i % 3 != 0)) {
      s = s + int_to_string(i);
    }
    if (s > "145" || s == "1") {
      s = s + ".";
    }
  }
  print(s);
  print(md5_hex(s));
}
|}

let test_diff_float_edge () =
  (* 0.0 / 0.0 is nan: Eq must be false on both engines (IEEE), and the
     accumulated totals must agree bit-for-bit *)
  differential
    {|
void main() {
  float z = 0.0;
  float n = z / z;
  if (n == n) {
    print("nan equal");
  } else {
    print("nan not equal");
  }
  float big = 1.0;
  for (int i = 0; i < 30; i++) {
    big = big * 3.7 + 0.001;
  }
  print(float_to_string(big));
}
|}

let trap_message src =
  let prog = compile src in
  let reference = run_reference ~setup:(fun _ -> ()) prog in
  let fast = run_prepared ~setup:(fun _ -> ()) (R.Precompile.prepare prog) in
  check_outcome "trap" reference fast;
  match fast.o_result with
  | Error m -> m
  | Ok _ -> Alcotest.failf "expected %S to trap" src

let test_diff_traps () =
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let expect needle src =
    let m = trap_message src in
    check Alcotest.bool (Printf.sprintf "%S in %S" needle m) true (contains ~needle m)
  in
  expect "division by zero" "void main() { int x = 8; int y = x / (x - x); }";
  expect "modulo by zero" "void main() { int x = 8; int y = x % (x - x); }";
  expect "out of bounds" "void main() { int[] a = iarray(2); a[5] = 1; }";
  expect "out of bounds" "void main() { int[] a = iarray(2); int x = a[0 - 2]; }"

let test_diff_fuel () =
  (* both engines must exhaust fuel at the same point, for fuel values
     straddling block and instruction boundaries *)
  let src = "void main() { int x = 0; while (true) { x = x + 1; } }" in
  List.iter
    (fun fuel -> differential ~fuel src)
    [ 1; 2; 3; 7; 50; 51; 52; 53; 1000 ]

let test_diff_missing_arg () =
  (* lowering can't produce an arity mismatch from typechecked source, so
     drive exec directly: both engines report the same missing-argument
     diagnostic for main-with-params *)
  let src = "void main(int n) { print(int_to_string(n)); }" in
  let prog = compile src in
  let reference = run_reference ~setup:(fun _ -> ()) prog in
  let fast = run_prepared ~setup:(fun _ -> ()) (R.Precompile.prepare prog) in
  check_outcome "missing argument" reference fast;
  match fast.o_result with
  | Error m -> check Alcotest.bool "names argument 0" true (m <> "")
  | Ok _ -> Alcotest.fail "main(int) with no args must trap"

(* ---- workload differentials ----------------------------------------- *)

let workload_differential (w : W.t) variant_name src () =
  let prog = compile src in
  let prepared = R.Precompile.prepare prog in
  let what fmt = Printf.sprintf fmt w.W.wname variant_name in
  (* fast path: outputs + bit-exact totals + final globals *)
  let reference = run_reference ~setup:w.W.setup prog in
  let fast = run_prepared ~setup:w.W.setup prepared in
  check_outcome (what "%s/%s fast") reference fast;
  (* instrumented path: full hook stream, compared as rolling hash +
     event count (the streams run to millions of events) *)
  let ref_acc = ref 0 and ref_n = ref 0 in
  let ins_acc = ref 0 and ins_n = ref 0 in
  let reference_h =
    run_reference ~hooks:(hashing_hooks ref_acc ref_n) ~setup:w.W.setup prog
  in
  let instrumented =
    run_prepared ~hooks:(hashing_hooks ins_acc ins_n) ~setup:w.W.setup prepared
  in
  check_outcome (what "%s/%s instrumented") reference_h instrumented;
  check Alcotest.int (what "%s/%s hook event count") !ref_n !ins_n;
  check Alcotest.int (what "%s/%s hook event hash") !ref_acc !ins_acc

let workload_cases =
  List.concat_map
    (fun (w : W.t) ->
      let case name src =
        Alcotest.test_case
          (Printf.sprintf "%s/%s differential" w.W.wname name)
          `Slow
          (workload_differential w name src)
      in
      case "base" w.W.source
      :: List.map (fun (vname, vsrc) -> case vname vsrc) w.W.variants)
    Registry.all

let suite =
  ( "precompile",
    [
      Alcotest.test_case "basic differential" `Quick test_diff_basic;
      Alcotest.test_case "strings and bools" `Quick test_diff_strings_bools;
      Alcotest.test_case "float edge cases" `Quick test_diff_float_edge;
      Alcotest.test_case "traps" `Quick test_diff_traps;
      Alcotest.test_case "fuel parity" `Quick test_diff_fuel;
      Alcotest.test_case "missing argument" `Quick test_diff_missing_arg;
    ]
    @ workload_cases )
