lib/report/table1.mli:
