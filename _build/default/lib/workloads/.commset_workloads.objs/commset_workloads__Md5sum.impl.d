lib/workloads/md5sum.ml: Bytes Char Commset_runtime Printf Workload
