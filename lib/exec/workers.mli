(** A persistent warm pool of worker domains for request serving: the
    domains are spawned once and reused for every task until
    {!shutdown} — never re-created per request.

    Each worker owns one bounded SPSC task ring fed by the single
    coordinator domain ({!submit} must only ever be called from one
    domain at a time; the serve daemon's accept/generator loop is that
    coordinator). An idle worker parks on its empty ring through the
    adaptive backoff's long-idle tier ({!Spin}), so an idle pool sits
    at ~0% CPU while wakeup latency stays bounded by
    {!Commset_runtime.Costmodel.exec_idle_sleep_cap_s}.

    Tasks are arbitrary closures; an exception escaping a task is
    caught, counted ([w_task_errors]) and logged — one poisoned request
    must not take the daemon down. Ordering: tasks submitted to the
    same worker run in submission order; across workers there is no
    order. *)

type t

(** [spawn ~jobs] starts [jobs] worker domains (at least 1), each
    parked on an empty task ring of [ring] slots (default 256). *)
val spawn : ?ring:int -> jobs:int -> unit -> t

val size : t -> int

(** Enqueue a task on the least-loaded ring (ties broken round-robin).
    Blocks with backoff when every ring is full — the daemon's
    admission bound — counting one backpressure episode. Raises
    [Invalid_argument] after {!shutdown}. *)
val submit : t -> (unit -> unit) -> unit

(** Tasks currently queued across all rings (approximate: racy reads). *)
val pending : t -> int

type stats = {
  w_executed : int;  (** tasks completed across all workers *)
  w_task_errors : int;  (** tasks that raised (caught and dropped) *)
  w_backpressure : int;  (** submit episodes that blocked on full rings *)
}

val stats : t -> stats

(** Drain and stop: every queued task still runs, then each worker
    exits and is joined. Idempotent; [submit] afterwards raises. *)
val shutdown : t -> unit
