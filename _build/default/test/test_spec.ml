(** Tests for the speculative (runtime-checked commutativity) extension:
    the concrete predicate evaluator, spec-relaxability detection, the
    simulator's predicate-based conflict rule, and the end-to-end
    geti/dynamic result. *)

module P = Commset_pipeline.Pipeline
module T = Commset_transforms
module R = Commset_runtime
module L = Commset_lang
open Commset_support

let check = Alcotest.check

(* ---- concrete predicate evaluation ---- *)

let parse_expr = L.Parser.parse_expr_string

let test_concrete_eval () =
  let holds = R.Concrete_eval.predicate_holds ~params1:[ "a" ] ~params2:[ "b" ] in
  check Alcotest.bool "ints differ" true
    (holds ~actuals1:[ R.Value.Vint 1 ] ~actuals2:[ R.Value.Vint 2 ] (parse_expr "a != b"));
  check Alcotest.bool "ints equal" false
    (holds ~actuals1:[ R.Value.Vint 5 ] ~actuals2:[ R.Value.Vint 5 ] (parse_expr "a != b"));
  check Alcotest.bool "arith" true
    (holds ~actuals1:[ R.Value.Vint 3 ] ~actuals2:[ R.Value.Vint 4 ]
       (parse_expr "a * 2 + 1 != b * 2 + 1"));
  check Alcotest.bool "strings" true
    (holds
       ~actuals1:[ R.Value.Vstring "x" ]
       ~actuals2:[ R.Value.Vstring "y" ]
       (parse_expr "a != b"));
  (* two-parameter lists *)
  let holds2 = R.Concrete_eval.predicate_holds ~params1:[ "a"; "b" ] ~params2:[ "c"; "d" ] in
  check Alcotest.bool "pairwise" true
    (holds2
       ~actuals1:[ R.Value.Vint 1; R.Value.Vint 2 ]
       ~actuals2:[ R.Value.Vint 1; R.Value.Vint 3 ]
       (parse_expr "a != c || b != d"))

let test_concrete_eval_errors () =
  let fails f = match Diag.guard f with Error _ -> () | Ok _ -> Alcotest.fail "expected error" in
  fails (fun () ->
      R.Concrete_eval.predicate_holds ~params1:[ "a" ] ~params2:[ "b" ]
        ~actuals1:[ R.Value.Vint 1 ] ~actuals2:[] (parse_expr "a != b"));
  fails (fun () ->
      R.Concrete_eval.predicate_holds ~params1:[ "a" ] ~params2:[ "b" ]
        ~actuals1:[ R.Value.Vint 1 ] ~actuals2:[ R.Value.Vint 0 ] (parse_expr "a / b == 0"))

(* property: concrete evaluation agrees with the interpreter's arithmetic *)
let prop_concrete_matches_direct =
  QCheck.Test.make ~name:"concrete predicate eval is arithmetically correct" ~count:200
    QCheck.(pair (int_range (-50) 50) (int_range (-50) 50))
    (fun (x, y) ->
      let holds e =
        R.Concrete_eval.predicate_holds ~params1:[ "a" ] ~params2:[ "b" ]
          ~actuals1:[ R.Value.Vint x ] ~actuals2:[ R.Value.Vint y ] (parse_expr e)
      in
      holds "a != b" = (x <> y)
      && holds "a + 1 > b" = (x + 1 > y)
      && holds "a * a >= 0" = (x * x >= 0))

(* ---- simulator predicate-based conflicts ---- *)

let spec_tx member key =
  R.Sim.Tx
    {
      cost = 100.;
      reads = [ "x" ];
      writes = [ "x" ];
      outputs = [];
      tag = member;
      spec =
        Some { R.Sim.sp_member = member; sp_keys = [ [ ("S", [ R.Value.Vint key ]) ] ] };
    }

let run_spec ~commutes segs =
  R.Sim.run (R.Sim.create ~spec_commutes:commutes ~locks:[||] ~n_queues:0 segs)

let keys_differ (s1 : R.Sim.spec_info) (s2 : R.Sim.spec_info) =
  s1.R.Sim.sp_keys <> s2.R.Sim.sp_keys

let test_sim_spec_commuting () =
  (* overlapping footprints, distinct keys: the commutativity check
     forgives the overlap, no aborts *)
  let r = run_spec ~commutes:keys_differ [| [ spec_tx "m" 1 ]; [ spec_tx "m" 2 ] |] in
  check Alcotest.int "no aborts for commuting txs" 0 r.R.Sim.tx_aborts

let test_sim_spec_conflicting () =
  (* identical keys: the predicate fails, the overlap is a real conflict *)
  let r =
    run_spec ~commutes:keys_differ
      [| [ spec_tx "m" 7 ]; [ R.Sim.Compute { cost = 1.; tag = "w" }; spec_tx "m" 7 ] |]
  in
  check Alcotest.bool "abort on non-commuting overlap" true (r.R.Sim.tx_aborts >= 1)

(* ---- end to end: geti/dynamic ---- *)

let test_geti_dynamic () =
  let w = Option.get (Commset_workloads.Registry.find "geti") in
  let src = List.assoc "dynamic" w.Commset_workloads.Workload.variants in
  let c = P.compile ~name:"geti/dynamic" ~setup:w.Commset_workloads.Workload.setup src in
  (* static DOALL must be blocked (the tag is not affine in the IV) ... *)
  check Alcotest.bool "static doall blocked" false (T.Doall.applicable c.P.target.P.pdg);
  let runs = P.evaluate c ~threads:8 in
  let spec_runs =
    List.filter (fun r -> r.P.plan.T.Plan.variant = T.Plan.Spec) runs
  in
  (* ... but the speculative plan exists, is fastest, and keeps outputs sane *)
  (match spec_runs with
  | [ r ] ->
      check Alcotest.bool "spec is the best plan" true
        (List.for_all (fun r' -> r'.P.speedup <= r.P.speedup) runs);
      check Alcotest.bool "spec scales" true (r.P.speedup > 2.0);
      check Alcotest.bool "no corruption" true (r.P.fidelity <> P.Mismatch)
  | _ -> Alcotest.fail "expected exactly one speculative plan");
  (* the statically-provable primary variant has no spec plan *)
  let cp = P.compile ~name:"geti" ~setup:w.Commset_workloads.Workload.setup
      w.Commset_workloads.Workload.source
  in
  check Alcotest.bool "no spec plan when statics suffice" true
    (List.for_all
       (fun (p : T.Plan.t) -> p.T.Plan.variant <> T.Plan.Spec)
       (P.plans cp ~threads:8))

let test_spec_not_offered_for_unpredicated () =
  (* an unannotated recurrence is not speculable: no predicate to check *)
  let src =
    "void main() { int acc = 0; for (int i = 0; i < 8; i++) { acc = acc + i; vec_push(int_to_string(acc)); } }"
  in
  let c = P.compile ~name:"rec" src in
  check Alcotest.bool "no spec plan" true
    (List.for_all
       (fun (p : T.Plan.t) -> p.T.Plan.variant <> T.Plan.Spec)
       (P.plans c ~threads:8))

let suite =
  ( "spec",
    [
      Alcotest.test_case "concrete predicate eval" `Quick test_concrete_eval;
      Alcotest.test_case "concrete eval errors" `Quick test_concrete_eval_errors;
      Alcotest.test_case "sim: commuting overlap forgiven" `Quick test_sim_spec_commuting;
      Alcotest.test_case "sim: non-commuting overlap aborts" `Quick test_sim_spec_conflicting;
      Alcotest.test_case "geti/dynamic end to end" `Slow test_geti_dynamic;
      Alcotest.test_case "no spec without predicates" `Quick test_spec_not_offered_for_unpredicated;
      QCheck_alcotest.to_alcotest prop_concrete_matches_direct;
    ] )
