(** Per-iteration execution attribution for the real/codegen engines.

    The real execution backend ({!Commset_exec.Realexec}) creates one
    {!t} per run and one {!worker} per worker domain. Workers charge
    wall time to causes as it is spent — dispatch-queue wait (empty
    SPSC ring), per-commset lock wait, frontier wait, builtin time —
    and close every iteration with {!iter_end}, which derives the
    residual as {e compute}:

    {v compute = iteration wall − (lock + frontier + builtin) v}

    so per-iteration conservation holds by construction (up to the
    clamp at zero when clock jitter makes the measured parts exceed
    the wall). Waits that happen {e inside} a builtin (the frontier
    await and machine-mutex acquisition of ordered builtins) are
    charged to their own cause and subtracted from the builtin's
    elapsed time, so causes never double-count.

    Accumulators are per-worker mutable scalars and unboxed float
    arrays — no shared-heap traffic on the hot path; the only
    cross-domain structures are the per-cause {!Metrics.histogram}s
    (atomics) fed once per iteration. Overhead is a handful of clock
    reads per iteration; the bench harness gates it at ≤5% of run
    wall time.

    Everything is skipped when [enabled:false]: accumulation entry
    points check {!on} (a plain immutable field read) and take no
    clock readings. *)

type t
type worker

(** [create ~enabled ~lock_names ~builtin_names ~jobs] — [lock_names]
    are the per-commset lock labels (index-aligned with the emitter's
    lock table); [builtin_names] the runtime builtin names used to
    resolve {!builtin_slot}. *)
val create :
  enabled:bool -> lock_names:string array -> builtin_names:string array -> jobs:int -> t

val enabled : t -> bool

(** The accumulator of worker [wi] (0-based, [wi < jobs]). Each worker
    record must only be written by its own domain. *)
val worker : t -> int -> worker

(** Whether this worker's accumulators are live (same as the [enabled]
    flag of the owning {!t}; cheap enough to check per event). *)
val on : worker -> bool

(** Slot of a builtin name for {!add_builtin}; [-1] when unknown. *)
val builtin_slot : t -> string -> int

(** {2 Worker-side accumulation (all durations in monotonic-clock ns)} *)

(** Time spent blocked on an empty dispatch ring (between iterations). *)
val add_dispatch : worker -> float -> unit

(** Time spent spinning on the iteration frontier. *)
val add_frontier : worker -> float -> unit

(** [add_lock w li dt] — one acquisition of lock [li] that took [dt] ns
    (0. for uncontended fast-path acquires); [li] may index one past
    [lock_names] for the machine mutex pseudo-lock. *)
val add_lock : worker -> int -> float -> unit

(** Running total of waits charged so far that can nest inside a
    builtin (frontier + lock); sample before and after a builtin call
    and subtract the delta from its elapsed time. *)
val inner_waits : worker -> float

(** [add_builtin w slot ~ns ~cost] — one builtin call: [ns] net wall
    time (inner waits already subtracted), [cost] its charged cost in
    simulated cycles. [slot = -1] is counted under ["?"]. *)
val add_builtin : worker -> int -> ns:float -> cost:float -> unit

(** One compiled-code charge flush through the codegen ABI
    ([Abi.cg_charge]). *)
val charge_flush : worker -> unit

(** [iter_begin w t_ns] / [iter_end w t_ns] bracket one dispatched
    iteration; [iter_end] folds the scratch accumulators into totals,
    derives the compute residual and feeds the per-cause histograms. *)
val iter_begin : worker -> float -> unit

val iter_end : worker -> float -> unit

(** Total simulated cycles this worker retired (set once, after the
    worker's loop exits). *)
val set_charged : worker -> float -> unit

(** {2 Coordinator-side accumulation} *)

(** Time the coordinator spent blocked pushing into a full ring. *)
val add_coord_dispatch : t -> float -> unit

(** {2 Summary} *)

type cause = {
  c_name : string;
  c_total_ns : float;
  c_count : int;  (** observations behind the quantiles *)
  c_p50_ns : float;
  c_p95_ns : float;
  c_p99_ns : float;
}

type lock_stat = {
  l_name : string;
  l_acquires : int;
  l_wait_ns : float;
}

type builtin_stat = {
  b_name : string;
  b_calls : int;
  b_wall_ns : float;  (** net of inner waits *)
  b_cost_cycles : float;
}

type coord = {
  k_wall_ns : float;  (** parallel-section wall time *)
  k_dispatch_wait_ns : float;  (** blocked pushing into full rings *)
  k_utilization : float;  (** (wall − dispatch wait) / wall *)
  k_merge_ns : float;
}

(** One per-worker timeline sample for Perfetto counter tracks:
    cumulative ns charged to each cause as of [s_t_ns]. *)
type sample = {
  s_t_ns : float;
  s_dispatch : float;
  s_lock : float;
  s_frontier : float;
  s_builtin : float;
  s_compute : float;
}

type summary = {
  a_jobs : int;
  a_iterations : int;
  a_iter_wall_ns : float;  (** Σ over workers of iteration wall time *)
  a_charged_cycles : float;
  a_dispatch_ns : float;
  a_lock_ns : float;
  a_frontier_ns : float;
  a_builtin_ns : float;
  a_compute_ns : float;
  a_causes : cause list;  (** dispatch, lock, frontier, builtin, compute, merge *)
  a_locks : lock_stat list;  (** index-aligned with [lock_names] + machine pseudo-lock *)
  a_builtins : builtin_stat list;  (** only builtins that were called *)
  a_conservation_error : float;
      (** |lock + frontier + builtin + compute − iter wall| / iter wall *)
  a_coord : coord;
  a_charge_flushes : int;
  a_samples : (int * sample array) list;  (** per worker index *)
}

(** Aggregate all workers. Call from the coordinator after workers have
    joined. [None] when the layer was created with [enabled:false]. *)
val summarize : t -> coord_wall_ns:float -> merge_ns:float -> summary option
