lib/report/ablation.ml: Ascii Atomic Buffer Commset_pipeline Commset_runtime Commset_transforms Commset_workloads Fun List Option Printf String
