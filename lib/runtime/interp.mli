(** Sequential IR interpreter with cycle accounting and instrumentation
    hooks; the profiler, the trace recorder, and the output-equivalence
    checks build on these hooks. *)

module Ir = Commset_ir.Ir

type hooks = {
  mutable on_instr : Ir.func -> Ir.instr -> unit;
  mutable on_block : Ir.func -> Ir.label -> unit;
  mutable on_base_cost : float -> unit;
  mutable on_builtin : Builtins.t -> float -> unit;
  mutable on_output : string -> unit;
  mutable on_enter_func : Ir.func -> unit;
  mutable on_exit_func : Ir.func -> unit;
  mutable on_region_enter :
    Ir.func -> Ir.region -> (string * Value.t list) list -> Value.t array -> unit;
      (** fired on entry to a commutative region, with the predicate
          actuals of each of its commsets evaluated at that instant and
          the live register file (for replay, snapshot it) *)
  mutable on_call_actuals :
    Ir.instr -> Value.t list -> (string * (string * Value.t list) list) list -> unit;
      (** fired before a call to a user-defined function, with the
          evaluated argument values and, per COMMSETNAMEDARGADD enable on
          the call, the evaluated (block, set actuals) bindings *)
}

val null_hooks : unit -> hooks

type t = {
  prog : Ir.program;
  machine : Machine.t;
  globals : (string, Value.t) Hashtbl.t;
  hooks : hooks;
  region_entries : (string * Ir.label, Ir.region) Hashtbl.t;
  mutable fuel : int;
  mutable total_cost : float;
}

val default_fuel : int

(** Runtime failures raise {!Commset_support.Diag.Error}; exhausting the
    fuel (charged per instruction and per block) raises {!Out_of_fuel}. *)
exception Out_of_fuel

val create : ?hooks:hooks -> ?fuel:int -> ?machine:Machine.t -> Ir.program -> t
val exec_func : t -> Ir.func -> Value.t list -> Value.t option

(** Execute one commutative region of a function in isolation, from its
    entry block with the given register file, stopping when control
    leaves the region or the function returns. Does not re-fire
    [on_region_enter]; used to replay traced member instances. *)
val exec_region : t -> Ir.func -> Value.t array -> Ir.region -> unit

(** Run [main()] to completion; returns total simulated cycles. *)
val run_main : t -> float
