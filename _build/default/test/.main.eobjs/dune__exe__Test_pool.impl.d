test/test_pool.ml: Alcotest Atomic Commset_pipeline Commset_report Commset_runtime Commset_support Commset_transforms Commset_workloads Gensym List Option Pool Printf
