(** Lexical tokens of miniC. *)

open Commset_support

type t =
  | INT_LIT of int
  | FLOAT_LIT of float
  | STRING_LIT of string
  | IDENT of string
  | KW_INT
  | KW_FLOAT
  | KW_BOOL
  | KW_STRING
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | KW_TRUE
  | KW_FALSE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NEQ
  | ANDAND
  | OROR
  | BANG
  | ASSIGN
  | PLUSPLUS
  | MINUSMINUS
  | PLUSEQ
  | MINUSEQ
  | PRAGMA of string
      (** a full [#pragma ...] line: the raw text after the word [pragma] *)
  | EOF

type spanned = { tok : t; loc : Loc.t }

val keyword_of_string : string -> t option
val to_string : t -> string
val equal : t -> t -> bool
