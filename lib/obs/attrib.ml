(** Per-iteration execution attribution; see the interface. *)

let machine_lock_name = "machine"
let sample_cap = 4096

type hists = {
  h_dispatch : Metrics.histogram;
  h_lock : Metrics.histogram;
  h_frontier : Metrics.histogram;
  h_builtin : Metrics.histogram;
  h_compute : Metrics.histogram;
  h_wall : Metrics.histogram;
}

type worker = {
  w_on : bool;
  w_h : hists;  (** shared with the owning [t]; atomics, safe cross-domain *)
  (* per-iteration scratch, reset by [iter_begin] *)
  mutable s_active : bool;
  mutable s_t0 : float;
  mutable s_lock : float;
  mutable s_frontier : float;
  mutable s_builtin : float;
  (* run totals *)
  mutable t_dispatch : float;
  mutable t_lock : float;
  mutable t_frontier : float;
  mutable t_builtin : float;
  mutable t_compute : float;
  mutable t_wall : float;
  mutable t_iters : int;
  mutable t_charged : float;
  mutable t_flushes : int;
  mutable t_unknown_b_ns : float;
  mutable t_unknown_b_calls : int;
  mutable t_unknown_b_cost : float;
  lock_wait : float array;
  lock_acq : int array;
  wb_ns : float array;
  wb_calls : int array;
  wb_cost : float array;
  (* cumulative-cause timeline samples, one per iteration up to the cap *)
  mutable n_samples : int;
  samp_t : float array;
  samp : float array;  (** 5 causes × sample_cap, flattened *)
}

type t = {
  a_on : bool;
  jobs : int;
  lock_names : string array;
  builtin_names : string array;
  builtin_slots : (string, int) Hashtbl.t;  (** frozen after [create] *)
  workers : worker array;
  coord_dispatch : float Atomic.t;
  hists : hists;  (** per-cause per-iteration distributions *)
}

let make_worker on hs n_locks n_builtins =
  {
    w_on = on;
    w_h = hs;
    s_active = false;
    s_t0 = 0.;
    s_lock = 0.;
    s_frontier = 0.;
    s_builtin = 0.;
    t_dispatch = 0.;
    t_lock = 0.;
    t_frontier = 0.;
    t_builtin = 0.;
    t_compute = 0.;
    t_wall = 0.;
    t_iters = 0;
    t_charged = 0.;
    t_flushes = 0;
    t_unknown_b_ns = 0.;
    t_unknown_b_calls = 0;
    t_unknown_b_cost = 0.;
    lock_wait = Array.make (if on then n_locks + 1 else 0) 0.;
    lock_acq = Array.make (if on then n_locks + 1 else 0) 0;
    wb_ns = Array.make (if on then n_builtins else 0) 0.;
    wb_calls = Array.make (if on then n_builtins else 0) 0;
    wb_cost = Array.make (if on then n_builtins else 0) 0.;
    n_samples = 0;
    samp_t = Array.make (if on then sample_cap else 0) 0.;
    samp = Array.make (if on then 5 * sample_cap else 0) 0.;
  }

let create ~enabled ~lock_names ~builtin_names ~jobs =
  let n_locks = Array.length lock_names and n_builtins = Array.length builtin_names in
  let builtin_slots = Hashtbl.create (2 * n_builtins) in
  Array.iteri (fun i n -> Hashtbl.replace builtin_slots n i) builtin_names;
  let hists =
    {
      h_dispatch = Metrics.hist_make ();
      h_lock = Metrics.hist_make ();
      h_frontier = Metrics.hist_make ();
      h_builtin = Metrics.hist_make ();
      h_compute = Metrics.hist_make ();
      h_wall = Metrics.hist_make ();
    }
  in
  {
    a_on = enabled;
    jobs;
    lock_names;
    builtin_names;
    builtin_slots;
    workers = Array.init jobs (fun _ -> make_worker enabled hists n_locks n_builtins);
    coord_dispatch = Atomic.make 0.;
    hists;
  }

let enabled t = t.a_on
let worker t wi = t.workers.(wi)
let on w = w.w_on
let builtin_slot t name = match Hashtbl.find_opt t.builtin_slots name with Some i -> i | None -> -1
let add_dispatch w dt =
  w.t_dispatch <- w.t_dispatch +. dt;
  Metrics.observe w.w_h.h_dispatch dt
let add_frontier w dt = w.s_frontier <- w.s_frontier +. dt

let add_lock w li dt =
  w.lock_wait.(li) <- w.lock_wait.(li) +. dt;
  w.lock_acq.(li) <- w.lock_acq.(li) + 1;
  w.s_lock <- w.s_lock +. dt

let inner_waits w = w.s_lock +. w.s_frontier

let add_builtin w slot ~ns ~cost =
  let ns = Float.max 0. ns in
  if slot >= 0 then begin
    w.wb_ns.(slot) <- w.wb_ns.(slot) +. ns;
    w.wb_calls.(slot) <- w.wb_calls.(slot) + 1;
    w.wb_cost.(slot) <- w.wb_cost.(slot) +. cost
  end
  else begin
    w.t_unknown_b_ns <- w.t_unknown_b_ns +. ns;
    w.t_unknown_b_calls <- w.t_unknown_b_calls + 1;
    w.t_unknown_b_cost <- w.t_unknown_b_cost +. cost
  end;
  w.s_builtin <- w.s_builtin +. ns

let charge_flush w = w.t_flushes <- w.t_flushes + 1

let iter_begin w t_ns =
  w.s_active <- true;
  w.s_t0 <- t_ns;
  w.s_lock <- 0.;
  w.s_frontier <- 0.;
  w.s_builtin <- 0.

let iter_end w t_ns =
  if w.s_active then begin
    w.s_active <- false;
    let wall = Float.max 0. (t_ns -. w.s_t0) in
    let compute = Float.max 0. (wall -. w.s_lock -. w.s_frontier -. w.s_builtin) in
    w.t_lock <- w.t_lock +. w.s_lock;
    w.t_frontier <- w.t_frontier +. w.s_frontier;
    w.t_builtin <- w.t_builtin +. w.s_builtin;
    w.t_compute <- w.t_compute +. compute;
    w.t_wall <- w.t_wall +. wall;
    w.t_iters <- w.t_iters + 1;
    Metrics.observe w.w_h.h_lock w.s_lock;
    Metrics.observe w.w_h.h_frontier w.s_frontier;
    Metrics.observe w.w_h.h_builtin w.s_builtin;
    Metrics.observe w.w_h.h_compute compute;
    Metrics.observe w.w_h.h_wall wall;
    if w.n_samples < sample_cap then begin
      let i = w.n_samples in
      w.samp_t.(i) <- t_ns;
      w.samp.(i) <- w.t_dispatch;
      w.samp.(sample_cap + i) <- w.t_lock;
      w.samp.((2 * sample_cap) + i) <- w.t_frontier;
      w.samp.((3 * sample_cap) + i) <- w.t_builtin;
      w.samp.((4 * sample_cap) + i) <- w.t_compute;
      w.n_samples <- i + 1
    end
  end

let set_charged w c = w.t_charged <- c

(* single writer (the coordinator), so a read-modify-write is safe *)
let add_coord_dispatch t dt = Atomic.set t.coord_dispatch (Atomic.get t.coord_dispatch +. dt)

type cause = {
  c_name : string;
  c_total_ns : float;
  c_count : int;
  c_p50_ns : float;
  c_p95_ns : float;
  c_p99_ns : float;
}

type lock_stat = { l_name : string; l_acquires : int; l_wait_ns : float }
type builtin_stat = { b_name : string; b_calls : int; b_wall_ns : float; b_cost_cycles : float }

type coord = {
  k_wall_ns : float;
  k_dispatch_wait_ns : float;
  k_utilization : float;
  k_merge_ns : float;
}

type sample = {
  s_t_ns : float;
  s_dispatch : float;
  s_lock : float;
  s_frontier : float;
  s_builtin : float;
  s_compute : float;
}

type summary = {
  a_jobs : int;
  a_iterations : int;
  a_iter_wall_ns : float;
  a_charged_cycles : float;
  a_dispatch_ns : float;
  a_lock_ns : float;
  a_frontier_ns : float;
  a_builtin_ns : float;
  a_compute_ns : float;
  a_causes : cause list;
  a_locks : lock_stat list;
  a_builtins : builtin_stat list;
  a_conservation_error : float;
  a_coord : coord;
  a_charge_flushes : int;
  a_samples : (int * sample array) list;
}

let sum f ws = Array.fold_left (fun acc w -> acc +. f w) 0. ws
let sumi f ws = Array.fold_left (fun acc w -> acc + f w) 0 ws

let cause_of name h total =
  {
    c_name = name;
    c_total_ns = total;
    c_count = Metrics.hist_count h;
    c_p50_ns = Metrics.hist_quantile h 0.50;
    c_p95_ns = Metrics.hist_quantile h 0.95;
    c_p99_ns = Metrics.hist_quantile h 0.99;
  }

let summarize t ~coord_wall_ns ~merge_ns =
  if not t.a_on then None
  else begin
    let ws = t.workers in
    let dispatch = sum (fun w -> w.t_dispatch) ws in
    let lock = sum (fun w -> w.t_lock) ws in
    let frontier = sum (fun w -> w.t_frontier) ws in
    let builtin = sum (fun w -> w.t_builtin) ws in
    let compute = sum (fun w -> w.t_compute) ws in
    let wall = sum (fun w -> w.t_wall) ws in
    let merge_cause =
      {
        c_name = "merge";
        c_total_ns = merge_ns;
        c_count = 1;
        c_p50_ns = merge_ns;
        c_p95_ns = merge_ns;
        c_p99_ns = merge_ns;
      }
    in
    let causes =
      [
        cause_of "dispatch_wait" t.hists.h_dispatch dispatch;
        cause_of "lock_wait" t.hists.h_lock lock;
        cause_of "frontier_wait" t.hists.h_frontier frontier;
        cause_of "builtin" t.hists.h_builtin builtin;
        cause_of "compute" t.hists.h_compute compute;
        merge_cause;
      ]
    in
    let n_locks = Array.length t.lock_names in
    let locks =
      List.init (n_locks + 1) (fun li ->
          {
            l_name = (if li < n_locks then t.lock_names.(li) else machine_lock_name);
            l_acquires = sumi (fun w -> w.lock_acq.(li)) ws;
            l_wait_ns = sum (fun w -> w.lock_wait.(li)) ws;
          })
    in
    let builtins =
      List.filteri (fun _ b -> b.b_calls > 0)
        (List.init (Array.length t.builtin_names) (fun bi ->
             {
               b_name = t.builtin_names.(bi);
               b_calls = sumi (fun w -> w.wb_calls.(bi)) ws;
               b_wall_ns = sum (fun w -> w.wb_ns.(bi)) ws;
               b_cost_cycles = sum (fun w -> w.wb_cost.(bi)) ws;
             }))
    in
    let builtins =
      let unk_calls = sumi (fun w -> w.t_unknown_b_calls) ws in
      if unk_calls = 0 then builtins
      else
        builtins
        @ [
            {
              b_name = "?";
              b_calls = unk_calls;
              b_wall_ns = sum (fun w -> w.t_unknown_b_ns) ws;
              b_cost_cycles = sum (fun w -> w.t_unknown_b_cost) ws;
            };
          ]
    in
    let coord_dispatch = Atomic.get t.coord_dispatch in
    let coord =
      {
        k_wall_ns = coord_wall_ns;
        k_dispatch_wait_ns = coord_dispatch;
        k_utilization =
          (if coord_wall_ns > 0. then
             Float.max 0. (coord_wall_ns -. coord_dispatch) /. coord_wall_ns
           else 0.);
        k_merge_ns = merge_ns;
      }
    in
    let samples =
      List.init t.jobs (fun wi ->
          let w = ws.(wi) in
          let n = w.n_samples in
          ( wi,
            Array.init n (fun i ->
                {
                  s_t_ns = w.samp_t.(i);
                  s_dispatch = w.samp.(i);
                  s_lock = w.samp.(sample_cap + i);
                  s_frontier = w.samp.((2 * sample_cap) + i);
                  s_builtin = w.samp.((3 * sample_cap) + i);
                  s_compute = w.samp.((4 * sample_cap) + i);
                }) ))
    in
    Some
      {
        a_jobs = t.jobs;
        a_iterations = sumi (fun w -> w.t_iters) ws;
        a_iter_wall_ns = wall;
        a_charged_cycles = sum (fun w -> w.t_charged) ws;
        a_dispatch_ns = dispatch;
        a_lock_ns = lock;
        a_frontier_ns = frontier;
        a_builtin_ns = builtin;
        a_compute_ns = compute;
        a_causes = causes;
        a_locks = locks;
        a_builtins = builtins;
        a_conservation_error =
          (if wall > 0. then Float.abs ((lock +. frontier +. builtin +. compute) -. wall) /. wall
           else 0.);
        a_coord = coord;
        a_charge_flushes = sumi (fun w -> w.t_flushes) ws;
        a_samples = samples;
      }
  end
