lib/workloads/geti.ml: Printf Workload
