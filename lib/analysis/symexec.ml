(** Symbolic interpretation of COMMSET predicates (paper §4.4).

    The dependence analyzer must prove that a predicate such as
    [(i1 != i2)] always returns [true] when its two parameter lists are
    bound to the actuals of two commset-member instances executing in
    different (or the same) iterations of the target loop.

    Values are three-valued booleans and symbolic integers of the shape
    [mul·IV(side) + add], where [side] says which of the two instances the
    value belongs to. The proof context supplies one fact: whether the two
    instances run in distinct iterations (so IV(1) ≠ IV(2), by strict
    monotonicity of a basic induction variable) or in the same iteration
    (IV(1) = IV(2)). *)

module Ast = Commset_lang.Ast
open Commset_support

type tribool = True | False | Maybe

type side = Side1 | Side2

type sval =
  | Sbool of tribool
  | Sint of { iv_id : int; side : side; mul : int; add : int }
      (** [mul·IV(side) + add]; [mul = 0] encodes the constant [add];
          [iv_id] identifies which basic IV (or invariant symbol).
          Negative [iv_id]s below [-1] are pseudo-IVs: per-iteration
          fresh values (e.g. allocation handles) that behave like an IV
          for equality — equal within an iteration, distinct across. *)
  | Ssym of int * side  (** opaque value: equal only to itself on the same side *)
  | Sinj of string * sval
      (** [f(v)] for an injective [f] (e.g. [int_to_string], or
          concatenation with a fixed prefix/suffix): equal iff the
          descriptors match and the arguments are equal; arguments under
          different descriptors stay incomparable *)
  | Stop  (** unknown *)

let tri_not = function True -> False | False -> True | Maybe -> Maybe

let tri_and a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, True -> True
  | _ -> Maybe

let tri_or a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, False -> False
  | _ -> Maybe

(** The fact relating the two instances' iterations. *)
type iteration_fact = Distinct_iterations | Same_iteration

type env = (string * sval) list

let lookup env name = try List.assoc name env with Not_found -> Stop

let const_int n = Sint { iv_id = -1; side = Side1; mul = 0; add = n }

let is_const = function Sint { mul = 0; add; _ } -> Some add | _ -> None

(* equality of two symbolic ints under the iteration fact *)
let rec int_eq fact a b =
  match (a, b) with
  | Sinj (f, x), Sinj (g, y) ->
      (* injectivity: f(x) = f(y) iff x = y; different descriptors are
         incomparable (their images may still collide) *)
      if f = g then int_eq fact x y else Maybe
  | Sint x, Sint y -> (
      match (is_const (Sint x), is_const (Sint y)) with
      | Some cx, Some cy -> if cx = cy then True else False
      | _ ->
          if x.iv_id <> y.iv_id then Maybe
          else if x.side = y.side || fact = Same_iteration then
            if x.mul = y.mul && x.add = y.add then True
            else if x.mul = y.mul then False (* same IV value, different offset *)
            else Maybe
          else if
            (* different sides, distinct iterations: IV values differ *)
            x.mul = y.mul && x.mul <> 0 && x.add = y.add
          then False
          else Maybe)
  | Ssym (i, s1), Ssym (j, s2) ->
      if i = j && (s1 = s2 || fact = Same_iteration) then True else Maybe
  | _ -> Maybe

let rec eval fact (env : env) (e : Ast.expr) : sval =
  match e.Ast.edesc with
  | Ast.Int_lit n -> const_int n
  | Ast.Bool_lit b -> Sbool (if b then True else False)
  | Ast.Float_lit _ | Ast.String_lit _ -> Stop
  | Ast.Var name -> lookup env name
  | Ast.Unop (Ast.Not, a) -> (
      match eval fact env a with Sbool t -> Sbool (tri_not t) | _ -> Stop)
  | Ast.Unop (Ast.Neg, a) -> (
      match eval fact env a with
      | Sint x -> Sint { x with mul = -x.mul; add = -x.add }
      | _ -> Stop)
  | Ast.Binop (op, a, b) -> eval_binop fact env op a b
  | Ast.Call _ | Ast.Index _ -> Stop

and eval_binop fact env op a b =
  let va = eval fact env a in
  let vb = eval fact env b in
  match op with
  | Ast.And -> (
      match (va, vb) with Sbool x, Sbool y -> Sbool (tri_and x y) | _ -> Stop)
  | Ast.Or -> (
      match (va, vb) with Sbool x, Sbool y -> Sbool (tri_or x y) | _ -> Stop)
  | Ast.Eq -> Sbool (int_eq fact va vb)
  | Ast.Neq -> Sbool (tri_not (int_eq fact va vb))
  | Ast.Add -> (
      match (va, vb) with
      | Sint x, Sint y when is_const (Sint y) <> None ->
          Sint { x with add = x.add + y.add }
      | Sint x, Sint y when is_const (Sint x) <> None ->
          Sint { y with add = x.add + y.add }
      | Sint x, Sint y when x.iv_id = y.iv_id && x.side = y.side ->
          Sint { x with mul = x.mul + y.mul; add = x.add + y.add }
      | _ -> Stop)
  | Ast.Sub -> (
      match (va, vb) with
      | Sint x, Sint y when is_const (Sint y) <> None ->
          Sint { x with add = x.add - y.add }
      | Sint x, Sint y when x.iv_id = y.iv_id && x.side = y.side ->
          Sint { x with mul = x.mul - y.mul; add = x.add - y.add }
      | _ -> Stop)
  | Ast.Mul -> (
      match (va, vb) with
      | Sint x, Sint y when is_const (Sint y) <> None ->
          Sint { x with mul = x.mul * y.add; add = x.add * y.add }
      | Sint x, Sint y when is_const (Sint x) <> None ->
          Sint { y with mul = y.mul * x.add; add = y.add * x.add }
      | _ -> Stop)
  | Ast.Div | Ast.Mod -> (
      match (va, vb) with
      | Sint x, Sint y -> (
          match (is_const (Sint x), is_const (Sint y)) with
          | Some cx, Some cy when cy <> 0 ->
              const_int (if op = Ast.Div then cx / cy else cx mod cy)
          | _ -> Stop)
      | _ -> Stop)
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
      (* only constant comparisons resolve *)
      match (is_const va, is_const vb) with
      | Some cx, Some cy ->
          let r =
            match op with
            | Ast.Lt -> cx < cy
            | Ast.Le -> cx <= cy
            | Ast.Gt -> cx > cy
            | Ast.Ge -> cx >= cy
            | _ -> assert false
          in
          Sbool (if r then True else False)
      | _ -> Sbool Maybe)

(** [prove fact env body] evaluates the predicate body and reports whether
    it is definitely true under the iteration fact. *)
let prove fact env body =
  match eval fact env body with Sbool True -> true | Sbool (False | Maybe) | _ -> false

(** Build a predicate environment: bind [params1] to the symbolic values of
    the first instance's actuals and [params2] to the second's. *)
let bind_params ~params1 ~params2 ~actuals1 ~actuals2 =
  if
    List.length params1 <> List.length actuals1
    || List.length params2 <> List.length actuals2
  then Diag.error "internal: predicate actual/parameter arity mismatch";
  List.combine params1 actuals1 @ List.combine params2 actuals2

(** Symbolic value of a classified operand on one side. [sym_id] must be a
    stable identifier for non-affine operands (e.g. the register number) so
    the same invariant operand gets equal symbols on both sides. *)
let sval_of_classification side (c : Induction.classification) ~sym_id =
  match c with
  | Induction.Affine { iv; mul; add } -> Sint { iv_id = iv.Induction.iv_reg; side; mul; add }
  | Induction.Invariant -> Ssym (sym_id, Side1) (* invariant: same on both sides *)
  | Induction.Unknown -> Ssym (sym_id, side)
