(** Real locks for the emitter's lock registry; see the interface. *)

module Sim = Commset_runtime.Sim
module Costmodel = Commset_runtime.Costmodel

type impl = Lmutex of Mutex.t | Lspin of Spin.lock

type t = { impls : impl array; contended : int Atomic.t array }

let create (specs : Sim.lock_spec array) =
  {
    impls =
      Array.map
        (fun (s : Sim.lock_spec) ->
          match s.Sim.lflavor with
          | Costmodel.Mutex | Costmodel.Libsafe -> Lmutex (Mutex.create ())
          | Costmodel.Spin -> Lspin (Spin.lock_create ()))
        specs;
    contended = Array.init (Array.length specs) (fun _ -> Atomic.make 0);
  }

let count t = Array.length t.impls

let acquire t i =
  match t.impls.(i) with
  | Lmutex m ->
      if not (Mutex.try_lock m) then begin
        Atomic.incr t.contended.(i);
        Mutex.lock m
      end
  | Lspin l -> Spin.acquire ~on_contend:(fun () -> Atomic.incr t.contended.(i)) l

let release t i =
  match t.impls.(i) with Lmutex m -> Mutex.unlock m | Lspin l -> Spin.release l

let contended_total t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.contended
