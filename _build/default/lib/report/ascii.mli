(** Plain-text table and chart rendering for the evaluation reports. *)

(** Render a table: header row plus data rows, columns padded to fit. *)
val table : header:string list -> string list list -> string

(** Render speedup-vs-threads curves as an ASCII chart; each series is a
    name with [(threads, speedup)] points. *)
val chart : ?height:int -> max_threads:int -> (string * (int * float) list) list -> string
