test/test_lang.ml: Alcotest Commset_lang Commset_runtime Commset_support Diag List Loc Option Printf QCheck QCheck_alcotest String
