(** Lowering from the typed miniC AST to the IR.

    COMMSET specifics:
    - an annotated source block becomes a {!Ir.region}: lowering forces a
      fresh basic block at region entry and exit so a region is a set of
      whole blocks with a unique entry;
    - `SELF` references materialize into unique singleton self sets named
      [__self_r<id>] (for regions) — interface-level SELF memberships are
      resolved later by the metadata manager as [__self_f<name>];
    - `enable` statement pragmas arm subsequent calls (anywhere in the
      same function) to the named callee with {!Ir.enable} records whose
      actuals are evaluated at the call site. *)

open Commset_support
module Ast = Commset_lang.Ast

type builder = {
  func : Ir.func;
  mutable current : Ir.block;
  mutable scopes : (string, Ir.reg) Hashtbl.t list;
  mutable region_stack : int list;
  mutable loop_depth : int;
  (* break / continue targets, innermost first *)
  mutable loop_targets : (Ir.label * Ir.label) list;
  mutable enables : (string * Ir.enable_spec) list;  (** callee -> spec *)
  globals : (string, Ast.ty) Hashtbl.t;
}

let fresh_reg ?name ?ty b =
  let r = b.func.Ir.n_regs in
  b.func.Ir.n_regs <- r + 1;
  (match name with Some n -> Hashtbl.replace b.func.Ir.reg_names r n | None -> ());
  (match ty with Some t -> Hashtbl.replace b.func.Ir.reg_types r t | None -> ());
  r

let fresh_label b =
  let l = b.func.Ir.n_labels in
  b.func.Ir.n_labels <- l + 1;
  l

let new_block b label =
  let blk = { Ir.label; instrs = []; term = Ir.Ret None; bregions = b.region_stack } in
  Hashtbl.replace b.func.Ir.blocks label blk;
  b.func.Ir.block_order <- b.func.Ir.block_order @ [ label ];
  blk

let emit b desc loc =
  let iid = b.func.Ir.n_instrs in
  b.func.Ir.n_instrs <- iid + 1;
  let i = { Ir.iid; desc; iloc = loc; iregions = b.region_stack } in
  b.current.Ir.instrs <- b.current.Ir.instrs @ [ i ];
  i

let set_term b term = b.current.Ir.term <- term

(* switch emission to an existing or new block *)
let start_block b label =
  let blk =
    match Hashtbl.find_opt b.func.Ir.blocks label with
    | Some blk -> blk
    | None -> new_block b label
  in
  b.current <- blk

let find_var b name = List.find_map (fun tbl -> Hashtbl.find_opt tbl name) b.scopes

let declare_var b name ty =
  let r = fresh_reg ~name ~ty b in
  (match b.scopes with
  | tbl :: _ -> Hashtbl.replace tbl name r
  | [] -> assert false);
  r

let push_scope b = b.scopes <- Hashtbl.create 8 :: b.scopes
let pop_scope b = b.scopes <- List.tl b.scopes

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let expr_ty (e : Ast.expr) =
  match e.ety with
  | Some t -> t
  | None -> Diag.error ~loc:e.eloc "internal: expression was not type-checked"

let rec lower_expr b (e : Ast.expr) : Ir.operand =
  match e.edesc with
  | Ast.Int_lit n -> Ir.Const (Ir.Cint n)
  | Ast.Float_lit f -> Ir.Const (Ir.Cfloat f)
  | Ast.Bool_lit v -> Ir.Const (Ir.Cbool v)
  | Ast.String_lit s -> Ir.Const (Ir.Cstring s)
  | Ast.Var name -> (
      match find_var b name with
      | Some r -> Ir.Reg r
      | None ->
          if Hashtbl.mem b.globals name then begin
            let r = fresh_reg b in
            let _ = emit b (Ir.Load_global (r, name)) e.eloc in
            Ir.Reg r
          end
          else Diag.error ~loc:e.eloc "internal: unbound variable '%s' after type checking" name)
  | Ast.Binop (op, x, y) ->
      let ox = lower_expr b x in
      let oy = lower_expr b y in
      let r = fresh_reg b in
      let _ = emit b (Ir.Binop (op, expr_ty x, r, ox, oy)) e.eloc in
      Ir.Reg r
  | Ast.Unop (op, x) ->
      let ox = lower_expr b x in
      let r = fresh_reg b in
      let _ = emit b (Ir.Unop (op, expr_ty x, r, ox)) e.eloc in
      Ir.Reg r
  | Ast.Index (arr, idx) ->
      let oa = lower_expr b arr in
      let oi = lower_expr b idx in
      let r = fresh_reg b in
      let _ = emit b (Ir.Load_index (r, oa, oi)) e.eloc in
      Ir.Reg r
  | Ast.Call (callee, args) ->
      let oargs = List.map (lower_expr b) args in
      let dst = if expr_ty e = Ast.Tvoid then None else Some (fresh_reg b) in
      let enabled = enables_for b callee in
      let _ = emit b (Ir.Call { dst; callee; args = oargs; enabled }) e.eloc in
      (match dst with Some r -> Ir.Reg r | None -> Ir.Const (Ir.Cint 0))

(* evaluate the recorded enable specs for a callee at this call site *)
and enables_for b callee =
  List.filter_map
    (fun (c, spec) -> if c = callee then Some (eval_enable_spec b spec) else None)
    b.enables

and eval_enable_spec b (spec : Ir.enable_spec) : Ir.enable =
  {
    Ir.en_block = spec.Ir.es_block;
    en_sets =
      List.map
        (fun (set, exprs) -> (set, List.map (lower_expr b) exprs))
        spec.Ir.es_sets;
  }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let default_const = function
  | Ast.Tint -> Ir.Cint 0
  | Ast.Tfloat -> Ir.Cfloat 0.
  | Ast.Tbool -> Ir.Cbool false
  | Ast.Tstring -> Ir.Cstring ""
  | Ast.Tvoid | Ast.Tarray _ -> Ir.Cint 0

let self_region_set rid = Printf.sprintf "__self_r%d" rid

let rec lower_stmt b (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Decl (ty, name, init) ->
      let value =
        match init with
        | Some e -> lower_expr b e
        | None -> Ir.Const (default_const ty)
      in
      let r = declare_var b name ty in
      let _ = emit b (Ir.Move (r, value)) s.sloc in
      (match ty with
      | Ast.Tarray _ when b.loop_depth > 0 ->
          b.func.Ir.loop_locals <- (r, s.sloc) :: b.func.Ir.loop_locals
      | _ -> ())
  | Ast.Assign (name, e) -> (
      let value = lower_expr b e in
      match find_var b name with
      | Some r ->
          let _ = emit b (Ir.Move (r, value)) s.sloc in
          ()
      | None ->
          if Hashtbl.mem b.globals name then
            let _ = emit b (Ir.Store_global (name, value)) s.sloc in
            ()
          else Diag.error ~loc:s.sloc "internal: unbound variable '%s'" name)
  | Ast.Store (arr, idx, e) ->
      let oa = lower_expr b arr in
      let oi = lower_expr b idx in
      let ov = lower_expr b e in
      let _ = emit b (Ir.Store_index (oa, oi, ov)) s.sloc in
      ()
  | Ast.Expr e ->
      let _ = lower_expr b e in
      ()
  | Ast.If (cond, then_b, else_b) ->
      let oc = lower_expr b cond in
      let l_then = fresh_label b in
      let l_else = fresh_label b in
      let l_join = fresh_label b in
      set_term b (Ir.Branch (oc, l_then, l_else));
      start_block b l_then;
      lower_block b then_b;
      set_term b (Ir.Jump l_join);
      start_block b l_else;
      (match else_b with Some eb -> lower_block b eb | None -> ());
      set_term b (Ir.Jump l_join);
      start_block b l_join
  | Ast.While (cond, body) ->
      let l_header = fresh_label b in
      let l_body = fresh_label b in
      let l_exit = fresh_label b in
      set_term b (Ir.Jump l_header);
      start_block b l_header;
      let oc = lower_expr b cond in
      set_term b (Ir.Branch (oc, l_body, l_exit));
      start_block b l_body;
      b.loop_depth <- b.loop_depth + 1;
      b.loop_targets <- (l_exit, l_header) :: b.loop_targets;
      lower_block b body;
      b.loop_targets <- List.tl b.loop_targets;
      b.loop_depth <- b.loop_depth - 1;
      set_term b (Ir.Jump l_header);
      start_block b l_exit
  | Ast.For (init, cond, step, body) ->
      push_scope b;
      Option.iter (lower_stmt b) init;
      let l_header = fresh_label b in
      let l_body = fresh_label b in
      let l_step = fresh_label b in
      let l_exit = fresh_label b in
      set_term b (Ir.Jump l_header);
      start_block b l_header;
      (match cond with
      | Some c ->
          let oc = lower_expr b c in
          set_term b (Ir.Branch (oc, l_body, l_exit))
      | None -> set_term b (Ir.Jump l_body));
      start_block b l_body;
      b.loop_depth <- b.loop_depth + 1;
      b.loop_targets <- (l_exit, l_step) :: b.loop_targets;
      lower_block b body;
      b.loop_targets <- List.tl b.loop_targets;
      b.loop_depth <- b.loop_depth - 1;
      set_term b (Ir.Jump l_step);
      start_block b l_step;
      Option.iter (lower_stmt b) step;
      set_term b (Ir.Jump l_header);
      start_block b l_exit;
      pop_scope b
  | Ast.Return eo ->
      let ov = Option.map (lower_expr b) eo in
      set_term b (Ir.Ret ov);
      (* code after a return is unreachable; give it a fresh block *)
      start_block b (fresh_label b)
  | Ast.Break -> (
      match b.loop_targets with
      | (l_exit, _) :: _ ->
          set_term b (Ir.Jump l_exit);
          start_block b (fresh_label b)
      | [] -> Diag.error ~loc:s.sloc "internal: break outside loop after type checking")
  | Ast.Continue -> (
      match b.loop_targets with
      | (_, l_cont) :: _ ->
          set_term b (Ir.Jump l_cont);
          start_block b (fresh_label b)
      | [] -> Diag.error ~loc:s.sloc "internal: continue outside loop after type checking")
  | Ast.Block blk ->
      if blk.annots = [] then begin
        push_scope b;
        lower_block_stmts b blk;
        pop_scope b
      end
      else lower_annotated_block b blk
  | Ast.Pragma_stmt p -> (
      match p.pdesc with
      | Ast.P_enable { callee; block_name; sets } ->
          let spec =
            {
              Ir.es_block = block_name;
              es_sets = List.map (fun (r : Ast.commset_ref) -> (r.set_name, r.actuals)) sets;
            }
          in
          b.enables <- b.enables @ [ (callee, spec) ]
      | _ -> Diag.error ~loc:p.ploc "internal: unexpected statement pragma after type checking")

and lower_block b blk =
  if blk.annots = [] then begin
    push_scope b;
    lower_block_stmts b blk;
    pop_scope b
  end
  else lower_annotated_block b blk

and lower_block_stmts b blk = List.iter (lower_stmt b) blk.Ast.stmts

(* An annotated block becomes a region of whole basic blocks. *)
and lower_annotated_block b (blk : Ast.block) =
  let rid = List.length b.func.Ir.fregions in
  let rname =
    List.find_map
      (fun (p : Ast.pragma) ->
        match p.pdesc with Ast.P_namedblock n -> Some n | _ -> None)
      blk.annots
  in
  (* evaluate predicate actuals in the enclosing block, before entry *)
  let rrefs =
    List.concat_map
      (fun (p : Ast.pragma) ->
        match p.pdesc with
        | Ast.P_member refs ->
            List.map
              (fun (r : Ast.commset_ref) ->
                let set =
                  if r.set_name = "SELF" then self_region_set rid else r.set_name
                in
                (set, List.map (lower_expr b) r.actuals))
              refs
        | _ -> [])
      blk.annots
  in
  let l_entry = fresh_label b in
  let l_exit = fresh_label b in
  set_term b (Ir.Jump l_entry);
  b.region_stack <- rid :: b.region_stack;
  start_block b l_entry;
  let region =
    { Ir.rid; rname; rrefs; rentry = l_entry; rloc = blk.bloc }
  in
  b.func.Ir.fregions <- b.func.Ir.fregions @ [ region ];
  push_scope b;
  lower_block_stmts b blk;
  pop_scope b;
  set_term b (Ir.Jump l_exit);
  b.region_stack <- List.tl b.region_stack;
  start_block b l_exit

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)
(* ------------------------------------------------------------------ *)

let lower_fundecl globals (f : Ast.fundecl) : Ir.func =
  let func =
    {
      Ir.fname = f.fname;
      fparams = f.params;
      param_regs = [];
      fret = f.ret;
      entry = 0;
      blocks = Hashtbl.create 16;
      block_order = [];
      reg_names = Hashtbl.create 16;
      reg_types = Hashtbl.create 16;
      n_regs = 0;
      n_labels = 0;
      n_instrs = 0;
      fregions = [];
      loop_locals = [];
    }
  in
  let b =
    {
      func;
      current = { Ir.label = -1; instrs = []; term = Ir.Ret None; bregions = [] };
      scopes = [];
      region_stack = [];
      loop_depth = 0;
      loop_targets = [];
      enables = [];
      globals;
    }
  in
  push_scope b;
  func.Ir.param_regs <- List.map (fun (ty, name) -> declare_var b name ty) f.params;
  let entry = fresh_label b in
  assert (entry = func.Ir.entry);
  start_block b entry;
  lower_block_stmts b f.body;
  (* implicit return: void functions fall off the end; non-void functions
     return the type's default value (the interpreter warns on this) *)
  (match f.ret with
  | Ast.Tvoid -> set_term b (Ir.Ret None)
  | ty -> set_term b (Ir.Ret (Some (Ir.Const (default_const ty)))));
  func

let lower_program (p : Ast.program) : Ir.program =
  let globals = Hashtbl.create 16 in
  List.iter (fun (ty, name, _, _) -> Hashtbl.replace globals name ty) (Ast.globals p);
  let prog_globals =
    List.map
      (fun (ty, name, init, _) ->
        let const =
          match init with
          | Some { Ast.edesc = Ast.Int_lit n; _ } -> Ir.Cint n
          | Some { Ast.edesc = Ast.Float_lit f; _ } -> Ir.Cfloat f
          | Some { Ast.edesc = Ast.Bool_lit v; _ } -> Ir.Cbool v
          | Some { Ast.edesc = Ast.String_lit s; _ } -> Ir.Cstring s
          | Some _ | None -> default_const ty
        in
        (name, ty, const))
      (Ast.globals p)
  in
  let funcs = Hashtbl.create 16 in
  let func_order = List.map (fun (f : Ast.fundecl) -> f.fname) (Ast.functions p) in
  List.iter
    (fun (f : Ast.fundecl) -> Hashtbl.replace funcs f.fname (lower_fundecl globals f))
    (Ast.functions p);
  { Ir.funcs; func_order; prog_globals; source = p }
