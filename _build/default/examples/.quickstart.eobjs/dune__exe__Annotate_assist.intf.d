examples/annotate_assist.mli:
