(** Well-definedness and well-formedness checks (paper §3.1, §4.2):
    structured control flow within members, no transitive calls between
    members of one commset, an acyclic COMMSET graph (the deadlock-freedom
    precondition together with rank-ordered locks and acyclic queues), and
    pure predicates. *)

open Commset_support

(** Run every check; raises [Diag.Error] on the first violation. Returns
    the COMMSET graph for inspection. *)
val check : Metadata.t -> lookup:Commset_analysis.Effects.lookup -> string Digraph.t
