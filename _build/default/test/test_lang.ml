(** Tests for the miniC frontend: lexer, parser (including the COMMSET
    pragma sub-grammar), pretty-printer round trips, and the type
    checker's acceptance and rejection behaviour. *)

module L = Commset_lang
module R = Commset_runtime
open Commset_support

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let tokens src =
  List.map (fun t -> t.L.Token.tok) (L.Lexer.tokenize src)
  |> List.filter (fun t -> t <> L.Token.EOF)

let token_strings src = List.map L.Token.to_string (tokens src)

(* ---- lexer ---- *)

let test_lexer_basics () =
  check
    Alcotest.(list string)
    "operators" [ "x"; "="; "x"; "+"; "1"; ";" ] (token_strings "x = x + 1;");
  check Alcotest.(list string) "two-char ops"
    [ "<="; ">="; "=="; "!="; "&&"; "||"; "++"; "--"; "+="; "-=" ]
    (token_strings "<= >= == != && || ++ -- += -=");
  check Alcotest.(list string) "comments skipped" [ "a"; "b" ]
    (token_strings "a // line\n /* block \n comment */ b");
  check Alcotest.(list string) "string escapes" [ "\"a\\nb\"" ] (token_strings {|"a\nb"|});
  check Alcotest.(list string) "float vs int" [ "1.5"; "2" ] (token_strings "1.5 2");
  check Alcotest.(list string) "keywords" [ "if"; "else"; "while"; "for"; "return" ]
    (token_strings "if else while for return")

let test_lexer_pragma () =
  match tokens "#pragma commset decl S self\nint x" with
  | [ L.Token.PRAGMA text; L.Token.KW_INT; L.Token.IDENT "x" ] ->
      check Alcotest.string "pragma payload" "commset decl S self" text
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_errors () =
  let fails s =
    match Diag.guard (fun () -> L.Lexer.tokenize s) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected lexer error on %S" s
  in
  fails "\"unterminated";
  fails "/* unterminated";
  fails "a $ b";
  fails "a & b"

let test_lexer_positions () =
  let toks = L.Lexer.tokenize "ab\n  cd" in
  match toks with
  | [ a; c; _eof ] ->
      check Alcotest.int "first line" 1 (Loc.line a.L.Token.loc);
      check Alcotest.int "second line" 2 (Loc.line c.L.Token.loc);
      check Alcotest.int "second col" 3 (Loc.column c.L.Token.loc)
  | _ -> Alcotest.fail "expected two tokens"

(* ---- parser ---- *)

let parse src = L.Parser.parse_program ~file:"<test>" src

let parse_fails src =
  match Diag.guard (fun () -> parse src) with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected parse error on %S" src

let test_parser_shapes () =
  let p = parse "int add(int a, int b) { return a + b * 2; }" in
  match L.Ast.functions p with
  | [ f ] -> (
      check Alcotest.string "name" "add" f.L.Ast.fname;
      check Alcotest.int "params" 2 (List.length f.L.Ast.params);
      match f.L.Ast.body.L.Ast.stmts with
      | [ { L.Ast.sdesc = L.Ast.Return (Some e); _ } ] -> (
          (* precedence: a + (b * 2) *)
          match e.L.Ast.edesc with
          | L.Ast.Binop (L.Ast.Add, _, { L.Ast.edesc = L.Ast.Binop (L.Ast.Mul, _, _); _ }) -> ()
          | _ -> Alcotest.fail "wrong precedence")
      | _ -> Alcotest.fail "expected a single return")
  | _ -> Alcotest.fail "expected one function"

let test_parser_sugar () =
  (* i++ / i += k desugar to assignments *)
  let p = parse "void main() { int i = 0; i++; i += 2; i--; }" in
  let f = List.hd (L.Ast.functions p) in
  let assigns = ref 0 in
  L.Ast.iter_stmts
    (fun s -> match s.L.Ast.sdesc with L.Ast.Assign _ -> incr assigns | _ -> ())
    f.L.Ast.body;
  check Alcotest.int "three desugared assignments" 3 !assigns

let test_parser_pragmas () =
  let src =
    {|
#pragma commset decl FSET group
#pragma commset predicate FSET (a, b) (c, d) (a != c || b != d)
#pragma commset nosync FSET
void main() {
  for (int i = 0; i < 3; i++) {
    #pragma commset member FSET(i, 0), SELF
    {
      print("x");
    }
    #pragma commset enable f.BLOCK in FSET(i, 1)
  }
}
#pragma commset namedarg BLOCK
void f() {
  #pragma commset namedblock BLOCK
  {
    print("y");
  }
}
|}
  in
  let p = parse src in
  check Alcotest.int "global pragmas" 3 (List.length p.L.Ast.global_pragmas);
  (match p.L.Ast.global_pragmas with
  | [ { L.Ast.pdesc = L.Ast.P_decl { set_name = "FSET"; kind = L.Ast.Group_set }; _ };
      { L.Ast.pdesc = L.Ast.P_predicate { params1 = [ "a"; "b" ]; params2 = [ "c"; "d" ]; _ }; _ };
      { L.Ast.pdesc = L.Ast.P_nosync "FSET"; _ } ] ->
      ()
  | _ -> Alcotest.fail "wrong global pragma shapes");
  let main = Option.get (L.Ast.find_function p "main") in
  let members = ref 0 and enables = ref 0 in
  L.Ast.iter_blocks
    (fun b ->
      List.iter
        (fun (pr : L.Ast.pragma) ->
          match pr.L.Ast.pdesc with L.Ast.P_member _ -> incr members | _ -> ())
        b.L.Ast.annots)
    main.L.Ast.body;
  L.Ast.iter_stmts
    (fun s ->
      match s.L.Ast.sdesc with
      | L.Ast.Pragma_stmt { L.Ast.pdesc = L.Ast.P_enable _; _ } -> incr enables
      | _ -> ())
    main.L.Ast.body;
  check Alcotest.int "member annots" 1 !members;
  check Alcotest.int "enable pragmas" 1 !enables;
  let f = Option.get (L.Ast.find_function p "f") in
  check Alcotest.int "namedarg on f" 1 (List.length f.L.Ast.fannots)

let test_parser_errors () =
  parse_fails "int f( { }";
  parse_fails "void f() { x = ; }";
  parse_fails "void f() { if x { } }";
  parse_fails "void f() { 1 + 2; }" (* expression statement must be a call *);
  parse_fails "#pragma commset member S\nint g;" (* member pragma needs a block *);
  parse_fails "#pragma commset decl S neither\nvoid f() { }";
  parse_fails "#pragma bogus\nvoid f() { }"

(* round trip: pretty-print then re-parse; compare printed forms *)
let test_roundtrip () =
  let srcs =
    [
      "void main() { for (int i = 0; i < 4; i++) { print(int_to_string(i)); } }";
      "int f(int x) { if (x > 0) { return x; } else { return 0 - x; } }";
      {|
#pragma commset decl S self
#pragma commset predicate S (a) (b) (a != b)
void main() {
  int i = 0;
  while (i < 3) {
    #pragma commset member S(i)
    {
      print("hello" + int_to_string(i));
    }
    i = i + 1;
  }
}
|};
    ]
  in
  List.iter
    (fun src ->
      let once = L.Pretty.program_to_string (parse src) in
      let twice = L.Pretty.program_to_string (parse once) in
      check Alcotest.string "pretty fixpoint" once twice)
    srcs

(* property: pretty ∘ parse is a fixpoint on generated expressions *)
let expr_gen =
  let open QCheck.Gen in
  let rec gen depth =
    if depth = 0 then
      oneof [ map string_of_int (int_bound 99); return "x"; return "y" ]
    else
      let sub = gen (depth - 1) in
      oneof
        [
          sub;
          (let* a = sub and* b = sub in
           let* op = oneofl [ "+"; "-"; "*" ] in
           return (Printf.sprintf "(%s %s %s)" a op b));
          (let* a = sub in
           return (Printf.sprintf "(-%s)" a));
        ]
  in
  gen 3

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"expression pretty/parse fixpoint" ~count:300 (QCheck.make expr_gen)
    (fun src ->
      let e1 = L.Parser.parse_expr_string src in
      let p1 = L.Pretty.expr_to_string e1 in
      let p2 = L.Pretty.expr_to_string (L.Parser.parse_expr_string p1) in
      p1 = p2)

(* ---- type checker ---- *)

let typecheck src = L.Typecheck.check ~externs:R.Builtins.extern_sigs (parse src)

let accepts src =
  match Diag.guard (fun () -> typecheck src) with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "expected to typecheck, got: %s" d.Diag.message

let contains ~substr s =
  let n = String.length substr and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = substr || go (i + 1)) in
  n = 0 || go 0

let rejects ~substr src =
  match Diag.guard (fun () -> typecheck src) with
  | Error d ->
      let msg = d.Diag.message in
      if not (contains ~substr msg) then
        Alcotest.failf "error %S does not mention %S" msg substr
  | Ok _ -> Alcotest.failf "expected a type error mentioning %S" substr

let test_typecheck_accepts () =
  accepts "void main() { int x = 1; float y = 2.0; string s = \"a\"; bool b = true; }";
  accepts "void main() { int[] a = iarray(4); a[0] = 3; int x = a[0]; }";
  accepts "int g = 5; void main() { g = g + 1; print(int_to_string(g)); }";
  accepts "float f(float x) { return x * 2.0; } void main() { float y = f(1.5); }";
  accepts "void main() { for (int i = 0; i < 3; i++) { if (i % 2 == 0) { continue; } break; } }"

let test_typecheck_rejects () =
  rejects ~substr:"undefined variable" "void main() { x = 1; }";
  rejects ~substr:"cannot be applied" "void main() { int x = 1 + 2.0; }";
  rejects ~substr:"must be bool" "void main() { if (1) { } }";
  rejects ~substr:"expects 1 argument" "void main() { print(); }";
  rejects ~substr:"but string was expected" "void main() { print(3); }";
  rejects ~substr:"return" "int f() { return; }";
  rejects ~substr:"void function" "void f() { return 1; }";
  rejects ~substr:"break/continue" "void main() { break; }";
  rejects ~substr:"already declared" "void main() { int x = 1; int x = 2; }";
  rejects ~substr:"defined twice" "void f() { } void f() { }";
  rejects ~substr:"shadows a builtin" "int print(int x) { return x; }";
  rejects ~substr:"non-array" "void main() { int x = 3; int y = x[0]; }"

let test_typecheck_commset () =
  rejects ~substr:"undeclared commset"
    "void main() {\n#pragma commset member NOPE\n{ print(\"x\"); }\n}";
  rejects ~substr:"no predicate"
    "#pragma commset decl S group\nvoid main() {\n#pragma commset member S(1)\n{ print(\"x\"); }\n}";
  rejects ~substr:"must have type bool"
    "#pragma commset decl S group\n#pragma commset predicate S (a) (b) (a + b)\nvoid main() {\n#pragma commset member S(1)\n{ print(\"x\"); }\n}";
  rejects ~substr:"different types"
    "#pragma commset decl S group\n#pragma commset predicate S (a) (b) (a != b)\nvoid main() {\n#pragma commset member S(1)\n{ print(\"a\"); }\n#pragma commset member S(\"s\")\n{ print(\"b\"); }\n}";
  rejects ~substr:"does not export"
    "#pragma commset decl S self\nvoid g() { }\nvoid main() {\n#pragma commset enable g.B in S\nprint(\"x\");\n}";
  accepts
    "#pragma commset decl S self\n#pragma commset predicate S (a) (b) (a != b)\nvoid main() { for (int i = 0; i < 2; i++) {\n#pragma commset member S(i)\n{ print(int_to_string(i)); }\n} }"

let suite =
  ( "lang",
    [
      Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
      Alcotest.test_case "lexer pragma" `Quick test_lexer_pragma;
      Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
      Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
      Alcotest.test_case "parser shapes" `Quick test_parser_shapes;
      Alcotest.test_case "parser sugar" `Quick test_parser_sugar;
      Alcotest.test_case "parser pragmas" `Quick test_parser_pragmas;
      Alcotest.test_case "parser errors" `Quick test_parser_errors;
      Alcotest.test_case "pretty round trip" `Quick test_roundtrip;
      Alcotest.test_case "typecheck accepts" `Quick test_typecheck_accepts;
      Alcotest.test_case "typecheck rejects" `Quick test_typecheck_rejects;
      Alcotest.test_case "typecheck commset" `Quick test_typecheck_commset;
      qcheck prop_expr_roundtrip;
    ] )
