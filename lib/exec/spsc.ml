(** Bounded lock-free SPSC ring; see the interface for the memory-model
    argument. Indices grow without wrapping (63-bit counters cannot
    overflow in any real run); the slot of index [i] is [i mod capacity]. *)

type 'a t = {
  buf : 'a option array;
  cap : int;
  head : int Atomic.t;  (** next index to pop; written only by the consumer *)
  tail : int Atomic.t;  (** next index to push; written only by the producer *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be >= 1";
  {
    buf = Array.make capacity None;
    cap = capacity;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.cap
let length t = Atomic.get t.tail - Atomic.get t.head

let try_push t x =
  let tl = Atomic.get t.tail in
  if tl - Atomic.get t.head >= t.cap then false
  else begin
    t.buf.(tl mod t.cap) <- Some x;
    Atomic.set t.tail (tl + 1);
    true
  end

let try_pop t =
  let hd = Atomic.get t.head in
  if Atomic.get t.tail - hd <= 0 then None
  else begin
    let slot = hd mod t.cap in
    let v = t.buf.(slot) in
    (* drop the reference so a queued value does not outlive its pop *)
    t.buf.(slot) <- None;
    Atomic.set t.head (hd + 1);
    v
  end

let push ?(on_wait = fun () -> ()) t x =
  if not (try_push t x) then begin
    on_wait ();
    let b = Spin.backoff () in
    while not (try_push t x) do
      Spin.once b
    done
  end

let pop ?(on_wait = fun () -> ()) t =
  match try_pop t with
  | Some v -> v
  | None ->
      on_wait ();
      let b = Spin.backoff () in
      let rec wait () =
        match try_pop t with
        | Some v -> v
        | None ->
            Spin.once b;
            wait ()
      in
      wait ()
