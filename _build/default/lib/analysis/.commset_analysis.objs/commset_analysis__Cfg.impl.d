lib/analysis/cfg.ml: Commset_ir Hashtbl List Option
