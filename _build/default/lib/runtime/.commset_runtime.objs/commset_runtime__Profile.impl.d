lib/runtime/profile.ml: Commset_analysis Commset_ir Commset_support Hashtbl Interp List Machine Option
