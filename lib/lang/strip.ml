(** Pragma removal at the AST level.

    Eliding every COMMSET pragma from a program must leave a well-defined
    sequential program (the paper's core design rule); this module
    performs that elision structurally — global directives, block and
    function annotations, and statement-position [enable] pragmas all
    disappear, everything else is preserved — so tools can build the
    unannotated twin of a program without re-lexing its source. The
    textual [Workload.strip_pragmas] remains for raw sources; this is
    the semantic counterpart used by the synthesizer. *)

open Ast

let rec strip_stmt s =
  match s.sdesc with
  | Pragma_stmt _ -> None
  | If (c, b1, b2) ->
      Some { s with sdesc = If (c, strip_block b1, Option.map strip_block b2) }
  | While (c, b) -> Some { s with sdesc = While (c, strip_block b) }
  | For (init, cond, step, b) ->
      Some { s with sdesc = For (init, cond, step, strip_block b) }
  | Block b -> Some { s with sdesc = Block (strip_block b) }
  | Decl _ | Assign _ | Store _ | Expr _ | Return _ | Break | Continue -> Some s

and strip_block b =
  { b with stmts = List.filter_map strip_stmt b.stmts; annots = [] }

let strip_fundecl f = { f with body = strip_block f.body; fannots = [] }

let strip_topdecl = function
  | Gfun f -> Gfun (strip_fundecl f)
  | Gvar _ as g -> g

let strip_program p =
  { global_pragmas = []; decls = List.map strip_topdecl p.decls }

(** Count the pragmas a strip would remove. *)
let count_pragmas p =
  let n = ref (List.length p.global_pragmas) in
  List.iter
    (function
      | Gvar _ -> ()
      | Gfun f ->
          n := !n + List.length f.fannots;
          iter_blocks (fun b -> n := !n + List.length b.annots) f.body;
          iter_stmts
            (fun s -> match s.sdesc with Pragma_stmt _ -> incr n | _ -> ())
            f.body)
    p.decls;
  !n
