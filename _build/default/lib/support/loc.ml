(** Source locations for miniC programs.

    A location is a half-open span [(start, stop))] within a named source
    buffer. Lines and columns are 1-based; [offset] is the 0-based byte
    offset used for slicing the original text when reporting. *)

type position = {
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
  offset : int;  (** 0-based byte offset in the buffer *)
}

type t = {
  file : string;  (** logical name of the source buffer *)
  start_pos : position;
  end_pos : position;
}

let dummy_position = { line = 0; col = 0; offset = 0 }
let dummy = { file = "<none>"; start_pos = dummy_position; end_pos = dummy_position }
let is_dummy t = t.file = "<none>"

let make ~file ~start_pos ~end_pos = { file; start_pos; end_pos }

let position ~line ~col ~offset = { line; col; offset }

(** [merge a b] spans from the start of [a] to the end of [b]. The file of
    [a] wins; merging with a dummy location returns the other location. *)
let merge a b =
  if is_dummy a then b
  else if is_dummy b then a
  else { a with end_pos = b.end_pos }

let line t = t.start_pos.line
let column t = t.start_pos.col

let pp ppf t =
  if is_dummy t then Fmt.string ppf "<unknown>"
  else if t.start_pos.line = t.end_pos.line then
    Fmt.pf ppf "%s:%d:%d-%d" t.file t.start_pos.line t.start_pos.col t.end_pos.col
  else
    Fmt.pf ppf "%s:%d:%d-%d:%d" t.file t.start_pos.line t.start_pos.col t.end_pos.line
      t.end_pos.col

let to_string t = Fmt.str "%a" pp t
