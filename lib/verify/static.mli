(** Static commutativity checking by symbolic differencing of the two
    interleavings of every member pair of every commset. *)

module Ir = Commset_ir.Ir
module A = Commset_analysis
module S = A.Symexec
module Metadata = Commset_core.Metadata

type ctx

val create :
  md:Metadata.t ->
  target_fname:string ->
  loop:A.Loops.loop ->
  induction:A.Induction.t ->
  ctx

(** An invocation site of a member: the function whose registers the
    predicate actuals live in, those actuals for one set, and the block
    the site sits in. *)
type site = {
  site_fn : string;
  site_label : Ir.label option;
  site_actuals : Ir.operand list;
}

(** Every place a member can be invoked as an instance of the set. *)
val sites : ctx -> string -> Metadata.member -> site list

(** Verdict for one member pair of one set. *)
val check_pair : ctx -> Metadata.set_info -> Metadata.member -> Metadata.member -> Verdict.t

(** Like {!check_pair}, but also returns the difference residue per
    admitted iteration fact — the structured obstruction (or lack of
    one) the verdict was folded from. *)
val check_pair_res :
  ctx ->
  Metadata.set_info ->
  Metadata.member ->
  Metadata.member ->
  Verdict.t * (S.iteration_fact * Residue.t) list

(** The member pairs a set asserts commutative: each member against
    itself for Self sets, distinct members for Group sets. *)
val pairs_of_set :
  Metadata.t -> Metadata.set_info -> (Metadata.member * Metadata.member * bool) list

(** Check every pair of every commset. *)
val run : ctx -> Verdict.report
