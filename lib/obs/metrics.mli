(** Process-wide metrics registry: named counters, gauges and
    histograms, all [Atomic]-backed so any domain can update them
    without locks.

    Metrics whose increments are data-driven (tasks executed, simulator
    aborts, interpreter steps) end up with the same final value for any
    [COMMSET_JOBS]: integer atomic additions commute. Time-derived
    gauges (busy/idle seconds) naturally vary run to run and carry no
    determinism promise.

    Creation ([counter] / [gauge] / [histogram]) takes a registry lock
    and is meant for module-initialization time; updates are single
    atomic operations and safe on hot-ish paths (per chunk, per
    simulation run — not per interpreter instruction; accumulate locally
    and flush once instead). *)

(** Monotonically increasing integer counter. *)
type counter

(** [counter name] returns the counter registered under [name], creating
    it on first use. Counter and gauge names share one namespace; asking
    for an existing name with a different kind raises
    [Invalid_argument]. *)
val counter : ?doc:string -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** Float accumulator / last-value cell. [gauge_add] is a CAS loop (and
    therefore not bit-deterministic across domain interleavings — float
    addition does not commute in the last ulp); [gauge_set] overwrites. *)
type gauge

val gauge : ?doc:string -> string -> gauge
val gauge_add : gauge -> float -> unit
val gauge_set : gauge -> float -> unit
val gauge_value : gauge -> float

(** Log₂-bucketed histogram of non-negative float observations. Bucket
    [i] counts observations [v] with [2^(i-32) <= v < 2^(i-31)]
    (observations of [0.] land in bucket 0, huge values clamp to the
    last bucket), so one histogram spans nanoseconds to hours. *)
type histogram

val histogram : ?doc:string -> string -> histogram
val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float

(** A standalone histogram outside the registry — same atomics-backed
    representation, but private to the caller (the attribution layer
    keeps per-run histograms this way so [reset] of the global registry
    cannot race a run in progress). *)
val hist_make : unit -> histogram

(** [hist_quantile h q] estimates the [q]-quantile ([0. <= q <= 1.]) by
    linear interpolation inside the log₂ bucket holding rank
    [q · count]: exact for distributions uniform within each bucket,
    always within the bucket (a factor of 2) otherwise. [0.] on an
    empty histogram. *)
val hist_quantile : histogram -> float -> float

(** Snapshot of every registered metric, sorted by name: counters and
    gauges as [(name, value)]; histograms contribute [name ^ ".count"]
    and [name ^ ".sum"]. *)
val snapshot : unit -> (string * float) list

(** Machine-readable dump: [{ "metrics": [ { "name": ..., "kind":
    "counter" | "gauge" | "histogram", ... }, ... ] }]. Accepted by
    {!Json_strict.parse}. *)
val to_json : unit -> string

(** Flat [name value] text dump, one metric per line, sorted. *)
val to_text : unit -> string

(** Zero every registered metric (tests and benchmark legs). *)
val reset : unit -> unit

(** JSON string-body escaping (shared with the trace exporter). *)
val json_escape : string -> string
