(** All eight evaluation workloads, in the paper's Table 2 order. *)

val all : Workload.t list
val find : string -> Workload.t option
val names : string list
