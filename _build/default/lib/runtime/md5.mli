(** MD5 message digest (RFC 1321), implemented from scratch; validated
    against the RFC's test vectors in the test suite. *)

(** Lowercase hexadecimal digest (32 characters). *)
val digest_bytes : Bytes.t -> string

val digest_string : string -> string
