lib/workloads/potrace.ml: Bytes Char Commset_runtime Printf Workload
