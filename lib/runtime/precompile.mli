(** Prepared-program execution layer: a one-time pass resolving an
    {!Ir.program} into an array-indexed, closure-threaded form, and two
    engines over it — a null-hooks fast path (zero dispatch, zero
    allocation per instruction) and an instrumented path firing the
    exact {!Interp.hooks} event stream of the reference interpreter.

    Contract: outputs, total cycles, diagnostics, fuel exhaustion point,
    and (instrumented) hook event streams are identical to {!Interp} on
    every program. The differential tests in [test/test_precompile.ml]
    and [test/test_fuzz.ml] enforce this. *)

(** A prepared program: immutable once built, safe to share across
    domains (each executor gets its own mutable state). *)
type t

val prepare : Commset_ir.Ir.program -> t
val program : t -> Commset_ir.Ir.program

(** One run of a prepared program: private machine, globals, fuel and
    cycle counter. Passing [?hooks] selects the instrumented engine;
    omitting it selects the allocation-free fast path. *)
type exec

val executor : ?hooks:Interp.hooks -> ?fuel:int -> ?machine:Machine.t -> t -> exec

(** Run [main()] to completion; returns total simulated cycles. Raises
    the same {!Commset_support.Diag.Error}s / {!Interp.Out_of_fuel} as
    {!Interp.run_main}. *)
val run_main : exec -> float

(** Like {!run_main}, but hooks run block-grained: only [on_enter_func],
    [on_exit_func], [on_block] and [on_output] fire; per-instruction
    hooks ([on_instr], [on_base_cost], [on_builtin]) and actuals hooks
    ([on_region_enter], [on_call_actuals]) are skipped while
    {!total_cost} still advances per instruction in reference order.
    For block-grained observers (the profiler) this costs the same as
    the fast path. *)
val run_main_coarse : exec -> float

val machine : exec -> Machine.t
val total_cost : exec -> float

(** Interpreter steps retired so far by this executor (block entries +
    instructions), derived from fuel accounting at zero hot-path cost.
    Also accumulated into the [interp.steps] metric once per run. *)
val steps : exec -> int

(** Live global bindings after (or during) a run, as the reference
    interpreter's globals hashtable would hold them — declared globals
    plus any undeclared names created by an executed store. *)
val globals : exec -> (string * Value.t) list

(** {2 Real-execution support}

    The real multicore backend ([Commset_exec]) splits one prepared
    program between a coordinator domain and worker domains: the
    coordinator runs the whole program but executes only the target
    loop's control backbone (the backward slice of the header condition,
    confined to the header and the single latch block), handing the live
    register file to [on_iter] at every continuing header entry; workers
    then run the full iteration body against the shared machine and
    global slots. *)

(** A compiled real-execution plan for one target loop. *)
type rtarget

(** Validate the loop shape and compute the coordinator's backbone.
    Returns [Error reason] when the loop cannot be split this way (the
    caller falls back to another engine): multiple latches, a header
    containing non-control work, a control slice escaping header+latch,
    a machine-writing builtin or user call in the slice, or a register
    written in the loop body and read after the loop. *)
val plan_real :
  t ->
  fname:string ->
  header:Commset_ir.Ir.label ->
  latches:Commset_ir.Ir.label list ->
  body:Commset_ir.Ir.label list ->
  (rtarget, string) result

(** Instruction iids the coordinator executes inside the loop. *)
val rtarget_backbone : rtarget -> int list

val rtarget_nregs : rtarget -> int
val rtarget_fname : rtarget -> string

(** Run [main()] with the target loop in dispatch mode (fast path only;
    the executor's hooks are ignored). [on_iter k regs] fires at every
    header entry that continues into the body — [regs] is the live
    register file, valid only for the duration of the callback (copy it
    to keep it). [on_loop_done] fires at every exit from the loop,
    before the epilogue resumes. Returns total simulated cycles of the
    coordinator's own work. *)
val run_main_real :
  exec ->
  rtarget ->
  on_iter:(int -> Value.t array -> unit) ->
  on_loop_done:(unit -> unit) ->
  float

(** A worker's private execution state (own fuel and cycle counter)
    sharing the executor's machine and global slot arrays. *)
type wstate

val worker_state : exec -> fuel:int -> wstate
val wstate_fuel_left : wstate -> int

(** Simulated cycles this worker has retired. *)
val wstate_total : wstate -> float

(** The executor-shared global slot arrays this worker writes through
    (value and defined-flag slots, indexed by {!global_slot}). Exposed
    for the codegen backend, whose compiled iteration bodies access the
    slots directly. *)
val wstate_globals : wstate -> Value.t array

val wstate_gdefined : wstate -> bool array

(** Retire [steps] fuel steps and [cost] simulated cycles in one batch.
    Compiled iteration bodies account locally and flush through here at
    node transitions, builtin calls and iteration exit; fuel totals stay
    identical to the interpreted path, cycle totals may differ in the
    last ulp (batched float accumulation). *)
val wstate_charge : wstate -> steps:int -> cost:float -> unit

(** {2 Typed iteration-body IR view (codegen input)}

    A read-only projection of the prepared form: original instructions
    paired with everything the prepare pass resolved — dense block
    indices, per-instruction static costs, global slots. The codegen
    backend translates from this view so its output agrees with the
    interpreter on block structure and accounting by construction. *)

type view_term =
  | Vjump of int
  | Vbranch of int * int * int  (** condition register, then-idx, else-idx *)
  | Vbranch_const of Value.t
      (** non-bool constant branch condition: traps like the reference *)
  | Vret_reg of int
  | Vret_const of Value.t
  | Vret_none
      (** Jump targets are block indices, or [-1 - label] for an edge to
          a label with no block (the trap stays behind the condition). *)

type view_block = {
  vb_label : Commset_ir.Ir.label;
  vb_instrs : Commset_ir.Ir.instr array;
  vb_costs : float array;  (** parallel static instruction costs *)
  vb_term : view_term;
}

type view_func = {
  vf_name : string;
  vf_nregs : int;  (** register-file length (the frame layout) *)
  vf_params : int array;  (** parameter registers, in order *)
  vf_entry : int;  (** entry block index *)
  vf_blocks : view_block array;
}

val view_func : t -> string -> view_func option

(** The target function's view plus the loop geometry [plan_real]
    validated: header and body-entry block indices and the per-block
    in-loop mask (workers execute exactly the in-loop blocks). *)
val rtarget_view : rtarget -> view_func

val rtarget_header : rtarget -> int
val rtarget_body_entry : rtarget -> int
val rtarget_in_loop : rtarget -> bool array

(** Dense slot index of a global name, as the prepare pass assigned it
    ([None] for names no instruction mentions). *)
val global_slot : t -> string -> int option

(** Whether the name is a declared global (loads never trap) as opposed
    to an undeclared name some store creates at run time. *)
val global_declared : t -> string -> bool

(** Execute one full iteration body, from the loop's body entry until a
    terminator re-enters the header. [on_instr] fires before every
    instruction at target-function depth (node tracking); [builtin]
    replaces every builtin call at any depth — implementations usually
    wrap [Builtins.impl] with locking, ordering, or buffering. [regs]
    must be a private copy of the register file passed to [on_iter].
    Raises a [Diag.Error] if the iteration returns or branches out of
    the loop. *)
val run_iteration :
  wstate ->
  rtarget ->
  on_instr:(Commset_ir.Ir.instr -> unit) ->
  builtin:(Builtins.t -> Value.t list -> has_dst:bool -> Value.t * float) ->
  Value.t array ->
  unit
