(** Integration tests over the eight evaluation workloads:

    - every workload (and variant) compiles through the full pipeline;
    - pragma elision: stripping every [#pragma] leaves a sequential
      program with identical output (the paper's compatibility property);
    - simulated parallel executions never corrupt output (worst case:
      multiset-equal, i.e. reordered);
    - the best plan family matches the paper's Table 2 winner;
    - semantic commutativity holds for real: iterating md5sum/geti's main
      loop in a shuffled order produces the same output multiset. *)

module P = Commset_pipeline.Pipeline
module W = Commset_workloads.Workload
module Registry = Commset_workloads.Registry
module T = Commset_transforms
module L = Commset_lang
module R = Commset_runtime

let check = Alcotest.check

let run_sequential ~setup src =
  let ast = L.Parser.parse_program ~file:"<w>" src in
  let _ = L.Typecheck.check ~externs:R.Builtins.extern_sigs ast in
  let prog = Commset_ir.Lower.lower_program ast in
  let machine = R.Machine.create () in
  setup machine;
  let interp = R.Interp.create ~machine prog in
  let _ = R.Interp.run_main interp in
  R.Machine.outputs machine

(* cache of full evaluations: compiling + simulating once per workload *)
let eval_cache : (string, P.t * P.run list) Hashtbl.t = Hashtbl.create 16

let evaluated (w : W.t) =
  match Hashtbl.find_opt eval_cache w.W.wname with
  | Some v -> v
  | None ->
      let c = P.compile ~name:w.W.wname ~setup:w.W.setup w.W.source in
      let runs = P.evaluate c ~threads:8 in
      Hashtbl.replace eval_cache w.W.wname (c, runs);
      (c, runs)

let test_compiles_and_plans w () =
  let c, runs = evaluated w in
  check Alcotest.bool "has plans" true (runs <> []);
  check Alcotest.bool "has a COMMSET plan" true
    (List.exists (fun r -> r.P.plan.T.Plan.uses_commset) runs);
  check Alcotest.bool "hot loop dominates" true (P.loop_fraction c > 0.7);
  List.iter
    (fun r ->
      if r.P.fidelity = P.Mismatch then
        Alcotest.failf "plan %s corrupted output" r.P.plan.T.Plan.label)
    runs

let test_elision w () =
  let annotated = run_sequential ~setup:w.W.setup w.W.source in
  let stripped = run_sequential ~setup:w.W.setup (W.strip_pragmas w.W.source) in
  check Alcotest.(list string) "pragma elision preserves sequential output" annotated stripped

let test_best_scheme w () =
  let _, runs = evaluated w in
  let best =
    List.fold_left
      (fun acc r ->
        match acc with
        | Some b when b.P.speedup >= r.P.speedup -> acc
        | _ -> Some r)
      None
      (List.filter (fun r -> r.P.plan.T.Plan.uses_commset) runs)
  in
  match best with
  | None -> Alcotest.fail "no COMMSET plan"
  | Some b ->
      (* the plan family (DOALL vs pipeline) must match the paper's winner;
         magnitudes must be in the right ballpark *)
      let paper_family =
        if String.length w.W.paper_best_scheme >= 5 && String.sub w.W.paper_best_scheme 0 5 = "DOALL"
        then `Doall
        else `Pipeline
      in
      let our_family =
        match b.P.plan.T.Plan.shape with T.Plan.Sdoall -> `Doall | T.Plan.Sdswp _ -> `Pipeline
      in
      check Alcotest.bool
        (Printf.sprintf "family matches paper (%s vs %s)" b.P.plan.T.Plan.label
           w.W.paper_best_scheme)
        true
        (paper_family = our_family);
      check Alcotest.bool
        (Printf.sprintf "speedup %.2f within 2x of paper %.2f" b.P.speedup w.W.paper_best_speedup)
        true
        (b.P.speedup > w.W.paper_best_speedup /. 2.0
        && b.P.speedup < w.W.paper_best_speedup *. 2.0)

let test_variants_compile w () =
  List.iter
    (fun (vn, src) ->
      let c = P.compile ~name:(w.W.wname ^ "/" ^ vn) ~setup:w.W.setup src in
      let runs = P.evaluate c ~threads:8 in
      check Alcotest.bool (vn ^ " has plans") true (runs <> []);
      List.iter
        (fun r ->
          if r.P.fidelity = P.Mismatch then
            Alcotest.failf "variant %s plan %s corrupted output" vn r.P.plan.T.Plan.label)
        runs)
    w.W.variants

(* ---- semantic commutativity: shuffled iteration order ---- *)

(* md5sum with the main loop visiting files in a stride-permuted order:
   the annotations assert digests of distinct files commute, so the
   printed multiset must be unchanged *)
let md5sum_shuffled stride n =
  Printf.sprintf
    {|
void main() {
  int nfiles = %d;
  for (int k = 0; k < nfiles; k++) {
    int i = (k * %d) %% nfiles;
    int fd = fopen("in/file" + int_to_string(i));
    string data = "";
    bool done = false;
    while (!done) {
      string chunk = fread(fd, 1024);
      if (strlen(chunk) == 0) {
        done = true;
      } else {
        data = data + chunk;
      }
    }
    print(md5_hex(data) + "  in/file" + int_to_string(i));
    fclose(fd);
  }
}
|}
    n stride

let test_md5sum_commutes () =
  let w = Option.get (Registry.find "md5sum") in
  let reference = run_sequential ~setup:w.W.setup (W.strip_pragmas w.W.source) in
  List.iter
    (fun stride ->
      (* strides coprime with 96 give genuine permutations *)
      let shuffled = run_sequential ~setup:w.W.setup (md5sum_shuffled stride 96) in
      check Alcotest.int "same cardinality" (List.length reference) (List.length shuffled);
      check
        Alcotest.(list string)
        (Printf.sprintf "output multiset invariant under stride %d" stride)
        (List.sort compare reference) (List.sort compare shuffled))
    [ 7; 25; 77 ]

(* geti shuffled: supports and itemset lines are per-transaction, so any
   processing order yields the same print multiset *)
let geti_shuffled stride =
  let w = Option.get (Registry.find "geti") in
  let base = W.strip_pragmas w.W.source in
  (* rewrite the loop header to a strided visit; the body uses `i` *)
  let needle = "for (int i = 0; i < ntrans; i++) {" in
  let replacement =
    Printf.sprintf
      "for (int k = 0; k < ntrans; k++) {\n    int i = (k * %d) %% ntrans;" stride
  in
  let rec replace s =
    let ln = String.length needle in
    let rec find i =
      if i + ln > String.length s then None
      else if String.sub s i ln = needle then Some i
      else find (i + 1)
    in
    match find 0 with
    | Some i ->
        String.sub s 0 i ^ replacement
        ^ replace (String.sub s (i + ln) (String.length s - i - ln))
    | None -> s
  in
  replace base

let test_geti_commutes () =
  let w = Option.get (Registry.find "geti") in
  let reference = run_sequential ~setup:w.W.setup (W.strip_pragmas w.W.source) in
  let shuffled = run_sequential ~setup:w.W.setup (geti_shuffled 7) in
  check
    Alcotest.(list string)
    "geti output multiset invariant" (List.sort compare reference) (List.sort compare shuffled)

(* kmeans: any update order yields the same member counts (the checksum
   may differ in float rounding, so compare the integer line exactly) *)
let test_kmeans_commutes () =
  let w = Option.get (Registry.find "kmeans") in
  let base = W.strip_pragmas w.W.source in
  let needle = "for (int i = 0; i < nobjs; i++) {" in
  let replacement = "for (int kk = 0; kk < nobjs; kk++) {\n    int i = (kk * 77) % nobjs;" in
  let replace s =
    let ln = String.length needle in
    let rec find i =
      if i + ln > String.length s then None
      else if String.sub s i ln = needle then Some i
      else find (i + 1)
    in
    match find 0 with
    | Some i ->
        String.sub s 0 i ^ replacement ^ String.sub s (i + ln) (String.length s - i - ln)
    | None -> s
  in
  let reference = run_sequential ~setup:w.W.setup base in
  let shuffled = run_sequential ~setup:w.W.setup (replace base) in
  let members = List.filter (fun l -> String.length l > 7 && String.sub l 0 7 = "kmeans ") in
  check Alcotest.(list string) "member counts invariant"
    (List.filter (fun l -> not (String.contains l '.')) (members reference))
    (List.filter (fun l -> not (String.contains l '.')) (members shuffled))

let workload_cases =
  List.concat_map
    (fun w ->
      [
        Alcotest.test_case (w.W.wname ^ ": compiles, plans, fidelity") `Slow
          (test_compiles_and_plans w);
        Alcotest.test_case (w.W.wname ^ ": pragma elision") `Slow (test_elision w);
        Alcotest.test_case (w.W.wname ^ ": best scheme vs paper") `Slow (test_best_scheme w);
        Alcotest.test_case (w.W.wname ^ ": variants") `Slow (test_variants_compile w);
      ])
    Registry.all

let suite =
  ( "workloads",
    workload_cases
    @ [
        Alcotest.test_case "md5sum commutes under shuffles" `Slow test_md5sum_commutes;
        Alcotest.test_case "geti commutes under shuffles" `Slow test_geti_commutes;
        Alcotest.test_case "kmeans counts commute" `Slow test_kmeans_commutes;
      ] )
