lib/pdg/reduction.ml: Array Commset_ir Commset_lang Fmt Hashtbl List Option Pdg
