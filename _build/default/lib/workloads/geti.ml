(** GETI — greedy error-tolerant itemset mining (paper §5.2).

    Each iteration builds a per-transaction itemset Bitmap, querying and
    inserting items through the [SetBit]/[GetBit] interfaces, then pushes
    the itemset into an STL-like vector and prints it. Annotations:

    (a) bitmap constructor/destructor blocks commute on separate
        iterations (predicated group + SELF);
    (b) [SetBit]/[GetBit] are members of interface commsets predicated on
        an owner argument (the paper's "changed interface" alternative,
        §2), asserted synchronization-free with COMMSETNOSYNC (bit
        operations on distinct owners' bitmaps);
    (c) the vector-push + print block is context-sensitively marked
        self-commutative in client code (set semantics of the output).

    Determinism of the printed itemsets is regained by the PS-DSWP
    schedule, whose sequential last stage emits them in order — the
    paper's best scheme for this benchmark. *)

let n_trans = 180
let n_items = 10

let source =
  Printf.sprintf
    {|
// GETI: greedy error-tolerant itemsets
#pragma commset decl BSET group
#pragma commset decl BSELF self
#pragma commset decl CSET group
#pragma commset predicate BSET (o1) (o2) (o1 != o2)
#pragma commset predicate BSELF (p1) (p2) (p1 != p2)
#pragma commset predicate CSET (c1) (c2) (c1 != c2)
#pragma commset nosync BSET
#pragma commset nosync BSELF

#pragma commset member BSET(owner), BSELF(owner)
void SetBit(int owner, int bm, int key) {
  bm_set(bm, key);
}

#pragma commset member BSET(owner), BSELF(owner)
bool GetBit(int owner, int bm, int key) {
  return bm_get(bm, key);
}

void main() {
  int ntrans = %d;
  int nitems = %d;
  for (int i = 0; i < ntrans; i++) {
    int items = (nitems / 2) + ((i * 7) %% nitems);
    int bm = 0;
    #pragma commset member CSET(i), SELF
    {
      bm = bm_new(1024);
    }
    int support = 0;
    for (int j = 0; j < items; j++) {
      int item = (i * 37 + j * j * 11) %% 1024;
      SetBit(i, bm, item);
      if (GetBit(i, bm, (item * 3 + j) %% 1024)) {
        support = support + 1;
      }
      int err = (item * 13 + j) %% 97;
      if (err < 48) {
        support = support + 1;
      }
    }
    #pragma commset member SELF
    {
      vec_push("itemset " + int_to_string(i));
      print("itemset " + int_to_string(i) + " support " + int_to_string(support));
    }
    #pragma commset member CSET(i), SELF
    {
      bm_free(bm);
    }
  }
  print("total itemsets " + int_to_string(vec_size()));
}
|}
    n_trans n_items

(* The [dynamic] variant predicates the per-transaction bitmap work on a
   tag computed from the *data* (a hash), not the induction variable. The
   symbolic interpreter cannot prove such predicates, so static DOALL is
   blocked - but every blocking dependence is covered by a predicated
   commset, so the speculative transform (runtime-checked predicates, the
   paper's future-work direction) recovers the parallelism. *)
let source_dynamic =
  Printf.sprintf
    {|
// GETI, dynamic-tag variant: commutativity predicated on data
#pragma commset decl BSET group
#pragma commset decl BSELF self
#pragma commset decl CSET group
#pragma commset predicate BSET (o1) (o2) (o1 != o2)
#pragma commset predicate BSELF (p1) (p2) (p1 != p2)
#pragma commset predicate CSET (c1) (c2) (c1 != c2)

void main() {
  int ntrans = %d;
  int nitems = %d;
  for (int i = 0; i < ntrans; i++) {
    int items = (nitems / 2) + ((i * 7) %% nitems);
    // the tag comes from transaction data, not from the induction variable
    int tag = str_hash("txn" + int_to_string(i * 13)) %% 100000;
    int bm = 0;
    #pragma commset member CSET(i), SELF
    {
      bm = bm_new(1024);
    }
    int support = 0;
    #pragma commset member BSET(tag), BSELF(tag)
    {
      for (int j = 0; j < items; j++) {
        int item = (tag * 37 + j * j * 11) %% 1024;
        bm_set(bm, item);
        if (bm_get(bm, (item * 3 + j) %% 1024)) {
          support = support + 1;
        }
        int err = (item * 13 + j) %% 97;
        if (err < 48) {
          support = support + 1;
        }
      }
    }
    #pragma commset member SELF
    {
      vec_push("itemset " + int_to_string(i));
      print("itemset " + int_to_string(i) + " support " + int_to_string(support));
    }
    #pragma commset member CSET(i), SELF
    {
      bm_free(bm);
    }
  }
  print("total itemsets " + int_to_string(vec_size()));
}
|}
    n_trans n_items

let workload : Workload.t =
  {
    Workload.wname = "geti";
    paper_name = "geti";
    description = "error-tolerant itemset mining over per-transaction bitmaps";
    source;
    variants = [ ("dynamic", source_dynamic) ];
    setup = (fun _ -> ());
    paper_best_scheme = "PS-DSWP + Lib";
    paper_best_speedup = 3.6;
    paper_annotations = 11;
    paper_sloc = 889;
    paper_loop_fraction = 0.98;
    paper_features = [ "PI"; "PC"; "C"; "I"; "S"; "G" ];
    paper_transforms = [ "DOALL"; "PS-DSWP" ];
  }
