(** Busy-wait primitives; see the interface for the tuning rationale. *)

module Costmodel = Commset_runtime.Costmodel

let spin_rounds () = Costmodel.exec_spin_rounds ()

(* yielding quantum once the spin budget is spent: long enough that a
   preempted partner gets scheduled, short enough to stay responsive *)
let yield_s () = Costmodel.exec_spin_sleep_s ()

type backoff = {
  mutable rounds : int;
  limit : int;
  sleep_s : float;
  (* long-idle tier: after [idle_after] base-quantum sleeps the quantum
     doubles each sleep up to [sleep_cap_s], so a parked waiter costs
     one wakeup per cap instead of polling every base quantum *)
  mutable sleeps : int;
  mutable cur_sleep_s : float;
  idle_after : int;
  sleep_cap_s : float;
}

let backoff () =
  let sleep_s = yield_s () in
  {
    rounds = 0;
    limit = spin_rounds ();
    sleep_s;
    sleeps = 0;
    cur_sleep_s = sleep_s;
    idle_after = Costmodel.exec_idle_sleep_after ();
    sleep_cap_s = Float.max (Costmodel.exec_idle_sleep_cap_s ()) sleep_s;
  }

let current_sleep_s b = b.cur_sleep_s

let once b =
  if b.rounds < b.limit then begin
    Domain.cpu_relax ();
    b.rounds <- b.rounds + 1
  end
  else begin
    Unix.sleepf b.cur_sleep_s;
    b.sleeps <- b.sleeps + 1;
    if b.sleeps >= b.idle_after then
      b.cur_sleep_s <- Float.min (b.cur_sleep_s *. 2.) b.sleep_cap_s
  end

(* a successful wait ends the episode; the next episode of the same
   waiter starts back at the responsive tier *)
let reset b =
  b.rounds <- 0;
  b.sleeps <- 0;
  b.cur_sleep_s <- b.sleep_s

type lock = { flag : bool Atomic.t }

let lock_create () = { flag = Atomic.make false }

(* test-and-test-and-set: the plain read keeps the cache line shared
   while the lock is held; only a free-looking lock pays the RMW *)
let try_acquire l = (not (Atomic.get l.flag)) && Atomic.compare_and_set l.flag false true

let acquire ?(on_contend = fun () -> ()) l =
  if not (try_acquire l) then begin
    on_contend ();
    let b = backoff () in
    while not (try_acquire l) do
      once b
    done
  end

let release l = Atomic.set l.flag false
