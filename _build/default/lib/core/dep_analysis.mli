(** The COMMSET dependence analyzer — the paper's Algorithm 1 — plus the
    speculative-relaxation test used by the optimistic transform.

    Every memory-dependence PDG edge is examined against the commset
    memberships of the facets whose effects conflict on it:
    - an unpredicated shared set of the right kind (Self for two
      instances of the same member, Group otherwise) makes the edge
      unconditionally commutative ([uco]);
    - a predicated set triggers a symbolic proof under the iteration
      fact; a proven loop-carried edge whose destination dominates its
      source becomes [uco], otherwise [ico]; a proven intra-iteration
      edge becomes [uco]. *)

module A = Commset_analysis
module Pdg = Commset_pdg.Pdg

(** Annotate every memory edge of the PDG in place; returns the number of
    edges annotated (uco, ico). *)
val annotate : Metadata.t -> Pdg.t -> A.Dominance.t -> A.Induction.t -> int * int

(** Is this (statically unrelaxed) edge relaxable by evaluating its
    members' commutativity predicates at runtime? True when every
    conflicting facet pair shares a *predicated* set of the right kind. *)
val speculable : Metadata.t -> Pdg.t -> Pdg.edge -> bool
