(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (Table 1, Table 2, Figures 2, 3, 6a-h and 6i) and runs
    Bechamel microbenchmarks of the compiler pipeline itself — one
    [Test.make] per table/figure family.

    Run with [dune exec bench/main.exe]. Set COMMSET_BENCH_QUICK=1 to skip
    the 1..8-thread sweeps (Table 2 and the 8-thread results only).

    The harness also times the whole evaluation pipeline per stage
    (compile, evaluate_all, sweep) with the domain pool at 1 job and at
    the default job count, checks the two render identical tables, and
    writes the result to [BENCH_commset.json]. *)

open Bechamel
open Toolkit
module P = Commset_pipeline.Pipeline
module W = Commset_workloads.Workload
module Registry = Commset_workloads.Registry
module T = Commset_transforms
module Report = Commset_report
module Obs = Commset_obs

let md5sum = Option.get (Registry.find "md5sum")

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the pipeline stages                     *)
(* ------------------------------------------------------------------ *)

let bench_tests comp =
  (* pre-computed inputs so each staged function measures one stage *)
  let source = md5sum.W.source in
  let ast = Commset_lang.Parser.parse_program ~file:"md5sum" source in
  let _ = Commset_lang.Typecheck.check ~externs:Commset_runtime.Builtins.extern_sigs ast in
  let plan =
    match P.plans comp ~threads:8 with
    | p :: _ -> p
    | [] -> failwith "no plan for md5sum"
  in
  [
    (* Table 1: static feature matrix *)
    Test.make ~name:"table1/render" (Staged.stage (fun () -> Report.Table1.render ()));
    (* Table 2 inputs: frontend and type checking *)
    Test.make ~name:"table2/parse"
      (Staged.stage (fun () -> Commset_lang.Parser.parse_program ~file:"md5sum" source));
    Test.make ~name:"table2/typecheck"
      (Staged.stage (fun () ->
           let ast = Commset_lang.Parser.parse_program ~file:"md5sum" source in
           Commset_lang.Typecheck.check ~externs:Commset_runtime.Builtins.extern_sigs ast));
    (* Figure 2: lowering + effect analysis over a fresh AST *)
    Test.make ~name:"figure2/lower+effects"
      (Staged.stage (fun () ->
           let prog = Commset_ir.Lower.lower_program ast in
           Commset_analysis.Effects.analyze Commset_runtime.Builtins.lookup_spec prog));
    (* Figures 3 & 6: plan emission + discrete-event simulation *)
    Test.make ~name:"figure6/simulate-plan"
      (Staged.stage (fun () ->
           T.Emit.simulate ~plan ~pdg:comp.P.target.P.pdg ~trace:comp.P.trace ()));
  ]

let run_bechamel comp =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.6) ~stabilize:false () in
  section "Microbenchmarks (Bechamel, monotonic clock)";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] -> Printf.printf "  %-28s %12.0f ns/run\n%!" name t
          | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
        analyzed)
    (bench_tests comp)

(* ------------------------------------------------------------------ *)
(* Wall-clock timings of the evaluation pipeline, sequential vs        *)
(* parallel, written to BENCH_commset.json                             *)
(* ------------------------------------------------------------------ *)

module Pool = Commset_support.Pool

(** GC pressure of one stage, from {!Gc.quick_stat} deltas on the
    calling domain. With jobs=1 this is exact; with worker domains it
    understates (workers keep their own counters) but still tracks the
    coordinator's share of the allocation story. *)
type gc_delta = {
  gd_minor : int;  (** minor collections *)
  gd_major : int;  (** major collections *)
  gd_alloc_mw : float;  (** words allocated, in millions *)
}

let words (s : Gc.stat) = s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let gc_delta (a : Gc.stat) (b : Gc.stat) =
  {
    gd_minor = b.Gc.minor_collections - a.Gc.minor_collections;
    gd_major = b.Gc.major_collections - a.Gc.major_collections;
    gd_alloc_mw = (words b -. words a) /. 1e6;
  }

let gc_zero = { gd_minor = 0; gd_major = 0; gd_alloc_mw = 0. }

let timed f =
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  let s1 = Gc.quick_stat () in
  (r, dt, gc_delta s0 s1)

type stage_times = {
  st_jobs : int;
  st_compile : float;
  st_eval : float;
  st_sweep : float;  (** full evaluate_all with sweeps; 0 in quick mode *)
  st_gc_compile : gc_delta;
  st_gc_eval : gc_delta;
  st_gc_sweep : gc_delta;
  st_table2 : string;
}

let st_total st = st.st_compile +. st.st_eval +. st.st_sweep

(** Run the three pipeline stages with the pool fixed at [jobs] domains.
    Stages are deliberately independent full passes: "compile" is every
    workload and variant through {!P.compile}, "evaluate_all" adds the
    8-thread simulations, "sweep" adds the 1..8-thread sweeps. *)
let measure_stages ~sweep ~jobs : stage_times =
  Pool.with_jobs jobs (fun () ->
      let sources =
        List.concat_map
          (fun w ->
            (w.W.wname, w.W.setup, w.W.source)
            :: List.map
                 (fun (vn, src) -> (w.W.wname ^ "/" ^ vn, w.W.setup, src))
                 w.W.variants)
          Registry.all
      in
      let _, t_compile, gc_compile =
        timed (fun () ->
            Pool.parmap (fun (name, setup, src) -> P.compile ~name ~setup src) sources)
      in
      let evals, t_eval, gc_eval =
        timed (fun () -> Report.Evaluation.evaluate_all ~sweep:false ())
      in
      let t_sweep, gc_sweep =
        if sweep then
          let _, t, g =
            timed (fun () -> ignore (Report.Evaluation.evaluate_all ~sweep:true ()))
          in
          (t, g)
        else (0., gc_zero)
      in
      {
        st_jobs = jobs;
        st_compile = t_compile;
        st_eval = t_eval;
        st_sweep = t_sweep;
        st_gc_compile = gc_compile;
        st_gc_eval = gc_eval;
        st_gc_sweep = gc_sweep;
        st_table2 = Report.Evaluation.render_table2 evals;
      })

let json_of_gc g =
  Printf.sprintf
    {|{ "minor_collections": %d, "major_collections": %d, "allocated_mwords": %.1f }|}
    g.gd_minor g.gd_major g.gd_alloc_mw

let json_of_stages st =
  Printf.sprintf
    {|{ "jobs": %d, "compile_s": %.3f, "evaluate_all_s": %.3f, "sweep_s": %.3f, "total_s": %.3f,
    "gc": { "compile": %s, "evaluate_all": %s, "sweep": %s } }|}
    st.st_jobs st.st_compile st.st_eval st.st_sweep (st_total st)
    (json_of_gc st.st_gc_compile) (json_of_gc st.st_gc_eval)
    (json_of_gc st.st_gc_sweep)

(* ------------------------------------------------------------------ *)
(* Flight-recorder overhead guard                                      *)
(* ------------------------------------------------------------------ *)

(** Aggregate recorded spans into a per-stage summary:
    [(name, count, total seconds)], sorted by name. *)
let span_summary (spans : Obs.Recorder.span list) : (string * int * float) list =
  let tbl : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Obs.Recorder.span) ->
      let c, t = Option.value ~default:(0, 0.) (Hashtbl.find_opt tbl s.Obs.Recorder.name) in
      Hashtbl.replace tbl s.Obs.Recorder.name
        (c + 1, t +. ((s.Obs.Recorder.t1_ns -. s.Obs.Recorder.t0_ns) /. 1e9)))
    spans;
  Hashtbl.fold (fun name (c, t) acc -> (name, c, t) :: acc) tbl [] |> List.sort compare

type recorder_overhead = {
  ro_off_s : float;
  ro_on_s : float;
  ro_wall_ratio : float;  (** median per-pair on/off wall ratio *)
  ro_span_cost_ns : float;  (** marginal cost of one enabled with_span *)
  ro_spans_per_eval : float;
  ro_frac : float;
      (** gated overhead estimate: span cost x spans per evaluate over
          the evaluate wall time. The wall ratio is reported but not
          gated — on a busy 1-core box scheduler noise at the 100 ms
          scale dwarfs a sub-0.1% recorder cost. *)
  ro_spans : (string * int * float) list;  (** from the recorder-on leg *)
}

(** Marginal per-call cost of an enabled [with_span] over a disabled
    one, from tight loops of [n] spans over a trivial thunk (buffer
    reset between reps so no rep hits the drop path); min of 3 reps. *)
let span_cost_ns () =
  let n = 20_000 in
  let rep enabled =
    Obs.Recorder.reset ();
    Obs.Recorder.set_enabled enabled;
    let t0 = Obs.Clock.now_ns () in
    for _ = 1 to n do
      Obs.Recorder.with_span "bench.nop" (fun () -> ())
    done;
    let dt = Obs.Clock.now_ns () -. t0 in
    Obs.Recorder.set_enabled false;
    Obs.Recorder.reset ();
    dt /. float_of_int n
  in
  let best f = Float.min (f ()) (Float.min (f ()) (f ())) in
  ignore (rep false);
  ignore (rep true);
  let off = best (fun () -> rep false) in
  let on = best (fun () -> rep true) in
  Float.max 0. (on -. off)

(** Time [P.evaluate] on a compiled workload with the recorder off and
    on: warm-up run, then min of two timed reps per leg, pool pinned to
    one job so domain scheduling noise stays out of the comparison. The
    CI bench-smoke gate fails when the measured overhead exceeds 5%. *)
let bench_recorder_overhead comp : recorder_overhead =
  section "Flight-recorder overhead: evaluate with spans off vs on";
  Pool.with_jobs 1 (fun () ->
      (* batch several evaluates per rep: one evaluate is a few
         milliseconds, too short to resolve a 5% difference *)
      let rep enabled =
        (* start every rep from the same GC state: major-collection
           slices landing on arbitrary reps dwarf the recorder's cost *)
        Gc.full_major ();
        Obs.Recorder.set_enabled enabled;
        let t0 = Obs.Clock.now_ns () in
        for _ = 1 to 32 do
          ignore (P.evaluate comp ~threads:8)
        done;
        let dt = (Obs.Clock.now_ns () -. t0) /. 1e9 in
        Obs.Recorder.set_enabled false;
        dt
      in
      (* warm both paths, then time off/on in adjacent pairs: reps that
         run back to back share the machine's slow and fast phases, so
         the per-pair ratio cancels drift that independent minima can't;
         the median ratio over the pairs is the overhead estimate *)
      ignore (rep false);
      ignore (rep true);
      Obs.Recorder.reset ();
      let n_pairs = 5 in
      let ratios = ref [] in
      let t_off = ref infinity and t_on = ref infinity in
      for _ = 1 to n_pairs do
        let off = rep false in
        let on = rep true in
        t_off := Float.min !t_off off;
        t_on := Float.min !t_on on;
        ratios := (on /. off) :: !ratios
      done;
      let t_off = !t_off and t_on = !t_on in
      let median =
        let sorted = List.sort compare !ratios in
        List.nth sorted (n_pairs / 2)
      in
      let raw_spans = Obs.Recorder.dump () in
      let spans = span_summary raw_spans in
      Obs.Recorder.reset ();
      let cost_ns = span_cost_ns () in
      (* the on-leg recorded [n_pairs] reps of 32 evaluates each *)
      let spans_per_eval = float_of_int (List.length raw_spans) /. float_of_int (n_pairs * 32) in
      let eval_ns = t_off /. 32. *. 1e9 in
      let frac = spans_per_eval *. cost_ns /. Float.max 1. eval_ns in
      Printf.printf
        "  recorder off %.4fs   on %.4fs   wall ratio (median) %+.2f%%\n" t_off t_on
        (100. *. (median -. 1.));
      Printf.printf
        "  span cost %.0f ns x %.1f span(s)/evaluate = %.4f%% of an evaluate (gated at 5%%)\n"
        cost_ns spans_per_eval (100. *. frac);
      List.iter
        (fun (name, count, total) ->
          Printf.printf "    %-24s %6d span(s)  %8.4fs total\n" name count total)
        spans;
      {
        ro_off_s = t_off;
        ro_on_s = t_on;
        ro_wall_ratio = median;
        ro_span_cost_ns = cost_ns;
        ro_spans_per_eval = spans_per_eval;
        ro_frac = frac;
        ro_spans = spans;
      })

let json_of_overhead ro =
  let spans =
    ro.ro_spans
    |> List.map (fun (name, count, total) ->
           Printf.sprintf {|{ "name": "%s", "count": %d, "total_s": %.6f }|} name count
             total)
    |> String.concat ",\n      "
  in
  Printf.sprintf
    {|{ "off_s": %.6f, "on_s": %.6f, "wall_ratio_median": %.6f,
    "span_cost_ns": %.1f, "spans_per_eval": %.1f, "overhead_frac": %.6f,
    "spans": [
      %s
    ] }|}
    ro.ro_off_s ro.ro_on_s ro.ro_wall_ratio ro.ro_span_cost_ns ro.ro_spans_per_eval
    ro.ro_frac spans

(* ------------------------------------------------------------------ *)
(* Real-execution leg: measured speedups beside predicted              *)
(* ------------------------------------------------------------------ *)

type measured = {
  me_workload : string;
  me_plan : string;
  me_engine : string;  (** engine that actually ran ("real"/"burn") *)
  me_predicted : float;  (** the simulator's speedup estimate *)
  me_measured : float;  (** wall-clock speedup on real domains *)
  me_fidelity : P.output_fidelity;
  me_cores : int;  (** available cores when this entry was measured *)
  me_jobs_clamped : bool;
      (** the machine offered fewer than 2 worker domains and the count
          was clamped to the floor of 1 — any oversubscription is then
          the box's fault, not a self-inflicted jobs floor *)
  me_oversubscribed : bool;
      (** coordinator + workers exceed the available cores: the measured
          speedup says how much synchronization costs under time
          slicing, not how well the plan scales — excluded from CI
          speedup gates *)
}

(** For every workload, execute its best executable DOALL plan and its
    best executable pipeline plan on real domains (the Commset_exec
    backend, default real engine) and pair the measured wall-clock
    speedup with the simulator's prediction. The worker-domain count is
    auto-sized from the machine ({!Commset_exec.Exec.default_jobs} =
    [max 1 (cores - 1)], no artificial floor above that — a 1-core box
    gets 1 worker and records the clamp instead of oversubscribing
    itself); every entry records the cores available at measurement
    time, whether the count was clamped, and whether the run was
    oversubscribed anyway. *)
let bench_real_execution evals : int * measured list =
  let jobs = Commset_exec.Exec.default_jobs () in
  let cores = Domain.recommended_domain_count () in
  (* fewer than 2 workers available: the floor of 1 kicked in *)
  let jobs_clamped = cores - 1 < 1 in
  (* one coordinator domain plus [jobs] workers must fit the machine *)
  let oversubscribed = cores < jobs + 1 in
  section (Printf.sprintf "Real execution: predicted vs measured speedups (jobs=%d)" jobs);
  if oversubscribed then
    Printf.printf
      "  note: %d core(s) for %d domain(s); entries are tagged oversubscribed and \
       excluded from speedup gates\n"
      cores (jobs + 1);
  let rows =
    List.concat_map
      (fun be ->
        let c = be.Report.Evaluation.be_primary.Report.Evaluation.v_comp in
        (* [evaluate] sorts by predicted speedup, so the first executable
           run of each family is that family's best *)
        let runs = P.evaluate c ~threads:jobs in
        let executable (r : P.run) =
          Result.is_ok (Commset_exec.Exec.supported r.P.plan)
        in
        let is_doall (r : P.run) = r.P.plan.T.Plan.shape = T.Plan.Sdoall in
        let pick pred = List.find_opt (fun r -> executable r && pred r) runs in
        List.filter_map Fun.id [ pick is_doall; pick (fun r -> not (is_doall r)) ]
        |> List.map (fun (r : P.run) ->
               let x = P.run_parallel ~jobs c r.P.plan in
               {
                 me_workload = c.P.name;
                 me_plan = r.P.plan.T.Plan.label;
                 me_engine = x.P.xstats.Commset_exec.Exec.x_engine;
                 me_predicted = x.P.xpredicted;
                 me_measured = x.P.xstats.Commset_exec.Exec.x_measured_speedup;
                 me_fidelity = x.P.xfidelity;
                 me_cores = cores;
                 me_jobs_clamped = jobs_clamped;
                 me_oversubscribed = oversubscribed;
               }))
      evals
  in
  List.iter
    (fun m ->
      Printf.printf "  %-10s %-48s predicted %5.2fx  measured %5.2fx  %s  [%s]%s\n"
        m.me_workload m.me_plan m.me_predicted m.me_measured
        (P.fidelity_to_string m.me_fidelity)
        m.me_engine
        (if m.me_oversubscribed then "  (oversubscribed)" else ""))
    rows;
  (jobs, rows)

let json_of_measured (jobs, rows) =
  let entries =
    rows
    |> List.map (fun m ->
           Printf.sprintf
             {|{ "workload": "%s", "plan": "%s", "engine": "%s", "predicted_speedup": %.3f, "measured_speedup": %.3f, "verdict": "%s", "available_cores": %d, "jobs_clamped": %b, "oversubscribed": %b }|}
             m.me_workload (String.escaped m.me_plan) m.me_engine m.me_predicted
             m.me_measured
             (P.fidelity_to_string m.me_fidelity)
             m.me_cores m.me_jobs_clamped m.me_oversubscribed)
    |> String.concat ",\n    "
  in
  Printf.sprintf {|{ "jobs": %d, "plans": [
    %s
  ] }|} jobs entries

(* ------------------------------------------------------------------ *)
(* Execution observatory: attribution profiles, calibration fidelity   *)
(* and the attribution overhead gate                                   *)
(* ------------------------------------------------------------------ *)

module Costmodel = Commset_runtime.Costmodel
module Calib = Commset_runtime.Calib
module Attrib = Obs.Attrib

type profile_row = {
  ep_workload : string;
  ep_plan : string;
  ep_engine : string;
  ep_p95_lock_wait_ns : float;
  ep_p95_frontier_wait_ns : float;
  ep_gap_uncal : float;  (** |predicted − measured| / measured, before calibration *)
  ep_gap_cal : float;  (** same gap after Calib.apply + recompile + rerun *)
  ep_improved : bool;
  ep_ns_per_cycle : float;  (** the profile's measured ns per non-builtin cycle *)
  ep_oversubscribed : bool;
}

type overhead_row = {
  ao_engine : string;
  ao_off_s : float;  (** median parallel wall, attribution off *)
  ao_on_s : float;  (** median parallel wall, attribution on *)
  ao_overhead_frac : float;  (** median per-pair on/off ratio − 1 *)
  ao_oversubscribed : bool;
      (** coordinator + worker time-sliced on one core: the ratio is
          scheduler noise, so the CI gate skips it *)
}

let speedup_gap ~predicted ~measured =
  Float.abs (predicted -. measured) /. Float.max 1e-9 measured

let cause_p95 (s : Attrib.summary) name =
  match List.find_opt (fun c -> c.Attrib.c_name = name) s.Attrib.a_causes with
  | Some c -> c.Attrib.c_p95_ns
  | None -> 0.

(** Per workload: run the best executable plan with attribution on,
    record the p95 lock/frontier waits and the predicted-vs-measured
    gap; then derive a calibration profile from that very run, apply it,
    recompile (the builtin cost scales change the recorded trace costs,
    hence the simulator's prediction) and rerun to see whether the gap
    shrank. The cost model is restored between workloads so profiles
    never leak across rows. *)
let bench_exec_profile evals : int * bool * profile_row list =
  let jobs = Commset_exec.Exec.default_jobs () in
  let cores = Domain.recommended_domain_count () in
  let oversubscribed = cores < jobs + 1 in
  section
    (Printf.sprintf "Execution observatory: attribution and calibration (jobs=%d)" jobs);
  if oversubscribed then
    Printf.printf
      "  note: %d core(s) for %d domain(s); calibration-fidelity gates skip \
       oversubscribed entries\n"
      cores (jobs + 1);
  let ns0 = Costmodel.exec_ns_per_cycle () in
  let rows =
    List.filter_map
      (fun be ->
        let c = be.Report.Evaluation.be_primary.Report.Evaluation.v_comp in
        let runs = P.evaluate c ~threads:jobs in
        let pick =
          List.find_opt
            (fun (r : P.run) -> Result.is_ok (Commset_exec.Exec.supported r.P.plan))
            runs
        in
        match pick with
        | None ->
            Printf.printf "  %-10s no executable plan at jobs=%d; skipped\n" c.P.name
              jobs;
            None
        | Some r -> (
            let x0 = P.run_parallel ~jobs c r.P.plan in
            match x0.P.xstats.Commset_exec.Exec.x_attrib with
            | None ->
                Printf.printf "  %-10s ran without attribution (%s); skipped\n"
                  c.P.name x0.P.xstats.Commset_exec.Exec.x_engine;
                None
            | Some s ->
                let measured0 = x0.P.xstats.Commset_exec.Exec.x_measured_speedup in
                let gap0 = speedup_gap ~predicted:x0.P.xpredicted ~measured:measured0 in
                let gap1, npc =
                  match
                    Calib.of_summary ~workload:c.P.name
                      ~engine:x0.P.xstats.Commset_exec.Exec.x_engine
                      ~predicted:x0.P.xpredicted ~measured:measured0 s
                  with
                  | Error _ -> (gap0, 0.)
                  | Ok p ->
                      Fun.protect
                        ~finally:(fun () ->
                          Calib.clear ();
                          Costmodel.set_exec_ns_per_cycle ns0)
                        (fun () ->
                          Calib.apply p;
                          match Registry.find c.P.name with
                          | None -> (gap0, p.Calib.p_ns_per_cycle)
                          | Some w ->
                              let c2 =
                                P.compile ~name:c.P.name ~setup:w.W.setup w.W.source
                              in
                              let plan2 =
                                let label = r.P.plan.T.Plan.label in
                                match
                                  List.find_opt
                                    (fun (p : T.Plan.t) -> p.T.Plan.label = label)
                                    (P.executable_plans c2 ~threads:jobs)
                                with
                                | Some p -> Some p
                                | None ->
                                    List.nth_opt (P.executable_plans c2 ~threads:jobs) 0
                              in
                              (match plan2 with
                              | None -> (gap0, p.Calib.p_ns_per_cycle)
                              | Some plan2 ->
                                  let x1 = P.run_parallel ~jobs c2 plan2 in
                                  ( speedup_gap ~predicted:x1.P.xpredicted
                                      ~measured:
                                        x1.P.xstats
                                          .Commset_exec.Exec.x_measured_speedup,
                                    p.Calib.p_ns_per_cycle )))
                in
                Some
                  {
                    ep_workload = c.P.name;
                    ep_plan = r.P.plan.T.Plan.label;
                    ep_engine = x0.P.xstats.Commset_exec.Exec.x_engine;
                    ep_p95_lock_wait_ns = cause_p95 s "lock_wait";
                    ep_p95_frontier_wait_ns = cause_p95 s "frontier_wait";
                    ep_gap_uncal = gap0;
                    ep_gap_cal = gap1;
                    ep_improved = gap1 < gap0;
                    ep_ns_per_cycle = npc;
                    ep_oversubscribed = oversubscribed;
                  }))
      evals
  in
  List.iter
    (fun r ->
      Printf.printf
        "  %-10s %-40s p95 lock %8.1fus  p95 frontier %8.1fus  gap %5.1f%% -> %5.1f%% %s\n"
        r.ep_workload r.ep_plan
        (r.ep_p95_lock_wait_ns /. 1e3)
        (r.ep_p95_frontier_wait_ns /. 1e3)
        (100. *. r.ep_gap_uncal) (100. *. r.ep_gap_cal)
        (if r.ep_improved then "(improved)" else "")
    )
    rows;
  (jobs, oversubscribed, rows)

(** Attribution overhead: the best executable plan of md5sum at one
    worker, attribution off vs on, interleaved pairs (the same drift
    logic as the recorder gate), per engine. The CI bench-smoke gate
    fails when the median regression exceeds 5% on a non-oversubscribed
    box. *)
let bench_attrib_overhead comp : overhead_row list =
  section "Attribution overhead: real/codegen parallel wall, off vs on";
  let rounds = 7 in
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let plan =
    List.find_opt
      (fun (p : T.Plan.t) -> p.T.Plan.shape = T.Plan.Sdoall)
      (P.executable_plans comp ~threads:1)
  in
  match plan with
  | None -> []
  | Some plan ->
      let oversubscribed = Domain.recommended_domain_count () < 2 in
      List.map
        (fun engine ->
          let run attrib =
            let x = P.run_parallel ~engine ~jobs:1 ~attrib comp plan in
            x.P.xstats.Commset_exec.Exec.x_wall_par_s
          in
          (* warm both paths (codegen compiles on the first call) *)
          ignore (run false);
          ignore (run true);
          let offs = ref [] and ons = ref [] and ratios = ref [] in
          for _ = 1 to rounds do
            Gc.full_major ();
            let off = run false in
            let on = run true in
            offs := off :: !offs;
            ons := on :: !ons;
            ratios := (on /. Float.max 1e-9 off) :: !ratios
          done;
          let row =
            {
              ao_engine = Commset_exec.Exec.engine_name engine;
              ao_off_s = median !offs;
              ao_on_s = median !ons;
              ao_overhead_frac = median !ratios -. 1.;
              ao_oversubscribed = oversubscribed;
            }
          in
          Printf.printf "  %-8s off %.4fs  on %.4fs  overhead %+.2f%% (gated at 5%%%s)\n"
            row.ao_engine row.ao_off_s row.ao_on_s
            (100. *. row.ao_overhead_frac)
            (if oversubscribed then "; oversubscribed, gate skips" else "");
          row)
        [ Commset_exec.Exec.Real_engine; Commset_exec.Exec.Codegen_engine ]

let json_of_exec_profile (jobs, oversubscribed, rows) overhead =
  let row_entries =
    rows
    |> List.map (fun r ->
           Printf.sprintf
             {|{ "workload": "%s", "plan": "%s", "engine": "%s", "p95_lock_wait_ns": %.1f, "p95_frontier_wait_ns": %.1f, "gap_uncalibrated": %.4f, "gap_calibrated": %.4f, "improved": %b, "ns_per_cycle": %.4f, "oversubscribed": %b }|}
             r.ep_workload (String.escaped r.ep_plan) r.ep_engine
             r.ep_p95_lock_wait_ns r.ep_p95_frontier_wait_ns r.ep_gap_uncal
             r.ep_gap_cal r.ep_improved r.ep_ns_per_cycle r.ep_oversubscribed)
    |> String.concat ",\n    "
  in
  let overhead_entries =
    overhead
    |> List.map (fun o ->
           Printf.sprintf
             {|{ "engine": "%s", "off_s": %.6f, "on_s": %.6f, "overhead_frac": %.6f, "oversubscribed": %b }|}
             o.ao_engine o.ao_off_s o.ao_on_s o.ao_overhead_frac o.ao_oversubscribed)
    |> String.concat ",\n    "
  in
  Printf.sprintf
    {|{ "jobs": %d, "oversubscribed": %b, "workloads": [
    %s
  ], "overhead": [
    %s
  ] }|}
    jobs oversubscribed row_entries overhead_entries

(* ------------------------------------------------------------------ *)
(* Serve leg: daemon throughput and tail latency under a seeded load   *)
(* ------------------------------------------------------------------ *)

module Server = Commset_serve.Server
module Gen = Commset_serve.Gen

(** A bounded selftest through the real daemon: open-loop seeded
    arrivals over the default url/md5sum/geti blend, warm pool, plan
    cache, Equiv sampling — the same path [commsetc serve --selftest]
    exercises, just small enough for a bench leg. The offered rate is
    deliberately above what one worker sustains so the queue-wait
    histogram measures admission backlog rather than generator idle
    time. *)
let bench_serve () : Server.report =
  section "Serve: daemon throughput and tail latency";
  let lookup name =
    match Registry.find name with
    | Some w -> Ok (w.W.source, w.W.setup)
    | None -> Error (Printf.sprintf "unknown workload %S" name)
  in
  let cfg =
    { (Server.default_config ~lookup) with
      Server.s_jobs = Pool.default_jobs ();
      s_equiv_every = 25;
    }
  in
  let load =
    { Server.l_spec = { Gen.default_spec with Gen.g_rate = 2000. };
      l_requests = 200;
    }
  in
  let r = Server.run ~load cfg in
  Printf.printf
    "  %d requests (%d served, %d failed)  %.1f rps  drained=%b\n"
    r.Server.r_offered r.r_served r.r_failed r.r_throughput_rps r.r_drained;
  Printf.printf
    "  latency p50/p95/p99 us  queue %.0f/%.0f/%.0f  service %.0f/%.0f/%.0f\n"
    r.r_queue.Server.p50_us r.r_queue.p95_us r.r_queue.p99_us
    r.r_service.Server.p50_us r.r_service.p95_us r.r_service.p99_us;
  let c = r.r_cache in
  Printf.printf "  plan cache: %d hits %d misses  equiv %d checked %d failed%s\n"
    c.Commset_serve.Plancache.pc_hits c.pc_misses r.r_equiv_checked
    r.r_equiv_failures
    (if r.r_oversubscribed then "  (oversubscribed)" else "");
  r

let json_of_serve (r : Server.report) =
  let lat (l : Server.latency) =
    Printf.sprintf
      {|{ "p50_us": %.1f, "p95_us": %.1f, "p99_us": %.1f, "mean_us": %.1f }|}
      l.Server.p50_us l.p95_us l.p99_us l.mean_us
  in
  let c = r.Server.r_cache in
  let looked_up = c.Commset_serve.Plancache.pc_hits + c.pc_misses in
  let hit_rate =
    if looked_up = 0 then 0.
    else float_of_int c.Commset_serve.Plancache.pc_hits /. float_of_int looked_up
  in
  Printf.sprintf
    {|{ "requests_offered": %d, "requests_served": %d, "requests_failed": %d, "throughput_rps": %.1f, "offered_rate_rps": %s, "jobs": %d, "available_cores": %d, "oversubscribed": %b, "latency_us": { "queue": %s, "service": %s, "total": %s }, "plan_cache_hit_rate": %.4f, "equiv_checked": %d, "equiv_failures": %d, "drained": %b }|}
    r.Server.r_offered r.r_served r.r_failed r.r_throughput_rps
    (match r.r_offered_rate_rps with
    | Some x -> Printf.sprintf "%.1f" x
    | None -> "null")
    r.r_jobs r.r_cores r.r_oversubscribed (lat r.r_queue) (lat r.r_service)
    (lat r.r_total) hit_rate r.r_equiv_checked r.r_equiv_failures r.r_drained

(* ------------------------------------------------------------------ *)
(* Codegen leg: interpreter vs compiled iteration throughput           *)
(* ------------------------------------------------------------------ *)

type codegen_row = {
  cr_workload : string;
  cr_plan : string;
  cr_engine_ran : string;  (** "codegen", or what it fell back to *)
  cr_fallback : string option;
  cr_interp_iter_s : float;  (** interpreted real engine, iterations/s *)
  cr_codegen_iter_s : float;  (** compiled bodies, iterations/s *)
  cr_speedup : float;  (** codegen over interpreter *)
  cr_cache_hit : bool;
  cr_compile_s : float;
}

(** Single-worker iteration-body throughput: the interpreted body
    ([Precompile.run_iteration]) vs the compiled one, per workload. The
    target loop is driven sequentially through [run_main_real] — the
    same backbone both engines use — with every dispatched iteration
    executed inline on one worker state, so the timed difference is
    exactly what codegen changes: instruction dispatch inside the
    iteration body, including the per-instruction node resolution the
    interpreted worker performs versus the statically collapsed
    [cg_node] boundaries of the compiled one. Rings, domains, locks
    and the merge phase are identical in both engines and only dilute
    the ratio, so they are out of the picture; cycle realization is
    off for the same reason
    (both sides would burn the same calibrated work). Both bodies are
    timed in alternating rounds — interp pass, compiled pass, repeat —
    with a major GC slice before every timed pass, and each side
    reports its median: on a loaded box a best-of-N lets one lucky
    pass of either side decide the ratio, while interleaved medians
    cancel load spikes and GC debt that would otherwise land on
    whichever side happened to run second. Compilation happens before
    any timed pass and is reported separately. *)
let bench_codegen_throughput evals : codegen_row list =
  section "Codegen: interpreted vs compiled iteration bodies (single worker)";
  let module R = Commset_runtime in
  let module Precompile = R.Precompile in
  let module Pdg = Commset_pdg.Pdg in
  let module Abi = Commset_codegen.Abi in
  let module Codegen = Commset_codegen.Codegen in
  let module Clock = Obs.Clock in
  let saved_ns = R.Costmodel.exec_ns_per_cycle () in
  R.Costmodel.set_exec_ns_per_cycle 0.0;
  Fun.protect ~finally:(fun () -> R.Costmodel.set_exec_ns_per_cycle saved_ns)
  @@ fun () ->
  let rounds = 7 in
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let rows =
    List.filter_map
      (fun be ->
        let c = be.Report.Evaluation.be_primary.Report.Evaluation.v_comp in
        let pdg = c.P.target.P.pdg in
        let loop = pdg.Pdg.loop in
        match
          Precompile.plan_real c.P.prepared
            ~fname:pdg.Pdg.func.Commset_ir.Ir.fname
            ~header:loop.Commset_analysis.Loops.header
            ~latches:loop.Commset_analysis.Loops.latches
            ~body:loop.Commset_analysis.Loops.body
        with
        | Error _ -> None
        | Ok rt ->
            let body_label =
              Printf.sprintf "%s target loop body" (Precompile.rtarget_fname rt)
            in
            let nid_of_iid iid =
              match Pdg.node_of_instr pdg iid with Some nid -> nid | None -> -1
            in
            (* one full sequential pass over the loop; iterations/s *)
            let pass run_body =
              let machine = R.Machine.create () in
              c.P.setup machine;
              let ex = Precompile.executor ~machine c.P.prepared in
              let wst = Precompile.worker_state ex ~fuel:max_int in
              let builtin (bi : R.Builtins.t) argv ~has_dst:_ =
                bi.R.Builtins.impl machine argv
              in
              let iters = ref 0 in
              let t0 = Clock.now_ns () in
              let _ =
                Precompile.run_main_real ex rt
                  ~on_iter:(fun _k regs ->
                    incr iters;
                    run_body wst machine builtin (Array.copy regs))
                  ~on_loop_done:(fun () -> ())
              in
              let dt = (Clock.now_ns () -. t0) /. 1e9 in
              float_of_int !iters /. Float.max 1e-9 dt
            in
            let timed run_body =
              Gc.full_major ();
              pass run_body
            in
            let interp_body wst _machine builtin regs =
              (* the real engine's worker resolves every instruction to
                 its PDG node and watches for transitions; replicate
                 that (minus the lock work both engines share) so the
                 interpreted side pays what the engine actually pays *)
              let cur = ref min_int in
              Precompile.run_iteration wst rt
                ~on_instr:(fun i ->
                  let nid = nid_of_iid i.Commset_ir.Ir.iid in
                  if nid <> !cur then cur := nid)
                ~builtin regs
            in
            let cg = Codegen.prepare ~prepared:c.P.prepared ~rt ~nid_of_iid () in
            let interp_thr, cg_thr, engine_ran, fallback, cache_hit, compile_s =
              match cg with
              | Error why ->
                  let samples = List.init rounds (fun _ -> timed interp_body) in
                  (median samples, 0., "real", Some why, false, 0.)
              | Ok cg ->
                  let compiled_body wst _machine builtin regs =
                    let cur = ref min_int in
                    let ctx =
                      {
                        Abi.cg_globals = Precompile.wstate_globals wst;
                        cg_gdefined = Precompile.wstate_gdefined wst;
                        cg_node = (fun nid -> if nid <> !cur then cur := nid);
                        cg_builtin = builtin;
                        cg_charge =
                          (fun ~steps ~cost ->
                            Precompile.wstate_charge wst ~steps ~cost);
                        cg_fuel_left =
                          (fun () -> Precompile.wstate_fuel_left wst);
                      }
                    in
                    cg.Codegen.cg_fn ctx regs
                  in
                  (* untimed warmup of both bodies, then alternating
                     timed rounds *)
                  ignore (pass interp_body);
                  ignore (pass compiled_body);
                  let is = ref [] and cs = ref [] in
                  for _ = 1 to rounds do
                    is := timed interp_body :: !is;
                    cs := timed compiled_body :: !cs
                  done;
                  ( median !is,
                    median !cs,
                    "codegen",
                    None,
                    cg.Codegen.cg_cache_hit,
                    cg.Codegen.cg_compile_s )
            in
            Some
              {
                cr_workload = c.P.name;
                cr_plan = body_label;
                cr_engine_ran = engine_ran;
                cr_fallback = fallback;
                cr_interp_iter_s = interp_thr;
                cr_codegen_iter_s = cg_thr;
                cr_speedup = cg_thr /. Float.max 1e-9 interp_thr;
                cr_cache_hit = cache_hit;
                cr_compile_s = compile_s;
              })
      evals
  in
  List.iter
    (fun cr ->
      Printf.printf
        "  %-10s %-34s interp %9.0f it/s  codegen %9.0f it/s  %5.2fx  [%s%s]\n"
        cr.cr_workload cr.cr_plan cr.cr_interp_iter_s cr.cr_codegen_iter_s
        cr.cr_speedup cr.cr_engine_ran
        (match cr.cr_fallback with Some why -> ": " ^ why | None -> ""))
    rows;
  rows

let json_of_codegen rows =
  let entries =
    rows
    |> List.map (fun cr ->
           Printf.sprintf
             {|{ "workload": "%s", "plan": "%s", "engine_ran": "%s", "fallback_reason": %s, "interp_iter_per_s": %.1f, "codegen_iter_per_s": %.1f, "speedup": %.3f, "cache_hit": %b, "compile_s": %.3f }|}
             cr.cr_workload (String.escaped cr.cr_plan) cr.cr_engine_ran
             (match cr.cr_fallback with
             | Some why -> Printf.sprintf "\"%s\"" (String.escaped why)
             | None -> "null")
             cr.cr_interp_iter_s cr.cr_codegen_iter_s cr.cr_speedup cr.cr_cache_hit
             cr.cr_compile_s)
    |> String.concat ",\n    "
  in
  Printf.sprintf {|{ "jobs": 1, "rows": [
    %s
  ] }|} entries

(* ------------------------------------------------------------------ *)
(* Synthesis leg: commsetc suggest over the eight workloads            *)
(* ------------------------------------------------------------------ *)

module Synth = Commset_synth.Synth

type synth_row = {
  sy_workload : string;
  sy_suggestions : int;
  sy_recommended : int;
  sy_baseline : float;  (** predicted speedup of the stripped program *)
  sy_bundle : float;  (** predicted speedup with every verified suggestion *)
  sy_hand : float option;  (** predicted speedup of the hand annotations *)
  sy_best : float option;
      (** predicted speedup of the best individual suggestion alone *)
}

(** Run the commutativity-condition synthesizer on the pragma-stripped
    version of each workload and record how much of the hand
    annotations' speedup the verified suggestions recover. *)
let bench_synthesis () : synth_row list =
  section "Annotation synthesis: suggest on the stripped workloads";
  List.map
    (fun name ->
      let w = Option.get (Registry.find name) in
      let r = Synth.suggest ~name ~setup:w.W.setup w.W.source in
      let n = List.length r.Synth.r_suggestions in
      let recommended =
        List.length
          (List.filter (fun s -> s.Synth.sg_recommended) r.Synth.r_suggestions)
      in
      let best =
        List.fold_left
          (fun acc (s : Synth.suggestion) ->
            match (s.Synth.sg_speedup, acc) with
            | Some x, Some y -> Some (Float.max x y)
            | Some x, None -> Some x
            | None, acc -> acc)
          None r.Synth.r_suggestions
      in
      Printf.printf
        "  %-10s %d suggestion(s), %d recommended   stripped %5.2fx  bundle %5.2fx%s%s\n%!"
        name n recommended r.Synth.r_baseline r.Synth.r_bundle
        (match r.Synth.r_hand with
        | Some h -> Printf.sprintf "  hand %5.2fx" h
        | None -> "")
        (match best with
        | Some b -> Printf.sprintf "  best alone %5.2fx" b
        | None -> "");
      {
        sy_workload = name;
        sy_suggestions = n;
        sy_recommended = recommended;
        sy_baseline = r.Synth.r_baseline;
        sy_bundle = r.Synth.r_bundle;
        sy_hand = r.Synth.r_hand;
        sy_best = best;
      })
    [ "md5sum"; "url"; "geti"; "eclat"; "hmmer"; "em3d"; "kmeans"; "potrace" ]

let json_of_synthesis rows =
  let jopt = function Some f -> Printf.sprintf "%.3f" f | None -> "null" in
  rows
  |> List.map (fun s ->
         Printf.sprintf
           {|{ "workload": "%s", "suggestions": %d, "recommended": %d, "baseline_speedup": %.3f, "bundle_speedup": %.3f, "hand_speedup": %s, "best_suggestion_speedup": %s }|}
           s.sy_workload s.sy_suggestions s.sy_recommended s.sy_baseline
           s.sy_bundle (jopt s.sy_hand) (jopt s.sy_best))
  |> String.concat ",\n    "
  |> Printf.sprintf {|[
    %s
  ]|}

let bench_wall_clock ~quick ~overhead ~measured ~codegen ~synthesis ~exec_profile
    ~serve =
  section "Pipeline wall-clock: sequential vs parallel";
  let seq = measure_stages ~sweep:(not quick) ~jobs:1 in
  (* Pool.default_jobs honors COMMSET_JOBS; Domain.recommended_domain_count
     is what the machine actually offers *)
  let cores = Domain.recommended_domain_count () in
  let par_jobs = Pool.default_jobs () in
  let line label st =
    Printf.printf
      "  %-22s compile %6.2fs  evaluate_all %6.2fs  sweep %6.2fs  total %6.2fs wall\n"
      label st.st_compile st.st_eval st.st_sweep (st_total st);
    let gc tag g =
      Printf.printf "    %-14s gc: %5d minor  %3d major  %8.1f Mwords alloc\n"
        tag g.gd_minor g.gd_major g.gd_alloc_mw
    in
    gc "compile" st.st_gc_compile;
    gc "evaluate_all" st.st_gc_eval;
    if st.st_sweep > 0. then gc "sweep" st.st_gc_sweep
  in
  line "sequential (jobs=1)" seq;
  (* a "parallel" leg with one domain would just re-run the sequential
     leg and report a meaningless speedup; skip it and say so *)
  let par =
    if par_jobs <= 1 then begin
      Printf.printf
        "  parallel leg skipped: only 1 domain available (cores=%d, COMMSET_JOBS=%s)\n"
        cores
        (Option.value ~default:"unset" (Sys.getenv_opt "COMMSET_JOBS"));
      None
    end
    else begin
      let par = measure_stages ~sweep:(not quick) ~jobs:par_jobs in
      line (Printf.sprintf "parallel (jobs=%d)" par_jobs) par;
      let identical = String.equal seq.st_table2 par.st_table2 in
      let speedup = st_total seq /. Float.max 1e-9 (st_total par) in
      Printf.printf "  parallel speedup %.2fx wall; identical tables: %b\n" speedup
        identical;
      Some (par, speedup, identical)
    end
  in
  let oc = open_out "BENCH_commset.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "commset-evaluation-pipeline",
  "quick": %b,
  "available_cores": %d,
  "recommended_domains": %d,
  "jobs": %d,
  "sequential": %s,
  "parallel": %s,
  "parallel_speedup": %s,
  "identical_tables": %s,
  "measured": %s,
  "codegen": %s,
  "synthesis": %s,
  "recorder": %s,
  "exec_profile": %s,
  "serve": %s
}
|}
    quick cores cores par_jobs (json_of_stages seq)
    (match par with Some (p, _, _) -> json_of_stages p | None -> "null")
    (match par with Some (_, s, _) -> Printf.sprintf "%.3f" s | None -> "null")
    (match par with Some (_, _, i) -> string_of_bool i | None -> "null")
    (json_of_measured measured) (json_of_codegen codegen)
    (json_of_synthesis synthesis) (json_of_overhead overhead) exec_profile serve;
  close_out oc;
  Printf.printf "  wrote BENCH_commset.json\n"

(* ------------------------------------------------------------------ *)
(* Paper artifacts                                                     *)
(* ------------------------------------------------------------------ *)

let () =
  let quick = Sys.getenv_opt "COMMSET_BENCH_QUICK" <> None in
  (* one md5sum compilation (and its deterministic variant) feeds the
     microbenchmarks and both figures *)
  let md5_comp = P.compile ~name:"md5sum" ~setup:md5sum.W.setup md5sum.W.source in
  let md5_det =
    let det = List.assoc "deterministic" md5sum.W.variants in
    P.compile ~name:"md5sum-det" ~setup:md5sum.W.setup det
  in
  run_bechamel md5_comp;

  section "Table 1: comparison of commutativity-based IPP systems";
  print_endline (Report.Table1.render ());

  section "Figure 2: annotated PDG for md5sum";
  print_endline (Report.Evaluation.render_figure2 ~comp:md5_comp ());

  section "Figure 3: md5sum timelines";
  print_endline (Report.Evaluation.render_figure3 ~comp:md5_comp ~comp_det:md5_det ());

  Printf.printf "\nEvaluating all eight workloads%s...\n%!"
    (if quick then " (quick: 8 threads only)" else " (threads 1..8)");
  let evals = Report.Evaluation.evaluate_all ~sweep:(not quick) () in

  section "Table 2: programs, annotations, transforms, best schemes";
  print_endline (Report.Evaluation.render_table2 evals);

  if not quick then begin
    section "Figure 6: speedup vs thread count";
    List.iter
      (fun be ->
        print_endline (Report.Evaluation.render_figure6 be);
        print_newline ())
      evals;
    print_endline (Report.Evaluation.render_geomean evals)
  end;

  section "Extension: speculative (runtime-checked) commutativity";
  let geti = Option.get (Registry.find "geti") in
  let dyn = List.assoc "dynamic" geti.W.variants in
  let cd = P.compile ~name:"geti/dynamic" ~setup:geti.W.setup dyn in
  Printf.printf
    "geti with data-dependent predicates (static proof impossible):\n";
  List.iter
    (fun (r : P.run) ->
      Printf.printf "  %-44s %5.2fx  aborts=%d  %s\n" r.P.plan.T.Plan.label r.P.speedup
        r.P.tx_aborts
        (P.fidelity_to_string r.P.fidelity))
    (Commset_support.Listx.take 4 (P.evaluate cd ~threads:8));

  if not quick then begin
    section "Ablations";
    print_string (Report.Ablation.render ())
  end;

  let best_speedups =
    List.map (fun be -> be.Report.Evaluation.be_best.P.speedup) evals
  in
  let noncomm_speedups =
    List.map
      (fun be ->
        match be.Report.Evaluation.be_best_noncomm with
        | Some r -> max 1.0 r.P.speedup
        | None -> 1.0)
      evals
  in
  section "Headline";
  Printf.printf "Geomean best COMMSET speedup on 8 threads:     %.2fx (paper: 5.7x)\n"
    (Report.Evaluation.geomean best_speedups);
  Printf.printf "Geomean best non-COMMSET speedup on 8 threads: %.2fx (paper: 1.5x)\n"
    (Report.Evaluation.geomean noncomm_speedups);

  let measured = bench_real_execution evals in
  let codegen = bench_codegen_throughput evals in
  let synthesis = bench_synthesis () in
  let overhead = bench_recorder_overhead md5_comp in
  let profile = bench_exec_profile evals in
  let attrib_overhead = bench_attrib_overhead md5_comp in
  let exec_profile = json_of_exec_profile profile attrib_overhead in
  let serve = json_of_serve (bench_serve ()) in
  bench_wall_clock ~quick ~overhead ~measured ~codegen ~synthesis ~exec_profile
    ~serve
