(** Abstract-store differencing of the two interleavings [A;B] / [B;A]. *)

module S = Commset_analysis.Symexec
module Effects = Commset_analysis.Effects

(** One write of one member to one location. *)
type write = {
  wloc : Effects.location;
  wclass : Summary.opclass;
  wvalue : S.sval option;  (** stored value, when symbolically known *)
}

type divergence = {
  dloc : Effects.location;
  dv1 : S.sval;  (** final value under [B;A] *)
  dv2 : S.sval;  (** final value under [A;B] *)
}

type outcome =
  | Commute of string  (** both orders provably reach equal stores *)
  | Unsure of string  (** neither proved nor refuted *)
  | Diverge of divergence  (** the final stores provably differ *)

val join_outcome : outcome -> outcome -> outcome
val loc_str : Effects.location -> string

(** Difference the final stores of the two orders under an iteration
    fact; member 1's values are bound to {!S.Side1}, member 2's to
    {!S.Side2}. *)
val diff :
  S.iteration_fact ->
  reads1:Effects.LocSet.t ->
  writes1:write list ->
  reads2:Effects.LocSet.t ->
  writes2:write list ->
  outcome
