(** Three-address intermediate representation.

    A function is a CFG of basic blocks over virtual registers. Commutative
    COMMSET regions are lowered to *whole-block* granularity: entering or
    leaving an annotated source block always starts a fresh basic block, so
    a region is a set of blocks with a unique entry. Every instruction and
    block records the stack of enclosing region ids (innermost first). *)

open Commset_support

type reg = int
type label = int

type const = Cint of int | Cfloat of float | Cbool of bool | Cstring of string

type operand = Reg of reg | Const of const

type ty = Commset_lang.Ast.ty
type binop = Commset_lang.Ast.binop
type unop = Commset_lang.Ast.unop

type instr_desc =
  | Move of reg * operand
  | Binop of binop * ty * reg * operand * operand
      (** [ty] is the operand type (int/float/bool/string) *)
  | Unop of unop * ty * reg * operand
  | Load_global of reg * string
  | Store_global of string * operand
  | Load_index of reg * operand * operand  (** dst, array, index *)
  | Store_index of operand * operand * operand  (** array, index, value *)
  | Call of { dst : reg option; callee : string; args : operand list; enabled : enable list }

(** A named block of [callee] enabled into commsets at this call site
    (the paper's COMMSETNAMEDARGADD). *)
and enable = { en_block : string; en_sets : (string * operand list) list }

(** An [enable] pragma as recorded during lowering, before its predicate
    actuals are evaluated at each call site. *)
type enable_spec = { es_block : string; es_sets : (string * Commset_lang.Ast.expr list) list }

type instr = {
  iid : int;  (** unique within the function *)
  desc : instr_desc;
  iloc : Loc.t;
  iregions : int list;  (** enclosing region ids, innermost first *)
}

type terminator = Jump of label | Branch of operand * label * label | Ret of operand option

type block = {
  label : label;
  mutable instrs : instr list;
  mutable term : terminator;
  mutable bregions : int list;  (** region ids this block belongs to, innermost first *)
}

(** A lowered commutative region (one instance of an annotated source
    block). [rrefs] are the commset references with their actual operands
    evaluated at region entry; ["SELF"] refs were materialized into unique
    self sets by this point of lowering. *)
type region = {
  rid : int;
  rname : string option;  (** name when this is a COMMSETNAMEDBLOCK *)
  rrefs : (string * operand list) list;
  rentry : label;
  rloc : Loc.t;
}

type func = {
  fname : string;
  fparams : (ty * string) list;
  mutable param_regs : reg list;
  fret : ty;
  entry : label;
  blocks : (label, block) Hashtbl.t;
  mutable block_order : label list;  (** creation order; entry first *)
  reg_names : (reg, string) Hashtbl.t;  (** debug names for local-variable registers *)
  reg_types : (reg, ty) Hashtbl.t;
  mutable n_regs : int;
  mutable n_labels : int;
  mutable n_instrs : int;
  mutable fregions : region list;  (** in creation order *)
  mutable loop_locals : (reg * Loc.t) list;
      (** array-typed locals declared inside loops; input to privatization *)
}

type program = {
  funcs : (string, func) Hashtbl.t;
  func_order : string list;
  prog_globals : (string * ty * const) list;  (** name, type, initial value *)
  source : Commset_lang.Ast.program;  (** the typed AST this was lowered from *)
}

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let block f label = Hashtbl.find f.blocks label
let blocks_in_order f = List.map (block f) f.block_order
let find_func p name = Hashtbl.find_opt p.funcs name

let iter_instrs f g =
  List.iter (fun b -> List.iter (fun i -> g b i) b.instrs) (blocks_in_order f)

let instr_defs i =
  match i.desc with
  | Move (r, _) | Binop (_, _, r, _, _) | Unop (_, _, r, _) | Load_global (r, _)
  | Load_index (r, _, _) ->
      [ r ]
  | Call { dst = Some r; _ } -> [ r ]
  | Call { dst = None; _ } | Store_global _ | Store_index _ -> []

let operand_uses = function Reg r -> [ r ] | Const _ -> []

let instr_uses i =
  match i.desc with
  | Move (_, op) | Unop (_, _, _, op) | Store_global (_, op) -> operand_uses op
  | Binop (_, _, _, a, b) -> operand_uses a @ operand_uses b
  | Load_global _ -> []
  | Load_index (_, a, idx) -> operand_uses a @ operand_uses idx
  | Store_index (a, idx, v) -> operand_uses a @ operand_uses idx @ operand_uses v
  | Call { args; enabled; _ } ->
      List.concat_map operand_uses args
      @ List.concat_map
          (fun e -> List.concat_map (fun (_, ops) -> List.concat_map operand_uses ops) e.en_sets)
          enabled

let term_uses = function
  | Jump _ -> []
  | Branch (op, _, _) -> operand_uses op
  | Ret (Some op) -> operand_uses op
  | Ret None -> []

let successors b =
  match b.term with Jump l -> [ l ] | Branch (_, l1, l2) -> [ l1; l2 ] | Ret _ -> []

let innermost_region i = match i.iregions with [] -> None | r :: _ -> Some r

let find_region f rid = List.find_opt (fun r -> r.rid = rid) f.fregions

let callee_of i = match i.desc with Call { callee; _ } -> Some callee | _ -> None

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let const_to_string = function
  | Cint n -> string_of_int n
  | Cfloat f -> Printf.sprintf "%g" f
  | Cbool b -> string_of_bool b
  | Cstring s -> Printf.sprintf "%S" s

let operand_to_string f = function
  | Reg r -> (
      match Hashtbl.find_opt f.reg_names r with
      | Some name -> Printf.sprintf "%%%d(%s)" r name
      | None -> Printf.sprintf "%%%d" r)
  | Const c -> const_to_string c

let pp_instr f ppf i =
  let op = operand_to_string f in
  let regions =
    if i.iregions = [] then ""
    else Printf.sprintf "  ; regions %s" (String.concat "," (List.map string_of_int i.iregions))
  in
  (match i.desc with
  | Move (r, o) -> Fmt.pf ppf "%s = %s" (op (Reg r)) (op o)
  | Binop (b, _, r, a, c) ->
      Fmt.pf ppf "%s = %s %s %s" (op (Reg r)) (op a) (Commset_lang.Ast.binop_to_string b) (op c)
  | Unop (u, _, r, a) ->
      Fmt.pf ppf "%s = %s%s" (op (Reg r)) (Commset_lang.Ast.unop_to_string u) (op a)
  | Load_global (r, g) -> Fmt.pf ppf "%s = global %s" (op (Reg r)) g
  | Store_global (g, o) -> Fmt.pf ppf "global %s = %s" g (op o)
  | Load_index (r, a, i') -> Fmt.pf ppf "%s = %s[%s]" (op (Reg r)) (op a) (op i')
  | Store_index (a, i', v) -> Fmt.pf ppf "%s[%s] = %s" (op a) (op i') (op v)
  | Call { dst; callee; args; enabled } ->
      (match dst with Some r -> Fmt.pf ppf "%s = " (op (Reg r)) | None -> ());
      Fmt.pf ppf "call %s(%s)" callee (String.concat ", " (List.map op args));
      List.iter
        (fun e ->
          Fmt.pf ppf " enable[%s in %s]" e.en_block
            (String.concat ", " (List.map fst e.en_sets)))
        enabled);
  Fmt.pf ppf "%s" regions

let pp_terminator f ppf = function
  | Jump l -> Fmt.pf ppf "jump L%d" l
  | Branch (c, l1, l2) -> Fmt.pf ppf "branch %s ? L%d : L%d" (operand_to_string f c) l1 l2
  | Ret None -> Fmt.pf ppf "ret"
  | Ret (Some o) -> Fmt.pf ppf "ret %s" (operand_to_string f o)

let pp_func ppf f =
  Fmt.pf ppf "func %s(%s) : %s {@."
    f.fname
    (String.concat ", "
       (List.map2
          (fun (ty, name) r -> Printf.sprintf "%s %s=%%%d" (Commset_lang.Ast.ty_to_string ty) name r)
          f.fparams f.param_regs))
    (Commset_lang.Ast.ty_to_string f.fret);
  List.iter
    (fun r ->
      Fmt.pf ppf "  region %d%s entry=L%d sets=[%s]@." r.rid
        (match r.rname with Some n -> Printf.sprintf " (%s)" n | None -> "")
        r.rentry
        (String.concat "; " (List.map fst r.rrefs)))
    f.fregions;
  List.iter
    (fun b ->
      Fmt.pf ppf " L%d:%s@." b.label
        (if b.bregions = [] then ""
         else
           Printf.sprintf "  ; regions %s"
             (String.concat "," (List.map string_of_int b.bregions)));
      List.iter (fun i -> Fmt.pf ppf "   %a@." (pp_instr f) i) b.instrs;
      Fmt.pf ppf "   %a@." (pp_terminator f) b.term)
    (blocks_in_order f);
  Fmt.pf ppf "}@."

let func_to_string f = Fmt.str "%a" pp_func f
