(** Calibrated CPU work: turns a member's simulated cycle count into
    real computation so a plan's schedule runs on real domains with the
    same relative work distribution the simulator priced.

    One simulated cycle is realized as
    {!Commset_runtime.Costmodel.exec_ns_per_cycle} nanoseconds of a
    deterministic integer xorshift kernel; the kernel's rate is measured
    once per process. A per-thread accumulator carries fractional debts
    so sub-threshold costs (single instructions) are batched instead of
    rounded away — total burned work tracks total charged cycles to
    within one batch.

    With the scale set to [0.] burning is a no-op: the executor then
    exercises only its synchronization and ordering machinery, which is
    what the differential tests want (maximum interleaving stress, no
    wall-clock cost). *)

(** Kernel iterations per nanosecond, measured once per process (lazy). *)
val iters_per_ns : unit -> float

(** Per-thread burner (not thread-safe; create one per domain). *)
type t

val create : unit -> t

(** [burn t cycles] performs [cycles * exec_ns_per_cycle] nanoseconds of
    CPU work, batching fractional remainders. *)
val burn : t -> float -> unit
