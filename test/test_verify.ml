(** Tests for the commutativity annotation verifier ([lib/verify]): the
    verdict lattice, static refutation by symbolic differencing, dynamic
    refutation by order-swapped replay, the lint passes' stable codes,
    the new well-formedness rejections (CS004/CS011/CS012), and the
    guarantee that the bundled workloads are never Refuted. *)

module P = Commset_pipeline.Pipeline
module V = Commset_verify
module W = Commset_workloads.Workload
module Registry = Commset_workloads.Registry
open Commset_support

let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---- verdict lattice ---- *)

let cx source = { V.Verdict.cx_source = source; cx_detail = "d" }

let test_verdict_lattice () =
  let p = V.Verdict.Proved "p"
  and u = V.Verdict.Unknown "u"
  and r = V.Verdict.Refuted (cx V.Verdict.Static) in
  let j = V.Verdict.join in
  check Alcotest.bool "P v U = U" true (j p u = u);
  check Alcotest.bool "U v P = U" true (j u p = u);
  check Alcotest.bool "U v R = R" true (j u r = r);
  check Alcotest.bool "R v P = R" true (j r p = r);
  check Alcotest.bool "P v P = P" true (j p p = p);
  (* join is a least upper bound: rank never decreases *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check Alcotest.bool "join dominates" true
            (V.Verdict.rank (j a b) >= max (V.Verdict.rank a) (V.Verdict.rank b)))
        [ p; u; r ])
    [ p; u; r ]

(* ---- Diag.collect ---- *)

let test_diag_collect () =
  let ds =
    Diag.collect (fun () ->
        Diag.warn ~code:"CS099" "first";
        Diag.report (Diag.diagnostic ~code:"CS098" Diag.Error_sev Loc.dummy "second"))
  in
  check Alcotest.int "two collected" 2 (List.length ds);
  check
    Alcotest.(list (option string))
    "codes in order"
    [ Some "CS099"; Some "CS098" ]
    (List.map (fun d -> d.Diag.code) ds);
  (* a raised error is captured as the final diagnostic, not propagated *)
  let ds = Diag.collect (fun () -> Diag.error ~code:"CS097" "boom") in
  check Alcotest.int "raised error captured" 1 (List.length ds);
  (* outside [collect], warnings are dropped silently instead of raising *)
  Diag.warn "dropped"

(* ---- refutation of a deliberately wrong annotation ---- *)

(* Both sets claim distinct iterations commute, but each loop ends with a
   last-writer-wins store to a global. LSET stores an affine function of
   the induction variable (statically refutable); MSET stores a hashed
   value that is opaque to the symbolic domain (only dynamically
   refutable). *)
let refutable_source =
  {|
#pragma commset decl LSET self
#pragma commset predicate LSET (a1) (a2) (a1 != a2)
#pragma commset decl MSET self
#pragma commset predicate MSET (b1) (b2) (b1 != b2)

int last = 0;
int mark = 0;

void main() {
  for (int i = 0; i < 64; i++) {
    int w = str_hash(int_to_string(i * 13)) + str_hash(int_to_string(i * 7));
    #pragma commset member LSET(i)
    {
      last = i;
    }
  }
  for (int j = 0; j < 64; j++) {
    int h = str_hash(int_to_string(j * 17)) % 100;
    #pragma commset member MSET(j)
    {
      mark = h;
    }
  }
  print("last " + int_to_string(last));
  print("mark " + int_to_string(mark));
}
|}

let refuted_report =
  lazy
    (let c = P.compile ~name:"refutable" ~verify:true refutable_source in
     (c, Option.get c.P.verification))

let source_of_set report sname =
  List.filter_map
    (fun ((p : V.Verdict.pair), (cx : V.Verdict.counterexample)) ->
      if p.V.Verdict.pset = sname then Some cx.V.Verdict.cx_source else None)
    (V.Verdict.refuted_pairs report)

let test_refutes_last_writer () =
  let _, report = Lazy.force refuted_report in
  check Alcotest.int "both sets refuted" 2 (V.Verdict.n_refuted report);
  check Alcotest.int "nothing proved" 0 (V.Verdict.n_proved report);
  (* the affine store falls to the static engine, the opaque one to replay *)
  check Alcotest.bool "LSET refuted statically" true
    (source_of_set report "LSET" = [ V.Verdict.Static ]);
  check Alcotest.bool "MSET refuted dynamically" true
    (source_of_set report "MSET" = [ V.Verdict.Dynamic ])

let test_refutation_lints_cs001 () =
  let c, report = Lazy.force refuted_report in
  let diags =
    V.Lint.run_all { V.Lint.md = c.P.md; report = Some report; strict = false }
  in
  let cs001 = List.filter (fun d -> d.Diag.code = Some "CS001") diags in
  check Alcotest.int "one CS001 per refuted set" 2 (List.length cs001);
  List.iter
    (fun d ->
      check Alcotest.bool "refutations are errors" true (d.Diag.severity = Diag.Error_sev);
      check Alcotest.bool "diagnostic names its engine" true
        (contains d.Diag.message "static differencing"
        || contains d.Diag.message "dynamic replay"))
    cs001

(* ---- sound proofs for correct annotations ---- *)

(* PSET's predicate admits no pair of concurrent instances; DSET's member
   touches only function-local state. Both must be Proved. *)
let provable_source =
  {|
#pragma commset decl PSET self
#pragma commset predicate PSET (a1) (a2) (a1 != a1)
#pragma commset decl DSET self
#pragma commset predicate DSET (b1) (b2) (b1 != b2)

int last = 0;

void main() {
  int acc = 0;
  for (int i = 0; i < 32; i++) {
    int w = str_hash(int_to_string(i * 3)) + str_hash(int_to_string(i * 5));
    #pragma commset member PSET(i)
    {
      last = i;
    }
    #pragma commset member DSET(i)
    {
      acc = i * 2;
    }
  }
  print(int_to_string(last + acc));
}
|}

let test_proves_correct_annotations () =
  let c = P.compile ~name:"provable" ~verify:true provable_source in
  let report = Option.get c.P.verification in
  check Alcotest.int "all pairs proved"
    (List.length report.V.Verdict.rpairs)
    (V.Verdict.n_proved report);
  check Alcotest.int "nothing refuted" 0 (V.Verdict.n_refuted report)

(* ---- well-formedness rejections and their codes ---- *)

let code_of_failure src =
  match Diag.guard (fun () -> P.compile ~name:"bad" src) with
  | Ok _ -> Alcotest.fail "expected compilation to be rejected"
  | Error d -> d.Diag.code

let test_cs004_impure_predicate () =
  check
    Alcotest.(option string)
    "predicate calling rng_int is rejected" (Some "CS004")
    (code_of_failure
       {|
#pragma commset decl S self
#pragma commset predicate S (a1) (a2) (rng_int(8) != a2)
int x = 0;
void main() {
  for (int i = 0; i < 8; i++) {
    #pragma commset member S(i)
    {
      x = i;
    }
  }
}
|})

let test_cs011_intra_set_call () =
  check
    Alcotest.(option string)
    "member calling another member of the same set is rejected" (Some "CS011")
    (code_of_failure
       {|
#pragma commset decl S self
#pragma commset predicate S (a1) (a2) (a1 != a2)
int acc = 0;
void helper(int x) {
  #pragma commset member S(x)
  {
    acc = acc + x;
  }
}
void main() {
  for (int i = 0; i < 8; i++) {
    #pragma commset member S(i)
    {
      helper(i + 1);
    }
  }
}
|})

let test_cs012_cyclic_commset_graph () =
  check
    Alcotest.(option string)
    "mutually recursive commsets are rejected" (Some "CS012")
    (code_of_failure
       {|
#pragma commset decl A self
#pragma commset predicate A (a1) (a2) (a1 != a2)
#pragma commset decl B self
#pragma commset predicate B (b1) (b2) (b1 != b2)
int x = 0;
void f(int n) {
  #pragma commset member A(n)
  {
    if (n > 0) {
      g(n - 1);
    }
  }
}
void g(int n) {
  #pragma commset member B(n)
  {
    if (n > 0) {
      f(n - 1);
    }
  }
}
void main() {
  for (int i = 0; i < 4; i++) {
    f(i);
  }
}
|})

(* ---- the bundled workloads must never be Refuted ---- *)

let test_workload_never_refuted name () =
  let w = Option.get (Registry.find name) in
  let c = P.compile ~name:w.W.wname ~setup:w.W.setup ~verify:true w.W.source in
  let report = Option.get c.P.verification in
  check Alcotest.int
    (name ^ ": no annotation refuted")
    0 (V.Verdict.n_refuted report);
  check Alcotest.bool (name ^ ": something verified") true
    (report.V.Verdict.rpairs <> [])

let suite =
  ( "verify",
    [
      Alcotest.test_case "verdict lattice" `Quick test_verdict_lattice;
      Alcotest.test_case "Diag.collect" `Quick test_diag_collect;
      Alcotest.test_case "refutes last-writer annotation" `Slow test_refutes_last_writer;
      Alcotest.test_case "refutation emits CS001" `Slow test_refutation_lints_cs001;
      Alcotest.test_case "proves correct annotations" `Slow test_proves_correct_annotations;
      Alcotest.test_case "CS004 impure predicate" `Quick test_cs004_impure_predicate;
      Alcotest.test_case "CS011 intra-set member call" `Quick test_cs011_intra_set_call;
      Alcotest.test_case "CS012 cyclic commset graph" `Quick test_cs012_cyclic_commset_graph;
      Alcotest.test_case "md5sum never refuted" `Slow (test_workload_never_refuted "md5sum");
      Alcotest.test_case "kmeans never refuted" `Slow (test_workload_never_refuted "kmeans");
    ] )
