(** Compiler diagnostics: errors and warnings carrying source locations.

    All front-end and analysis failures are reported through {!error},
    which raises {!Error}; drivers catch it once at the top level. *)

type severity = Error_sev | Warning_sev

type diagnostic = { severity : severity; loc : Loc.t; message : string }

exception Error of diagnostic

val diagnostic : severity -> Loc.t -> string -> diagnostic

(** [error ~loc fmt ...] raises {!Error} with the formatted message. *)
val error : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val errorf : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val pp_severity : Format.formatter -> severity -> unit
val pp : Format.formatter -> diagnostic -> unit
val to_string : diagnostic -> string

(** [guard f] runs [f ()] and converts a raised diagnostic into [Error]. *)
val guard : (unit -> 'a) -> ('a, diagnostic) result

(** [message_of_exn e] renders a diagnostic exception for test assertions. *)
val message_of_exn : exn -> string option
