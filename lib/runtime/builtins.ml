(** The builtin (extern) functions of miniC: signatures for the type
    checker, effect specifications for the analyses, thread-safety and
    TM-safety flags for the synchronization engine, and implementations
    plus cost functions for the interpreter.

    Abstract resources (the [Lext] locations):
    - ["io.fdtable"]: the open-file table (fopen/fclose);
    - ["io.stream.in"] / ["io.stream.out"]: input / output stream
      positions and buffers (libc keeps per-FILE locks; input and output
      streams never alias in these workloads);
    - ["io.disk"]: shared disk bandwidth — read-only in the effect system
      (no dependence edges) but a serialization point for transfers;
    - ["io.stdout"]: the console;
    - ["rng"]: the shared RNG seed;
    - ["hist"]: the histogram accumulator;
    - ["heap.alloc"]: the allocator free-list (matrix_alloc/matrix_free,
      bm_new/bm_free);
    - ["vec"], ["bm.data"], ["lst"]: collection contents;
    - ["stats"]: statistics accumulators;
    - ["pkt.pool"]: the packet input queue;
    - ["db.cursor"]: the database read cursor;
    - ["log"]: the log sink. *)

module Ast = Commset_lang.Ast
module Effects = Commset_analysis.Effects
module Tc = Commset_lang.Typecheck
open Commset_support

type impl = Machine.t -> Value.t list -> Value.t * float

type t = {
  name : string;
  params : Ast.ty list;
  ret : Ast.ty;
  spec : Effects.builtin_spec;
  thread_safe : bool;  (** internally synchronized (the paper's Lib mode) *)
  tm_safe : bool;  (** may execute inside a transaction *)
  impl : impl;
}

let pure_spec =
  {
    Effects.bs_reads = [];
    bs_writes = [];
    bs_reads_arrays = [];
    bs_writes_arrays = [];
    bs_allocates = false;
  }

let rw_spec ?(reads = []) ?(writes = []) ?(reads_arrays = []) ?(writes_arrays = [])
    ?(allocates = false) () =
  {
    Effects.bs_reads = reads;
    bs_writes = writes;
    bs_reads_arrays = reads_arrays;
    bs_writes_arrays = writes_arrays;
    bs_allocates = allocates;
  }

let b ?(thread_safe = false) ?(tm_safe = true) ?(spec = pure_spec) name params ret impl =
  (* calibration hook: an active profile rescales the charged cost; the
     inactive path skips the multiplication so costs stay bit-identical *)
  let impl m args =
    let v, cost = impl m args in
    let s = Costmodel.builtin_cost_scale name in
    if s = 1.0 then (v, cost) else (v, cost *. s)
  in
  { name; params; ret; spec; thread_safe; tm_safe; impl }

let int_v n = Value.Vint n
let float_v f = Value.Vfloat f
let bool_v x = Value.Vbool x
let string_v s = Value.Vstring s

let arg n args = List.nth args n
let iarg n args = Value.to_int ~what:(Printf.sprintf "argument %d" n) (arg n args)
let farg n args = Value.to_float ~what:(Printf.sprintf "argument %d" n) (arg n args)
let sarg n args = Value.to_string_val ~what:(Printf.sprintf "argument %d" n) (arg n args)
let aarg n args = Value.to_array ~what:(Printf.sprintf "argument %d" n) (arg n args)

open Ast

let alloc_cost n = Costmodel.alloc_base +. (Costmodel.alloc_per_slot *. float_of_int n)

let all : t list =
  [
    (* ---- pure conversions and string ops ---- *)
    b "int_to_string" [ Tint ] Tstring (fun _ a -> (string_v (string_of_int (iarg 0 a)), 12.));
    b "float_to_string" [ Tfloat ] Tstring (fun _ a ->
        (string_v (Printf.sprintf "%.4f" (farg 0 a)), 30.));
    b "int_to_float" [ Tint ] Tfloat (fun _ a -> (float_v (float_of_int (iarg 0 a)), 1.));
    b "float_to_int" [ Tfloat ] Tint (fun _ a -> (int_v (int_of_float (farg 0 a)), 1.));
    b "fsqrt" [ Tfloat ] Tfloat (fun _ a -> (float_v (sqrt (farg 0 a)), 8.));
    b "fabs" [ Tfloat ] Tfloat (fun _ a -> (float_v (abs_float (farg 0 a)), 1.));
    b "imin" [ Tint; Tint ] Tint (fun _ a -> (int_v (min (iarg 0 a) (iarg 1 a)), 1.));
    b "imax" [ Tint; Tint ] Tint (fun _ a -> (int_v (max (iarg 0 a) (iarg 1 a)), 1.));
    b "strlen" [ Tstring ] Tint (fun _ a -> (int_v (String.length (sarg 0 a)), 2.));
    b "substr" [ Tstring; Tint; Tint ] Tstring (fun _ a ->
        let s = sarg 0 a and pos = iarg 1 a and len = iarg 2 a in
        let pos = max 0 (min pos (String.length s)) in
        let len = max 0 (min len (String.length s - pos)) in
        (string_v (String.sub s pos len), 4. +. (0.1 *. float_of_int len)));
    b "str_get" [ Tstring; Tint ] Tint (fun _ a ->
        let s = sarg 0 a and i = iarg 1 a in
        let c = if i >= 0 && i < String.length s then Char.code s.[i] else 0 in
        (int_v c, 2.));
    b "str_find" [ Tstring; Tstring ] Tint (fun _ a ->
        let hay = sarg 0 a and needle = sarg 1 a in
        let n = String.length needle and h = String.length hay in
        let rec search i =
          if n = 0 then 0
          else if i + n > h then -1
          else if String.sub hay i n = needle then i
          else search (i + 1)
        in
        (int_v (search 0), 6. +. (0.15 *. float_of_int h)));
    b "str_hash" [ Tstring ] Tint (fun _ a ->
        let s = sarg 0 a in
        let h = ref 5381 in
        String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFF) s;
        (int_v !h, 4. +. (0.3 *. float_of_int (String.length s))));
    (* ---- heavy pure kernels ---- *)
    b "md5_hex" [ Tstring ] Tstring (fun _ a ->
        let s = sarg 0 a in
        ( string_v (Md5.digest_string s),
          80. +. (Costmodel.md5_cost_per_byte *. float_of_int (String.length s)) ));
    b "trace_bitmap" [ Tstring ] Tstring (fun _ a ->
        (* potrace stand-in: "vectorize" a bitmap into a path whose size is
           proportional to the input, like a real vector tracer *)
        let s = sarg 0 a in
        let path = Buffer.create (String.length s / 4) in
        let crc = ref 0 and segments = ref 0 in
        String.iteri
          (fun i c ->
            let v = Char.code c in
            crc := ((!crc * 131) + (v * (1 + (i land 7)))) land 0xFFFFFF;
            if v land 1 = 1 then incr segments;
            if i land 1 = 0 then Buffer.add_char path (Char.chr (65 + (!crc land 15))))
          s;
        ( string_v (Printf.sprintf "P%d;%s" !segments (Buffer.contents path)),
          120. +. (Costmodel.trace_cost_per_byte *. float_of_int (String.length s)) ));
    (* ---- arrays ---- *)
    b "iarray" [ Tint ] (Tarray Tint)
      ~spec:(rw_spec ~allocates:true ())
      (fun _ a ->
        let n = max 0 (iarg 0 a) in
        (Value.Varray (Array.make n (int_v 0)), alloc_cost n));
    b "farray" [ Tint ] (Tarray Tfloat)
      ~spec:(rw_spec ~allocates:true ())
      (fun _ a ->
        let n = max 0 (iarg 0 a) in
        (Value.Varray (Array.make n (float_v 0.)), alloc_cost n));
    b "sarray" [ Tint ] (Tarray Tstring)
      ~spec:(rw_spec ~allocates:true ())
      (fun _ a ->
        let n = max 0 (iarg 0 a) in
        (Value.Varray (Array.make n (string_v "")), alloc_cost n));
    b "alen_i" [ Tarray Tint ] Tint
      ~spec:(rw_spec ~reads_arrays:[ 0 ] ())
      (fun _ a -> (int_v (Array.length (aarg 0 a)), 1.));
    b "alen_f" [ Tarray Tfloat ] Tint
      ~spec:(rw_spec ~reads_arrays:[ 0 ] ())
      (fun _ a -> (int_v (Array.length (aarg 0 a)), 1.));
    b "alen_s" [ Tarray Tstring ] Tint
      ~spec:(rw_spec ~reads_arrays:[ 0 ] ())
      (fun _ a -> (int_v (Array.length (aarg 0 a)), 1.));
    (* matrix = float[] from the shared allocator: the allocator free-list
       is the shared resource, the storage itself is fresh (456.hmmer) *)
    b "matrix_alloc" [ Tint ] (Tarray Tfloat) ~tm_safe:true ~thread_safe:true
      ~spec:(rw_spec ~reads:[ "heap.alloc" ] ~writes:[ "heap.alloc" ] ~allocates:true ())
      (fun _ a ->
        let n = max 0 (iarg 0 a) in
        (Value.Varray (Array.make n (float_v 0.)), alloc_cost n +. 120.));
    b "matrix_free" [ Tarray Tfloat ] Tvoid ~tm_safe:true ~thread_safe:true
      ~spec:(rw_spec ~reads:[ "heap.alloc" ] ~writes:[ "heap.alloc" ] ~reads_arrays:[ 0 ] ())
      (fun _ _ -> (int_v 0, 140.));
    (* ---- console and files ---- *)
    b "print" [ Tstring ] Tvoid ~tm_safe:false
      ~spec:(rw_spec ~reads:[ "io.stdout" ] ~writes:[ "io.stdout" ] ())
      ~thread_safe:true
      (fun m a ->
        m.Machine.emit (sarg 0 a);
        (int_v 0, Costmodel.print_cost));
    (* each call mints a distinct descriptor: the result is a fresh
       handle ([allocates]), which lets the static differencer prove
       per-iteration streams distinct *)
    b "fopen" [ Tstring ] Tint ~tm_safe:false
      ~spec:(rw_spec ~reads:[ "io.fdtable" ] ~writes:[ "io.fdtable" ] ~allocates:true ())
      ~thread_safe:true
      (fun m a -> (int_v (Machine.fopen m (sarg 0 a)), Costmodel.file_open_cost));
    b "fclose" [ Tint ] Tvoid ~tm_safe:false
      ~spec:(rw_spec ~reads:[ "io.fdtable" ] ~writes:[ "io.fdtable" ] ())
      ~thread_safe:true
      (fun m a ->
        Machine.fclose m (iarg 0 a);
        (int_v 0, Costmodel.file_close_cost));
    b "fread" [ Tint; Tint ] Tstring ~tm_safe:false
      ~spec:
        (rw_spec
           ~reads:[ "io.stream.in"; "io.disk" ]
             (* "io.disk" models shared disk bandwidth: it serializes
                transfers (library lock) but, being read-only in the
                effect system, adds no dependence edges *)
           ~writes:[ "io.stream.in" ] ())
      ~thread_safe:true
      (fun m a ->
        let s = Machine.fread m (iarg 0 a) (iarg 1 a) in
        (string_v s, Costmodel.file_read_base +. (Costmodel.per_byte *. float_of_int (String.length s))));
    b "fsize" [ Tint ] Tint ~tm_safe:false
      ~spec:(rw_spec ~reads:[ "io.stream.in" ] ())
      ~thread_safe:true
      (fun m a -> (int_v (Machine.fsize m (iarg 0 a)), 40.));
    b "feof" [ Tint ] Tbool ~tm_safe:false
      ~spec:(rw_spec ~reads:[ "io.stream.in" ] ())
      ~thread_safe:true
      (fun m a -> (bool_v (Machine.feof m (iarg 0 a)), 20.));
    b "fwrite" [ Tint; Tstring ] Tvoid ~tm_safe:false
      ~spec:(rw_spec ~reads:[ "io.stream.out"; "io.disk" ] ~writes:[ "io.stream.out" ] ())
      ~thread_safe:true
      (fun m a ->
        let s = sarg 1 a in
        Machine.fwrite m (iarg 0 a) s;
        (int_v 0, Costmodel.file_write_base +. (Costmodel.write_per_byte *. float_of_int (String.length s))));
    (* ---- RNG ---- *)
    b "rng_int" [ Tint ] Tint ~thread_safe:true
      ~spec:(rw_spec ~reads:[ "rng" ] ~writes:[ "rng" ] ())
      (fun m a -> (int_v (Machine.rng_int m (iarg 0 a)), Costmodel.rng_cost));
    b "rng_range" [ Tint; Tint ] Tint ~thread_safe:true
      ~spec:(rw_spec ~reads:[ "rng" ] ~writes:[ "rng" ] ())
      (fun m a ->
        let lo = iarg 0 a and hi = iarg 1 a in
        let v = if hi <= lo then lo else lo + Machine.rng_int m (hi - lo) in
        (int_v v, Costmodel.rng_cost));
    b "rng_float" [] Tfloat ~thread_safe:true
      ~spec:(rw_spec ~reads:[ "rng" ] ~writes:[ "rng" ] ())
      (fun m _ -> (float_v (Machine.rng_float m), Costmodel.rng_cost));
    b "rng_gauss" [] Tfloat ~thread_safe:true
      ~spec:(rw_spec ~reads:[ "rng" ] ~writes:[ "rng" ] ())
      (fun m _ ->
        let u1 = max 1e-9 (Machine.rng_float m) and u2 = Machine.rng_float m in
        (float_v (sqrt (-2. *. log u1) *. cos (6.2831853 *. u2)), Costmodel.rng_cost *. 2.));
    b "rng_reseed" [ Tint ] Tvoid ~thread_safe:true
      ~spec:(rw_spec ~writes:[ "rng" ] ())
      (fun m a ->
        Machine.rng_reseed m (iarg 0 a);
        (int_v 0, Costmodel.rng_cost));
    (* ---- histogram ---- *)
    b "hist_add" [ Tfloat ] Tvoid
      ~spec:(rw_spec ~reads:[ "hist" ] ~writes:[ "hist" ] ())
      (fun m a ->
        Machine.hist_add m (farg 0 a);
        (int_v 0, Costmodel.hist_cost));
    b "hist_summary" [] Tstring
      ~spec:(rw_spec ~reads:[ "hist" ] ())
      (fun m _ -> (string_v (Machine.hist_summary m), 60.));
    (* ---- vector ---- *)
    b "vec_push" [ Tstring ] Tvoid
      ~spec:(rw_spec ~reads:[ "vec" ] ~writes:[ "vec" ] ())
      (fun m a ->
        Machine.vec_push m (sarg 0 a);
        (int_v 0, Costmodel.collection_op_cost));
    b "vec_size" [] Tint
      ~spec:(rw_spec ~reads:[ "vec" ] ())
      (fun m _ -> (int_v (Machine.vec_size m), 4.));
    b "vec_get" [ Tint ] Tstring
      ~spec:(rw_spec ~reads:[ "vec" ] ())
      (fun m a -> (string_v (Machine.vec_get m (iarg 0 a)), 6.));
    (* ---- bitmaps ---- *)
    b "bm_new" [ Tint ] Tint ~thread_safe:true
      ~spec:(rw_spec ~reads:[ "heap.alloc" ] ~writes:[ "heap.alloc" ] ())
      (fun m a -> (int_v (Machine.bm_new m (iarg 0 a)), 60. +. (0.05 *. float_of_int (iarg 0 a / 8))));
    b "bm_free" [ Tint ] Tvoid ~thread_safe:true
      ~spec:(rw_spec ~reads:[ "heap.alloc" ] ~writes:[ "heap.alloc" ] ())
      (fun m a ->
        Machine.bm_free m (iarg 0 a);
        (int_v 0, 40.));
    b "bm_set" [ Tint; Tint ] Tvoid
      ~spec:(rw_spec ~reads:[ "bm.data" ] ~writes:[ "bm.data" ] ())
      (fun m a ->
        Machine.bm_set m (iarg 0 a) (iarg 1 a);
        (int_v 0, Costmodel.collection_op_cost));
    b "bm_get" [ Tint; Tint ] Tbool
      ~spec:(rw_spec ~reads:[ "bm.data" ] ())
      (fun m a -> (bool_v (Machine.bm_get m (iarg 0 a) (iarg 1 a)), 8.));
    (* ---- lists ---- *)
    b "list_new" [] Tint ~thread_safe:true
      ~spec:(rw_spec ~reads:[ "heap.alloc" ] ~writes:[ "heap.alloc" ] ())
      (fun m _ -> (int_v (Machine.list_new m), 50.));
    b "list_insert" [ Tint; Tint ] Tvoid
      ~spec:(rw_spec ~reads:[ "lst" ] ~writes:[ "lst" ] ())
      (fun m a ->
        Machine.list_insert m (iarg 0 a) (iarg 1 a);
        (int_v 0, Costmodel.collection_op_cost));
    b "list_contains" [ Tint; Tint ] Tbool
      ~spec:(rw_spec ~reads:[ "lst" ] ())
      (fun m a ->
        let l = Machine.list_lookup m (iarg 0 a) in
        (bool_v (List.mem (iarg 1 a) !l), 8. +. (0.4 *. float_of_int (List.length !l))));
    b "list_size" [ Tint ] Tint
      ~spec:(rw_spec ~reads:[ "lst" ] ())
      (fun m a -> (int_v (Machine.list_size m (iarg 0 a)), 6.));
    b "list_sum" [ Tint ] Tint
      ~spec:(rw_spec ~reads:[ "lst" ] ())
      (fun m a -> (int_v (Machine.list_sum m (iarg 0 a)), 20.));
    (* ---- stats ---- *)
    b "stat_add" [ Tfloat ] Tvoid
      ~spec:(rw_spec ~reads:[ "stats" ] ~writes:[ "stats" ] ())
      (fun m a ->
        Machine.stat_add m (farg 0 a);
        (int_v 0, 16.));
    b "stat_note_max" [ Tfloat ] Tvoid
      ~spec:(rw_spec ~reads:[ "stats" ] ~writes:[ "stats" ] ())
      (fun m a ->
        Machine.stat_note_max m (farg 0 a);
        (int_v 0, 14.));
    b "stat_summary" [] Tstring
      ~spec:(rw_spec ~reads:[ "stats" ] ())
      (fun m _ -> (string_v (Machine.stat_summary m), 60.));
    (* ---- packets ---- *)
    b "pkt_dequeue" [] Tint
      ~spec:(rw_spec ~reads:[ "pkt.pool" ] ~writes:[ "pkt.pool" ] ())
      (fun m _ -> (int_v (Machine.pkt_dequeue m), Costmodel.packet_dequeue_cost));
    b "pkt_url" [ Tint ] Tstring (fun m a -> (string_v (Machine.pkt_url m (iarg 0 a)), 10.));
    (* ---- database ---- *)
    b "db_read" [] Tstring ~tm_safe:false
      ~spec:(rw_spec ~reads:[ "db.cursor" ] ~writes:[ "db.cursor" ] ())
      (fun m _ ->
        let row = Machine.db_read m in
        (string_v row, Costmodel.db_read_cost +. (Costmodel.per_byte *. float_of_int (String.length row))));
    (* ---- log ---- *)
    b "log_write" [ Tstring ] Tvoid ~thread_safe:true
      ~spec:(rw_spec ~reads:[ "log" ] ~writes:[ "log" ] ())
      (fun m a ->
        let s = sarg 0 a in
        Machine.log_write m s;
        (int_v 0, Costmodel.log_write_base +. (Costmodel.per_byte *. float_of_int (String.length s))));
    b "log_count" [] Tint
      ~spec:(rw_spec ~reads:[ "log" ] ())
      (fun m _ -> (int_v (Machine.log_count m), 6.));
    (* ---- list destruction (heap free-list, like bm_free) ---- *)
    b "list_free" [ Tint ] Tvoid ~thread_safe:true
      ~spec:(rw_spec ~reads:[ "heap.alloc" ] ~writes:[ "heap.alloc" ] ())
      (fun m a ->
        Hashtbl.remove m.Machine.lists (iarg 0 a);
        (int_v 0, 60.));
    (* ---- potrace output encoding (pure, heavy) ---- *)
    b "svg_encode" [ Tstring ] Tstring (fun _ a ->
        let s = sarg 0 a in
        let buf = Buffer.create (String.length s * 2) in
        Buffer.add_string buf "<svg>";
        String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
        Buffer.add_string buf "</svg>";
        (string_v (Buffer.contents buf), 60. +. (4.5 *. float_of_int (String.length s))));
    (* ---- memoization cache (string registry) ---- *)
    b "cache_get" [ Tstring ] Tstring ~thread_safe:true
      ~spec:(rw_spec ~reads:[ "registry" ] ())
      (fun m a -> (string_v (Machine.cache_get m (sarg 0 a)), 26.));
    b "cache_put" [ Tstring; Tstring ] Tvoid ~thread_safe:true
      ~spec:(rw_spec ~reads:[ "registry" ] ~writes:[ "registry" ] ())
      (fun m a ->
        Machine.cache_put m (sarg 0 a) (sarg 1 a);
        (int_v 0, 30.));
    (* ---- em3d bipartite graph library ----
       The graph library guarantees per-node isolation of neighbour slots
       (each (node, slot) cell is written by exactly one loop iteration),
       which a shape analysis would prove; its writes are therefore not
       modeled as conflicting abstract state. See DESIGN.md. *)
    b "graph_build_nodes" [ Tint ] Tvoid
      ~spec:(rw_spec ~writes:[ "graph.nodes" ] ())
      (fun m a ->
        Machine.graph_build_nodes m (iarg 0 a);
        (int_v 0, 100. +. (2.0 *. float_of_int (iarg 0 a))));
    b "graph_first" [] Tint
      ~spec:(rw_spec ~reads:[ "graph.nodes" ] ())
      (fun m _ -> (int_v (Machine.graph_first m), 6.));
    b "graph_next" [ Tint ] Tint
      ~spec:(rw_spec ~reads:[ "graph.nodes" ] ())
      (fun m a -> (int_v (Machine.graph_next m (iarg 0 a)), 18.));
    b "graph_set_neighbor" [ Tint; Tint; Tint ] Tvoid (fun m a ->
        Machine.graph_set_neighbor m (iarg 0 a) (iarg 1 a) (iarg 2 a);
        (int_v 0, 22.));
    b "graph_set_weight" [ Tint; Tint; Tfloat ] Tvoid (fun m a ->
        Machine.graph_set_weight m (iarg 0 a) (iarg 1 a) (farg 2 a);
        (int_v 0, 22.));
    b "graph_summary" [] Tstring
      ~spec:(rw_spec ~reads:[ "graph.nodes" ] ())
      (fun m _ -> (string_v (Machine.graph_summary m), 80.));
    (* ---- array fill helpers used by workload setup code ---- *)
    b "afill_f" [ Tarray Tfloat; Tint; Tint ] Tvoid
      ~spec:(rw_spec ~writes_arrays:[ 0 ] ())
      (fun _ a ->
        let arr = aarg 0 a and mult = iarg 1 a and modv = max 1 (iarg 2 a) in
        Array.iteri
          (fun i _ ->
            arr.(i) <- float_v (float_of_int ((i * mult) mod modv) /. float_of_int modv))
          arr;
        (int_v 0, 40. +. (1.5 *. float_of_int (Array.length arr))));
    b "afill_i" [ Tarray Tint; Tint; Tint ] Tvoid
      ~spec:(rw_spec ~writes_arrays:[ 0 ] ())
      (fun _ a ->
        let arr = aarg 0 a and mult = iarg 1 a and modv = max 1 (iarg 2 a) in
        Array.iteri (fun i _ -> arr.(i) <- int_v ((i * mult) mod modv)) arr;
        (int_v 0, 40. +. (1.5 *. float_of_int (Array.length arr))));
    b "aset_f" [ Tarray Tfloat; Tint; Tfloat ] Tvoid
      ~spec:(rw_spec ~writes_arrays:[ 0 ] ())
      (fun _ a ->
        (aarg 0 a).(iarg 1 a) <- float_v (farg 2 a);
        (int_v 0, 3.));
  ]

let table : (string, t) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter (fun bi -> Hashtbl.replace tbl bi.name bi) all;
  tbl

let find name = Hashtbl.find_opt table name

let find_exn name =
  match find name with
  | Some bi -> bi
  | None -> Diag.error "unknown builtin '%s'" name

(** Effect lookup for the analyses. *)
let lookup_spec : Effects.lookup = fun name -> Option.map (fun bi -> bi.spec) (find name)

(** Extern signatures for the type checker. *)
let extern_sigs : Tc.extern_sig list =
  List.map (fun bi -> { Tc.xname = bi.name; xparams = bi.params; xret = bi.ret }) all

(** Abstract resources a builtin touches (for Lib-mode locking). *)
let resources bi =
  Commset_support.Listx.uniq (bi.spec.Effects.bs_reads @ bi.spec.Effects.bs_writes)
