(** Emission: turn a plan plus the sequential trace into per-thread
    segment lists for the discrete-event simulator — the multi-threaded
    code-generation step of the paper's compiler at trace granularity
    (round-robin iterations for DOALL; per-stage threads, replicated loop
    control, and bounded queues for the pipelines; locks / transactions /
    library-internal serialization per synchronization variant). *)

module Pdg = Commset_pdg.Pdg
module Trace = Commset_runtime.Trace
module Sim = Commset_runtime.Sim

type t = {
  seg_lists : Sim.seg list array;
  locks : Sim.lock_spec array;
  n_queues : int;
}

val emit : plan:Plan.t -> pdg:Pdg.t -> trace:Trace.t -> t

(** Simulate a plan; returns the simulator result plus the whole-program
    makespan (loop makespan + the sequential non-loop cost). *)
val simulate :
  ?record_timeline:bool -> plan:Plan.t -> pdg:Pdg.t -> trace:Trace.t -> unit -> Sim.result * float
