(** Deterministic fresh-name generation.

    Each [t] is an independent counter namespace, so separate compiler
    pipelines produce identical names for identical inputs — a property
    the golden tests rely on. *)

type t = { prefix : string; mutable next : int }

let create ?(prefix = "t") () = { prefix; next = 0 }

let fresh t =
  let n = t.next in
  t.next <- n + 1;
  Printf.sprintf "%s%d" t.prefix n

let fresh_named t base =
  let n = t.next in
  t.next <- n + 1;
  Printf.sprintf "%s.%d" base n

let reset t = t.next <- 0
