#!/usr/bin/env python3
"""Validate a `commsetc serve` report (stdout JSON or --status-out file)
against ci/serve-schema.json (stdlib only — the same small schema
interpreter as check_suggest.py, extended with #/definitions $ref
resolution), then assert the serve acceptance bar: zero Equiv
failures, a clean drain, and the expected stop reason.

Usage: check_serve.py <schema.json> <report.json> [options]
  --stopped-by=completed|signal   expected stop reason (default: completed)
  --min-hit-rate=F                plan-cache hit-rate floor (default: none)
  --require-equiv                 fail if no Equiv checks actually ran
"""
import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


def validate(value, schema, root, path="$"):
    if "$ref" in schema:
        ref = schema["$ref"]
        if not ref.startswith("#/"):
            return ["%s: unsupported $ref %r" % (path, ref)]
        target = root
        for part in ref[2:].split("/"):
            target = target[part]
        return validate(value, target, root, path)
    errors = []
    if "enum" in schema:
        if value not in schema["enum"]:
            errors.append("%s: %r not in %r" % (path, value, schema["enum"]))
        return errors
    t = schema.get("type")
    if t is not None:
        allowed = t if isinstance(t, list) else [t]
        py = tuple(TYPES[a] for a in allowed)
        # bool is an int subclass in python; keep number/integer honest
        if isinstance(value, bool) and "boolean" not in allowed:
            errors.append("%s: expected %s, got boolean" % (path, allowed))
            return errors
        if not isinstance(value, py):
            errors.append(
                "%s: expected %s, got %s" % (path, allowed, type(value).__name__)
            )
            return errors
    if isinstance(value, dict):
        for k in schema.get("required", []):
            if k not in value:
                errors.append("%s: missing required key %r" % (path, k))
        for k, sub in schema.get("properties", {}).items():
            if k in value:
                errors.extend(validate(value[k], sub, root, "%s.%s" % (path, k)))
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            errors.extend(validate(item, schema["items"], root, "%s[%d]" % (path, i)))
    return errors


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    opts = [a for a in sys.argv[1:] if a.startswith("--")]
    schema_path, out_path = args[0], args[1]
    stopped_by = "completed"
    min_hit_rate = None
    require_equiv = False
    for o in opts:
        if o.startswith("--stopped-by="):
            stopped_by = o.split("=", 1)[1]
        elif o.startswith("--min-hit-rate="):
            min_hit_rate = float(o.split("=", 1)[1])
        elif o == "--require-equiv":
            require_equiv = True
        else:
            sys.exit("unknown option %s" % o)

    with open(schema_path) as f:
        schema = json.load(f)
    with open(out_path) as f:
        out = json.load(f)

    errors = validate(out, schema, schema)
    if errors:
        for e in errors:
            print("schema violation: %s" % e, file=sys.stderr)
        sys.exit("%s does not match %s" % (out_path, schema_path))
    print("%s: schema ok" % out_path)

    eq = out["equiv"]
    if eq["failures"] != 0:
        sys.exit(
            "equiv failures: %d (first: %s)" % (eq["failures"], eq["first_failure"])
        )
    if require_equiv and eq["checked"] == 0:
        sys.exit("no Equiv checks ran (equiv.checked == 0)")
    if not out["drained"]:
        sys.exit(
            "did not drain: offered %d, completed %d"
            % (out["requests_offered"], out["requests_served"] + out["requests_failed"])
        )
    if out["stopped_by"] != stopped_by:
        sys.exit(
            "stopped_by %r, expected %r" % (out["stopped_by"], stopped_by)
        )
    hr = out["plan_cache"]["hit_rate"]
    if min_hit_rate is not None and hr < min_hit_rate:
        sys.exit(
            "plan-cache hit rate %.4f below floor %.4f" % (hr, min_hit_rate)
        )
    print(
        "%s: serve ok — %d served / %d offered at %.1f rps, "
        "%d equiv checks clean, hit rate %.4f, stopped_by=%s"
        % (
            out_path,
            out["requests_served"],
            out["requests_offered"],
            out["throughput_rps"],
            eq["checked"],
            hr,
            out["stopped_by"],
        )
    )


if __name__ == "__main__":
    main()
