lib/transforms/doall.mli: Commset_pdg Commset_runtime Plan Sync
