lib/pdg/builder.ml: Array Commset_analysis Commset_ir Commset_support Hashtbl List Pdg
