lib/core/dep_analysis.ml: Array Commset_analysis Commset_ir Commset_pdg Commset_support Diag List Metadata
