(** Scalar reduction recognition (sum/product recurrences with
    unobserved intermediate values) — the classic transform the paper
    points at when noting that IPOT-style reduction annotations integrate
    with COMMSET (§6). Recognized reductions run on per-thread private
    accumulators and no longer block DOALL. *)

module Ir = Commset_ir.Ir
module Ast = Commset_lang.Ast

type op = Rsum | Rprod

type t = {
  racc : Ir.reg;  (** the accumulator register *)
  rop : op;
  rty : Ast.ty;
  rnodes : int list;  (** the PDG nodes forming the recurrence *)
}

val detect : Pdg.t -> t list
val covered_nodes : t list -> int list

(** Is this carried edge part of a recognized reduction's recurrence? *)
val edge_exempt : t list -> Pdg.edge -> bool

val pp : Format.formatter -> t -> unit
