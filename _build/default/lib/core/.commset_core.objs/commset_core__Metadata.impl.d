lib/core/metadata.ml: Commset_analysis Commset_ir Commset_lang Commset_pdg Commset_support Diag Hashtbl List Listx Option Printf String
