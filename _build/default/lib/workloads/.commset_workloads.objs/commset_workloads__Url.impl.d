lib/workloads/url.ml: Char Commset_runtime List Printf String Workload
