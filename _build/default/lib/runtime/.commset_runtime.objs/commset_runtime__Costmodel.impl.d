lib/runtime/costmodel.ml: Commset_ir Commset_lang
