(** Reaching definitions restricted to one loop, separating same-iteration
    facts from loop-carried facts.

    For a use [u] of register [r] inside the loop:
    - a def [d] of [r] reaches [u] *intra-iteration* if there is a
      def-clear path from [d] to [u] that does not cross a back edge;
    - [d] reaches [u] *loop-carried* if [d] is live out of some latch and
      a def-clear path from the header reaches [u]. *)

module Ir = Commset_ir.Ir

module IntSet = Set.Make (Int)

type t = {
  intra : (int, IntSet.t) Hashtbl.t;  (** instr iid -> defs reaching it intra-iteration *)
  carried : (int, IntSet.t) Hashtbl.t;  (** instr iid -> defs reaching it from previous iterations *)
  intra_end : (Ir.label, IntSet.t) Hashtbl.t;  (** block label -> defs reaching its terminator *)
  carried_end : (Ir.label, IntSet.t) Hashtbl.t;
  def_reg : (int, Ir.reg) Hashtbl.t;  (** defining instr -> register defined *)
}

let defs_of_instr i = Ir.instr_defs i

(* dataflow over the loop body only *)
let compute (cfg : Cfg.t) (loop : Loops.loop) : t =
  let func = cfg.Cfg.func in
  let body = loop.Loops.body in
  let in_body l = List.mem l body in
  let def_reg = Hashtbl.create 64 in
  List.iter
    (fun l ->
      List.iter
        (fun i -> List.iter (fun r -> Hashtbl.replace def_reg i.Ir.iid r) (defs_of_instr i))
        (Ir.block func l).Ir.instrs)
    body;
  (* per-block gen/kill *)
  let gen = Hashtbl.create 16 in
  let kill_regs = Hashtbl.create 16 in
  List.iter
    (fun l ->
      let b = Ir.block func l in
      let g = ref IntSet.empty in
      let kr = ref [] in
      List.iter
        (fun i ->
          List.iter
            (fun r ->
              (* a later def of r in the same block kills earlier ones *)
              g :=
                IntSet.filter
                  (fun iid -> Hashtbl.find def_reg iid <> r)
                  !g;
              g := IntSet.add i.Ir.iid !g;
              kr := r :: !kr)
            (defs_of_instr i))
        b.Ir.instrs;
      Hashtbl.replace gen l !g;
      Hashtbl.replace kill_regs l (List.sort_uniq compare !kr))
    body;
  let transfer ~with_gen l in_set =
    let killed = Hashtbl.find kill_regs l in
    let survive =
      IntSet.filter (fun iid -> not (List.mem (Hashtbl.find def_reg iid) killed)) in_set
    in
    if with_gen then IntSet.union survive (Hashtbl.find gen l) else survive
  in
  (* generic fixpoint: header_in is fixed; other blocks join over in-loop preds,
     back edges excluded. The intra pass generates defs; the carried pass
     only kills — a def from a previous iteration stops reaching as soon as
     the current iteration redefines the register. *)
  let solve ~with_gen header_in =
    let ins = Hashtbl.create 16 in
    let outs = Hashtbl.create 16 in
    List.iter
      (fun l ->
        Hashtbl.replace ins l IntSet.empty;
        Hashtbl.replace outs l IntSet.empty)
      body;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun l ->
          let in_set =
            if l = loop.Loops.header then header_in
            else
              List.fold_left
                (fun acc p ->
                  if in_body p then IntSet.union acc (Hashtbl.find outs p) else acc)
                IntSet.empty (Cfg.predecessors cfg l)
          in
          let out_set = transfer ~with_gen l in_set in
          if
            not
              (IntSet.equal in_set (Hashtbl.find ins l)
              && IntSet.equal out_set (Hashtbl.find outs l))
          then begin
            Hashtbl.replace ins l in_set;
            Hashtbl.replace outs l out_set;
            changed := true
          end)
        body
    done;
    (ins, outs)
  in
  let intra_ins, intra_outs = solve ~with_gen:true IntSet.empty in
  (* defs live out of latches feed the next iteration *)
  let latch_out =
    List.fold_left
      (fun acc latch -> IntSet.union acc (Hashtbl.find intra_outs latch))
      IntSet.empty loop.Loops.latches
  in
  let carried_ins, _ = solve ~with_gen:false latch_out in
  (* per-instruction facts by linear scan within each block *)
  let intra = Hashtbl.create 128 in
  let carried = Hashtbl.create 128 in
  let intra_end = Hashtbl.create 16 in
  let carried_end = Hashtbl.create 16 in
  List.iter
    (fun l ->
      let b = Ir.block func l in
      let cur_i = ref (Hashtbl.find intra_ins l) in
      let cur_c = ref (Hashtbl.find carried_ins l) in
      List.iter
        (fun i ->
          Hashtbl.replace intra i.Ir.iid !cur_i;
          Hashtbl.replace carried i.Ir.iid !cur_c;
          List.iter
            (fun r ->
              let keep s = IntSet.filter (fun iid -> Hashtbl.find def_reg iid <> r) s in
              cur_i := IntSet.add i.Ir.iid (keep !cur_i);
              cur_c := keep !cur_c)
            (defs_of_instr i))
        b.Ir.instrs;
      Hashtbl.replace intra_end l !cur_i;
      Hashtbl.replace carried_end l !cur_c)
    body;
  { intra; carried; intra_end; carried_end; def_reg }

let intra_defs t ~use_iid ~reg =
  match Hashtbl.find_opt t.intra use_iid with
  | None -> []
  | Some s ->
      IntSet.elements (IntSet.filter (fun iid -> Hashtbl.find t.def_reg iid = reg) s)

let carried_defs t ~use_iid ~reg =
  match Hashtbl.find_opt t.carried use_iid with
  | None -> []
  | Some s ->
      IntSet.elements (IntSet.filter (fun iid -> Hashtbl.find t.def_reg iid = reg) s)

let intra_defs_at_end t ~label ~reg =
  match Hashtbl.find_opt t.intra_end label with
  | None -> []
  | Some s ->
      IntSet.elements (IntSet.filter (fun iid -> Hashtbl.find t.def_reg iid = reg) s)

let carried_defs_at_end t ~label ~reg =
  match Hashtbl.find_opt t.carried_end label with
  | None -> []
  | Some s ->
      IntSet.elements (IntSet.filter (fun iid -> Hashtbl.find t.def_reg iid = reg) s)
