(** Tests for the parallelizing transforms: DOALL applicability, DSWP /
    PS-DSWP stage formation, the synchronization engine's lock
    assignment, plan emission, and end-to-end simulated runs on small
    programs. *)

module P = Commset_pipeline.Pipeline
module T = Commset_transforms
module Pdg = Commset_pdg.Pdg
module Scc = Commset_pdg.Scc
module R = Commset_runtime

let check = Alcotest.check

let compile ?(setup = fun _ -> ()) src = P.compile ~name:"<test>" ~setup src

(* independent iterations with a commutative shared push *)
let doall_src =
  {|
#pragma commset decl G group
#pragma commset predicate G (a) (b) (a != b)
void main() {
  for (int i = 0; i < 32; i++) {
    int acc = 0;
    for (int j = 0; j < 40; j++) {
      acc = acc + (i * j) % 17;
    }
    #pragma commset member G(i), SELF
    {
      vec_push(int_to_string(acc));
    }
  }
}
|}

(* a true sequential accumulation: no legal DOALL *)
let seq_src =
  {|
void main() {
  int acc = 1;
  for (int i = 0; i < 16; i++) {
    acc = (acc * 7 + i) % 1000;
    print(int_to_string(acc));
  }
}
|}

let test_doall_applicable () =
  let c = compile doall_src in
  check Alcotest.bool "doall applicable" true (T.Doall.applicable c.P.target.P.pdg);
  check Alcotest.bool "plain pdg blocked" false (T.Doall.applicable c.P.target.P.pdg_plain)

let test_doall_blocked_by_recurrence () =
  let c = compile seq_src in
  match T.Doall.applicability c.P.target.P.pdg with
  | T.Doall.Applicable -> Alcotest.fail "a recurrence must block DOALL"
  | T.Doall.Blocked edges -> check Alcotest.bool "reports blockers" true (edges <> [])

let test_doall_speedup () =
  let c = compile doall_src in
  let runs = P.evaluate c ~threads:8 in
  let doalls =
    List.filter (fun r -> r.P.plan.T.Plan.shape = T.Plan.Sdoall) runs
  in
  check Alcotest.bool "a DOALL plan exists" true (doalls <> []);
  let best =
    List.fold_left (fun acc r -> max acc r.P.speedup) 0. doalls
  in
  check Alcotest.bool "best DOALL scales" true (best > 3.0);
  List.iter
    (fun r -> check Alcotest.bool "no output corruption" true (r.P.fidelity <> P.Mismatch))
    doalls

let test_sequential_stays_sequential () =
  let c = compile seq_src in
  (* whatever plans exist cannot beat ~1x by much: the recurrence plus the
     in-order prints serialize everything *)
  List.iter
    (fun r -> check Alcotest.bool "no fake speedup" true (r.P.speedup < 1.6))
    (P.evaluate c ~threads:8)

let test_sync_locks () =
  let c = compile doall_src in
  let pdg = c.P.target.P.pdg in
  (* the push region must hold the G lock and its self lock, in rank order *)
  let region =
    List.find (fun n -> Pdg.node_region n <> None) (Pdg.nodes pdg)
  in
  let locks = T.Sync.locks_of c.P.sync region.Pdg.nid in
  check Alcotest.bool "G lock held" true (List.mem "G" locks);
  let ranks =
    List.map
      (fun s -> (Commset_core.Metadata.set_info_exn c.P.md s).Commset_core.Metadata.rank)
      locks
  in
  check Alcotest.(list int) "locks sorted by rank" (List.sort compare ranks) ranks

let test_lib_safe_needs_no_locks () =
  (* a commset whose only member effect is a thread-safe builtin (print):
     no compiler lock, only the library's internal one *)
  let src =
    {|
void main() {
  for (int i = 0; i < 8; i++) {
    #pragma commset member SELF
    {
      print(int_to_string(i));
    }
  }
}
|}
  in
  let c = compile src in
  check Alcotest.bool "no compiler locks" false (T.Sync.any_compiler_locks c.P.sync)

let test_tm_applicability () =
  (* kmeans' update block is pure arithmetic: TM applies; md5sum's I/O
     blocks make TM inapplicable *)
  let k = Option.get (Commset_workloads.Registry.find "kmeans") in
  let ck = compile ~setup:k.Commset_workloads.Workload.setup k.Commset_workloads.Workload.source in
  check Alcotest.bool "kmeans TM ok" true (T.Sync.tm_applicable ck.P.sync ck.P.trace);
  let m = Option.get (Commset_workloads.Registry.find "md5sum") in
  let cm = compile ~setup:m.Commset_workloads.Workload.setup m.Commset_workloads.Workload.source in
  check Alcotest.bool "md5sum TM rejected (I/O)" false
    (T.Sync.tm_applicable cm.P.sync cm.P.trace)

let test_dswp_stages_topological () =
  let w = Option.get (Commset_workloads.Registry.find "md5sum") in
  let src = List.assoc "deterministic" w.Commset_workloads.Workload.variants in
  let c = compile ~setup:w.Commset_workloads.Workload.setup src in
  let runs = P.evaluate c ~threads:8 in
  let ps = List.filter (fun r -> T.Plan.is_psdswp r.P.plan) runs in
  check Alcotest.bool "PS-DSWP produced" true (ps <> []);
  List.iter
    (fun r ->
      match r.P.plan.T.Plan.shape with
      | T.Plan.Sdswp stages ->
          (* stage thread counts sum to <= total threads *)
          let used =
            List.fold_left (fun acc (s : T.Plan.stage) -> acc + s.T.Plan.sthreads) 0 stages
          in
          check Alcotest.bool "thread budget respected" true (used <= 8);
          (* the deterministic print region sits in a sequential stage *)
          let pdg = c.P.target.P.pdg in
          let print_stage =
            List.find_opt
              (fun (s : T.Plan.stage) ->
                List.exists
                  (fun nid ->
                    match (pdg.Pdg.nodes.(nid)).Pdg.kind with
                    | Pdg.Nregion (_, instrs) ->
                        List.exists
                          (fun i -> Commset_ir.Ir.callee_of i = Some "print")
                          instrs
                    | _ -> false)
                  s.T.Plan.snodes)
              stages
          in
          (match print_stage with
          | Some s -> check Alcotest.int "print stage sequential" 1 s.T.Plan.sthreads
          | None -> Alcotest.fail "print region not found in stages")
      | T.Plan.Sdoall -> ())
    ps

let test_pipeline_fidelity_exact () =
  (* PS-DSWP with a sequential output stage must reproduce the sequential
     output exactly *)
  let w = Option.get (Commset_workloads.Registry.find "md5sum") in
  let src = List.assoc "deterministic" w.Commset_workloads.Workload.variants in
  let c = compile ~setup:w.Commset_workloads.Workload.setup src in
  List.iter
    (fun r ->
      if T.Plan.is_psdswp r.P.plan then
        check Alcotest.bool "deterministic pipeline output" true (r.P.fidelity = P.Exact))
    (P.evaluate c ~threads:8)

let test_speedup_monotonic_sanity () =
  (* more threads never cause a catastrophic slowdown for the lib-locked
     DOALL on md5sum, and 1-thread plans hover near 1x *)
  let w = Option.get (Commset_workloads.Registry.find "md5sum") in
  let c = compile ~setup:w.Commset_workloads.Workload.setup w.Commset_workloads.Workload.source in
  (match P.best c ~threads:1 with
  | Some r -> check Alcotest.bool "1 thread ~ 1x" true (r.P.speedup < 1.1)
  | None -> Alcotest.fail "no plan at 1 thread");
  let s2 = (Option.get (P.best c ~threads:2)).P.speedup in
  let s8 = (Option.get (P.best c ~threads:8)).P.speedup in
  check Alcotest.bool "2 < 8 threads" true (s2 < s8);
  check Alcotest.bool "2 threads meaningful" true (s2 > 1.5)

let test_emit_lock_balance () =
  (* every emitted segment list has balanced acquire/release pairs *)
  let c = compile doall_src in
  List.iter
    (fun plan ->
      let e = T.Emit.emit ~plan ~pdg:c.P.target.P.pdg ~trace:c.P.trace in
      Array.iter
        (fun segs ->
          let held = Hashtbl.create 8 in
          List.iter
            (fun seg ->
              match seg with
              | R.Sim.Acquire l ->
                  Alcotest.(check bool) "no recursive acquire" false (Hashtbl.mem held l);
                  Hashtbl.add held l ()
              | R.Sim.Release l ->
                  Alcotest.(check bool) "release held" true (Hashtbl.mem held l);
                  Hashtbl.remove held l
              | _ -> ())
            segs;
          Alcotest.(check int) "all released" 0 (Hashtbl.length held))
        e.T.Emit.seg_lists)
    (P.plans c ~threads:4)

(* ---- pipeline stage-structure invariants ---- *)

let test_stage_coverage () =
  (* every non-loop-control PDG node appears in exactly one stage of
     every pipeline plan *)
  List.iter
    (fun name ->
      let w = Option.get (Commset_workloads.Registry.find name) in
      let c = compile ~setup:w.Commset_workloads.Workload.setup
          w.Commset_workloads.Workload.source
      in
      List.iter
        (fun (p : T.Plan.t) ->
          match p.T.Plan.shape with
          | T.Plan.Sdoall -> ()
          | T.Plan.Sdswp stages ->
              let pdg = if p.T.Plan.uses_commset then c.P.target.P.pdg else c.P.target.P.pdg_plain in
              let assigned = Hashtbl.create 64 in
              List.iter
                (fun (s : T.Plan.stage) ->
                  List.iter
                    (fun nid ->
                      if Hashtbl.mem assigned nid then
                        Alcotest.failf "%s/%s: node %d in two stages" name p.T.Plan.label nid;
                      Hashtbl.replace assigned nid ())
                    s.T.Plan.snodes)
                stages;
              List.iter
                (fun (n : Pdg.node) ->
                  if (not n.Pdg.loop_control) && not (Hashtbl.mem assigned n.Pdg.nid) then
                    Alcotest.failf "%s/%s: node %d unassigned" name p.T.Plan.label n.Pdg.nid)
                (Pdg.nodes pdg))
        (P.plans c ~threads:8))
    [ "md5sum"; "em3d"; "kmeans" ]

let test_queue_counts () =
  (* a pipeline with k stages has at least k-1 queues per iteration path
     and emission reports a consistent count *)
  let w = Option.get (Commset_workloads.Registry.find "em3d") in
  let c = compile ~setup:w.Commset_workloads.Workload.setup w.Commset_workloads.Workload.source in
  List.iter
    (fun (p : T.Plan.t) ->
      match p.T.Plan.shape with
      | T.Plan.Sdoall -> ()
      | T.Plan.Sdswp stages ->
          let e = T.Emit.emit ~plan:p ~pdg:c.P.target.P.pdg ~trace:c.P.trace in
          Alcotest.(check bool)
            (Printf.sprintf "%s has queues" p.T.Plan.label)
            true
            (List.length stages < 2 || e.T.Emit.n_queues >= List.length stages - 1))
    (P.plans c ~threads:8)

let structure_cases =
  [
    Alcotest.test_case "stage coverage" `Slow test_stage_coverage;
    Alcotest.test_case "queue counts" `Slow test_queue_counts;
  ]

let suite =
  ( "transforms",
    structure_cases
    @ [
      Alcotest.test_case "doall applicable" `Quick test_doall_applicable;
      Alcotest.test_case "doall blocked by recurrence" `Quick test_doall_blocked_by_recurrence;
      Alcotest.test_case "doall speedup" `Quick test_doall_speedup;
      Alcotest.test_case "sequential stays sequential" `Quick test_sequential_stays_sequential;
      Alcotest.test_case "sync lock assignment" `Quick test_sync_locks;
      Alcotest.test_case "lib-safe sets unlocked" `Quick test_lib_safe_needs_no_locks;
      Alcotest.test_case "TM applicability" `Quick test_tm_applicability;
      Alcotest.test_case "PS-DSWP stages" `Quick test_dswp_stages_topological;
      Alcotest.test_case "pipeline determinism" `Quick test_pipeline_fidelity_exact;
      Alcotest.test_case "speedup sanity" `Quick test_speedup_monotonic_sanity;
      Alcotest.test_case "emit lock balance" `Quick test_emit_lock_balance;
    ] )

