lib/runtime/concrete_eval.ml: Commset_lang Commset_support Diag List Value
