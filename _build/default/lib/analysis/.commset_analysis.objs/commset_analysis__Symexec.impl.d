lib/analysis/symexec.ml: Commset_lang Commset_support Diag Induction List
