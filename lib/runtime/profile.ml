(** Runtime profiler: attributes inclusive simulated cycles to each basic
    block (callee time counted at the call site's block) and ranks the
    program's loops by execution share, mirroring the paper's workflow of
    focusing parallelization on hot loops identified via profiling. *)

module Ir = Commset_ir.Ir
module A = Commset_analysis

type frame = {
  fname : string;
  mutable cur_label : Ir.label;
  mutable seg_start : float;
      (** cumulative-counter reading when this frame last changed block:
          the open segment [seg_start, now) belongs to [cur_label] *)
}

type block_costs = (string * Ir.label, float) Hashtbl.t

type loop_report = {
  lr_func : string;
  lr_header : Ir.label;
  lr_cost : float;
  lr_fraction : float;  (** share of total program cycles *)
  lr_depth : int;
}

type t = { reports : loop_report list; total : float }

(* Inclusive attribution without a per-cost-event stack walk: cost hooks
   only bump one cumulative counter, and each frame flushes the elapsed
   segment to its current block whenever that block changes (or the
   frame pops). A parent's open segment spans its callees' execution, so
   callee time lands at the call site's block exactly as before — only
   the float summation grouping differs (per segment instead of per
   event), which can move block totals by an ulp but never the ranking
   signal. This turns an O(instructions × stack depth) hashtable storm
   into O(blocks executed) updates. *)
let record ?(machine = Machine.create ()) ?prepared (prog : Ir.program) : block_costs * float
    =
  let costs : block_costs = Hashtbl.create 256 in
  (* the cumulative counter: on the reference engine the cost hooks feed
     [cum]; on the prepared engine the coarse path skips cost hooks
     entirely and [now] reads the engine's own running total instead *)
  let cum = ref 0. in
  let now = ref (fun () -> !cum) in
  let stack : frame list ref = ref [] in
  let flush fr =
    let n = !now () in
    let seg = n -. fr.seg_start in
    if seg <> 0. then begin
      let key = (fr.fname, fr.cur_label) in
      Hashtbl.replace costs key (seg +. Option.value ~default:0. (Hashtbl.find_opt costs key))
    end;
    fr.seg_start <- n
  in
  let hooks = Interp.null_hooks () in
  hooks.Interp.on_enter_func <-
    (fun f ->
      stack := { fname = f.Ir.fname; cur_label = f.Ir.entry; seg_start = !now () } :: !stack);
  hooks.Interp.on_exit_func <-
    (fun _ ->
      match !stack with
      | [] -> ()
      | fr :: rest ->
          flush fr;
          stack := rest);
  hooks.Interp.on_block <-
    (fun f l ->
      match !stack with
      | fr :: _ when fr.fname = f.Ir.fname ->
          flush fr;
          fr.cur_label <- l
      | _ -> ());
  hooks.Interp.on_base_cost <- (fun c -> cum := !cum +. c);
  hooks.Interp.on_builtin <- (fun _ c -> cum := !cum +. c);
  let total =
    match prepared with
    | Some p ->
        let ex = Precompile.executor ~hooks ~machine p in
        now := (fun () -> Precompile.total_cost ex);
        Precompile.run_main_coarse ex
    | None -> Interp.run_main (Interp.create ~hooks ~machine prog)
  in
  List.iter flush !stack;
  (costs, total)

(** Profile the program and rank its loops by inclusive cost. *)
let analyze ?machine ?prepared (prog : Ir.program) : t =
  let costs, total = record ?machine ?prepared prog in
  let reports = ref [] in
  List.iter
    (fun fname ->
      let func = Hashtbl.find prog.Ir.funcs fname in
      let cfg = A.Cfg.of_func func in
      let dom = A.Dominance.compute cfg in
      let loops = A.Loops.compute cfg dom in
      List.iter
        (fun (l : A.Loops.loop) ->
          let cost =
            Commset_support.Listx.sum_float
              (fun label -> Option.value ~default:0. (Hashtbl.find_opt costs (fname, label)))
              l.A.Loops.body
          in
          reports :=
            {
              lr_func = fname;
              lr_header = l.A.Loops.header;
              lr_cost = cost;
              lr_fraction = (if total > 0. then cost /. total else 0.);
              lr_depth = l.A.Loops.depth;
            }
            :: !reports)
        loops.A.Loops.loops)
    prog.Ir.func_order;
  let reports =
    List.sort (fun a b -> compare b.lr_cost a.lr_cost) !reports
  in
  { reports; total }

(** The hottest outermost loop — the parallelization target. *)
let hottest t =
  List.find_opt (fun r -> r.lr_depth = 1) t.reports
