(** Structured difference residue of two member interleavings: one
    {!atom} per conflicting abstract location, describing exactly how
    the two orders [A;B] and [B;A] relate there. The residue is the
    obstruction to commutativity; the synthesizer picks predicates that
    make it vanish and the verifier folds it into verdicts. *)

module S = Commset_analysis.Symexec
module Effects = Commset_analysis.Effects

type divergence = { dloc : Effects.location; dv1 : S.sval; dv2 : S.sval }

type status =
  | Agree  (** provably equal final state *)
  | Benign  (** equal modulo observation equivalence (renaming/exchange) *)
  | Opaque  (** cannot be decided *)
  | Diverge of divergence  (** final stores provably differ *)

type atom = { rloc : Effects.location option; rstatus : status; rdetail : string }
type t = atom list

val rank : status -> int
val status_label : status -> string
val atom : ?loc:Effects.location -> status -> string -> atom

(** Worst status present; [Agree] when empty. *)
val worst : t -> status

(** Every atom is [Agree] or [Benign] — a sound annotation may claim it. *)
val clean : t -> bool

(** Every atom is [Agree] — exact store equality. *)
val exact : t -> bool

val divergence : t -> divergence option

(** One-line summary led by the most severe atom. *)
val describe : t -> string
