(** em3d — electromagnetic wave propagation, graph construction phase
    (paper §5.4).

    The outer loop chases a linked list of graph nodes (which defeats
    DOALL), and the inner loop picks random neighbours through a common
    RNG library with routines for several data types, all updating one
    shared seed. Adding the four RNG routines to one Group commset plus
    their own SELF sets (linear, not quadratic, specification) lets
    PS-DSWP replicate the neighbour-selection stage. *)

let n_nodes = 220
let degree = 6

let source =
  Printf.sprintf
    {|
// em3d: bipartite graph construction
#pragma commset decl RSET group

#pragma commset member RSET, SELF
int rand_int(int bound) {
  return rng_int(bound);
}

#pragma commset member RSET, SELF
int rand_range(int lo, int hi) {
  return rng_range(lo, hi);
}

#pragma commset member RSET, SELF
float rand_float() {
  return rng_float();
}

#pragma commset member RSET, SELF
float rand_gauss() {
  return rng_gauss();
}

void main() {
  int nnodes = %d;
  int degree = %d;
  graph_build_nodes(nnodes);
  int node = graph_first();
  while (node >= 0) {
    int jitter = rand_int(7);
    float bias = rand_gauss() * 0.01;
    for (int j = 0; j < degree; j++) {
      // redraw until the field-strength weight passes the quality bar;
      // the retry loop ties each neighbour's numeric work to the RNG
      int to = 0;
      float w = 0.0;
      bool ok = false;
      while (!ok) {
        to = rand_range(0, nnodes);
        w = rand_float() + bias;
        for (int r = 0; r < 26; r++) {
          w = (w * 0.875) + fsqrt(fabs(w) + 0.125) * 0.25;
        }
        ok = w > 0.3;
        if (to == (node + jitter) %% nnodes) {
          ok = false;
        }
      }
      graph_set_neighbor(node, j, to);
      graph_set_weight(node, j, w);
    }
    node = graph_next(node);
  }
  print(graph_summary());
}
|}
    n_nodes degree

let workload : Workload.t =
  {
    Workload.wname = "em3d";
    paper_name = "em3d";
    description = "linked-list graph construction with a shared RNG library";
    source;
    variants = [];
    setup = (fun _ -> ());
    paper_best_scheme = "PS-DSWP + Lib";
    paper_best_speedup = 5.8;
    paper_annotations = 8;
    paper_sloc = 464;
    paper_loop_fraction = 0.97;
    paper_features = [ "I"; "S"; "G" ];
    paper_transforms = [ "DSWP"; "PS-DSWP" ];
  }
