(** Purity checking for COMMSET predicate functions (paper §4.2: "the
    COMMSETPREDICATE functions are tested for purity by inspection of
    [their] body"). A predicate is pure when it reads and writes no
    mutable state: no global accesses, no array element accesses, and no
    calls to builtins or functions with non-empty effect summaries. *)

module Ast = Commset_lang.Ast
open Commset_support

type verdict = Pure | Impure of string

let rec expr_verdict (lookup : Effects.lookup) (effects : Effects.t option) (e : Ast.expr) :
    verdict =
  match e.Ast.edesc with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.String_lit _ | Ast.Var _ -> Pure
  | Ast.Unop (_, a) -> expr_verdict lookup effects a
  | Ast.Binop (_, a, b) -> (
      match expr_verdict lookup effects a with
      | Pure -> expr_verdict lookup effects b
      | imp -> imp)
  | Ast.Index _ -> Impure "reads an array element"
  | Ast.Call (callee, args) -> (
      let arg_verdict =
        List.fold_left
          (fun acc a -> match acc with Pure -> expr_verdict lookup effects a | imp -> imp)
          Pure args
      in
      match arg_verdict with
      | Impure _ as imp -> imp
      | Pure -> (
          match lookup callee with
          | Some spec ->
              if
                spec.Effects.bs_reads = [] && spec.Effects.bs_writes = []
                && spec.Effects.bs_reads_arrays = []
                && spec.Effects.bs_writes_arrays = []
                && not spec.Effects.bs_allocates
              then Pure
              else Impure (Printf.sprintf "calls effectful builtin '%s'" callee)
          | None -> (
              match effects with
              | Some eff -> (
                  match Effects.summary eff callee with
                  | Some sm
                    when Effects.LocSet.is_empty sm.Effects.sm_rw.Effects.reads
                         && Effects.LocSet.is_empty sm.Effects.sm_rw.Effects.writes ->
                      Pure
                  | Some _ -> Impure (Printf.sprintf "calls effectful function '%s'" callee)
                  | None -> Impure (Printf.sprintf "calls unknown function '%s'" callee))
              | None -> Impure (Printf.sprintf "calls function '%s'" callee))))

let check_predicate ?effects ~lookup ~set_name (body : Ast.expr) =
  match expr_verdict lookup effects body with
  | Pure -> ()
  | Impure reason ->
      Diag.error ~loc:body.Ast.eloc ~code:"CS004"
        "predicate of commset '%s' is not pure: %s" set_name reason
