lib/support/listx.mli:
