(** Packet-switching example (the NetBench url workload): sweeps thread
    counts 1..8 and renders the speedup curves — the shape of paper
    Figure 6h — showing DOALL scaling with automatically-inserted locks on
    the packet pool while the thread-safe logging library needs none. *)

module P = Commset_pipeline.Pipeline
module W = Commset_workloads.Workload
module T = Commset_transforms
module Report = Commset_report

let () =
  let w = Option.get (Commset_workloads.Registry.find "url") in
  let c = P.compile ~name:"url" ~setup:w.W.setup w.W.source in
  Printf.printf "url: %d packets through the switch, %d annotations\n"
    (Commset_runtime.Trace.n_iterations c.P.trace)
    (P.count_annotations w.W.source);

  (* which members got compiler locks? (the paper: the pool dequeue is
     locked automatically; the thread-safe log needs no synchronization) *)
  let pdg = c.P.target.P.pdg in
  Array.iter
    (fun n ->
      let locks = T.Sync.locks_of c.P.sync n.Commset_pdg.Pdg.nid in
      if locks <> [] then
        Printf.printf "  lock(s) inserted for %s: %s\n"
          (Commset_pdg.Pdg.node_name pdg n)
          (String.concat ", " locks))
    pdg.Commset_pdg.Pdg.nodes;

  print_newline ();
  let sweep = P.sweep c ~max_threads:8 in
  (* best COMMSET series plus the best baseline *)
  let interesting =
    List.filter
      (fun (name, pts) ->
        let at8 = Option.value ~default:0. (List.assoc_opt 8 pts) in
        at8 > 1.2 || name = "DSWP + Lib")
      sweep
  in
  print_endline (Report.Ascii.chart ~max_threads:8 interesting)
