lib/report/evaluation.ml: Array Ascii Buffer Commset_pdg Commset_pipeline Commset_runtime Commset_support Commset_transforms Commset_workloads Diag Fmt List Listx Option Pool Printf String
