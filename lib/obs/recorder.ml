(** Flight recorder; see the interface for the contract.

    Layout notes. A buffer is five parallel arrays (two unboxed float
    arrays for the clock readings, two string arrays sharing the caller's
    name/cat pointers, one int array for depth) plus scalar cursors.
    Recording a span writes one slot of each — no record allocation, no
    shared-heap traffic beyond publishing the strings that the caller
    already holds. The buffer itself is created lazily per domain via
    [Domain.DLS], so a disabled recorder allocates nothing at all. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let default_capacity = 32768

(* Read at every buffer creation (not module load) so a test can point
   [COMMSET_TRACE_BUF] at a tiny value, spawn fresh domains and exercise
   shedding; existing buffers keep the capacity they were born with. *)
let capacity () =
  match Sys.getenv_opt "COMMSET_TRACE_BUF" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 16 -> n
      | _ -> default_capacity)
  | None -> default_capacity

type buf = {
  slot : int;
  cap : int;
  mutable n : int;  (** spans recorded; [n] is bumped after the slot is written *)
  mutable seq : int;  (** ids handed out, including dropped spans *)
  mutable depth : int;
  t0s : float array;
  t1s : float array;
  names : string array;
  cats : string array;
  depths : int array;
  mutable dropped : int;
}

let registry_lock = Mutex.create ()
let registry : buf list ref = ref []
let next_slot = Atomic.make 0

let make_buf () =
  let cap = capacity () in
  let b =
    {
      slot = Atomic.fetch_and_add next_slot 1;
      cap;
      n = 0;
      seq = 0;
      depth = 0;
      t0s = Array.make cap 0.;
      t1s = Array.make cap 0.;
      names = Array.make cap "";
      cats = Array.make cap "";
      depths = Array.make cap 0;
      dropped = 0;
    }
  in
  Mutex.lock registry_lock;
  registry := b :: !registry;
  Mutex.unlock registry_lock;
  b

let key : buf Domain.DLS.key = Domain.DLS.new_key make_buf

let record b cat name depth t0 t1 =
  let i = b.n in
  b.seq <- b.seq + 1;
  if i < b.cap then begin
    b.t0s.(i) <- t0;
    b.t1s.(i) <- t1;
    b.names.(i) <- name;
    b.cats.(i) <- cat;
    b.depths.(i) <- depth;
    b.n <- i + 1
  end
  else b.dropped <- b.dropped + 1

let with_span ?(cat = "") name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let b = Domain.DLS.get key in
    let depth = b.depth in
    b.depth <- depth + 1;
    let t0 = Clock.now_ns () in
    match f () with
    | v ->
        record b cat name depth t0 (Clock.now_ns ());
        b.depth <- depth;
        v
    | exception e ->
        record b cat name depth t0 (Clock.now_ns ());
        b.depth <- depth;
        raise e
  end

type span = {
  sid : int;
  dom : int;
  depth : int;
  name : string;
  cat : string;
  t0_ns : float;
  t1_ns : float;
}

let buffers () =
  Mutex.lock registry_lock;
  let bs = !registry in
  Mutex.unlock registry_lock;
  List.sort (fun a b -> compare a.slot b.slot) bs

let dump () : span list =
  List.concat_map
    (fun b ->
      let n = b.n in
      List.init n (fun i ->
          {
            sid = (b.slot lsl 40) lor i;
            dom = b.slot;
            depth = b.depths.(i);
            name = b.names.(i);
            cat = b.cats.(i);
            t0_ns = b.t0s.(i);
            t1_ns = b.t1s.(i);
          }))
    (buffers ())

let dropped_total () = List.fold_left (fun acc b -> acc + b.dropped) 0 (buffers ())
let n_domains () = Atomic.get next_slot

let reset () =
  List.iter
    (fun b ->
      b.n <- 0;
      b.seq <- 0;
      b.dropped <- 0)
    (buffers ())
