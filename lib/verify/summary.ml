(** Per-member effect summaries with *operation classes*.

    The raw {!Effects} footprint says which abstract locations a member
    touches; to difference two interleavings we also need to know *how*
    each write combines with a concurrent write to the same location.
    Every write is classified:

    - [Accum]: commutative-associative accumulation (histogram add,
      statistics, bitmap OR, read-modify-write array updates) — any
      interleaving yields the same state;
    - [Multiset]: append to an order-insensitive sink (log, vector,
      output stream) — states are equal as multisets;
    - [Alloc]: allocator bump (fd table, heap ids) — states are equal up
      to handle renaming;
    - [Cursor]: advance of a shared cursor (packet queue, db rows,
      stream position) — positions commute, drawn values are exchanged;
    - [Rng]: pseudo-random stream draw — values are exchanged;
    - [Advance]: a deterministic self-update [g = f(g)] of one global
      (e.g. a hand-rolled linear-congruential generator): two instances
      apply the same [f] so both orders leave [f(f(g))], only the
      per-instance results are exchanged;
    - [Overwrite]: last-writer-wins store — commutes only when both
      interleavings provably store the same final value;
    - [Opaque]: no algebraic structure known.

    Accesses also carry a *key* operand when the touched resource is
    partitioned by one of the builtin's arguments (a bitmap handle, a
    file descriptor, a cache key): instances operating on provably
    distinct keys touch disjoint state regardless of class. Calls to
    user-defined functions are summarized transitively — the callee's
    per-location classes are lifted to the call site, with key operands
    rebound through parameter positions — instead of being opaque. *)

module Ir = Commset_ir.Ir
module Effects = Commset_analysis.Effects
module Metadata = Commset_core.Metadata

type opclass =
  | Accum of string
  | Multiset of string
  | Alloc of string
  | Cursor of string
  | Rng
  | Advance of string
  | Overwrite
  | Opaque of string

let opclass_to_string = function
  | Accum s -> Printf.sprintf "accumulate(%s)" s
  | Multiset s -> Printf.sprintf "append(%s)" s
  | Alloc s -> Printf.sprintf "alloc(%s)" s
  | Cursor s -> Printf.sprintf "cursor(%s)" s
  | Rng -> "rng-draw"
  | Advance s -> Printf.sprintf "advance(%s)" s
  | Overwrite -> "overwrite"
  | Opaque s -> Printf.sprintf "opaque(%s)" s

(* How each builtin's writes combine with a concurrent instance of the
   same (or another) builtin hitting the same resource. *)
let builtin_class name =
  match name with
  | "hist_add" -> Accum "histogram"
  | "stat_add" | "stat_note_max" -> Accum "statistics"
  | "bm_set" -> Accum "bitmap-or"
  | "list_insert" -> Multiset "list"
  | "vec_push" -> Multiset "vector"
  | "log_write" -> Multiset "log"
  | "print" -> Multiset "stdout"
  | "fwrite" -> Multiset "stream"
  | "fopen" | "fclose" -> Alloc "fd"
  | "bm_new" | "bm_free" | "list_new" | "list_free" | "matrix_alloc"
  | "matrix_free" ->
      Alloc "heap"
  | "pkt_dequeue" -> Cursor "packet-queue"
  | "db_read" -> Cursor "db"
  | "fread" -> Cursor "stream"
  | "rng_int" | "rng_range" | "rng_float" | "rng_gauss" -> Rng
  | "rng_reseed" | "cache_put" -> Overwrite
  | other -> Opaque other

(* Builtins whose named resources are partitioned by one argument: the
   resource behaves as an array of independent sub-resources indexed by
   that argument's value (a handle or a key). Instances touching
   provably distinct keys touch disjoint state. *)
let builtin_key name : (string list * int) option =
  match name with
  | "bm_set" | "bm_get" -> Some ([ "bm.data" ], 0)
  | "fread" | "fsize" | "feof" -> Some ([ "io.stream.in" ], 0)
  | "fwrite" -> Some ([ "io.stream.out" ], 0)
  | "cache_put" | "cache_get" -> Some ([ "registry" ], 0)
  | "list_insert" | "list_contains" | "list_size" | "list_sum" ->
      Some ([ "lst" ], 0)
  | _ -> None

(** One abstract-store access of a member. *)
type access = {
  aloc : Effects.location;
  awrite : bool;
  aclass : opclass;
  avalue : Ir.operand option;
      (** the stored operand, when the write is a [Store_global] whose
          value the differencing engine can reason about symbolically *)
  akey : Ir.operand option;
      (** the sub-resource key, in the summarized function's own frame *)
}

let read_access ?key l = { aloc = l; awrite = false; aclass = Opaque "read"; avalue = None; akey = key }

(* keyed resources of a builtin call: key operand per touched location *)
let key_for_builtin callee (args : Ir.operand list) (l : Effects.location) =
  match builtin_key callee with
  | Some (resources, idx) -> (
      match l with
      | Effects.Lext r when List.mem r resources -> List.nth_opt args idx
      | _ -> None)
  | None -> None

(* ---- transitive summarization of user-function calls ---------------- *)

(* The per-location (class, key) map of a callee, in the callee's own
   frame, joined over all of its instructions. Recursion through user
   callees is cycle-guarded by [visited]; a function in its own call
   chain contributes opaque accesses. *)

let join_class a b = if a = b then a else Opaque "mixed operation classes"

(* Lift a callee-frame key operand to the caller: parameters rebind to
   the call-site actual, constants survive, anything else is lost. *)
let lift_key (callee_f : Ir.func) (args : Ir.operand list) = function
  | Some (Ir.Const _ as k) -> Some k
  | Some (Ir.Reg r) -> (
      match List.find_index (fun pr -> pr = r) callee_f.Ir.param_regs with
      | Some i -> List.nth_opt args i
      | None -> None)
  | None -> None

let rec accesses_of_instr md ~fname ~visited (i : Ir.instr) : access list =
  let effects = md.Metadata.effects in
  let rw = Effects.instr_rw effects ~fname i in
  match i.Ir.desc with
  | Ir.Call { callee; args; _ } -> (
      match Commset_runtime.Builtins.find callee with
      | Some _ ->
          let wclass = builtin_class callee in
          let mk awrite l =
            {
              aloc = l;
              awrite;
              aclass = (if awrite then wclass else Opaque "read");
              avalue = None;
              akey = key_for_builtin callee args l;
            }
          in
          Effects.LocSet.fold
            (fun l acc -> mk true l :: acc)
            rw.Effects.writes
            (Effects.LocSet.fold (fun l acc -> mk false l :: acc) rw.Effects.reads [])
      | None -> accesses_of_user_call md ~fname ~visited ~callee ~args rw)
  | _ ->
      let wclass, wvalue =
        match i.Ir.desc with
        | Ir.Store_global (_, v) -> (Overwrite, Some v)
        | Ir.Store_index _ -> (Opaque "array element write", None)
        | _ -> (Opaque "write", None)
      in
      Effects.LocSet.fold
        (fun l acc ->
          { aloc = l; awrite = true; aclass = wclass; avalue = wvalue; akey = None }
          :: acc)
        rw.Effects.writes
        (Effects.LocSet.fold
           (fun l acc -> read_access l :: acc)
           rw.Effects.reads [])

(* A user call: the caller-frame footprint comes from {!Effects}
   (instantiated correctly there); the classes and keys come from the
   callee's own accesses, matched per location and lifted through the
   parameter binding. *)
and accesses_of_user_call md ~fname:_ ~visited ~callee ~args (rw : Effects.rw) :
    access list =
  let prog = md.Metadata.prog in
  let opaque_all () =
    let cls = Opaque (Printf.sprintf "call to '%s'" callee) in
    Effects.LocSet.fold
      (fun l acc ->
        { aloc = l; awrite = true; aclass = cls; avalue = None; akey = None } :: acc)
      rw.Effects.writes
      (Effects.LocSet.fold (fun l acc -> read_access l :: acc) rw.Effects.reads [])
  in
  match Ir.find_func prog callee with
  | None -> opaque_all ()
  | Some _ when List.mem callee visited -> opaque_all ()
  | Some cf ->
      let callee_accs =
        let acc = ref [] in
        Ir.iter_instrs cf (fun _ ci ->
            acc :=
              accesses_of_instr md ~fname:callee ~visited:(callee :: visited) ci
              :: !acc);
        List.concat (List.rev !acc)
      in
      (* class and key of the callee accesses matching a caller-frame
         location: precise for globals, named resources and
         global-rooted heap; joined over all param/local heap accesses
         otherwise (the instantiation may merge them) *)
      let summarize ~awrite (l : Effects.location) =
        let matches (a : access) =
          a.awrite = awrite
          &&
          match (l, a.aloc) with
          | Effects.Lglobal g, Effects.Lglobal g' -> g = g'
          | Effects.Lext e, Effects.Lext e' -> e = e'
          | Effects.Lheap (Effects.Sglobal g), Effects.Lheap (Effects.Sglobal g') ->
              g = g'
          | Effects.Lheap _, Effects.Lheap (Effects.Sglobal _) -> false
          | Effects.Lheap _, Effects.Lheap _ -> true
          | _ -> false
        in
        match List.filter matches callee_accs with
        | [] ->
            if awrite then (Opaque (Printf.sprintf "call to '%s'" callee), None)
            else (Opaque "read", None)
        | a0 :: rest ->
            let cls =
              List.fold_left (fun acc a -> join_class acc a.aclass) a0.aclass rest
            in
            let key =
              (* a single consistent callee-frame key, or nothing *)
              if List.for_all (fun a -> a.akey = a0.akey) rest then
                lift_key cf args a0.akey
              else None
            in
            ((if awrite then cls else Opaque "read"), key)
      in
      Effects.LocSet.fold
        (fun l acc ->
          let aclass, akey = summarize ~awrite:true l in
          { aloc = l; awrite = true; aclass; avalue = None; akey } :: acc)
        rw.Effects.writes
        (Effects.LocSet.fold
           (fun l acc ->
             let _, akey = summarize ~awrite:false l in
             read_access ?key:akey l :: acc)
           rw.Effects.reads [])

(** Summary of one commset member: its identity, owning function, the
    classified accesses of its body, and the raw footprint. *)
type t = {
  smember : Metadata.member;
  sowner : string;
  sacc : access list;
  srw : Effects.rw;
}

let instrs_of_member md (m : Metadata.member) : string * Ir.instr list =
  let prog = md.Metadata.prog in
  match m with
  | Metadata.Mregion (fname, rid) -> (
      match Ir.find_func prog fname with
      | None -> (fname, [])
      | Some f -> (fname, Metadata.region_instrs f rid))
  | Metadata.Mfun fname -> (
      match Ir.find_func prog fname with
      | None -> (fname, [])
      | Some f ->
          let acc = ref [] in
          Ir.iter_instrs f (fun _ i -> acc := i :: !acc);
          (fname, List.rev !acc))
  | Metadata.Mnamed (fname, bname) -> (
      match (Ir.find_func prog fname, Metadata.named_region md fname bname) with
      | Some f, Some r -> (fname, Metadata.region_instrs f r.Ir.rid)
      | _ -> (fname, []))

(* ---- structural recognition of algebraic write patterns ------------- *)

(* unique in-function definitions: reg -> instr when defined exactly once *)
let unique_defs (f : Ir.func) =
  let count = Hashtbl.create 64 and def = Hashtbl.create 64 in
  Ir.iter_instrs f (fun _ i ->
      List.iter
        (fun r ->
          Hashtbl.replace count r (1 + Option.value ~default:0 (Hashtbl.find_opt count r));
          Hashtbl.replace def r i)
        (Ir.instr_defs i));
  fun r ->
    match Hashtbl.find_opt count r with
    | Some 1 -> Hashtbl.find_opt def r
    | _ -> None

(* the root of an array operand: the global it was loaded from, or the
   register itself when it is not a (unique) global load *)
let array_root udef (op : Ir.operand) =
  match op with
  | Ir.Reg r -> (
      match udef r with
      | Some { Ir.desc = Ir.Load_global (_, g); _ } -> `Global g
      | _ -> `Reg r)
  | Ir.Const _ -> `Const

(* structural equality of value chains, following unique defs to a small
   depth: used to match the load and store addresses of an RMW *)
let rec chain_equal udef depth (a : Ir.operand) (b : Ir.operand) =
  depth > 0
  &&
  match (a, b) with
  | Ir.Const ca, Ir.Const cb -> ca = cb
  | Ir.Reg ra, Ir.Reg rb -> (
      ra = rb
      ||
      match (udef ra, udef rb) with
      | Some ia, Some ib -> (
          match (ia.Ir.desc, ib.Ir.desc) with
          | Ir.Binop (opa, tya, _, xa, ya), Ir.Binop (opb, tyb, _, xb, yb) ->
              opa = opb && tya = tyb
              && chain_equal udef (depth - 1) xa xb
              && chain_equal udef (depth - 1) ya yb
          | Ir.Unop (opa, tya, _, xa), Ir.Unop (opb, tyb, _, xb) ->
              opa = opb && tya = tyb && chain_equal udef (depth - 1) xa xb
          | Ir.Move (_, xa), Ir.Move (_, xb) -> chain_equal udef (depth - 1) xa xb
          | Ir.Load_global (_, ga), Ir.Load_global (_, gb) -> ga = gb
          | _ -> false)
      | _ -> false)
  | _ -> false

(* Does the chain of [op] (through unique defs) read any memory beyond
   the allowed set? [allow_global] admits loads of that one global (the
   self-update pattern); everything else — other global loads,
   array loads, calls — fails closed. *)
let rec chain_reads_only udef ?allow_global depth (op : Ir.operand) =
  depth > 0
  &&
  match op with
  | Ir.Const _ -> true
  | Ir.Reg r -> (
      match udef r with
      | None -> false (* multiply-defined or externally-defined: give up *)
      | Some i -> (
          match i.Ir.desc with
          | Ir.Binop (_, _, _, a, b) ->
              chain_reads_only udef ?allow_global (depth - 1) a
              && chain_reads_only udef ?allow_global (depth - 1) b
          | Ir.Unop (_, _, _, a) | Ir.Move (_, a) ->
              chain_reads_only udef ?allow_global (depth - 1) a
          | Ir.Load_global (_, g) -> allow_global = Some g
          | Ir.Load_index _ | Ir.Store_global _ | Ir.Store_index _ | Ir.Call _ ->
              false))

(* like [chain_reads_only] but for an RMW addend: loads are fine as long
   as they cannot alias anything the member writes *)
let rec chain_avoids_writes udef ~member_writes depth (op : Ir.operand) =
  depth > 0
  &&
  match op with
  | Ir.Const _ -> true
  | Ir.Reg r -> (
      match udef r with
      | None -> true (* defined outside the member pattern: an input value *)
      | Some i -> (
          match i.Ir.desc with
          | Ir.Binop (_, _, _, a, b) ->
              chain_avoids_writes udef ~member_writes (depth - 1) a
              && chain_avoids_writes udef ~member_writes (depth - 1) b
          | Ir.Unop (_, _, _, a) | Ir.Move (_, a) ->
              chain_avoids_writes udef ~member_writes (depth - 1) a
          | Ir.Load_global (_, g) ->
              not
                (Effects.LocSet.exists
                   (Effects.locs_conflict (Effects.Lglobal g))
                   member_writes)
          | Ir.Load_index (_, arr, _) -> (
              match array_root udef arr with
              | `Global g ->
                  not
                    (Effects.LocSet.exists
                       (Effects.locs_conflict (Effects.Lheap (Effects.Sglobal g)))
                       member_writes)
              | _ -> false)
          | Ir.Store_global _ | Ir.Store_index _ | Ir.Call _ -> false))

let chain_depth = 8

(* [a[e] op= v] recognition: the stored value is [load(a,e) op v] (or
   [v op load(a,e)] for commutative ops) where the load hits the same
   array and structurally the same index, and [v]'s chain reads nothing
   the member writes. Returns the operator symbol on success. *)
let rmw_of_store udef ~member_writes ~arr ~idx ~value =
  match value with
  | Ir.Const _ -> None
  | Ir.Reg vr -> (
      match udef vr with
      | Some { Ir.desc = Ir.Binop (op, _, _, a, b); _ }
        when op = Commset_lang.Ast.Add || op = Commset_lang.Ast.Sub
             || op = Commset_lang.Ast.Mul -> (
          let is_matching_load o =
            match o with
            | Ir.Reg lr -> (
                match udef lr with
                | Some { Ir.desc = Ir.Load_index (_, arr', idx'); _ } ->
                    array_root udef arr = array_root udef arr'
                    && chain_equal udef chain_depth idx idx'
                | _ -> false)
            | Ir.Const _ -> false
          in
          let commutes = op = Commset_lang.Ast.Add || op = Commset_lang.Ast.Mul in
          let pick =
            if is_matching_load a then Some b
            else if commutes && is_matching_load b then Some a
            else None
          in
          match pick with
          | Some addend
            when chain_avoids_writes udef ~member_writes chain_depth addend ->
              Some (Commset_lang.Ast.binop_to_string op)
          | _ -> None)
      | _ -> None)

(* Post-pass over a member's accesses: recognize read-modify-write array
   accumulation ([a[e] = a[e] + v]) and deterministic global
   self-updates ([g = f(g)], a state-machine advance) and upgrade the
   corresponding write classes. *)
let refine_structural md ~fname (instrs : Ir.instr list) (accs : access list) :
    access list =
  match Ir.find_func md.Metadata.prog fname with
  | None -> accs
  | Some f ->
      let udef = unique_defs f in
      let in_member i = List.exists (fun i' -> i'.Ir.iid = i.Ir.iid) instrs in
      let member_writes =
        List.fold_left
          (fun s (a : access) -> if a.awrite then Effects.LocSet.add a.aloc s else s)
          Effects.LocSet.empty accs
      in
      (* globals written only by qualifying self-update stores *)
      let advance_ok g =
        List.for_all
          (fun i ->
            if not (in_member i) then true
            else
              match i.Ir.desc with
              | Ir.Store_global (g', v) when g' = g ->
                  chain_reads_only udef ~allow_global:g chain_depth v
              | _ -> true)
          instrs
        && List.exists
             (fun i ->
               match i.Ir.desc with
               | Ir.Store_global (g', _) when g' = g -> in_member i
               | _ -> false)
             instrs
      in
      let advance_cache = Hashtbl.create 4 in
      let is_advance g =
        match Hashtbl.find_opt advance_cache g with
        | Some b -> b
        | None ->
            let b = advance_ok g in
            Hashtbl.add advance_cache g b;
            b
      in
      (* per-array-root RMW operator, when every member store to the root
         is a matching read-modify-write with one consistent operator *)
      let rmw_cache = Hashtbl.create 4 in
      let rmw_for root =
        match Hashtbl.find_opt rmw_cache root with
        | Some r -> r
        | None ->
            let ops =
              List.filter_map
                (fun i ->
                  match i.Ir.desc with
                  | Ir.Store_index (arr, idx, value)
                    when array_root udef arr = root ->
                      Some (rmw_of_store udef ~member_writes ~arr ~idx ~value)
                  | _ -> None)
                instrs
            in
            let r =
              match ops with
              | [] -> None
              | o :: rest ->
                  if List.for_all (fun o' -> o' = o) rest then o else None
            in
            Hashtbl.add rmw_cache root r;
            r
      in
      (* rebuild the accesses attributable to each instruction kind *)
      List.concat_map
        (fun (i : Ir.instr) ->
          let base = accesses_of_instr md ~fname ~visited:[] i in
          match i.Ir.desc with
          | Ir.Store_global (g, _) when is_advance g ->
              List.map
                (fun a ->
                  if a.awrite && a.aloc = Effects.Lglobal g then
                    {
                      a with
                      aclass = Advance (Printf.sprintf "%s@%s" g fname);
                      avalue = None;
                    }
                  else a)
                base
          | Ir.Store_index (arr, _, _) -> (
              let root = array_root udef arr in
              match rmw_for root with
              | Some op ->
                  let tag =
                    match root with
                    | `Global g -> Printf.sprintf "rmw(%s):%s" op g
                    | `Reg r -> Printf.sprintf "rmw(%s):r%d" op r
                    | `Const -> Printf.sprintf "rmw(%s)" op
                  in
                  List.map
                    (fun a ->
                      if a.awrite then { a with aclass = Accum tag } else a)
                    base
              | None -> base)
          | _ -> base)
        instrs

let of_member md (m : Metadata.member) : t =
  let effects = md.Metadata.effects in
  let fname, instrs = instrs_of_member md m in
  let raw = List.concat_map (accesses_of_instr md ~fname ~visited:[]) instrs in
  let sacc = refine_structural md ~fname instrs raw in
  let srw = Effects.instrs_rw effects ~fname instrs in
  { smember = m; sowner = fname; sacc; srw }

(** Does the member's summary mention [Lunknown] or an unprovenanced heap
    write, i.e. state the engines cannot attribute precisely? *)
let has_unanalyzable s =
  List.exists
    (fun a ->
      match a.aloc with
      | Effects.Lunknown -> true
      | Effects.Lheap (Effects.Sunknown) -> a.awrite
      | _ -> false)
    s.sacc
