lib/support/digraph.mli:
