(** Source locations for miniC programs.

    A location is a half-open span within a named source buffer. Lines
    and columns are 1-based; [offset] is a 0-based byte offset. *)

type position = {
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
  offset : int;  (** 0-based byte offset in the buffer *)
}

type t = { file : string; start_pos : position; end_pos : position }

val dummy_position : position

(** The location used when no source position is known. *)
val dummy : t

val is_dummy : t -> bool
val make : file:string -> start_pos:position -> end_pos:position -> t
val position : line:int -> col:int -> offset:int -> position

(** [merge a b] spans from the start of [a] to the end of [b]; merging
    with a dummy location returns the other location. *)
val merge : t -> t -> t

val line : t -> int
val column : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
