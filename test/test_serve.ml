(** Tests for the serve subsystem: the LRU + single-flight plan cache
    (concurrent dedup, eviction under tiny capacity, content-hash
    keying, failure retry), the deterministic open-loop generator
    (schedule determinism, rate algebra, mix proportions), the
    length-prefixed framing (roundtrip, incremental decoding, oversize
    rejection), the long-idle backoff tier (escalation schedule and
    bounded wakeup latency), the warm worker pool, and the daemon core
    end to end — selftest runs with per-request Equiv checks and the
    Unix-socket request path. *)

module P = Commset_pipeline.Pipeline
module Plancache = Commset_serve.Plancache
module Gen = Commset_serve.Gen
module Proto = Commset_serve.Proto
module Server = Commset_serve.Server
module Spin = Commset_exec.Spin
module Workers = Commset_exec.Workers
module Costmodel = Commset_runtime.Costmodel
module Clock = Commset_obs.Clock
module Json = Commset_obs.Json_strict

let check = Alcotest.check

(* a deliberately cheap annotated program so daemon tests measure the
   serve machinery, not workload compile time *)
let tiny_src =
  {|
#pragma commset decl LOG group

#pragma commset member LOG, SELF
void log_item(int x) {
  print(int_to_string(x));
}

void main() {
  for (int i = 0; i < 12; i++) {
    log_item(i * 3);
  }
}
|}

(* same shape, different constant: a distinct content key *)
let tiny2_src =
  {|
#pragma commset decl LOG group

#pragma commset member LOG, SELF
void log_item(int x) {
  print(int_to_string(x));
}

void main() {
  for (int i = 0; i < 10; i++) {
    log_item(i * 5);
  }
}
|}

(* ---- plan cache ---- *)

let test_cache_hit_miss () =
  let c = Plancache.create ~capacity:4 in
  let v, hit = Plancache.find_or_compile c ~key:"a" ~compile:(fun () -> 1) in
  check Alcotest.int "computed" 1 v;
  check Alcotest.bool "first is a miss" false hit;
  let v, hit = Plancache.find_or_compile c ~key:"a" ~compile:(fun () -> 2) in
  check Alcotest.int "cached value, not recomputed" 1 v;
  check Alcotest.bool "second is a hit" true hit;
  check Alcotest.bool "mem sees it" true (Plancache.mem c "a");
  let s = Plancache.stats c in
  check Alcotest.int "hits" 1 s.Plancache.pc_hits;
  check Alcotest.int "misses" 1 s.Plancache.pc_misses;
  check Alcotest.int "entries" 1 s.Plancache.pc_entries

let test_cache_lru_eviction () =
  let c = Plancache.create ~capacity:2 in
  let get k = fst (Plancache.find_or_compile c ~key:k ~compile:(fun () -> k)) in
  ignore (get "k1");
  ignore (get "k2");
  ignore (get "k1");
  (* k2 is now least recently used *)
  ignore (get "k3");
  check Alcotest.bool "recently-touched k1 kept" true (Plancache.mem c "k1");
  check Alcotest.bool "LRU k2 evicted" false (Plancache.mem c "k2");
  check Alcotest.bool "new k3 resident" true (Plancache.mem c "k3");
  let s = Plancache.stats c in
  check Alcotest.int "one eviction" 1 s.Plancache.pc_evictions;
  check Alcotest.int "entries at capacity" 2 s.Plancache.pc_entries;
  (* an evicted key recompiles *)
  ignore (get "k2");
  check Alcotest.int "eviction forced a recompile" 4 (Plancache.stats c).Plancache.pc_misses

let test_cache_single_flight () =
  let c = Plancache.create ~capacity:4 in
  let compiles = Atomic.make 0 in
  let compile () =
    Atomic.incr compiles;
    Unix.sleepf 0.03;
    42
  in
  let worker () = Plancache.find_or_compile c ~key:"shared" ~compile in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  let v1, _ = Domain.join d1 and v2, _ = Domain.join d2 in
  check Alcotest.int "both callers got the value" 42 v1;
  check Alcotest.int "both callers got the value" 42 v2;
  check Alcotest.int "exactly one compile ran" 1 (Atomic.get compiles);
  let s = Plancache.stats c in
  check Alcotest.int "one miss (the flight owner)" 1 s.Plancache.pc_misses;
  check Alcotest.int "one hit (the waiter)" 1 s.Plancache.pc_hits;
  check Alcotest.bool "the waiter blocked on the flight" true (s.Plancache.pc_waits >= 1)

let test_cache_failure_not_cached () =
  let c = Plancache.create ~capacity:4 in
  let attempts = ref 0 in
  let failing () =
    incr attempts;
    failwith "bad source"
  in
  (match Plancache.find_or_compile c ~key:"k" ~compile:failing with
  | _ -> Alcotest.fail "failing compile returned"
  | exception Failure _ -> ());
  check Alcotest.bool "failure not cached" false (Plancache.mem c "k");
  let v, hit = Plancache.find_or_compile c ~key:"k" ~compile:(fun () -> 7) in
  check Alcotest.int "retry succeeded" 7 v;
  check Alcotest.bool "retry was a fresh compile" false hit;
  check Alcotest.int "both attempts ran" 1 !attempts;
  check Alcotest.int "failure counted" 1 (Plancache.stats c).Plancache.pc_failures

let test_content_key () =
  check Alcotest.bool "same source, same key" true
    (P.content_key tiny_src = P.content_key tiny_src);
  check Alcotest.bool "different source, different key" false
    (P.content_key tiny_src = P.content_key (tiny_src ^ " "))

(* ---- generator ---- *)

let spec ?(seed = 11) ?(rate = 500.) ?(burst = 3.) ?(mix = [ ("a", 1.) ]) () =
  { Gen.g_seed = seed; g_rate = rate; g_burst = burst; g_on_s = 0.05; g_off_s = 0.15; g_mix = mix }

let test_gen_deterministic () =
  let a = Gen.create (spec ()) and b = Gen.create (spec ()) in
  for i = 1 to 200 do
    let ta, wa = Gen.next a and tb, wb = Gen.next b in
    if ta <> tb || wa <> wb then
      Alcotest.failf "arrival %d diverged: (%f, %s) vs (%f, %s)" i ta wa tb wb
  done;
  let c = Gen.create (spec ~seed:12 ()) in
  let t1, _ = Gen.next a and t2, _ = Gen.next c in
  check Alcotest.bool "different seed, different schedule" true (t1 <> t2)

let test_gen_rate_and_monotone () =
  let g = Gen.create (spec ()) in
  let n = 2000 in
  let last = ref 0. in
  for _ = 1 to n do
    let t, _ = Gen.next g in
    if t < !last then Alcotest.failf "arrival time went backwards: %f < %f" t !last;
    last := t
  done;
  let realized = float_of_int n /. !last in
  if realized < 250. || realized > 1000. then
    Alcotest.failf "realized rate %.0f rps too far from nominal 500" realized

let test_gen_mix_proportions () =
  let g = Gen.create (spec ~mix:[ ("x", 1.); ("y", 3.) ] ()) in
  let y = ref 0 in
  let n = 4000 in
  for _ = 1 to n do
    if snd (Gen.next g) = "y" then incr y
  done;
  let frac = float_of_int !y /. float_of_int n in
  if frac < 0.70 || frac > 0.80 then
    Alcotest.failf "weight-3 workload drew %.3f of the stream, want ~0.75" frac

let test_gen_rate_algebra () =
  (* duty 0.25, burst 3 -> lambda_off = rate * (1 - 0.75) / 0.75 = rate / 3 *)
  let s = spec ~rate:600. () in
  check (Alcotest.float 1e-6) "off-phase intensity" 200. (Gen.off_rate s);
  (* burst 1 degenerates to plain Poisson: both phases at the mean *)
  check (Alcotest.float 1e-6) "burst=1 is Poisson" 600. (Gen.off_rate (spec ~rate:600. ~burst:1. ()));
  (* burst 4 at duty 0.25 concentrates everything in ON; OFF clamps to silent *)
  check (Alcotest.float 1e-6) "over-concentrated burst clamps" 0.
    (Gen.off_rate (spec ~rate:600. ~burst:5. ()))

let test_gen_validation () =
  let bad f = match Gen.create (f ()) with
    | _ -> Alcotest.fail "invalid spec accepted"
    | exception Invalid_argument _ -> ()
  in
  bad (fun () -> spec ~rate:0. ());
  bad (fun () -> spec ~burst:0.5 ());
  bad (fun () -> spec ~mix:[] ());
  bad (fun () -> spec ~mix:[ ("a", 0.) ] ())

(* ---- framing protocol ---- *)

let test_proto_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let payloads = [ "hello"; ""; String.make 70000 'x'; "{\"id\":1}" ] in
      List.iter (fun p -> Proto.send_frame a p) payloads;
      List.iter
        (fun expect ->
          match Proto.recv_frame b with
          | Some got -> check Alcotest.string "frame payload" expect got
          | None -> Alcotest.fail "unexpected EOF")
        payloads;
      Unix.close a;
      (match Proto.recv_frame b with
      | None -> ()
      | Some _ -> Alcotest.fail "expected clean EOF");
      (* recv_frame consumed the close; reopen for the truncation case *)
      ())

let test_proto_truncated () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> (try Unix.close a with _ -> ()); Unix.close b)
    (fun () ->
      (* a length prefix promising 100 bytes, then EOF after 3 *)
      let buf = Bytes.create 7 in
      Bytes.set_int32_be buf 0 100l;
      Bytes.blit_string "abc" 0 buf 4 3;
      ignore (Unix.write a buf 0 7);
      Unix.close a;
      match Proto.recv_frame b with
      | _ -> Alcotest.fail "truncated frame accepted"
      | exception Failure _ -> ())

let test_framer_incremental () =
  let framer = Proto.Framer.create () in
  let frame payload =
    let len = String.length payload in
    let b = Bytes.create (4 + len) in
    Bytes.set_int32_be b 0 (Int32.of_int len);
    Bytes.blit_string payload 0 b 4 len;
    b
  in
  let wire = Bytes.concat Bytes.empty [ frame "one"; frame ""; frame "three" ] in
  (* feed one byte at a time: every boundary is exercised *)
  let out = ref [] in
  Bytes.iter
    (fun ch ->
      let one = Bytes.make 1 ch in
      out := !out @ Proto.Framer.feed framer one 1)
    wire;
  check Alcotest.(list string) "frames reassembled" [ "one"; ""; "three" ] !out;
  (* oversized prefix rejected *)
  let evil = Bytes.create 4 in
  Bytes.set_int32_be evil 0 (Int32.of_int (Proto.max_frame + 1));
  match Proto.Framer.feed framer evil 4 with
  | _ -> Alcotest.fail "oversized frame length accepted"
  | exception Failure _ -> ()

let test_proto_request_json () =
  let r = { Proto.rq_id = 7; rq_workload = Some "url"; rq_source = None; rq_echo = true } in
  (match Proto.request_of_json (Proto.request_to_json r) with
  | Ok r' -> check Alcotest.bool "request roundtrips" true (r = r')
  | Error e -> Alcotest.fail e);
  (match Proto.request_of_json {|{"id":1}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "request without workload/source accepted");
  (match Proto.request_of_json {|{"id":1,"workload":"a","source":"b"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "request with both workload and source accepted");
  match Proto.request_of_json "{nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed JSON accepted"

let test_proto_response_json () =
  let r =
    {
      Proto.rs_id = 9;
      rs_error = None;
      rs_workload = "md5sum";
      rs_hit = true;
      rs_n_outputs = 3;
      rs_digest = "abc123";
      rs_outputs = Some [ "a"; "b \"quoted\""; "c" ];
      rs_queue_us = 12.5;
      rs_service_us = 100.0;
    }
  in
  let json = Proto.response_to_json r in
  (match Json.parse json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "response is not strict JSON: %s" e);
  match Proto.response_of_json json with
  | Ok r' -> check Alcotest.bool "response roundtrips" true (r = r')
  | Error e -> Alcotest.fail e

(* ---- long-idle backoff tier ---- *)

let with_idle_knobs ~after ~cap_ms f =
  let old_after = Costmodel.exec_idle_sleep_after () in
  let old_cap = Costmodel.exec_idle_sleep_cap_s () in
  Costmodel.set_exec_idle_sleep_after after;
  Costmodel.set_exec_idle_sleep_cap_ms cap_ms;
  Fun.protect
    ~finally:(fun () ->
      Costmodel.set_exec_idle_sleep_after old_after;
      Costmodel.set_exec_idle_sleep_cap_ms (old_cap *. 1e3))
    f

let test_spin_idle_escalation () =
  with_idle_knobs ~after:3 ~cap_ms:0.8 @@ fun () ->
  let base = Costmodel.exec_spin_sleep_s () in
  let b = Spin.backoff () in
  let spin_budget = Spin.spin_rounds () in
  (* burn the cpu_relax budget *)
  for _ = 1 to spin_budget do Spin.once b done;
  check (Alcotest.float 1e-9) "still at base quantum" base (Spin.current_sleep_s b);
  (* the first [after] sleeps all pay the base quantum; the next
     quantum only escalates once the [after]th has been slept *)
  Spin.once b;
  Spin.once b;
  check (Alcotest.float 1e-9) "responsive tier holds before `after` sleeps" base
    (Spin.current_sleep_s b);
  Spin.once b;
  check (Alcotest.float 1e-9) "first long-idle doubling" (base *. 2.)
    (Spin.current_sleep_s b);
  Spin.once b;
  check (Alcotest.float 1e-9) "second doubling" (base *. 4.) (Spin.current_sleep_s b);
  (* ...and clamps at the cap *)
  for _ = 1 to 8 do Spin.once b done;
  check (Alcotest.float 1e-9) "clamped at the cap" 0.0008 (Spin.current_sleep_s b);
  (* reset returns to the responsive tier *)
  Spin.reset b;
  check (Alcotest.float 1e-9) "reset restores the base quantum" base
    (Spin.current_sleep_s b)

(* the satellite's promise: an idle worker wakes within the cap (plus
   scheduling noise), not within some unbounded exponential sleep *)
let test_idle_wakeup_latency_bounded () =
  with_idle_knobs ~after:2 ~cap_ms:5. @@ fun () ->
  let pool = Workers.spawn ~jobs:1 () in
  Fun.protect
    ~finally:(fun () -> Workers.shutdown pool)
    (fun () ->
      (* let the worker park deep in the long-idle tier *)
      Unix.sleepf 0.25;
      let started = Atomic.make 0. in
      let t_submit = Clock.now_ns () in
      Workers.submit pool (fun () -> Atomic.set started (Clock.now_ns ()));
      let deadline = Unix.gettimeofday () +. 5. in
      while Atomic.get started = 0. && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.001
      done;
      let t_start = Atomic.get started in
      if t_start = 0. then Alcotest.fail "parked worker never woke";
      let wakeup_ms = (t_start -. t_submit) /. 1e6 in
      (* cap is 5ms; allow generous scheduler noise, but far below the
         unbounded-exponential failure mode this test exists to catch *)
      if wakeup_ms > 250. then
        Alcotest.failf "idle wakeup took %.1f ms (cap 5 ms)" wakeup_ms)

(* ---- warm worker pool ---- *)

let test_workers_execute_and_survive_errors () =
  let pool = Workers.spawn ~ring:8 ~jobs:2 () in
  let hits = Atomic.make 0 in
  for _ = 1 to 20 do
    Workers.submit pool (fun () -> Atomic.incr hits)
  done;
  Workers.submit pool (fun () -> failwith "poisoned request");
  for _ = 1 to 20 do
    Workers.submit pool (fun () -> Atomic.incr hits)
  done;
  Workers.shutdown pool;
  check Alcotest.int "every healthy task ran" 40 (Atomic.get hits);
  let s = Workers.stats pool in
  check Alcotest.int "all tasks drained" 41 s.Workers.w_executed;
  check Alcotest.int "the poisoned task was caught" 1 s.Workers.w_task_errors;
  Workers.shutdown pool (* idempotent *);
  match Workers.submit pool (fun () -> ()) with
  | _ -> Alcotest.fail "submit after shutdown accepted"
  | exception Invalid_argument _ -> ()

(* ---- daemon core ---- *)

let tiny_lookup name =
  match name with
  | "tiny" -> Ok (tiny_src, fun _ -> ())
  | "tiny2" -> Ok (tiny2_src, fun _ -> ())
  | other -> Error ("unknown workload " ^ other)

let tiny_config ?(equiv_every = 1) ?(cache = 4) ?(jobs = 2) () =
  {
    (Server.default_config ~lookup:tiny_lookup) with
    Server.s_jobs = jobs;
    s_cache_capacity = cache;
    s_equiv_every = equiv_every;
    s_threads = 4;
  }

let selftest_load ?(requests = 40) ?(mix = [ ("tiny", 1.) ]) () =
  { Server.l_spec = spec ~seed:5 ~rate:5000. ~mix (); l_requests = requests }

let test_server_selftest () =
  let r = Server.run ~load:(selftest_load ()) (tiny_config ()) in
  check Alcotest.int "every request admitted" 40 r.Server.r_offered;
  check Alcotest.int "every request served" 40 r.Server.r_served;
  check Alcotest.int "no failures" 0 r.Server.r_failed;
  check Alcotest.bool "drained" true r.Server.r_drained;
  check Alcotest.string "ran to completion" "completed" r.Server.r_stopped_by;
  check Alcotest.int "every response Equiv-checked" 40 r.Server.r_equiv_checked;
  check Alcotest.int "zero Equiv failures" 0 r.Server.r_equiv_failures;
  let c = r.Server.r_cache in
  check Alcotest.int "compiled exactly once" 1 c.Plancache.pc_misses;
  check Alcotest.int "39 cache hits" 39 c.Plancache.pc_hits;
  check Alcotest.int "pool executed everything" 40 r.Server.r_pool.Workers.w_executed;
  (match r.Server.r_workloads with
  | [ w ] ->
      check Alcotest.string "workload name" "tiny" w.Server.wr_name;
      check Alcotest.int "per-workload count" 40 w.Server.wr_requests;
      check Alcotest.bool "an executable best plan" true (w.Server.wr_best_plan <> None)
  | ws -> Alcotest.failf "expected one workload report, got %d" (List.length ws));
  (* the report renders as one strict-JSON object *)
  match Json.parse (Server.report_json r) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "report is not strict JSON: %s" e

let test_server_mixed_and_errors () =
  let load = selftest_load ~requests:30 ~mix:[ ("tiny", 1.); ("tiny2", 1.); ("nope", 1.) ] () in
  let r = Server.run ~load (tiny_config ()) in
  check Alcotest.int "every request admitted" 30 r.Server.r_offered;
  check Alcotest.bool "drained" true r.Server.r_drained;
  check Alcotest.bool "unknown-workload requests failed" true (r.Server.r_failed > 0);
  check Alcotest.int "served + failed = offered" 30 (r.Server.r_served + r.Server.r_failed);
  check Alcotest.int "two distinct programs compiled" 2
    r.Server.r_cache.Plancache.pc_misses;
  check Alcotest.int "two services reported" 2 (List.length r.Server.r_workloads);
  check Alcotest.int "zero Equiv failures" 0 r.Server.r_equiv_failures

let test_server_socket () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "commset-serve-test.sock" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let daemon = Domain.spawn (fun () -> Server.run ~socket:path (tiny_config ())) in
  (* wait for the listener *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let deadline = Unix.gettimeofday () +. 5. in
  let rec connect () =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.01;
        connect ()
  in
  connect ();
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      (* by-name request with echo *)
      Proto.send_frame fd
        (Proto.request_to_json
           { Proto.rq_id = 1; rq_workload = Some "tiny"; rq_source = None; rq_echo = true });
      (match Proto.recv_frame fd with
      | None -> Alcotest.fail "no response"
      | Some payload -> (
          match Proto.response_of_json payload with
          | Error e -> Alcotest.fail e
          | Ok resp ->
              check Alcotest.int "response id" 1 resp.Proto.rs_id;
              check Alcotest.bool "ok" true (resp.Proto.rs_error = None);
              check Alcotest.bool "first request compiles" false resp.Proto.rs_hit;
              check Alcotest.int "12 output lines" 12 resp.Proto.rs_n_outputs;
              (match resp.Proto.rs_outputs with
              | Some ("0" :: "3" :: _) -> ()
              | _ -> Alcotest.fail "echoed outputs wrong")));
      (* inline source identical to "tiny": content-hash keying makes it a hit *)
      Proto.send_frame fd
        (Proto.request_to_json
           { Proto.rq_id = 2; rq_workload = None; rq_source = Some tiny_src; rq_echo = false });
      (match Proto.recv_frame fd with
      | None -> Alcotest.fail "no response to inline request"
      | Some payload -> (
          match Proto.response_of_json payload with
          | Error e -> Alcotest.fail e
          | Ok resp ->
              check Alcotest.bool "inline ok" true (resp.Proto.rs_error = None);
              check Alcotest.bool "same source is a cache hit" true resp.Proto.rs_hit));
      (* malformed payload gets an immediate error response *)
      Proto.send_frame fd "{not json";
      (match Proto.recv_frame fd with
      | None -> Alcotest.fail "no response to malformed request"
      | Some payload -> (
          match Proto.response_of_json payload with
          | Ok resp -> check Alcotest.bool "error status" true (resp.Proto.rs_error <> None)
          | Error e -> Alcotest.fail e)));
  Server.request_stop ();
  let r = Domain.join daemon in
  check Alcotest.string "stopped by signal" "signal" r.Server.r_stopped_by;
  check Alcotest.bool "drained" true r.Server.r_drained;
  check Alcotest.int "two well-formed requests served" 2 r.Server.r_served;
  check Alcotest.bool "socket unlinked on shutdown" false (Sys.file_exists path)

(* ---- fidelity gate ---- *)

let tiny_runs =
  lazy
    (let c = P.compile ~name:"tiny" tiny_src in
     match P.executable_plans c ~threads:2 with
     | [] -> Alcotest.fail "tiny has no executable plan"
     | plan :: _ -> [ P.run_parallel ~jobs:2 c plan ])

let test_fidelity_gate () =
  let runs = Lazy.force tiny_runs in
  (* oversubscribed: cores < jobs + 1 -> visible skip, never a failure *)
  (match P.fidelity_gate ~cores:1 ~jobs:2 runs with
  | P.Gate_skipped why ->
      check Alcotest.bool "skip names the oversubscription" true
        (String.length why > 0)
  | _ -> Alcotest.fail "oversubscribed gate did not skip");
  (match P.fidelity_gate ~cores:2 ~jobs:2 runs with
  | P.Gate_skipped _ -> ()
  | _ -> Alcotest.fail "cores = jobs must still skip (coordinator needs a core)");
  (* enough cores + an absurdly wide band: always within *)
  (match P.fidelity_gate ~cores:16 ~jobs:2 ~band:1e9 runs with
  | P.Gate_ok worst -> check Alcotest.bool "worst gap is finite" true (worst >= 0.)
  | _ -> Alcotest.fail "wide band did not pass");
  (* a zero-width band: any measurement noise exceeds it *)
  (match P.fidelity_gate ~cores:16 ~jobs:2 ~band:0. runs with
  | P.Gate_exceeded ((_, gap) :: _) -> check Alcotest.bool "gap reported" true (gap >= 0.)
  | P.Gate_exceeded [] -> Alcotest.fail "exceeded with no offenders"
  | _ -> Alcotest.fail "zero band did not fail");
  (* no measurements: nothing to gate *)
  match P.fidelity_gate ~cores:16 ~jobs:2 [] with
  | P.Gate_skipped _ -> ()
  | _ -> Alcotest.fail "empty run list did not skip"

let suite =
  ( "serve",
    [
      Alcotest.test_case "plancache: hit/miss and stats" `Quick test_cache_hit_miss;
      Alcotest.test_case "plancache: LRU eviction at capacity 2" `Quick
        test_cache_lru_eviction;
      Alcotest.test_case "plancache: concurrent single-flight compiles once" `Quick
        test_cache_single_flight;
      Alcotest.test_case "plancache: failures are retried, not cached" `Quick
        test_cache_failure_not_cached;
      Alcotest.test_case "plancache: content-hash keying" `Quick test_content_key;
      Alcotest.test_case "gen: seeded schedule is deterministic" `Quick
        test_gen_deterministic;
      Alcotest.test_case "gen: monotone arrivals near the nominal rate" `Quick
        test_gen_rate_and_monotone;
      Alcotest.test_case "gen: mix honors weights" `Quick test_gen_mix_proportions;
      Alcotest.test_case "gen: on/off rate algebra" `Quick test_gen_rate_algebra;
      Alcotest.test_case "gen: spec validation" `Quick test_gen_validation;
      Alcotest.test_case "proto: frame roundtrip and clean EOF" `Quick
        test_proto_roundtrip;
      Alcotest.test_case "proto: truncated frame rejected" `Quick test_proto_truncated;
      Alcotest.test_case "proto: byte-at-a-time incremental decoding" `Quick
        test_framer_incremental;
      Alcotest.test_case "proto: request JSON shape" `Quick test_proto_request_json;
      Alcotest.test_case "proto: response JSON roundtrip" `Quick test_proto_response_json;
      Alcotest.test_case "spin: long-idle escalation schedule" `Quick
        test_spin_idle_escalation;
      Alcotest.test_case "spin: idle wakeup latency bounded by the cap" `Quick
        test_idle_wakeup_latency_bounded;
      Alcotest.test_case "workers: warm pool executes and survives task errors" `Quick
        test_workers_execute_and_survive_errors;
      Alcotest.test_case "server: selftest stream, Equiv-checked, compile-once" `Quick
        test_server_selftest;
      Alcotest.test_case "server: mixed load with failing lookups drains clean" `Quick
        test_server_mixed_and_errors;
      Alcotest.test_case "server: socket requests, inline source, malformed frame" `Quick
        test_server_socket;
      Alcotest.test_case "pipeline: fidelity gate verdicts" `Quick test_fidelity_gate;
    ] )
