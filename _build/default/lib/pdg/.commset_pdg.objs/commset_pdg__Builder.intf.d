lib/pdg/builder.mli: Commset_analysis Commset_ir Pdg
