lib/core/wellformed.ml: Commset_analysis Commset_ir Commset_support Diag Digraph Hashtbl List Listx Metadata
