(** The synchronization engine (paper §4.6).

    Assigns each commset a lock ranked by its registration order (the
    global acquire order that, together with the acyclic COMMSET graph
    and acyclic pipeline queues, guarantees deadlock freedom), and
    computes for each PDG node the commsets whose locks it must hold.

    A commset needs no compiler lock when:
    - it is marked COMMSETNOSYNC, or
    - every shared effect of every member instance comes from builtins
      that are internally thread-safe (the paper's Lib mode — libc I/O,
      the malloc free-list); those calls serialize inside the "library"
      instead. *)

module Ir = Commset_ir.Ir
module Pdg = Commset_pdg.Pdg
module Effects = Commset_analysis.Effects
module Metadata = Commset_core.Metadata
module Trace = Commset_runtime.Trace

type set_sync = {
  ss_name : string;
  ss_rank : int;
  ss_nosync : bool;
  ss_lib_safe : bool;  (** all member effects come from thread-safe builtins *)
}

type t = {
  md : Metadata.t;
  set_sync : (string, set_sync) Hashtbl.t;
  node_locks : (int, string list) Hashtbl.t;  (** compiler-locked sets per node, rank order *)
  node_sets_all : (int, string list) Hashtbl.t;  (** all sets per node *)
}

(* does every shared effect of this node instance come from thread-safe
   builtins? judged from the recorded trace atoms *)
let node_lib_safe (trace : Trace.t) nid =
  let ok = ref true in
  Array.iter
    (fun it ->
      match Hashtbl.find_opt it.Trace.exec_tbl nid with
      | Some e ->
          List.iter
            (fun a ->
              match a with
              | Trace.Abuiltin { thread_safe = false; resources; _ } when resources <> [] ->
                  ok := false
              | _ -> ())
            (Trace.exec_atoms e)
      | None -> ())
    trace.Trace.iterations;
  !ok

(* does the node also touch shared state outside builtins (globals or
   shared heap)? then library-internal locks cannot cover it *)
let node_touches_shared_memory (pdg : Pdg.t) priv nid =
  let n = pdg.Pdg.nodes.(nid) in
  let shared loc =
    match loc with
    | Effects.Lglobal _ | Effects.Lheap _ | Effects.Lunknown ->
        not (Commset_analysis.Privatization.location_is_private priv loc)
    | Effects.Lext _ -> false
  in
  Effects.LocSet.exists shared n.Pdg.rw.Effects.writes
  || Effects.LocSet.exists shared
       (Effects.LocSet.inter n.Pdg.rw.Effects.reads n.Pdg.rw.Effects.writes)

let compute (md : Metadata.t) (pdg : Pdg.t) (trace : Trace.t)
    (priv : Commset_analysis.Privatization.t) : t =
  let caller = pdg.Pdg.func.Ir.fname in
  let node_sets_all = Hashtbl.create 32 in
  Array.iter
    (fun n ->
      let sets = Metadata.node_sets md ~caller n in
      if sets <> [] then Hashtbl.replace node_sets_all n.Pdg.nid sets)
    pdg.Pdg.nodes;
  (* decide lib-safety per set: every member node instance must be
     lib-safe and must not touch shared non-builtin memory *)
  let set_sync = Hashtbl.create 16 in
  List.iter
    (fun (info : Metadata.set_info) ->
      let member_nodes =
        Array.to_list pdg.Pdg.nodes
        |> List.filter (fun n ->
               match Hashtbl.find_opt node_sets_all n.Pdg.nid with
               | Some sets -> List.mem info.Metadata.sname sets
               | None -> false)
      in
      let lib_safe =
        member_nodes <> []
        && List.for_all
             (fun n ->
               node_lib_safe trace n.Pdg.nid
               && not (node_touches_shared_memory pdg priv n.Pdg.nid))
             member_nodes
      in
      Hashtbl.replace set_sync info.Metadata.sname
        {
          ss_name = info.Metadata.sname;
          ss_rank = info.Metadata.rank;
          ss_nosync = info.Metadata.nosync;
          ss_lib_safe = lib_safe;
        })
    (Metadata.sets_in_rank_order md);
  (* per-node compiler locks: the node's sets minus nosync and lib-safe
     sets, in global rank order *)
  let node_locks = Hashtbl.create 32 in
  Hashtbl.iter
    (fun nid sets ->
      let locked =
        List.filter
          (fun s ->
            match Hashtbl.find_opt set_sync s with
            | Some ss -> (not ss.ss_nosync) && not ss.ss_lib_safe
            | None -> true)
          sets
      in
      let ranked =
        List.sort
          (fun a b ->
            compare (Hashtbl.find set_sync a).ss_rank (Hashtbl.find set_sync b).ss_rank)
          locked
      in
      if ranked <> [] then Hashtbl.replace node_locks nid ranked)
    node_sets_all;
  { md; set_sync; node_locks; node_sets_all }

let locks_of t nid = Option.value ~default:[] (Hashtbl.find_opt t.node_locks nid)

let any_compiler_locks t = Hashtbl.length t.node_locks > 0

(** Are all locked nodes TM-safe (no irrevocable builtins), judged from
    the trace? *)
let tm_applicable t (trace : Trace.t) =
  let ok = ref (any_compiler_locks t) in
  Hashtbl.iter
    (fun nid _ ->
      Array.iter
        (fun it ->
          match Hashtbl.find_opt it.Trace.exec_tbl nid with
          | Some e ->
              List.iter
                (fun a ->
                  match a with
                  | Trace.Abuiltin { tm_safe = false; _ } -> ok := false
                  | Trace.Aout _ -> ok := false (* output cannot roll back *)
                  | _ -> ())
                (Trace.exec_atoms e)
          | None -> ())
        trace.Trace.iterations)
    t.node_locks;
  !ok

(** Empty synchronization assignment, used for the non-COMMSET baseline
    plans (no relaxed edges, hence no atomicity obligations). *)
let none (md : Metadata.t) : t =
  {
    md;
    set_sync = Hashtbl.create 1;
    node_locks = Hashtbl.create 1;
    node_sets_all = Hashtbl.create 1;
  }
