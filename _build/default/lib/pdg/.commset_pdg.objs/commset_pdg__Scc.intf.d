lib/pdg/scc.mli: Pdg
