(** The real multicore execution backend: runs a parallelization plan on
    actual OCaml 5 domains instead of the discrete-event simulator, in
    one of three engines.

    {b Real engine} (default): executes the prepared program itself —
    the coordinator domain runs the whole program and dispatches every
    target-loop iteration's live register file to worker domains, which
    execute the full iteration body against the shared machine, with
    commset locks, an iteration frontier for value-carrying dependences,
    per-domain buffering of order-free updates, and calibrated CPU work
    realizing the cost model's cycles ({!Realexec}). When
    {!Commset_runtime.Precompile.plan_real} rejects the loop shape, the
    run falls back to the burn engine and says so in [x_engine] (the
    reason lands in [x_engine_reason]).

    {b Codegen engine} ([Codegen_engine], [--engine=codegen]): the real
    engine with the iteration body compiled to native OCaml
    ({!Commset_codegen.Codegen}) instead of interpreted — same
    coordinator/worker split, locks, frontier and buffering, with
    straight-line compiled code inside each iteration. When translation,
    the toolchain or dynlinking fails, the run degrades to the
    interpreted real engine and reports why in [x_engine_reason].

    {b Burn engine} ([Burn_engine]): replays the emitter's per-thread
    segment lists — the multi-threaded code generation the simulator
    prices — as calibrated cycle-burning ({!Burn}), ranked per-commset
    locks ({!Locks}) and bounded SPSC queues ({!Spsc}). Loop work is
    trace replay, not program execution.

    Every run performs a mandatory output-equivalence check: a fresh
    sequential execution of the prepared program is the reference, and
    the parallel output must match it exactly — up to multiset order for
    outputs the commset annotations declare commutative ({!Equiv}).

    TM and speculative plans are rejected ({!supported}): software
    transactions exist only in the simulator's optimistic model; there
    is no STM to run them on.

    Observability: the run, the sequential reference and every worker
    are wrapped in flight-recorder spans (category ["exec"]); the
    [exec.*] metrics record runs, contended acquires, queue and frontier
    waits, buffered updates, worker instructions retired and merge-phase
    timings (real concurrency measurements, no cross-run determinism
    promise). *)

module Plan = Commset_transforms.Plan
module Sync = Commset_transforms.Sync
module Pdg = Commset_pdg.Pdg
module R = Commset_runtime

(** Which realization executes the plan's target loop. *)
type engine = Burn_engine | Real_engine | Codegen_engine

val engine_name : engine -> string

(** ["real"] / ["burn"] / ["codegen"] (the CLI flag values). *)
val engine_of_string : string -> engine option

(** Worker-domain count to use when the caller does not pin one:
    [Domain.recommended_domain_count () - 1] (one domain is the
    coordinator), at least 1. *)
val default_jobs : unit -> int

type stats = {
  x_label : string;  (** the executed plan's label *)
  x_engine : string;
      (** engine that actually ran: ["codegen"], ["real"] or ["burn"]
          (after a fallback this differs from the requested engine) *)
  x_threads : int;  (** worker domains occupied *)
  x_wall_seq_s : float;
      (** sequential leg: for the real engine a timed fresh sequential
          run (execution + calibrated work); for the burn engine the
          calibrated cycle replay on one domain *)
  x_wall_par_s : float;  (** parallel leg, spawn/join barriers excluded *)
  x_measured_speedup : float;  (** [x_wall_seq_s /. x_wall_par_s] *)
  x_verdict : Equiv.verdict;
  x_lock_contended : int;
  x_queue_full_waits : int;  (** blocking episodes on full queues/rings *)
  x_queue_empty_waits : int;  (** blocking episodes on empty queues/rings *)
  x_iterations : int;  (** loop iterations executed/replayed *)
  x_frontier_waits : int;  (** real engine: frontier blocking episodes *)
  x_buffered_updates : int;  (** real engine: updates buffered per-domain *)
  x_steps : int;  (** real engine: instructions retired, all domains *)
  x_merge_s : float;  (** real engine: merge-phase seconds *)
  x_outputs : string list;  (** the parallel run's full output stream *)
  x_engine_reason : string option;
      (** when [x_engine] differs from the requested engine: why the
          run fell back (loop-shape refusal, codegen toolchain/shape) *)
  x_codegen_cache_hit : bool;
      (** codegen engine: compiled body reused from the cache *)
  x_codegen_compile_s : float;
      (** codegen engine: compiler seconds spent this run (0 on hits) *)
  x_attrib : Commset_obs.Attrib.summary option;
      (** real/codegen engines: per-cause attribution of worker
          iteration wall time and coordinator utilization
          ({!Commset_obs.Attrib}); [None] for the burn engine or with
          [~attrib:false] *)
}

(** Can this plan run on the real backend? [Error reason] for TM and
    speculative variants. *)
val supported : Plan.t -> (unit, string) result

(** Execute [plan] on real domains. [engine] defaults to [Real_engine];
    [jobs] (worker domains, real engine only) defaults to
    {!default_jobs}. Raises a CS014 {!Diag.Error} for unsupported plans
    and an internal error if the fresh sequential reference diverges
    from the recorded trace. [pdg], [trace] and [sync] must come from
    the same compilation as [prepared]; [setup] prepares each fresh
    machine. [attrib] (default [true]) controls the real/codegen
    engines' per-iteration attribution layer; pass [false] for
    zero-overhead measurement runs. *)
val run :
  ?engine:engine ->
  ?jobs:int ->
  ?attrib:bool ->
  plan:Plan.t ->
  pdg:Pdg.t ->
  trace:R.Trace.t ->
  sync:Sync.t ->
  prepared:R.Precompile.t ->
  setup:(R.Machine.t -> unit) ->
  unit ->
  stats
