test/test_report.ml: Alcotest Commset_report List String
