lib/runtime/sim.mli: Costmodel Value
