(** Cost model of the simulated multicore (all values in simulated
    cycles), calibrated so the *relative* behaviour of the paper's eight
    workloads is preserved (DESIGN.md §7). The [Atomic.t] cells are the
    knobs the ablation benchmarks sweep; atomics make them safe to read
    from the parallel evaluation harness's worker domains. *)

module Ir = Commset_ir.Ir

(* instruction costs *)
val instr_cost : Ir.instr_desc -> float
val terminator_cost : float

(* synchronization *)
type lock_flavor = Mutex | Spin | Libsafe

(** Cost of an uncontended acquire / release. *)
val acquire_base : lock_flavor -> float

val release_base : lock_flavor -> float

(** Knobs for the contended-handoff model: mutexes pay an OS
    sleep/wakeup; spin locks pay cache-line bouncing that grows with the
    number of spinners. *)
val mutex_wakeup : float Atomic.t

val spin_handoff_base : float Atomic.t
val spin_handoff_per_waiter : float Atomic.t

(** Handoff latency of a library-internal critical section. *)
val libsafe_handoff : float

(** Extra latency before a blocked thread obtains a released lock. *)
val handoff_penalty : lock_flavor -> n_waiters:int -> float

(* transactions *)
val tx_begin_cost : float
val tx_commit_cost : float
val tx_abort_penalty : float
val tx_max_retries : int

(** Read/write-set instrumentation slows code inside a transaction. *)
val tx_instrumentation_factor : float Atomic.t

(* pipeline queues *)
val queue_push_cost : float
val queue_pop_cost : float
val queue_capacity : int Atomic.t

(* real-execution realization (shared with the Commset_exec backend) *)

(** Nanoseconds of real CPU work per simulated cycle used by the real
    multicore executor; the simulator's cycle counts and the executor's
    wall-clock measurements meet through this one constant (DESIGN §13).
    Initialized from [COMMSET_EXEC_NS_PER_CYCLE] (default 1.0) on first
    read; a malformed value raises a CS013 {!Commset_support.Diag.Error}. *)
val exec_ns_per_cycle : unit -> float

(** Override the scale (tests and the bench harness). *)
val set_exec_ns_per_cycle : float -> unit

(** Forget any override and re-read [COMMSET_EXEC_NS_PER_CYCLE] (or the
    default) on next access — undoes both [set_exec_ns_per_cycle] and a
    loaded calibration profile. *)
val reset_exec_ns_per_cycle : unit -> unit

(** {2 Calibration: measured per-builtin cost scales}

    A calibration profile ({!Calib}) rescales each builtin's charged
    cycle cost by a measured factor. Precedence, strongest first:
    explicit [set_*] calls (including [Calib.apply]), then environment
    variables, then the built-in defaults. Calibration is strictly
    opt-in: with no profile applied, [builtin_cost_scale] is exactly
    [1.0], the multiplication is skipped, and all charged costs (and
    therefore the paper tables) are byte-identical to an uncalibrated
    build. *)

(** The cost multiplier for one builtin; [1.0] unless a profile with a
    scale for this name is active. Lock-free on the inactive path;
    concurrent lookups are safe while no profile is being (un)applied. *)
val builtin_cost_scale : string -> float

(** Replace the active scale set ([(builtin name, factor)] pairs;
    non-finite or non-positive factors are dropped). An empty list
    deactivates calibration, like {!clear_builtin_cost_scales}. Only
    call between runs — never while worker domains are executing. *)
val set_builtin_cost_scales : (string * float) list -> unit

val clear_builtin_cost_scales : unit -> unit

(** The active scale set, sorted by name ([[]] when inactive). *)
val builtin_cost_scales : unit -> (string * float) list

(** Spin rounds the executor's adaptive backoff burns with
    [Domain.cpu_relax] before it starts yielding to the OS scheduler.
    Initialized from [COMMSET_SPIN_ROUNDS] (default 200) on first read;
    malformed values raise a CS013 {!Commset_support.Diag.Error}. *)
val exec_spin_rounds : unit -> int

val set_exec_spin_rounds : int -> unit

(** Yielding quantum (seconds) once the spin budget is spent. Initialized
    from [COMMSET_SPIN_SLEEP_US] (microseconds, default 50) on first
    read; malformed values raise a CS013 {!Commset_support.Diag.Error}. *)
val exec_spin_sleep_s : unit -> float

val set_exec_spin_sleep_us : float -> unit

(** {2 Long-idle parking (daemon mode)}

    A waiter that has already slept {!exec_idle_sleep_after} base
    quanta is long-idle: each further sleep doubles up to
    {!exec_idle_sleep_cap_s}, so a parked daemon worker costs one
    wakeup per cap (~0% CPU) while its worst-case wakeup latency stays
    bounded by the cap. *)

(** Base-quantum sleeps before the backoff escalates. Initialized from
    [COMMSET_IDLE_SLEEP_AFTER] (default 40 — ~2 ms at the default
    50 µs quantum) on first read; malformed values raise CS013. *)
val exec_idle_sleep_after : unit -> int

val set_exec_idle_sleep_after : int -> unit

(** Sleep-quantum ceiling (seconds) of the long-idle tier. Initialized
    from [COMMSET_IDLE_SLEEP_CAP_MS] (milliseconds, default 20) on
    first read; malformed values raise CS013. *)
val exec_idle_sleep_cap_s : unit -> float

val set_exec_idle_sleep_cap_ms : float -> unit

(** Relative predicted-vs-measured speedup gap accepted by the strict
    fidelity gates ([run --strict --calibrate], [serve --selftest
    --strict]) on non-oversubscribed machines. Initialized from
    [COMMSET_FIDELITY_BAND] (default 0.5) on first read; malformed
    values raise CS013. *)
val fidelity_band : unit -> float

val set_fidelity_band : float -> unit

(* builtin cost helpers *)
val per_byte : float
val md5_cost_per_byte : float
val trace_cost_per_byte : float
val file_open_cost : float
val file_close_cost : float
val file_read_base : float
val file_write_base : float
val write_per_byte : float
val print_cost : float
val rng_cost : float
val hist_cost : float
val alloc_base : float
val alloc_per_slot : float
val collection_op_cost : float
val db_read_cost : float
val packet_dequeue_cost : float
val log_write_base : float
