lib/analysis/cfg.mli: Commset_ir Hashtbl
