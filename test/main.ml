(** Test runner aggregating every suite. *)

let () =
  Alcotest.run "commset"
    [
      Test_support.suite;
      Test_pool.suite;
      Test_obs.suite;
      Test_lang.suite;
      Test_ir.suite;
      Test_analysis.suite;
      Test_runtime.suite;
      Test_sim.suite;
      Test_pdg_core.suite;
      Test_transforms.suite;
      Test_workloads.suite;
      Test_report.suite;
      Test_verify.suite;
      Test_spec.suite;
      Test_invariants.suite;
      Test_fuzz.suite;
      Test_precompile.suite;
      Test_builtins.suite;
      Test_analysis_props.suite;
      Test_exec.suite;
      Test_realexec.suite;
      Test_attrib.suite;
      Test_codegen.suite;
      Test_synth.suite;
      Test_serve.suite;
    ]
