(** Deterministic open-loop request generator for the serve daemon's
    self-test harness: a seeded arrival process over a weighted blend
    of named workloads.

    Arrivals follow a Markov-modulated Poisson process — the classic
    on/off burst model. The stream alternates between an ON phase
    (bursting at [g_burst ×] the base intensity, exponentially
    distributed duration with mean [g_on_s]) and an OFF phase (lulls;
    intensity solved so the long-run mean offered rate equals [g_rate],
    clamped at zero when [g_burst] concentrates the whole budget in the
    ON phase). Within a phase, inter-arrival gaps are exponential.
    [g_burst = 1.] degenerates to plain Poisson arrivals.

    Open loop means arrival times are fixed up front by the process and
    never react to service completions — the generator models clients
    who do not wait for each other, so queueing delay shows up honestly
    as latency instead of silently throttling the offered load.

    Determinism: the same [spec] yields the same arrival schedule and
    workload sequence on every run (a private xorshift64* stream;
    nothing global). *)

type spec = {
  g_seed : int;
  g_rate : float;  (** long-run mean offered requests/second (> 0) *)
  g_burst : float;  (** ON-phase intensity multiplier (≥ 1) *)
  g_on_s : float;  (** mean ON-phase duration, seconds (> 0) *)
  g_off_s : float;  (** mean OFF-phase duration, seconds (> 0) *)
  g_mix : (string * float) list;  (** (workload, weight > 0); non-empty *)
}

(** Plain 1000 rps Poisson-burst blend used by [--selftest] defaults:
    seed 1, burst 3×, 50 ms ON / 150 ms OFF, mix
    [url:1, md5sum:2, geti:1]. *)
val default_spec : spec

type t

(** Raises [Invalid_argument] on out-of-range spec fields. *)
val create : spec -> t

(** Next arrival: [(offset_s, workload)] where [offset_s] is seconds
    since the stream's origin (monotone non-decreasing across calls)
    and [workload] is drawn from [g_mix]. *)
val next : t -> float * string

(** The OFF-phase intensity (requests/second) implied by the spec —
    exposed so tests can pin the rate algebra. *)
val off_rate : spec -> float
