lib/transforms/sync.mli: Commset_analysis Commset_core Commset_pdg Commset_runtime Hashtbl
