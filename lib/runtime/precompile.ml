(** Prepared-program execution layer: a one-time pass that resolves an
    {!Ir.program} into an array-indexed, closure-threaded form, plus two
    engines over it — a null-hooks fast path with zero dispatch and zero
    allocation per instruction, and an instrumented path that fires the
    exact {!Interp.hooks} event stream of the reference interpreter.

    What the prepare pass specializes away from the tree-walking
    interpreter's hot loop:

    - block lookup: labels become dense array indices, terminators jump
      to pre-resolved indices (no [Hashtbl.find] per block);
    - commutative region entries: the [(function, label) -> region]
      table becomes a per-block field, consulted only on the
      instrumented path (regions are hook-observable only);
    - operand access: [Const] operands become pre-built {!Value.t}
      shares, [Reg] operands become direct [regs.(i)] reads;
    - operator dispatch: the [(op, ty)] match of [Interp.eval_binop]
      happens once at prepare time, leaving a direct two-argument
      function;
    - callee resolution: the builtin-vs-user split happens at prepare
      time; user calls bind arguments straight into the callee's fresh
      register file with no intermediate list on the fast path;
    - global variables: names become dense array slots (a declared
      global's load is one array read);
    - cost accounting: {!Costmodel.instr_cost} is precomputed per
      instruction into a flat float array, charged in the same order as
      the reference, so total cycles are bit-identical (float addition
      is not associative — per-block batching would drift).

    Behavioural contract, relied on by the differential tests
    ([test/test_precompile.ml], [test/test_fuzz.ml]): for any program,
    outputs, total cycles, diagnostics, and (on the instrumented path)
    the full hook event stream are identical to {!Interp}. Runtime
    failures raise the same {!Diag.Error}s at the same point; fuel is
    charged per instruction and per block exactly like the reference, so
    {!Interp.Out_of_fuel} fires at the same execution point. *)

module Ir = Commset_ir.Ir
module Ast = Commset_lang.Ast
open Commset_support
module Metrics = Commset_obs.Metrics

(* "instructions retired" falls out of the existing fuel accounting —
   fuel is decremented once per block entry and once per instruction, so
   [initial fuel - remaining fuel] counts steps with zero added cost on
   the per-instruction hot path; totals are flushed once per run *)
let m_steps =
  Metrics.counter ~doc:"interpreter steps retired (block entries + instructions)"
    "interp.steps"

let m_exec_runs = Metrics.counter ~doc:"prepared-program runs" "interp.runs"

(* ------------------------------------------------------------------ *)
(* Prepared form                                                       *)
(* ------------------------------------------------------------------ *)

type state = {
  st_machine : Machine.t;
  st_globals : Value.t array;
  st_gdefined : bool array;
      (** per-slot "has a value": always true for declared globals;
          initially false for slots reserved for undeclared names that
          some [Store_global] creates at run time (the reference's
          [Hashtbl.replace] semantics) *)
  mutable st_fuel : int;
  mutable st_total : float;
}

(** A compiled operand read: closed over the constant or the register
    index; never allocates. *)
type opf = Value.t array -> Value.t

type pinstr =
  | Psimple of (state -> Value.t array -> unit)
      (** everything but calls; includes raising stubs for instructions
          whose resolution failed (unknown global / unknown callee),
          which must keep failing at execution time, not prepare time *)
  | Pbuiltin of { bi : Builtins.t; bargs : opf array; bdst : int (* -1 = none *) }
  | Pcall of {
      ccallee : pfunc;
      cargs : opf array;
      cdst : int;  (** -1 = none *)
      cir : Ir.instr;  (** original instruction, for [on_call_actuals] *)
      cenabled : (string * (string * opf array) list) list;
    }

and pterm =
  | Pjump of int
  | Pbranch of int * int * int  (** condition register, then-idx, else-idx *)
  | Pbranch_raise of opf
      (** non-bool constant condition: evaluates and traps like the
          reference's [Value.to_bool] *)
  | Pret_reg of int
  | Pret_const of Value.t
  | Pret_none
      (** Jump targets are block indices, or [-1 - label] for an edge to
          a label with no block: the reference's [Ir.block] raises
          [Not_found] only if such an edge is actually taken, so the
          trap must stay behind the branch condition. *)

and pblock = {
  pb_label : Ir.label;
  pb_instrs : pinstr array;
  pb_irs : Ir.instr array;  (** parallel to [pb_instrs], for [on_instr] *)
  pb_costs : float array;  (** parallel static {!Costmodel.instr_cost}s *)
  pb_term : pterm;
  pb_region : (Ir.region * (string * opf array) list) option;
      (** the region this block enters, with its commset actuals
          compiled; [None] for non-entry blocks *)
}

and pfunc = {
  pf_ir : Ir.func;
  pf_nregs : int;
  pf_params : int array;
  mutable pf_entry : int;
  mutable pf_blocks : pblock array;
}

type t = {
  p_prog : Ir.program;
  p_funcs : (string, pfunc) Hashtbl.t;
  p_main : pfunc option;
  p_global_slots : (string, int) Hashtbl.t;
  p_global_names : string array;
  p_global_init : Value.t array;  (** copied into each executor *)
  p_global_defined : bool array;  (** initial defined flags, copied too *)
}

let program t = t.p_prog

(* ------------------------------------------------------------------ *)
(* Prepare: operands and operators                                     *)
(* ------------------------------------------------------------------ *)

let prep_operand : Ir.operand -> opf = function
  | Ir.Const c ->
      let v = Value.of_const c in
      fun _ -> v
  | Ir.Reg r -> fun regs -> regs.(r)

(* the (op, ty) match of Interp.eval_binop, performed once per instruction *)
let prep_binop op ty : Value.t -> Value.t -> Value.t =
  let open Value in
  match (op, ty) with
  | Ast.Add, Ast.Tint -> fun a b -> Vint (to_int a + to_int b)
  | Ast.Sub, Ast.Tint -> fun a b -> Vint (to_int a - to_int b)
  | Ast.Mul, Ast.Tint -> fun a b -> Vint (to_int a * to_int b)
  | Ast.Div, Ast.Tint ->
      fun a b ->
        let d = to_int b in
        if d = 0 then Diag.error "runtime: division by zero" else Vint (to_int a / d)
  | Ast.Mod, Ast.Tint ->
      fun a b ->
        let d = to_int b in
        if d = 0 then Diag.error "runtime: modulo by zero" else Vint (to_int a mod d)
  | Ast.Add, Ast.Tfloat -> fun a b -> Vfloat (to_float a +. to_float b)
  | Ast.Sub, Ast.Tfloat -> fun a b -> Vfloat (to_float a -. to_float b)
  | Ast.Mul, Ast.Tfloat -> fun a b -> Vfloat (to_float a *. to_float b)
  | Ast.Div, Ast.Tfloat -> fun a b -> Vfloat (to_float a /. to_float b)
  | Ast.Add, Ast.Tstring -> fun a b -> Vstring (to_string_val a ^ to_string_val b)
  | Ast.Lt, Ast.Tint -> fun a b -> Vbool (to_int a < to_int b)
  | Ast.Le, Ast.Tint -> fun a b -> Vbool (to_int a <= to_int b)
  | Ast.Gt, Ast.Tint -> fun a b -> Vbool (to_int a > to_int b)
  | Ast.Ge, Ast.Tint -> fun a b -> Vbool (to_int a >= to_int b)
  | Ast.Lt, Ast.Tfloat -> fun a b -> Vbool (to_float a < to_float b)
  | Ast.Le, Ast.Tfloat -> fun a b -> Vbool (to_float a <= to_float b)
  | Ast.Gt, Ast.Tfloat -> fun a b -> Vbool (to_float a > to_float b)
  | Ast.Ge, Ast.Tfloat -> fun a b -> Vbool (to_float a >= to_float b)
  | Ast.Lt, Ast.Tstring -> fun a b -> Vbool (to_string_val a < to_string_val b)
  | Ast.Gt, Ast.Tstring -> fun a b -> Vbool (to_string_val a > to_string_val b)
  | Ast.Eq, _ -> fun a b -> Vbool (Value.equal a b)
  | Ast.Neq, _ -> fun a b -> Vbool (not (Value.equal a b))
  | Ast.And, Ast.Tbool -> fun a b -> Vbool (to_bool a && to_bool b)
  | Ast.Or, Ast.Tbool -> fun a b -> Vbool (to_bool a || to_bool b)
  | _ -> fun _ _ -> Diag.error "runtime: ill-typed binop"

let prep_unop op : Value.t -> Value.t =
 fun a ->
  match (op, a) with
  | Ast.Neg, Value.Vint n -> Value.Vint (-n)
  | Ast.Neg, Value.Vfloat f -> Value.Vfloat (-.f)
  | Ast.Not, Value.Vbool x -> Value.Vbool (not x)
  | _ -> Diag.error "runtime: ill-typed unop"

(* ------------------------------------------------------------------ *)
(* Prepare: instructions, terminators, blocks                          *)
(* ------------------------------------------------------------------ *)

let prep_instr ~global_slots ~declared ~funcs (i : Ir.instr) : pinstr =
  let loc = i.Ir.iloc in
  match i.Ir.desc with
  | Ir.Move (r, op) -> (
      match op with
      | Ir.Const c ->
          let v = Value.of_const c in
          Psimple (fun _ regs -> regs.(r) <- v)
      | Ir.Reg s -> Psimple (fun _ regs -> regs.(r) <- regs.(s)))
  | Ir.Binop (op, ty, r, a, b) ->
      let f = prep_binop op ty in
      let fa = prep_operand a and fb = prep_operand b in
      Psimple (fun _ regs -> regs.(r) <- f (fa regs) (fb regs))
  | Ir.Unop (op, _, r, a) ->
      let f = prep_unop op in
      let fa = prep_operand a in
      Psimple (fun _ regs -> regs.(r) <- f (fa regs))
  | Ir.Load_global (r, g) -> (
      match Hashtbl.find_opt global_slots g with
      | Some slot when Hashtbl.mem declared g ->
          Psimple (fun st regs -> regs.(r) <- st.st_globals.(slot))
      | Some slot ->
          (* undeclared name that some store creates at run time: visible
             here only once the store has executed, like the reference's
             globals hashtable *)
          Psimple
            (fun st regs ->
              if st.st_gdefined.(slot) then regs.(r) <- st.st_globals.(slot)
              else Diag.error "runtime: unknown global '%s'" g)
      | None -> Psimple (fun _ _ -> Diag.error "runtime: unknown global '%s'" g))
  | Ir.Store_global (g, op) ->
      let fop = prep_operand op in
      let slot = Hashtbl.find global_slots g in
      if Hashtbl.mem declared g then
        Psimple (fun st regs -> st.st_globals.(slot) <- fop regs)
      else
        Psimple
          (fun st regs ->
            st.st_globals.(slot) <- fop regs;
            st.st_gdefined.(slot) <- true)
  | Ir.Load_index (r, arr, idx) ->
      let fa = prep_operand arr and fi = prep_operand idx in
      Psimple
        (fun _ regs ->
          let a = Value.to_array ~what:"indexed value" (fa regs) in
          let j = Value.to_int ~what:"index" (fi regs) in
          if j < 0 || j >= Array.length a then
            Diag.error ~loc "runtime: index %d out of bounds (length %d)" j (Array.length a);
          regs.(r) <- a.(j))
  | Ir.Store_index (arr, idx, v) ->
      let fa = prep_operand arr and fi = prep_operand idx and fv = prep_operand v in
      Psimple
        (fun _ regs ->
          let a = Value.to_array ~what:"indexed value" (fa regs) in
          let j = Value.to_int ~what:"index" (fi regs) in
          if j < 0 || j >= Array.length a then
            Diag.error ~loc "runtime: index %d out of bounds (length %d)" j (Array.length a);
          a.(j) <- fv regs)
  | Ir.Call { dst; callee; args; enabled } -> (
      let cargs = Array.of_list (List.map prep_operand args) in
      let cdst = match dst with Some r -> r | None -> -1 in
      match Builtins.find callee with
      | Some bi -> Pbuiltin { bi; bargs = cargs; bdst = cdst }
      | None -> (
          match Hashtbl.find_opt funcs callee with
          | Some pf ->
              let cenabled =
                List.map
                  (fun (e : Ir.enable) ->
                    ( e.Ir.en_block,
                      List.map
                        (fun (set, ops) -> (set, Array.of_list (List.map prep_operand ops)))
                        e.Ir.en_sets ))
                  enabled
              in
              Pcall { ccallee = pf; cargs; cdst; cir = i; cenabled }
          | None ->
              Psimple
                (fun _ _ -> Diag.error ~loc "runtime: call to unknown function '%s'" callee)))

let prep_term ~(label_idx : (Ir.label, int) Hashtbl.t) (t : Ir.terminator) : pterm =
  let idx l = match Hashtbl.find_opt label_idx l with Some i -> i | None -> -1 - l in
  match t with
  | Ir.Jump l -> Pjump (idx l)
  | Ir.Branch (c, l1, l2) -> (
      match c with
      | Ir.Const (Ir.Cbool true) -> Pjump (idx l1)
      | Ir.Const (Ir.Cbool false) -> Pjump (idx l2)
      | Ir.Const _ -> Pbranch_raise (prep_operand c)
      | Ir.Reg r -> Pbranch (r, idx l1, idx l2))
  | Ir.Ret None -> Pret_none
  | Ir.Ret (Some (Ir.Reg r)) -> Pret_reg r
  | Ir.Ret (Some (Ir.Const c)) -> Pret_const (Value.of_const c)

let prepare (prog : Ir.program) : t =
  (* global slots: declared globals first (later duplicate declarations
     overwrite the initial value, the reference's Hashtbl.replace), then
     one slot per undeclared name targeted by some Store_global *)
  let global_slots = Hashtbl.create 16 in
  let declared = Hashtbl.create 16 in
  let slots_rev = ref [] in
  let n_slots = ref 0 in
  let slot_of name =
    match Hashtbl.find_opt global_slots name with
    | Some s -> s
    | None ->
        let s = !n_slots in
        incr n_slots;
        Hashtbl.replace global_slots name s;
        slots_rev := name :: !slots_rev;
        s
  in
  List.iter
    (fun (name, _, _) ->
      ignore (slot_of name);
      Hashtbl.replace declared name ())
    prog.Ir.prog_globals;
  Hashtbl.iter
    (fun _ (f : Ir.func) ->
      Ir.iter_instrs f (fun _ i ->
          match i.Ir.desc with Ir.Store_global (g, _) -> ignore (slot_of g) | _ -> ()))
    prog.Ir.funcs;
  let n = max 1 !n_slots in
  let global_init = Array.make n (Value.Vint 0) in
  let global_defined = Array.make n false in
  let global_names = Array.make n "" in
  List.iteri (fun i name -> global_names.(!n_slots - 1 - i) <- name) !slots_rev;
  List.iter
    (fun (name, _, const) ->
      let s = Hashtbl.find global_slots name in
      global_init.(s) <- Value.of_const const;
      global_defined.(s) <- true)
    prog.Ir.prog_globals;
  (* two passes over functions so (mutually) recursive calls resolve to
     the final pfuncs: create shells, then fill blocks in place *)
  let funcs : (string, pfunc) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun fname (f : Ir.func) ->
      Hashtbl.replace funcs fname
        {
          pf_ir = f;
          pf_nregs = max 1 f.Ir.n_regs;
          pf_params = Array.of_list f.Ir.param_regs;
          pf_entry = 0;
          pf_blocks = [||];
        })
    prog.Ir.funcs;
  let fill _fname (pf : pfunc) =
    let f = pf.pf_ir in
    let blocks = Ir.blocks_in_order f in
    let label_idx = Hashtbl.create 16 in
    List.iteri (fun i (b : Ir.block) -> Hashtbl.replace label_idx b.Ir.label i) blocks;
    (* region whose entry this block is: last declaration wins, matching
       the reference's Hashtbl.replace over fregions in order *)
    let region_of label =
      List.fold_left
        (fun acc (r : Ir.region) -> if r.Ir.rentry = label then Some r else acc)
        None f.Ir.fregions
    in
    pf.pf_blocks <-
      Array.of_list
        (List.map
           (fun (b : Ir.block) ->
             let irs = Array.of_list b.Ir.instrs in
             {
               pb_label = b.Ir.label;
               pb_instrs = Array.map (prep_instr ~global_slots ~declared ~funcs) irs;
               pb_irs = irs;
               pb_costs = Array.map (fun (i : Ir.instr) -> Costmodel.instr_cost i.Ir.desc) irs;
               pb_term = prep_term ~label_idx b.Ir.term;
               pb_region =
                 (match region_of b.Ir.label with
                 | Some r ->
                     Some
                       ( r,
                         List.map
                           (fun (set, ops) ->
                             (set, Array.of_list (List.map prep_operand ops)))
                           r.Ir.rrefs )
                 | None -> None);
             })
           blocks);
    match Hashtbl.find_opt label_idx f.Ir.entry with
    | Some i -> pf.pf_entry <- i
    | None -> Diag.error "internal: function '%s' has no entry block" f.Ir.fname
  in
  Hashtbl.iter fill funcs;
  {
    p_prog = prog;
    p_funcs = funcs;
    p_main = Hashtbl.find_opt funcs "main";
    p_global_slots = global_slots;
    p_global_names = global_names;
    p_global_init = global_init;
    p_global_defined = global_defined;
  }

(* ------------------------------------------------------------------ *)
(* Executors                                                           *)
(* ------------------------------------------------------------------ *)

type exec = {
  ex_prepared : t;
  ex_state : state;
  ex_hooks : Interp.hooks option;
  ex_fuel0 : int;  (** initial fuel, for the steps-retired accessor *)
}

let executor ?hooks ?(fuel = Interp.default_fuel) ?(machine = Machine.create ()) (p : t) :
    exec =
  let st =
    {
      st_machine = machine;
      st_globals = Array.copy p.p_global_init;
      st_gdefined = Array.copy p.p_global_defined;
      st_fuel = fuel;
      st_total = 0.;
    }
  in
  (machine.Machine.emit <-
     (match hooks with
     | None -> fun s -> Machine.default_emit machine s
     | Some h ->
         fun s ->
           Machine.default_emit machine s;
           h.Interp.on_output s));
  { ex_prepared = p; ex_state = st; ex_hooks = hooks; ex_fuel0 = fuel }

let machine ex = ex.ex_state.st_machine
let total_cost ex = ex.ex_state.st_total
let steps ex = ex.ex_fuel0 - ex.ex_state.st_fuel

(** Live global bindings, as the reference's globals hashtable would
    hold them (declared globals plus any undeclared names created by an
    executed store). *)
let globals ex : (string * Value.t) list =
  let names = ex.ex_prepared.p_global_names in
  let st = ex.ex_state in
  let acc = ref [] in
  for i = Array.length names - 1 downto 0 do
    if st.st_gdefined.(i) then acc := (names.(i), st.st_globals.(i)) :: !acc
  done;
  !acc

(* ---- fast path (no hooks) ------------------------------------------ *)

let rec f_args bargs regs i n =
  if i >= n then [] else bargs.(i) regs :: f_args bargs regs (i + 1) n

let rec f_exec_call st (callee : pfunc) (cargs : opf array) caller_regs : Value.t =
  let regs = Array.make callee.pf_nregs (Value.Vint 0) in
  let params = callee.pf_params in
  let np = Array.length params in
  if Array.length cargs < np then
    Diag.error "runtime: missing argument %d of %s" (Array.length cargs)
      callee.pf_ir.Ir.fname;
  for i = 0 to np - 1 do
    regs.(params.(i)) <- cargs.(i) caller_regs
  done;
  f_run st callee regs callee.pf_entry

and f_run st (pf : pfunc) regs bidx : Value.t =
  if st.st_fuel <= 0 then raise Interp.Out_of_fuel;
  st.st_fuel <- st.st_fuel - 1;
  if bidx < 0 then ignore (Ir.block pf.pf_ir (-1 - bidx)) (* raises Not_found *);
  let b = Array.unsafe_get pf.pf_blocks bidx in
  let instrs = b.pb_instrs and costs = b.pb_costs in
  for k = 0 to Array.length instrs - 1 do
    if st.st_fuel <= 0 then raise Interp.Out_of_fuel;
    st.st_fuel <- st.st_fuel - 1;
    st.st_total <- st.st_total +. Array.unsafe_get costs k;
    match Array.unsafe_get instrs k with
    | Psimple f -> f st regs
    | Pbuiltin { bi; bargs; bdst } ->
        let v, cost =
          bi.Builtins.impl st.st_machine (f_args bargs regs 0 (Array.length bargs))
        in
        st.st_total <- st.st_total +. cost;
        if bdst >= 0 then regs.(bdst) <- v
    | Pcall { ccallee; cargs; cdst; _ } ->
        let v = f_exec_call st ccallee cargs regs in
        if cdst >= 0 then regs.(cdst) <- v
  done;
  st.st_total <- st.st_total +. Costmodel.terminator_cost;
  match b.pb_term with
  | Pjump j -> f_run st pf regs j
  | Pbranch (c, l1, l2) -> (
      match regs.(c) with
      | Value.Vbool true -> f_run st pf regs l1
      | Value.Vbool false -> f_run st pf regs l2
      | v ->
          ignore (Value.to_bool ~what:"branch condition" v);
          assert false)
  | Pbranch_raise fop ->
      ignore (Value.to_bool ~what:"branch condition" (fop regs));
      assert false
  | Pret_reg r -> regs.(r)
  | Pret_const v -> v
  | Pret_none -> Value.Vint 0

(* ---- coarse path (block-grained hooks) ------------------------------ *)

(* Runs like the fast path but fires the function- and block-level
   subset of the hooks: [on_enter_func], [on_exit_func], [on_block]
   (plus [on_output] via the machine). Per-instruction hooks
   ([on_instr], [on_base_cost], [on_builtin]) and actuals hooks
   ([on_region_enter], [on_call_actuals]) never fire; observers that
   only need running cost read {!total_cost}, which advances through
   the same per-instruction charges as the other two paths. The
   profiler's block-segment attribution is the intended client. *)
let rec c_exec_call st (h : Interp.hooks) (callee : pfunc) (cargs : opf array)
    caller_regs : Value.t =
  h.Interp.on_enter_func callee.pf_ir;
  let regs = Array.make callee.pf_nregs (Value.Vint 0) in
  let params = callee.pf_params in
  let np = Array.length params in
  if Array.length cargs < np then
    Diag.error "runtime: missing argument %d of %s" (Array.length cargs)
      callee.pf_ir.Ir.fname;
  for i = 0 to np - 1 do
    regs.(params.(i)) <- cargs.(i) caller_regs
  done;
  let v = c_run st h callee regs callee.pf_entry in
  h.Interp.on_exit_func callee.pf_ir;
  v

and c_run st h (pf : pfunc) regs bidx : Value.t =
  if st.st_fuel <= 0 then raise Interp.Out_of_fuel;
  st.st_fuel <- st.st_fuel - 1;
  if bidx < 0 then begin
    h.Interp.on_block pf.pf_ir (-1 - bidx);
    ignore (Ir.block pf.pf_ir (-1 - bidx)) (* raises Not_found like the reference *)
  end;
  let b = Array.unsafe_get pf.pf_blocks bidx in
  h.Interp.on_block pf.pf_ir b.pb_label;
  let instrs = b.pb_instrs and costs = b.pb_costs in
  for k = 0 to Array.length instrs - 1 do
    if st.st_fuel <= 0 then raise Interp.Out_of_fuel;
    st.st_fuel <- st.st_fuel - 1;
    st.st_total <- st.st_total +. Array.unsafe_get costs k;
    match Array.unsafe_get instrs k with
    | Psimple f -> f st regs
    | Pbuiltin { bi; bargs; bdst } ->
        let v, cost =
          bi.Builtins.impl st.st_machine (f_args bargs regs 0 (Array.length bargs))
        in
        st.st_total <- st.st_total +. cost;
        if bdst >= 0 then regs.(bdst) <- v
    | Pcall { ccallee; cargs; cdst; _ } ->
        let v = c_exec_call st h ccallee cargs regs in
        if cdst >= 0 then regs.(cdst) <- v
  done;
  st.st_total <- st.st_total +. Costmodel.terminator_cost;
  match b.pb_term with
  | Pjump j -> c_run st h pf regs j
  | Pbranch (c, l1, l2) -> (
      match regs.(c) with
      | Value.Vbool true -> c_run st h pf regs l1
      | Value.Vbool false -> c_run st h pf regs l2
      | v ->
          ignore (Value.to_bool ~what:"branch condition" v);
          assert false)
  | Pbranch_raise fop ->
      ignore (Value.to_bool ~what:"branch condition" (fop regs));
      assert false
  | Pret_reg r -> regs.(r)
  | Pret_const v -> v
  | Pret_none -> Value.Vint 0

(* ---- instrumented path (hook-faithful) ------------------------------ *)

let rec i_exec_func st (h : Interp.hooks) (pf : pfunc) (args : Value.t list) : Value.t =
  h.Interp.on_enter_func pf.pf_ir;
  let regs = Array.make pf.pf_nregs (Value.Vint 0) in
  let params = pf.pf_params in
  let np = Array.length params in
  let rec bind i args =
    if i >= np then ()
    else
      match args with
      | v :: args ->
          regs.(params.(i)) <- v;
          bind (i + 1) args
      | [] -> Diag.error "runtime: missing argument %d of %s" i pf.pf_ir.Ir.fname
  in
  bind 0 args;
  let v = i_run st h pf regs pf.pf_entry in
  h.Interp.on_exit_func pf.pf_ir;
  v

and i_run st h (pf : pfunc) regs bidx : Value.t =
  if st.st_fuel <= 0 then raise Interp.Out_of_fuel;
  st.st_fuel <- st.st_fuel - 1;
  if bidx < 0 then begin
    h.Interp.on_block pf.pf_ir (-1 - bidx);
    ignore (Ir.block pf.pf_ir (-1 - bidx)) (* raises Not_found like the reference *)
  end;
  let b = pf.pf_blocks.(bidx) in
  h.Interp.on_block pf.pf_ir b.pb_label;
  (match b.pb_region with
  | Some (region, set_fns) ->
      let actuals =
        List.map
          (fun (set, fns) -> (set, List.map (fun f -> f regs) (Array.to_list fns)))
          set_fns
      in
      h.Interp.on_region_enter pf.pf_ir region actuals regs
  | None -> ());
  let instrs = b.pb_instrs and costs = b.pb_costs and irs = b.pb_irs in
  for k = 0 to Array.length instrs - 1 do
    if st.st_fuel <= 0 then raise Interp.Out_of_fuel;
    st.st_fuel <- st.st_fuel - 1;
    h.Interp.on_instr pf.pf_ir irs.(k);
    let c = costs.(k) in
    st.st_total <- st.st_total +. c;
    h.Interp.on_base_cost c;
    match instrs.(k) with
    | Psimple f -> f st regs
    | Pbuiltin { bi; bargs; bdst } ->
        let argv = f_args bargs regs 0 (Array.length bargs) in
        let v, cost = bi.Builtins.impl st.st_machine argv in
        (* builtin cost is reported through its own hook, not on_base_cost *)
        st.st_total <- st.st_total +. cost;
        h.Interp.on_builtin bi cost;
        if bdst >= 0 then regs.(bdst) <- v
    | Pcall { ccallee; cargs; cdst; cir; cenabled } ->
        let argv = f_args cargs regs 0 (Array.length cargs) in
        let en_actuals =
          List.map
            (fun (block, sets) ->
              ( block,
                List.map
                  (fun (set, fns) -> (set, List.map (fun f -> f regs) (Array.to_list fns)))
                  sets ))
            cenabled
        in
        h.Interp.on_call_actuals cir argv en_actuals;
        let v = i_exec_func st h ccallee argv in
        if cdst >= 0 then regs.(cdst) <- v
  done;
  let c = Costmodel.terminator_cost in
  st.st_total <- st.st_total +. c;
  h.Interp.on_base_cost c;
  match b.pb_term with
  | Pjump j -> i_run st h pf regs j
  | Pbranch (c, l1, l2) -> (
      match regs.(c) with
      | Value.Vbool true -> i_run st h pf regs l1
      | Value.Vbool false -> i_run st h pf regs l2
      | v ->
          ignore (Value.to_bool ~what:"branch condition" v);
          assert false)
  | Pbranch_raise fop ->
      ignore (Value.to_bool ~what:"branch condition" (fop regs));
      assert false
  | Pret_reg r -> regs.(r)
  | Pret_const v -> v
  | Pret_none -> Value.Vint 0

(* ---- entry ---------------------------------------------------------- *)

(** Run [main()] to completion; returns total simulated cycles. The
    executor keeps the machine, globals, and running total for
    inspection afterwards. *)
let run_main (ex : exec) : float =
  match ex.ex_prepared.p_main with
  | None -> Diag.error "program has no 'main' function"
  | Some mainf ->
      let st = ex.ex_state in
      let fuel_before = st.st_fuel in
      Metrics.incr m_exec_runs;
      Fun.protect
        ~finally:(fun () -> Metrics.add m_steps (fuel_before - st.st_fuel))
        (fun () ->
          match ex.ex_hooks with
          | None -> ignore (f_exec_call st mainf [||] [||])
          | Some h -> ignore (i_exec_func st h mainf []));
      st.st_total

(* ------------------------------------------------------------------ *)
(* Real-execution support                                              *)
(* ------------------------------------------------------------------ *)

(* The real multicore backend (lib/exec) splits one prepared program
   between a coordinator domain and worker domains. The coordinator runs
   the whole program but, inside the target loop, executes only the
   "backbone": the backward slice of the loop-control condition (the
   induction arithmetic, plus read-only builtins like [graph_next] that
   feed a loop-carried control register). At each header entry where the
   loop continues it hands the live register file to [on_iter]; workers
   then execute the full iteration body — every skipped instruction —
   against the shared machine and global slots. The functions below are
   deliberately conservative: [plan_real] rejects any loop shape whose
   backbone cannot be proven to live entirely in the header and the
   single latch block, and the caller falls back to another engine. *)

type rtarget = {
  rt_pf : pfunc;
  rt_fname : string;
  rt_header : int;
  rt_body_entry : int;
  rt_in_loop : bool array;  (** per block index of [rt_pf] *)
  rt_spine : (int * bool array) list;
      (** latch blocks the coordinator executes after dispatch, with a
          per-instruction backbone mask *)
  rt_backbone : int list;  (** iids the coordinator executes inside the loop *)
}

let rtarget_backbone rt = rt.rt_backbone
let rtarget_nregs rt = rt.rt_pf.pf_nregs
let rtarget_fname rt = rt.rt_fname

let instr_def (i : Ir.instr) : int option =
  match i.Ir.desc with
  | Ir.Move (r, _) | Ir.Binop (_, _, r, _, _) | Ir.Unop (_, _, r, _)
  | Ir.Load_global (r, _) | Ir.Load_index (r, _, _) ->
      Some r
  | Ir.Call { dst; _ } -> dst
  | Ir.Store_global _ | Ir.Store_index _ -> None

let instr_uses (i : Ir.instr) : int list =
  let op acc = function Ir.Reg r -> r :: acc | Ir.Const _ -> acc in
  match i.Ir.desc with
  | Ir.Move (_, o) -> op [] o
  | Ir.Binop (_, _, _, a, b) -> op (op [] a) b
  | Ir.Unop (_, _, _, a) -> op [] a
  | Ir.Load_global _ -> []
  | Ir.Store_global (_, o) -> op [] o
  | Ir.Load_index (_, a, ix) -> op (op [] a) ix
  | Ir.Store_index (a, ix, v) -> op (op (op [] a) ix) v
  | Ir.Call { args; _ } -> List.fold_left op [] args

let plan_real (p : t) ~(fname : string) ~(header : Ir.label)
    ~(latches : Ir.label list) ~(body : Ir.label list) : (rtarget, string) result =
  let ( let* ) r f = Result.bind r f in
  let* pf =
    match Hashtbl.find_opt p.p_funcs fname with
    | Some pf -> Ok pf
    | None -> Error (Printf.sprintf "no function '%s'" fname)
  in
  let nblocks = Array.length pf.pf_blocks in
  let idx_of = Hashtbl.create 16 in
  Array.iteri (fun i (b : pblock) -> Hashtbl.replace idx_of b.pb_label i) pf.pf_blocks;
  let* header_idx =
    match Hashtbl.find_opt idx_of header with
    | Some i -> Ok i
    | None -> Error "header block not found"
  in
  let in_loop = Array.make nblocks false in
  List.iter
    (fun l -> match Hashtbl.find_opt idx_of l with Some i -> in_loop.(i) <- true | None -> ())
    body;
  let* latch_idx =
    match latches with
    | [ l ] -> (
        match Hashtbl.find_opt idx_of l with
        | Some i -> Ok i
        | None -> Error "latch block not found")
    | _ -> Error "loop has multiple latches"
  in
  (* the latch must fall through to the header unconditionally, so the
     coordinator's spine is straight-line per iteration *)
  let* () =
    match pf.pf_blocks.(latch_idx).pb_term with
    | Pjump j when j = header_idx -> Ok ()
    | _ -> Error "latch does not jump unconditionally to the header"
  in
  let* cond =
    match pf.pf_blocks.(header_idx).pb_term with
    | Pbranch (c, t1, t2) ->
        let inl i = i >= 0 && i < nblocks && in_loop.(i) in
        if inl t1 && not (inl t2) then Ok (c, t1, t2)
        else if inl t2 && not (inl t1) then Ok (c, t1, t2)
        else Error "header branch does not separate loop body from exit"
    | _ -> Error "header terminator is not a two-way branch"
  in
  let c, t1, t2 = cond in
  let body_entry = if t1 >= 0 && t1 < nblocks && in_loop.(t1) then t1 else t2 in
  (* backward slice of the loop condition over in-loop instructions *)
  let loop_instrs =
    let acc = ref [] in
    Array.iteri
      (fun bi (b : pblock) ->
        if in_loop.(bi) then
          Array.iter (fun (i : Ir.instr) -> acc := (bi, i) :: !acc) b.pb_irs)
      pf.pf_blocks;
    List.rev !acc
  in
  let needed = Hashtbl.create 16 in
  Hashtbl.replace needed c ();
  let backbone : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun ((_, i) : int * Ir.instr) ->
        if not (Hashtbl.mem backbone i.Ir.iid) then
          match instr_def i with
          | Some r when Hashtbl.mem needed r ->
              Hashtbl.replace backbone i.Ir.iid ();
              List.iter
                (fun u ->
                  if not (Hashtbl.mem needed u) then begin
                    Hashtbl.replace needed u ();
                    changed := true
                  end)
                (instr_uses i);
              changed := true
          | _ -> ())
      loop_instrs
  done;
  (* globals stored inside the loop, for the backbone purity check *)
  let loop_stored_globals = Hashtbl.create 8 in
  List.iter
    (fun ((_, i) : int * Ir.instr) ->
      match i.Ir.desc with
      | Ir.Store_global (g, _) -> Hashtbl.replace loop_stored_globals g ()
      | _ -> ())
    loop_instrs;
  let check_backbone_instr ((bi, i) : int * Ir.instr) : (unit, string) result =
    if not (Hashtbl.mem backbone i.Ir.iid) then Ok ()
    else if bi <> header_idx && bi <> latch_idx then
      Error "loop-control slice escapes the header and latch blocks"
    else
      match i.Ir.desc with
      | Ir.Load_global (_, g) when Hashtbl.mem loop_stored_globals g ->
          Error "loop condition reads a global written in the loop body"
      | Ir.Call { callee; _ } -> (
          match Builtins.find callee with
          | Some b when b.Builtins.spec.Commset_analysis.Effects.bs_writes = [] -> Ok ()
          | Some _ -> Error "loop-control slice calls a machine-writing builtin"
          | None -> Error "loop-control slice calls a user function")
      | _ -> Ok ()
  in
  let* () =
    List.fold_left
      (fun acc bi -> Result.bind acc (fun () -> check_backbone_instr bi))
      (Ok ()) loop_instrs
  in
  (* every header instruction must be backbone: workers never execute the
     header, so anything else there would be lost *)
  let* () =
    if
      Array.for_all
        (fun (i : Ir.instr) -> Hashtbl.mem backbone i.Ir.iid)
        pf.pf_blocks.(header_idx).pb_irs
    then Ok ()
    else Error "header block contains non-loop-control work"
  in
  (* live-out check: a register written by a skipped (non-backbone) loop
     instruction must not be read after the loop — the coordinator's
     copy would be stale *)
  let skipped_defs = Hashtbl.create 16 in
  List.iter
    (fun ((_, i) : int * Ir.instr) ->
      if not (Hashtbl.mem backbone i.Ir.iid) then
        match instr_def i with Some r -> Hashtbl.replace skipped_defs r () | None -> ())
    loop_instrs;
  let live_out_violation = ref false in
  Array.iteri
    (fun bi (b : pblock) ->
      if not in_loop.(bi) then begin
        Array.iter
          (fun (i : Ir.instr) ->
            List.iter
              (fun u -> if Hashtbl.mem skipped_defs u then live_out_violation := true)
              (instr_uses i))
          b.pb_irs;
        match b.pb_term with
        | Pbranch (r, _, _) | Pret_reg r ->
            if Hashtbl.mem skipped_defs r then live_out_violation := true
        | _ -> ()
      end)
    pf.pf_blocks;
  let* () =
    if !live_out_violation then
      Error "a register written in the loop body is read after the loop"
    else Ok ()
  in
  let spine =
    if latch_idx = header_idx then []
    else
      [
        ( latch_idx,
          Array.map
            (fun (i : Ir.instr) -> Hashtbl.mem backbone i.Ir.iid)
            pf.pf_blocks.(latch_idx).pb_irs );
      ]
  in
  Ok
    {
      rt_pf = pf;
      rt_fname = fname;
      rt_header = header_idx;
      rt_body_entry = body_entry;
      rt_in_loop = in_loop;
      rt_spine = spine;
      rt_backbone = Hashtbl.fold (fun iid () acc -> iid :: acc) backbone [];
    }

(* ---- typed iteration-body IR view (codegen input) ------------------- *)

(* The codegen backend re-translates the iteration body from the
   original [Ir.instr]s, but it must agree with the *prepared* form on
   everything the prepare pass resolved: block indices, per-instruction
   static costs, global slot numbers, and the declared/undeclared
   global split. The view below exposes exactly those resolutions,
   keeping the prepared closures themselves private. *)

type view_term =
  | Vjump of int
  | Vbranch of int * int * int
  | Vbranch_const of Value.t
      (** non-bool constant branch condition: traps like the reference *)
  | Vret_reg of int
  | Vret_const of Value.t
  | Vret_none

type view_block = {
  vb_label : Ir.label;
  vb_instrs : Ir.instr array;
  vb_costs : float array;  (** parallel static {!Costmodel.instr_cost}s *)
  vb_term : view_term;
}

type view_func = {
  vf_name : string;
  vf_nregs : int;
  vf_params : int array;
  vf_entry : int;
  vf_blocks : view_block array;
}

let view_of_pfunc (pf : pfunc) : view_func =
  {
    vf_name = pf.pf_ir.Ir.fname;
    vf_nregs = pf.pf_nregs;
    vf_params = Array.copy pf.pf_params;
    vf_entry = pf.pf_entry;
    vf_blocks =
      Array.map
        (fun (b : pblock) ->
          {
            vb_label = b.pb_label;
            vb_instrs = b.pb_irs;
            vb_costs = b.pb_costs;
            vb_term =
              (match b.pb_term with
              | Pjump j -> Vjump j
              | Pbranch (c, l1, l2) -> Vbranch (c, l1, l2)
              | Pbranch_raise fop ->
                  (* only built from a [Const] operand, so the closure
                     ignores the register file *)
                  Vbranch_const (fop [||])
              | Pret_reg r -> Vret_reg r
              | Pret_const v -> Vret_const v
              | Pret_none -> Vret_none);
          })
        pf.pf_blocks;
  }

let view_func (p : t) name : view_func option =
  Option.map view_of_pfunc (Hashtbl.find_opt p.p_funcs name)

let rtarget_view (rt : rtarget) : view_func = view_of_pfunc rt.rt_pf
let rtarget_header rt = rt.rt_header
let rtarget_body_entry rt = rt.rt_body_entry
let rtarget_in_loop rt = Array.copy rt.rt_in_loop
let global_slot (p : t) name = Hashtbl.find_opt p.p_global_slots name

let global_declared (p : t) name =
  List.exists (fun (n, _, _) -> n = name) p.p_prog.Ir.prog_globals

(* ---- coordinator ---------------------------------------------------- *)

(* One block's instructions on the fast path, optionally masked; the
   terminator is left to the caller. *)
let x_block st (pf : pfunc) regs bidx (mask : bool array option) exec_call =
  if st.st_fuel <= 0 then raise Interp.Out_of_fuel;
  st.st_fuel <- st.st_fuel - 1;
  if bidx < 0 then ignore (Ir.block pf.pf_ir (-1 - bidx));
  let b = Array.unsafe_get pf.pf_blocks bidx in
  let instrs = b.pb_instrs and costs = b.pb_costs in
  for k = 0 to Array.length instrs - 1 do
    let keep = match mask with None -> true | Some m -> m.(k) in
    if keep then begin
      if st.st_fuel <= 0 then raise Interp.Out_of_fuel;
      st.st_fuel <- st.st_fuel - 1;
      st.st_total <- st.st_total +. Array.unsafe_get costs k;
      match Array.unsafe_get instrs k with
      | Psimple f -> f st regs
      | Pbuiltin { bi; bargs; bdst } ->
          let v, cost =
            bi.Builtins.impl st.st_machine (f_args bargs regs 0 (Array.length bargs))
          in
          st.st_total <- st.st_total +. cost;
          if bdst >= 0 then regs.(bdst) <- v
      | Pcall { ccallee; cargs; cdst; _ } ->
          let v = exec_call st ccallee cargs regs in
          if cdst >= 0 then regs.(cdst) <- v
    end
  done;
  st.st_total <- st.st_total +. Costmodel.terminator_cost;
  b.pb_term

let run_main_real (ex : exec) (rt : rtarget) ~(on_iter : int -> Value.t array -> unit)
    ~(on_loop_done : unit -> unit) : float =
  match ex.ex_prepared.p_main with
  | None -> Diag.error "program has no 'main' function"
  | Some mainf ->
      let st = ex.ex_state in
      let fuel_before = st.st_fuel in
      let iterc = ref 0 in
      let rec x_exec_call st (callee : pfunc) (cargs : opf array) caller_regs : Value.t =
        let regs = Array.make callee.pf_nregs (Value.Vint 0) in
        let params = callee.pf_params in
        let np = Array.length params in
        if Array.length cargs < np then
          Diag.error "runtime: missing argument %d of %s" (Array.length cargs)
            callee.pf_ir.Ir.fname;
        for i = 0 to np - 1 do
          regs.(params.(i)) <- cargs.(i) caller_regs
        done;
        x_run st callee regs callee.pf_entry
      and x_run st (pf : pfunc) regs bidx : Value.t =
        if pf == rt.rt_pf && bidx = rt.rt_header then x_loop st pf regs
        else
          let term = x_block st pf regs bidx None x_exec_call in
          x_term st pf regs term
      and x_term st pf regs = function
        | Pjump j -> x_run st pf regs j
        | Pbranch (c, l1, l2) -> (
            match regs.(c) with
            | Value.Vbool true -> x_run st pf regs l1
            | Value.Vbool false -> x_run st pf regs l2
            | v ->
                ignore (Value.to_bool ~what:"branch condition" v);
                assert false)
        | Pbranch_raise fop ->
            ignore (Value.to_bool ~what:"branch condition" (fop regs));
            assert false
        | Pret_reg r -> regs.(r)
        | Pret_const v -> v
        | Pret_none -> Value.Vint 0
      and x_loop st pf regs : Value.t =
        let rec go () =
          let term = x_block st pf regs rt.rt_header None x_exec_call in
          let tgt =
            match term with
            | Pbranch (c, l1, l2) -> (
                match regs.(c) with
                | Value.Vbool true -> l1
                | Value.Vbool false -> l2
                | v ->
                    ignore (Value.to_bool ~what:"branch condition" v);
                    assert false)
            | _ -> Diag.error "real-exec: header terminator changed shape"
          in
          if tgt = rt.rt_body_entry then begin
            on_iter !iterc regs;
            incr iterc;
            List.iter
              (fun (bidx, mask) -> ignore (x_block st pf regs bidx (Some mask) x_exec_call))
              rt.rt_spine;
            go ()
          end
          else begin
            on_loop_done ();
            x_run st pf regs tgt
          end
        in
        go ()
      in
      Metrics.incr m_exec_runs;
      Fun.protect
        ~finally:(fun () -> Metrics.add m_steps (fuel_before - st.st_fuel))
        (fun () -> ignore (x_exec_call st mainf [||] [||]));
      st.st_total

(* ---- workers -------------------------------------------------------- *)

type wstate = state

(** A worker's private execution state sharing the coordinator's machine
    and global slots: global slot writes are word-sized [Value.t] stores,
    so sharing the arrays is tear-free; coherence of the *values* is the
    real backend's job (frontier ordering / commset locks). *)
let worker_state (ex : exec) ~fuel : wstate =
  {
    st_machine = ex.ex_state.st_machine;
    st_globals = ex.ex_state.st_globals;
    st_gdefined = ex.ex_state.st_gdefined;
    st_fuel = fuel;
    st_total = 0.;
  }

let wstate_fuel_left (st : wstate) = st.st_fuel
let wstate_total (st : wstate) = st.st_total
let wstate_globals (st : wstate) = st.st_globals
let wstate_gdefined (st : wstate) = st.st_gdefined

let wstate_charge (st : wstate) ~steps ~cost =
  st.st_fuel <- st.st_fuel - steps;
  st.st_total <- st.st_total +. cost

let run_iteration (st : wstate) (rt : rtarget) ~(on_instr : Ir.instr -> unit)
    ~(builtin : Builtins.t -> Value.t list -> has_dst:bool -> Value.t * float)
    (regs : Value.t array) : unit =
  let rec w_exec_call st (callee : pfunc) (cargs : opf array) caller_regs : Value.t =
    let cregs = Array.make callee.pf_nregs (Value.Vint 0) in
    let params = callee.pf_params in
    let np = Array.length params in
    if Array.length cargs < np then
      Diag.error "runtime: missing argument %d of %s" (Array.length cargs)
        callee.pf_ir.Ir.fname;
    for i = 0 to np - 1 do
      cregs.(params.(i)) <- cargs.(i) caller_regs
    done;
    w_nested st callee cregs callee.pf_entry
  (* nested calls run whole functions: builtins stay intercepted, but
     node tracking ([on_instr]) stays at target-function depth — callee
     work belongs to the calling node *)
  and w_nested st (pf : pfunc) regs bidx : Value.t =
    if st.st_fuel <= 0 then raise Interp.Out_of_fuel;
    st.st_fuel <- st.st_fuel - 1;
    if bidx < 0 then ignore (Ir.block pf.pf_ir (-1 - bidx));
    let b = Array.unsafe_get pf.pf_blocks bidx in
    let instrs = b.pb_instrs and costs = b.pb_costs in
    for k = 0 to Array.length instrs - 1 do
      if st.st_fuel <= 0 then raise Interp.Out_of_fuel;
      st.st_fuel <- st.st_fuel - 1;
      st.st_total <- st.st_total +. Array.unsafe_get costs k;
      match Array.unsafe_get instrs k with
      | Psimple f -> f st regs
      | Pbuiltin { bi; bargs; bdst } ->
          let argv = f_args bargs regs 0 (Array.length bargs) in
          let v, cost = builtin bi argv ~has_dst:(bdst >= 0) in
          st.st_total <- st.st_total +. cost;
          if bdst >= 0 then regs.(bdst) <- v
      | Pcall { ccallee; cargs; cdst; _ } ->
          let v = w_exec_call st ccallee cargs regs in
          if cdst >= 0 then regs.(cdst) <- v
    done;
    st.st_total <- st.st_total +. Costmodel.terminator_cost;
    match b.pb_term with
    | Pjump j -> w_nested st pf regs j
    | Pbranch (c, l1, l2) -> (
        match regs.(c) with
        | Value.Vbool true -> w_nested st pf regs l1
        | Value.Vbool false -> w_nested st pf regs l2
        | v ->
            ignore (Value.to_bool ~what:"branch condition" v);
            assert false)
    | Pbranch_raise fop ->
        ignore (Value.to_bool ~what:"branch condition" (fop regs));
        assert false
    | Pret_reg r -> regs.(r)
    | Pret_const v -> v
    | Pret_none -> Value.Vint 0
  in
  let pf = rt.rt_pf in
  let nblocks = Array.length pf.pf_blocks in
  let rec span bidx =
    if st.st_fuel <= 0 then raise Interp.Out_of_fuel;
    st.st_fuel <- st.st_fuel - 1;
    let b = Array.unsafe_get pf.pf_blocks bidx in
    let instrs = b.pb_instrs and costs = b.pb_costs and irs = b.pb_irs in
    for k = 0 to Array.length instrs - 1 do
      if st.st_fuel <= 0 then raise Interp.Out_of_fuel;
      st.st_fuel <- st.st_fuel - 1;
      st.st_total <- st.st_total +. Array.unsafe_get costs k;
      on_instr (Array.unsafe_get irs k);
      match Array.unsafe_get instrs k with
      | Psimple f -> f st regs
      | Pbuiltin { bi; bargs; bdst } ->
          let argv = f_args bargs regs 0 (Array.length bargs) in
          let v, cost = builtin bi argv ~has_dst:(bdst >= 0) in
          st.st_total <- st.st_total +. cost;
          if bdst >= 0 then regs.(bdst) <- v
      | Pcall { ccallee; cargs; cdst; _ } ->
          let v = w_exec_call st ccallee cargs regs in
          if cdst >= 0 then regs.(cdst) <- v
    done;
    st.st_total <- st.st_total +. Costmodel.terminator_cost;
    let continue_to tgt =
      if tgt = rt.rt_header then ()
      else if tgt >= 0 && tgt < nblocks && rt.rt_in_loop.(tgt) then span tgt
      else Diag.error "real-exec: iteration escaped the target loop"
    in
    match b.pb_term with
    | Pjump j -> continue_to j
    | Pbranch (c, l1, l2) -> (
        match regs.(c) with
        | Value.Vbool true -> continue_to l1
        | Value.Vbool false -> continue_to l2
        | v ->
            ignore (Value.to_bool ~what:"branch condition" v);
            assert false)
    | Pbranch_raise fop ->
        ignore (Value.to_bool ~what:"branch condition" (fop regs));
        assert false
    | Pret_reg _ | Pret_const _ | Pret_none ->
        Diag.error "real-exec: iteration returned out of the target loop"
  in
  span rt.rt_body_entry

(** Like {!run_main}, but an executor with hooks runs on the coarse
    path: only [on_enter_func], [on_exit_func], [on_block] and
    [on_output] fire (per-instruction and actuals hooks are skipped),
    while {!total_cost} still advances per instruction. Block-grained
    observers — the profiler — get fast-path speed this way. *)
let run_main_coarse (ex : exec) : float =
  match ex.ex_prepared.p_main with
  | None -> Diag.error "program has no 'main' function"
  | Some mainf ->
      let st = ex.ex_state in
      let fuel_before = st.st_fuel in
      Metrics.incr m_exec_runs;
      Fun.protect
        ~finally:(fun () -> Metrics.add m_steps (fuel_before - st.st_fuel))
        (fun () ->
          match ex.ex_hooks with
          | None -> ignore (f_exec_call st mainf [||] [||])
          | Some h -> ignore (c_exec_call st h mainf [||] [||]));
      st.st_total
