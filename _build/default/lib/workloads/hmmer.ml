(** 456.hmmer — biological sequence analysis (paper §5.1).

    Every iteration generates a protein sequence via an RNG, scores it
    with a dynamic-programming matrix from a shared allocator, folds the
    score into a histogram, and frees the matrix. COMMSET annotations,
    following the paper:

    (a) the application's own RNG (a global-seed LCG) is in a SELF commset (any permutation of a random
        sequence preserves the distribution);
    (b) the histogram update block is self-commuting (an abstract SUM);
    (c) the matrix allocation and deallocation blocks commute with
        themselves and each other on separate iterations (a predicated
        group + predicated self set). *)

let n_seqs = 220
let seq_len = 12
let n_states = 7

let source =
  Printf.sprintf
    {|
// 456.hmmer: HMM sequence scoring
#pragma commset decl AGROUP group
#pragma commset decl ASELF self
#pragma commset predicate AGROUP (a1) (a2) (a1 != a2)
#pragma commset predicate ASELF (b1) (b2) (b1 != b2)

int seed = 42;

#pragma commset member SELF
int gen_base(int bound) {
  // the application's own linear congruential generator (sre_random):
  // it updates a global seed, so it is NOT an internally-synchronized
  // library and the compiler must lock it
  seed = (seed * 25173 + 13849) %% 65536;
  seed = (seed * 65 + 17) %% 65521;
  seed = (seed * 9301 + 49297) %% 65536;
  return seed %% bound;
}

float score_sequence(int[] seq, float[] mat, int states, int seqlen) {
  for (int j = 0; j < seqlen; j++) {
    for (int k = 0; k < states; k++) {
      int idx = j * states + k;
      float prev = 0.0;
      if (j > 0) {
        prev = mat[(j - 1) * states + ((k + seq[j]) %% states)];
      }
      float emit = int_to_float((seq[j] * 7 + k * 3) %% 13) / 13.0;
      if (prev > emit) {
        mat[idx] = prev + emit * 0.5;
      } else {
        mat[idx] = emit + prev * 0.5;
      }
    }
  }
  float best = 0.0;
  for (int k = 0; k < states; k++) {
    float v = mat[(seqlen - 1) * states + k];
    if (v > best) {
      best = v;
    }
  }
  return best / int_to_float(seqlen);
}

void main() {
  int nseqs = %d;
  int seqlen = %d;
  int states = %d;
  for (int i = 0; i < nseqs; i++) {
    // generated protein sequences vary in length
    int len = (seqlen / 2) + ((i * 7) %% seqlen);
    int[] seq = iarray(len);
    for (int j = 0; j < len; j++) {
      seq[j] = gen_base(20);
    }
    float[] mat = farray(1);
    #pragma commset member AGROUP(i), ASELF(i)
    {
      mat = matrix_alloc(len * states);
    }
    float score = score_sequence(seq, mat, states, len);
    #pragma commset member SELF
    {
      hist_add(score);
    }
    #pragma commset member AGROUP(i), ASELF(i)
    {
      matrix_free(mat);
    }
  }
  print(hist_summary());
}
|}
    n_seqs seq_len n_states

let workload : Workload.t =
  {
    Workload.wname = "hmmer";
    paper_name = "456.hmmer";
    description = "HMM biosequence scoring with RNG, shared allocator, and histogram";
    source;
    variants = [];
    setup = (fun _ -> ());
    paper_best_scheme = "DOALL + Spin";
    paper_best_speedup = 5.8;
    paper_annotations = 9;
    paper_sloc = 20658;
    paper_loop_fraction = 0.99;
    paper_features = [ "PC"; "C"; "I"; "S"; "G" ];
    paper_transforms = [ "DOALL"; "PS-DSWP" ];
  }
