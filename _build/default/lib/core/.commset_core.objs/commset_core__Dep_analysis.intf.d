lib/core/dep_analysis.mli: Commset_analysis Commset_pdg Metadata
