lib/transforms/doall.ml: Array Commset_pdg Commset_runtime List Plan Printf Sync
