lib/runtime/interp.ml: Array Builtins Commset_ir Commset_lang Commset_support Costmodel Diag Hashtbl List Machine Option Value
