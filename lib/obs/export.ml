(** Chrome trace-event exporters; see the interface. *)

type arg = Astr of string | Aint of int | Afloat of float

type event =
  | Complete of {
      pid : int;
      tid : int;
      name : string;
      cat : string;
      ts : float;
      dur : float;
      args : (string * arg) list;
    }
  | Instant of {
      pid : int;
      tid : int;
      name : string;
      cat : string;
      ts : float;
      args : (string * arg) list;
    }
  | Counter of { pid : int; tid : int; name : string; ts : float; series : (string * float) list }
  | Process_name of { pid : int; name : string }
  | Thread_name of { pid : int; tid : int; name : string }

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let of_recorder ?(pid = 0) (spans : Recorder.span list) : event list =
  match spans with
  | [] -> []
  | _ ->
      let base = List.fold_left (fun acc s -> min acc s.Recorder.t0_ns) infinity spans in
      let doms = List.sort_uniq compare (List.map (fun s -> s.Recorder.dom) spans) in
      Process_name { pid; name = "real time (monotonic clock)" }
      :: List.map (fun d -> Thread_name { pid; tid = d; name = Printf.sprintf "domain %d" d }) doms
      @ List.map
          (fun (s : Recorder.span) ->
            Complete
              {
                pid;
                tid = s.Recorder.dom;
                name = s.Recorder.name;
                cat = (if s.Recorder.cat = "" then "span" else s.Recorder.cat);
                ts = (s.Recorder.t0_ns -. base) /. 1e3;
                dur = (s.Recorder.t1_ns -. s.Recorder.t0_ns) /. 1e3;
                args = [ ("id", Aint s.Recorder.sid); ("depth", Aint s.Recorder.depth) ];
              })
          spans

let of_attrib ?(pid = 0) ?base_ns (s : Attrib.summary) : event list =
  let samples = List.filter (fun (_, a) -> Array.length a > 0) s.Attrib.a_samples in
  match samples with
  | [] -> []
  | _ ->
      let base =
        match base_ns with
        | Some b -> b
        | None ->
            List.fold_left (fun acc (_, a) -> min acc a.(0).Attrib.s_t_ns) infinity samples
      in
      let counter wi (sm : Attrib.sample) =
        Counter
          {
            pid;
            tid = 1000 + wi;
            name = Printf.sprintf "attrib worker %d (ms)" wi;
            ts = (sm.Attrib.s_t_ns -. base) /. 1e3;
            series =
              [
                ("dispatch_wait", sm.Attrib.s_dispatch /. 1e6);
                ("lock_wait", sm.Attrib.s_lock /. 1e6);
                ("frontier_wait", sm.Attrib.s_frontier /. 1e6);
                ("builtin", sm.Attrib.s_builtin /. 1e6);
                ("compute", sm.Attrib.s_compute /. 1e6);
              ];
          }
      in
      List.concat_map
        (fun (wi, a) ->
          Thread_name { pid; tid = 1000 + wi; name = Printf.sprintf "attrib worker %d" wi }
          :: List.map (counter wi) (Array.to_list a))
        samples

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let of_sim_timelines ~pid ~name (timelines : (float * float * string) list array) : event list
    =
  let events = ref [] in
  Array.iteri
    (fun tid intervals ->
      events := Thread_name { pid; tid; name = Printf.sprintf "sim thread %d" tid } :: !events;
      List.iter
        (fun (start, stop, tag) ->
          let cat =
            if has_prefix ~prefix:"wait:" tag then "wait"
            else if has_prefix ~prefix:"abort:" tag then "abort"
            else "sim"
          in
          events :=
            Complete { pid; tid; name = tag; cat; ts = start; dur = stop -. start; args = [] }
            :: !events)
        intervals)
    timelines;
  Process_name { pid; name = Printf.sprintf "virtual clock: %s" name } :: List.rev !events

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s = Buffer.add_string buf (Metrics.json_escape s)

(* trace-event timestamps: plain decimal, never scientific notation *)
let add_us buf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.3f" v)

let add_arg buf (k, a) =
  Buffer.add_char buf '"';
  add_escaped buf k;
  Buffer.add_string buf "\": ";
  match a with
  | Astr s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
  | Aint n -> Buffer.add_string buf (string_of_int n)
  | Afloat v -> add_us buf v

let add_args buf = function
  | [] -> ()
  | args ->
      Buffer.add_string buf ", \"args\": { ";
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_string buf ", ";
          add_arg buf a)
        args;
      Buffer.add_string buf " }"

let add_common buf ~ph ~pid ~tid ~name ~cat ~ts =
  Buffer.add_string buf (Printf.sprintf "{ \"ph\": \"%s\", \"pid\": %d, \"tid\": %d" ph pid tid);
  (match name with
  | Some n ->
      Buffer.add_string buf ", \"name\": \"";
      add_escaped buf n;
      Buffer.add_char buf '"'
  | None -> ());
  (match cat with
  | Some c ->
      Buffer.add_string buf ", \"cat\": \"";
      add_escaped buf c;
      Buffer.add_char buf '"'
  | None -> ());
  match ts with
  | Some t ->
      Buffer.add_string buf ", \"ts\": ";
      add_us buf t
  | None -> ()

let add_event buf = function
  | Complete { pid; tid; name; cat; ts; dur; args } ->
      add_common buf ~ph:"X" ~pid ~tid ~name:(Some name) ~cat:(Some cat) ~ts:(Some ts);
      Buffer.add_string buf ", \"dur\": ";
      add_us buf (Float.max 0. dur);
      add_args buf args;
      Buffer.add_string buf " }"
  | Instant { pid; tid; name; cat; ts; args } ->
      add_common buf ~ph:"i" ~pid ~tid ~name:(Some name) ~cat:(Some cat) ~ts:(Some ts);
      Buffer.add_string buf ", \"s\": \"t\"";
      add_args buf args;
      Buffer.add_string buf " }"
  | Counter { pid; tid; name; ts; series } ->
      add_common buf ~ph:"C" ~pid ~tid ~name:(Some name) ~cat:None ~ts:(Some ts);
      add_args buf (List.map (fun (k, v) -> (k, Afloat v)) series);
      Buffer.add_string buf " }"
  | Process_name { pid; name } ->
      add_common buf ~ph:"M" ~pid ~tid:0 ~name:(Some "process_name") ~cat:None ~ts:None;
      add_args buf [ ("name", Astr name) ];
      Buffer.add_string buf " }"
  | Thread_name { pid; tid; name } ->
      add_common buf ~ph:"M" ~pid ~tid ~name:(Some "thread_name") ~cat:None ~ts:None;
      add_args buf [ ("name", Astr name) ];
      Buffer.add_string buf " }"

let chrome_json (events : event list) : string =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{ \"traceEvents\": [";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n";
      add_event buf ev)
    events;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\" }\n";
  Buffer.contents buf
