(** The DOALL transform (paper §4.5): statically schedules iterations
    round-robin onto threads. Applicable when, after applying the
    commutativity annotations ([uco] edges erased, carried [ico] edges
    demoted to intra-iteration), the only remaining loop-carried
    dependences belong to the replicated loop-control slice (induction
    update and exit test). *)

module Pdg = Commset_pdg.Pdg
module Reduction = Commset_pdg.Reduction

type verdict = Applicable | Blocked of Pdg.edge list

let applicability ?(reductions = []) (pdg : Pdg.t) : verdict =
  let blocking =
    List.filter
      (fun (e : Pdg.edge) ->
        e.Pdg.carried
        && (let src = pdg.Pdg.nodes.(e.Pdg.esrc) in
            (* carried edges out of the replicated loop-control slice feed
               each thread's private copy of the induction state *)
            not src.Pdg.loop_control)
        && not (Reduction.edge_exempt reductions e)
        (* a recognized reduction runs on per-thread private accumulators
           combined after the loop *))
      (Pdg.effective_edges pdg)
  in
  if blocking = [] then Applicable else Blocked blocking

let applicable ?reductions pdg = applicability ?reductions pdg = Applicable

(** Build DOALL plans (one per synchronization variant) for [threads]. *)
let plans ?(reductions = []) (sync : Sync.t) (trace : Commset_runtime.Trace.t) (pdg : Pdg.t)
    ~threads ~uses_commset : Plan.t list =
  if not (applicable ~reductions pdg) then []
  else begin
    (* did the reductions matter? (for labelling only) *)
    let needed_reductions = not (applicable pdg) in
    let mk variant =
      let name =
        Printf.sprintf "%sDOALL%s + %s"
          (if uses_commset then "Comm-" else "")
          (if needed_reductions then "(red)" else "")
          (Plan.sync_variant_to_string variant)
      in
      {
        Plan.shape = Plan.Sdoall;
        threads;
        variant;
        node_locks = sync.Sync.node_locks;
        uses_commset;
        label = name;
        series = name;
        spec_ctx = None;
      }
    in
    if not (Sync.any_compiler_locks sync) then [ mk Plan.Lib ]
    else begin
      let base = [ mk Plan.Mutex; mk Plan.Spin ] in
      if Sync.tm_applicable sync trace then base @ [ mk Plan.Tm ] else base
    end
  end
