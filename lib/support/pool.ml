(** Fixed-size domain pool; see the interface for the contract.

    Implementation notes. The pool is a token budget, not a set of
    long-lived worker domains: each [parmap] call spawns at most
    [tokens available] short-lived domains that claim chunks of indices
    from a shared atomic counter and write results into a pre-sized
    untyped array (no per-item option boxing — parmap itself allocates
    O(workers), not O(items), on the shared major heap). Tasks here are
    coarse (whole compiles, whole simulations), so the spawn cost is
    noise, and short-lived domains keep the module free of
    shutdown/teardown protocol. Nested calls see an exhausted budget and
    simply run inline, which bounds the total number of live domains by
    the budget regardless of nesting depth.

    Observability: every [parmap] feeds the [pool.*] metrics (calls,
    tasks, chunks, spawned workers, CAS retries on the token budget,
    busy/idle seconds), and when the flight recorder is enabled each
    participating domain wraps its claim loop in a [pool.worker] span
    with one [pool.chunk] span per claimed run of indices — which is
    what gives the Chrome trace its per-domain worker tracks. The
    [commset.pool] log source reports fan-out decisions at debug
    level. *)

module Recorder = Commset_obs.Recorder
module Metrics = Commset_obs.Metrics
module Clock = Commset_obs.Clock

let src_log = Logs.Src.create "commset.pool" ~doc:"Domain-pool fan-out"

module Log = (val Logs.src_log src_log : Logs.LOG)

let m_parmaps = Metrics.counter ~doc:"parmap calls" "pool.parmap_calls"
let m_tasks = Metrics.counter ~doc:"items executed by parmap" "pool.tasks_executed"
let m_chunks = Metrics.counter ~doc:"index chunks claimed" "pool.chunks_claimed"
let m_inline = Metrics.counter ~doc:"parmaps degraded to sequential" "pool.inline_maps"
let m_spawned = Metrics.counter ~doc:"worker domains spawned" "pool.workers_spawned"

let m_cas_retries =
  Metrics.counter ~doc:"CAS retries acquiring worker tokens" "pool.token_cas_retries"

let g_busy = Metrics.gauge ~doc:"seconds spent in claim loops" "pool.worker_busy_s"

let g_idle =
  Metrics.gauge ~doc:"coordinator seconds waiting for workers to join" "pool.join_idle_s"

let default_jobs () =
  match Sys.getenv_opt "COMMSET_JOBS" with
  | None | Some "" -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          (* a typo'd COMMSET_JOBS must not silently run on a default
             pool size: the user asked for a specific width *)
          Diag.error ~code:"CS013"
            "invalid COMMSET_JOBS value '%s': expected a positive integer number \
             of domains"
            s)

(* 0 = not yet initialised from the environment *)
let jobs_setting = Atomic.make 0

(* extra worker domains still available for lease *)
let tokens = Atomic.make 0

let rec init_if_needed () =
  let cur = Atomic.get jobs_setting in
  if cur > 0 then cur
  else
    let n = max 1 (default_jobs ()) in
    if Atomic.compare_and_set jobs_setting 0 n then begin
      Atomic.set tokens (n - 1);
      n
    end
    else init_if_needed ()

let jobs () = init_if_needed ()

let set_jobs n =
  let n = max 1 n in
  Atomic.set jobs_setting n;
  Atomic.set tokens (n - 1)

let with_jobs n f =
  let old = jobs () in
  set_jobs n;
  Fun.protect ~finally:(fun () -> set_jobs old) f

(* lease up to [want] worker tokens; returns how many were obtained *)
let rec acquire want =
  if want <= 0 then 0
  else
    let cur = Atomic.get tokens in
    if cur <= 0 then 0
    else
      let take = min want cur in
      if Atomic.compare_and_set tokens cur (cur - take) then take
      else begin
        Metrics.incr m_cas_retries;
        acquire want
      end

let release n = if n > 0 then ignore (Atomic.fetch_and_add tokens n)

let parmap_ordered (f : int -> 'a -> 'b) (xs : 'a list) : 'b list =
  let _ = init_if_needed () in
  Metrics.incr m_parmaps;
  match xs with
  | [] -> []
  | [ x ] ->
      Metrics.incr m_tasks;
      [ f 0 x ]
  | _ ->
      let items = Array.of_list xs in
      let n = Array.length items in
      let extra = acquire (min (jobs () - 1) (n - 1)) in
      if extra = 0 then begin
        Metrics.incr m_inline;
        Metrics.add m_tasks n;
        Log.debug (fun m -> m "parmap: %d item(s) inline (budget exhausted or jobs=1)" n);
        List.mapi f xs
      end
      else
        Fun.protect
          ~finally:(fun () -> release extra)
          (fun () ->
            let workers = extra + 1 in
            (* chunked claiming: one fetch_and_add leases a whole run of
               indices, so the shared counter is touched O(workers) times
               instead of once per item; ~8 chunks per worker keeps the
               tail balanced when item costs are uneven *)
            let chunk = max 1 (n / (workers * 8)) in
            (* results live untyped in a pre-filled array: no per-item
               [Some] box on the hot path. The placeholder is the
               immediate 0 so the array is never scanned as a float
               array; [written] flags distinguish it from a genuine
               result that happens to be 0. *)
            let results : Obj.t array = Array.make n (Obj.repr 0) in
            let written = Bytes.make n '\000' in
            let errors : (exn * Printexc.raw_backtrace) option array =
              Array.make n None
            in
            let next = Atomic.make 0 in
            Log.debug (fun m ->
                m "parmap: %d item(s) over %d worker(s), chunk size %d" n (extra + 1) chunk);
            Metrics.add m_spawned extra;
            let rec work () =
              let start = Atomic.fetch_and_add next chunk in
              if start < n then begin
                let stop = min n (start + chunk) in
                Metrics.incr m_chunks;
                Metrics.add m_tasks (stop - start);
                Recorder.with_span ~cat:"pool" "pool.chunk" (fun () ->
                    for i = start to stop - 1 do
                      match f i (Array.unsafe_get items i) with
                      | v ->
                          Array.unsafe_set results i (Obj.repr v);
                          Bytes.unsafe_set written i '\001'
                      | exception e ->
                          errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
                    done);
                work ()
              end
            in
            (* every participating domain — spawned workers and the
               coordinator alike — runs the claim loop under a
               [pool.worker] span and accounts its busy seconds *)
            let worker () =
              let t0 = Clock.now_ns () in
              Fun.protect
                ~finally:(fun () -> Metrics.gauge_add g_busy ((Clock.now_ns () -. t0) /. 1e9))
                (fun () -> Recorder.with_span ~cat:"pool" "pool.worker" work)
            in
            let domains = List.init extra (fun _ -> Domain.spawn worker) in
            worker ();
            let t_join = Clock.now_ns () in
            List.iter Domain.join domains;
            Metrics.gauge_add g_idle ((Clock.now_ns () -. t_join) /. 1e9);
            (* deterministic failure: re-raise for the lowest input index,
               the item a sequential map would have failed on first *)
            Array.iter
              (function
                | Some (e, bt) -> Printexc.raise_with_backtrace e bt
                | None -> ())
              errors;
            List.init n (fun i ->
                assert (Bytes.unsafe_get written i = '\001');
                (Obj.obj (Array.unsafe_get results i) : 'b)))

let parmap f xs = parmap_ordered (fun _ x -> f x) xs
