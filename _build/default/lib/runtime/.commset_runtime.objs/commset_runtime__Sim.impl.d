lib/runtime/sim.ml: Array Atomic Commset_support Costmodel Diag Float List Map Queue Seq Set String Value
