lib/lang/lexer.ml: Buffer Commset_support Diag List Loc String Token
