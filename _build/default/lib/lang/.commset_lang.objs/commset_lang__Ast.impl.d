lib/lang/ast.ml: Commset_support List Loc Option
