(** A deliberately WRONG annotation, and the sanitizer catching it.

    Both loops below carry a genuine loop-carried dependence — a
    last-writer-wins store to a global — yet each is annotated with a
    predicated self commset claiming distinct iterations commute. The
    first store ([last = i]) is refuted statically: the stored value is
    an affine function of the induction variable, so symbolic
    differencing proves the two orders leave different final stores and
    produces a concrete pair of iterations as witness. The second store
    ([mark = hash(i) %% 100]) is opaque to the symbolic domain, so the
    pair survives as Unknown until the dynamic engine replays two
    recorded instances in both orders and watches the global diverge.

    Run with [dune exec examples/refute_lastwriter.exe]; exits 2, the
    same convention as [commsetc lint]. *)

module P = Commset_pipeline.Pipeline
module V = Commset_verify
module Diag = Commset_support.Diag

let source =
  {|
#pragma commset decl LSET self
#pragma commset predicate LSET (a1) (a2) (a1 != a2)
#pragma commset decl MSET self
#pragma commset predicate MSET (b1) (b2) (b1 != b2)

int last = 0;
int mark = 0;

void main() {
  for (int i = 0; i < 64; i++) {
    int w = str_hash(int_to_string(i * 13)) + str_hash(int_to_string(i * 7));
    #pragma commset member LSET(i)
    {
      last = i;
    }
  }
  for (int j = 0; j < 64; j++) {
    int h = str_hash(int_to_string(j * 17)) % 100;
    #pragma commset member MSET(j)
    {
      mark = h;
    }
  }
  print("last " + int_to_string(last));
  print("mark " + int_to_string(mark));
}
|}

let () =
  print_endline "=== A non-commutative 'commutative' set ===";
  print_endline source;
  let c = P.compile ~name:"refute_lastwriter" ~verify:true source in
  let report = Option.get c.P.verification in
  print_endline "=== Sanitizer verdicts ===";
  print_string (Commset_report.Verdicts.render report);
  let diags =
    V.Lint.run_all { V.Lint.md = c.P.md; report = Some report; strict = false }
  in
  List.iter (fun d -> print_endline (Diag.to_string d)) diags;
  (* the synthesizer is the flip side of the sanitizer: on the stripped
     program it finds the same residues and refuses to claim anything *)
  print_endline "=== What would the synthesizer suggest instead? ===";
  let r =
    Commset_synth.Synth.suggest ~name:"refute_lastwriter" ~rank_individual:false
      source
  in
  print_string (Commset_report.Suggestions.render r);
  if V.Verdict.n_refuted report > 0 then exit 2
