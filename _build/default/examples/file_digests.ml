(** Bring-your-own-program example: a custom miniC checksum tool, written
    inline, annotated with COMMSET pragmas, and pushed through the public
    pipeline API with a custom machine setup.

    The program hashes every report file twice (MD5 plus a cheap rolling
    hash), prints a combined line per file, and appends a summary line to
    an audit log. The audit log builtin is thread-safe (Lib mode), the
    console is not ordered (SELF on the print block), and the file
    operations commute across iterations via a predicated group set. *)

module P = Commset_pipeline.Pipeline
module R = Commset_runtime
module T = Commset_transforms

let n_reports = 64

let source =
  Printf.sprintf
    {|
// checksum every report file and append an audit trail
#pragma commset decl IOSET group
#pragma commset predicate IOSET (i1) (i2) (i1 != i2)

void main() {
  int nfiles = %d;
  for (int i = 0; i < nfiles; i++) {
    string name = "reports/r" + int_to_string(i);
    int fd = 0;
    #pragma commset member IOSET(i), SELF
    {
      fd = fopen(name);
    }
    string data = "";
    bool done = false;
    while (!done) {
      #pragma commset member IOSET(i), SELF
      {
        string chunk = fread(fd, 2048);
        if (strlen(chunk) == 0) {
          done = true;
        } else {
          data = data + chunk;
        }
      }
    }
    string digest = md5_hex(data);
    int rolling = str_hash(data);
    #pragma commset member IOSET(i), SELF
    {
      print(name + " " + digest + " " + int_to_string(rolling));
    }
    #pragma commset member SELF
    {
      log_write(name + " ok");
    }
    #pragma commset member IOSET(i), SELF
    {
      fclose(fd);
    }
  }
  print("audited " + int_to_string(log_count()) + " files");
}
|}
    n_reports

let setup m =
  let st = ref 2024 in
  let next () =
    st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
    !st
  in
  for i = 0 to n_reports - 1 do
    (* report sizes vary, which keeps the simulated threads from convoying *)
    let size = 1024 + (next () mod 4096) in
    let body = String.init size (fun _ -> Char.chr (32 + (next () mod 90))) in
    R.Machine.add_file m (Printf.sprintf "reports/r%d" i) body
  done

let () =
  let c = P.compile ~name:"file_digests" ~setup source in
  Printf.printf "file_digests: %d annotations, transforms: %s\n"
    (P.count_annotations source)
    (String.concat ", " (P.applicable_transforms c));
  Printf.printf "sequential: %.0f simulated cycles\n\n" c.P.trace.R.Trace.seq_total;
  List.iter
    (fun threads ->
      match P.best c ~threads with
      | Some r ->
          Printf.printf "  %d threads: best %-36s %5.2fx (%s)\n" threads
            r.P.plan.T.Plan.label r.P.speedup
            (P.fidelity_to_string r.P.fidelity)
      | None -> Printf.printf "  %d threads: no plan\n" threads)
    [ 2; 4; 8 ];
  (* show a slice of the program's real output, from the sequential trace *)
  print_endline "\nfirst three output lines:";
  List.iteri
    (fun i line -> if i < 3 then Printf.printf "  %s\n" line)
    c.P.trace.R.Trace.seq_outputs
