(** Unit and property tests for the support library: locations,
    diagnostics, list helpers, and the directed-graph algorithms. *)

open Commset_support

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---- Loc / Diag ---- *)

let test_loc_merge () =
  let p l c o = Loc.position ~line:l ~col:c ~offset:o in
  let a = Loc.make ~file:"f" ~start_pos:(p 1 1 0) ~end_pos:(p 1 5 4) in
  let b = Loc.make ~file:"f" ~start_pos:(p 2 1 10) ~end_pos:(p 2 8 17) in
  let m = Loc.merge a b in
  check Alcotest.int "merged start line" 1 (Loc.line m);
  check Alcotest.string "pp spans lines" "f:1:1-2:8" (Loc.to_string m);
  check Alcotest.string "merge with dummy keeps other" (Loc.to_string a)
    (Loc.to_string (Loc.merge Loc.dummy a))

let test_diag_error () =
  match Diag.guard (fun () -> Diag.error "boom %d" 42) with
  | Error d -> check Alcotest.string "message" "boom 42" d.Diag.message
  | Ok _ -> Alcotest.fail "expected an error"

(* ---- Listx ---- *)

let test_listx () =
  check Alcotest.(option int) "index_of" (Some 2) (Listx.index_of (fun x -> x = 30) [ 10; 20; 30 ]);
  check Alcotest.(list int) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  check Alcotest.(list int) "take beyond" [ 1 ] (Listx.take 5 [ 1 ]);
  check Alcotest.(list int) "drop" [ 3 ] (Listx.drop 2 [ 1; 2; 3 ]);
  check Alcotest.(list int) "uniq keeps order" [ 3; 1; 2 ] (Listx.uniq [ 3; 1; 3; 2; 1 ]);
  check Alcotest.int "pairs count" 6 (List.length (Listx.pairs [ 1; 2; 3; 4 ]));
  check Alcotest.int "sum" 6 (Listx.sum (fun x -> x) [ 1; 2; 3 ]);
  check Alcotest.(list (pair int (list int))) "group_by"
    [ (1, [ 1; 3 ]); (0, [ 2 ]) ]
    (Listx.group_by (fun x -> x mod 2) [ 1; 2; 3 ])

let prop_take_drop =
  QCheck.Test.make ~name:"take n @ drop n = id" ~count:200
    QCheck.(pair small_nat (small_list int))
    (fun (n, xs) -> Listx.take n xs @ Listx.drop n xs = xs)

(* ---- Gensym ---- *)

let test_gensym () =
  let g = Gensym.create ~prefix:"r" () in
  check Alcotest.string "first" "r0" (Gensym.fresh g);
  check Alcotest.string "second" "r1" (Gensym.fresh g);
  check Alcotest.string "named" "loop.2" (Gensym.fresh_named g "loop");
  Gensym.reset g;
  check Alcotest.string "reset restarts" "r0" (Gensym.fresh g);
  (* independent namespaces *)
  let h = Gensym.create () in
  check Alcotest.string "default prefix" "t0" (Gensym.fresh h)

(* ---- Digraph ---- *)

let diamond () =
  let g = Digraph.create () in
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 1 3;
  Digraph.add_edge g 2 4;
  Digraph.add_edge g 3 4;
  g

let test_digraph_basics () =
  let g = diamond () in
  check Alcotest.int "nodes" 4 (Digraph.n_nodes g);
  check Alcotest.int "edges" 4 (Digraph.n_edges g);
  check Alcotest.(list int) "succs" [ 2; 3 ] (Digraph.succs g 1);
  check Alcotest.(list int) "preds" [ 2; 3 ] (Digraph.preds g 4);
  check Alcotest.bool "no cycle" false (Digraph.has_cycle g);
  check Alcotest.bool "reaches 1->4" true (Digraph.reaches g 1 4);
  check Alcotest.bool "not reaches 4->1" false (Digraph.reaches g 4 1);
  check Alcotest.(list int) "reachable includes self" [ 2; 4 ] (Digraph.reachable g 2)

let test_digraph_cycle () =
  let g = diamond () in
  Digraph.add_edge g 4 1;
  check Alcotest.bool "cycle detected" true (Digraph.has_cycle g);
  check Alcotest.bool "topo on cyclic" true (Digraph.topo_sort g = None);
  check Alcotest.int "one big SCC" 1 (List.length (Digraph.sccs g))

let test_digraph_self_loop () =
  let g = Digraph.create () in
  Digraph.add_edge g 1 1;
  check Alcotest.bool "self loop is a cycle" true (Digraph.has_cycle g)

let test_digraph_topo () =
  let g = diamond () in
  match Digraph.topo_sort g with
  | None -> Alcotest.fail "diamond is acyclic"
  | Some order ->
      let pos x = Option.get (Listx.index_of (fun y -> y = x) order) in
      List.iter
        (fun (a, b) ->
          if not (pos a < pos b) then
            Alcotest.failf "topo order violates edge %d->%d" a b)
        [ (1, 2); (1, 3); (2, 4); (3, 4) ]

(* random DAG: edges only from lower to higher numbers *)
let dag_gen =
  QCheck.Gen.(
    sized (fun n ->
        let n = min 10 (max 2 n) in
        let* edges =
          list_size (int_bound (n * 2))
            (let* a = int_bound (n - 1) in
             let* b = int_bound (n - 1) in
             return (min a b, max a b))
        in
        return (n, List.filter (fun (a, b) -> a <> b) edges)))

let prop_dag_acyclic =
  QCheck.Test.make ~name:"forward-edge graphs are acyclic and topo-sortable" ~count:200
    (QCheck.make dag_gen)
    (fun (n, edges) ->
      let g = Digraph.create () in
      for i = 0 to n - 1 do
        Digraph.add_node g i
      done;
      List.iter (fun (a, b) -> Digraph.add_edge g a b) edges;
      (not (Digraph.has_cycle g))
      &&
      match Digraph.topo_sort g with
      | None -> false
      | Some order ->
          let pos = Hashtbl.create 16 in
          List.iteri (fun i x -> Hashtbl.replace pos x i) order;
          List.for_all (fun (a, b) -> Hashtbl.find pos a < Hashtbl.find pos b) edges)

let prop_scc_partition =
  QCheck.Test.make ~name:"SCCs partition the nodes" ~count:200
    QCheck.(small_list (pair (int_bound 8) (int_bound 8)))
    (fun edges ->
      let g = Digraph.create () in
      for i = 0 to 8 do
        Digraph.add_node g i
      done;
      List.iter (fun (a, b) -> Digraph.add_edge g a b) edges;
      let comps = Digraph.sccs g in
      let all = List.concat comps in
      List.length all = 9 && List.sort compare all = List.init 9 (fun i -> i))

let suite =
  ( "support",
    [
      Alcotest.test_case "loc merge and pp" `Quick test_loc_merge;
      Alcotest.test_case "diag error" `Quick test_diag_error;
      Alcotest.test_case "listx helpers" `Quick test_listx;
      Alcotest.test_case "gensym" `Quick test_gensym;
      Alcotest.test_case "digraph basics" `Quick test_digraph_basics;
      Alcotest.test_case "digraph cycle" `Quick test_digraph_cycle;
      Alcotest.test_case "digraph self loop" `Quick test_digraph_self_loop;
      Alcotest.test_case "digraph topo" `Quick test_digraph_topo;
      qcheck prop_take_drop;
      qcheck prop_dag_acyclic;
      qcheck prop_scc_partition;
    ] )
