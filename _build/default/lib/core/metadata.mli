(** The COMMSET metadata manager (paper §4.2): the registry of commsets
    (kind, predicate, nosync flag, global lock rank) and the resolution of
    the three member kinds — annotated regions, interface-level function
    members, and named optional blocks enabled at call sites — into the
    per-PDG-node membership *facets* consumed by Algorithm 1 and the
    synchronization engine. *)

module Ir = Commset_ir.Ir
module Ast = Commset_lang.Ast
module Effects = Commset_analysis.Effects
module Pdg = Commset_pdg.Pdg

type set_kind = Ast.set_kind = Self_set | Group_set

type predicate = { params1 : string list; params2 : string list; body : Ast.expr }

type set_info = {
  sname : string;
  kind : set_kind;
  predicate : predicate option;
  nosync : bool;
  rank : int;  (** global lock-acquisition order *)
}

(** Identity of a commset member. *)
type member =
  | Mregion of string * int  (** function name, region id *)
  | Mfun of string  (** interface-level membership *)
  | Mnamed of string * string  (** named block of a callee, enabled by a client *)

val member_to_string : member -> string

(** One member identity with its commset bindings and the portion of a
    node's memory effects it covers. *)
type facet = {
  fmember : member;
  fsets : (string * Ir.operand list) list;  (** set name, actual operands (caller terms) *)
  frw : Effects.rw;
}

type t = {
  sets : (string, set_info) Hashtbl.t;
  set_order : string list;
  members : (string, member list) Hashtbl.t;
  prog : Ir.program;
  tcenv : Commset_lang.Typecheck.t;
  effects : Effects.t;
}

val build : Ir.program -> Commset_lang.Typecheck.t -> Effects.t -> t

val set_info : t -> string -> set_info option
val set_info_exn : t -> string -> set_info
val sets_in_rank_order : t -> set_info list
val members_of : t -> string -> member list

(** Names of materialized SELF sets. *)
val self_region_set_name : int -> string

val self_fun_set_name : string -> string
val is_materialized_self : string -> bool

(** Interface membership of a function: set name and the parameter
    indices its predicate actuals bind to. *)
val interface_refs : t -> string -> (string * int list) list

(** The named region of a function, by exported name. *)
val named_region : t -> string -> string -> Ir.region option

(** Instructions belonging to a region of a function. *)
val region_instrs : Ir.func -> int -> Ir.instr list

(** Effects of a function's named block, instantiated at a call site. *)
val named_block_rw :
  t ->
  callee:string ->
  bname:string ->
  args:Ir.operand list ->
  dst:Ir.reg option ->
  caller:string ->
  Effects.rw

(** The call instruction and callee of a PDG node, when it is one. *)
val call_of_node : Pdg.node -> (Ir.instr * string) option

(** Membership facets of a PDG node in the given function. *)
val facets : t -> caller:string -> Pdg.node -> facet list

(** All commset names a node belongs to (for synchronization). *)
val node_sets : t -> caller:string -> Pdg.node -> string list
