lib/analysis/callgraph.mli: Commset_ir Commset_support Digraph
