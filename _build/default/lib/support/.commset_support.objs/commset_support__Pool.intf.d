lib/support/pool.mli:
