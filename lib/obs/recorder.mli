(** The flight recorder: low-overhead span collection on per-domain
    buffers.

    Each domain that records gets its own fixed-capacity buffer (lazily
    created through [Domain.DLS] on first use), laid out as parallel
    unboxed arrays — recording a span is a handful of array stores on
    domain-local memory with {e no shared-heap allocation}. Spans follow
    stack discipline by construction ([with_span] is the only way to
    record), so every buffer's spans are well-nested per domain.

    When the recorder is disabled (the default), [with_span] is a single
    atomic-flag load followed by a direct call of the thunk: it touches
    no buffer, takes no clock reading, and allocates nothing
    ([test/test_obs.ml] asserts the zero-allocation property via a
    [Gc.minor_words] delta). Enable it with {!set_enabled} — the
    [commsetc trace] subcommand and the [COMMSET_TRACE] env hook do.

    Buffers are bounded: [COMMSET_TRACE_BUF] (default 32768 spans per
    domain) caps each buffer, and spans past capacity are counted in
    {!dropped_total} rather than recorded — a flight recorder must never
    grow without bound under tracing. *)

(** Whether spans are currently being recorded. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** [with_span ~cat name f] runs [f ()]; when the recorder is enabled,
    its wall-time window on the monotonic clock is recorded as a span
    named [name] on the calling domain's buffer (the span is recorded
    even if [f] raises). [cat] is the Chrome trace-event category
    (defaults to [""]). *)
val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a

(** One recorded span. [dom] is the recorder's dense domain slot (0 is
    the first domain that ever recorded); [depth] the nesting level at
    recording time; [sid] a process-unique id ([dom lsl 40 lor seq]).
    Times are monotonic-clock nanoseconds. *)
type span = {
  sid : int;
  dom : int;
  depth : int;
  name : string;
  cat : string;
  t0_ns : float;
  t1_ns : float;
}

(** Snapshot of every span recorded so far, ordered by domain slot then
    recording order. Call it from a quiescent point (after workers have
    joined): concurrent recorders may be mid-append on their own
    buffers. *)
val dump : unit -> span list

(** Spans discarded because some domain's buffer was full. *)
val dropped_total : unit -> int

(** Number of per-domain buffers created so far. *)
val n_domains : unit -> int

(** Discard all recorded spans (buffers stay allocated); also resets
    the dropped count. For tests and benchmark legs. *)
val reset : unit -> unit
