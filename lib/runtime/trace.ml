(** Per-iteration execution traces of a target loop.

    The trace recorder runs the program sequentially once and attributes
    every simulated cycle, builtin call, and output line to the PDG node
    that produced it (costs inside callees are attributed to the calling
    node, like the paper's outlined member functions). The parallel
    simulator then replays these traces under a parallelization plan. *)

module Ir = Commset_ir.Ir
module Pdg = Commset_pdg.Pdg

type atom =
  | Acompute of float
  | Abuiltin of {
      bname : string;
      cost : float;
      resources : string list;
      thread_safe : bool;
      tm_safe : bool;
    }
  | Aout of string

(** predicate actuals observed for one dynamic member instance *)
type actuals =
  | Aregion_sets of (string * Value.t list) list  (** set -> actual values *)
  | Acall_args of string * Value.t list  (** callee, argument values *)

type node_exec = {
  nid : int;
  mutable atoms : atom list;  (** reverse order *)
  mutable eactuals : actuals list;  (** predicate actuals, one per dynamic instance, reverse order *)
}

type iteration = {
  mutable execs : node_exec list;  (** reverse order of first execution *)
  exec_tbl : (int, node_exec) Hashtbl.t;
}

type t = {
  iterations : iteration array;
  other_cost : float;  (** cycles outside the target loop *)
  outputs_before : string list;
  outputs_after : string list;
  seq_outputs : string list;  (** full sequential output, in order *)
  seq_total : float;  (** total sequential cycles *)
}

let exec_atoms e = List.rev e.atoms
let exec_actuals e = List.rev e.eactuals
let iteration_execs it = List.rev it.execs

let atom_cost = function
  | Acompute c -> c
  | Abuiltin { cost; _ } -> cost
  | Aout _ -> 0.

let exec_cost e = List.fold_left (fun acc a -> acc +. atom_cost a) 0. (exec_atoms e)

let iteration_cost it =
  List.fold_left (fun acc e -> acc +. exec_cost e) 0. (iteration_execs it)

let n_iterations t = Array.length t.iterations

(** Average simulated cost of one instance of node [nid], for pipeline
    balancing. *)
let node_mean_cost t nid =
  let total = ref 0. and n = ref 0 in
  Array.iter
    (fun it ->
      match Hashtbl.find_opt it.exec_tbl nid with
      | Some e ->
          total := !total +. exec_cost e;
          incr n
      | None -> ())
    t.iterations;
  if !n = 0 then 0. else !total /. float_of_int !n

(** Cost of the whole loop (all iterations). *)
let loop_cost t = Array.fold_left (fun acc it -> acc +. iteration_cost it) 0. t.iterations

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

type recorder = {
  pdg : Pdg.t;
  target : string;
  tfunc : Ir.func;  (** the target function record, for physical-equality
                        checks on the per-instruction hot path *)
  nid_of_iid : int array;  (** target-function iid -> PDG node, -1 = none;
                               replaces a hashtable probe per instruction *)
  header : Ir.label;
  mutable cur_nid : int;  (** -1 = outside any node *)
  mutable cur_iter : iteration option;
  mutable cur_exec : node_exec option;
      (** cache of the [(cur_iter, cur_nid)] exec, invalidated whenever
          either changes: cost events skip the exec-table probe *)
  mutable done_iters : iteration list;  (** reverse *)
  mutable other : float;
  mutable before : string list;  (** reverse *)
  mutable after : string list;  (** reverse *)
  mutable all_outputs : string list;  (** reverse *)
  mutable saw_loop : bool;
}

let is_target rec_ (func : Ir.func) =
  func == rec_.tfunc || String.equal func.Ir.fname rec_.target

(* the node owning a region is found through its entry block's first
   instruction *)
let region_first_iid rec_ (region : Ir.region) =
  let func = rec_.pdg.Pdg.func in
  let b = Ir.block func region.Ir.rentry in
  match b.Ir.instrs with i :: _ -> i.Ir.iid | [] -> -1

let callee_name (i : Ir.instr) =
  match Ir.callee_of i with Some c -> c | None -> "<none>"

let current_exec rec_ =
  match rec_.cur_exec with
  | Some _ as s -> s
  | None -> (
      match rec_.cur_iter with
      | Some it when rec_.cur_nid >= 0 ->
          let nid = rec_.cur_nid in
          let e =
            match Hashtbl.find_opt it.exec_tbl nid with
            | Some e -> e
            | None ->
                let e = { nid; atoms = []; eactuals = [] } in
                Hashtbl.replace it.exec_tbl nid e;
                it.execs <- e :: it.execs;
                e
          in
          rec_.cur_exec <- Some e;
          Some e
      | _ -> None)

let add_compute rec_ c =
  match current_exec rec_ with
  | Some e -> (
      match e.atoms with
      | Acompute prev :: rest -> e.atoms <- Acompute (prev +. c) :: rest
      | _ -> e.atoms <- Acompute c :: e.atoms)
  | None -> rec_.other <- rec_.other +. c

let hooks_of_recorder rec_ : Interp.hooks =
  {
    Interp.on_instr =
      (fun func i ->
        if is_target rec_ func then begin
          let iid = i.Ir.iid in
          let nid =
            if iid >= 0 && iid < Array.length rec_.nid_of_iid then
              rec_.nid_of_iid.(iid)
            else -1
          in
          if nid <> rec_.cur_nid then begin
            rec_.cur_nid <- nid;
            rec_.cur_exec <- None
          end
        end);
    on_block =
      (fun func l ->
        if l = rec_.header && is_target rec_ func then begin
          rec_.saw_loop <- true;
          (match rec_.cur_iter with
          | Some it -> rec_.done_iters <- it :: rec_.done_iters
          | None -> ());
          rec_.cur_iter <- Some { execs = []; exec_tbl = Hashtbl.create 16 };
          rec_.cur_exec <- None
        end);
    on_base_cost = (fun c -> add_compute rec_ c);
    on_builtin =
      (fun bi cost ->
        match current_exec rec_ with
        | Some e ->
            e.atoms <-
              Abuiltin
                {
                  bname = bi.Builtins.name;
                  cost;
                  resources = Builtins.resources bi;
                  thread_safe = bi.Builtins.thread_safe;
                  tm_safe = bi.Builtins.tm_safe;
                }
              :: e.atoms
        | None -> rec_.other <- rec_.other +. cost);
    on_output =
      (fun s ->
        rec_.all_outputs <- s :: rec_.all_outputs;
        match current_exec rec_ with
        | Some e -> e.atoms <- Aout s :: e.atoms
        | None ->
            if rec_.saw_loop then rec_.after <- s :: rec_.after
            else rec_.before <- s :: rec_.before);
    on_enter_func = (fun _ -> ());
    on_exit_func = (fun _ -> ());
    on_region_enter =
      (fun func region actuals _regs ->
        if is_target rec_ func then
          match rec_.cur_iter with
          | Some it -> (
              match Pdg.node_of_instr rec_.pdg (region_first_iid rec_ region) with
              | Some nid ->
                  let e =
                    match Hashtbl.find_opt it.exec_tbl nid with
                    | Some e -> e
                    | None ->
                        let e = { nid; atoms = []; eactuals = [] } in
                        Hashtbl.replace it.exec_tbl nid e;
                        it.execs <- e :: it.execs;
                        e
                  in
                  e.eactuals <- Aregion_sets actuals :: e.eactuals
              | None -> ())
          | None -> ());
    on_call_actuals =
      (fun i argv _enables ->
        match current_exec rec_ with
        | Some e -> e.eactuals <- Acall_args (callee_name i, argv) :: e.eactuals
        | None -> ());
  }

(** Run the program once sequentially and record the trace of the PDG's
    target loop. *)
let record ?(machine = Machine.create ()) ?prepared (prog : Ir.program) (pdg : Pdg.t) :
    t * Machine.t =
  let tfunc = pdg.Pdg.func in
  let nid_of_iid =
    let m = ref (-1) in
    Ir.iter_instrs tfunc (fun _ i -> if i.Ir.iid > !m then m := i.Ir.iid);
    let a = Array.make (!m + 2) (-1) in
    Ir.iter_instrs tfunc (fun _ i ->
        match Pdg.node_of_instr pdg i.Ir.iid with
        | Some nid -> a.(i.Ir.iid) <- nid
        | None -> ());
    a
  in
  let rec_ =
    {
      pdg;
      target = tfunc.Ir.fname;
      tfunc;
      nid_of_iid;
      header = pdg.Pdg.loop.Commset_analysis.Loops.header;
      cur_nid = -1;
      cur_iter = None;
      cur_exec = None;
      done_iters = [];
      other = 0.;
      before = [];
      after = [];
      all_outputs = [];
      saw_loop = false;
    }
  in
  let hooks = hooks_of_recorder rec_ in
  let total =
    match prepared with
    | Some p -> Precompile.run_main (Precompile.executor ~hooks ~machine p)
    | None -> Interp.run_main (Interp.create ~hooks ~machine prog)
  in
  (* the final header visit (the failing test) is not a real iteration:
     fold its cost into [other] *)
  (match rec_.cur_iter with
  | Some it -> rec_.other <- rec_.other +. iteration_cost it
  | None -> ());
  let iterations = Array.of_list (List.rev rec_.done_iters) in
  ( {
      iterations;
      other_cost = rec_.other;
      outputs_before = List.rev rec_.before;
      outputs_after = List.rev rec_.after;
      seq_outputs = List.rev rec_.all_outputs;
      seq_total = total;
    },
    machine )

(** Update PDG node weights in place from the trace (profile-guided
    pipeline balancing, paper §4.5). *)
let apply_weights t (pdg : Pdg.t) =
  Array.iter
    (fun n ->
      let w = node_mean_cost t n.Pdg.nid in
      if w > 0. then n.Pdg.weight <- w)
    pdg.Pdg.nodes
