(** The real multicore execution backend: runs a parallelization plan on
    actual OCaml 5 domains instead of the discrete-event simulator.

    The executor reuses the emitter's per-thread segment lists — the
    same multi-threaded code generation the simulator prices — and
    realizes every segment for real: [Compute] becomes calibrated CPU
    work ({!Burn}), [Acquire]/[Release] become ranked per-commset locks
    ({!Locks}, deadlock-free because the emitter orders acquisitions by
    global commset rank), [Push]/[Pop] become bounded lock-free SPSC
    queues ({!Spsc}) sized by the simulator's own
    [Costmodel.queue_capacity], and [Emit] appends to a per-domain
    output log stamped with the monotonic clock. NOSYNC commsets and
    single-stage placements never emitted locks in the first place, so
    their fast path is inherited; Lib-variant plans only realize the
    short library-internal sections.

    Every run performs a mandatory output-equivalence check: a fresh
    sequential execution of the prepared program is the reference, and
    the merged parallel output must match it exactly — up to multiset
    order for outputs the commset annotations declare commutative
    ({!Equiv}).

    TM and speculative plans are rejected ({!supported}): software
    transactions exist only in the simulator's optimistic model; there
    is no STM to run them on.

    Observability: the run, the sequential reference, the calibrated
    sequential leg and every worker are wrapped in flight-recorder spans
    (category ["exec"]), so an enabled recorder puts each worker domain
    on its own real-time Perfetto track next to the simulator's
    virtual-clock tracks; the [exec.*] metrics record runs, contended
    acquires and queue waits (these are real concurrency measurements
    and carry no cross-run determinism promise). *)

module Plan = Commset_transforms.Plan
module Sync = Commset_transforms.Sync
module Pdg = Commset_pdg.Pdg
module R = Commset_runtime

type stats = {
  x_label : string;  (** the executed plan's label *)
  x_threads : int;  (** domains the plan's segment lists occupied *)
  x_wall_seq_s : float;
      (** calibrated sequential leg: same cycle-burning realization, one
          domain, no synchronization *)
  x_wall_par_s : float;  (** parallel leg, spawn/join barriers excluded *)
  x_measured_speedup : float;  (** [x_wall_seq_s /. x_wall_par_s] *)
  x_verdict : Equiv.verdict;
  x_lock_contended : int;
  x_queue_full_waits : int;  (** blocking episodes on full queues *)
  x_queue_empty_waits : int;  (** blocking episodes on empty queues *)
  x_outputs : string list;  (** the parallel run's full output stream *)
}

(** Can this plan run on the real backend? [Error reason] for TM and
    speculative variants. *)
val supported : Plan.t -> (unit, string) result

(** Execute [plan] on real domains. Raises a CS014 {!Diag.Error} for
    unsupported plans and an internal error if the fresh sequential
    reference diverges from the recorded trace. [pdg], [trace] and
    [sync] must come from the same compilation as [prepared]; [setup]
    prepares the reference run's fresh machine. *)
val run :
  plan:Plan.t ->
  pdg:Pdg.t ->
  trace:R.Trace.t ->
  sync:Sync.t ->
  prepared:R.Precompile.t ->
  setup:(R.Machine.t -> unit) ->
  unit ->
  stats
