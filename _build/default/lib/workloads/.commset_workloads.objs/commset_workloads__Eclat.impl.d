lib/workloads/eclat.ml: Array Char Commset_runtime Printf String Workload
