(** The commutativity annotation verifier: static symbolic differencing
    ({!Static}) followed by dynamic refutation of the surviving
    [Unknown] pairs ({!Dynamic}). *)

module A = Commset_analysis
module Metadata = Commset_core.Metadata
module Machine = Commset_runtime.Machine

let src_log = Logs.Src.create "commset.verify" ~doc:"Commutativity annotation verifier"

module Log = (val Logs.src_log src_log : Logs.LOG)

let run ?(dynamic = true) ?(max_snapshots = 2) ?(max_trials = 3) ?prepared
    ~(md : Metadata.t) ~target_fname ~(loop : A.Loops.loop)
    ~(induction : A.Induction.t) ~(setup : Machine.t -> unit) () :
    Verdict.report =
  let ctx = Static.create ~md ~target_fname ~loop ~induction in
  Log.debug (fun m -> m "static differencing over '%s'" target_fname);
  let report = Static.run ctx in
  Log.debug (fun m ->
      m "static pass: %d proved, %d unknown, %d refuted" (Verdict.n_proved report)
        (Verdict.n_unknown report) (Verdict.n_refuted report));
  if dynamic then begin
    Log.debug (fun m -> m "dynamic replay: refining unknown pairs");
    Dynamic.refine ~max_snapshots ~max_trials ?prepared ~md ~setup report
  end
  else report
