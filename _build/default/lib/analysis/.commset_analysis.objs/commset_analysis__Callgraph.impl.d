lib/analysis/callgraph.ml: Commset_ir Commset_support Digraph Hashtbl List
