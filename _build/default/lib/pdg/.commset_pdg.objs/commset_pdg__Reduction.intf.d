lib/pdg/reduction.mli: Commset_ir Commset_lang Format Pdg
