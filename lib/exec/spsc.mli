(** Bounded lock-free single-producer single-consumer queue: the real
    realization of the simulator's inter-stage pipeline channels (§4.5).

    The emitter creates one queue per communicating (producer thread,
    consumer thread) pair, so single-producer/single-consumer is
    guaranteed by construction and the queue needs no RMW operations at
    all: the producer owns [tail], the consumer owns [head], and each
    side only ever {e reads} the other's index. Publication is safe
    under the OCaml 5 memory model because the plain slot write is
    ordered before the atomic index store, and the peer's atomic index
    load is ordered before its plain slot read.

    Capacity is taken by callers from {!Commset_runtime.Costmodel}'s
    [queue_capacity] so the real backend blocks exactly where the
    simulator predicts back-pressure. *)

type 'a t

(** [create ~capacity] builds an empty queue; [capacity >= 1]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int

(** Items currently queued (exact only from the producer or consumer). *)
val length : 'a t -> int

(** Producer side. [try_push] returns [false] on a full queue; [push]
    blocks (adaptive backoff), firing [on_wait] once per blocking
    episode. *)
val try_push : 'a t -> 'a -> bool

val push : ?on_wait:(unit -> unit) -> 'a t -> 'a -> unit

(** Consumer side, symmetric with the producer's. *)
val try_pop : 'a t -> 'a option

val pop : ?on_wait:(unit -> unit) -> 'a t -> 'a
