lib/report/evaluation.mli: Commset_pipeline Commset_workloads
