lib/ir/lower.mli: Commset_lang Ir
