(** Seeded MMPP arrival generator; see the interface for the model. *)

type spec = {
  g_seed : int;
  g_rate : float;
  g_burst : float;
  g_on_s : float;
  g_off_s : float;
  g_mix : (string * float) list;
}

let default_spec =
  {
    g_seed = 1;
    g_rate = 1000.;
    g_burst = 3.;
    g_on_s = 0.050;
    g_off_s = 0.150;
    g_mix = [ ("url", 1.); ("md5sum", 2.); ("geti", 1.) ];
  }

(* duty cycle d = on/(on+off); solving d·λ_on + (1−d)·λ_off = rate with
   λ_on = burst·rate gives λ_off = rate·(1 − d·burst)/(1 − d), clamped
   at 0 when the ON phase already carries the whole budget *)
let off_rate s =
  let d = s.g_on_s /. (s.g_on_s +. s.g_off_s) in
  Float.max 0. (s.g_rate *. (1. -. (d *. s.g_burst)) /. (1. -. d))

type phase = On | Off

type t = {
  spec : spec;
  mutable state : int64;  (** xorshift64* state; never 0 *)
  mutable clock : float;  (** last arrival offset, seconds *)
  mutable phase : phase;
  mutable phase_end : float;
  on_rate : float;
  off_rate : float;
  total_weight : float;
}

(* xorshift64*: full-period 64-bit generator, one multiply per draw *)
let next_bits t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

(* top 53 bits -> [0, 1) *)
let uniform t =
  Int64.to_float (Int64.shift_right_logical (next_bits t) 11) /. 9007199254740992.

(* exponential with the given rate; infinity for rate 0 (silent phase) *)
let exponential t rate =
  if rate <= 0. then infinity
  else
    let u = uniform t in
    -.log (Float.max 1e-15 (1. -. u)) /. rate

(* exponential with the given mean (phase durations) *)
let duration t mean = -.log (Float.max 1e-15 (1. -. uniform t)) *. mean

let create spec =
  if spec.g_rate <= 0. then invalid_arg "Gen.create: g_rate must be > 0";
  if spec.g_burst < 1. then invalid_arg "Gen.create: g_burst must be >= 1";
  if spec.g_on_s <= 0. || spec.g_off_s <= 0. then
    invalid_arg "Gen.create: phase durations must be > 0";
  if spec.g_mix = [] then invalid_arg "Gen.create: g_mix must be non-empty";
  List.iter
    (fun (w, weight) ->
      if weight <= 0. then invalid_arg (Printf.sprintf "Gen.create: weight of %S must be > 0" w))
    spec.g_mix;
  (* state must never be zero; a zero seed gets the golden-ratio word *)
  let seed64 = if spec.g_seed = 0 then 0x9E3779B97F4A7C15L else Int64.of_int spec.g_seed in
  let t =
    {
      spec;
      state = seed64;
      clock = 0.;
      phase = On;
      phase_end = 0.;
      on_rate = spec.g_burst *. spec.g_rate;
      off_rate = off_rate spec;
      total_weight = List.fold_left (fun acc (_, w) -> acc +. w) 0. spec.g_mix;
    }
  in
  t.phase_end <- duration t spec.g_on_s;
  t

let phase_rate t = match t.phase with On -> t.on_rate | Off -> t.off_rate

let switch_phase t =
  match t.phase with
  | On ->
      t.phase <- Off;
      t.phase_end <- t.phase_end +. duration t t.spec.g_off_s
  | Off ->
      t.phase <- On;
      t.phase_end <- t.phase_end +. duration t t.spec.g_on_s

let pick_workload t =
  let x = uniform t *. t.total_weight in
  let rec walk acc = function
    | [] -> fst (List.hd t.spec.g_mix) (* float round-off: fall back to the head *)
    | (w, weight) :: rest -> if x < acc +. weight then w else walk (acc +. weight) rest
  in
  walk 0. t.spec.g_mix

(* advance the clock by one exponential gap at the current phase's
   intensity; a gap that crosses the phase boundary is discarded and
   redrawn inside the next phase (memorylessness makes this exact) *)
let rec next_arrival t =
  let gap = exponential t (phase_rate t) in
  let candidate = t.clock +. gap in
  if candidate <= t.phase_end then begin
    t.clock <- candidate;
    candidate
  end
  else begin
    t.clock <- t.phase_end;
    switch_phase t;
    next_arrival t
  end

let next t =
  let at = next_arrival t in
  (at, pick_workload t)
