lib/analysis/symexec.mli: Commset_lang Induction
