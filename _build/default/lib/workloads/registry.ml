(** All eight evaluation workloads, in the paper's Table 2 order. *)

let all : Workload.t list =
  [
    Md5sum.workload;
    Hmmer.workload;
    Geti.workload;
    Eclat.workload;
    Em3d.workload;
    Potrace.workload;
    Kmeans.workload;
    Url.workload;
  ]

let find name = List.find_opt (fun w -> w.Workload.wname = name) all

let names = List.map (fun w -> w.Workload.wname) all
