(** Call graph over user-defined functions (builtins excluded). *)

module Ir = Commset_ir.Ir
open Commset_support

type t = { graph : string Digraph.t; prog : Ir.program }

let build (prog : Ir.program) =
  let graph = Digraph.create () in
  List.iter (fun name -> Digraph.add_node graph name) prog.Ir.func_order;
  List.iter
    (fun name ->
      let f = Hashtbl.find prog.Ir.funcs name in
      Ir.iter_instrs f (fun _ i ->
          match Ir.callee_of i with
          | Some callee when Hashtbl.mem prog.Ir.funcs callee -> Digraph.add_edge graph name callee
          | _ -> ()))
    prog.Ir.func_order;
  { graph; prog }

let calls t caller callee = Digraph.has_edge t.graph caller callee

(** [transitively_calls t a b]: can execution of [a] reach a call to [b]
    (through any chain of user-function calls, length >= 1)? *)
let transitively_calls t a b =
  List.exists (fun n -> n = b) (List.concat_map (Digraph.reachable t.graph) (Digraph.succs t.graph a))

(** Functions reachable from [name], including itself. *)
let reachable t name = Digraph.reachable t.graph name

let is_recursive t name = transitively_calls t name name
