(** Data-mining example: the two MineBench-derived workloads (GETI and
    ECLAT) side by side, showing the determinism/performance trade-off the
    paper discusses — a pipelined schedule with a sequential output stage
    keeps the printed itemsets in order, while DOALL commits them out of
    order (multiset-equal output) — plus the synchronization-mode spread
    (mutex vs spin vs TM) that Table 2 reports. *)

module P = Commset_pipeline.Pipeline
module W = Commset_workloads.Workload
module T = Commset_transforms

let show name =
  let w = Option.get (Commset_workloads.Registry.find name) in
  let c = P.compile ~name ~setup:w.W.setup w.W.source in
  Printf.printf "=== %s (%s) ===\n" w.W.paper_name w.W.description;
  Printf.printf "features: %s; paper best: %s at %.1fx\n"
    (String.concat "," (P.features_used c))
    w.W.paper_best_scheme w.W.paper_best_speedup;
  let runs = P.evaluate c ~threads:8 in
  List.iter
    (fun (r : P.run) ->
      Printf.printf "  %-52s %5.2fx  output %s\n" r.P.plan.T.Plan.label r.P.speedup
        (P.fidelity_to_string r.P.fidelity))
    runs;
  (* determinism check: which schedules preserved the sequential output
     order exactly, and which only as a multiset? *)
  let exact, multiset =
    List.partition (fun r -> r.P.fidelity = P.Exact) runs
  in
  Printf.printf "  -> %d schedule(s) deterministic, %d out-of-order (set semantics)\n\n"
    (List.length exact) (List.length multiset)

let () =
  show "geti";
  show "eclat"
