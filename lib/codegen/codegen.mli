(** miniC→OCaml codegen backend: compiles a prepared program's target
    iteration body (the region {!Commset_runtime.Precompile.run_iteration}
    interprets) to native code via an out-of-tree [.cmxs] build with a
    content-hash cache, and loads it behind the versioned {!Abi}.

    Emission and semantics: {!Emit}. Cache layout, toolchain discovery
    and Dynlink handling: {!Build}. *)

module Precompile = Commset_runtime.Precompile

type compiled = {
  cg_fn : Abi.iter_fn;
      (** drop-in for [run_iteration]: same trap messages, fuel points
          and node-transition sequence, driven through an {!Abi.ctx} *)
  cg_key : string;  (** content-hash cache key (hex MD5) *)
  cg_cache_hit : bool;  (** reused a previously compiled module *)
  cg_compile_s : float;  (** compiler wall seconds (0 on cache hits) *)
  cg_ml_path : string option;  (** generated source on disk, when written *)
}

(** Generated module source for the target body, with {!Emit.key_marker}
    in place of the final key. [nid_of_iid] is the static
    instruction→PDG-node map ([-1] = no node) the worker's node
    transitions are compiled from. [Error reason] = uncompilable shape. *)
val source :
  prepared:Precompile.t ->
  rt:Precompile.rtarget ->
  nid_of_iid:(int -> int) ->
  unit ->
  (string, string) result

(** Translate, compile (or hit the cache) and load. [Error reason] is a
    fallback taxonomy string: ["uncompilable body: ..."], ["toolchain
    unavailable: ..."], ["compile failed ..."] or ["load failed ..."];
    the caller degrades to the interpreted real engine and surfaces the
    reason. *)
val prepare :
  prepared:Precompile.t ->
  rt:Precompile.rtarget ->
  nid_of_iid:(int -> int) ->
  unit ->
  (compiled, string) result

(** {2 Cache introspection (tests, CI artifacts)} *)

val key_of_source : string -> string
val cache_dir : unit -> string

(** [(ml, cmxs)] paths for a key. *)
val cache_paths : key:string -> string * string

(** Forget in-process loads so the next {!prepare} exercises the disk
    cache (it cannot un-link loaded modules; keys are content-unique). *)
val reset_memo : unit -> unit
