(** Strongly connected components of a PDG and the DAG-SCC used by the
    DSWP family (§4.4–4.5). The edge list is a parameter so callers can
    pass {!Pdg.effective_edges} (commutativity annotations applied). *)

type t = {
  comps : int list array;  (** component id -> member node ids *)
  comp_of : int array;  (** node id -> component id *)
  dag_succs : int list array;  (** component DAG edges *)
  topo : int list;  (** component ids in topological order *)
  carried_internal : bool array;
      (** component id -> has a loop-carried edge among its own members *)
}

(** Component ids are numbered in topological order (sources first). *)
val compute : Pdg.t -> edges:Pdg.edge list -> t

val n_components : t -> int
val members : t -> int -> int list
val component_of : t -> int -> int
val has_carried_dep : t -> int -> bool
val component_weight : Pdg.t -> t -> int -> float

(** Components whose members are all loop-control nodes. *)
val is_loop_control : Pdg.t -> t -> int -> bool
