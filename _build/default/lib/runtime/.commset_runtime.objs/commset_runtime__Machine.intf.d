lib/runtime/machine.mli: Bytes Hashtbl
