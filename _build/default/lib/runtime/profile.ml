(** Runtime profiler: attributes inclusive simulated cycles to each basic
    block (callee time counted at the call site's block) and ranks the
    program's loops by execution share, mirroring the paper's workflow of
    focusing parallelization on hot loops identified via profiling. *)

module Ir = Commset_ir.Ir
module A = Commset_analysis

type frame = { fname : string; mutable cur_label : Ir.label }

type block_costs = (string * Ir.label, float) Hashtbl.t

type loop_report = {
  lr_func : string;
  lr_header : Ir.label;
  lr_cost : float;
  lr_fraction : float;  (** share of total program cycles *)
  lr_depth : int;
}

type t = { reports : loop_report list; total : float }

let record ?(machine = Machine.create ()) (prog : Ir.program) : block_costs * float =
  let costs : block_costs = Hashtbl.create 256 in
  let stack : frame list ref = ref [] in
  let attribute c =
    List.iter
      (fun fr ->
        let key = (fr.fname, fr.cur_label) in
        Hashtbl.replace costs key (c +. Option.value ~default:0. (Hashtbl.find_opt costs key)))
      !stack
  in
  let hooks = Interp.null_hooks () in
  hooks.Interp.on_enter_func <-
    (fun f -> stack := { fname = f.Ir.fname; cur_label = f.Ir.entry } :: !stack);
  hooks.Interp.on_exit_func <- (fun _ -> match !stack with [] -> () | _ :: rest -> stack := rest);
  hooks.Interp.on_block <-
    (fun f l ->
      match !stack with
      | fr :: _ when fr.fname = f.Ir.fname -> fr.cur_label <- l
      | _ -> ());
  hooks.Interp.on_base_cost <- attribute;
  hooks.Interp.on_builtin <- (fun _ c -> attribute c);
  let interp = Interp.create ~hooks ~machine prog in
  let total = Interp.run_main interp in
  (costs, total)

(** Profile the program and rank its loops by inclusive cost. *)
let analyze ?machine (prog : Ir.program) : t =
  let costs, total = record ?machine prog in
  let reports = ref [] in
  List.iter
    (fun fname ->
      let func = Hashtbl.find prog.Ir.funcs fname in
      let cfg = A.Cfg.of_func func in
      let dom = A.Dominance.compute cfg in
      let loops = A.Loops.compute cfg dom in
      List.iter
        (fun (l : A.Loops.loop) ->
          let cost =
            Commset_support.Listx.sum_float
              (fun label -> Option.value ~default:0. (Hashtbl.find_opt costs (fname, label)))
              l.A.Loops.body
          in
          reports :=
            {
              lr_func = fname;
              lr_header = l.A.Loops.header;
              lr_cost = cost;
              lr_fraction = (if total > 0. then cost /. total else 0.);
              lr_depth = l.A.Loops.depth;
            }
            :: !reports)
        loops.A.Loops.loops)
    prog.Ir.func_order;
  let reports =
    List.sort (fun a b -> compare b.lr_cost a.lr_cost) !reports
  in
  { reports; total }

(** The hottest outermost loop — the parallelization target. *)
let hottest t =
  List.find_opt (fun r -> r.lr_depth = 1) t.reports
