test/test_support.ml: Alcotest Commset_support Diag Digraph Gensym Hashtbl List Listx Loc Option QCheck QCheck_alcotest
