(** Abstract-store differencing of member interleavings [A;B] vs [B;A]:
    conflicting locations are resolved by the operation classes of the
    writes landing on them, keyed accesses short-circuit when their keys
    are provably distinct, and the result is a structured {!Residue.t}
    (one atom per conflicting location). *)

module S = Commset_analysis.Symexec
module Effects = Commset_analysis.Effects

(** One write of one member to one location, with the stored value and
    sub-resource key when symbolically known. *)
type write = {
  wloc : Effects.location;
  wclass : Summary.opclass;
  wvalue : S.sval option;
  wkey : S.sval option;
}

(** One read of one member, with its sub-resource key when known. *)
type read = { rdloc : Effects.location; rdkey : S.sval option }

val loc_str : Effects.location -> string

(** Difference the final stores of the two orders under an iteration
    fact. Member 1's values are bound to {!S.Side1}, member 2's to
    {!S.Side2}. An empty residue means the footprints never meet. *)
val diff :
  S.iteration_fact ->
  reads1:read list ->
  writes1:write list ->
  reads2:read list ->
  writes2:write list ->
  Residue.t
