(** Ablation studies of the design choices DESIGN.md calls out:

    - the contribution of each md5sum annotation group (drop one, measure
      the best remaining schedule);
    - bounded-queue capacity vs a bursty two-stage pipeline (the
      evaluation workloads' stages are too regular to need buffering);
    - the spin-lock cache-bounce coefficient vs DOALL scaling under
      contention (kmeans);
    - the STM instrumentation factor vs the TM DOALL variant (kmeans);
    - privatization: hoisting hmmer's per-iteration sequence buffer out of
      the loop defeats it and with it every parallel schedule. *)

module P = Commset_pipeline.Pipeline
module W = Commset_workloads.Workload
module Registry = Commset_workloads.Registry
module T = Commset_transforms
module R = Commset_runtime

let best_speedup ?(threads = 8) c =
  match P.best c ~threads with Some r -> r.P.speedup | None -> 1.0

let best_label ?(threads = 8) c =
  match P.best c ~threads with Some r -> r.P.plan.T.Plan.label | None -> "(sequential)"

(* ------------------------------------------------------------------ *)
(* Annotation ablation on md5sum                                       *)
(* ------------------------------------------------------------------ *)

(* remove the pragma lines whose text contains [pattern] (and, for
   paired directives, the dependent ones no longer valid) *)
let drop_pragmas_matching patterns source =
  String.split_on_char '\n' source
  |> List.filter (fun line ->
         let l = String.trim line in
         not
           (String.length l >= 7
           && String.sub l 0 7 = "#pragma"
           && List.exists
                (fun pat ->
                  let n = String.length pat and m = String.length l in
                  let rec go i = i + n <= m && (String.sub l i n = pat || go (i + 1)) in
                  go 0)
                patterns))
  |> String.concat "\n"

let annotation_ablation () =
  let w = Option.get (Registry.find "md5sum") in
  let cases =
    [
      ("all annotations", w.W.source);
      ("without SELF on print (deterministic)", List.assoc "deterministic" w.W.variants);
      ( "without the READB named block",
        drop_pragmas_matching [ "namedblock"; "namedarg"; "enable" ] w.W.source );
      ("no annotations at all", W.strip_pragmas w.W.source);
    ]
  in
  List.map
    (fun (name, src) ->
      let c = P.compile ~name ~setup:w.W.setup src in
      [ name; Printf.sprintf "%.2fx" (best_speedup c); best_label c ])
    cases

(* ------------------------------------------------------------------ *)
(* Cost-model knob sweeps                                              *)
(* ------------------------------------------------------------------ *)

(* retune a cost-model knob for the duration of [f]; the sims under [f]
   may run on pool domains, which read the knob atomically *)
let with_knob knob value f =
  let saved = Atomic.exchange knob value in
  Fun.protect ~finally:(fun () -> Atomic.set knob saved) f

(* The evaluation workloads have stable per-stage costs, so any capacity
   >= 1 sustains their pipelines (itself a finding). To expose the queue
   model, this sweep builds a synthetic two-stage pipeline directly on the
   simulator: a bursty producer (bimodal 40/1200-cycle items) feeding a
   steady 320-cycle consumer — small queues cannot absorb the bursts. *)
let queue_capacity_sweep () =
  let n_items = 400 in
  let producer =
    List.concat
      (List.init n_items (fun i ->
           let cost = if i mod 8 = 0 then 1200. else 40. in
           [ R.Sim.Compute { cost; tag = "produce" }; R.Sim.Push 0 ]))
  in
  let consumer =
    List.concat
      (List.init n_items (fun _ ->
           [ R.Sim.Pop 0; R.Sim.Compute { cost = 320.; tag = "consume" } ]))
  in
  let seq_total =
    (float_of_int (n_items / 8) *. 1200.)
    +. (float_of_int (n_items - (n_items / 8)) *. 40.)
    +. (float_of_int n_items *. 320.)
  in
  List.map
    (fun cap ->
      with_knob R.Costmodel.queue_capacity cap (fun () ->
          let r =
            R.Sim.run (R.Sim.create ~locks:[||] ~n_queues:1 [| producer; consumer |])
          in
          [ string_of_int cap; Printf.sprintf "%.2fx" (seq_total /. r.R.Sim.makespan) ]))
    [ 1; 2; 4; 8; 32; 128 ]

let spin_bounce_sweep () =
  let w = Option.get (Registry.find "kmeans") in
  let c = P.compile ~name:"kmeans" ~setup:w.W.setup w.W.source in
  let doall_spin threads =
    P.evaluate c ~threads
    |> List.find_opt (fun r ->
           r.P.plan.T.Plan.shape = T.Plan.Sdoall && r.P.plan.T.Plan.variant = T.Plan.Spin)
  in
  List.map
    (fun per_waiter ->
      with_knob R.Costmodel.spin_handoff_per_waiter per_waiter (fun () ->
          let s t = match doall_spin t with Some r -> r.P.speedup | None -> 1.0 in
          [
            Printf.sprintf "%.0f" per_waiter;
            Printf.sprintf "%.2fx" (s 4);
            Printf.sprintf "%.2fx" (s 8);
          ]))
    [ 0.; 45.; 90.; 180. ]

let tm_factor_sweep () =
  let w = Option.get (Registry.find "kmeans") in
  let c = P.compile ~name:"kmeans" ~setup:w.W.setup w.W.source in
  let doall_tm () =
    P.evaluate c ~threads:8
    |> List.find_opt (fun r -> r.P.plan.T.Plan.variant = T.Plan.Tm)
  in
  List.map
    (fun factor ->
      with_knob R.Costmodel.tx_instrumentation_factor factor (fun () ->
          [
            Printf.sprintf "%.1f" factor;
            (match doall_tm () with
            | Some r -> Printf.sprintf "%.2fx" r.P.speedup
            | None -> "n/a");
          ]))
    [ 1.0; 1.4; 1.8; 2.5; 4.0 ]

(* ------------------------------------------------------------------ *)
(* Privatization ablation on hmmer                                     *)
(* ------------------------------------------------------------------ *)

let privatization_ablation () =
  let w = Option.get (Registry.find "hmmer") in
  (* hoist the per-iteration sequence buffer out of the loop: iterations
     now share one scratch array, privatization no longer applies, and
     the write-write conflicts block every parallel schedule *)
  let hoisted =
    let needle =
      "  for (int i = 0; i < nseqs; i++) {\n    // generated protein sequences vary in length\n    int len = (seqlen / 2) + ((i * 7) % seqlen);\n    int[] seq = iarray(len);"
    in
    let replacement =
      "  int[] seq = iarray(seqlen * 2);\n  for (int i = 0; i < nseqs; i++) {\n    int len = (seqlen / 2) + ((i * 7) % seqlen);"
    in
    let replace s =
      let ln = String.length needle in
      let rec find i =
        if i + ln > String.length s then None
        else if String.sub s i ln = needle then Some i
        else find (i + 1)
      in
      match find 0 with
      | Some i ->
          String.sub s 0 i ^ replacement ^ String.sub s (i + ln) (String.length s - i - ln)
      | None -> s
    in
    replace w.W.source
  in
  List.map
    (fun (name, src) ->
      let c = P.compile ~name ~setup:w.W.setup src in
      [ name; Printf.sprintf "%.2fx" (best_speedup c); best_label c ])
    [ ("fresh buffer per iteration", w.W.source); ("hoisted shared buffer", hoisted) ]

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render () =
  let buf = Buffer.create 4096 in
  let section title header rows =
    Buffer.add_string buf (Printf.sprintf "%s\n%s\n\n" title (Ascii.table ~header rows));
    Buffer.add_char buf '\n'
  in
  section "Ablation A: md5sum annotation groups (8 threads)"
    [ "configuration"; "best"; "scheme" ]
    (annotation_ablation ());
  section "Ablation B: queue capacity vs a bursty two-stage pipeline"
    [ "capacity"; "best" ] (queue_capacity_sweep ());
  section "Ablation C: spin cache-bounce per waiter vs kmeans DOALL"
    [ "bounce/waiter"; "4 threads"; "8 threads" ]
    (spin_bounce_sweep ());
  section "Ablation D: STM instrumentation factor vs kmeans DOALL+TM (8 threads)"
    [ "factor"; "speedup" ] (tm_factor_sweep ());
  section "Ablation E: privatization (hmmer scratch buffer, 8 threads)"
    [ "configuration"; "best"; "scheme" ]
    (privatization_ablation ());
  Buffer.contents buf
