(** The versioned registration interface between the host process and a
    dynlinked compiled-iteration module.

    A generated module's last toplevel binding calls {!register} with
    the ABI version it was emitted against and its content-hash key;
    the loader ({!Build}) retrieves the registration with {!take}
    immediately after [Dynlink.loadfile_private] returns and validates
    both fields — a stale plugin (emitted by an older emitter against a
    changed [ctx]) is rejected and recompiled rather than trusted.

    Bump {!abi_version} whenever {!ctx} or the generated calling
    convention changes shape: the version participates in the cache key,
    so old cache entries are simply never looked up again. *)

module Value = Commset_runtime.Value
module Builtins = Commset_runtime.Builtins

(** Version 1: [ctx] record below, [iter_fn = ctx -> regs -> unit]. *)
let abi_version = 1

(** Everything a compiled iteration body needs from the executing
    worker. The closures are the same ones the interpreted path passes
    to {!Commset_runtime.Precompile.run_iteration} — compiled code and
    interpreted code drive identical lock/frontier/buffering machinery. *)
type ctx = {
  cg_globals : Value.t array;  (** executor-shared global value slots *)
  cg_gdefined : bool array;  (** executor-shared defined flags *)
  cg_node : int -> unit;
      (** node transition: called with the PDG node id of the next
          instruction group ([-1] = no node). Implements commset lock
          acquire/release and frontier awaits, exactly like the
          interpreted path's [on_instr]. *)
  cg_builtin : Builtins.t -> Value.t list -> has_dst:bool -> Value.t * float;
      (** every builtin call, at any nesting depth *)
  cg_charge : steps:int -> cost:float -> unit;
      (** flush locally-accounted fuel steps and simulated cycles into
          the worker state (called before [cg_node]/[cg_builtin] and at
          iteration exit, so burn pacing sees fresh totals) *)
  cg_fuel_left : unit -> int;  (** worker fuel at iteration entry *)
}

type iter_fn = ctx -> Value.t array -> unit

(* The registration slot. Loading is serialized under {!Build}'s lock,
   and a plugin registers exactly once from its module initializer, so a
   single slot (not a table) is sufficient and keeps the plugin side
   trivial. *)
let pending : (int * string * iter_fn) option ref = ref None

(** Called by generated modules only. *)
let register ~version ~key fn = pending := Some (version, key, fn)

(** Retrieve and clear the registration left by the last loaded module. *)
let take () =
  let p = !pending in
  pending := None;
  p
