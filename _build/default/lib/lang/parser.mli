(** Recursive-descent parser for miniC, including the COMMSET pragma
    sub-grammar. Syntax errors raise {!Commset_support.Diag.Error}.

    Pragma grammar:
    {v
    commset decl NAME (self|group)
    commset predicate NAME (p1,..) (q1,..) (expr)
    commset nosync NAME
    commset member REF {, REF}
    commset namedblock NAME
    commset namedarg NAME
    commset enable FN . BLOCK in REF {, REF}
    v} *)

(** Parse a whole program from source text. *)
val parse_program : ?file:string -> string -> Ast.program

(** Parse a single expression — used by tests and the predicate
    sub-grammar. *)
val parse_expr_string : ?file:string -> string -> Ast.expr

(** Parse the payload of one [#pragma] line. *)
val parse_pragma : Commset_support.Loc.t -> string -> Ast.pragma
