(** The serve daemon's core: one coordinator domain admitting requests
    — from the built-in open-loop generator ({!Gen}), a Unix-domain
    socket ({!Proto}), or both — into a persistent warm pool of worker
    domains ({!Commset_exec.Workers}), compiling each distinct workload
    exactly once through the single-flight plan cache ({!Plancache}).

    Per request the daemon records a [serve.request] flight-recorder
    span, observes queue-wait / service / total latency into log₂
    histograms, and — every [s_equiv_every]-th request per service —
    checks the response stream against the compile-time sequential
    reference with {!Commset_exec.Equiv.check}.

    Shutdown ({!request_stop}, wired to SIGINT/SIGTERM by the CLI) is
    graceful: admission stops, every already-queued request still runs
    to completion ([r_drained]), the pool joins, and the report is
    returned for at-exit flushing. *)

module P = Commset_pipeline.Pipeline

(** Resolve a workload name to [(source, setup)] — the CLI passes the
    registry; tests pass a stub. *)
type lookup = string -> (string * P.setup, string) result

type config = {
  s_jobs : int;  (** warm pool worker domains *)
  s_ring : int;  (** per-worker task-ring capacity *)
  s_cache_capacity : int;  (** plan-cache entries *)
  s_equiv_every : int;  (** Equiv-check every Nth request per service; 0 = never *)
  s_threads : int;  (** thread count services are planned for *)
  s_verify : bool;  (** run the commutativity sanitizer at compile time *)
  s_lookup : lookup;
}

val default_config : lookup:lookup -> config

(** A self-test load: [l_requests] arrivals drawn from the open-loop
    generator. *)
type load = { l_spec : Gen.spec; l_requests : int }

type latency = { p50_us : float; p95_us : float; p99_us : float; mean_us : float }

type workload_report = {
  wr_name : string;
  wr_key : string;  (** content hash *)
  wr_requests : int;
  wr_compile_s : float;
  wr_best_plan : string option;
  wr_predicted : float option;  (** simulated speedup of the best plan *)
}

type report = {
  r_offered : int;  (** requests admitted *)
  r_served : int;  (** completed successfully *)
  r_failed : int;  (** completed with an error response *)
  r_duration_s : float;  (** first admission → drain complete *)
  r_throughput_rps : float;
  r_offered_rate_rps : float option;  (** the generator's configured mean *)
  r_jobs : int;
  r_cores : int;
  r_oversubscribed : bool;  (** [cores < jobs + 1] *)
  r_queue : latency;
  r_service : latency;
  r_total : latency;
  r_equiv_every : int;
  r_equiv_checked : int;
  r_equiv_failures : int;
  r_equiv_first_failure : string option;
  r_cache : Plancache.stats;
  r_pool : Commset_exec.Workers.stats;
  r_workloads : workload_report list;  (** sorted by name *)
  r_drained : bool;  (** every admitted request completed *)
  r_stopped_by : string;  (** ["completed"] or ["signal"] *)
  r_seed : int option;
  r_burst : float option;
  r_mix : (string * float) list;
  r_services : (string * P.service) list;
      (** every compiled service by name — not serialized by
          {!report_json}; the CLI's [--strict] fidelity gate probes
          these after the drain *)
}

(** Run the daemon until the load is exhausted (selftest), the socket
    loop is stopped (daemon mode), or {!request_stop} fires. At least
    one of [load] / [socket] must be given. [socket] is a filesystem
    path for the Unix-domain listener; it is unlinked on shutdown.
    Raises [Invalid_argument] when neither source of requests is
    given. *)
val run : ?load:load -> ?socket:string -> config -> report

(** Ask the running {!run} loop to stop admitting and drain — safe
    from a signal handler (one atomic store). *)
val request_stop : unit -> unit

(** Render the report as one strict-JSON object (the shape
    [ci/serve-schema.json] pins); self-checked against
    {!Commset_obs.Json_strict.parse} before being returned. *)
val report_json : report -> string
