(** Property tests of the dataflow analyses over randomly generated
    structured programs (nested ifs and loops): dominance laws, loop
    nesting laws, post-dominance of exits, and determinism of
    compilation. *)

module L = Commset_lang
module Ir = Commset_ir.Ir
module A = Commset_analysis
module R = Commset_runtime
module P = Commset_pipeline.Pipeline

let qcheck = QCheck_alcotest.to_alcotest

(* ---- random structured program bodies ---- *)

type shape =
  | Sassign
  | Sif of shape list * shape list
  | Sloop of shape list
  | Sbreak_guard  (** an if(...) { break; } inside a loop *)

let gen_shape =
  QCheck.Gen.(
    sized (fun budget ->
        let rec go budget depth in_loop =
          if budget <= 0 then return [ Sassign ]
          else
            let leaf = return [ Sassign ] in
            let branch =
              let* a = go (budget / 2) (depth + 1) in_loop in
              let* b = go (budget / 2) (depth + 1) in_loop in
              return [ Sif (a, b) ]
            in
            let loop =
              let* b = go (budget / 2) (depth + 1) true in
              return [ Sloop b ]
            in
            let guard = if in_loop then return [ Sbreak_guard ] else leaf in
            let* x =
              if depth > 3 then leaf
              else frequency [ (3, leaf); (2, branch); (2, loop); (1, guard) ]
            in
            let* rest = if budget > 1 then go (budget - 1) depth in_loop else return [] in
            return (x @ rest)
        in
        go (min budget 8) 0 false))

let render_shapes shapes =
  let buf = Buffer.create 512 in
  let fresh =
    let n = ref 0 in
    fun () ->
      incr n;
      !n
  in
  let rec emit indent shapes =
    let pad = String.make indent ' ' in
    List.iter
      (fun s ->
        match s with
        | Sassign ->
            let v = fresh () in
            Buffer.add_string buf (Printf.sprintf "%sint v%d = %d;\n" pad v (v * 3 mod 11));
            Buffer.add_string buf (Printf.sprintf "%sv%d = v%d * 2 + 1;\n" pad v v)
        | Sif (a, b) ->
            let v = fresh () in
            Buffer.add_string buf (Printf.sprintf "%sint c%d = %d;\n" pad v (v mod 5));
            Buffer.add_string buf (Printf.sprintf "%sif (c%d > 2) {\n" pad v);
            emit (indent + 2) a;
            Buffer.add_string buf (Printf.sprintf "%s} else {\n" pad);
            emit (indent + 2) b;
            Buffer.add_string buf (Printf.sprintf "%s}\n" pad)
        | Sloop body ->
            let v = fresh () in
            Buffer.add_string buf
              (Printf.sprintf "%sfor (int k%d = 0; k%d < %d; k%d++) {\n" pad v v
                 (2 + (v mod 4))
                 v);
            emit (indent + 2) body;
            Buffer.add_string buf (Printf.sprintf "%s}\n" pad)
        | Sbreak_guard ->
            let v = fresh () in
            Buffer.add_string buf (Printf.sprintf "%sif (%d > 1) {\n%s  break;\n%s}\n" pad (v mod 4) pad pad))
      shapes
  in
  Buffer.add_string buf "void main() {\n";
  emit 2 shapes;
  Buffer.add_string buf "  print(\"done\");\n}\n";
  Buffer.contents buf

let lower_main src =
  let ast = L.Parser.parse_program ~file:"<prop>" src in
  let _ = L.Typecheck.check ~externs:R.Builtins.extern_sigs ast in
  let prog = Commset_ir.Lower.lower_program ast in
  Option.get (Ir.find_func prog "main")

(* Sbreak_guard may appear outside a loop through nesting choices; wrap
   rendering in a validity filter *)
let valid_src shapes =
  match Commset_support.Diag.guard (fun () -> lower_main (render_shapes shapes)) with
  | Ok _ -> true
  | Error _ -> false

let prop_dominance_laws =
  QCheck.Test.make ~name:"dominance laws on random structured CFGs" ~count:150
    (QCheck.make ~print:render_shapes gen_shape)
    (fun shapes ->
      (not (valid_src shapes))
      ||
      let func = lower_main (render_shapes shapes) in
      let cfg = A.Cfg.of_func func in
      let dom = A.Dominance.compute cfg in
      let labels = A.Cfg.reachable_labels cfg in
      List.for_all
        (fun l ->
          (* entry dominates everything; reflexivity; the idom chain ends
             at the entry; idom strictly dominates *)
          A.Dominance.dominates dom func.Ir.entry l
          && A.Dominance.dominates dom l l
          &&
          match A.Dominance.idom dom l with
          | None -> l = func.Ir.entry
          | Some d -> d <> l && A.Dominance.dominates dom d l)
        labels
      && (* antisymmetry *)
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              not (A.Dominance.dominates dom a b && A.Dominance.dominates dom b a)
              || a = b)
            labels)
        labels)

let prop_loop_laws =
  QCheck.Test.make ~name:"loop laws on random structured CFGs" ~count:150
    (QCheck.make ~print:render_shapes gen_shape)
    (fun shapes ->
      (not (valid_src shapes))
      ||
      let func = lower_main (render_shapes shapes) in
      let cfg = A.Cfg.of_func func in
      let dom = A.Dominance.compute cfg in
      let loops = A.Loops.compute cfg dom in
      List.for_all
        (fun (l : A.Loops.loop) ->
          (* the header is in the body and dominates every body block;
             latches are in the body; exits are outside *)
          List.mem l.A.Loops.header l.A.Loops.body
          && List.for_all (fun b -> A.Dominance.dominates dom l.A.Loops.header b) l.A.Loops.body
          && List.for_all (fun latch -> List.mem latch l.A.Loops.body) l.A.Loops.latches
          && List.for_all (fun e -> not (List.mem e l.A.Loops.body)) l.A.Loops.exits
          && l.A.Loops.depth >= 1)
        loops.A.Loops.loops)

let prop_postdominance =
  QCheck.Test.make ~name:"return blocks post-dominate themselves only downward" ~count:100
    (QCheck.make ~print:render_shapes gen_shape)
    (fun shapes ->
      (not (valid_src shapes))
      ||
      let func = lower_main (render_shapes shapes) in
      let cfg = A.Cfg.of_func func in
      let post = A.Dominance.compute_post cfg in
      (* reflexivity of post-dominance over reachable labels *)
      List.for_all
        (fun l -> A.Dominance.post_dominates post l l)
        (A.Cfg.reachable_labels cfg))

(* ---- compilation determinism ---- *)

let prop_compile_deterministic =
  QCheck.Test.make ~name:"compilation is deterministic (PDG print fixpoint)" ~count:40
    (QCheck.make ~print:render_shapes gen_shape)
    (fun shapes ->
      (not (valid_src shapes))
      ||
      let src = render_shapes shapes in
      let pdg_print () =
        let c = P.compile ~name:"<det>" src in
        Fmt.str "%a" Commset_pdg.Pdg.pp c.P.target.P.pdg
      in
      match Commset_support.Diag.guard pdg_print with
      | Error _ -> true (* programs without loops have no target; fine *)
      | Ok p1 -> p1 = pdg_print ())

let suite =
  ( "analysis-props",
    [
      qcheck prop_dominance_laws;
      qcheck prop_loop_laws;
      qcheck prop_postdominance;
      qcheck prop_compile_deterministic;
    ] )
