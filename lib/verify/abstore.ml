(** Abstract-store differencing of two member interleavings.

    The two interleavings [A;B] and [B;A] are not executed instruction by
    instruction; instead each conflicting abstract location is resolved
    by the *operation classes* of the writes landing on it ({!Summary}):
    class-algebraic writes (accumulation, multiset append) commute by
    construction, last-writer-wins stores commute exactly when both
    orders leave the same final value — decided with {!Symexec.int_eq}
    over the induction-classified stored operands — and everything else
    is conservatively opaque or, when the final values provably differ,
    divergent. Accesses carrying sub-resource *keys* (bitmap handles,
    file descriptors, cache keys) short-circuit: instances touching
    provably distinct keys touch disjoint state regardless of class.

    The result is a {!Residue.t}: one atom per conflicting location,
    preserving the full structure of the disagreement instead of a
    single folded outcome. *)

module S = Commset_analysis.Symexec
module Effects = Commset_analysis.Effects

(** One write of one member to one location, with the stored value and
    sub-resource key when symbolically known. *)
type write = {
  wloc : Effects.location;
  wclass : Summary.opclass;
  wvalue : S.sval option;
  wkey : S.sval option;
}

(** One read of one member, with its sub-resource key when known. *)
type read = { rdloc : Effects.location; rdkey : S.sval option }

let loc_str l = Format.asprintf "%a" Effects.pp_location l

let same_tag_class writes =
  match writes with
  | [] -> None
  | w :: rest ->
      let tag_of = function
        | Summary.Accum t -> Some (`Accum, t)
        | Summary.Multiset t -> Some (`Multiset, t)
        | Summary.Alloc t -> Some (`Alloc, t)
        | Summary.Cursor t -> Some (`Cursor, t)
        | Summary.Rng -> Some (`Rng, "rng")
        | Summary.Advance t -> Some (`Advance, t)
        | Summary.Overwrite -> Some (`Overwrite, "")
        | Summary.Opaque _ -> None
      in
      let first = tag_of w.wclass in
      if first <> None && List.for_all (fun w' -> tag_of w'.wclass = first) rest
      then first
      else None

(* Final value a sequence of last-writer-wins stores leaves at a
   location: the last write with a known value, or None. *)
let final_value ws = List.fold_left (fun _ w -> w.wvalue) None ws

(* Are two key lists provably pairwise-distinct across the two sides? *)
let keys_distinct fact keys1 keys2 =
  keys1 <> [] && keys2 <> []
  && List.for_all Option.is_some keys1
  && List.for_all Option.is_some keys2
  && List.for_all
       (fun k1 ->
         List.for_all
           (fun k2 ->
             match (k1, k2) with
             | Some a, Some b -> S.int_eq fact a b = S.False
             | _ -> false)
           keys2)
       keys1

(* any write carries key information: the resource is partitioned *)
let keyed ws = List.exists (fun w -> w.wkey <> None) ws

(* Residue atom at one location, given each member's writes to it and
   the partner's keyed reads of it. *)
let diff_loc fact l ~w1 ~w2 ~r1 ~r2 : Residue.atom option =
  let atom st detail = Some (Residue.atom ~loc:l st detail) in
  match (w1, w2) with
  | [], [] -> None
  | _ :: _, [] | [], _ :: _ ->
      let writes, readers = if w1 <> [] then (w1, r2) else (w2, r1) in
      if readers = [] then None (* single writer, partner indifferent *)
      else
        let wkeys = List.map (fun w -> w.wkey) writes
        and rkeys = List.map (fun (r : read) -> r.rdkey) readers in
        if keys_distinct fact wkeys rkeys then
          atom Residue.Agree
            (Printf.sprintf "writer and reader touch provably distinct %s keys"
               (loc_str l))
        else
          atom Residue.Opaque
            (Printf.sprintf
               "read/write skew on %s: one member reads what the other writes"
               (loc_str l))
  | _ -> (
      let k1 = List.map (fun w -> w.wkey) w1 and k2 = List.map (fun w -> w.wkey) w2 in
      if keys_distinct fact k1 k2 then
        atom Residue.Agree
          (Printf.sprintf "instances write provably distinct %s keys" (loc_str l))
      else
        match same_tag_class (w1 @ w2) with
        | Some (`Accum, t) ->
            atom Residue.Agree (Printf.sprintf "commutative accumulation (%s)" t)
        | Some (`Multiset, t) ->
            atom Residue.Agree
              (Printf.sprintf "append-only sink (%s), multiset semantics" t)
        | Some (`Alloc, t) ->
            atom Residue.Benign
              (Printf.sprintf
                 "allocation order permutes %s handles (commutes up to renaming)" t)
        | Some (`Cursor, t) ->
            if keyed (w1 @ w2) then
              (* a partitioned cursor whose keys could not be separated:
                 the instances may interleave draws from the same
                 stream, which reorders the drawn data *)
              atom Residue.Opaque
                (Printf.sprintf
                   "instances may advance the same %s cursor: drawn values would \
                    interleave"
                   t)
            else
              atom Residue.Benign
                (Printf.sprintf
                   "shared %s cursor: positions commute, drawn values are exchanged"
                   t)
        | Some (`Rng, _) -> atom Residue.Benign "random-stream draws are exchanged"
        | Some (`Advance, t) ->
            atom Residue.Benign
              (Printf.sprintf
                 "each instance applies the same deterministic update (%s): both \
                  orders leave the twice-advanced state, results are exchanged"
                 t)
        | Some (`Overwrite, _) -> (
            (* In A;B the final value is B's last store; in B;A it is A's. *)
            match (final_value w2, final_value w1) with
            | Some vab, Some vba -> (
                match S.int_eq fact vab vba with
                | S.True -> atom Residue.Agree "both orders store the same final value"
                | S.False ->
                    atom
                      (Residue.Diverge { Residue.dloc = l; dv1 = vba; dv2 = vab })
                      "the two orders leave provably different final values"
                | S.Maybe ->
                    atom Residue.Opaque
                      (Printf.sprintf "final value of %s depends on order" (loc_str l)))
            | _ ->
                atom Residue.Opaque
                  (Printf.sprintf "stored value at %s is not symbolically known"
                     (loc_str l)))
        | None ->
            atom Residue.Opaque
              (Printf.sprintf "writes of mixed operation classes on %s" (loc_str l)))

(** Difference the final stores of [A;B] and [B;A].

    [writes1]/[writes2] are the members' classified writes with their
    symbolic stored values and keys (member 1 bound to {!S.Side1},
    member 2 to {!S.Side2}); [reads1]/[reads2] their keyed reads. Only
    locations where the two footprints actually conflict contribute
    atoms; an empty residue means the footprints never meet. *)
let diff fact ~(reads1 : read list) ~(writes1 : write list) ~(reads2 : read list)
    ~(writes2 : write list) : Residue.t =
  let wlocs =
    List.fold_left
      (fun s w -> Effects.LocSet.add w.wloc s)
      Effects.LocSet.empty (writes1 @ writes2)
  in
  let touch_set reads writes =
    List.fold_left
      (fun s (r : read) -> Effects.LocSet.add r.rdloc s)
      (List.fold_left (fun s w -> Effects.LocSet.add w.wloc s) Effects.LocSet.empty writes)
      reads
  in
  let touches1 = touch_set reads1 writes1 and touches2 = touch_set reads2 writes2 in
  List.rev
    (Effects.LocSet.fold
       (fun l acc ->
         if
           not
             (Effects.LocSet.exists (Effects.locs_conflict l) touches1
             && Effects.LocSet.exists (Effects.locs_conflict l) touches2)
         then acc
         else
           let w1 = List.filter (fun w -> Effects.locs_conflict w.wloc l) writes1
           and w2 = List.filter (fun w -> Effects.locs_conflict w.wloc l) writes2 in
           let r1 =
             List.filter (fun (r : read) -> Effects.locs_conflict r.rdloc l) reads1
           and r2 =
             List.filter (fun (r : read) -> Effects.locs_conflict r.rdloc l) reads2
           in
           match diff_loc fact l ~w1 ~w2 ~r1 ~r2 with
           | Some a -> a :: acc
           | None -> acc)
       wlocs [])
