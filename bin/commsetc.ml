(** commsetc — the COMMSET parallelizing compiler driver.

    Subcommands mirror the paper's workflow (Figure 5):
    - [list]      the bundled evaluation workloads;
    - [check]     frontend + metadata + well-formedness checks;
    - [pdg]       the annotated PDG of the hottest loop (Figure 2 style);
    - [plans]     the parallelization plans the transforms produce;
    - [run]       simulate plans on the virtual multicore and report
                  speedups and output fidelity — or, with [--jobs N],
                  execute them on N real OCaml domains with an
                  output-equivalence check against the sequential run;
    - [seq]       run the program sequentially and print its output;
    - [serve]     the request-serving daemon: warm domain pool, plan
                  cache, open-loop selftest harness (DESIGN §18);
    - [trace]     flight-recorder trace + metrics of a full evaluation
                  (Chrome trace-event JSON, loadable in Perfetto);
    - [table1]    the paper's Table 1 feature-comparison matrix.

    Observability hooks that work on $(i,every) subcommand:
    [COMMSET_TRACE=path] enables the flight recorder for the whole
    invocation and writes a Chrome trace at exit; [COMMSET_LOG=level]
    sets the default log level. *)

open Cmdliner
module P = Commset_pipeline.Pipeline
module W = Commset_workloads.Workload
module Registry = Commset_workloads.Registry
module T = Commset_transforms
module R = Commset_runtime
module V = Commset_verify
module Diag = Commset_support.Diag
module Obs = Commset_obs

let load ~workload ~variant ~file : string * string * (R.Machine.t -> unit) =
  match (workload, file) with
  | Some name, None -> (
      match Registry.find name with
      | Some w -> (
          match variant with
          | None -> (w.W.wname, w.W.source, w.W.setup)
          | Some v -> (
              match List.assoc_opt v w.W.variants with
              | Some src -> (w.W.wname ^ "/" ^ v, src, w.W.setup)
              | None ->
                  Fmt.epr "unknown variant '%s' (available: %s)@." v
                    (String.concat ", " (List.map fst w.W.variants));
                  exit 2))
      | None ->
          Fmt.epr "unknown workload '%s' (try: %s)@." name
            (String.concat ", " Registry.names);
          exit 2)
  | None, Some path ->
      let src =
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with Sys_error reason ->
          Commset_support.Diag.error ~code:"CS008" "cannot read input file '%s': %s"
            path reason
      in
      (Filename.basename path, src, (fun _ -> ()))
  | _ ->
      Fmt.epr "exactly one of WORKLOAD or --file is required@.";
      exit 2

let setup_logs level =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some level)

let with_diag f =
  try f () with
  | Commset_support.Diag.Error d ->
      Fmt.epr "%s@." (Commset_support.Diag.to_string d);
      exit 1

(* ---- common arguments ---- *)

let workload_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc:"Bundled workload name.")

let variant_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "variant" ] ~docv:"NAME" ~doc:"Annotation variant of the workload.")

let file_arg =
  (* a plain string, not [Arg.file]: unreadable paths must surface as a
     proper CS008 diagnostic, not a cmdliner parse error *)
  Arg.(
    value
    & opt (some string) None
    & info [ "file"; "f" ] ~docv:"FILE" ~doc:"Compile a miniC source file instead.")

let threads_arg =
  Arg.(value & opt int 8 & info [ "threads"; "t" ] ~docv:"N" ~doc:"Thread count (1-8).")

let log_level_arg =
  let conv_level =
    Arg.enum [ ("debug", Logs.Debug); ("info", Logs.Info); ("warn", Logs.Warning) ]
  in
  Arg.(
    value
    & opt conv_level Logs.Warning
    & info [ "log-level" ] ~docv:"LEVEL"
        ~env:(Cmd.Env.info "COMMSET_LOG" ~doc:"Default log level.")
        ~doc:
          "Log verbosity: $(b,debug), $(b,info) or $(b,warn). $(b,info) reports the \
           parallelization workflow stages (Figure 5); $(b,debug) additionally traces \
           the domain pool ($(b,commset.pool)), the simulator ($(b,commset.sim)) and \
           the annotation verifier ($(b,commset.verify)).")

(* ---- subcommands ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun w ->
        Fmt.pr "%-8s  %s@." w.W.wname w.W.description;
        List.iter (fun (v, _) -> Fmt.pr "%-8s    variant: %s@." "" v) w.W.variants)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled evaluation workloads") Term.(const run $ const ())

let check_cmd =
  let run workload variant file level =
    setup_logs level;
    with_diag (fun () ->
        let name, src, setup = load ~workload ~variant ~file in
        let c = P.compile ~name ~setup src in
        Fmt.pr "%s: OK@." name;
        Fmt.pr "  %d COMMSET annotations, features: %s@." (P.count_annotations src)
          (String.concat "," (P.features_used c));
        Fmt.pr "  commsets:@.";
        List.iter
          (fun (s : Commset_core.Metadata.set_info) ->
            Fmt.pr "    %-16s %s%s%s rank=%d members=[%s]@." s.Commset_core.Metadata.sname
              (match s.Commset_core.Metadata.kind with
              | Commset_lang.Ast.Self_set -> "self"
              | Commset_lang.Ast.Group_set -> "group")
              (if s.Commset_core.Metadata.predicate <> None then " predicated" else "")
              (if s.Commset_core.Metadata.nosync then " nosync" else "")
              s.Commset_core.Metadata.rank
              (String.concat "; "
                 (List.map Commset_core.Metadata.member_to_string
                    (Commset_core.Metadata.members_of c.P.md s.Commset_core.Metadata.sname))))
          (Commset_core.Metadata.sets_in_rank_order c.P.md);
        Fmt.pr "  hottest loop: %.1f%% of execution, %d iterations@."
          (100. *. P.loop_fraction c)
          (R.Trace.n_iterations c.P.trace))
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Frontend, metadata and well-formedness checks")
    Term.(const run $ workload_arg $ variant_arg $ file_arg $ log_level_arg)

let pdg_cmd =
  let run workload variant file level =
    setup_logs level;
    with_diag (fun () ->
        let name, src, setup = load ~workload ~variant ~file in
        let c = P.compile ~name ~setup src in
        Fmt.pr "%a@." Commset_pdg.Pdg.pp c.P.target.P.pdg;
        Fmt.pr "(%d edges uco, %d ico)@." c.P.target.P.n_uco c.P.target.P.n_ico)
  in
  Cmd.v
    (Cmd.info "pdg" ~doc:"Print the annotated PDG of the hottest loop")
    Term.(const run $ workload_arg $ variant_arg $ file_arg $ log_level_arg)

let plans_cmd =
  let run workload variant file threads level =
    setup_logs level;
    with_diag (fun () ->
        let name, src, setup = load ~workload ~variant ~file in
        let c = P.compile ~name ~setup src in
        List.iter (fun (p : T.Plan.t) -> Fmt.pr "%s@." p.T.Plan.label) (P.plans c ~threads))
  in
  Cmd.v
    (Cmd.info "plans" ~doc:"List the parallelization plans")
    Term.(const run $ workload_arg $ variant_arg $ file_arg $ threads_arg $ log_level_arg)

(* case-insensitive substring match for --plan label selectors *)
let contains_ci ~sub s =
  let sub = String.lowercase_ascii sub and s = String.lowercase_ascii s in
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let plan_matches sel (p : T.Plan.t) =
  match String.lowercase_ascii sel with
  | "all" -> true
  | "doall" -> p.T.Plan.shape = T.Plan.Sdoall
  | "dswp" -> (
      match p.T.Plan.shape with
      | T.Plan.Sdswp _ -> not (T.Plan.is_psdswp p)
      | T.Plan.Sdoall -> false)
  | "psdswp" | "ps-dswp" -> T.Plan.is_psdswp p
  | sel -> contains_ci ~sub:sel p.T.Plan.label

(* The engine column: what actually ran, plus the fallback reason
   whenever that differs from what was requested. *)
let engine_cell ~requested (s : Commset_exec.Exec.stats) =
  let req = Commset_exec.Exec.engine_name requested in
  if s.Commset_exec.Exec.x_engine = req then s.Commset_exec.Exec.x_engine
  else
    match s.Commset_exec.Exec.x_engine_reason with
    | Some why -> Printf.sprintf "%s (requested %s: %s)" s.Commset_exec.Exec.x_engine req why
    | None -> Printf.sprintf "%s (requested %s)" s.Commset_exec.Exec.x_engine req

(* [--calibrate]: load the persisted profile for this workload and feed
   it into Costmodel before any plan runs; a missing profile is a
   warning, not an error (the run proceeds uncalibrated). *)
let apply_calibration ~name =
  match R.Calib.load ~workload:name with
  | Ok p ->
      R.Calib.apply p;
      Some
        {
          Commset_report.Stat.cn_path = R.Calib.path ~workload:name;
          cn_ns_per_cycle = p.R.Calib.p_ns_per_cycle;
          cn_loaded = true;
        }
  | Error e ->
      Fmt.epr "calibration: %s (run 'commsetc stat %s' to create a profile)@." e name;
      None

(* Persist a calibration profile from the strongest measured run that
   has attribution and did not mismatch. *)
let save_profile ~name ~engine (runs : P.exec_run list) =
  let ok =
    List.filter
      (fun (r : P.exec_run) ->
        r.P.xfidelity <> P.Mismatch && r.P.xstats.Commset_exec.Exec.x_attrib <> None)
      runs
  in
  let best =
    List.fold_left
      (fun acc (r : P.exec_run) ->
        match acc with
        | Some (b : P.exec_run)
          when b.P.xstats.Commset_exec.Exec.x_measured_speedup
               >= r.P.xstats.Commset_exec.Exec.x_measured_speedup ->
            acc
        | _ -> Some r)
      None ok
  in
  match best with
  | None -> None
  | Some r -> (
      let s = Option.get r.P.xstats.Commset_exec.Exec.x_attrib in
      match
        R.Calib.of_summary ~workload:name ~engine ~predicted:r.P.xpredicted
          ~measured:r.P.xstats.Commset_exec.Exec.x_measured_speedup s
      with
      | Error e ->
          Fmt.epr "calibration: profile not saved: %s@." e;
          None
      | Ok p -> (
          match R.Calib.save p with
          | Ok path ->
              Some
                {
                  Commset_report.Stat.cn_path = path;
                  cn_ns_per_cycle = p.R.Calib.p_ns_per_cycle;
                  cn_loaded = false;
                }
          | Error e ->
              Fmt.epr "calibration: cannot save profile: %s@." e;
              None))

(* [--strict]: gate measured speedups on the calibration fidelity band
   (COMMSET_FIDELITY_BAND). The gate's own skip logic handles the
   oversubscribed case with a visible message; messages go to stderr so
   --format=json stdout stays a single document. *)
let gate_fidelity ~strict ~cores ~jobs (runs : P.exec_run list) =
  if strict then
    match P.fidelity_gate ~cores ~jobs runs with
    | P.Gate_skipped why -> Fmt.epr "fidelity gate skipped: %s@." why
    | P.Gate_ok worst ->
        Fmt.epr "fidelity gate: OK (worst relative gap %.2f within band %.2f)@." worst
          (R.Costmodel.fidelity_band ())
    | P.Gate_exceeded over ->
        Fmt.epr "fidelity gate FAILED (band %.2f, COMMSET_FIDELITY_BAND):@."
          (R.Costmodel.fidelity_band ());
        List.iter (fun (label, gap) -> Fmt.epr "  %-52s gap %.2f@." label gap) over;
        exit 1

let exec_real c ~name ~engine ~jobs ~plan_sel ~strict ~format ~calibrate =
  let all = P.executable_plans c ~threads:jobs in
  let selected = List.filter (plan_matches plan_sel) all in
  if selected = [] then (
    Fmt.epr "no executable plan matches --plan=%s at %d job(s)@." plan_sel jobs;
    Fmt.epr "executable plans:@.";
    List.iter (fun (p : T.Plan.t) -> Fmt.epr "  %s@." p.T.Plan.label) all;
    exit (if strict then 1 else 0));
  let calib = if calibrate then apply_calibration ~name else None in
  let cores = Domain.recommended_domain_count () in
  match format with
  | `Json ->
      let runs =
        List.map (fun plan -> P.run_parallel ~engine ~jobs ~attrib:true c plan) selected
      in
      print_string
        (Commset_report.Stat.render_json ~workload:name
           ~engine:(Commset_exec.Exec.engine_name engine)
           ~jobs ~cores ?calib runs);
      let mismatches =
        List.length (List.filter (fun (r : P.exec_run) -> r.P.xfidelity = P.Mismatch) runs)
      in
      if mismatches > 0 then (
        Fmt.epr "%d plan(s) FAILED output equivalence@." mismatches;
        exit 1);
      gate_fidelity ~strict ~cores ~jobs runs
  | `Text ->
      Fmt.pr "real execution on %d domain(s), engine %s (%d core(s) available):@." jobs
        (Commset_exec.Exec.engine_name engine)
        cores;
      if cores < 2 then
        Fmt.pr "  note: single core available — measured speedups are not meaningful@.";
      (match calib with
      | Some n ->
          Fmt.pr "  calibration: loaded %s (ns/cycle %.3f)@."
            n.Commset_report.Stat.cn_path n.Commset_report.Stat.cn_ns_per_cycle
      | None -> ());
      Fmt.pr "  %-52s %9s %9s  %s@." "plan" "predicted" "measured" "outputs";
      let executed = ref [] in
      let mismatches =
        List.fold_left
          (fun bad plan ->
            let x = P.run_parallel ~engine ~jobs c plan in
            executed := x :: !executed;
            let s = x.P.xstats in
            Fmt.pr "  %-52s %8.2fx %8.2fx  %s  [%s, %.1f ms seq, %.1f ms par%s]@."
              s.Commset_exec.Exec.x_label x.P.xpredicted
              s.Commset_exec.Exec.x_measured_speedup
              (P.fidelity_to_string x.P.xfidelity)
              (engine_cell ~requested:engine s)
              (s.Commset_exec.Exec.x_wall_seq_s *. 1e3)
              (s.Commset_exec.Exec.x_wall_par_s *. 1e3)
              (if s.Commset_exec.Exec.x_engine = "codegen" then
                 Printf.sprintf ", codegen %s %.2fs"
                   (if s.Commset_exec.Exec.x_codegen_cache_hit then "cache-hit"
                    else "compiled")
                   s.Commset_exec.Exec.x_codegen_compile_s
               else "");
            if x.P.xfidelity = P.Mismatch then bad + 1 else bad)
          0 selected
      in
      if mismatches > 0 then (
        Fmt.epr "%d plan(s) FAILED output equivalence@." mismatches;
        exit 1);
      if strict then
        Fmt.pr "all %d plan(s) match the sequential reference@." (List.length selected);
      gate_fidelity ~strict ~cores ~jobs (List.rev !executed)

let run_cmd =
  let run workload variant file threads jobs engine plan_sel strict timeline format
      calibrate level =
    setup_logs level;
    with_diag (fun () ->
        let name, src, setup = load ~workload ~variant ~file in
        let c = P.compile ~name ~setup src in
        let engine =
          Option.map
            (fun e ->
              match Commset_exec.Exec.engine_of_string e with
              | Some e -> e
              | None ->
                  Fmt.epr "--engine must be real, codegen or burn, not %s@." e;
                  exit 2)
            engine
        in
        (* --engine without --jobs still means "execute for real":
           auto-size the worker-domain count from the machine. *)
        let jobs =
          match (jobs, engine) with
          | (Some _ as j), _ -> j
          | None, Some _ -> Some (Commset_exec.Exec.default_jobs ())
          | None, None -> None
        in
        match jobs with
        | Some jobs ->
            if jobs < 1 then (
              Fmt.epr "--jobs must be at least 1@.";
              exit 2);
            let engine =
              Option.value engine ~default:Commset_exec.Exec.Real_engine
            in
            exec_real c ~name ~engine ~jobs ~plan_sel ~strict ~format ~calibrate
        | None ->
            if format = `Json then (
              Fmt.epr "--format=json requires real execution (add --jobs or --engine)@.";
              exit 2);
            if calibrate then (
              Fmt.epr "--calibrate requires real execution (add --jobs or --engine)@.";
              exit 2);
            Fmt.pr "%s: sequential baseline %.0f cycles over %d iterations@." name
              c.P.trace.R.Trace.seq_total
              (R.Trace.n_iterations c.P.trace);
            List.iter
              (fun (r : P.run) ->
                let extras =
                  (if r.P.lock_contended > 0 then
                     [ Printf.sprintf "%d contended acquires" r.P.lock_contended ]
                   else [])
                  @
                  if r.P.tx_aborts > 0 then
                    [ Printf.sprintf "%d tx aborts" r.P.tx_aborts ]
                  else []
                in
                Fmt.pr "  %-52s %5.2fx  %s%s@." r.P.plan.T.Plan.label r.P.speedup
                  (P.fidelity_to_string r.P.fidelity)
                  (if extras = [] then "" else "  [" ^ String.concat ", " extras ^ "]"))
              (P.evaluate c ~threads);
            if timeline then (
              match P.best ~record_timeline:true c ~threads with
              | Some r -> Fmt.pr "@.%s@." (Commset_report.Evaluation.render_timeline r)
              | None -> ()))
  in
  let timeline_arg =
    Arg.(value & flag & info [ "timeline" ] ~doc:"Print the best plan's thread timeline.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Execute the plans on $(docv) real OCaml domains instead of simulating \
             them, with a mandatory output-equivalence check against the sequential \
             reference. Defaults to the machine's available cores minus one when \
             --engine is given without $(docv).")
  in
  let engine_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Execution engine for real runs: $(b,real) (run the prepared program \
             itself on domains; the default), $(b,codegen) (like real, with the \
             iteration body compiled to native code — falls back to real with a \
             printed reason when the toolchain or body shape defeats it; cache \
             under \\$COMMSET_CODEGEN_CACHE, \\$XDG_CACHE_HOME/commset-codegen or \
             _build/codegen) or $(b,burn) (replay the emitted per-thread schedule \
             as calibrated cycle burns). Implies real execution even without \
             --jobs.")
  in
  let plan_arg =
    Arg.(
      value
      & opt string "all"
      & info [ "plan" ] ~docv:"SEL"
          ~doc:
            "With --jobs: which plans to execute — $(b,doall), $(b,dswp), \
             $(b,psdswp), $(b,all), or a case-insensitive label substring.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "With --jobs: exit non-zero when no plan matches; mismatches always exit \
             non-zero.")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "With --jobs/--engine: $(b,text) (the progressive table) or $(b,json) (one \
             strict-JSON document with the full stats and attribution of every \
             executed plan, the schema CI pins in ci/stat-schema.json).")
  in
  let calibrate_arg =
    Arg.(
      value & flag
      & info [ "calibrate" ]
          ~doc:
            "With --jobs/--engine: load the workload's persisted calibration profile \
             (\\$COMMSET_CALIB_DIR, default _build/calib; written by $(b,commsetc \
             stat)) into the cost model before running.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Evaluate every plan: simulate on the virtual multicore, or with --jobs \
          execute on real OCaml domains")
    Term.(
      const run $ workload_arg $ variant_arg $ file_arg $ threads_arg $ jobs_arg
      $ engine_arg $ plan_arg $ strict_arg $ timeline_arg $ format_arg $ calibrate_arg
      $ log_level_arg)

let seq_cmd =
  let run workload variant file level =
    setup_logs level;
    with_diag (fun () ->
        let name, src, setup = load ~workload ~variant ~file in
        let ast = Commset_lang.Parser.parse_program ~file:name src in
        let _ = Commset_lang.Typecheck.check ~externs:R.Builtins.extern_sigs ast in
        let prog = Commset_ir.Lower.lower_program ast in
        let machine = R.Machine.create () in
        setup machine;
        let prepared = R.Precompile.prepare prog in
        let total = R.Precompile.run_main (R.Precompile.executor ~machine prepared) in
        List.iter print_endline (R.Machine.outputs machine);
        Fmt.pr "-- %.0f simulated cycles@." total)
  in
  Cmd.v
    (Cmd.info "seq" ~doc:"Run the program sequentially and print its output")
    Term.(const run $ workload_arg $ variant_arg $ file_arg $ log_level_arg)

let explain_cmd =
  let run workload variant file level =
    setup_logs level;
    with_diag (fun () ->
        let name, src, setup = load ~workload ~variant ~file in
        let c = P.compile ~name ~setup src in
        Fmt.pr "%s" (Commset_report.Explain.render c))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Report the loop-carried dependences that still inhibit DOALL, at source \
          level, with annotation hints (the feedback step of the paper's workflow)")
    Term.(const run $ workload_arg $ variant_arg $ file_arg $ log_level_arg)

let sweep_cmd =
  let run workload variant file level =
    setup_logs level;
    with_diag (fun () ->
        let name, src, setup = load ~workload ~variant ~file in
        let c = P.compile ~name ~setup src in
        let series = P.sweep c ~max_threads:8 in
        (* keep the chart readable: the strongest few series *)
        let at8 pts = Option.value ~default:0. (List.assoc_opt 8 pts) in
        let top =
          List.sort (fun a b -> compare (at8 (snd b)) (at8 (snd a))) series
          |> Commset_support.Listx.take 6
        in
        print_string (Commset_report.Ascii.chart ~max_threads:8 top))
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Speedup-vs-threads chart for every plan family (Figure 6 style)")
    Term.(const run $ workload_arg $ variant_arg $ file_arg $ log_level_arg)

let lint_cmd =
  (* exit codes: 0 all clean, 1 warnings only, 2 any error (a refuted
     annotation, an impure predicate, or a failure to compile at all) *)
  let run workload variant file format strict level =
    setup_logs level;
    let fail (d : Diag.diagnostic) =
      (match format with
      | `Text -> Fmt.epr "%s@." (Diag.to_string d)
      | `Json ->
          print_endline
            (Commset_report.Verdicts.render_json { Commset_verify.Verdict.rpairs = [] } [ d ]));
      exit 2
    in
    let name, src, setup =
      try load ~workload ~variant ~file with Diag.Error d -> fail d
    in
    let c = try P.compile ~name ~setup ~verify:true src with Diag.Error d -> fail d in
    let report =
      match c.P.verification with
      | Some r -> r
      | None -> { Commset_verify.Verdict.rpairs = [] }
    in
    let diags = V.Lint.run_all { V.Lint.md = c.P.md; report = Some report; strict } in
    (match format with
    | `Text ->
        Fmt.pr "%s@." (Commset_report.Verdicts.render report);
        List.iter (fun d -> Fmt.pr "%s@." (Diag.to_string d)) diags
    | `Json -> print_endline (Commset_report.Verdicts.render_json report diags));
    let has_error =
      List.exists (fun (d : Diag.diagnostic) -> d.Diag.severity = Diag.Error_sev) diags
    in
    exit (if has_error then 2 else if diags <> [] then 1 else 0)
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Also warn about pairs whose commutativity could not be verified (CS002).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Audit the COMMSET annotations: symbolic differencing plus dynamic replay of \
          every member pair, and the annotation lint passes (CS001-CS007)")
    Term.(
      const run $ workload_arg $ variant_arg $ file_arg $ format_arg $ strict_arg
      $ log_level_arg)

let table1_cmd =
  let run () = print_endline (Commset_report.Table1.render ()) in
  Cmd.v
    (Cmd.info "table1" ~doc:"Print the paper's Table 1 feature matrix")
    Term.(const run $ const ())

(* ---- flight-recorder trace ---- *)

let write_file path contents =
  try
    let oc = open_out_bin path in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)
  with Sys_error reason ->
    Fmt.epr "cannot write '%s': %s@." path reason;
    exit 2

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error reason ->
    Fmt.epr "cannot read '%s': %s@." path reason;
    exit 2

(* ---- execution observatory ---- *)

(* [--plan=best]: the strongest DOALL and the strongest non-DOALL
   executable plan by simulator-predicted speedup — the two pipeline
   shapes a profile is worth reading for, without running every
   schedule variant. *)
let select_best_plans c ~jobs (all : T.Plan.t list) =
  let sims = P.evaluate c ~threads:jobs in
  let score (p : T.Plan.t) =
    match
      List.find_opt (fun (r : P.run) -> r.P.plan.T.Plan.label = p.T.Plan.label) sims
    with
    | Some r -> r.P.speedup
    | None -> 0.
  in
  let best pred =
    List.fold_left
      (fun acc p ->
        if not (pred p) then acc
        else
          match acc with Some q when score q >= score p -> acc | _ -> Some p)
      None all
  in
  let doall = best (fun (p : T.Plan.t) -> p.T.Plan.shape = T.Plan.Sdoall) in
  let other = best (fun (p : T.Plan.t) -> p.T.Plan.shape <> T.Plan.Sdoall) in
  List.filter_map Fun.id [ doall; other ]

let stat_cmd =
  (* exit codes: 0 profiled OK, 1 output mismatch or nothing to run,
     2 bad usage, 3 internal trace-validation failure *)
  let run workload variant file engine jobs plan_sel format calibrate no_save trace_out
      level =
    setup_logs level;
    with_diag (fun () ->
        let name, src, setup = load ~workload ~variant ~file in
        let engine =
          match Commset_exec.Exec.engine_of_string engine with
          | Some Commset_exec.Exec.Burn_engine | None ->
              Fmt.epr "--engine must be real or codegen, not %s@." engine;
              exit 2
          | Some e -> e
        in
        let jobs =
          match jobs with Some j -> j | None -> Commset_exec.Exec.default_jobs ()
        in
        if jobs < 1 then (
          Fmt.epr "--jobs must be at least 1@.";
          exit 2);
        let c = P.compile ~name ~setup src in
        let calib_in = if calibrate then apply_calibration ~name else None in
        let all = P.executable_plans c ~threads:jobs in
        let selected =
          if String.lowercase_ascii plan_sel = "best" then select_best_plans c ~jobs all
          else List.filter (plan_matches plan_sel) all
        in
        if selected = [] then (
          Fmt.epr "no executable plan matches --plan=%s at %d job(s)@." plan_sel jobs;
          Fmt.epr "executable plans:@.";
          List.iter (fun (p : T.Plan.t) -> Fmt.epr "  %s@." p.T.Plan.label) all;
          exit 1);
        let tracing = trace_out <> None in
        if tracing then (
          Obs.Recorder.reset ();
          Obs.Recorder.set_enabled true);
        let runs =
          List.map (fun plan -> P.run_parallel ~engine ~jobs ~attrib:true c plan) selected
        in
        if tracing then Obs.Recorder.set_enabled false;
        let engine_s = Commset_exec.Exec.engine_name engine in
        let calib =
          match calib_in with
          | Some _ as loaded -> loaded
          | None when not no_save -> save_profile ~name ~engine:engine_s runs
          | None -> None
        in
        let cores = Domain.recommended_domain_count () in
        (match format with
        | `Text ->
            print_string
              (Commset_report.Stat.render_text ~workload:name ~engine:engine_s ~jobs
                 ~cores ?calib runs)
        | `Json ->
            print_string
              (Commset_report.Stat.render_json ~workload:name ~engine:engine_s ~jobs
                 ~cores ?calib runs));
        (match trace_out with
        | None -> ()
        | Some path -> (
            let spans = Obs.Recorder.dump () in
            let base_ns =
              List.fold_left
                (fun m (s : Obs.Recorder.span) -> Float.min m s.Obs.Recorder.t0_ns)
                infinity spans
            in
            let base_ns = if Float.is_finite base_ns then Some base_ns else None in
            let events =
              Obs.Export.of_recorder ~pid:0 spans
              @ List.concat_map
                  (fun (r : P.exec_run) ->
                    match r.P.xstats.Commset_exec.Exec.x_attrib with
                    | Some s -> Obs.Export.of_attrib ~pid:0 ?base_ns s
                    | None -> [])
                  runs
            in
            let json = Obs.Export.chrome_json events in
            match Obs.Json_strict.validate_chrome_trace json with
            | Ok n ->
                write_file path json;
                Fmt.epr "wrote %d trace event(s) to %s@." n path
            | Error e ->
                Fmt.epr "internal: generated trace failed validation: %s@." e;
                exit 3));
        let mismatches =
          List.filter (fun (r : P.exec_run) -> r.P.xfidelity = P.Mismatch) runs
        in
        if mismatches <> [] then (
          Fmt.epr "%d plan(s) FAILED output equivalence@." (List.length mismatches);
          exit 1))
  in
  let engine_arg =
    Arg.(
      value
      & opt string "real"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Engine to profile: $(b,real) (default) or $(b,codegen).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker-domain count. Defaults to the machine's available cores minus \
             one.")
  in
  let plan_arg =
    Arg.(
      value
      & opt string "best"
      & info [ "plan" ] ~docv:"SEL"
          ~doc:
            "Plans to profile: $(b,best) (default: the strongest DOALL and the \
             strongest pipeline by predicted speedup), $(b,doall), $(b,dswp), \
             $(b,psdswp), $(b,all), or a label substring.")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let calibrate_arg =
    Arg.(
      value & flag
      & info [ "calibrate" ]
          ~doc:
            "Load the workload's persisted calibration profile into the cost model \
             before profiling (instead of writing a fresh profile afterwards).")
  in
  let no_save_arg =
    Arg.(
      value & flag
      & info [ "no-save" ]
          ~doc:
            "Do not persist a calibration profile from this run \
             (\\$COMMSET_CALIB_DIR, default _build/calib).")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Also write a Chrome trace with the flight-recorder spans and per-worker \
             attribution counter tracks (Perfetto counter rows under each worker).")
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:
         "Profile real execution: run the selected plans with the per-iteration \
          attribution layer on and report where every worker nanosecond went — \
          dispatch wait, commset lock wait, frontier wait, builtins, compute — with \
          per-cause quantiles, per-lock contention, coordinator utilization and \
          predicted-vs-measured fidelity; persists a calibration profile the cost \
          model can reuse via --calibrate")
    Term.(
      const run $ workload_arg $ variant_arg $ file_arg $ engine_arg $ jobs_arg
      $ plan_arg $ format_arg $ calibrate_arg $ no_save_arg $ trace_arg $ log_level_arg)

let trace_cmd =
  let run workload variant file threads out metrics_out validate level =
    setup_logs level;
    match validate with
    | Some path -> (
        (* validation-only mode, for CI and for checking saved traces *)
        match Obs.Json_strict.validate_chrome_trace (read_file path) with
        | Ok n -> Fmt.pr "%s: valid Chrome trace (%d events)@." path n
        | Error e ->
            Fmt.epr "%s: INVALID trace: %s@." path e;
            exit 2)
    | None ->
        with_diag (fun () ->
            let name, src, setup = load ~workload ~variant ~file in
            Obs.Metrics.reset ();
            Obs.Recorder.reset ();
            Obs.Recorder.set_enabled true;
            let c = P.compile ~name ~setup src in
            let runs = P.evaluate c ~threads in
            let best =
              match runs with
              | [] -> None
              | r :: _ -> Some (P.simulate ~record_timeline:true c r.P.plan)
            in
            Obs.Recorder.set_enabled false;
            (* pid 0: real time (recorder spans); pid 1: the best plan's
               virtual-clock timeline from the simulator *)
            let events =
              Obs.Export.of_recorder ~pid:0 (Obs.Recorder.dump ())
              @
              match best with
              | Some r ->
                  Obs.Export.of_sim_timelines ~pid:1 ~name:r.P.plan.T.Plan.label
                    r.P.timelines
              | None -> []
            in
            let json = Obs.Export.chrome_json events in
            (* never ship a trace we would reject ourselves *)
            let n_events =
              match Obs.Json_strict.validate_chrome_trace json with
              | Ok n -> n
              | Error e ->
                  Fmt.epr "internal: generated trace failed validation: %s@." e;
                  exit 3
            in
            write_file out json;
            Fmt.pr "%s: wrote %d trace event(s) to %s@." name n_events out;
            (match best with
            | Some r ->
                Fmt.pr "  best plan: %s (%.2fx, %s)@." r.P.plan.T.Plan.label r.P.speedup
                  (P.fidelity_to_string r.P.fidelity)
            | None -> ());
            let dropped = Obs.Recorder.dropped_total () in
            if dropped > 0 then
              Fmt.pr "  warning: %d span(s) dropped (raise COMMSET_TRACE_BUF)@." dropped;
            match metrics_out with
            | Some path ->
                write_file path (Obs.Metrics.to_json ());
                Fmt.pr "  metrics -> %s@." path
            | None -> ())
  in
  let out_arg =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Where to write the Chrome trace JSON.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE" ~doc:"Also dump the metrics registry as JSON.")
  in
  let validate_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "check" ] ~docv:"FILE"
          ~doc:
            "Validate an existing trace file against the strict trace-event parser and \
             exit (no compilation).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Compile and evaluate a workload with the flight recorder on, then write a \
          Chrome trace-event JSON (loadable in Perfetto or about://tracing) and \
          optionally a metrics dump")
    Term.(
      const run $ workload_arg $ variant_arg $ file_arg $ threads_arg $ out_arg
      $ metrics_arg $ validate_arg $ log_level_arg)

let suggest_cmd =
  (* exit codes: 0 at least one suggestion was emitted, 1 the input
     compiled but nothing could be proved (or --min-speedup suppressed
     everything), 2 the input does not compile *)
  let run workload variant file format min_speedup apply level =
    setup_logs level;
    let fail (d : Diag.diagnostic) =
      Fmt.epr "%s@." (Diag.to_string d);
      exit 2
    in
    let name, src, setup =
      try load ~workload ~variant ~file with Diag.Error d -> fail d
    in
    let r =
      try Commset_synth.Synth.suggest ~name ~setup ?min_speedup src
      with Diag.Error d -> fail d
    in
    (match format with
    | `Text -> print_string (Commset_report.Suggestions.render r)
    | `Json -> print_endline (Commset_report.Suggestions.render_json r));
    if apply && r.Commset_synth.Synth.r_suggestions <> [] then (
      let base =
        match file with
        | Some path -> Filename.remove_extension path
        | None -> String.map (fun c -> if c = '/' then '_' else c) name
      in
      let out = base ^ ".suggested.mc" in
      write_file out r.Commset_synth.Synth.r_source;
      Fmt.epr "wrote annotated program to %s@." out);
    exit (if r.Commset_synth.Synth.r_suggestions <> [] then 0 else 1)
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let min_speedup_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-speedup" ] ~docv:"X"
          ~doc:
            "Suppress every suggestion when the verified bundle's predicted speedup at \
             8 threads stays below $(docv).")
  in
  let apply_arg =
    Arg.(
      value & flag
      & info [ "apply" ]
          ~doc:
            "Also write the stripped program with every suggestion installed to \
             $(i,NAME).suggested.mc.")
  in
  Cmd.v
    (Cmd.info "suggest"
       ~doc:
         "Synthesize COMMSET annotations for a plain miniC program: strip any existing \
          pragmas, enumerate candidate members in the hottest loop, synthesize the \
          weakest commutativity condition whose difference residue vanishes, and emit \
          only suggestions the verifier re-proves (Proved-or-dropped), ranked by \
          simulator-predicted speedup")
    Term.(
      const run $ workload_arg $ variant_arg $ file_arg $ format_arg $ min_speedup_arg
      $ apply_arg $ log_level_arg)

(* ---- serve: the request-serving daemon ---- *)

module Serve = Commset_serve

let serve_cmd =
  let parse_mix s =
    let items = List.filter (fun x -> String.trim x <> "") (String.split_on_char ',' s) in
    if items = [] then (
      Fmt.epr "serve: --mix must name at least one workload@.";
      exit 2);
    List.map
      (fun item ->
        match String.index_opt item '=' with
        | None -> (String.trim item, 1.0)
        | Some i -> (
            let name = String.trim (String.sub item 0 i) in
            let w = String.trim (String.sub item (i + 1) (String.length item - i - 1)) in
            match float_of_string_opt w with
            | Some w when w > 0. -> (name, w)
            | _ ->
                Fmt.epr "serve: --mix weight in %S must be a positive number@." item;
                exit 2))
      items
  in
  let run selftest requests rate burst seed mix jobs socket equiv_every cache_capacity
      threads strict status_out level =
    setup_logs level;
    with_diag @@ fun () ->
    if (not selftest) && socket = None then (
      Fmt.epr "serve: nothing to serve — pass --selftest and/or --socket PATH@.";
      exit 2);
    if jobs < 1 || requests < 1 || rate <= 0. || burst < 1. || equiv_every < 0
       || cache_capacity < 1
    then (
      Fmt.epr
        "serve: --jobs/--requests/--cache-capacity must be >= 1, --rate > 0, --burst >= \
         1, --equiv-every >= 0@.";
      exit 2);
    let lookup name =
      match Registry.find name with
      | Some w -> Ok (w.W.source, w.W.setup)
      | None ->
          Error
            (Printf.sprintf "unknown workload '%s' (try: %s)" name
               (String.concat ", " Registry.names))
    in
    let cfg =
      {
        (Serve.Server.default_config ~lookup) with
        Serve.Server.s_jobs = jobs;
        s_cache_capacity = cache_capacity;
        s_equiv_every = equiv_every;
        s_threads = threads;
      }
    in
    let load =
      if selftest then begin
        let g_mix = parse_mix mix in
        (* a typo must fail fast, not produce N error responses *)
        List.iter
          (fun (n, _) ->
            if Registry.find n = None then (
              Fmt.epr "serve: unknown workload '%s' in --mix (try: %s)@." n
                (String.concat ", " Registry.names);
              exit 2))
          g_mix;
        Some
          {
            Serve.Server.l_spec =
              {
                Serve.Gen.default_spec with
                Serve.Gen.g_seed = seed;
                g_rate = rate;
                g_burst = burst;
                g_mix;
              };
            l_requests = requests;
          }
      end
      else None
    in
    (* graceful shutdown: stop admitting, drain in-flight, flush at-exit
       hooks (COMMSET_TRACE), exit 0 *)
    List.iter
      (fun s -> Sys.set_signal s (Sys.Signal_handle (fun _ -> Serve.Server.request_stop ())))
      [ Sys.sigint; Sys.sigterm ];
    let report = Serve.Server.run ?load ?socket cfg in
    let json = Serve.Server.report_json report in
    (match status_out with
    | Some path -> (
        try
          let oc = open_out_bin path in
          output_string oc json;
          output_char oc '\n';
          close_out_noerr oc
        with Sys_error reason ->
          Fmt.epr "serve: cannot write '%s': %s@." path reason;
          exit 1)
    | None -> ());
    print_endline json;
    let r = report in
    let cache = r.Serve.Server.r_cache in
    let lookups = cache.Serve.Plancache.pc_hits + cache.Serve.Plancache.pc_misses in
    Fmt.epr
      "serve: %d request(s) in %.2fs (%.0f rps), %d failed; Equiv %d/%d failed; cache \
       %d/%d hit (%d compile(s)); %s, stopped by %s%s@."
      r.Serve.Server.r_offered r.Serve.Server.r_duration_s r.Serve.Server.r_throughput_rps
      r.Serve.Server.r_failed r.Serve.Server.r_equiv_failures
      r.Serve.Server.r_equiv_checked cache.Serve.Plancache.pc_hits lookups
      cache.Serve.Plancache.pc_misses
      (if r.Serve.Server.r_drained then "drained" else "DRAIN INCOMPLETE")
      r.Serve.Server.r_stopped_by
      (if r.Serve.Server.r_oversubscribed then
         Fmt.str " (oversubscribed: %d core(s) for %d worker(s) + coordinator)"
           r.Serve.Server.r_cores r.Serve.Server.r_jobs
       else "");
    if r.Serve.Server.r_equiv_failures > 0 then (
      Fmt.epr "serve: %d response(s) FAILED output equivalence%s@."
        r.Serve.Server.r_equiv_failures
        (match r.Serve.Server.r_equiv_first_failure with
        | Some f -> ": " ^ f
        | None -> "");
      exit 1);
    if not r.Serve.Server.r_drained then (
      Fmt.epr "serve: drain incomplete (%d of %d completed)@."
        (r.Serve.Server.r_served + r.Serve.Server.r_failed)
        r.Serve.Server.r_offered;
      exit 1);
    if strict then begin
      (* probe each compiled service's best plan on real domains and
         gate on the calibration fidelity band (skips, visibly, when
         oversubscribed) *)
      let runs =
        List.filter_map
          (fun (_, (sv : P.service)) ->
            match sv.P.sv_best with
            | None -> None
            | Some best -> Some (P.run_parallel ~jobs sv.P.sv_compiled best.P.plan))
          r.Serve.Server.r_services
      in
      gate_fidelity ~strict:true ~cores:r.Serve.Server.r_cores ~jobs runs
    end
  in
  let selftest_arg =
    Arg.(
      value & flag
      & info [ "selftest" ]
          ~doc:
            "Drive the daemon from the built-in deterministic open-loop generator — no \
             external client needed. Combines with --socket (the generator runs while \
             the socket listens).")
  in
  let requests_arg =
    Arg.(
      value & opt int 1000
      & info [ "requests"; "n" ] ~docv:"N" ~doc:"Generated requests to offer (selftest).")
  in
  let rate_arg =
    Arg.(
      value & opt float 1000.
      & info [ "rate" ] ~docv:"RPS"
          ~doc:"Mean offered rate of the open-loop generator, requests/second.")
  in
  let burst_arg =
    Arg.(
      value & opt float 3.
      & info [ "burst" ] ~docv:"X"
          ~doc:
            "On/off burstiness: ON phases offer $(docv)× the mean rate, OFF phases \
             whatever keeps the long-run mean at --rate. 1 = plain Poisson.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed (same seed, same schedule).")
  in
  let mix_arg =
    Arg.(
      value
      & opt string "url=1,md5sum=2,geti=1"
      & info [ "mix" ] ~docv:"W=N,…"
          ~doc:"Workload blend with weights, e.g. $(b,url=1,md5sum=2,geti=1).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int (Commset_exec.Exec.default_jobs ())
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Warm pool worker domains, spawned once and reused for every request. \
             Defaults to the machine's available cores minus one.")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv): 4-byte big-endian \
             length-prefixed strict-JSON frames (see DESIGN §18). Unlinked on \
             shutdown.")
  in
  let equiv_every_arg =
    Arg.(
      value & opt int 100
      & info [ "equiv-every" ] ~docv:"N"
          ~doc:
            "Check every $(docv)th response per workload against the sequential \
             reference with the output-equivalence checker; 0 disables sampling.")
  in
  let cache_capacity_arg =
    Arg.(
      value & opt int 8
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Plan-cache entries (LRU beyond that); each distinct source compiles once.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "After the drain, probe each compiled workload's best plan on real domains \
             and gate on the calibration fidelity band (COMMSET_FIDELITY_BAND); skipped \
             with a message when oversubscribed. Equiv failures exit non-zero even \
             without this flag.")
  in
  let status_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "status-out" ] ~docv:"FILE"
          ~doc:"Also write the strict-JSON status report to $(docv).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the request-serving daemon: warm worker-domain pool, compile-once plan \
          cache with single-flight dedup, open-loop selftest load harness, per-request \
          latency histograms and sampled output-equivalence checks")
    Term.(
      const run $ selftest_arg $ requests_arg $ rate_arg $ burst_arg $ seed_arg $ mix_arg
      $ jobs_arg $ socket_arg $ equiv_every_arg $ cache_capacity_arg $ threads_arg
      $ strict_arg $ status_out_arg $ log_level_arg)

(* [COMMSET_TRACE=path]: enable the flight recorder for the whole
   invocation, whatever the subcommand, and write the trace at exit
   (including the [exit 1] of a diagnostic). *)
let install_trace_env_hook () =
  match Sys.getenv_opt "COMMSET_TRACE" with
  | None | Some "" -> ()
  | Some path ->
      Obs.Recorder.set_enabled true;
      at_exit (fun () ->
          Obs.Recorder.set_enabled false;
          let json =
            Obs.Export.chrome_json (Obs.Export.of_recorder ~pid:0 (Obs.Recorder.dump ()))
          in
          match Obs.Json_strict.validate_chrome_trace json with
          | Ok _ -> (
              try
                let oc = open_out_bin path in
                output_string oc json;
                close_out_noerr oc
              with Sys_error reason ->
                Fmt.epr "COMMSET_TRACE: cannot write '%s': %s@." path reason)
          | Error e -> Fmt.epr "COMMSET_TRACE: internal: trace failed validation: %s@." e)

let () =
  let doc = "the COMMSET implicit-parallelism compiler (PLDI 2011 reproduction)" in
  let info = Cmd.info "commsetc" ~version:"1.0.0" ~doc in
  install_trace_env_hook ();
  exit
    (Cmd.eval
       (Cmd.group info [ list_cmd; check_cmd; pdg_cmd; plans_cmd; run_cmd; stat_cmd; seq_cmd; serve_cmd; explain_cmd; sweep_cmd; lint_cmd; suggest_cmd; trace_cmd; table1_cmd ]))
