(** Type checker for miniC programs with COMMSET annotations.

    Checking fills every expression's [ety] field in place. COMMSET
    duties (paper §4.1): predicate parameter types are inferred from the
    actuals of instance declarations (mismatches between instances are
    errors), predicate bodies must type to [bool], [enable] pragmas must
    reference exported named blocks, and instance actual lists must match
    predicate arities. Failures raise {!Commset_support.Diag.Error}. *)

(** Signature of a builtin (extern) function. *)
type extern_sig = { xname : string; xparams : Ast.ty list; xret : Ast.ty }

(** The populated environment, consumed by later pipeline stages. *)
type t

(** Type-check a program against the given extern signatures. *)
val check : ?externs:extern_sig list -> Ast.program -> t

(** Kind of a declared commset, if declared. *)
val set_kind : t -> string -> Ast.set_kind option

(** The predicate of a commset: parameter lists and body. *)
val predicate : t -> string -> (string list * string list * Ast.expr) option

(** Was the commset marked [nosync]? *)
val is_nosync : t -> string -> bool
