(** Program dependence graph of one target loop.

    Nodes are either single IR instructions, branch terminators, or whole
    commutative regions (the unit of atomicity, standing in for the
    paper's outlined member functions). Edges carry register, memory or
    control dependences, a loop-carried flag, and — after the COMMSET
    dependence analyzer has run — a commutativity annotation:
    [Uco] (unconditionally commutative, ignored by the transforms) or
    [Ico] (inter-iteration commutative, treated as an intra-iteration
    edge). *)

module Ir = Commset_ir.Ir
module Effects = Commset_analysis.Effects

type node_kind =
  | Ninstr of Ir.instr
  | Nbranch of Ir.label * Ir.operand  (** branch terminator of a block *)
  | Nregion of Ir.region * Ir.instr list  (** region super-node with its instructions *)

type node = {
  nid : int;
  kind : node_kind;
  nlabel : Ir.label;  (** block of the instr / branch / region entry *)
  rw : Effects.rw;  (** summarized memory effects *)
  mutable weight : float;  (** profile weight (simulated cycles per iteration) *)
  mutable loop_control : bool;
}

type dep_kind =
  | Kreg of Ir.reg
  | Kmem of Effects.location list  (** conflicting locations *)
  | Kcontrol

type commut = Cnone | Cuco | Cico

type edge = {
  esrc : int;
  edst : int;
  ekind : dep_kind;
  carried : bool;
  mutable commut : commut;
}

type t = {
  func : Ir.func;
  loop : Commset_analysis.Loops.loop;
  nodes : node array;
  mutable edges : edge list;
  instr_node : (int, int) Hashtbl.t;  (** instr iid -> node id *)
}

let nodes t = Array.to_list t.nodes
let node t nid = t.nodes.(nid)
let edges t = t.edges

let node_instrs n =
  match n.kind with
  | Ninstr i -> [ i ]
  | Nbranch _ -> []
  | Nregion (_, instrs) -> instrs

let node_region n = match n.kind with Nregion (r, _) -> Some r | Ninstr _ | Nbranch _ -> None

let node_of_instr t iid = Hashtbl.find_opt t.instr_node iid

let is_commutative_edge e = e.commut <> Cnone

(** Edges that remain after applying the commutativity annotations the way
    the transforms see them: [Cuco] edges vanish; carried [Cico] edges
    become intra-iteration edges. *)
let effective_edges t =
  List.filter_map
    (fun e ->
      match e.commut with
      | Cuco -> None
      | Cico -> Some { e with carried = false }
      | Cnone -> Some e)
    t.edges

let node_name t n =
  match n.kind with
  | Ninstr i -> Printf.sprintf "i%d" i.Ir.iid
  | Nbranch (l, _) -> Printf.sprintf "br:L%d" l
  | Nregion (r, _) -> (
      match r.Ir.rname with
      | Some name -> Printf.sprintf "region:%s" name
      | None -> Printf.sprintf "region:%d@L%d" r.Ir.rid r.Ir.rentry)
  |> fun s -> ignore t; s

let pp_edge t ppf e =
  let kind =
    match e.ekind with
    | Kreg r -> Printf.sprintf "reg %%%d" r
    | Kmem locs ->
        Fmt.str "mem {%a}" Fmt.(list ~sep:(any ",") Effects.pp_location) locs
    | Kcontrol -> "ctrl"
  in
  Fmt.pf ppf "%s -> %s [%s%s%s]"
    (node_name t t.nodes.(e.esrc))
    (node_name t t.nodes.(e.edst))
    kind
    (if e.carried then ", carried" else "")
    (match e.commut with Cnone -> "" | Cuco -> ", uco" | Cico -> ", ico")

let pp ppf t =
  Fmt.pf ppf "PDG of loop at L%d in %s@." t.loop.Commset_analysis.Loops.header t.func.Ir.fname;
  Array.iter
    (fun n ->
      Fmt.pf ppf "  node %d: %s%s w=%.1f %a@." n.nid (node_name t n)
        (if n.loop_control then " [loop-control]" else "")
        n.weight Effects.pp_rw n.rw)
    t.nodes;
  List.iter (fun e -> Fmt.pf ppf "  %a@." (pp_edge t) e) t.edges
