(** Busy-wait primitives; see the interface for the tuning rationale. *)

module Costmodel = Commset_runtime.Costmodel

let spin_rounds () = Costmodel.exec_spin_rounds ()

(* yielding quantum once the spin budget is spent: long enough that a
   preempted partner gets scheduled, short enough to stay responsive *)
let yield_s () = Costmodel.exec_spin_sleep_s ()

type backoff = { mutable rounds : int; limit : int; sleep_s : float }

let backoff () = { rounds = 0; limit = spin_rounds (); sleep_s = yield_s () }

let once b =
  if b.rounds < b.limit then begin
    Domain.cpu_relax ();
    b.rounds <- b.rounds + 1
  end
  else Unix.sleepf b.sleep_s

type lock = { flag : bool Atomic.t }

let lock_create () = { flag = Atomic.make false }

(* test-and-test-and-set: the plain read keeps the cache line shared
   while the lock is held; only a free-looking lock pays the RMW *)
let try_acquire l = (not (Atomic.get l.flag)) && Atomic.compare_and_set l.flag false true

let acquire ?(on_contend = fun () -> ()) l =
  if not (try_acquire l) then begin
    on_contend ();
    let b = backoff () in
    while not (try_acquire l) do
      once b
    done
  end

let release l = Atomic.set l.flag false
