(** The end-to-end COMMSET parallelization pipeline (paper Figure 5):

    source → frontend → lowering → effect analysis → metadata manager →
    well-formedness checks → profiling (hot-loop selection) → PDG →
    COMMSET dependence analysis (Algorithm 1) → DOALL / DSWP / PS-DSWP
    plans with automatic concurrency control → simulated multicore
    execution with performance estimates and output-equivalence checks.

    This module is the library's main public entry point. *)

module Ast = Commset_lang.Ast
module Parser = Commset_lang.Parser
module Tc = Commset_lang.Typecheck
module Ir = Commset_ir.Ir
module Lower = Commset_ir.Lower
module A = Commset_analysis
module Pdg = Commset_pdg.Pdg
module Pdg_builder = Commset_pdg.Builder
module Scc = Commset_pdg.Scc
module Metadata = Commset_core.Metadata
module Wellformed = Commset_core.Wellformed
module Dep_analysis = Commset_core.Dep_analysis
module T = Commset_transforms
module R = Commset_runtime
module V = Commset_verify
module Recorder = Commset_obs.Recorder
open Commset_support

type setup = R.Machine.t -> unit

type target = {
  func : Ir.func;
  cfg : A.Cfg.t;
  dom : A.Dominance.t;
  post : A.Dominance.post;
  loop : A.Loops.loop;
  induction : A.Induction.t;
  priv : A.Privatization.t;
  reaching : A.Reaching.t;
  pdg : Pdg.t;  (** annotated with uco/ico *)
  pdg_plain : Pdg.t;  (** identical PDG without commutativity annotations *)
  n_uco : int;
  n_ico : int;
}

(** Thread-count-independent planning inputs for one PDG, computed once
    at compile time and reused by every [plans] call of the sweep. *)
type plan_ctx = { reductions : Commset_pdg.Reduction.t list; scc : Scc.t }

type t = {
  name : string;
  source : string;
  ast : Ast.program;
  tcenv : Tc.t;
  prog : Ir.program;
  prepared : R.Precompile.t;
      (** prepared once; every interpreter run of this compilation
          (profiling, tracing, verification, CLI execution) shares it *)
  effects : A.Effects.t;
  md : Metadata.t;
  commset_graph : string Digraph.t;
  profile : R.Profile.t;
  target : target;
  trace : R.Trace.t;
  sync : T.Sync.t;
  sync_none : T.Sync.t;
  plan_ctx_comm : plan_ctx;
  plan_ctx_plain : plan_ctx;
  setup : setup;
  verification : V.Verdict.report option;
      (** per-pair commutativity verdicts, when compiled with [~verify:true] *)
}

type output_fidelity = Exact | Multiset_equal | Mismatch

type run = {
  plan : T.Plan.t;
  speedup : float;
  makespan : float;  (** whole-program simulated cycles *)
  fidelity : output_fidelity;
  lock_contended : int;
  tx_aborts : int;
  timelines : (float * float * string) list array;
}

let fidelity_to_string = function
  | Exact -> "exact (deterministic)"
  | Multiset_equal -> "multiset-equal"
  | Mismatch -> "MISMATCH"

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let fresh_machine setup () =
  let m = R.Machine.create () in
  setup m;
  m

let build_target prog effects (lookup : A.Effects.lookup) md ~fname ~header ~setup ~prepared :
    target * R.Trace.t =
  let func =
    match Ir.find_func prog fname with
    | Some f -> f
    | None -> Diag.error "internal: target function '%s' not found" fname
  in
  let cfg = A.Cfg.of_func func in
  let dom = A.Dominance.compute cfg in
  let post = A.Dominance.compute_post cfg in
  let loops = A.Loops.compute cfg dom in
  let loop =
    match A.Loops.find_by_header loops header with
    | Some l -> l
    | None -> Diag.error "internal: target loop at L%d not found in '%s'" header fname
  in
  let induction = A.Induction.compute func cfg dom loop in
  let priv = A.Privatization.compute effects lookup func loop in
  let reaching = A.Reaching.compute cfg loop in
  let input =
    {
      Pdg_builder.func;
      cfg;
      dom;
      post;
      loop;
      effects;
      lookup;
      priv;
      induction;
      reaching;
    }
  in
  let pdg = Pdg_builder.build input in
  let pdg_plain = Pdg_builder.build input in
  let trace, _machine = R.Trace.record ~machine:(fresh_machine setup ()) ~prepared prog pdg in
  R.Trace.apply_weights trace pdg;
  R.Trace.apply_weights trace pdg_plain;
  let n_uco, n_ico = Dep_analysis.annotate md pdg dom induction in
  ( {
      func;
      cfg;
      dom;
      post;
      loop;
      induction;
      priv;
      reaching;
      pdg;
      pdg_plain;
      n_uco;
      n_ico;
    },
    trace )

let src_log = Logs.Src.create "commset.pipeline" ~doc:"COMMSET parallelization workflow"

module Log = (val Logs.src_log src_log : Logs.LOG)

(** Compile a miniC source: all static stages plus one profiling run and
    one tracing run (both on fresh machines built by [setup]). Stage
    progress is reported on the [commset.pipeline] log source (paper
    Figure 5's workflow). *)
let compile ?(name = "<program>") ?(setup : setup = fun _ -> ()) ?(verify = false)
    (source : string) : t =
  Recorder.with_span ~cat:"compile" "pipeline.compile" @@ fun () ->
  (* each Figure-5 stage gets its own flight-recorder span so traces
     show where compile time goes; [stage] is a no-op when disabled *)
  let stage n f = Recorder.with_span ~cat:"compile" n f in
  let lookup = R.Builtins.lookup_spec in
  Log.info (fun m -> m "[%s] frontend: parsing and type checking" name);
  let ast, tcenv =
    stage "compile.parse" @@ fun () ->
    let ast = Parser.parse_program ~file:name source in
    (ast, Tc.check ~externs:R.Builtins.extern_sigs ast)
  in
  Log.info (fun m -> m "[%s] lowering to IR" name);
  let prog = stage "compile.lower" (fun () -> Lower.lower_program ast) in
  Log.info (fun m -> m "[%s] effect analysis over %d function(s)" name
      (List.length prog.Ir.func_order));
  let effects = stage "compile.effects" (fun () -> A.Effects.analyze lookup prog) in
  Log.info (fun m -> m "[%s] COMMSET metadata manager and well-formedness checks" name);
  let md, commset_graph =
    stage "compile.metadata" @@ fun () ->
    let md = Metadata.build prog tcenv effects in
    (md, Wellformed.check md ~lookup)
  in
  Log.info (fun m -> m "[%s] preparing the program for execution" name);
  let prepared = stage "compile.prepare" (fun () -> R.Precompile.prepare prog) in
  Log.info (fun m -> m "[%s] profiling to select the hottest loop" name);
  let profile =
    stage "compile.profile" (fun () ->
        R.Profile.analyze ~machine:(fresh_machine setup ()) ~prepared prog)
  in
  let hottest =
    match R.Profile.hottest profile with
    | Some h -> h
    | None -> Diag.error "program '%s' has no loop to parallelize" name
  in
  Log.info (fun m ->
      m "[%s] target loop: %s at L%d (%.1f%% of execution)" name hottest.R.Profile.lr_func
        hottest.R.Profile.lr_header
        (100. *. hottest.R.Profile.lr_fraction));
  let target, trace =
    stage "compile.pdg" (fun () ->
        build_target prog effects lookup md ~fname:hottest.R.Profile.lr_func
          ~header:hottest.R.Profile.lr_header ~setup ~prepared)
  in
  Log.info (fun m ->
      m "[%s] PDG built (%d nodes, %d edges); Algorithm 1: %d uco, %d ico" name
        (Array.length target.pdg.Pdg.nodes)
        (List.length target.pdg.Pdg.edges)
        target.n_uco target.n_ico);
  let sync =
    stage "compile.sync" (fun () -> T.Sync.compute md target.pdg trace target.priv)
  in
  Log.info (fun m -> m "[%s] synchronization engine: %d node(s) compiler-locked" name
      (Hashtbl.length sync.T.Sync.node_locks));
  let sync_none = T.Sync.none md in
  let verification =
    if not verify then None
    else begin
      Log.info (fun m -> m "[%s] commutativity sanitizer: differencing + replay" name);
      let report =
        stage "compile.verify" (fun () ->
            V.Verify.run ~prepared ~md ~target_fname:target.func.Ir.fname ~loop:target.loop
              ~induction:target.induction ~setup ())
      in
      Log.info (fun m ->
          m "[%s] sanitizer verdicts: %d proved, %d unknown, %d refuted" name
            (V.Verdict.n_proved report) (V.Verdict.n_unknown report)
            (V.Verdict.n_refuted report));
      Some report
    end
  in
  let plan_ctx_of pdg =
    stage "compile.planctx" @@ fun () ->
    {
      reductions = Commset_pdg.Reduction.detect pdg;
      scc = Scc.compute pdg ~edges:(Pdg.effective_edges pdg);
    }
  in
  {
    name;
    source;
    ast;
    tcenv;
    prog;
    prepared;
    effects;
    md;
    commset_graph;
    profile;
    target;
    trace;
    sync;
    sync_none;
    plan_ctx_comm = plan_ctx_of target.pdg;
    plan_ctx_plain = plan_ctx_of target.pdg_plain;
    setup;
    verification;
  }

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

(** All plans at a given thread count: COMMSET-enabled plans over the
    annotated PDG plus non-COMMSET baseline plans over the plain PDG.
    Reductions and SCCs are thread-count independent and come from the
    compile-time {!plan_ctx}, so a sweep over thread counts only pays
    for the schedulers themselves. *)
let plans t ~threads : T.Plan.t list =
  Recorder.with_span ~cat:"pipeline" "pipeline.plans" @@ fun () ->
  let comm =
    let pdg = t.target.pdg in
    let { reductions; scc } = t.plan_ctx_comm in
    T.Doall.plans ~reductions t.sync t.trace pdg ~threads ~uses_commset:true
    @ T.Dswp.plans pdg t.sync scc t.trace ~threads ~uses_commset:true
    @ T.Spec.plans t.md t.sync pdg ~threads ~uses_commset:true
  in
  let plain =
    let pdg = t.target.pdg_plain in
    let { reductions; scc } = t.plan_ctx_plain in
    T.Doall.plans ~reductions t.sync_none t.trace pdg ~threads ~uses_commset:false
    @ T.Dswp.plans pdg t.sync_none scc t.trace ~threads ~uses_commset:false
  in
  comm @ plain

(* ------------------------------------------------------------------ *)
(* Simulation                                                          *)
(* ------------------------------------------------------------------ *)

let check_outputs t (sim_outputs : (float * string) list) : output_fidelity =
  let loop_outputs = List.map snd sim_outputs in
  let full = t.trace.R.Trace.outputs_before @ loop_outputs @ t.trace.R.Trace.outputs_after in
  if full = t.trace.R.Trace.seq_outputs then Exact
  else if
    List.sort compare full = List.sort compare t.trace.R.Trace.seq_outputs
  then Multiset_equal
  else Mismatch

let simulate ?(record_timeline = false) t (plan : T.Plan.t) : run =
  Recorder.with_span ~cat:"pipeline" "pipeline.simulate" @@ fun () ->
  let pdg = if plan.T.Plan.uses_commset then t.target.pdg else t.target.pdg_plain in
  let result, makespan = T.Emit.simulate ~record_timeline ~plan ~pdg ~trace:t.trace () in
  {
    plan;
    speedup = t.trace.R.Trace.seq_total /. makespan;
    makespan;
    fidelity = check_outputs t result.R.Sim.outputs;
    lock_contended = result.R.Sim.lock_contended;
    tx_aborts = result.R.Sim.tx_aborts;
    timelines = result.R.Sim.timelines;
  }

(** Simulate every plan at [threads]; sorted by speedup, best first.
    Simulations are independent, so they fan out over the domain pool;
    the sort key and the deterministic plan order make the result
    identical to the sequential path. *)
let evaluate ?record_timeline t ~threads : run list =
  Recorder.with_span ~cat:"pipeline" "pipeline.evaluate" @@ fun () ->
  Pool.parmap (simulate ?record_timeline t) (plans t ~threads)
  |> List.sort (fun a b -> compare b.speedup a.speedup)

let best ?record_timeline t ~threads : run option =
  match evaluate ?record_timeline t ~threads with [] -> None | r :: _ -> Some r

(* ------------------------------------------------------------------ *)
(* Real execution                                                      *)
(* ------------------------------------------------------------------ *)

type exec_run = {
  xplan : T.Plan.t;
  xpredicted : float;  (** the simulator's speedup prediction for the same plan *)
  xstats : Commset_exec.Exec.stats;
  xfidelity : output_fidelity;
}

(** Plans at [threads] the real backend can execute (TM and speculative
    plans stay simulator-only). *)
let executable_plans t ~threads : T.Plan.t list =
  List.filter
    (fun p -> Result.is_ok (Commset_exec.Exec.supported p))
    (plans t ~threads)

(** Execute a plan on real domains (Commset_exec) next to one simulation
    of the same plan, so predicted and measured speedups arrive as a
    pair. The executor's mandatory output-equivalence verdict is mapped
    onto the simulator's {!output_fidelity} scale. *)
let run_parallel ?engine ?jobs ?attrib t (plan : T.Plan.t) : exec_run =
  Recorder.with_span ~cat:"pipeline" "pipeline.run_parallel" @@ fun () ->
  let predicted = (simulate t plan).speedup in
  let pdg = if plan.T.Plan.uses_commset then t.target.pdg else t.target.pdg_plain in
  let sync = if plan.T.Plan.uses_commset then t.sync else t.sync_none in
  let xstats =
    Commset_exec.Exec.run ?engine ?jobs ?attrib ~plan ~pdg ~trace:t.trace ~sync
      ~prepared:t.prepared ~setup:t.setup ()
  in
  let xfidelity =
    match xstats.Commset_exec.Exec.x_verdict with
    | Commset_exec.Equiv.Exact -> Exact
    | Commset_exec.Equiv.Commutative_equal -> Multiset_equal
    | Commset_exec.Equiv.Mismatch -> Mismatch
  in
  { xplan = plan; xpredicted = predicted; xstats; xfidelity }

(** Speedup curves: series name -> (threads, speedup) points, for thread
    counts min_threads..max_threads. Thread counts are evaluated on the
    domain pool; [precomputed] supplies run lists for thread counts that
    were already evaluated (e.g. the 8-thread runs the caller needed
    anyway), so no configuration is ever simulated twice. *)
let sweep ?(min_threads = 1) ?(precomputed = []) t ~max_threads :
    (string * (int * float) list) list =
  Recorder.with_span ~cat:"pipeline" "pipeline.sweep" @@ fun () ->
  let counts = List.init (max 0 (max_threads - min_threads + 1)) (fun i -> min_threads + i) in
  let runs_per_count =
    Pool.parmap
      (fun threads ->
        match List.assoc_opt threads precomputed with
        | Some runs -> (threads, runs)
        | None -> (threads, evaluate t ~threads))
      counts
  in
  (* fold in ascending thread order: series appear in first-encounter
     order, exactly as the sequential loop produced them *)
  let table : (string, (int * float) list) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (threads, runs) ->
      List.iter
        (fun r ->
          let key = r.plan.T.Plan.series in
          if not (Hashtbl.mem table key) then order := key :: !order;
          let cur = Option.value ~default:[] (Hashtbl.find_opt table key) in
          (* keep the best plan per series per thread count *)
          match List.assoc_opt threads cur with
          | Some s when s >= r.speedup -> ()
          | _ ->
              Hashtbl.replace table key
                ((threads, r.speedup) :: List.remove_assoc threads cur))
        runs)
    runs_per_count;
  List.rev_map
    (fun key -> (key, List.sort compare (Hashtbl.find table key)))
    !order

(* ------------------------------------------------------------------ *)
(* Compile-time / serve-time split (daemon mode)                       *)
(* ------------------------------------------------------------------ *)

(** Everything derivable from the source text alone, computed once and
    reused by every request for the same content hash: the full
    compilation, the best executable plan's simulated run (the serve
    fidelity probe's target), and the output-equivalence classifier.
    Serve-time state — a fresh machine per request — is deliberately
    NOT here: a [service] is immutable and safe to share across the
    warm pool's worker domains ({!Commset_runtime.Precompile} executors
    carry all per-run mutable state). *)
type service = {
  sv_key : string;  (** {!content_key} of the source text *)
  sv_name : string;
  sv_compiled : t;
  sv_threads : int;  (** thread count [sv_best] was planned for *)
  sv_best : run option;
      (** strongest executable plan by simulated speedup; [None] when no
          plan the real backend supports exists at [sv_threads] *)
  sv_compile_s : float;  (** wall seconds the compile-time stages took *)
}

(** Content hash of a source text: the plan-cache key. Two sources
    differing in any byte (annotations included) get distinct services. *)
let content_key source = Digest.to_hex (Digest.string source)

let prepare_service ?(name = "<service>") ?(setup : setup = fun _ -> ())
    ?(verify = false) ?(threads = 8) (source : string) : service =
  Recorder.with_span ~cat:"serve" "serve.prepare_service" @@ fun () ->
  let t0 = Commset_obs.Clock.now_ns () in
  let compiled = compile ~name ~setup ~verify source in
  let best =
    List.find_opt
      (fun r -> Result.is_ok (Commset_exec.Exec.supported r.plan))
      (evaluate compiled ~threads)
  in
  let compile_s = (Commset_obs.Clock.now_ns () -. t0) /. 1e9 in
  { sv_key = content_key source; sv_name = name; sv_compiled = compiled;
    sv_threads = threads; sv_best = best; sv_compile_s = compile_s }

(** One request: execute the prepared program on a fresh machine and
    return its output stream. Safe to call concurrently from any number
    of worker domains — the prepared program is shared read-only and
    each call owns its executor and machine. *)
let serve_request (sv : service) : string list =
  let machine = R.Machine.create () in
  sv.sv_compiled.setup machine;
  let exec = R.Precompile.executor ~machine sv.sv_compiled.prepared in
  let _total : float = R.Precompile.run_main exec in
  R.Machine.outputs machine

(** The sequential reference stream recorded at compile time — what a
    sampled response is Equiv-checked against. *)
let service_reference (sv : service) : string list =
  sv.sv_compiled.trace.R.Trace.seq_outputs

(** The service's output classifier for {!Commset_exec.Equiv.check}:
    lines emitted by commset members compare as multisets, everything
    else must hold its sequential position. *)
let service_commutative (sv : service) : string -> bool =
  Commset_exec.Equiv.commutative_outputs ~sync:sv.sv_compiled.sync
    ~trace:sv.sv_compiled.trace

(* ------------------------------------------------------------------ *)
(* Calibration fidelity gate (run --strict, serve --selftest --strict) *)
(* ------------------------------------------------------------------ *)

type gate_verdict =
  | Gate_ok of float  (** worst relative gap over the gated runs *)
  | Gate_exceeded of (string * float) list
      (** (plan label, gap) for every run outside the band *)
  | Gate_skipped of string  (** why the gate did not apply *)

(** Predicted-vs-measured fidelity gate: every run's relative speedup
    gap [|predicted - measured| / measured] must stay within [band]
    (default {!Commset_runtime.Costmodel.fidelity_band}). Applies only
    when the machine is not oversubscribed — [cores >= jobs + 1], one
    core per worker domain plus the coordinator; otherwise measured
    speedups are time-slicing artifacts and the gate reports
    [Gate_skipped] (callers must print the skip visibly). *)
let fidelity_gate ~cores ~jobs ?band (runs : exec_run list) : gate_verdict =
  let band = match band with Some b -> b | None -> R.Costmodel.fidelity_band () in
  if cores < jobs + 1 then
    Gate_skipped
      (Printf.sprintf
         "%d core(s) for %d worker domain(s) + coordinator (oversubscribed)" cores jobs)
  else if runs = [] then Gate_skipped "no measured runs to gate"
  else begin
    let gap (r : exec_run) =
      let m = r.xstats.Commset_exec.Exec.x_measured_speedup in
      Float.abs (r.xpredicted -. m) /. Float.max 1e-9 m
    in
    let over =
      List.filter_map
        (fun r -> if gap r > band then Some (r.xplan.T.Plan.label, gap r) else None)
        runs
    in
    if over <> [] then Gate_exceeded over
    else Gate_ok (List.fold_left (fun acc r -> Float.max acc (gap r)) 0. runs)
  end

(* ------------------------------------------------------------------ *)
(* Reporting helpers                                                   *)
(* ------------------------------------------------------------------ *)

(** Count of COMMSET pragma annotations in the source. *)
let count_annotations source =
  String.split_on_char '\n' source
  |> List.filter (fun line ->
         let l = String.trim line in
         String.length l >= 7 && String.sub l 0 7 = "#pragma")
  |> List.length

(** Source lines of code (non-blank, non-comment-only). *)
let sloc source =
  String.split_on_char '\n' source
  |> List.filter (fun line ->
         let l = String.trim line in
         l <> "" && not (String.length l >= 2 && String.sub l 0 2 = "//"))
  |> List.length

(** Fraction of program cycles spent in the target loop. *)
let loop_fraction t =
  match R.Profile.hottest t.profile with
  | Some h -> h.R.Profile.lr_fraction
  | None -> 0.

(** COMMSET feature letters used (Table 2: PI, PC, C, I, S, G). *)
let features_used t : string list =
  let ast = t.ast in
  let has_region_members = ref false in
  let has_iface_members = ref false in
  let has_pred_iface = ref false in
  let has_pred_client = ref false in
  let has_self = ref false in
  let has_group = ref false in
  let predicated set = Tc.predicate t.tcenv set <> None in
  let kind set = Tc.set_kind t.tcenv set in
  let scan_ref ~client (r : Ast.commset_ref) =
    if r.Ast.set_name = "SELF" then has_self := true
    else begin
      (match kind r.Ast.set_name with
      | Some Ast.Self_set -> has_self := true
      | Some Ast.Group_set -> has_group := true
      | None -> ());
      if predicated r.Ast.set_name then
        if client then has_pred_client := true else has_pred_iface := true
    end
  in
  List.iter
    (fun (f : Ast.fundecl) ->
      List.iter
        (fun (p : Ast.pragma) ->
          match p.Ast.pdesc with
          | Ast.P_member refs ->
              has_iface_members := true;
              List.iter (scan_ref ~client:false) refs
          | _ -> ())
        f.Ast.fannots;
      Ast.iter_blocks
        (fun b ->
          List.iter
            (fun (p : Ast.pragma) ->
              match p.Ast.pdesc with
              | Ast.P_member refs ->
                  has_region_members := true;
                  List.iter (scan_ref ~client:true) refs
              | _ -> ())
            b.Ast.annots)
        f.Ast.body;
      Ast.iter_stmts
        (fun s ->
          match s.Ast.sdesc with
          | Ast.Pragma_stmt { Ast.pdesc = Ast.P_enable { sets; _ }; _ } ->
              has_region_members := true;
              List.iter (scan_ref ~client:true) sets
          | _ -> ())
        f.Ast.body)
    (Ast.functions ast);
  List.filter_map
    (fun (flag, name) -> if !flag then Some name else None)
    [
      (has_pred_iface, "PI");
      (has_pred_client, "PC");
      (has_region_members, "C");
      (has_iface_members, "I");
      (has_self, "S");
      (has_group, "G");
    ]

(** Names of the transform families applicable with COMMSET annotations. *)
let applicable_transforms t : string list =
  let pdg = t.target.pdg in
  let scc = t.plan_ctx_comm.scc in
  let doall = T.Doall.applicable pdg in
  let pipeline_plans = T.Dswp.plans pdg t.sync scc t.trace ~threads:8 ~uses_commset:true in
  let has_psdswp = List.exists T.Plan.is_psdswp pipeline_plans in
  let has_dswp =
    List.exists (fun (p : T.Plan.t) -> not (T.Plan.is_psdswp p)) pipeline_plans
  in
  List.filter_map
    (fun (flag, name) -> if flag then Some name else None)
    [ (doall, "DOALL"); (has_dswp, "DSWP"); (has_psdswp, "PS-DSWP") ]
