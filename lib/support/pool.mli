(** Fixed-size domain pool for coarse-grained fan-out.

    The evaluation pipeline runs hundreds of independent compiles and
    discrete-event simulations; this module spreads them over OCaml 5
    domains while keeping results deterministic: [parmap] preserves input
    order, and a failing item re-raises the exception of the {e lowest}
    input index (exactly the one a sequential [List.map] would have hit
    first).

    The pool is a global token budget of [jobs () - 1] extra worker
    domains (the calling domain always participates), so arbitrarily
    nested [parmap] calls never oversubscribe the machine: once the
    budget is exhausted, inner calls degrade to plain sequential maps.

    The budget is sized by the [COMMSET_JOBS] environment variable,
    defaulting to {!Domain.recommended_domain_count}. [COMMSET_JOBS=1]
    disables parallelism entirely and is guaranteed to behave exactly
    like sequential code (same order of side effects included). *)

(** Pool size from the environment: [COMMSET_JOBS] if set to a positive
    integer, else {!Domain.recommended_domain_count}. A set-but-malformed
    [COMMSET_JOBS] (non-integer, zero or negative) raises a CS013
    {!Diag.Error} instead of silently falling back to the default. *)
val default_jobs : unit -> int

(** The pool size currently in force (lazily initialised from
    {!default_jobs} on first use). *)
val jobs : unit -> int

(** [set_jobs n] resizes the pool to [n] (clamped to >= 1). Must not be
    called while a [parmap] is in flight. *)
val set_jobs : int -> unit

(** [with_jobs n f] runs [f ()] with the pool resized to [n], restoring
    the previous size afterwards (even on exceptions). Not reentrant with
    respect to concurrent [parmap]s from other domains. *)
val with_jobs : int -> (unit -> 'a) -> 'a

(** [parmap f xs] is [List.map f xs] computed on up to [jobs ()] domains.
    Results are returned in input order. If one or more applications
    raise, the exception of the lowest-index failing item is re-raised
    (with its backtrace) after all workers have drained. *)
val parmap : ('a -> 'b) -> 'a list -> 'b list

(** [parmap_ordered f xs] is [parmap] with the 0-based input index passed
    to [f]. *)
val parmap_ordered : (int -> 'a -> 'b) -> 'a list -> 'b list
