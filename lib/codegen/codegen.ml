(** Facade: translate + build + load, one call for the executor. *)

module Precompile = Commset_runtime.Precompile

type compiled = {
  cg_fn : Abi.iter_fn;
  cg_key : string;
  cg_cache_hit : bool;
  cg_compile_s : float;
  cg_ml_path : string option;
}

let source ~prepared ~rt ~nid_of_iid () = Emit.emit ~prepared ~rt ~nid_of_iid ()

let prepare ~prepared ~rt ~nid_of_iid () : (compiled, string) result =
  match Emit.emit ~prepared ~rt ~nid_of_iid () with
  | Error _ as e -> e
  | Ok src -> (
      match Build.load ~source:src with
      | Error _ as e -> e
      | Ok c ->
          Ok
            {
              cg_fn = c.Build.c_fn;
              cg_key = c.Build.c_key;
              cg_cache_hit = c.Build.c_cache_hit;
              cg_compile_s = c.Build.c_compile_s;
              cg_ml_path = c.Build.c_ml_path;
            })

let key_of_source = Build.key_of_source
let cache_dir = Build.cache_dir
let cache_paths = Build.cache_paths
let reset_memo = Build.reset_memo
