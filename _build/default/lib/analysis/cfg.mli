(** Control-flow graph view of an IR function: predecessor maps, reverse
    post-order, and reachability — shared by the dataflow analyses. *)

module Ir = Commset_ir.Ir

type t = {
  func : Ir.func;
  labels : Ir.label list;  (** reachable labels in reverse post-order *)
  preds : (Ir.label, Ir.label list) Hashtbl.t;
  rpo_index : (Ir.label, int) Hashtbl.t;
}

val of_func : Ir.func -> t
val successors : t -> Ir.label -> Ir.label list
val predecessors : t -> Ir.label -> Ir.label list
val reachable_labels : t -> Ir.label list
val is_reachable : t -> Ir.label -> bool
val rpo_index : t -> Ir.label -> int

(** [can_reach t ~avoiding src dst]: is there a non-empty path from [src]
    to [dst] that never enters a label in [avoiding]? *)
val can_reach : t -> avoiding:Ir.label list -> Ir.label -> Ir.label -> bool
