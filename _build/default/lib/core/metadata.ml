(** The COMMSET metadata manager (paper §4.2).

    Maintains the registry of commsets (kind, predicate, nosync flag,
    global lock rank), resolves the three kinds of members —

    - [Mregion]: an annotated structured code block, lowered as a region;
    - [Mfun]: a function with interface-level membership;
    - [Mnamed]: a named optional block of a callee, enabled at call sites
      via COMMSETNAMEDARGADD —

    and computes, per PDG node, the membership *facets* that Algorithm 1
    and the synchronization engine consume. A facet couples one member
    identity with its commset bindings and the portion of the node's
    memory effects it covers. *)

module Ir = Commset_ir.Ir
module Ast = Commset_lang.Ast
module Tc = Commset_lang.Typecheck
module Effects = Commset_analysis.Effects
module Pdg = Commset_pdg.Pdg
open Commset_support

type set_kind = Ast.set_kind = Self_set | Group_set

type predicate = { params1 : string list; params2 : string list; body : Ast.expr }

type set_info = {
  sname : string;
  kind : set_kind;
  predicate : predicate option;
  nosync : bool;
  rank : int;  (** global lock-acquisition order *)
}

type member = Mregion of string * int | Mfun of string | Mnamed of string * string

let member_to_string = function
  | Mregion (f, rid) -> Printf.sprintf "%s/region%d" f rid
  | Mfun f -> f
  | Mnamed (f, b) -> Printf.sprintf "%s.%s" f b

type facet = {
  fmember : member;
  fsets : (string * Ir.operand list) list;  (** set name, actual operands (caller terms) *)
  frw : Effects.rw;  (** effect portion this facet covers *)
}

type t = {
  sets : (string, set_info) Hashtbl.t;
  set_order : string list;  (** rank order *)
  members : (string, member list) Hashtbl.t;  (** set -> members *)
  prog : Ir.program;
  tcenv : Tc.t;
  effects : Effects.t;
}

let self_region_set_name rid = Printf.sprintf "__self_r%d" rid
let self_fun_set_name fname = Printf.sprintf "__self_f_%s" fname
let is_materialized_self name = String.length name >= 6 && String.sub name 0 6 = "__self"

let set_info t name = Hashtbl.find_opt t.sets name

let set_info_exn t name =
  match set_info t name with
  | Some s -> s
  | None -> Diag.error "internal: unknown commset '%s'" name

let sets_in_rank_order t = List.map (set_info_exn t) t.set_order

let members_of t name = Option.value ~default:[] (Hashtbl.find_opt t.members name)

(* interface membership refs of a function: (set name, param indices),
   with SELF materialized *)
let interface_refs t (fname : string) : (string * int list) list =
  match Ast.find_function t.prog.Ir.source fname with
  | None -> []
  | Some f ->
      List.concat_map
        (fun (p : Ast.pragma) ->
          match p.Ast.pdesc with
          | Ast.P_member refs ->
              List.map
                (fun (r : Ast.commset_ref) ->
                  let set =
                    if r.Ast.set_name = "SELF" then self_fun_set_name fname else r.Ast.set_name
                  in
                  let indices =
                    List.map
                      (fun (e : Ast.expr) ->
                        match e.Ast.edesc with
                        | Ast.Var v -> (
                            match
                              Listx.index_of (fun (_, pname) -> pname = v) f.Ast.params
                            with
                            | Some i -> i
                            | None ->
                                Diag.error ~loc:e.Ast.eloc
                                  "interface commset actual '%s' is not a parameter of '%s'" v
                                  fname)
                        | _ ->
                            Diag.error ~loc:e.Ast.eloc
                              "interface commset actuals must be parameter names")
                      r.Ast.actuals
                  in
                  (set, indices))
                refs
          | _ -> [])
        f.Ast.fannots

(* the named region of a function, by name *)
let named_region t fname bname =
  match Ir.find_func t.prog fname with
  | None -> None
  | Some f -> List.find_opt (fun r -> r.Ir.rname = Some bname) f.Ir.fregions

(* instructions belonging to a region of a function *)
let region_instrs (f : Ir.func) rid =
  List.concat_map
    (fun b -> if List.mem rid b.Ir.bregions then b.Ir.instrs else [])
    (Ir.blocks_in_order f)

(** Effects of a function's named block, instantiated at a call site. *)
let named_block_rw t ~callee ~bname ~(args : Ir.operand list) ~(dst : Ir.reg option)
    ~(caller : string) : Effects.rw =
  match (named_region t callee bname, Ir.find_func t.prog callee) with
  | Some r, Some _f ->
      let instrs = region_instrs (Option.get (Ir.find_func t.prog callee)) r.Ir.rid in
      let callee_rw = Effects.instrs_rw t.effects ~fname:callee instrs in
      Effects.instantiate_rw t.effects ~fname:caller ~args ~dst callee_rw
  | _ -> Effects.rw_empty

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let register_set tbl order name kind predicate nosync =
  if not (Hashtbl.mem tbl name) then begin
    let rank = List.length !order in
    Hashtbl.replace tbl name { sname = name; kind; predicate; nosync; rank };
    order := name :: !order
  end

let build (prog : Ir.program) (tcenv : Tc.t) (effects : Effects.t) : t =
  let sets = Hashtbl.create 16 in
  let order = ref [] in
  (* declared sets, in declaration order *)
  List.iter
    (fun (p : Ast.pragma) ->
      match p.Ast.pdesc with
      | Ast.P_decl { set_name; kind } ->
          let predicate =
            Option.map
              (fun (params1, params2, body) -> { params1; params2; body })
              (Tc.predicate tcenv set_name)
          in
          register_set sets order set_name kind predicate (Tc.is_nosync tcenv set_name)
      | _ -> ())
    prog.Ir.source.Ast.global_pragmas;
  (* materialized self sets from regions and interfaces *)
  let members = Hashtbl.create 16 in
  let add_member set m =
    let cur = Option.value ~default:[] (Hashtbl.find_opt members set) in
    if not (List.mem m cur) then Hashtbl.replace members set (cur @ [ m ])
  in
  List.iter
    (fun fname ->
      let f = Hashtbl.find prog.Ir.funcs fname in
      List.iter
        (fun (r : Ir.region) ->
          List.iter
            (fun (set, _ops) ->
              if is_materialized_self set then
                register_set sets order set Self_set None false;
              if not (Hashtbl.mem sets set) then
                Diag.error ~loc:r.Ir.rloc "region references undeclared commset '%s'" set;
              add_member set (Mregion (fname, r.Ir.rid)))
            r.Ir.rrefs)
        f.Ir.fregions)
    prog.Ir.func_order;
  let t = { sets; set_order = List.rev !order; members; prog; tcenv; effects } in
  (* interface members *)
  List.iter
    (fun fname ->
      List.iter
        (fun (set, _indices) ->
          if is_materialized_self set then register_set sets order set Self_set None false;
          if not (Hashtbl.mem sets set) then
            Diag.error "function '%s' references undeclared commset '%s'" fname set;
          add_member set (Mfun fname))
        (interface_refs t fname))
    prog.Ir.func_order;
  (* named-block members from enables on call instructions *)
  List.iter
    (fun fname ->
      let f = Hashtbl.find prog.Ir.funcs fname in
      Ir.iter_instrs f (fun _ i ->
          match i.Ir.desc with
          | Ir.Call { callee; enabled; _ } ->
              List.iter
                (fun (e : Ir.enable) ->
                  List.iter
                    (fun (set, _) ->
                      if not (Hashtbl.mem sets set) then
                        Diag.error "enable pragma references undeclared commset '%s'" set;
                      add_member set (Mnamed (callee, e.Ir.en_block)))
                    e.Ir.en_sets)
                enabled
          | _ -> ()))
    prog.Ir.func_order;
  { t with set_order = List.rev !order }

(* ------------------------------------------------------------------ *)
(* Facets of PDG nodes                                                 *)
(* ------------------------------------------------------------------ *)

let call_of_node (n : Pdg.node) =
  match n.Pdg.kind with
  | Pdg.Ninstr ({ Ir.desc = Ir.Call { callee; _ }; _ } as i) -> Some (i, callee)
  | _ -> None

(** Membership facets of a PDG node in function [caller]. *)
let facets t ~(caller : string) (n : Pdg.node) : facet list =
  match n.Pdg.kind with
  | Pdg.Nregion (r, _) ->
      [ { fmember = Mregion (caller, r.Ir.rid); fsets = r.Ir.rrefs; frw = n.Pdg.rw } ]
  | Pdg.Nbranch _ -> [ { fmember = Mfun "<branch>"; fsets = []; frw = n.Pdg.rw } ]
  | Pdg.Ninstr i -> (
      match i.Ir.desc with
      | Ir.Call { callee; args; dst; enabled } ->
          let named =
            List.concat_map
              (fun (e : Ir.enable) ->
                let frw = named_block_rw t ~callee ~bname:e.Ir.en_block ~args ~dst ~caller in
                [
                  {
                    fmember = Mnamed (callee, e.Ir.en_block);
                    fsets = e.Ir.en_sets;
                    frw;
                  };
                ])
              enabled
          in
          let named_rw =
            List.fold_left (fun acc f -> Effects.rw_union acc f.frw) Effects.rw_empty named
          in
          let residual =
            {
              Effects.reads = Effects.LocSet.diff n.Pdg.rw.Effects.reads named_rw.Effects.reads;
              writes = Effects.LocSet.diff n.Pdg.rw.Effects.writes named_rw.Effects.writes;
            }
          in
          let iface =
            List.map
              (fun (set, indices) ->
                let ops =
                  List.map
                    (fun idx ->
                      match List.nth_opt args idx with
                      | Some op -> op
                      | None -> Diag.error "internal: interface actual index out of range")
                    indices
                in
                (set, ops))
              (interface_refs t callee)
          in
          { fmember = Mfun callee; fsets = iface; frw = residual } :: named
      | _ -> [ { fmember = Mfun "<instr>"; fsets = []; frw = n.Pdg.rw } ])

(** All commset names a node belongs to (for synchronization). *)
let node_sets t ~caller (n : Pdg.node) : string list =
  Listx.uniq (List.concat_map (fun f -> List.map fst f.fsets) (facets t ~caller n))
