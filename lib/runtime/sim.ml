(** Discrete-event simulator of the multicore target.

    Each virtual thread executes a segment list produced from a
    parallelization plan plus the sequential trace. Locks model the three
    paper synchronization modes (mutex with sleep/wakeup handoff, spin
    lock with cache-line bouncing that grows with the number of spinners,
    thread-safe-library internal locks), queues model the bounded
    lock-free inter-stage channels of (PS-)DSWP, and transactional
    segments model the optimistic TM runtime with abort-and-retry.

    Threads are processed in virtual-time order (always the minimum-time
    runnable thread), which preserves causality for all resource
    interactions.

    Transaction-conflict detection is the simulator's hottest path: a
    transaction window is validated against every earlier commit. The
    commit log is therefore kept in {!Commit_index}, a map ordered by
    commit time, so a window only examines the commits it can actually
    overlap, and entries older than every unfinished thread are pruned as
    virtual time advances. Footprints are precomputed string sets, not
    the [List.mem] product the naive formulation implies. *)

open Commset_support
module Metrics = Commset_obs.Metrics

let src_log = Logs.Src.create "commset.sim" ~doc:"Discrete-event multicore simulator"

module Log = (val Logs.src_log src_log : Logs.LOG)

let m_runs = Metrics.counter ~doc:"simulations executed" "sim.runs"

let m_lock_contended =
  Metrics.counter ~doc:"contended lock acquires across runs" "sim.lock_contended"

let m_tx_aborts = Metrics.counter ~doc:"transaction aborts across runs" "sim.tx_aborts"
let m_commits = Metrics.counter ~doc:"transaction commits across runs" "sim.commits"

let m_lock_wait =
  Metrics.counter ~doc:"virtual cycles spent blocked on locks (rounded per run)"
    "sim.lock_wait_cycles"

let m_queue_wait =
  Metrics.counter ~doc:"virtual cycles spent blocked on queues (rounded per run)"
    "sim.queue_wait_cycles"

type lock_spec = { lflavor : Costmodel.lock_flavor; lname : string }

(** Runtime commutativity information attached to a speculative
    transaction: the member's identity and the predicate actuals of each
    dynamic instance the transaction covers. *)
type spec_info = {
  sp_member : string;
  sp_keys : (string * Value.t list) list list;  (** per instance: set -> actuals *)
}

type seg =
  | Compute of { cost : float; tag : string }
  | Acquire of int
  | Release of int
  | Push of int
  | Pop of int
  | Emit of string
  | Tx of {
      cost : float;
      reads : string list;
      writes : string list;
      outputs : string list;
      tag : string;
      spec : spec_info option;
    }

module Sset = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Commit index                                                        *)
(* ------------------------------------------------------------------ *)

module Commit_index = struct
  (* Commits keyed by commit time. Commit times are not monotone in log
     order (the min-time scheduler interleaves threads whose windows
     overlap), so a sorted map rather than an append-only list; a window
     query walks only the bindings inside (start, stop). *)
  module Fmap = Map.Make (Float)

  type entry = {
    e_thread : int;
    e_rset : Sset.t;
    e_wset : Sset.t;
    e_spec : spec_info option;
  }

  type t = entry list Fmap.t

  let empty : t = Fmap.empty
  let is_empty = Fmap.is_empty

  let add_sets idx ~time ~thread ~rset ~wset ~spec : t =
    let e = { e_thread = thread; e_rset = rset; e_wset = wset; e_spec = spec } in
    Fmap.update time
      (function None -> Some [ e ] | Some es -> Some (e :: es))
      idx

  let add idx ~time ~thread ~reads ~writes ~spec : t =
    add_sets idx ~time ~thread ~rset:(Sset.of_list reads) ~wset:(Sset.of_list writes) ~spec

  (* drop every commit at or before [min_time]: no future transaction
     window (start, stop) can have start < min_time once every unfinished
     thread's clock has reached min_time *)
  let prune idx ~min_time : t =
    let _, _, above = Fmap.split min_time idx in
    above

  let size idx = Fmap.fold (fun _ es acc -> acc + List.length es) idx 0

  (* an overlapping footprint is forgiven when the runtime commutativity
     check proves the two transactions' member instances commute *)
  let entry_conflicts ~commutes ~thread ~rwset ~wset ~spec e =
    e.e_thread <> thread
    && ((not (Sset.disjoint e.e_wset rwset)) || not (Sset.disjoint e.e_rset wset))
    &&
    match (spec, e.e_spec, commutes) with
    | Some s1, Some s2, Some commutes -> not (commutes s1 s2)
    | _ -> true

  let conflicts idx ~commutes ~thread ~start ~stop ~reads ~writes ~spec : bool =
    let rwset = Sset.union reads writes in
    let rec scan seq =
      match seq () with
      | Seq.Nil -> false
      | Seq.Cons ((time, entries), rest) ->
          if time >= stop then false
          else if time <= start then scan rest
          else
            List.exists (entry_conflicts ~commutes ~thread ~rwset ~wset:writes ~spec) entries
            || scan rest
    in
    scan (Fmap.to_seq_from start idx)
end

type lock_state = {
  spec : lock_spec;
  mutable owner : int option;
  waiters : int Queue.t;
  mutable contended_acquires : int;
}

type queue_state = {
  capacity : int;
  mutable count : int;
  mutable waiting_producer : int option;
  mutable waiting_consumer : int option;
}

type thread = {
  tid : int;
  segs : seg array;
  mutable pc : int;
  mutable time : float;
  mutable blocked : bool;
  mutable busy : float;  (** cycles spent computing (not waiting) *)
  mutable intervals : (float * float * string) list;  (** for timelines; reverse *)
}

type result = {
  makespan : float;
  outputs : (float * string) list;  (** commit-time ordered *)
  thread_busy : float array;
  timelines : (float * float * string) list array;
  lock_contended : int;
  tx_aborts : int;
  lock_wait : float;  (** total virtual cycles threads spent blocked on locks *)
  queue_wait : float;  (** total virtual cycles threads spent blocked on queues *)
}

type t = {
  threads : thread array;
  locks : lock_state array;
  queues : queue_state array;
  mutable emitted : (float * string) list;
  mutable commits : Commit_index.t;
  mutable pruned_to : float;  (** commits at or before this time are gone *)
  mutable tx_aborts : int;
  mutable n_commits : int;
  mutable lock_wait : float;
  mutable queue_wait : float;
  spec_commutes : (spec_info -> spec_info -> bool) option;
      (** runtime commutativity check for speculative transactions: when
          both transactions carry [spec_info] and this returns [true],
          an overlapping read/write footprint is not a conflict *)
  record_timeline : bool;
}

let create ?(record_timeline = false) ?spec_commutes ~locks ~n_queues (seg_lists : seg list array) : t =
  {
    threads =
      Array.mapi
        (fun tid segs ->
          {
            tid;
            segs = Array.of_list segs;
            pc = 0;
            time = 0.;
            blocked = false;
            busy = 0.;
            intervals = [];
          })
        seg_lists;
    locks =
      Array.map
        (fun spec -> { spec; owner = None; waiters = Queue.create (); contended_acquires = 0 })
        locks;
    queues =
      Array.init n_queues (fun _ ->
          {
            capacity = Atomic.get Costmodel.queue_capacity;
            count = 0;
            waiting_producer = None;
            waiting_consumer = None;
          });
    emitted = [];
    commits = Commit_index.empty;
    pruned_to = neg_infinity;
    tx_aborts = 0;
    n_commits = 0;
    lock_wait = 0.;
    queue_wait = 0.;
    spec_commutes;
    record_timeline;
  }

let finished th = th.pc >= Array.length th.segs

let note_interval t th start stop tag =
  if t.record_timeline && stop > start then th.intervals <- (start, stop, tag) :: th.intervals

let step t th =
  let seg = th.segs.(th.pc) in
  match seg with
  | Compute { cost; tag } ->
      note_interval t th th.time (th.time +. cost) tag;
      th.time <- th.time +. cost;
      th.busy <- th.busy +. cost;
      th.pc <- th.pc + 1
  | Emit s ->
      t.emitted <- (th.time, s) :: t.emitted;
      th.pc <- th.pc + 1
  | Acquire l ->
      let lock = t.locks.(l) in
      if lock.owner = None && Queue.is_empty lock.waiters then begin
        lock.owner <- Some th.tid;
        th.time <- th.time +. Costmodel.acquire_base lock.spec.lflavor;
        th.pc <- th.pc + 1
      end
      else begin
        lock.contended_acquires <- lock.contended_acquires + 1;
        Queue.add th.tid lock.waiters;
        th.blocked <- true
      end
  | Release l ->
      let lock = t.locks.(l) in
      if lock.owner <> Some th.tid then
        Diag.error "simulator: thread %d releases lock %s it does not own" th.tid
          lock.spec.lname;
      th.time <- th.time +. Costmodel.release_base lock.spec.lflavor;
      th.pc <- th.pc + 1;
      let n_waiters = Queue.length lock.waiters in
      if n_waiters = 0 then lock.owner <- None
      else begin
        (* direct handoff to the first waiter *)
        let w = Queue.pop lock.waiters in
        let waiter = t.threads.(w) in
        lock.owner <- Some w;
        let grant =
          max waiter.time
            (th.time +. Costmodel.handoff_penalty lock.spec.lflavor ~n_waiters)
        in
        t.lock_wait <- t.lock_wait +. (grant -. waiter.time);
        if t.record_timeline then
          note_interval t waiter waiter.time grant ("wait:" ^ lock.spec.lname);
        waiter.time <- grant;
        waiter.blocked <- false;
        waiter.pc <- waiter.pc + 1 (* past its Acquire *)
      end
  | Push q ->
      let queue = t.queues.(q) in
      if queue.count < queue.capacity then begin
        queue.count <- queue.count + 1;
        th.time <- th.time +. Costmodel.queue_push_cost;
        th.pc <- th.pc + 1;
        match queue.waiting_consumer with
        | Some c ->
            queue.waiting_consumer <- None;
            let consumer = t.threads.(c) in
            consumer.blocked <- false;
            let wake = max consumer.time th.time in
            t.queue_wait <- t.queue_wait +. (wake -. consumer.time);
            if t.record_timeline then
              note_interval t consumer consumer.time wake ("wait:q" ^ string_of_int q);
            consumer.time <- wake
        | None -> ()
      end
      else begin
        queue.waiting_producer <- Some th.tid;
        th.blocked <- true
      end
  | Pop q ->
      let queue = t.queues.(q) in
      if queue.count > 0 then begin
        queue.count <- queue.count - 1;
        th.time <- th.time +. Costmodel.queue_pop_cost;
        th.pc <- th.pc + 1;
        match queue.waiting_producer with
        | Some p ->
            queue.waiting_producer <- None;
            let producer = t.threads.(p) in
            producer.blocked <- false;
            let wake = max producer.time th.time in
            t.queue_wait <- t.queue_wait +. (wake -. producer.time);
            if t.record_timeline then
              note_interval t producer producer.time wake ("wait:q" ^ string_of_int q);
            producer.time <- wake
        | None -> ()
      end
      else begin
        queue.waiting_consumer <- Some th.tid;
        th.blocked <- true
      end
  | Tx { cost; reads; writes; outputs; tag; spec } ->
      (* footprint sets built once per execution (each Tx segment runs
         exactly once), shared by every retry's conflict query *)
      let rset = Sset.of_list reads in
      let wset = Sset.of_list writes in
      (* execute-with-retry until the commit window is conflict-free *)
      let rec attempt tries start =
        let stop = start +. Costmodel.tx_begin_cost +. cost +. Costmodel.tx_commit_cost in
        if
          tries < Costmodel.tx_max_retries
          && Commit_index.conflicts t.commits ~commutes:t.spec_commutes ~thread:th.tid
               ~start ~stop ~reads:rset ~writes:wset ~spec
        then begin
          t.tx_aborts <- t.tx_aborts + 1;
          th.busy <- th.busy +. cost;
          (* each aborted window is its own timeline interval so retried
             transactions show up as distinct [abort:] slices in traces *)
          if t.record_timeline then note_interval t th start stop ("abort:" ^ tag);
          attempt (tries + 1) (stop +. Costmodel.tx_abort_penalty)
        end
        else (start, stop)
      in
      let start, stop = attempt 0 th.time in
      note_interval t th start stop tag;
      th.time <- stop;
      th.busy <- th.busy +. cost;
      t.n_commits <- t.n_commits + 1;
      t.commits <-
        Commit_index.add_sets t.commits ~time:stop ~thread:th.tid ~rset ~wset ~spec;
      List.iter (fun s -> t.emitted <- (stop, s) :: t.emitted) outputs;
      th.pc <- th.pc + 1

let run t : result =
  let n = Array.length t.threads in
  let continue_ = ref true in
  while !continue_ do
    (* pick the minimum-time runnable unfinished thread; track the
       minimum time over every unfinished thread (runnable or blocked)
       as the safe horizon for pruning the commit index *)
    let best = ref None in
    let min_all = ref infinity in
    for i = 0 to n - 1 do
      let th = t.threads.(i) in
      if not (finished th) then begin
        if th.time < !min_all then min_all := th.time;
        if not th.blocked then
          match !best with
          | Some b when t.threads.(b).time <= th.time -> ()
          | _ -> best := Some i
      end
    done;
    if (not (Commit_index.is_empty t.commits)) && !min_all > t.pruned_to then begin
      t.commits <- Commit_index.prune t.commits ~min_time:!min_all;
      t.pruned_to <- !min_all
    end;
    match !best with
    | Some i -> step t t.threads.(i)
    | None ->
        if Array.exists (fun th -> not (finished th)) t.threads then
          Diag.error "simulator: deadlock (all unfinished threads are blocked)"
        else continue_ := false
  done;
  let makespan = Array.fold_left (fun acc th -> max acc th.time) 0. t.threads in
  let lock_contended =
    Array.fold_left (fun acc l -> acc + l.contended_acquires) 0 t.locks
  in
  Metrics.incr m_runs;
  Metrics.add m_lock_contended lock_contended;
  Metrics.add m_tx_aborts t.tx_aborts;
  Metrics.add m_commits t.n_commits;
  (* wait totals are rounded to whole cycles per run so the aggregate is
     an integer sum and therefore identical for any COMMSET_JOBS *)
  Metrics.add m_lock_wait (int_of_float (t.lock_wait +. 0.5));
  Metrics.add m_queue_wait (int_of_float (t.queue_wait +. 0.5));
  Log.debug (fun m ->
      m
        "run: makespan %.0f, %d contended acquire(s), %d abort(s), %d commit(s), lock wait \
         %.0f, queue wait %.0f"
        makespan lock_contended t.tx_aborts t.n_commits t.lock_wait t.queue_wait);
  {
    makespan;
    outputs = List.sort compare (List.rev t.emitted);
    thread_busy = Array.map (fun th -> th.busy) t.threads;
    timelines = Array.map (fun th -> List.rev th.intervals) t.threads;
    lock_contended;
    tx_aborts = t.tx_aborts;
    lock_wait = t.lock_wait;
    queue_wait = t.queue_wait;
  }
