(** miniC iteration-body → OCaml source translation.

    Input is {!Commset_runtime.Precompile}'s typed view of the target
    function (the exact region [run_iteration] spans) plus a static
    instruction→PDG-node map. Output is the source of a self-contained
    module whose [iter : Abi.ctx -> Value.t array -> unit] replays one
    iteration with the reference semantics:

    - in-loop blocks become mutually tail-recursive [unit] functions
      closing over the caller's register file; reachable callee
      functions become [Value.t]-returning functions over a fresh frame
      (the [w_nested] contract: builtins intercepted, no node tracking);
    - fuel is charged per block entry and per instruction at the exact
      interpreter points (so [Out_of_fuel] and step totals agree); a
      straight run of simple instructions pays one batched check and
      subtraction when the tank clearly covers it, falling back to the
      per-instruction path — which traps exactly where the interpreter
      would — when it may not; simulated cycles are batched per
      straight-line segment and flushed through [ctx.cg_charge] before
      every node transition, builtin call and iteration exit;
    - node transitions ([ctx.cg_node]) are emitted once per maximal run
      of same-node instructions — the per-instruction [on_instr] of the
      interpreted path collapses to its static boundaries;
    - operator/trap semantics mirror [prep_binop]/[prep_unop]/
      [prep_instr] case by case, including error message text and
      constant-branch traps.

    The emitted text is deterministic for a given prepared program +
    target + node map: it is the content-hash cache key's preimage. *)

open Commset_support
module Ir = Commset_ir.Ir
module Ast = Commset_lang.Ast
module Value = Commset_runtime.Value
module Builtins = Commset_runtime.Builtins
module Costmodel = Commset_runtime.Costmodel
module Precompile = Commset_runtime.Precompile

(** Placeholder the builder substitutes with the content-hash key (the
    hash is over the source containing the placeholder, so the final
    text can embed its own key). *)
let key_marker = "__COMMSET_CODEGEN_KEY__"

exception Unsupported of string

(* ---- literal printing ------------------------------------------------ *)

(* Hex float literals round-trip exactly; the special values have no
   literal syntax and use Stdlib names. *)
let float_lit (f : float) : string =
  if Float.is_nan f then "Stdlib.nan"
  else if f = Float.infinity then "Stdlib.infinity"
  else if f = Float.neg_infinity then "Stdlib.neg_infinity"
  else Printf.sprintf "(%h)" f

let int_lit (n : int) : string = Printf.sprintf "(%d)" n

let value_lit (v : Value.t) : string =
  match v with
  | Value.Vint n -> Printf.sprintf "(V.Vint %s)" (int_lit n)
  | Value.Vfloat f -> Printf.sprintf "(V.Vfloat %s)" (float_lit f)
  | Value.Vbool b -> Printf.sprintf "(V.Vbool %b)" b
  | Value.Vstring s -> Printf.sprintf "(V.Vstring %S)" s
  | Value.Varray _ -> raise (Unsupported "array-valued constant")

(* ---- emission state -------------------------------------------------- *)

type pools = {
  mutable p_bindings : (string * string) list;  (** name, expr — reversed *)
  consts : (Ir.const, string) Hashtbl.t;
  builtins : (string, string) Hashtbl.t;
  locs : (Loc.t, string) Hashtbl.t;
  mutable next : int;
}

let fresh_name pools prefix =
  let n = Printf.sprintf "%s%d" prefix pools.next in
  pools.next <- pools.next + 1;
  n

let bind pools prefix expr =
  let n = fresh_name pools prefix in
  pools.p_bindings <- (n, expr) :: pools.p_bindings;
  n

let const_name pools (c : Ir.const) : string =
  match Hashtbl.find_opt pools.consts c with
  | Some n -> n
  | None ->
      let expr =
        match c with
        | Ir.Cint n -> Printf.sprintf "V.Vint %s" (int_lit n)
        | Ir.Cfloat f -> Printf.sprintf "V.Vfloat %s" (float_lit f)
        | Ir.Cbool b -> Printf.sprintf "V.Vbool %b" b
        | Ir.Cstring s -> Printf.sprintf "V.Vstring %S" s
      in
      let n = bind pools "k" expr in
      Hashtbl.replace pools.consts c n;
      n

let builtin_name pools (name : string) : string =
  match Hashtbl.find_opt pools.builtins name with
  | Some n -> n
  | None ->
      let n = bind pools "b" (Printf.sprintf "B.find_exn %S" name) in
      Hashtbl.replace pools.builtins name n;
      n

let loc_name pools (loc : Loc.t) : string =
  match Hashtbl.find_opt pools.locs loc with
  | Some n -> n
  | None ->
      let expr =
        if Loc.is_dummy loc then "L.dummy"
        else
          let pos (p : Loc.position) =
            Printf.sprintf "(L.position ~line:%d ~col:%d ~offset:%d)" p.Loc.line
              p.Loc.col p.Loc.offset
          in
          Printf.sprintf "L.make ~file:%S ~start_pos:%s ~end_pos:%s" loc.Loc.file
            (pos loc.Loc.start_pos) (pos loc.Loc.end_pos)
      in
      let n = bind pools "loc" expr in
      Hashtbl.replace pools.locs loc n;
      n

(* ---- operand expressions -------------------------------------------- *)

(* Value expression of an operand; register reads use the local frame
   binding [regs] (the closed-over iteration frame in target blocks, the
   function parameter in nested functions — same identifier in both). *)
let ov pools = function
  | Ir.Reg r -> Printf.sprintf "regs.(%d)" r
  | Ir.Const c -> const_name pools c

(* Coerced operand expressions. A constant of the matching constructor
   folds to an OCaml literal (the coercion is the identity there); any
   other constant goes through the pooled value and the same [Value]
   coercion the interpreter applies, trapping with the same message. *)
let oi pools = function
  | Ir.Const (Ir.Cint n) -> int_lit n
  | o -> Printf.sprintf "(V.to_int %s)" (ov pools o)

let of_ pools = function
  | Ir.Const (Ir.Cfloat f) -> float_lit f
  | o -> Printf.sprintf "(V.to_float %s)" (ov pools o)

let os pools = function
  | Ir.Const (Ir.Cstring s) -> Printf.sprintf "%S" s
  | o -> Printf.sprintf "(V.to_string_val %s)" (ov pools o)

let ob pools = function
  | Ir.Const (Ir.Cbool b) -> Printf.sprintf "%b" b
  | o -> Printf.sprintf "(V.to_bool %s)" (ov pools o)

(* ---- instruction bodies ---------------------------------------------- *)

(* The (op, ty) table of [Precompile.prep_binop], emitted case by case. *)
let binop_expr pools op ty a b : string =
  let i = oi pools and f = of_ pools and s = os pools and bl = ob pools in
  let v = ov pools in
  match (op, ty) with
  | Ast.Add, Ast.Tint -> Printf.sprintf "V.Vint (%s + %s)" (i a) (i b)
  | Ast.Sub, Ast.Tint -> Printf.sprintf "V.Vint (%s - %s)" (i a) (i b)
  | Ast.Mul, Ast.Tint -> Printf.sprintf "V.Vint (%s * %s)" (i a) (i b)
  | Ast.Div, Ast.Tint ->
      Printf.sprintf
        "(let d = %s in if d = 0 then D.error \"runtime: division by zero\" else \
         V.Vint (%s / d))"
        (i b) (i a)
  | Ast.Mod, Ast.Tint ->
      Printf.sprintf
        "(let d = %s in if d = 0 then D.error \"runtime: modulo by zero\" else \
         V.Vint (%s mod d))"
        (i b) (i a)
  | Ast.Add, Ast.Tfloat -> Printf.sprintf "V.Vfloat (%s +. %s)" (f a) (f b)
  | Ast.Sub, Ast.Tfloat -> Printf.sprintf "V.Vfloat (%s -. %s)" (f a) (f b)
  | Ast.Mul, Ast.Tfloat -> Printf.sprintf "V.Vfloat (%s *. %s)" (f a) (f b)
  | Ast.Div, Ast.Tfloat -> Printf.sprintf "V.Vfloat (%s /. %s)" (f a) (f b)
  | Ast.Add, Ast.Tstring -> Printf.sprintf "V.Vstring (%s ^ %s)" (s a) (s b)
  | Ast.Lt, Ast.Tint -> Printf.sprintf "V.Vbool (%s < %s)" (i a) (i b)
  | Ast.Le, Ast.Tint -> Printf.sprintf "V.Vbool (%s <= %s)" (i a) (i b)
  | Ast.Gt, Ast.Tint -> Printf.sprintf "V.Vbool (%s > %s)" (i a) (i b)
  | Ast.Ge, Ast.Tint -> Printf.sprintf "V.Vbool (%s >= %s)" (i a) (i b)
  | Ast.Lt, Ast.Tfloat -> Printf.sprintf "V.Vbool (%s < %s)" (f a) (f b)
  | Ast.Le, Ast.Tfloat -> Printf.sprintf "V.Vbool (%s <= %s)" (f a) (f b)
  | Ast.Gt, Ast.Tfloat -> Printf.sprintf "V.Vbool (%s > %s)" (f a) (f b)
  | Ast.Ge, Ast.Tfloat -> Printf.sprintf "V.Vbool (%s >= %s)" (f a) (f b)
  | Ast.Lt, Ast.Tstring -> Printf.sprintf "V.Vbool (%s < %s)" (s a) (s b)
  | Ast.Gt, Ast.Tstring -> Printf.sprintf "V.Vbool (%s > %s)" (s a) (s b)
  | Ast.Eq, _ -> Printf.sprintf "V.Vbool (V.equal %s %s)" (v a) (v b)
  | Ast.Neq, _ -> Printf.sprintf "V.Vbool (not (V.equal %s %s))" (v a) (v b)
  | Ast.And, Ast.Tbool -> Printf.sprintf "V.Vbool (%s && %s)" (bl a) (bl b)
  | Ast.Or, Ast.Tbool -> Printf.sprintf "V.Vbool (%s || %s)" (bl a) (bl b)
  | _ -> "(D.error \"runtime: ill-typed binop\")"

let unop_expr pools op a : string =
  match op with
  | Ast.Neg ->
      Printf.sprintf
        "(match %s with V.Vint n -> V.Vint (-n) | V.Vfloat f -> V.Vfloat (-.f) | _ \
         -> D.error \"runtime: ill-typed unop\")"
        (ov pools a)
  | Ast.Not ->
      Printf.sprintf
        "(match %s with V.Vbool x -> V.Vbool (not x) | _ -> D.error \"runtime: \
         ill-typed unop\")"
        (ov pools a)

(* ---- the emitter ------------------------------------------------------ *)

type callee = { cl_fn : string; cl_view : Precompile.view_func }

type env = {
  pools : pools;
  prepared : Precompile.t;
  buf : Buffer.t;
  callees : (string, callee) Hashtbl.t;  (** user function name → emitted id *)
  mutable callee_order : string list;  (** reversed discovery order *)
}

let line env fmt = Printf.ksprintf (fun s -> Buffer.add_string env.buf (s ^ "\n")) fmt

(* Resolve a call like prep_instr: builtin name wins, then user
   function, else a trap site. *)
type resolved = Rbuiltin of string | Ruser of callee | Runknown

let resolve_callee env name =
  match Builtins.find name with
  | Some _ -> Rbuiltin name
  | None -> (
      match Hashtbl.find_opt env.callees name with
      | Some c -> Ruser c
      | None -> (
          match Precompile.view_func env.prepared name with
          | Some view ->
              let c =
                { cl_fn = Printf.sprintf "fn%d" (Hashtbl.length env.callees); cl_view = view }
              in
              Hashtbl.replace env.callees name c;
              env.callee_order <- name :: env.callee_order;
              Ruser c
          | None -> Runknown))

let step_stmt = "if !fuel <= 0 then raise Commset_runtime.Interp.Out_of_fuel; decr fuel;"

(* [pc] is a one-element float array so accumulating simulated cycles
   never boxes (a [float ref] allocates on every update). *)
let charge_stmt cost = Printf.sprintf "pc.(0) <- pc.(0) +. %s;" (float_lit cost)

(* One call instruction: fuel + own static cost, then the builtin
   boundary (flush, dispatch through ctx) or the user-call frame setup. *)
let emit_call env ~ind ~cost (i : Ir.instr) =
  match i.Ir.desc with
  | Ir.Call { dst; callee; args; enabled = _ } -> (
      line env "%s%s" ind step_stmt;
      line env "%s%s" ind (charge_stmt cost);
      match resolve_callee env callee with
      | Rbuiltin name ->
          let argv = String.concat "; " (List.map (ov env.pools) args) in
          let has_dst = match dst with Some _ -> true | None -> false in
          line env "%sflush ();" ind;
          line env
            "%s(let (v, c) = ctx.A.cg_builtin %s [%s] ~has_dst:%b in pc.(0) <- pc.(0) +. c; %s);"
            ind
            (builtin_name env.pools callee)
            argv has_dst
            (match dst with
            | Some r -> Printf.sprintf "regs.(%d) <- v" r
            | None -> "ignore v");
          ignore name
      | Ruser c ->
          let np = Array.length c.cl_view.Precompile.vf_params in
          let nargs = List.length args in
          if nargs < np then
            line env "%sD.error \"runtime: missing argument %d of %s\";" ind nargs callee
          else begin
            line env "%s(let cr = Array.make %d (V.Vint 0) in" ind
              c.cl_view.Precompile.vf_nregs;
            List.iteri
              (fun j a ->
                if j < np then
                  line env "%s cr.(%d) <- %s;" ind
                    c.cl_view.Precompile.vf_params.(j)
                    (ov env.pools a))
              args;
            match dst with
            | Some r -> line env "%s regs.(%d) <- %s cr);" ind r c.cl_fn
            | None -> line env "%s ignore (%s cr));" ind c.cl_fn
          end
      | Runknown ->
          line env "%sD.error ~loc:%s \"runtime: call to unknown function '%s'\";" ind
            (loc_name env.pools i.Ir.iloc)
            callee)
  | _ -> assert false

(* A non-call instruction as one unit statement (same trap text and
   coercion order as prep_instr). *)
let simple_stmt env (i : Ir.instr) : string =
  let pools = env.pools in
  match i.Ir.desc with
  | Ir.Move (r, op) -> Printf.sprintf "regs.(%d) <- %s;" r (ov pools op)
  | Ir.Binop (op, ty, r, a, b) ->
      Printf.sprintf "regs.(%d) <- %s;" r (binop_expr pools op ty a b)
  | Ir.Unop (op, _, r, a) -> Printf.sprintf "regs.(%d) <- %s;" r (unop_expr pools op a)
  | Ir.Load_global (r, g) -> (
      match Precompile.global_slot env.prepared g with
      | Some slot when Precompile.global_declared env.prepared g ->
          Printf.sprintf "regs.(%d) <- gl.(%d);" r slot
      | Some slot ->
          Printf.sprintf
            "regs.(%d) <- (if gld.(%d) then gl.(%d) else D.error \"runtime: unknown \
             global '%s'\");"
            r slot slot g
      | None -> Printf.sprintf "regs.(%d) <- D.error \"runtime: unknown global '%s'\";" r g)
  | Ir.Store_global (g, op) -> (
      match Precompile.global_slot env.prepared g with
      | None -> raise (Unsupported ("stored global without a slot: " ^ g))
      | Some slot ->
          if Precompile.global_declared env.prepared g then
            Printf.sprintf "gl.(%d) <- %s;" slot (ov pools op)
          else
            Printf.sprintf "gl.(%d) <- %s; gld.(%d) <- true;" slot (ov pools op) slot)
  | Ir.Load_index (r, arr, idx) ->
      Printf.sprintf
        "(let a = V.to_array ~what:\"indexed value\" %s in let j = V.to_int \
         ~what:\"index\" %s in if j < 0 || j >= Array.length a then D.error ~loc:%s \
         \"runtime: index %%d out of bounds (length %%d)\" j (Array.length a); \
         regs.(%d) <- a.(j));"
        (ov pools arr) (ov pools idx)
        (loc_name pools i.Ir.iloc)
        r
  | Ir.Store_index (arr, idx, v) ->
      Printf.sprintf
        "(let a = V.to_array ~what:\"indexed value\" %s in let j = V.to_int \
         ~what:\"index\" %s in if j < 0 || j >= Array.length a then D.error ~loc:%s \
         \"runtime: index %%d out of bounds (length %%d)\" j (Array.length a); a.(j) \
         <- %s);"
        (ov pools arr) (ov pools idx)
        (loc_name pools i.Ir.iloc)
        (ov pools v)
  | Ir.Call _ -> assert false

(* Emit a block's instruction sequence. [node_of] present = target
   depth (node boundaries emitted); absent = nested depth. Straight
   runs of non-call instructions charge their summed static cost once,
   then step+execute per instruction. *)
let emit_instrs env ~ind ~(node_of : (int -> int) option) (vb : Precompile.view_block) =
  let instrs = vb.Precompile.vb_instrs and costs = vb.Precompile.vb_costs in
  let pending = ref [] (* (instr, cost) reversed *) in
  let flush_pending () =
    match List.rev !pending with
    | [] -> ()
    | ps ->
        let total = List.fold_left (fun acc (_, c) -> acc +. c) 0. ps in
        if total <> 0. then line env "%s%s" ind (charge_stmt total);
        (* A straight run of n simple instructions consumes exactly n
           fuel and none of them observes the counter, so the common
           case pays one check and one subtraction; only a nearly-dry
           tank takes the per-instruction path, which traps at the
           exact same instruction the interpreter would. *)
        let n = List.length ps in
        if n = 1 then
          List.iter
            (fun (i, _) ->
              line env "%s%s" ind step_stmt;
              line env "%s%s" ind (simple_stmt env i))
            ps
        else begin
          line env "%sif !fuel >= %d then begin fuel := !fuel - %d;" ind n n;
          List.iter (fun (i, _) -> line env "%s  %s" ind (simple_stmt env i)) ps;
          line env "%send else begin" ind;
          List.iter
            (fun (i, _) ->
              line env "%s  %s" ind step_stmt;
              line env "%s  %s" ind (simple_stmt env i))
            ps;
          line env "%send;" ind
        end;
        pending := []
  in
  let prev_nid = ref min_int in
  Array.iteri
    (fun k (i : Ir.instr) ->
      (match node_of with
      | Some nid_of ->
          let nid = nid_of i.Ir.iid in
          if nid <> !prev_nid then begin
            flush_pending ();
            line env "%sflush (); ctx.A.cg_node (%d);" ind nid;
            prev_nid := nid
          end
      | None -> ());
      match i.Ir.desc with
      | Ir.Call _ ->
          flush_pending ();
          emit_call env ~ind ~cost:costs.(k) i
      | _ -> pending := (i, costs.(k)) :: !pending)
    instrs;
  flush_pending ()

let terminator_charge env ~ind =
  line env "%s%s" ind (charge_stmt Costmodel.terminator_cost)

(* Target-depth transfer: the continue_to of run_iteration, resolved
   statically per edge. *)
let target_go ~header ~in_loop tgt : string =
  if tgt = header then "()"
  else if tgt >= 0 && tgt < Array.length in_loop && in_loop.(tgt) then
    Printf.sprintf "tb%d ()" tgt
  else "D.error \"real-exec: iteration escaped the target loop\""

let emit_target_term env ~ind ~header ~in_loop (vb : Precompile.view_block) =
  terminator_charge env ~ind;
  let go = target_go ~header ~in_loop in
  match vb.Precompile.vb_term with
  | Precompile.Vjump j -> line env "%s%s" ind (go j)
  | Precompile.Vbranch (c, l1, l2) ->
      line env
        "%s(match regs.(%d) with V.Vbool true -> %s | V.Vbool false -> %s | v -> \
         ignore (V.to_bool ~what:\"branch condition\" v); assert false)"
        ind c (go l1) (go l2)
  | Precompile.Vbranch_const v ->
      line env "%signore (V.to_bool ~what:\"branch condition\" %s); assert false" ind
        (value_lit v)
  | Precompile.Vret_reg _ | Precompile.Vret_const _ | Precompile.Vret_none ->
      line env "%sD.error \"real-exec: iteration returned out of the target loop\"" ind

(* Nested-depth transfer: whole-function w_nested semantics. A jump to
   a label with no block charges block-entry fuel then raises Not_found
   like [Ir.block]. *)
let nested_go (c : callee) tgt : string =
  if tgt >= 0 then Printf.sprintf "%sb%d regs" c.cl_fn tgt
  else
    Printf.sprintf "(%s raise Stdlib.Not_found)"
      "if !fuel <= 0 then raise Commset_runtime.Interp.Out_of_fuel; decr fuel;"

let emit_nested_term env ~ind (c : callee) (vb : Precompile.view_block) =
  terminator_charge env ~ind;
  let go = nested_go c in
  match vb.Precompile.vb_term with
  | Precompile.Vjump j -> line env "%s%s" ind (go j)
  | Precompile.Vbranch (cr, l1, l2) ->
      line env
        "%s(match regs.(%d) with V.Vbool true -> %s | V.Vbool false -> %s | v -> \
         ignore (V.to_bool ~what:\"branch condition\" v); assert false)"
        ind cr (go l1) (go l2)
  | Precompile.Vbranch_const v ->
      line env "%signore (V.to_bool ~what:\"branch condition\" %s); assert false" ind
        (value_lit v)
  | Precompile.Vret_reg r -> line env "%sregs.(%d)" ind r
  | Precompile.Vret_const v -> line env "%s%s" ind (value_lit v)
  | Precompile.Vret_none -> line env "%sV.Vint 0" ind

(** Translate; returns the module source with {!key_marker} in place of
    the content key, or [Error reason] for an unsupported shape. *)
let emit ~(prepared : Precompile.t) ~(rt : Precompile.rtarget)
    ~(nid_of_iid : int -> int) () : (string, string) result =
  try
    let view = Precompile.rtarget_view rt in
    let header = Precompile.rtarget_header rt in
    let body_entry = Precompile.rtarget_body_entry rt in
    let in_loop = Precompile.rtarget_in_loop rt in
    let env =
      {
        pools =
          {
            p_bindings = [];
            consts = Hashtbl.create 16;
            builtins = Hashtbl.create 16;
            locs = Hashtbl.create 16;
            next = 0;
          };
        prepared;
        buf = Buffer.create 8192;
        callees = Hashtbl.create 8;
        callee_order = [];
      }
    in
    (* target blocks: every in-loop block except the header (continue_to
       returns before entering it) *)
    let blocks = view.Precompile.vf_blocks in
    let first = ref true in
    Array.iteri
      (fun bi (vb : Precompile.view_block) ->
        if bi <> header && bi < Array.length in_loop && in_loop.(bi) then begin
          line env "  %s tb%d () : unit =" (if !first then "let rec" else "and") bi;
          first := false;
          line env "    %s" step_stmt;
          emit_instrs env ~ind:"    " ~node_of:(Some nid_of_iid) vb;
          emit_target_term env ~ind:"    " ~header ~in_loop vb
        end)
      blocks;
    if !first then raise (Unsupported "target loop has no body blocks");
    (* nested callees, discovered while emitting target blocks and each
       other; the worklist grows through resolve_callee *)
    let emitted = Hashtbl.create 8 in
    let rec drain () =
      let todo =
        List.rev
          (List.filter (fun n -> not (Hashtbl.mem emitted n)) env.callee_order)
      in
      match todo with
      | [] -> ()
      | names ->
          List.iter
            (fun name ->
              Hashtbl.replace emitted name ();
              let c = Hashtbl.find env.callees name in
              let v = c.cl_view in
              line env "  and %s (regs : V.t array) : V.t = %sb%d regs" c.cl_fn c.cl_fn
                v.Precompile.vf_entry;
              Array.iteri
                (fun bi vb ->
                  line env "  and %sb%d (regs : V.t array) : V.t =" c.cl_fn bi;
                  line env "    %s" step_stmt;
                  emit_instrs env ~ind:"    " ~node_of:None vb;
                  emit_nested_term env ~ind:"    " c vb)
                v.Precompile.vf_blocks)
            names;
          drain ()
    in
    drain ();
    line env "  in";
    line env "  (try tb%d () with e -> flush (); raise e);" body_entry;
    line env "  flush ()";
    (* assemble: header, pools, iter, registration *)
    let out = Buffer.create (Buffer.length env.buf + 2048) in
    Buffer.add_string out
      (Printf.sprintf
         "(* generated by commset codegen (abi v%d): fn=%s header=%d entry=%d *)\n"
         Abi.abi_version view.Precompile.vf_name header body_entry);
    Buffer.add_string out "[@@@warning \"-a\"]\n";
    Buffer.add_string out "module V = Commset_runtime.Value\n";
    Buffer.add_string out "module B = Commset_runtime.Builtins\n";
    Buffer.add_string out "module A = Commset_codegen.Abi\n";
    Buffer.add_string out "module D = Commset_support.Diag\n";
    Buffer.add_string out "module L = Commset_support.Loc\n";
    List.iter
      (fun (n, e) -> Buffer.add_string out (Printf.sprintf "let %s = %s\n" n e))
      (List.rev env.pools.p_bindings);
    Buffer.add_string out "let iter (ctx : A.ctx) (regs : V.t array) : unit =\n";
    Buffer.add_string out "  let gl = ctx.A.cg_globals in\n";
    Buffer.add_string out "  let gld = ctx.A.cg_gdefined in\n";
    Buffer.add_string out "  ignore gl; ignore gld;\n";
    Buffer.add_string out "  let fuel = ref (ctx.A.cg_fuel_left ()) in\n";
    Buffer.add_string out "  let f0 = ref !fuel in\n";
    Buffer.add_string out "  let pc = [| 0.0 |] in\n";
    Buffer.add_string out "  let flush () =\n";
    Buffer.add_string out "    let s = !f0 - !fuel in\n";
    Buffer.add_string out "    if s <> 0 || pc.(0) <> 0.0 then begin\n";
    Buffer.add_string out "      ctx.A.cg_charge ~steps:s ~cost:pc.(0);\n";
    Buffer.add_string out "      f0 := !fuel; pc.(0) <- 0.0\n";
    Buffer.add_string out "    end\n";
    Buffer.add_string out "  in\n";
    Buffer.add_buffer out env.buf;
    Buffer.add_string out
      (Printf.sprintf "let () = A.register ~version:%d ~key:\"%s\" iter\n"
         Abi.abi_version key_marker);
    Ok (Buffer.contents out)
  with Unsupported reason -> Error ("uncompilable body: " ^ reason)
