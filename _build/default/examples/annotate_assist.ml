(** The paper's Figure 5 feedback loop, as a worked example: compile an
    *unannotated* log-compaction tool, let the compiler report the
    loop-carried dependences that inhibit parallelization at source level
    (with annotation hints), apply the suggested COMMSET pragmas, and
    watch the loop become DOALL-able. *)

module P = Commset_pipeline.Pipeline
module R = Commset_runtime
module T = Commset_transforms
module Report = Commset_report

let n_logs = 48

let replace_all s pat repl =
  let plen = String.length pat in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i < String.length s do
    if !i + plen <= String.length s && String.sub s !i plen = pat then begin
      Buffer.add_string buf repl;
      i := !i + plen
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* a small log-compaction tool: digest each log segment, record it in a
   shared index, note statistics *)
let body =
  {|
void main() {
  int nlogs = %NLOGS%;
  for (int i = 0; i < nlogs; i++) {
    int fd = 0;
    %OPEN%
    {
      fd = fopen("logs/seg" + int_to_string(i));
    }
    string data = "";
    %READ%
    {
      data = fread(fd, 8192);
    }
    string digest = md5_hex(data);
    %INDEX%
    {
      vec_push(digest);
    }
    %STATS%
    {
      stat_add(int_to_float(strlen(data)));
    }
    %CLOSE%
    {
      fclose(fd);
    }
  }
  print("compacted " + int_to_string(vec_size()) + " segments");
}
|}

let instantiate ~annotated =
  let b = replace_all body "%NLOGS%" (string_of_int n_logs) in
  let put hole pragma b = replace_all b hole (if annotated then pragma else "") in
  let b = put "%OPEN%" "#pragma commset member IOSET(i), SELF" b in
  let b = put "%READ%" "#pragma commset member IOSET(i), SELF" b in
  let b = put "%INDEX%" "#pragma commset member SELF" b in
  let b = put "%STATS%" "#pragma commset member SELF" b in
  let b = put "%CLOSE%" "#pragma commset member IOSET(i), SELF" b in
  if annotated then
    "#pragma commset decl IOSET group\n#pragma commset predicate IOSET (i1) (i2) (i1 != i2)"
    ^ b
  else b

let setup m =
  let st = ref 5150 in
  let next () =
    st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
    !st
  in
  for i = 0 to n_logs - 1 do
    let contents =
      String.init (2048 + (next () mod 2048)) (fun _ -> Char.chr (33 + (next () mod 90)))
    in
    R.Machine.add_file m (Printf.sprintf "logs/seg%d" i) contents
  done

let () =
  print_endline "=== step 1: compile the unannotated program ===";
  let c0 = P.compile ~name:"log-compact" ~setup (instantiate ~annotated:false) in
  print_endline (Report.Explain.render c0);
  (match P.best c0 ~threads:8 with
  | Some r ->
      Printf.printf "best schedule so far: %s at %.2fx\n" r.P.plan.T.Plan.label r.P.speedup
  | None -> print_endline "no parallel schedule available");

  print_endline "\n=== step 2: apply the suggested COMMSET annotations ===";
  let annotated = instantiate ~annotated:true in
  print_endline annotated;

  print_endline "=== step 3: recompile ===";
  let c1 = P.compile ~name:"log-compact+commset" ~setup annotated in
  print_endline (Report.Explain.render c1);
  List.iter
    (fun (r : P.run) ->
      Printf.printf "  %-40s %5.2fx  %s\n" r.P.plan.T.Plan.label r.P.speedup
        (P.fidelity_to_string r.P.fidelity))
    (Commset_support.Listx.take 3 (P.evaluate c1 ~threads:8))
