(** Rendering of synthesized annotation suggestions ([commsetc suggest]),
    in plain text (ready-to-paste pragma blocks) and as JSON for tooling. *)

module Synth = Commset_synth.Synth
module Diag = Commset_support.Diag

let kind_str = function
  | Commset_lang.Ast.Group_set -> "group"
  | Commset_lang.Ast.Self_set -> "self"

let anchor_str = function
  | Synth.Ablock l -> Printf.sprintf "line %d (existing block)" l
  | Synth.Awrap l -> Printf.sprintf "line %d (wrap statement)" l
  | Synth.Adecl_split l -> Printf.sprintf "line %d (split declaration)" l
  | Synth.Afun f -> Printf.sprintf "function '%s'" f

let render (r : Synth.result) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s: predicted speedup at 8 threads: stripped %.2fx, with suggestions %.2fx%s\n"
       r.Synth.r_name r.Synth.r_baseline r.Synth.r_bundle
       (match r.Synth.r_hand with
       | Some h -> Printf.sprintf ", hand-annotated %.2fx" h
       | None -> ""));
  (match r.Synth.r_suggestions with
  | [] -> Buffer.add_string buf "no suggestions: no candidate survived the verifier\n"
  | l ->
      Buffer.add_string buf (Printf.sprintf "%d suggestion(s):\n" (List.length l));
      List.iteri
        (fun i (s : Synth.suggestion) ->
          Buffer.add_string buf
            (Printf.sprintf "\n[%d] %s%s%s\n" (i + 1)
               (match s.Synth.sg_set with
               | Some n -> Printf.sprintf "%s commset %s" (kind_str s.Synth.sg_kind) n
               | None -> "self-commuting member")
               (match s.Synth.sg_speedup with
               | Some sp -> Printf.sprintf " — predicted %.2fx alone" sp
               | None -> "")
               (if s.Synth.sg_recommended then " — recommended" else " — not recommended"));
          List.iter
            (fun m ->
              Buffer.add_string buf
                (Printf.sprintf "    %s: %s\n" (anchor_str m.Synth.m_anchor) m.Synth.m_desc))
            s.Synth.sg_members;
          List.iter
            (fun p -> Buffer.add_string buf (Printf.sprintf "      %s\n" p))
            s.Synth.sg_pragmas)
        l);
  if r.Synth.r_diags <> [] then (
    Buffer.add_string buf "\nnotes:\n";
    List.iter
      (fun d -> Buffer.add_string buf (Printf.sprintf "  %s\n" (Diag.to_string d)))
      r.Synth.r_diags);
  Buffer.contents buf

(* ---- JSON ----------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)
let jopt_str = function Some s -> jstr s | None -> "null"
let jfloat f = Printf.sprintf "%.4f" f
let jopt_float = function Some f -> jfloat f | None -> "null"
let jlist l = Printf.sprintf "[%s]" (String.concat "," l)

let json_of_anchor = function
  | Synth.Ablock l -> Printf.sprintf "{\"kind\":\"block\",\"line\":%d}" l
  | Synth.Awrap l -> Printf.sprintf "{\"kind\":\"wrap\",\"line\":%d}" l
  | Synth.Adecl_split l -> Printf.sprintf "{\"kind\":\"decl-split\",\"line\":%d}" l
  | Synth.Afun f -> Printf.sprintf "{\"kind\":\"function\",\"function\":%s}" (jstr f)

let json_of_member (m : Synth.member) =
  Printf.sprintf "{\"anchor\":%s,\"desc\":%s,\"refs\":%s}"
    (json_of_anchor m.Synth.m_anchor)
    (jstr m.Synth.m_desc)
    (jlist (List.map jstr m.Synth.m_refs))

let json_of_suggestion (s : Synth.suggestion) =
  Printf.sprintf
    "{\"set\":%s,\"kind\":%s,\"predicate\":%s,\"speedup\":%s,\"recommended\":%b,\"members\":%s,\"pragmas\":%s}"
    (jopt_str s.Synth.sg_set)
    (jstr (kind_str s.Synth.sg_kind))
    (jopt_str s.Synth.sg_predicate)
    (jopt_float s.Synth.sg_speedup)
    s.Synth.sg_recommended
    (jlist (List.map json_of_member s.Synth.sg_members))
    (jlist (List.map jstr s.Synth.sg_pragmas))

let json_of_diag (d : Diag.diagnostic) =
  Printf.sprintf "{\"severity\":%s,\"code\":%s,\"message\":%s}"
    (jstr
       (match d.Diag.severity with
       | Diag.Error_sev -> "error"
       | Diag.Warning_sev -> "warning"))
    (jopt_str d.Diag.code)
    (jstr d.Diag.message)

let render_json (r : Synth.result) : string =
  Printf.sprintf
    "{\"name\":%s,\"speedup\":{\"baseline\":%s,\"bundle\":%s,\"hand\":%s},\"suggestions\":%s,\"diagnostics\":%s,\"source\":%s}"
    (jstr r.Synth.r_name)
    (jfloat r.Synth.r_baseline)
    (jfloat r.Synth.r_bundle)
    (jopt_float r.Synth.r_hand)
    (jlist (List.map json_of_suggestion r.Synth.r_suggestions))
    (jlist (List.map json_of_diag r.Synth.r_diags))
    (jstr r.Synth.r_source)
