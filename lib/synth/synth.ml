(** Commutativity-condition synthesis (ROADMAP item 2): invert the
    annotation verifier into an annotation suggester.

    The pass runs in six stages:

    + {b Strip}: every COMMSET pragma is removed ({!Strip}); the result
      is re-printed and re-parsed so all further source locations are in
      the stripped program's coordinates.
    + {b Enumerate}: candidate members are collected from the hottest
      loop — existing bare [{ }] blocks (the structure hand annotations
      decorate survives stripping), wraps of effectful leaf statements
      (calls into stateful builtins or state-writing user functions,
      array stores, global assignments), [if] statements with effectful
      conditions wrapped whole, and interface-level candidates for user
      functions called from the loop. Candidates containing [return] or
      an escaping [break]/[continue] are discarded up front (they could
      never satisfy the CS010 region rules).
    + {b Probe}: one instrumented compile in which every candidate joins
      an unpredicated probe commset ([__probe_r] for regions,
      [__probe_f] for functions), its own singleton marker set
      ([__cand]{i k}, mapping lowered members back to candidates), and
      SELF. The static differencing engine then yields a *difference
      residue* per candidate pair per iteration fact.
    + {b Synthesize}: per pair, the weakest predicate in the lattice
      {[ true  ⊑  x1 != x2  ⊑  (unsatisfiable) ]} under which the
      residue vanishes: [true] when both interleaving orders agree (or
      disagree benignly) even for instances of the same iteration, the
      induction-variable inequality when only distinct iterations
      commute, nothing otherwise. Mutually commuting candidates are
      assembled greedily into group sets; every member also gets self
      coverage (SELF, or a predicated self set when only distinct
      iterations commute with themselves).
    + {b Gate}: the assembled bundle is re-compiled with the full
      verifier (static differencing plus dynamic replay). Any pair that
      is not [Proved] causes the offending candidates to be dropped and
      the bundle re-assembled — suggestions are Proved-or-dropped, never
      emitted as Unknown or Refuted.
    + {b Rank}: the verified bundle (and optionally each suggestion
      alone) is run through the simulator at eight threads; suggestions
      are recommended only when the bundle improves on the stripped
      baseline. *)

module Ast = Commset_lang.Ast
module Parser = Commset_lang.Parser
module Pretty = Commset_lang.Pretty
module Strip = Commset_lang.Strip
module Ir = Commset_ir.Ir
module A = Commset_analysis
module S = A.Symexec
module Effects = A.Effects
module Metadata = Commset_core.Metadata
module V = Commset_verify
module P = Commset_pipeline.Pipeline
module Diag = Commset_support.Diag
module Loc = Commset_support.Loc

let src = Logs.Src.create "commset.synth" ~doc:"commutativity-condition synthesis"

module Log = (val Logs.src_log src : Logs.LOG)

type anchor =
  | Ablock of int
  | Awrap of int
  | Adecl_split of int
  | Afun of string

type member = { m_anchor : anchor; m_desc : string; m_refs : string list }

type suggestion = {
  sg_set : string option;
  sg_kind : Ast.set_kind;
  sg_predicate : string option;
  sg_members : member list;
  sg_pragmas : string list;
  sg_speedup : float option;
  sg_recommended : bool;
}

type result = {
  r_name : string;
  r_baseline : float;
  r_bundle : float;
  r_hand : float option;
  r_suggestions : suggestion list;
  r_diags : Diag.diagnostic list;
  r_source : string;
  r_stripped : string;
}

(* ---- candidates ----------------------------------------------------- *)

type ckind = Kblock | Kwrap | Kdecl_split | Kfn of string

type cand = {
  cid : int;
  ckind : ckind;
  coff : int;  (** start offset of the anchored statement; 0 for [Kfn] *)
  cline : int;
  cdesc : string;
  ccalls : string list;  (** effectful user functions the body calls *)
}

let is_region c = match c.ckind with Kfn _ -> false | _ -> true

let anchor_of c =
  match c.ckind with
  | Kblock -> Ablock c.cline
  | Kwrap -> Awrap c.cline
  | Kdecl_split -> Adecl_split c.cline
  | Kfn f -> Afun f

(* every call name mentioned under a statement (or just its condition,
   for if/while — exactly what executes unconditionally) *)
let calls_of_stmt s =
  let acc = ref [] in
  Ast.iter_exprs_stmt
    (fun e -> match e.Ast.edesc with Ast.Call (n, _) -> acc := n :: !acc | _ -> ())
    s;
  List.rev !acc

let calls_of_expr e =
  let acc = ref [] in
  Ast.iter_exprs_expr
    (fun e -> match e.Ast.edesc with Ast.Call (n, _) -> acc := n :: !acc | _ -> ())
    e;
  List.rev !acc

let calls_of_block b =
  let acc = ref [] in
  Ast.iter_stmts (fun s -> acc := !acc @ calls_of_stmt s) b;
  !acc

let builtin_writes name =
  match Commset_runtime.Builtins.lookup_spec name with
  | Some sp -> sp.Effects.bs_writes <> [] || sp.Effects.bs_writes_arrays <> []
  | None -> false

let user_fn_writes (c0 : P.t) name =
  match Ir.find_func c0.P.prog name with
  | None -> false
  | Some f ->
      let instrs = List.concat_map (fun b -> b.Ir.instrs) (Ir.blocks_in_order f) in
      let rw = Effects.instrs_rw c0.P.effects ~fname:name instrs in
      not (Effects.LocSet.is_empty rw.Effects.writes)

(* can a region wrapped around this statement violate the CS010 control
   rules? [in_loop] tracks loops nested inside the candidate itself *)
let rec stmt_escapes in_loop s =
  match s.Ast.sdesc with
  | Ast.Return _ -> true
  | Ast.Break | Ast.Continue -> not in_loop
  | Ast.If (_, b1, b2) ->
      block_escapes in_loop b1
      || Option.fold ~none:false ~some:(block_escapes in_loop) b2
  | Ast.While (_, b) | Ast.For (_, _, _, b) -> block_escapes true b
  | Ast.Block b -> block_escapes in_loop b
  | _ -> false

and block_escapes in_loop b = List.exists (stmt_escapes in_loop) b.Ast.stmts

let scalar = function
  | Ast.Tint | Ast.Tfloat | Ast.Tbool | Ast.Tstring -> true
  | _ -> false

(* ---- locating the hot loop in the stripped AST ---------------------- *)

let ir_loop_lines (c0 : P.t) =
  let f = c0.P.target.P.func in
  List.fold_left
    (fun (lo, hi) label ->
      let b = Ir.block f label in
      List.fold_left
        (fun (lo, hi) (i : Ir.instr) ->
          if Loc.is_dummy i.Ir.iloc then (lo, hi)
          else (min lo (Loc.line i.Ir.iloc), max hi i.Ir.iloc.Loc.end_pos.Loc.line))
        (lo, hi) b.Ir.instrs)
    (max_int, min_int)
    c0.P.target.P.loop.A.Loops.body

(* innermost loop statement of [astf] whose source span covers the IR
   loop's lines, together with its body and induction-variable name *)
let hot_loop_stmt (astf : Ast.fundecl) (c0 : P.t) =
  let lmin, lmax = ir_loop_lines c0 in
  let loops = ref [] in
  let rec scan s =
    (match s.Ast.sdesc with
    | Ast.While (_, b) -> loops := (s, b, None) :: !loops
    | Ast.For (init, _, _, b) ->
        let iv =
          match init with
          | Some { Ast.sdesc = Ast.Decl (_, x, _); _ }
          | Some { Ast.sdesc = Ast.Assign (x, _); _ } ->
              Some x
          | _ -> None
        in
        loops := (s, b, iv) :: !loops
    | _ -> ());
    match s.Ast.sdesc with
    | Ast.If (_, b1, b2) ->
        List.iter scan b1.Ast.stmts;
        Option.iter (fun b -> List.iter scan b.Ast.stmts) b2
    | Ast.While (_, b) | Ast.For (_, _, _, b) | Ast.Block b ->
        List.iter scan b.Ast.stmts
    | _ -> ()
  in
  List.iter scan astf.Ast.body.Ast.stmts;
  let span (s, _, _) = (Loc.line s.Ast.sloc, s.Ast.sloc.Loc.end_pos.Loc.line) in
  let covering =
    List.filter (fun l -> fst (span l) <= lmin && snd (span l) >= lmax) !loops
  in
  let width l = snd (span l) - fst (span l) in
  let best pool =
    List.fold_left
      (fun acc l ->
        match acc with Some b when width b <= width l -> acc | _ -> Some l)
      None pool
  in
  match best (if covering <> [] then covering else !loops) with
  | Some l -> l
  | None ->
      Diag.error ~code:"CS015" "cannot locate the hot loop of '%s' in the source"
        astf.Ast.fname

(* ---- enumeration ---------------------------------------------------- *)

let enumerate (c0 : P.t) (ast : Ast.program) =
  let fname = c0.P.target.P.func.Ir.fname in
  let astf =
    match Ast.find_function ast fname with
    | Some f -> f
    | None -> Diag.error ~code:"CS015" "hot function '%s' not found in source" fname
  in
  let _, loop_body, iv = hot_loop_stmt astf c0 in
  let globals = List.map (fun (_, g, _, _) -> g) (Ast.globals ast) in
  let effectful_call n = user_fn_writes c0 n || builtin_writes n in
  let effectful_calls names = List.filter effectful_call names in
  let cands = ref [] and n = ref 0 in
  let add ckind coff cline cdesc ccalls =
    cands := { cid = !n; ckind; coff; cline; cdesc; ccalls } :: !cands;
    incr n
  in
  let user_calls names =
    List.filter (fun c -> Ir.find_func c0.P.prog c <> None && user_fn_writes c0 c) names
  in
  let off s = s.Ast.sloc.Loc.start_pos.Loc.offset in
  let line s = Loc.line s.Ast.sloc in
  let describe_calls calls =
    match calls with [] -> "..." | l -> String.concat ", " (List.sort_uniq compare l)
  in
  let rec walk_block b = List.iter walk_stmt b.Ast.stmts
  and walk_stmt s =
    match s.Ast.sdesc with
    | Ast.Block b ->
        if block_escapes false b then walk_block b
        else
          let calls = effectful_calls (calls_of_block b) in
          add Kblock (off s) (line s)
            (Printf.sprintf "{ %s }" (describe_calls calls))
            (user_calls calls)
    | Ast.If (c, b1, b2) ->
        let cond_calls = effectful_calls (calls_of_expr c) in
        if cond_calls <> [] && not (stmt_escapes false s) then
          add Kwrap (off s) (line s)
            (Printf.sprintf "if (%s ...)" (describe_calls cond_calls))
            (user_calls cond_calls)
        else (
          walk_block b1;
          Option.iter walk_block b2)
    | Ast.While (_, b) | Ast.For (_, _, _, b) -> walk_block b
    | Ast.Decl (ty, x, Some e) when scalar ty && effectful_calls (calls_of_expr e) <> []
      ->
        let calls = effectful_calls (calls_of_expr e) in
        add (Kdecl_split : ckind) (off s) (line s)
          (Printf.sprintf "%s = %s(...)" x (describe_calls calls))
          (user_calls calls)
    | Ast.Assign (x, e) ->
        let calls = effectful_calls (calls_of_expr e) in
        if calls <> [] then
          add Kwrap (off s) (line s)
            (Printf.sprintf "%s = %s(...)" x (describe_calls calls))
            (user_calls calls)
        else if List.mem x globals then
          add Kwrap (off s) (line s) (Printf.sprintf "%s = ..." x) []
    | Ast.Expr e ->
        let calls = effectful_calls (calls_of_expr e) in
        if calls <> [] then
          add Kwrap (off s) (line s)
            (Printf.sprintf "%s(...)" (describe_calls calls))
            (user_calls calls)
    | Ast.Store _ -> add Kwrap (off s) (line s) "array update" []
    | _ -> ()
  in
  walk_block loop_body;
  (* interface-level candidates: user functions the loop calls anywhere *)
  let called = ref [] in
  Ast.iter_stmts (fun s -> called := !called @ calls_of_stmt s) loop_body;
  List.iter
    (fun f ->
      if f <> fname then add (Kfn f) 0 0 (Printf.sprintf "function '%s'" f) [])
    (List.sort_uniq compare (user_calls !called));
  (List.rev !cands, iv)

(* ---- AST surgery ---------------------------------------------------- *)

let mk_expr d = { Ast.edesc = d; eloc = Loc.dummy; ety = None }
let mk_stmt d = { Ast.sdesc = d; sloc = Loc.dummy }
let mk_ref ?(actuals = []) name = { Ast.set_name = name; Ast.actuals }
let mk_member_pragma refs = { Ast.pdesc = Ast.P_member refs; ploc = Loc.dummy }

let default_init = function
  | Ast.Tint -> Some (mk_expr (Ast.Int_lit 0))
  | Ast.Tfloat -> Some (mk_expr (Ast.Float_lit 0.))
  | Ast.Tbool -> Some (mk_expr (Ast.Bool_lit false))
  | Ast.Tstring -> Some (mk_expr (Ast.String_lit ""))
  | _ -> None

let block_ids = ref 1_000_000

let mk_block stmts refs =
  incr block_ids;
  {
    Ast.stmts;
    block_id = !block_ids;
    annots = [ mk_member_pragma refs ];
    bloc = Loc.dummy;
  }

(* Install member references into the stripped AST: [region_refs] maps a
   statement start offset to the references its candidate receives,
   [fn_refs] maps a function name to interface references, [globals] are
   prepended decl/predicate pragmas. *)
let apply (ast : Ast.program) ~fname ~(globals : Ast.pragma list)
    ~(region_refs : (int * Ast.commset_ref list) list)
    ~(fn_refs : (string * Ast.commset_ref list) list) : Ast.program =
  let decide s =
    if Loc.is_dummy s.Ast.sloc then None
    else List.assoc_opt s.Ast.sloc.Loc.start_pos.Loc.offset region_refs
  in
  let rec rw_block b = { b with Ast.stmts = List.concat_map rw_stmt b.Ast.stmts }
  and rw_stmt s =
    match decide s with
    | Some refs -> (
        match s.Ast.sdesc with
        | Ast.Block b ->
            [
              {
                s with
                Ast.sdesc =
                  Ast.Block { b with Ast.annots = b.Ast.annots @ [ mk_member_pragma refs ] };
              };
            ]
        | Ast.Decl (ty, x, Some e) ->
            [
              { s with Ast.sdesc = Ast.Decl (ty, x, default_init ty) };
              mk_stmt (Ast.Block (mk_block [ mk_stmt (Ast.Assign (x, e)) ] refs));
            ]
        | _ -> [ mk_stmt (Ast.Block (mk_block [ s ] refs)) ])
    | None -> [ { s with Ast.sdesc = rw_desc s.Ast.sdesc } ]
  and rw_desc = function
    | Ast.If (c, b1, b2) -> Ast.If (c, rw_block b1, Option.map rw_block b2)
    | Ast.While (c, b) -> Ast.While (c, rw_block b)
    | Ast.For (i, c, st, b) -> Ast.For (i, c, st, rw_block b)
    | Ast.Block b -> Ast.Block (rw_block b)
    | d -> d
  in
  let decls =
    List.map
      (function
        | Ast.Gfun f ->
            let fannots =
              match List.assoc_opt f.Ast.fname fn_refs with
              | Some refs -> f.Ast.fannots @ [ mk_member_pragma refs ]
              | None -> f.Ast.fannots
            in
            let body = if f.Ast.fname = fname then rw_block f.Ast.body else f.Ast.body in
            Ast.Gfun { f with Ast.fannots; body }
        | d -> d)
      ast.Ast.decls
  in
  { Ast.global_pragmas = ast.Ast.global_pragmas @ globals; decls }

let decl_pragma name kind =
  { Ast.pdesc = Ast.P_decl { set_name = name; kind }; ploc = Loc.dummy }

let neq_pragma name =
  {
    Ast.pdesc =
      Ast.P_predicate
        {
          set_name = name;
          params1 = [ "x1" ];
          params2 = [ "x2" ];
          body = mk_expr (Ast.Binop (Ast.Neq, mk_expr (Ast.Var "x1"), mk_expr (Ast.Var "x2")));
        };
    ploc = Loc.dummy;
  }

(* ---- probing -------------------------------------------------------- *)

type pairinfo = { ok_same : bool; ok_distinct : bool; why : string }

let clean_of_pair (p : V.Verdict.pair) : pairinfo =
  match p.V.Verdict.pres with
  | [] ->
      let ok = match p.V.Verdict.pverdict with V.Verdict.Proved _ -> true | _ -> false in
      { ok_same = ok; ok_distinct = ok; why = V.Verdict.to_string p.V.Verdict.pverdict }
  | pres ->
      let clean f =
        match List.assoc_opt f pres with
        | Some r -> V.Residue.clean r
        | None -> true
      in
      let why =
        match
          List.find_opt (fun (_, r) -> not (V.Residue.clean r)) pres
        with
        | Some (_, r) -> V.Residue.describe r
        | None -> "commutes"
      in
      { ok_same = clean S.Same_iteration; ok_distinct = clean S.Distinct_iterations; why }

type probe = {
  selfs : (int, pairinfo) Hashtbl.t;  (** cid -> self-pair residue info *)
  pairs : (int * int, pairinfo) Hashtbl.t;  (** cid pair (lo, hi) -> info *)
}

let pair_info probe a b =
  Hashtbl.find_opt probe.pairs (min a b, max a b)

let marker k = "__cand" ^ string_of_int k

let probe_refs c =
  let probe_set = if is_region c then "__probe_r" else "__probe_f" in
  [ mk_ref probe_set; mk_ref (marker c.cid); mk_ref "SELF" ]

let run_probe ~name ~setup (ast : Ast.program) ~fname (cands : cand list) : probe =
  let globals =
    decl_pragma "__probe_r" Ast.Group_set
    :: decl_pragma "__probe_f" Ast.Group_set
    :: List.map (fun c -> decl_pragma (marker c.cid) Ast.Group_set) cands
  in
  let region_refs =
    List.filter_map (fun c -> if is_region c then Some (c.coff, probe_refs c) else None) cands
  in
  let fn_refs =
    List.filter_map
      (fun c -> match c.ckind with Kfn f -> Some (f, probe_refs c) | _ -> None)
      cands
  in
  let psrc = Pretty.program_to_string (apply ast ~fname ~globals ~region_refs ~fn_refs) in
  let cp = P.compile ~name:(name ^ ".probe") ~setup ~verify:false psrc in
  let report =
    V.Verify.run ~dynamic:false ~prepared:cp.P.prepared ~md:cp.P.md
      ~target_fname:cp.P.target.P.func.Ir.fname ~loop:cp.P.target.P.loop
      ~induction:cp.P.target.P.induction ~setup ()
  in
  (* marker sets recover the candidate each lowered member came from *)
  let of_member = Hashtbl.create 32 in
  List.iter
    (fun c ->
      List.iter
        (fun m -> Hashtbl.replace of_member m c.cid)
        (Metadata.members_of cp.P.md (marker c.cid)))
    cands;
  let probe = { selfs = Hashtbl.create 32; pairs = Hashtbl.create 64 } in
  List.iter
    (fun (p : V.Verdict.pair) ->
      match
        (Hashtbl.find_opt of_member p.V.Verdict.pm1, Hashtbl.find_opt of_member p.V.Verdict.pm2)
      with
      | Some a, Some b ->
          let info = clean_of_pair p in
          Log.debug (fun m ->
              m "probe %s: cand%d ~ cand%d same=%b distinct=%b (%s)" p.V.Verdict.pset a
                b info.ok_same info.ok_distinct info.why);
          if p.V.Verdict.pself then Hashtbl.replace probe.selfs a info
          else if a <> b then Hashtbl.replace probe.pairs (min a b, max a b) info
      | _ -> ())
    report.V.Verdict.rpairs;
  probe

(* ---- assembly ------------------------------------------------------- *)

(** One synthesized set (or a lone SELF membership): the unit rendered
    as a suggestion. *)
type sgroup = {
  g_set : string option;
  g_kind : Ast.set_kind;
  g_pred : bool;  (** predicated on [x1 != x2] over the loop IV *)
  g_members : (cand * (string * string list) list) list;
      (** candidate, its references as (set, actuals) *)
  g_extra_decls : (string * Ast.set_kind * bool) list;
      (** per-member predicated self sets this group introduced *)
}

type mode = Iface_first | Region_first

(* which candidates a mode considers *)
let select mode probe (cands : cand list) =
  let viable c =
    match Hashtbl.find_opt probe.selfs c.cid with
    | Some i -> i.ok_distinct
    | None -> false
  in
  let viable_fn name =
    List.exists (fun c -> c.ckind = Kfn name && viable c) cands
  in
  List.filter
    (fun c ->
      viable c
      &&
      match mode with
      | Region_first -> is_region c
      | Iface_first -> (
          match c.ckind with
          | Kfn _ | Kblock -> true
          | Kwrap | Kdecl_split ->
              (* leaf wraps exist to cover calls; skip the wrap when an
                 interface-level candidate covers every call it makes *)
              not (c.ccalls <> [] && List.for_all viable_fn c.ccalls)))
    cands

let assemble mode probe (cands : cand list) ~iv : sgroup list =
  let selected = select mode probe cands in
  (* greedy partition into mutually commuting, kind-homogeneous groups *)
  let groups =
    List.fold_left
      (fun groups c ->
        let rec place = function
          | [] -> [ [ c ] ]
          | g :: rest ->
              if
                is_region (List.hd g) = is_region c
                && List.for_all
                     (fun m ->
                       match pair_info probe m.cid c.cid with
                       | Some i -> i.ok_distinct && (iv <> None || i.ok_same)
                       | None -> false)
                     g
              then (g @ [ c ]) :: rest
              else g :: place rest
        in
        place groups)
      [] selected
  in
  let gset = ref (-1) and sset = ref (-1) in
  let self_refs c extra =
    match Hashtbl.find_opt probe.selfs c.cid with
    | Some i when i.ok_same && i.ok_distinct -> Some ("SELF", [])
    | Some i when i.ok_distinct && iv <> None ->
        incr sset;
        let n = "SSET" ^ string_of_int !sset in
        extra := (n, Ast.Self_set, true) :: !extra;
        Some (n, [ Option.get iv ])
    | _ -> None
  in
  List.filter_map
    (fun g ->
      let extra = ref [] in
      match g with
      | [] -> None
      | [ c ] -> (
          (* a lone candidate: self coverage only *)
          match self_refs c extra with
          | Some r ->
              Some
                {
                  g_set = None;
                  g_kind = Ast.Self_set;
                  g_pred = false;
                  g_members = [ (c, [ r ]) ];
                  g_extra_decls = List.rev !extra;
                }
          | None -> None)
      | _ ->
          let all_same =
            let ok a b =
              match pair_info probe a.cid b.cid with
              | Some i -> i.ok_same
              | None -> false
            in
            let rec go = function
              | [] -> true
              | c :: rest -> List.for_all (ok c) rest && go rest
            in
            go g
          in
          (* weakest predicate making every pair's residue vanish *)
          let pred = not all_same in
          if pred && iv = None then None
          else (
            incr gset;
            let name = "GSET" ^ string_of_int !gset in
            let actuals = if pred then [ Option.get iv ] else [] in
            let members =
              List.map
                (fun c ->
                  let refs =
                    (name, actuals)
                    :: (match self_refs c extra with Some r -> [ r ] | None -> [])
                  in
                  (c, refs))
                g
            in
            Some
              {
                g_set = Some name;
                g_kind = Ast.Group_set;
                g_pred = pred;
                g_members = members;
                g_extra_decls = List.rev !extra;
              }))
    groups

(* ---- rendering an assembly into an AST ------------------------------ *)

let ref_of_pair (set, actuals) =
  mk_ref ~actuals:(List.map (fun v -> mk_expr (Ast.Var v)) actuals) set

let group_globals (groups : sgroup list) =
  List.concat_map
    (fun g ->
      (match g.g_set with
      | Some n ->
          decl_pragma n g.g_kind :: (if g.g_pred then [ neq_pragma n ] else [])
      | None -> [])
      @ List.concat_map
          (fun (n, k, pred) ->
            decl_pragma n k :: (if pred then [ neq_pragma n ] else []))
          g.g_extra_decls)
    groups

let bundle_ast ?(markers = false) (ast : Ast.program) ~fname (groups : sgroup list) =
  let globals =
    group_globals groups
    @
    if markers then
      List.concat_map
        (fun g -> List.map (fun (c, _) -> decl_pragma (marker c.cid) Ast.Group_set) g.g_members)
        groups
    else []
  in
  let refs_of c refs =
    List.map ref_of_pair refs @ if markers then [ mk_ref (marker c.cid) ] else []
  in
  let region_refs =
    List.concat_map
      (fun g ->
        List.filter_map
          (fun (c, refs) -> if is_region c then Some (c.coff, refs_of c refs) else None)
          g.g_members)
      groups
  in
  let fn_refs =
    List.concat_map
      (fun g ->
        List.filter_map
          (fun (c, refs) ->
            match c.ckind with Kfn f -> Some (f, refs_of c refs) | _ -> None)
          g.g_members)
      groups
  in
  apply ast ~fname ~globals ~region_refs ~fn_refs

(* ---- the Proved-or-dropped gate ------------------------------------- *)

(* Re-verify the assembled bundle with the full verifier; candidates in
   any non-Proved pair are dropped and the bundle re-assembled. Returns
   the verified compile and the surviving groups. *)
let gate ~name ~setup ~fname (ast : Ast.program) mode probe ~iv (cands : cand list) :
    (P.t option * sgroup list * cand list) =
  let rec go cands round =
    let groups = assemble mode probe cands ~iv in
    if groups = [] then (None, [], cands)
    else
      let bsrc = Pretty.program_to_string (bundle_ast ~markers:true ast ~fname groups) in
      let cb = P.compile ~name:(name ^ ".gate") ~setup ~verify:true bsrc in
      let report =
        match cb.P.verification with
        | Some r -> r
        | None -> { V.Verdict.rpairs = [] }
      in
      let of_member = Hashtbl.create 32 in
      List.iter
        (fun (c : cand) ->
          List.iter
            (fun m -> Hashtbl.replace of_member m c.cid)
            (Metadata.members_of cb.P.md (marker c.cid)))
        cands;
      let offenders =
        List.concat_map
          (fun (p : V.Verdict.pair) ->
            match p.V.Verdict.pverdict with
            | V.Verdict.Proved _ -> []
            | _ ->
                List.filter_map
                  (fun m -> Hashtbl.find_opt of_member m)
                  [ p.V.Verdict.pm1; p.V.Verdict.pm2 ])
          report.V.Verdict.rpairs
        |> List.sort_uniq compare
      in
      if offenders = [] then (Some cb, groups, cands)
      else if round >= 3 then (None, [], cands)
      else (
        Log.info (fun m ->
            m "gate round %d: dropping %d unprovable candidate(s)" round
              (List.length offenders));
        go (List.filter (fun c -> not (List.mem c.cid offenders)) cands) (round + 1))
  in
  go cands 0

(* ---- speedups ------------------------------------------------------- *)

let best_speedup (c : P.t) =
  match P.best c ~threads:8 with Some r -> r.P.speedup | None -> 1.0

(* ---- suggestions ---------------------------------------------------- *)

let refs_strings refs =
  List.map
    (fun (set, actuals) ->
      match actuals with
      | [] -> set
      | l -> Printf.sprintf "%s(%s)" set (String.concat ", " l))
    refs

let member_of (c, refs) =
  {
    m_anchor = anchor_of c;
    m_desc = c.cdesc;
    m_refs = refs_strings refs;
  }

let pragma_lines (g : sgroup) =
  let decls =
    (match g.g_set with
    | Some n ->
        Printf.sprintf "#pragma commset decl %s %s" n
          (match g.g_kind with Ast.Self_set -> "self" | Ast.Group_set -> "group")
        :: (if g.g_pred then
              [ Printf.sprintf "#pragma commset predicate %s (x1) (x2) (x1 != x2)" n ]
            else [])
    | None -> [])
    @ List.concat_map
        (fun (n, k, pred) ->
          Printf.sprintf "#pragma commset decl %s %s" n
            (match k with Ast.Self_set -> "self" | Ast.Group_set -> "group")
          :: (if pred then
                [ Printf.sprintf "#pragma commset predicate %s (x1) (x2) (x1 != x2)" n ]
              else []))
        g.g_extra_decls
  in
  let members =
    List.map
      (fun (c, refs) ->
        let where =
          match c.ckind with
          | Kfn f -> Printf.sprintf "on function '%s'" f
          | _ -> Printf.sprintf "line %d" c.cline
        in
        Printf.sprintf "%s: #pragma commset member %s" where
          (String.concat ", " (refs_strings refs)))
      g.g_members
  in
  decls @ members

let suggestion_of ~speedup ~recommended (g : sgroup) =
  {
    sg_set = g.g_set;
    sg_kind = g.g_kind;
    sg_predicate = (if g.g_pred then Some "x1 != x2" else None);
    sg_members = List.map member_of g.g_members;
    sg_pragmas = pragma_lines g;
    sg_speedup = speedup;
    sg_recommended = recommended;
  }

(* ---- diagnostics ---------------------------------------------------- *)

let synth_diags probe (cands : cand list) (survivors : cand list) ~baseline ~bundle
    ~hand =
  let viable c =
    match Hashtbl.find_opt probe.selfs c.cid with
    | Some i -> i.ok_distinct
    | None -> false
  in
  let alive c = List.exists (fun s -> s.cid = c.cid) survivors in
  let cs015 =
    (* pairs of independently sound candidates no predicate in the
       lattice can reconcile *)
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if a.cid >= b.cid || not (viable a && viable b) then None
            else
              match pair_info probe a.cid b.cid with
              | Some i when (not i.ok_same) && not i.ok_distinct ->
                  Some
                    (Diag.diagnostic ~code:"CS015" Diag.Warning_sev Loc.dummy
                       (Printf.sprintf
                          "no sound commutativity condition found for %s ~ %s: %s"
                          a.cdesc b.cdesc i.why))
              | _ -> None)
          cands)
      cands
  in
  let cs015_self =
    List.filter_map
      (fun c ->
        match Hashtbl.find_opt probe.selfs c.cid with
        | Some i when not i.ok_distinct ->
            Some
              (Diag.diagnostic ~code:"CS015" Diag.Warning_sev Loc.dummy
                 (Printf.sprintf
                    "no sound commutativity condition found for %s ~ itself: %s"
                    c.cdesc i.why))
        | _ -> None)
      (List.filter (fun c -> not (alive c)) cands)
  in
  let cs016 =
    match hand with
    | Some h when bundle < h -. 0.25 ->
        [
          Diag.diagnostic ~code:"CS016" Diag.Warning_sev Loc.dummy
            (Printf.sprintf
               "synthesized annotations are weaker than the hand-written ones \
                (predicted %.2fx vs %.2fx at 8 threads)"
               bundle h);
        ]
    | _ -> []
  in
  ignore baseline;
  cs015 @ cs015_self @ cs016

(* ---- entry point ---------------------------------------------------- *)

let suggest ?(name = "input") ?(setup = fun _ -> ()) ?(rank_individual = true)
    ?(min_speedup = 0.) (source : string) : result =
  let ast0 = Parser.parse_program ~file:name source in
  let had_pragmas = Strip.count_pragmas ast0 > 0 in
  let stripped_src = Pretty.program_to_string (Strip.strip_program ast0) in
  (* reparse so candidate locations live in the stripped coordinates *)
  let ast = Parser.parse_program ~file:name stripped_src in
  let c0 = P.compile ~name:(name ^ ".stripped") ~setup ~verify:false stripped_src in
  let baseline = best_speedup c0 in
  let hand =
    if had_pragmas then
      Some (best_speedup (P.compile ~name ~setup ~verify:false source))
    else None
  in
  let fname = c0.P.target.P.func.Ir.fname in
  let cands, iv = enumerate c0 ast in
  Log.info (fun m ->
      m "%s: %d candidate(s) in the hot loop of '%s'%s" name (List.length cands) fname
        (match iv with Some v -> Printf.sprintf ", induction variable '%s'" v | None -> ""));
  let probe = run_probe ~name ~setup ast ~fname cands in
  (* assemble, gate and score both coverage policies; keep the better *)
  let attempt mode = gate ~name ~setup ~fname ast mode probe ~iv cands in
  let score (cb, groups, _) =
    match (cb, groups) with Some cb, _ :: _ -> best_speedup cb | _ -> baseline
  in
  let pick =
    let ra = attempt Region_first in
    let sa = score ra in
    let same_selection =
      let ids m = List.map (fun c -> c.cid) (select m probe cands) in
      ids Region_first = ids Iface_first
    in
    if same_selection then (ra, sa)
    else
      let ia = attempt Iface_first in
      let si = score ia in
      if si > sa +. 1e-9 then (ia, si) else (ra, sa)
  in
  let (cb, groups, survivors), bundle = pick in
  let survivors =
    List.filter
      (fun c -> List.exists (fun g -> List.exists (fun (m, _) -> m.cid = c.cid) g.g_members) groups)
      survivors
  in
  let recommended = groups <> [] && bundle > baseline +. 0.05 in
  let below_min = min_speedup > 0. && bundle < min_speedup in
  let diags = synth_diags probe cands survivors ~baseline ~bundle ~hand in
  let diags =
    if below_min && groups <> [] then
      diags
      @ [
          Diag.diagnostic Diag.Warning_sev Loc.dummy
            (Printf.sprintf
               "verified bundle predicts %.2fx, below --min-speedup=%.2f; suggestions \
                suppressed"
               bundle min_speedup);
        ]
    else diags
  in
  let groups = if below_min then [] else groups in
  let suggestions =
    List.map
      (fun g ->
        let speedup =
          if not rank_individual then None
          else
            try
              let ssrc = Pretty.program_to_string (bundle_ast ast ~fname [ g ]) in
              Some
                (best_speedup
                   (P.compile ~name:(name ^ ".one") ~setup ~verify:false ssrc))
            with Diag.Error _ -> None
        in
        suggestion_of ~speedup ~recommended g)
      groups
  in
  let r_source =
    if groups = [] then stripped_src
    else Pretty.program_to_string (bundle_ast ast ~fname groups)
  in
  ignore cb;
  {
    r_name = name;
    r_baseline = baseline;
    r_bundle = bundle;
    r_hand = hand;
    r_suggestions = suggestions;
    r_diags = diags;
    r_source;
    r_stripped = stripped_src;
  }
