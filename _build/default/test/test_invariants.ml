(** Cross-cutting invariants: trace cost conservation, emission work
    conservation, evaluation determinism, source-level dependence
    explanations, and per-workload PDG shape assertions. *)

module P = Commset_pipeline.Pipeline
module W = Commset_workloads.Workload
module Registry = Commset_workloads.Registry
module T = Commset_transforms
module R = Commset_runtime
module Pdg = Commset_pdg.Pdg
module Report = Commset_report

let check = Alcotest.check

let compiled = Hashtbl.create 8

let comp name =
  match Hashtbl.find_opt compiled name with
  | Some c -> c
  | None ->
      let w = Option.get (Registry.find name) in
      let c = P.compile ~name ~setup:w.W.setup w.W.source in
      Hashtbl.replace compiled name c;
      c

(* ---- trace conservation ---- *)

let test_trace_conservation () =
  List.iter
    (fun name ->
      let c = comp name in
      let t = c.P.trace in
      let loop = R.Trace.loop_cost t in
      let total = loop +. t.R.Trace.other_cost in
      let err = abs_float (total -. t.R.Trace.seq_total) /. t.R.Trace.seq_total in
      if err > 1e-9 then
        Alcotest.failf "%s: loop(%.0f) + other(%.0f) <> seq_total(%.0f)" name loop
          t.R.Trace.other_cost t.R.Trace.seq_total)
    [ "md5sum"; "kmeans"; "url" ]

(* ---- emission work conservation (DOALL replays every cycle) ---- *)

let test_emit_conservation () =
  let c = comp "md5sum" in
  let doall =
    List.find
      (fun (p : T.Plan.t) -> p.T.Plan.shape = T.Plan.Sdoall && p.T.Plan.uses_commset)
      (P.plans c ~threads:8)
  in
  let e = T.Emit.emit ~plan:doall ~pdg:c.P.target.P.pdg ~trace:c.P.trace in
  let seg_cost = function
    | R.Sim.Compute { cost; _ } -> cost
    | R.Sim.Tx { cost; _ } -> cost
    | _ -> 0.
  in
  let emitted =
    Array.fold_left
      (fun acc segs -> acc +. List.fold_left (fun a s -> a +. seg_cost s) 0. segs)
      0. e.T.Emit.seg_lists
  in
  let loop = R.Trace.loop_cost c.P.trace in
  let err = abs_float (emitted -. loop) /. loop in
  check Alcotest.bool "DOALL emission preserves every traced cycle" true (err < 1e-9)

(* ---- evaluation determinism ---- *)

let test_evaluation_deterministic () =
  let c = comp "url" in
  let speeds () = List.map (fun r -> (r.P.plan.T.Plan.label, r.P.speedup)) (P.evaluate c ~threads:8) in
  check
    Alcotest.(list (pair string (float 1e-12)))
    "two evaluations agree" (speeds ()) (speeds ())

(* ---- explain ---- *)

let test_explain_blockers () =
  let src =
    "void main() { for (int i = 0; i < 6; i++) { vec_push(int_to_string(i)); } }"
  in
  let c = P.compile ~name:"blocked" src in
  let bs = Report.Explain.blockers c in
  check Alcotest.bool "reports the vec self-dependence" true (List.length bs >= 1);
  List.iter
    (fun b ->
      check Alcotest.bool "has a suggestion" true (String.length b.Report.Explain.b_suggestion > 0);
      check Alcotest.bool "has a source location" false
        (Commset_support.Loc.is_dummy b.Report.Explain.b_src_loc))
    bs;
  let rendered = Report.Explain.render c in
  check Alcotest.bool "render mentions shared state" true
    (String.length rendered > 40)

let test_explain_clean () =
  let c = comp "md5sum" in
  check Alcotest.(list reject) "no blockers on annotated md5sum"
    [] (List.map (fun _ -> ()) (Report.Explain.blockers c))

(* ---- per-workload PDG shapes ---- *)

let test_md5sum_pdg_shape () =
  let c = comp "md5sum" in
  let pdg = c.P.target.P.pdg in
  let regions = List.filter (fun n -> Pdg.node_region n <> None) (Pdg.nodes pdg) in
  check Alcotest.int "three annotated client blocks" 3 (List.length regions);
  check Alcotest.int "one inter-iteration commutative edge" 1 c.P.target.P.n_ico;
  (* the named block gives the mdfile call a predicated self set *)
  let has_enabled_call =
    List.exists
      (fun n ->
        match n.Pdg.kind with
        | Pdg.Ninstr { Commset_ir.Ir.desc = Commset_ir.Ir.Call { callee = "mdfile"; enabled = [ _ ]; _ }; _ } ->
            true
        | _ -> false)
      (Pdg.nodes pdg)
  in
  check Alcotest.bool "mdfile call carries the enable" true has_enabled_call

let test_em3d_pdg_shape () =
  let c = comp "em3d" in
  (* pointer chasing: no basic induction variable, hence no DOALL *)
  check Alcotest.int "no basic IV" 0
    (List.length (Commset_analysis.Induction.basic_ivs c.P.target.P.induction));
  check Alcotest.bool "DOALL inapplicable" false (T.Doall.applicable c.P.target.P.pdg)

let test_kmeans_pdg_shape () =
  let c = comp "kmeans" in
  let pdg = c.P.target.P.pdg in
  let regions = List.filter (fun n -> Pdg.node_region n <> None) (Pdg.nodes pdg) in
  (match regions with
  | [ r ] ->
      check Alcotest.bool "the update block holds its self lock" true
        (T.Sync.locks_of c.P.sync r.Pdg.nid <> [])
  | _ -> Alcotest.fail "expected exactly one region");
  check Alcotest.int "exactly one annotation" 1
    (P.count_annotations (Option.get (Registry.find "kmeans")).W.source)

let test_url_lib_mode () =
  let c = comp "url" in
  let pdg = c.P.target.P.pdg in
  (* the log block needs no compiler lock (thread-safe library), the
     packet dequeue does *)
  let locked_nodes =
    List.filter (fun n -> T.Sync.locks_of c.P.sync n.Pdg.nid <> []) (Pdg.nodes pdg)
  in
  check Alcotest.int "only the dequeue is compiler-locked" 1 (List.length locked_nodes)

(* ---- sweeps are monotone-ish and bounded ---- *)

let test_sweep_sanity () =
  let c = comp "url" in
  List.iter
    (fun (_series, pts) ->
      List.iter
        (fun (t, s) ->
          if s > float_of_int t +. 0.2 then
            Alcotest.failf "superlinear speedup %.2f at %d threads" s t)
        pts)
    (P.sweep c ~max_threads:8)

(* ---- reduction recognition (extension) ---- *)

let test_reduction_enables_doall () =
  (* a pure sum loop: no annotations, but the recurrence is a recognized
     reduction, so DOALL applies with private accumulators *)
  let src =
    {|
void main() {
  int total = 0;
  for (int i = 0; i < 200; i++) {
    int v = 0;
    for (int j = 0; j < 20; j++) {
      v = (v * 31 + i * j + 3) % 1009;
    }
    total = total + v;
  }
  print(int_to_string(total));
}
|}
  in
  let c = P.compile ~name:"sum" src in
  let pdg = c.P.target.P.pdg in
  let rs = Commset_pdg.Reduction.detect pdg in
  check Alcotest.int "one reduction found" 1 (List.length rs);
  check Alcotest.bool "blocked without reductions" false (T.Doall.applicable pdg);
  check Alcotest.bool "applicable with reductions" true
    (T.Doall.applicable ~reductions:rs pdg);
  let runs = P.evaluate c ~threads:8 in
  let doall = List.filter (fun r -> r.P.plan.T.Plan.shape = T.Plan.Sdoall) runs in
  check Alcotest.bool "DOALL(red) plan produced and scales" true
    (List.exists (fun r -> r.P.speedup > 4.0) doall)

let test_reduction_rejected_when_observed () =
  (* printing the running total observes intermediate values: that is NOT
     a reduction *)
  let src =
    {|
void main() {
  int total = 0;
  for (int i = 0; i < 16; i++) {
    total = total + i;
    print(int_to_string(total));
  }
}
|}
  in
  let c = P.compile ~name:"observed" src in
  let rs = Commset_pdg.Reduction.detect c.P.target.P.pdg in
  check Alcotest.int "no reduction when intermediate values escape" 0 (List.length rs)

let test_reduction_float_product () =
  let src =
    {|
void main() {
  float p = 1.0;
  for (int i = 1; i < 30; i++) {
    p = p * (1.0 + 1.0 / int_to_float(i * i));
  }
  print(float_to_string(p));
}
|}
  in
  let c = P.compile ~name:"prod" src in
  match Commset_pdg.Reduction.detect c.P.target.P.pdg with
  | [ r ] ->
      check Alcotest.bool "product reduction" true (r.Commset_pdg.Reduction.rop = Commset_pdg.Reduction.Rprod)
  | _ -> Alcotest.fail "expected one float product reduction"

let reduction_cases =
  [
    Alcotest.test_case "reduction enables DOALL" `Quick test_reduction_enables_doall;
    Alcotest.test_case "observed accumulator rejected" `Quick test_reduction_rejected_when_observed;
    Alcotest.test_case "float product reduction" `Quick test_reduction_float_product;
  ]

let suite =
  ( "invariants",
    reduction_cases
    @ [
      Alcotest.test_case "trace cost conservation" `Slow test_trace_conservation;
      Alcotest.test_case "emission work conservation" `Slow test_emit_conservation;
      Alcotest.test_case "evaluation determinism" `Slow test_evaluation_deterministic;
      Alcotest.test_case "explain reports blockers" `Quick test_explain_blockers;
      Alcotest.test_case "explain clean on md5sum" `Slow test_explain_clean;
      Alcotest.test_case "md5sum PDG shape" `Slow test_md5sum_pdg_shape;
      Alcotest.test_case "em3d PDG shape" `Slow test_em3d_pdg_shape;
      Alcotest.test_case "kmeans PDG shape" `Slow test_kmeans_pdg_shape;
      Alcotest.test_case "url lib mode" `Slow test_url_lib_mode;
      Alcotest.test_case "no superlinear speedups" `Slow test_sweep_sanity;
    ] )
