(** Call graph over user-defined functions (builtins excluded). *)

module Ir = Commset_ir.Ir
open Commset_support

type t = { graph : string Digraph.t; prog : Ir.program }

val build : Ir.program -> t
val calls : t -> string -> string -> bool

(** Can execution of the first function reach a call to the second
    through any chain of user-function calls (length >= 1)? *)
val transitively_calls : t -> string -> string -> bool

(** Functions reachable from the given one, including itself. *)
val reachable : t -> string -> string list

val is_recursive : t -> string -> bool
