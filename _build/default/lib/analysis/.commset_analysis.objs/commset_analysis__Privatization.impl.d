lib/analysis/privatization.ml: Commset_ir Effects Hashtbl Induction List Loops Option
