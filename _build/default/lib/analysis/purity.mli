(** Purity checking for COMMSET predicate expressions (§4.2): a predicate
    must read and write no mutable state so that it returns the same
    value for the same arguments. *)

module Ast = Commset_lang.Ast

type verdict = Pure | Impure of string

val expr_verdict : Effects.lookup -> Effects.t option -> Ast.expr -> verdict

(** Raise a diagnostic if the predicate body of [set_name] is impure. *)
val check_predicate :
  ?effects:Effects.t -> lookup:Effects.lookup -> set_name:string -> Ast.expr -> unit
