(** The DSWP family of transforms (paper §4.5).

    The annotated PDG's DAG-SCC is linearized with a priority topological
    sort (replicable components first whenever available, so parallel
    work clusters into contiguous runs), then partitioned into pipeline
    stages:

    - DSWP: up to [threads] sequential stages balanced by profile weight;
    - PS-DSWP: maximal runs of replicable SCCs form parallel stages that
      share the threads left over by the sequential stages. A second
      variant additionally forces synchronization-heavy SCCs into
      sequential stages (the paper's kmeans insight: a highly contended
      commutative update runs better as a sequential stage than under
      locks), and the performance estimator picks the winner.

    Loop-control SCCs are excluded from stages — they are replicated into
    every pipeline thread, like the transforms' induction-variable
    duplication. *)

module Pdg = Commset_pdg.Pdg
module Scc = Commset_pdg.Scc
open Commset_support

type comp = {
  cid : int;
  cnodes : int list;
  cweight : float;
  creplicable : bool;
  clocked : bool;  (** contains a node that must hold locks *)
}

(* priority topological order over non-loop-control components:
   emit replicable components first whenever the DAG allows *)
let priority_topo (scc : Scc.t) (comps : comp list) =
  let by_id = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace by_id c.cid c) comps;
  let indeg = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace indeg c.cid 0) comps;
  Array.iteri
    (fun a succs ->
      if Hashtbl.mem by_id a then
        List.iter
          (fun b ->
            if Hashtbl.mem by_id b then Hashtbl.replace indeg b (1 + Hashtbl.find indeg b))
          succs)
    scc.Scc.dag_succs;
  let ready = ref (List.filter (fun c -> Hashtbl.find indeg c.cid = 0) comps) in
  let order = ref [] in
  while !ready <> [] do
    (* prefer replicable; tie-break on DAG id for determinism *)
    let pick =
      List.fold_left
        (fun best c ->
          match best with
          | None -> Some c
          | Some b ->
              if (c.creplicable && not b.creplicable)
                 || (c.creplicable = b.creplicable && c.cid < b.cid)
              then Some c
              else Some b)
        None !ready
    in
    match pick with
    | None -> ()
    | Some c ->
        ready := List.filter (fun c' -> c'.cid <> c.cid) !ready;
        order := c :: !order;
        List.iter
          (fun b ->
            if Hashtbl.mem by_id b then begin
              let d = Hashtbl.find indeg b - 1 in
              Hashtbl.replace indeg b d;
              if d = 0 then ready := Hashtbl.find by_id b :: !ready
            end)
          scc.Scc.dag_succs.(c.cid)
  done;
  List.rev !order

let components (pdg : Pdg.t) (sync : Sync.t) (scc : Scc.t) : comp list =
  List.filter_map
    (fun cid ->
      if Scc.is_loop_control pdg scc cid then None
      else
        Some
          {
            cid;
            cnodes = Scc.members scc cid;
            cweight = Scc.component_weight pdg scc cid;
            creplicable = not (Scc.has_carried_dep scc cid);
            clocked = List.exists (fun nid -> Sync.locks_of sync nid <> []) (Scc.members scc cid);
          })
    scc.Scc.topo

(* group a linearized component sequence into runs of equal class *)
let runs ~(classify : comp -> bool) (order : comp list) : (bool * comp list) list =
  List.fold_left
    (fun acc c ->
      let cls = classify c in
      match acc with
      | (cls', run) :: rest when cls' = cls -> (cls', c :: run) :: rest
      | _ -> (cls, [ c ]) :: acc)
    [] order
  |> List.rev_map (fun (cls, run) -> (cls, List.rev run))

(* Merge *parallel* stages that carry a negligible share of the profile
   weight into an adjacent stage (the lighter neighbour) — a tiny
   replicable run of bookkeeping SCCs is not worth a pipeline stage, and
   folding it into a neighbouring sequential stage collapses
   [P|S|P|S|P] chains into the paper's compact 2-3 stage pipelines.
   Sequential stages are never merged away: folding them into a parallel
   stage would force the whole merged stage sequential. *)
let merge_small_stages ?(threshold = 0.08) (stages : (bool * comp list) list) =
  let weight comps = Listx.sum_float (fun c -> c.cweight) comps in
  let total = Listx.sum_float (fun (_, comps) -> weight comps) stages in
  let rec step stages =
    if List.length stages <= 1 then stages
    else begin
      let arr = Array.of_list stages in
      let n = Array.length arr in
      let smallest = ref (-1) in
      Array.iteri
        (fun i (parallel, comps) ->
          if parallel && weight comps < threshold *. total then
            match !smallest with
            | -1 -> smallest := i
            | j ->
                let _, cj = arr.(j) in
                if weight comps < weight cj then smallest := i)
        arr;
      match !smallest with
      | -1 -> stages
      | i ->
          (* merge into the lighter adjacent neighbour *)
          let target =
            if i = 0 then 1
            else if i = n - 1 then n - 2
            else begin
              let _, prev = arr.(i - 1) and _, next = arr.(i + 1) in
              if weight prev <= weight next then i - 1 else i + 1
            end
          in
          let lo = min i target and hi = max i target in
          let p1, c1 = arr.(lo) and p2, c2 = arr.(hi) in
          let merged = (p1 && p2, c1 @ c2) in
          let rest =
            Array.to_list arr
            |> List.mapi (fun j s -> (j, s))
            |> List.filter_map (fun (j, s) ->
                   if j = lo then Some merged else if j = hi then None else Some s)
          in
          step rest
    end
  in
  step stages

(* allocate threads: one per sequential stage, the rest split across
   parallel stages *)
let allocate_threads ~threads (stages : (bool * comp list) list) : Plan.stage list option =
  let n_seq = List.length (List.filter (fun (p, _) -> not p) stages) in
  let n_par = List.length stages - n_seq in
  if List.length stages < 2 || threads < List.length stages then None
  else begin
    let spare = threads - n_seq in
    if n_par > 0 && spare < n_par then None
    else
      let per_par = if n_par = 0 then 0 else spare / n_par in
      let extra = if n_par = 0 then 0 else spare mod n_par in
      let par_seen = ref 0 in
      Some
        (List.map
           (fun (parallel, comps) ->
             let sthreads =
               if not parallel then 1
               else begin
                 let t = per_par + if !par_seen < extra then 1 else 0 in
                 incr par_seen;
                 max 1 t
               end
             in
             {
               Plan.snodes = List.concat_map (fun c -> c.cnodes) comps;
               sparallel = parallel;
               sthreads = (if parallel then sthreads else 1);
             })
           stages)
  end

let mk_plan ~threads ~uses_commset ~variant (sync : Sync.t) stages ~label ~series =
  {
    Plan.shape = Plan.Sdswp stages;
    threads;
    variant;
    node_locks = sync.Sync.node_locks;
    uses_commset;
    label;
    series;
    spec_ctx = None;
  }

let variant_list (sync : Sync.t) (trace : Commset_runtime.Trace.t) stages =
  (* locks matter only if a parallel stage contains locked nodes *)
  let locked_in_parallel =
    List.exists
      (fun (s : Plan.stage) ->
        s.Plan.sthreads > 1
        && List.exists (fun nid -> Sync.locks_of sync nid <> []) s.Plan.snodes)
      stages
  in
  if not locked_in_parallel then [ Plan.Lib ]
  else begin
    let base = [ Plan.Mutex; Plan.Spin ] in
    if Sync.tm_applicable sync trace then base @ [ Plan.Tm ] else base
  end

(** DSWP: balanced sequential pipeline with at most [threads] stages. *)
let dswp_plans (pdg : Pdg.t) (sync : Sync.t) (scc : Scc.t) trace ~threads ~uses_commset :
    Plan.t list =
  let comps = components pdg sync scc in
  if List.length comps < 2 || threads < 2 then []
  else begin
    let order = priority_topo scc comps in
    let total = Listx.sum_float (fun c -> c.cweight) comps in
    let n_stages = min threads (List.length comps) in
    let target = total /. float_of_int n_stages in
    (* greedy chunking over the linearized order *)
    let stages = ref [] and cur = ref [] and cur_w = ref 0. in
    List.iter
      (fun c ->
        if !cur <> [] && !cur_w +. c.cweight > target *. 1.15
           && List.length !stages + 1 < n_stages then begin
          stages := List.rev !cur :: !stages;
          cur := [ c ];
          cur_w := c.cweight
        end
        else begin
          cur := c :: !cur;
          cur_w := !cur_w +. c.cweight
        end)
      order;
    if !cur <> [] then stages := List.rev !cur :: !stages;
    let stages = List.rev !stages in
    if List.length stages < 2 then []
    else begin
      let pstages =
        List.map
          (fun comps ->
            { Plan.snodes = List.concat_map (fun c -> c.cnodes) comps; sparallel = false; sthreads = 1 })
          stages
      in
      let prefix = if uses_commset then "Comm-" else "" in
      List.map
        (fun v ->
          mk_plan ~threads ~uses_commset ~variant:v sync pstages
            ~label:
              (Printf.sprintf "%sDSWP[%d] + %s" prefix (List.length pstages)
                 (Plan.sync_variant_to_string v))
            ~series:(Printf.sprintf "%sDSWP + %s" prefix (Plan.sync_variant_to_string v)))
        (variant_list sync trace pstages)
    end
  end

(** PS-DSWP: replicable runs become parallel stages. Returns the plain
    variant and the "contended updates to a sequential stage" variant. *)
let psdswp_plans (pdg : Pdg.t) (sync : Sync.t) (scc : Scc.t) trace ~threads ~uses_commset :
    Plan.t list =
  let comps = components pdg sync scc in
  if comps = [] || threads < 2 then []
  else begin
    let order = priority_topo scc comps in
    let build classify tag =
      let rs = merge_small_stages (runs ~classify order) in
      match allocate_threads ~threads rs with
      | Some stages when List.exists (fun s -> s.Plan.sthreads > 1) stages ->
          let prefix = if uses_commset then "Comm-" else "" in
          let shape_tag =
            String.concat "|"
              (List.map
                 (fun (s : Plan.stage) ->
                   if s.Plan.sthreads > 1 then Printf.sprintf "DOALL:%d" s.Plan.sthreads else "S")
                 stages)
          in
          List.map
            (fun v ->
              mk_plan ~threads ~uses_commset ~variant:v sync stages
                ~label:
                  (Printf.sprintf "%sPS-DSWP[%s]%s + %s" prefix shape_tag tag
                     (Plan.sync_variant_to_string v))
                ~series:
                  (Printf.sprintf "%sPS-DSWP%s + %s" prefix tag
                     (Plan.sync_variant_to_string v)))
            (variant_list sync trace stages)
      | _ -> []
    in
    (* v1: parallel = replicable; v2: parallel = replicable and lock-free.
       Drop v2 when it produces the same stage structure as v1. *)
    let v1 = build (fun c -> c.creplicable) "" in
    let v2 = build (fun c -> c.creplicable && not c.clocked) " (seq-sync)" in
    let stage_sig (p : Plan.t) =
      match p.Plan.shape with
      | Plan.Sdswp stages ->
          List.map (fun (s : Plan.stage) -> (List.sort compare s.Plan.snodes, s.Plan.sthreads)) stages
      | Plan.Sdoall -> []
    in
    let v1_sigs = List.map stage_sig v1 in
    let v2 = List.filter (fun p -> not (List.mem (stage_sig p) v1_sigs)) v2 in
    v1 @ v2
  end

(** All pipeline plans. *)
let plans pdg sync scc trace ~threads ~uses_commset =
  dswp_plans pdg sync scc trace ~threads ~uses_commset
  @ psdswp_plans pdg sync scc trace ~threads ~uses_commset
