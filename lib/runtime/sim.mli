(** Discrete-event simulator of the multicore target. Threads execute
    segment lists; locks model the paper's synchronization modes, queues
    the bounded lock-free inter-stage channels, and transactional
    segments the optimistic runtimes (TM, and speculative commutativity
    with a runtime predicate check). Threads are processed in
    virtual-time order, which preserves causality for all resource
    interactions. *)

type lock_spec = { lflavor : Costmodel.lock_flavor; lname : string }

(** Runtime commutativity information attached to a speculative
    transaction: the member's identity and the predicate actuals of each
    dynamic instance it covers. *)
type spec_info = {
  sp_member : string;
  sp_keys : (string * Value.t list) list list;
}

type seg =
  | Compute of { cost : float; tag : string }
  | Acquire of int
  | Release of int
  | Push of int
  | Pop of int
  | Emit of string
  | Tx of {
      cost : float;
      reads : string list;
      writes : string list;
      outputs : string list;
      tag : string;
      spec : spec_info option;
    }

module Sset : Set.S with type elt = string

(** The transaction commit log, keyed by commit time, so that validating
    a transaction window [(start, stop)] only examines the commits that
    can actually overlap it (commit times are not monotone in log order —
    the min-time scheduler interleaves threads). Footprints are stored as
    string sets. Exposed so the simulator tests can cross-check the
    indexed conflict query against a naive reference implementation. *)
module Commit_index : sig
  type t

  val empty : t
  val is_empty : t -> bool

  (** [add idx ~time ~thread ~reads ~writes ~spec] records a commit. *)
  val add :
    t ->
    time:float ->
    thread:int ->
    reads:string list ->
    writes:string list ->
    spec:spec_info option ->
    t

  (** [prune idx ~min_time] drops every commit at or before [min_time];
    safe once every unfinished thread's clock has reached [min_time],
    because a conflict requires a commit time strictly inside a window
    that starts at some thread's current clock. *)
  val prune : t -> min_time:float -> t

  (** Number of commits currently held. *)
  val size : t -> int

  (** [conflicts idx ~commutes ~thread ~start ~stop ~reads ~writes ~spec]
    holds when some commit by another thread, with commit time strictly
    inside [(start, stop)], has a write set intersecting [reads ∪ writes]
    or a read set intersecting [writes] — unless both sides carry
    [spec_info] and [commutes] proves they commute. *)
  val conflicts :
    t ->
    commutes:(spec_info -> spec_info -> bool) option ->
    thread:int ->
    start:float ->
    stop:float ->
    reads:Sset.t ->
    writes:Sset.t ->
    spec:spec_info option ->
    bool
end

type t

type result = {
  makespan : float;
  outputs : (float * string) list;  (** commit-time ordered *)
  thread_busy : float array;
  timelines : (float * float * string) list array;
  lock_contended : int;
  tx_aborts : int;
  lock_wait : float;
      (** total virtual cycles threads spent blocked waiting for locks *)
  queue_wait : float;
      (** total virtual cycles threads spent blocked on full/empty queues *)
}

(** [create ~locks ~n_queues seg_lists] builds a machine with one thread
    per segment list. [spec_commutes], when given, forgives transaction
    footprint overlaps between transactions whose [spec_info]s commute. *)
val create :
  ?record_timeline:bool ->
  ?spec_commutes:(spec_info -> spec_info -> bool) ->
  locks:lock_spec array ->
  n_queues:int ->
  seg list array ->
  t

(** Run to completion; detects deadlock (raises a diagnostic). *)
val run : t -> result
