(** Concrete evaluation of pure COMMSET predicate expressions over runtime
    values — the basis of the speculative (runtime-checked) commutativity
    mode. *)

module Ast = Commset_lang.Ast

type env = (string * Value.t) list

val eval : env -> Ast.expr -> Value.t

(** Evaluate a predicate body with the two instances' actuals bound to
    the two parameter lists. *)
val predicate_holds :
  params1:string list ->
  params2:string list ->
  actuals1:Value.t list ->
  actuals2:Value.t list ->
  Ast.expr ->
  bool
