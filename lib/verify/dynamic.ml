(** Dynamic refutation of commutativity annotations by replay.

    One instrumented run of the program records, per commset member, a
    few dynamic instances: the live register file at region entry (or
    the argument values at an interface call), the concrete predicate
    actuals, and — for the first instances — a deep snapshot of the
    whole machine plus globals. Every pair the static checker left
    [Unknown] is then re-tried concretely: two recorded instances whose
    actuals the set's predicate admits are replayed in both orders on
    clones of the snapshot state, and the resulting machines are
    compared with {!Machine.obs_diff} (multiset semantics for
    order-insensitive sinks, renaming for handles). A divergence
    upgrades the pair to [Refuted] with a concrete witness; agreement
    leaves it [Unknown] — a passed trial is evidence, not proof.

    Return values are deliberately *not* compared: exchanging drawn
    values (packet ids, db rows, random numbers) between two admitted
    instances is exactly what COMMSET semantics permit.

    Pairs whose conflicts involve heap arrays the replay cannot snapshot
    faithfully (register files alias live arrays) are skipped; only
    members whose writes stay within globals, builtin resources and
    member-local allocations are eligible. *)

module Ir = Commset_ir.Ir
module Effects = Commset_analysis.Effects
module Metadata = Commset_core.Metadata
module Machine = Commset_runtime.Machine
module Interp = Commset_runtime.Interp
module Precompile = Commset_runtime.Precompile
module Value = Commset_runtime.Value
module Concrete_eval = Commset_runtime.Concrete_eval
module Diag = Commset_support.Diag
module Pool = Commset_support.Pool

(* ---- trace recording ----------------------------------------------- *)

(** How to re-execute a recorded instance. *)
type body =
  | Bregion of { bfunc : Ir.func; bregion : Ir.region; bregs : Value.t array }
  | Bfun of { bfunc : Ir.func; bargs : Value.t list }

(** One recorded dynamic instance of a member. *)
type inv = {
  imember : Metadata.member;
  iactuals : (string * Value.t list) list;  (** concrete predicate actuals, per set *)
  ibody : body;
  iseq : int;
  isnap : (Machine.t * (string * Value.t) list) option;
      (** machine clone + deep copy of globals, taken just before the instance ran *)
}

let max_recorded = 8

let rec deep_value = function
  | Value.Varray a -> Value.Varray (Array.map deep_value a)
  | v -> v

let globals_bindings tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

(** Run the program once under instrumentation and record member
    instances; the first [max_snapshots] instances of each member get a
    full state snapshot. *)
let record ~max_snapshots ?prepared ~(md : Metadata.t) ~(setup : Machine.t -> unit) prog :
    inv list =
  let machine = Machine.create () in
  setup machine;
  let hooks = Interp.null_hooks () in
  (* live-globals accessor for snapshots, installed below once the
     chosen engine exists *)
  let live_globals = ref (fun () -> []) in
  let seq = ref 0 in
  let recorded : (Metadata.member, int) Hashtbl.t = Hashtbl.create 16 in
  let snapped : (Metadata.member, int) Hashtbl.t = Hashtbl.create 16 in
  let invs = ref [] in
  let add member actuals body =
    let n = Option.value ~default:0 (Hashtbl.find_opt recorded member) in
    if n < max_recorded then begin
      Hashtbl.replace recorded member (n + 1);
      let ns = Option.value ~default:0 (Hashtbl.find_opt snapped member) in
      let isnap =
        if ns < max_snapshots then begin
          Hashtbl.replace snapped member (ns + 1);
          Some (Machine.clone machine, List.map (fun (k, v) -> (k, deep_value v)) (!live_globals ()))
        end
        else None
      in
      incr seq;
      invs :=
        { imember = member; iactuals = actuals; ibody = body; iseq = !seq; isnap }
        :: !invs
    end
  in
  (* Named-block membership is established at the call site; carry the
     enables of the innermost active user call down to region entries. *)
  let pending = ref None in
  let stack = ref [] in
  hooks.Interp.on_call_actuals <-
    (fun i argv enables ->
      match Ir.callee_of i with
      | None -> ()
      | Some callee -> (
          pending := Some (callee, enables);
          match (Metadata.interface_refs md callee, Ir.find_func prog callee) with
          | [], _ | _, None -> ()
          | refs, Some f ->
              let actuals =
                List.map
                  (fun (sname, idxs) ->
                    (sname, List.filter_map (fun k -> List.nth_opt argv k) idxs))
                  refs
              in
              add (Metadata.Mfun callee) actuals (Bfun { bfunc = f; bargs = argv })));
  hooks.Interp.on_enter_func <-
    (fun f ->
      let en =
        match !pending with Some (c, en) when c = f.Ir.fname -> en | _ -> []
      in
      pending := None;
      stack := (f.Ir.fname, en) :: !stack);
  hooks.Interp.on_exit_func <-
    (fun _ -> match !stack with _ :: tl -> stack := tl | [] -> ());
  hooks.Interp.on_region_enter <-
    (fun func region actuals regs ->
      let body () =
        Bregion { bfunc = func; bregion = region; bregs = Array.copy regs }
      in
      (match region.Ir.rname with
      | Some bname -> (
          match !stack with
          | (fn, enables) :: _ when fn = func.Ir.fname -> (
              match List.assoc_opt bname enables with
              | Some set_actuals when set_actuals <> [] ->
                  add (Metadata.Mnamed (func.Ir.fname, bname)) set_actuals (body ())
              | _ -> ())
          | _ -> ())
      | None -> ());
      if actuals <> [] || region.Ir.rname = None then
        add (Metadata.Mregion (func.Ir.fname, region.Ir.rid)) actuals (body ()));
  (match prepared with
  | Some p ->
      let ex = Precompile.executor ~hooks ~machine p in
      live_globals := (fun () -> Precompile.globals ex);
      (try ignore (Precompile.run_main ex) with Interp.Out_of_fuel | Diag.Error _ -> ())
  | None ->
      let t = Interp.create ~hooks ~machine prog in
      live_globals := (fun () -> globals_bindings t.Interp.globals);
      (try ignore (Interp.run_main t) with Interp.Out_of_fuel | Diag.Error _ -> ()));
  List.rev !invs

(* ---- eligibility ---------------------------------------------------- *)

(* Replays snapshot globals and the machine but not arbitrary heap
   arrays (register files alias the live run's arrays), so only members
   whose writes stay within snapshot-covered or member-local state can
   be replayed fairly. *)
let replayable_writes (s : Summary.t) =
  Effects.LocSet.for_all
    (function
      | Effects.Lglobal _ | Effects.Lext _ | Effects.Lheap (Effects.Slocal _) ->
          true
      | Effects.Lheap _ | Effects.Lunknown -> false)
    s.Summary.srw.Effects.writes

let eligible md m1 m2 =
  let s1 = Summary.of_member md m1 in
  let s2 = if m1 = m2 then s1 else Summary.of_member md m2 in
  replayable_writes s1 && replayable_writes s2

(* ---- replay --------------------------------------------------------- *)

let replay_fuel = 2_000_000

let exec_inv t inv =
  match inv.ibody with
  | Bregion { bfunc; bregion; bregs } ->
      Interp.exec_region t bfunc (Array.copy bregs) bregion
  | Bfun { bfunc; bargs } -> ignore (Interp.exec_func t bfunc bargs)

(* Run [a] then [b] from a clone of the snapshot; returns the final
   machine and globals. *)
let replay prog (snap_machine, snap_globals) a b =
  let m = Machine.clone snap_machine in
  let t = Interp.create ~fuel:replay_fuel ~machine:m prog in
  Hashtbl.reset t.Interp.globals;
  List.iter (fun (k, v) -> Hashtbl.replace t.Interp.globals k (deep_value v)) snap_globals;
  exec_inv t a;
  exec_inv t b;
  (m, t.Interp.globals)

let globals_diff g1 g2 =
  let bindings tbl =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  let l1 = bindings g1 and l2 = bindings g2 in
  if l1 = l2 then []
  else
    let assoc k l = List.assoc_opt k l in
    let keys =
      List.sort_uniq compare (List.map fst l1 @ List.map fst l2)
    in
    List.filter_map
      (fun k ->
        let v1 = assoc k l1 and v2 = assoc k l2 in
        if v1 = v2 then None
        else
          let show = function
            | Some v -> Value.to_display_string v
            | None -> "<absent>"
          in
          Some (Printf.sprintf "global '%s' (%s vs %s)" k (show v1) (show v2)))
      keys

(* ---- pair refutation ------------------------------------------------ *)

(* Is this concrete instance pair admitted by the set's predicate? *)
let admitted (info : Metadata.set_info) a b =
  match info.Metadata.predicate with
  | None -> true
  | Some p -> (
      match
        ( List.assoc_opt info.Metadata.sname a.iactuals,
          List.assoc_opt info.Metadata.sname b.iactuals )
      with
      | Some aa, Some ab
        when List.length aa = List.length p.Metadata.params1
             && List.length ab = List.length p.Metadata.params2 -> (
          try
            Concrete_eval.predicate_holds ~params1:p.Metadata.params1
              ~params2:p.Metadata.params2 ~actuals1:aa ~actuals2:ab
              p.Metadata.body
          with _ -> false)
      | _ -> false)

(** Try to refute one pair: returns the upgraded verdict (when a replay
    diverged) and the number of completed trials. *)
let refute_pair ~prog ~max_trials invs (info : Metadata.set_info) m1 m2 ~pself :
    Verdict.t option * int =
  let invs1 = List.filter (fun i -> i.imember = m1) invs in
  let invs2 = List.filter (fun i -> i.imember = m2) invs in
  let candidates =
    List.concat_map
      (fun a ->
        match a.isnap with
        | None -> []
        | Some snap ->
            List.filter_map
              (fun b ->
                if pself && b.iseq = a.iseq then None else Some (a, snap, b))
              invs2)
      invs1
  in
  let trials = ref 0 in
  let verdict = ref None in
  List.iter
    (fun (a, snap, b) ->
      if !trials < max_trials && !verdict = None && admitted info a b then
        match
          (try
             let mab, gab = replay prog snap a b in
             let mba, gba = replay prog snap b a in
             Some (Machine.obs_diff mab mba @ globals_diff gab gba)
           with Interp.Out_of_fuel | Diag.Error _ -> None)
        with
        | None -> ()
        | Some [] -> incr trials
        | Some diffs ->
            incr trials;
            verdict :=
              Some
                (Verdict.Refuted
                   {
                     Verdict.cx_source = Verdict.Dynamic;
                     cx_detail =
                       Printf.sprintf
                         "replayed recorded instances #%d and #%d in both \
                          orders from the same state: %s"
                         a.iseq b.iseq
                         (String.concat "; " diffs);
                   }))
    candidates;
  (!verdict, !trials)

(* ---- report refinement ---------------------------------------------- *)

(** Re-try every [Unknown] pair of [report] concretely; [Refuted]
    upgrades carry a replay witness, surviving pairs keep their verdict
    with the trial count recorded. *)
let refine ?(max_snapshots = 2) ?(max_trials = 3) ?prepared ~(md : Metadata.t)
    ~(setup : Machine.t -> unit) (report : Verdict.report) : Verdict.report =
  let prog = md.Metadata.prog in
  let wanted =
    List.exists
      (fun (p : Verdict.pair) ->
        match p.Verdict.pverdict with
        | Verdict.Unknown _ -> eligible md p.Verdict.pm1 p.Verdict.pm2
        | _ -> false)
      report.Verdict.rpairs
  in
  if not wanted then report
  else
    let invs = record ~max_snapshots ?prepared ~md ~setup prog in
    let refine_one (p : Verdict.pair) =
      match p.Verdict.pverdict with
      | Verdict.Unknown _ when eligible md p.Verdict.pm1 p.Verdict.pm2 -> (
          match Metadata.set_info md p.Verdict.pset with
          | None -> p
          | Some info ->
              let upgraded, trials =
                refute_pair ~prog ~max_trials invs info p.Verdict.pm1
                  p.Verdict.pm2 ~pself:p.Verdict.pself
              in
              let pverdict =
                match upgraded with Some v -> v | None -> p.Verdict.pverdict
              in
              { p with Verdict.pverdict; ptrials = trials })
      | _ -> p
    in
    { Verdict.rpairs = Pool.parmap refine_one report.Verdict.rpairs }
