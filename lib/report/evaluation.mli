(** The full evaluation engine: compiles every workload (and its
    annotation variants), simulates every applicable parallelization plan
    across thread counts, and produces the data behind the paper's
    Table 2 and Figure 6. *)

module P = Commset_pipeline.Pipeline
module W = Commset_workloads.Workload

type variant_eval = {
  v_name : string;  (** "" for the primary source *)
  v_comp : P.t;
  v_runs8 : P.run list;  (** all plans at 8 threads, best first *)
  v_sweep : (string * (int * float) list) list;
}

type bench_eval = {
  be_workload : W.t;
  be_primary : variant_eval;
  be_variants : variant_eval list;
  be_best : P.run;  (** best COMMSET plan of the primary source, 8 threads *)
  be_best_noncomm : P.run option;
}

val evaluate_workload : ?sweep:bool -> W.t -> bench_eval

(** All eight workloads; [sweep = false] skips the 1..8-thread curves. *)
val evaluate_all : ?sweep:bool -> unit -> bench_eval list

(* Table 2 *)
val table2_rows : bench_eval list -> string list list
val render_table2 : bench_eval list -> string

(* Figure 6 *)
val figure6_series : bench_eval -> (string * (int * float) list) list
val render_figure6 : bench_eval -> string
val geomean : float list -> float
val geomean_series : bench_eval list -> (string * (int * float) list) list
val render_geomean : bench_eval list -> string

(* Figures 2 and 3 (md5sum PDG and timelines). Both renderers accept an
   already-compiled md5sum pipeline via [?comp] (and the deterministic
   variant via [?comp_det]) so callers that have one — e.g. the bench
   harness — avoid a redundant {!P.compile}. *)
val render_figure2 : ?comp:P.t -> unit -> string
val render_timeline : ?limit:int -> P.run -> string
val render_figure3 : ?comp:P.t -> ?comp_det:P.t -> unit -> string
