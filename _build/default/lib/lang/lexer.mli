(** Hand-written lexer for miniC.

    Handles [//] and [/* */] comments, string escapes, and [#pragma]
    lines, which are captured whole (the text after [#pragma]) and
    re-tokenized later by the pragma parser. Lexical errors raise
    {!Commset_support.Diag.Error}. *)

type t

val create : ?file:string -> string -> t

(** Produce the next token; returns [EOF] forever at end of input. *)
val next : t -> Token.spanned

(** Tokenize a whole buffer, including the trailing [EOF]. *)
val tokenize : ?file:string -> string -> Token.spanned list
