(** Paper Table 1: comparison of semantic-commutativity-based parallel
    programming models, encoded as a typed model of each system's
    features (reconstructed from the paper's §1 and §6 discussion). *)

type driver = Runtime_driver | Programmer_driver | Compiler_driver

type system = {
  sys_name : string;
  predication : bool;
  commuting_blocks : bool;
  group_commutativity : bool;
  needs_extra_extensions : bool;
  task : bool;
  pipelined : bool;
  data : bool;
  iface_spec : bool;
  client_spec : bool;
  concurrency_control : driver;
  parallelization : [ `Automatic | `Manual ];
  optimistic : bool;
}

(** Jade, Galois, DPJ, Paralax, VELOCITY, COMMSET. *)
val systems : system list

val commset : system
val render : unit -> string
