(** Pretty-printer for miniC ASTs.

    Output re-parses to an equal AST (modulo locations and block ids),
    which the round-trip property tests rely on. *)

open Ast

let rec pp_expr ppf e =
  match e.edesc with
  | Int_lit n -> Fmt.int ppf n
  | Float_lit f ->
      (* keep a decimal point so the literal re-lexes as a float *)
      let s = Printf.sprintf "%.17g" f in
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then
        Fmt.string ppf s
      else Fmt.pf ppf "%s.0" s
  | Bool_lit b -> Fmt.bool ppf b
  | String_lit s -> Fmt.pf ppf "%S" s
  | Var v -> Fmt.string ppf v
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_to_string op) pp_expr b
  | Unop (op, a) -> Fmt.pf ppf "(%s%a)" (unop_to_string op) pp_expr a
  | Call (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp_expr) args
  | Index (a, i) -> Fmt.pf ppf "%a[%a]" pp_expr a pp_expr i

let pp_commset_ref ppf { set_name; actuals } =
  if actuals = [] then Fmt.string ppf set_name
  else Fmt.pf ppf "%s(%a)" set_name Fmt.(list ~sep:(any ", ") pp_expr) actuals

let pp_pragma ppf p =
  match p.pdesc with
  | P_decl { set_name; kind } ->
      Fmt.pf ppf "#pragma commset decl %s %s" set_name
        (match kind with Self_set -> "self" | Group_set -> "group")
  | P_predicate { set_name; params1; params2; body } ->
      Fmt.pf ppf "#pragma commset predicate %s (%a) (%a) (%a)" set_name
        Fmt.(list ~sep:(any ", ") string)
        params1
        Fmt.(list ~sep:(any ", ") string)
        params2 pp_expr body
  | P_nosync name -> Fmt.pf ppf "#pragma commset nosync %s" name
  | P_member refs ->
      Fmt.pf ppf "#pragma commset member %a" Fmt.(list ~sep:(any ", ") pp_commset_ref) refs
  | P_namedblock name -> Fmt.pf ppf "#pragma commset namedblock %s" name
  | P_namedarg name -> Fmt.pf ppf "#pragma commset namedarg %s" name
  | P_enable { callee; block_name; sets } ->
      Fmt.pf ppf "#pragma commset enable %s.%s in %a" callee block_name
        Fmt.(list ~sep:(any ", ") pp_commset_ref)
        sets

let indent n = String.make (2 * n) ' '

let rec pp_stmt ppf (lvl, s) =
  let ind = indent lvl in
  match s.sdesc with
  | Decl (ty, name, None) -> Fmt.pf ppf "%s%s %s;" ind (ty_to_string ty) name
  | Decl (ty, name, Some e) -> Fmt.pf ppf "%s%s %s = %a;" ind (ty_to_string ty) name pp_expr e
  | Assign (name, e) -> Fmt.pf ppf "%s%s = %a;" ind name pp_expr e
  | Store (a, i, e) -> Fmt.pf ppf "%s%a[%a] = %a;" ind pp_expr a pp_expr i pp_expr e
  | Expr e -> Fmt.pf ppf "%s%a;" ind pp_expr e
  | If (c, b1, None) -> Fmt.pf ppf "%sif (%a) %a" ind pp_expr c pp_block (lvl, b1)
  | If (c, b1, Some b2) ->
      Fmt.pf ppf "%sif (%a) %a else %a" ind pp_expr c pp_block (lvl, b1) pp_block (lvl, b2)
  | While (c, b) -> Fmt.pf ppf "%swhile (%a) %a" ind pp_expr c pp_block (lvl, b)
  | For (init, cond, step, b) ->
      let pp_opt_stmt ppf = function
        | None -> ()
        | Some s -> (
            (* render without indentation or trailing semicolon *)
            match s.sdesc with
            | Decl (ty, name, Some e) ->
                Fmt.pf ppf "%s %s = %a" (ty_to_string ty) name pp_expr e
            | Decl (ty, name, None) -> Fmt.pf ppf "%s %s" (ty_to_string ty) name
            | Assign (name, e) -> Fmt.pf ppf "%s = %a" name pp_expr e
            | Expr e -> pp_expr ppf e
            | _ -> Fmt.string ppf "/* unsupported for-clause */")
      in
      Fmt.pf ppf "%sfor (%a; %a; %a) %a" ind pp_opt_stmt init
        Fmt.(option pp_expr)
        cond pp_opt_stmt step pp_block (lvl, b)
  | Return None -> Fmt.pf ppf "%sreturn;" ind
  | Return (Some e) -> Fmt.pf ppf "%sreturn %a;" ind pp_expr e
  | Break -> Fmt.pf ppf "%sbreak;" ind
  | Continue -> Fmt.pf ppf "%scontinue;" ind
  | Block b -> Fmt.pf ppf "%s%a" ind pp_block_with_annots (lvl, b)
  | Pragma_stmt p -> Fmt.pf ppf "%s%a" ind pp_pragma p

and pp_block ppf (lvl, b) =
  if b.stmts = [] then Fmt.string ppf "{ }"
  else begin
    Fmt.pf ppf "{@.";
    List.iter (fun s -> Fmt.pf ppf "%a@." pp_stmt (lvl + 1, s)) b.stmts;
    Fmt.pf ppf "%s}" (indent lvl)
  end

and pp_block_with_annots ppf (lvl, b) =
  List.iter (fun p -> Fmt.pf ppf "%a@.%s" pp_pragma p (indent lvl)) b.annots;
  pp_block ppf (lvl, b)

let pp_fundecl ppf f =
  List.iter (fun p -> Fmt.pf ppf "%a@." pp_pragma p) f.fannots;
  let pp_param ppf (ty, name) = Fmt.pf ppf "%s %s" (ty_to_string ty) name in
  Fmt.pf ppf "%s %s(%a) %a" (ty_to_string f.ret) f.fname
    Fmt.(list ~sep:(any ", ") pp_param)
    f.params pp_block (0, f.body)

let pp_topdecl ppf = function
  | Gfun f -> pp_fundecl ppf f
  | Gvar { gty; gname; ginit; _ } -> (
      match ginit with
      | None -> Fmt.pf ppf "%s %s;" (ty_to_string gty) gname
      | Some e -> Fmt.pf ppf "%s %s = %a;" (ty_to_string gty) gname pp_expr e)

let pp_program ppf p =
  List.iter (fun pr -> Fmt.pf ppf "%a@." pp_pragma pr) p.global_pragmas;
  List.iter (fun d -> Fmt.pf ppf "%a@.@." pp_topdecl d) p.decls

let program_to_string p = Fmt.str "%a" pp_program p
let expr_to_string e = Fmt.str "%a" pp_expr e
