lib/analysis/reaching.ml: Cfg Commset_ir Hashtbl Int List Loops Set
