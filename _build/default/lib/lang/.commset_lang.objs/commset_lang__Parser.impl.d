lib/lang/parser.ml: Ast Commset_support Diag Lexer List Loc Token
