(** The serve daemon's wire protocol: length-prefixed frames carrying
    strict-JSON payloads over a Unix-domain stream socket.

    Framing: each message is a 4-byte big-endian unsigned payload
    length followed by that many payload bytes. Frames above
    {!max_frame} are rejected — a corrupt or hostile length prefix
    must not make the daemon allocate gigabytes.

    Requests: [{"id": n, "workload": "name"}] runs a registered
    workload by name; [{"id": n, "source": "..."}] compiles and runs
    inline miniC source (keyed by content hash, so repeats hit the plan
    cache). Optional ["echo": true] asks for the full output stream in
    the response instead of just its digest.

    Responses: [{"id", "status": "ok"|"error", "workload", "cache":
    "hit"|"miss", "n_outputs", "digest", "queue_us", "service_us"}]
    plus ["outputs"] when echoed and ["error"] when failed. *)

(** Hard payload-size ceiling, bytes (16 MiB). *)
val max_frame : int

(** Blocking frame write (handles short writes and EINTR). Raises
    [Invalid_argument] above {!max_frame}; [Unix.Unix_error] on I/O
    failure. *)
val send_frame : Unix.file_descr -> string -> unit

(** Blocking frame read: [None] on clean EOF at a frame boundary.
    Raises [Failure] on a truncated frame or oversized length. *)
val recv_frame : Unix.file_descr -> string option

(** Incremental frame decoder for the daemon's non-blocking reads: feed
    raw chunks in, complete payloads come out. *)
module Framer : sig
  type t

  val create : unit -> t

  (** [feed t buf len] consumes [len] bytes from [buf]; returns the
      payloads of every frame completed by this chunk, in order.
      Raises [Failure] on an oversized length prefix. *)
  val feed : t -> bytes -> int -> string list
end

type request = {
  rq_id : int;
  rq_workload : string option;  (** registered workload name *)
  rq_source : string option;  (** inline miniC source *)
  rq_echo : bool;
}

val request_to_json : request -> string

(** Strict parse + shape check: exactly one of ["workload"] /
    ["source"] must be present. *)
val request_of_json : string -> (request, string) result

type response = {
  rs_id : int;
  rs_error : string option;  (** [None] = status ok *)
  rs_workload : string;
  rs_hit : bool;
  rs_n_outputs : int;
  rs_digest : string;  (** MD5 hex of the newline-joined output stream *)
  rs_outputs : string list option;  (** present iff the request echoed *)
  rs_queue_us : float;
  rs_service_us : float;
}

val response_to_json : response -> string
val response_of_json : string -> (response, string) result
