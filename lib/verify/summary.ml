(** Per-member effect summaries with *operation classes*.

    The raw {!Effects} footprint says which abstract locations a member
    touches; to difference two interleavings we also need to know *how*
    each write combines with a concurrent write to the same location.
    Every write is classified:

    - [Accum]: commutative-associative accumulation (histogram add,
      statistics, bitmap OR) — any interleaving yields the same state;
    - [Multiset]: append to an order-insensitive sink (log, vector,
      output stream) — states are equal as multisets;
    - [Alloc]: allocator bump (fd table, heap ids) — states are equal up
      to handle renaming;
    - [Cursor]: advance of a shared cursor (packet queue, db rows,
      stream position) — positions commute, drawn values are exchanged;
    - [Rng]: pseudo-random stream draw — values are exchanged;
    - [Overwrite]: last-writer-wins store — commutes only when both
      interleavings provably store the same final value;
    - [Opaque]: no algebraic structure known. *)

module Ir = Commset_ir.Ir
module Effects = Commset_analysis.Effects
module Metadata = Commset_core.Metadata

type opclass =
  | Accum of string
  | Multiset of string
  | Alloc of string
  | Cursor of string
  | Rng
  | Overwrite
  | Opaque of string

let opclass_to_string = function
  | Accum s -> Printf.sprintf "accumulate(%s)" s
  | Multiset s -> Printf.sprintf "append(%s)" s
  | Alloc s -> Printf.sprintf "alloc(%s)" s
  | Cursor s -> Printf.sprintf "cursor(%s)" s
  | Rng -> "rng-draw"
  | Overwrite -> "overwrite"
  | Opaque s -> Printf.sprintf "opaque(%s)" s

(* How each builtin's writes combine with a concurrent instance of the
   same (or another) builtin hitting the same resource. *)
let builtin_class name =
  match name with
  | "hist_add" -> Accum "histogram"
  | "stat_add" | "stat_note_max" -> Accum "statistics"
  | "bm_set" -> Accum "bitmap-or"
  | "list_insert" -> Multiset "list"
  | "vec_push" -> Multiset "vector"
  | "log_write" -> Multiset "log"
  | "print" -> Multiset "stdout"
  | "fwrite" -> Multiset "stream"
  | "fopen" | "fclose" -> Alloc "fd"
  | "bm_new" | "bm_free" | "list_new" | "list_free" | "matrix_alloc"
  | "matrix_free" ->
      Alloc "heap"
  | "pkt_dequeue" -> Cursor "packet-queue"
  | "db_read" -> Cursor "db"
  | "fread" -> Cursor "stream"
  | "rng_int" | "rng_range" | "rng_float" | "rng_gauss" -> Rng
  | "rng_reseed" | "cache_put" -> Overwrite
  | other -> Opaque other

(** One abstract-store access of a member. *)
type access = {
  aloc : Effects.location;
  awrite : bool;
  aclass : opclass;
  avalue : Ir.operand option;
      (** the stored operand, when the write is a [Store_global] whose
          value the differencing engine can reason about symbolically *)
}

let accesses_of_instr effects ~fname (i : Ir.instr) : access list =
  let rw = Effects.instr_rw effects ~fname i in
  let wclass, wvalue =
    match i.Ir.desc with
    | Ir.Store_global (_, v) -> (Overwrite, Some v)
    | Ir.Store_index _ -> (Opaque "array element write", None)
    | Ir.Call { callee; _ } -> (
        match Commset_runtime.Builtins.find callee with
        | Some _ -> (builtin_class callee, None)
        | None -> (Opaque (Printf.sprintf "call to '%s'" callee), None))
    | _ -> (Opaque "write", None)
  in
  let reads =
    Effects.LocSet.fold
      (fun l acc ->
        { aloc = l; awrite = false; aclass = Opaque "read"; avalue = None } :: acc)
      rw.Effects.reads []
  in
  Effects.LocSet.fold
    (fun l acc -> { aloc = l; awrite = true; aclass = wclass; avalue = wvalue } :: acc)
    rw.Effects.writes reads

(** Summary of one commset member: its identity, owning function, the
    classified accesses of its body, and the raw footprint. *)
type t = {
  smember : Metadata.member;
  sowner : string;
  sacc : access list;
  srw : Effects.rw;
}

let instrs_of_member md (m : Metadata.member) : string * Ir.instr list =
  let prog = md.Metadata.prog in
  match m with
  | Metadata.Mregion (fname, rid) -> (
      match Ir.find_func prog fname with
      | None -> (fname, [])
      | Some f -> (fname, Metadata.region_instrs f rid))
  | Metadata.Mfun fname -> (
      match Ir.find_func prog fname with
      | None -> (fname, [])
      | Some f ->
          let acc = ref [] in
          Ir.iter_instrs f (fun _ i -> acc := i :: !acc);
          (fname, List.rev !acc))
  | Metadata.Mnamed (fname, bname) -> (
      match (Ir.find_func prog fname, Metadata.named_region md fname bname) with
      | Some f, Some r -> (fname, Metadata.region_instrs f r.Ir.rid)
      | _ -> (fname, []))

let of_member md (m : Metadata.member) : t =
  let effects = md.Metadata.effects in
  let fname, instrs = instrs_of_member md m in
  let sacc = List.concat_map (accesses_of_instr effects ~fname) instrs in
  let srw = Effects.instrs_rw effects ~fname instrs in
  { smember = m; sowner = fname; sacc; srw }

(** Does the member's summary mention [Lunknown] or an unprovenanced heap
    write, i.e. state the engines cannot attribute precisely? *)
let has_unanalyzable s =
  List.exists
    (fun a ->
      match a.aloc with
      | Effects.Lunknown -> true
      | Effects.Lheap (Effects.Sunknown) -> a.awrite
      | _ -> false)
    s.sacc
