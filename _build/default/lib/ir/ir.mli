(** Three-address intermediate representation.

    A function is a CFG of basic blocks over virtual registers.
    Commutative COMMSET regions are lowered at *whole-block* granularity:
    entering or leaving an annotated source block always starts a fresh
    basic block, so a region is a set of blocks with a unique entry.
    Every instruction and block records its enclosing region ids. *)

open Commset_support

type reg = int
type label = int

type const = Cint of int | Cfloat of float | Cbool of bool | Cstring of string

type operand = Reg of reg | Const of const

type ty = Commset_lang.Ast.ty
type binop = Commset_lang.Ast.binop
type unop = Commset_lang.Ast.unop

type instr_desc =
  | Move of reg * operand
  | Binop of binop * ty * reg * operand * operand
      (** [ty] is the operand type (int/float/bool/string) *)
  | Unop of unop * ty * reg * operand
  | Load_global of reg * string
  | Store_global of string * operand
  | Load_index of reg * operand * operand  (** dst, array, index *)
  | Store_index of operand * operand * operand  (** array, index, value *)
  | Call of { dst : reg option; callee : string; args : operand list; enabled : enable list }

(** A named block of [callee] enabled into commsets at this call site
    (the paper's COMMSETNAMEDARGADD). *)
and enable = { en_block : string; en_sets : (string * operand list) list }

(** An [enable] pragma as recorded during lowering, before its predicate
    actuals are evaluated at each call site. *)
type enable_spec = { es_block : string; es_sets : (string * Commset_lang.Ast.expr list) list }

type instr = {
  iid : int;  (** unique within the function *)
  desc : instr_desc;
  iloc : Loc.t;
  iregions : int list;  (** enclosing region ids, innermost first *)
}

type terminator = Jump of label | Branch of operand * label * label | Ret of operand option

type block = {
  label : label;
  mutable instrs : instr list;
  mutable term : terminator;
  mutable bregions : int list;  (** region ids this block belongs to, innermost first *)
}

(** One lowered commutative region (an annotated source block): its
    commset references with actual operands evaluated at region entry
    ("SELF" references are materialized singleton self sets). *)
type region = {
  rid : int;
  rname : string option;  (** name when this is a COMMSETNAMEDBLOCK *)
  rrefs : (string * operand list) list;
  rentry : label;
  rloc : Loc.t;
}

type func = {
  fname : string;
  fparams : (ty * string) list;
  mutable param_regs : reg list;
  fret : ty;
  entry : label;
  blocks : (label, block) Hashtbl.t;
  mutable block_order : label list;  (** creation order; entry first *)
  reg_names : (reg, string) Hashtbl.t;  (** debug names for local-variable registers *)
  reg_types : (reg, ty) Hashtbl.t;
  mutable n_regs : int;
  mutable n_labels : int;
  mutable n_instrs : int;
  mutable fregions : region list;  (** creation order *)
  mutable loop_locals : (reg * Loc.t) list;
      (** array-typed locals declared inside loops; input to privatization *)
}

type program = {
  funcs : (string, func) Hashtbl.t;
  func_order : string list;
  prog_globals : (string * ty * const) list;  (** name, type, initial value *)
  source : Commset_lang.Ast.program;  (** the typed AST this was lowered from *)
}

(* accessors *)
val block : func -> label -> block
val blocks_in_order : func -> block list
val find_func : program -> string -> func option
val iter_instrs : func -> (block -> instr -> unit) -> unit
val instr_defs : instr -> reg list
val operand_uses : operand -> reg list
val instr_uses : instr -> reg list
val term_uses : terminator -> reg list
val successors : block -> label list
val innermost_region : instr -> int option
val find_region : func -> int -> region option
val callee_of : instr -> string option

(* printing *)
val const_to_string : const -> string
val operand_to_string : func -> operand -> string
val pp_instr : func -> Format.formatter -> instr -> unit
val pp_terminator : func -> Format.formatter -> terminator -> unit
val pp_func : Format.formatter -> func -> unit
val func_to_string : func -> string
