lib/workloads/registry.ml: Eclat Em3d Geti Hmmer Kmeans List Md5sum Potrace Url Workload
