(** Static commutativity checking by symbolic differencing.

    For each pair of members of each commset (a member against itself
    for Self sets, distinct members for Group sets) the checker runs the
    two interleavings [A;B] and [B;A] over the abstract store of
    {!Abstore} and keeps the structured *difference residue* per
    iteration fact the set's predicate admits — the same admission
    machinery as Algorithm 1 (see {!Commset_core.Dep_analysis}): a
    scenario where the predicate symbolically evaluates to [false]
    cannot arise at runtime and is not checked. The residue folds into
    a verdict: all-[Agree] proves exact store equality, [Benign]-only
    residues prove commutativity modulo the paper's observation
    equivalence (handle renaming, exchanged draws), an [Opaque] atom
    degrades to [Unknown], and a provable divergence is only reported as
    [Refuted] once a concrete witness (a pair of iteration numbers
    satisfying the predicate and leaving different stores) is found.

    Beyond induction-variable affine classification, operands are
    chased structurally through unique definitions: results of
    allocating builtins executed once per iteration become per-iteration
    *fresh* pseudo-IVs (distinct across iterations, stable within one),
    and injective constructions ([int_to_string], concatenation with a
    fixed prefix/suffix) become {!S.Sinj} values — both feed the keyed
    disjointness reasoning of {!Abstore}. *)

module Ir = Commset_ir.Ir
module A = Commset_analysis
module S = A.Symexec
module Effects = A.Effects
module Metadata = Commset_core.Metadata
module Value = Commset_runtime.Value
module Concrete_eval = Commset_runtime.Concrete_eval

(* per-target-function structural view for the freshness/deep chase *)
type target_view = {
  tv_func : Ir.func;
  tv_dom : A.Dominance.t;
  tv_own : Ir.label list;  (** loop blocks belonging to no deeper loop *)
  tv_defs : (Ir.reg, (Ir.label * Ir.instr) list) Hashtbl.t;
}

type ctx = {
  md : Metadata.t;
  prog : Ir.program;
  target_fname : string;  (** the hot-loop function, where induction facts live *)
  loop : A.Loops.loop;  (** the hot loop itself; induction facts hold only inside *)
  induction : A.Induction.t;
  view : target_view option;
  syms : (string * int, int) Hashtbl.t;
  mutable next_sym : int;
}

let build_view prog ~target_fname ~(loop : A.Loops.loop) =
  match Ir.find_func prog target_fname with
  | None -> None
  | Some f ->
      let cfg = A.Cfg.of_func f in
      let dom = A.Dominance.compute cfg in
      let loops = A.Loops.compute cfg dom in
      let own =
        match A.Loops.find_by_header loops loop.A.Loops.header with
        | Some l -> A.Loops.own_blocks loops l
        | None -> []
      in
      let defs = Hashtbl.create 64 in
      Ir.iter_instrs f (fun b i ->
          List.iter
            (fun r ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt defs r) in
              Hashtbl.replace defs r ((b.Ir.label, i) :: prev))
            (Ir.instr_defs i));
      Some { tv_func = f; tv_dom = dom; tv_own = own; tv_defs = defs }

let create ~md ~target_fname ~loop ~induction =
  {
    md;
    prog = md.Metadata.prog;
    target_fname;
    loop;
    induction;
    view = build_view md.Metadata.prog ~target_fname ~loop;
    syms = Hashtbl.create 64;
    next_sym = 0;
  }

(* Induction classification is only meaningful for registers used inside
   the target loop; everywhere else every register is opaque. *)
let classifiable ctx ~fname ~label =
  fname = ctx.target_fname
  && match label with Some l -> A.Loops.in_loop ctx.loop l | None -> false

(* A stable symbol per (function, register): the same register yields the
   same symbol wherever it is mentioned, so invariant operands compare
   equal across sides. *)
let intern ctx fname r =
  match Hashtbl.find_opt ctx.syms (fname, r) with
  | Some id -> id
  | None ->
      let id = ctx.next_sym in
      ctx.next_sym <- id + 1;
      Hashtbl.add ctx.syms (fname, r) id;
      id

(* ---- structural chase: freshness and injectivity -------------------- *)

(* Is register [r] a per-iteration fresh allocation handle as observed
   from [site]? Exactly one definition is an allocating builtin call
   whose block sits in the target loop (in no deeper loop) and dominates
   the site; every other definition either lies outside the loop (it
   runs at most once, before) or dominates the allocation (it is
   overwritten each iteration before the site reads the register). Then
   two instances from distinct iterations observe handles from distinct
   dynamic allocations — provably unequal — while instances of one
   iteration share the handle. *)
let fresh_alloc ctx ~site r : int option =
  match ctx.view with
  | None -> None
  | Some v -> (
      let defs = Option.value ~default:[] (Hashtbl.find_opt v.tv_defs r) in
      (* a [Move] from a register whose unique definition is an allocating
         call is an allocating definition by proxy: lowering routes call
         results through a temporary ([fd = fopen(..)] becomes
         [t = fopen(..); fd = t]) *)
      let rec alloc_iid depth (i : Ir.instr) =
        match i.Ir.desc with
        | Ir.Call { callee; _ } -> (
            match Commset_runtime.Builtins.lookup_spec callee with
            | Some spec -> if spec.Effects.bs_allocates then Some i.Ir.iid else None
            | None -> None)
        | Ir.Move (_, Ir.Reg r') when depth > 0 -> (
            match Hashtbl.find_opt v.tv_defs r' with
            | Some [ (_, d) ] -> alloc_iid (depth - 1) d
            | _ -> None)
        | _ -> None
      in
      let allocating i = alloc_iid 3 i <> None in
      match List.partition (fun (_, i) -> allocating i) defs with
      | [ (alloc_label, alloc_instr) ], others
        when List.mem alloc_label v.tv_own
             && alloc_label <> site
             && A.Dominance.dominates v.tv_dom alloc_label site
             && List.for_all
                  (fun (l, _) ->
                    (not (A.Loops.in_loop ctx.loop l))
                    || (l <> alloc_label
                       && A.Dominance.dominates v.tv_dom l alloc_label))
                  others ->
          alloc_iid 3 alloc_instr
      | _ -> None)

let chase_depth = 6

(* Symbolic value of an operand, chasing unique in-function definitions
   for structure the affine classifier cannot see. [label] is the block
   of the member site the operand is observed from. *)
let rec sval_of_operand ?(depth = chase_depth) ctx side ~fname ~label
    (op : Ir.operand) : S.sval =
  match op with
  | Ir.Const (Ir.Cint n) -> S.const_int n
  | Ir.Const (Ir.Cbool b) -> S.Sbool (if b then S.True else S.False)
  | Ir.Const _ -> S.Stop
  | Ir.Reg r ->
      if not (classifiable ctx ~fname ~label) then S.Ssym (intern ctx fname r, side)
      else (
        match A.Induction.classify ctx.induction op with
        | A.Induction.Affine _ as c ->
            S.sval_of_classification side c ~sym_id:(intern ctx fname r)
        | A.Induction.Invariant ->
            S.Ssym (intern ctx fname r, S.Side1) (* same on both sides *)
        | A.Induction.Unknown -> (
            let site = Option.get label in
            match fresh_alloc ctx ~site r with
            | Some iid ->
                (* pseudo-IV: equal within an iteration, distinct across *)
                S.Sint { iv_id = -2 - iid; side; mul = 1; add = 0 }
            | None -> (
                match chase_def ctx r with
                | Some i when depth > 0 -> (
                    let recur o =
                      sval_of_operand ~depth:(depth - 1) ctx side ~fname ~label o
                    in
                    match i.Ir.desc with
                    | Ir.Move (_, o) -> recur o
                    | Ir.Call { callee = "int_to_string"; args = [ a ]; _ } ->
                        S.Sinj ("int_to_string", recur a)
                    | Ir.Binop (Commset_lang.Ast.Add, Commset_lang.Ast.Tstring, _, a, b)
                      -> (
                        match (a, b) with
                        | Ir.Const (Ir.Cstring s), x -> S.Sinj ("pre:" ^ s, recur x)
                        | x, Ir.Const (Ir.Cstring s) -> S.Sinj ("suf:" ^ s, recur x)
                        | _ -> S.Ssym (intern ctx fname r, side))
                    | _ -> S.Ssym (intern ctx fname r, side))
                | _ -> S.Ssym (intern ctx fname r, side))))

(* the unique in-function definition of a target-frame register *)
and chase_def ctx r =
  match ctx.view with
  | None -> None
  | Some v -> (
      match Hashtbl.find_opt v.tv_defs r with
      | Some [ (_, i) ] -> Some i
      | _ -> None)

(** An invocation site of a member: the function whose registers the
    predicate actuals live in, those actual operands for one set, and
    the block the site sits in. *)
type site = {
  site_fn : string;
  site_label : Ir.label option;
  site_actuals : Ir.operand list;
}

let region_of f rid = List.find_opt (fun r -> r.Ir.rid = rid) f.Ir.fregions

(* Every place a member can be invoked as a dynamic instance of [sname],
   with the actual operands bound to the set's predicate there. *)
let sites ctx sname (m : Metadata.member) : site list =
  let prog = ctx.prog in
  let call_sites ~callee pick =
    List.concat_map
      (fun caller_name ->
        match Ir.find_func prog caller_name with
        | None -> []
        | Some caller ->
            let acc = ref [] in
            Ir.iter_instrs caller (fun b i ->
                match i.Ir.desc with
                | Ir.Call { callee = c; args; enabled; _ } when c = callee -> (
                    match pick ~args ~enabled with
                    | Some actuals ->
                        acc :=
                          {
                            site_fn = caller_name;
                            site_label = Some b.Ir.label;
                            site_actuals = actuals;
                          }
                          :: !acc
                    | None -> ())
                | _ -> ());
            List.rev !acc)
      prog.Ir.func_order
  in
  match m with
  | Metadata.Mregion (fname, rid) -> (
      match Ir.find_func prog fname with
      | None -> []
      | Some f -> (
          match region_of f rid with
          | None -> []
          | Some r -> (
              let entry = Some r.Ir.rentry in
              match List.assoc_opt sname r.Ir.rrefs with
              | Some ops ->
                  [ { site_fn = fname; site_label = entry; site_actuals = ops } ]
              | None ->
                  (* membership without a recorded reference (materialized
                     SELF): one site with no predicate actuals *)
                  [ { site_fn = fname; site_label = entry; site_actuals = [] } ])))
  | Metadata.Mfun fname -> (
      match List.assoc_opt sname (Metadata.interface_refs ctx.md fname) with
      | None -> []
      | Some idxs ->
          call_sites ~callee:fname (fun ~args ~enabled:_ ->
              match List.map (fun i -> List.nth_opt args i) idxs with
              | picked when List.for_all Option.is_some picked ->
                  Some (List.filter_map Fun.id picked)
              | _ -> None))
  | Metadata.Mnamed (fname, bname) ->
      call_sites ~callee:fname (fun ~args:_ ~enabled ->
          List.find_map
            (fun (e : Ir.enable) ->
              if e.Ir.en_block = bname then List.assoc_opt sname e.Ir.en_sets
              else None)
            enabled)

(* Is the (fact, site-pair) scenario admitted, i.e. can the predicate
   possibly hold for two such instances? No predicate admits everything. *)
let scenario_admitted ctx (p : Metadata.predicate option) fact (s1 : site) (s2 : site) =
  match p with
  | None -> true
  | Some p ->
      if
        List.length s1.site_actuals <> List.length p.Metadata.params1
        || List.length s2.site_actuals <> List.length p.Metadata.params2
      then true (* arity mismatch: stay conservative, check the pair *)
      else
        let sv1 =
          List.map
            (sval_of_operand ctx S.Side1 ~fname:s1.site_fn ~label:s1.site_label)
            s1.site_actuals
        and sv2 =
          List.map
            (sval_of_operand ctx S.Side2 ~fname:s2.site_fn ~label:s2.site_label)
            s2.site_actuals
        in
        let env =
          S.bind_params ~params1:p.Metadata.params1 ~params2:p.Metadata.params2
            ~actuals1:sv1 ~actuals2:sv2
        in
        S.eval fact env p.Metadata.body <> S.Sbool S.False

(* The block a member's body starts in, for the loop-membership gate. *)
let member_label md (m : Metadata.member) =
  match m with
  | Metadata.Mregion (fname, rid) -> (
      match Ir.find_func md.Metadata.prog fname with
      | Some f -> Option.map (fun r -> r.Ir.rentry) (region_of f rid)
      | None -> None)
  | Metadata.Mnamed (fname, bname) ->
      Option.map (fun r -> r.Ir.rentry) (Metadata.named_region md fname bname)
  | Metadata.Mfun _ -> None

(* Classified writes of a member summary, with stored values and keys
   bound to one side of the symbolic domain. *)
let writes_of_summary ctx side (s : Summary.t) : Abstore.write list =
  let label = member_label ctx.md s.Summary.smember in
  let sval op = sval_of_operand ctx side ~fname:s.Summary.sowner ~label op in
  List.filter_map
    (fun (a : Summary.access) ->
      if not a.Summary.awrite then None
      else
        Some
          {
            Abstore.wloc = a.Summary.aloc;
            wclass = a.Summary.aclass;
            wvalue = Option.map sval a.Summary.avalue;
            wkey = Option.map sval a.Summary.akey;
          })
    s.Summary.sacc

(* Keyed reads of a member summary, bound to one side. *)
let reads_of_summary ctx side (s : Summary.t) : Abstore.read list =
  let label = member_label ctx.md s.Summary.smember in
  let sval op = sval_of_operand ctx side ~fname:s.Summary.sowner ~label op in
  List.filter_map
    (fun (a : Summary.access) ->
      if a.Summary.awrite then None
      else
        Some { Abstore.rdloc = a.Summary.aloc; rdkey = Option.map sval a.Summary.akey })
    s.Summary.sacc

(* ---- concrete witness search -------------------------------------- *)

let witness_bound = 8

(* Concrete integer value of a classified operand at iteration [n];
   [None] when the operand cannot be concretized. *)
let concretize ctx ~fname ~label op n : Value.t option =
  match op with
  | Ir.Const c -> Some (Value.of_const c)
  | Ir.Reg _ when not (classifiable ctx ~fname ~label) -> None
  | Ir.Reg _ -> (
      match A.Induction.classify ctx.induction op with
      | A.Induction.Affine { mul; add; _ } -> Some (Value.Vint ((mul * n) + add))
      | A.Induction.Invariant -> Some (Value.Vint 0)
      | A.Induction.Unknown -> None)

let predicate_holds_concretely (p : Metadata.predicate option) (s1 : site) (s2 : site)
    ctx ~n1 ~n2 =
  match p with
  | None -> Some true
  | Some p -> (
      let conc fname label n ops =
        List.map (fun op -> concretize ctx ~fname ~label op n) ops
      in
      let a1 = conc s1.site_fn s1.site_label n1 s1.site_actuals
      and a2 = conc s2.site_fn s2.site_label n2 s2.site_actuals in
      if List.exists Option.is_none a1 || List.exists Option.is_none a2 then None
      else
        let a1 = List.filter_map Fun.id a1 and a2 = List.filter_map Fun.id a2 in
        if
          List.length a1 <> List.length p.Metadata.params1
          || List.length a2 <> List.length p.Metadata.params2
        then None
        else
          try
            Some
              (Concrete_eval.predicate_holds ~params1:p.Metadata.params1
                 ~params2:p.Metadata.params2 ~actuals1:a1 ~actuals2:a2
                 p.Metadata.body)
          with _ -> None)

(* Concrete final value of an affine stored sval at iteration [n].
   Pseudo-IV values (fresh handles) are not concretizable: their
   divergence is real but the handle values are not iteration numbers. *)
let eval_sval_at (v : S.sval) n =
  match v with
  | S.Sint { iv_id; mul; add; _ } when iv_id >= -1 -> Some ((mul * n) + add)
  | _ -> None

(* A provable divergence becomes a refutation only with a concrete
   witness: two iteration numbers the predicate admits whose stored
   values actually differ. *)
let find_witness ctx (p : Metadata.predicate option) (d : Residue.divergence)
    (s1 : site) (s2 : site) : string option =
  let result = ref None in
  (try
     for n1 = 0 to witness_bound - 1 do
       for n2 = 0 to witness_bound - 1 do
         if n1 <> n2 && !result = None then
           match predicate_holds_concretely p s1 s2 ctx ~n1 ~n2 with
           | Some true -> (
               match (eval_sval_at d.Residue.dv1 n1, eval_sval_at d.Residue.dv2 n2) with
               | Some vba, Some vab when vba <> vab ->
                   result :=
                     Some
                       (Printf.sprintf
                          "instances at iterations i=%d and i=%d are admitted by \
                           the predicate, yet order A;B leaves %s = %d while \
                           order B;A leaves %d"
                          n1 n2 (Abstore.loc_str d.Residue.dloc) vab vba);
                   raise Exit
               | _ -> ())
           | _ -> ()
       done
     done
   with Exit -> ());
  !result

(* ---- pair verdict -------------------------------------------------- *)

let facts = [ S.Same_iteration; S.Distinct_iterations ]

(* Fold one admitted fact's residue into a verdict. *)
let verdict_of_residue ctx (p : Metadata.predicate option) (res : Residue.t) sa sb :
    Verdict.t =
  match Residue.worst res with
  | Residue.Agree -> Verdict.Proved (Residue.describe res)
  | Residue.Benign ->
      Verdict.Proved
        (Printf.sprintf "commutes modulo observation equivalence: %s"
           (Residue.describe res))
  | Residue.Opaque -> Verdict.Unknown (Residue.describe res)
  | Residue.Diverge d -> (
      match find_witness ctx p d sa sb with
      | Some detail ->
          Verdict.Refuted { Verdict.cx_source = Verdict.Static; cx_detail = detail }
      | None ->
          Verdict.Unknown
            (Printf.sprintf
               "final stores differ symbolically at %s but no concrete witness \
                was found"
               (Abstore.loc_str d.Residue.dloc)))

(** Verdict and per-fact residues for one member pair of one set. *)
let check_pair_res ctx (info : Metadata.set_info) m1 m2 :
    Verdict.t * (S.iteration_fact * Residue.t) list =
  let md = ctx.md in
  let s1 = Summary.of_member md m1 in
  let s2 = if m1 = m2 then s1 else Summary.of_member md m2 in
  if not (Effects.conflict s1.Summary.srw s2.Summary.srw) then
    (Verdict.Proved "disjoint memory footprints", [])
  else if Summary.has_unanalyzable s1 || Summary.has_unanalyzable s2 then
    (Verdict.Unknown "member touches unanalyzable state (heap or unknown locations)", [])
  else
    let sites1 = sites ctx info.Metadata.sname m1 in
    let sites2 = if m1 = m2 then sites1 else sites ctx info.Metadata.sname m2 in
    if sites1 = [] || sites2 = [] then (Verdict.Proved "member is never invoked", [])
    else
      (* facts admitted by at least one site pair, with a witnessing pair *)
      let admitted =
        List.filter_map
          (fun fact ->
            let cross =
              List.concat_map (fun a -> List.map (fun b -> (a, b)) sites2) sites1
            in
            match
              List.find_opt
                (fun (a, b) -> scenario_admitted ctx info.Metadata.predicate fact a b)
                cross
            with
            | Some (a, b) -> Some (fact, a, b)
            | None -> None)
          facts
      in
      if admitted = [] then
        (Verdict.Proved "predicate excludes every pair of concurrent instances", [])
      else
        let reads1 = reads_of_summary ctx S.Side1 s1
        and reads2 = reads_of_summary ctx S.Side2 s2 in
        let writes1 = writes_of_summary ctx S.Side1 s1
        and writes2 = writes_of_summary ctx S.Side2 s2 in
        List.fold_left
          (fun (acc, residues) (fact, sa, sb) ->
            let res = Abstore.diff fact ~reads1 ~writes1 ~reads2 ~writes2 in
            let v = verdict_of_residue ctx info.Metadata.predicate res sa sb in
            (Verdict.join acc v, residues @ [ (fact, res) ]))
          (Verdict.Proved "no admitted scenario diverges", [])
          admitted

let check_pair ctx info m1 m2 : Verdict.t = fst (check_pair_res ctx info m1 m2)

(* ---- set & report enumeration -------------------------------------- *)

let pairs_of_set md (info : Metadata.set_info) :
    (Metadata.member * Metadata.member * bool) list =
  let members = Metadata.members_of md info.Metadata.sname in
  match info.Metadata.kind with
  | Metadata.Self_set -> List.map (fun m -> (m, m, true)) members
  | Metadata.Group_set ->
      let rec pairs = function
        | [] -> []
        | m :: rest -> List.map (fun m' -> (m, m', false)) rest @ pairs rest
      in
      pairs members

let run ctx : Verdict.report =
  let rpairs =
    List.concat_map
      (fun (info : Metadata.set_info) ->
        List.map
          (fun (m1, m2, pself) ->
            let pverdict, pres = check_pair_res ctx info m1 m2 in
            {
              Verdict.pset = info.Metadata.sname;
              pm1 = m1;
              pm2 = m2;
              pself;
              pverdict;
              pres;
              ptrials = 0;
            })
          (pairs_of_set ctx.md info))
      (Metadata.sets_in_rank_order ctx.md)
  in
  { Verdict.rpairs }
