(** Metrics registry; see the interface for the contract. *)

type counter = int Atomic.t

type gauge = float Atomic.t

type histogram = {
  h_buckets : int Atomic.t array;  (** 64 log₂ buckets *)
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
}

type metric =
  | Mcounter of counter
  | Mgauge of gauge
  | Mhist of histogram

let registry : (string, metric * string) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let find_or_create name doc make classify =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (m, _) -> (
          match classify m with
          | Some v -> v
          | None -> invalid_arg ("Metrics: '" ^ name ^ "' registered with another kind"))
      | None ->
          let v, m = make () in
          Hashtbl.replace registry name (m, doc);
          v)

let counter ?(doc = "") name : counter =
  find_or_create name doc
    (fun () ->
      let c = Atomic.make 0 in
      (c, Mcounter c))
    (function Mcounter c -> Some c | _ -> None)

let incr c = ignore (Atomic.fetch_and_add c 1)
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c

let gauge ?(doc = "") name : gauge =
  find_or_create name doc
    (fun () ->
      let g = Atomic.make 0. in
      (g, Mgauge g))
    (function Mgauge g -> Some g | _ -> None)

let rec gauge_add g v =
  let cur = Atomic.get g in
  if not (Atomic.compare_and_set g cur (cur +. v)) then gauge_add g v

let gauge_set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let n_buckets = 64

let histogram ?(doc = "") name : histogram =
  find_or_create name doc
    (fun () ->
      let h =
        {
          h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0.;
        }
      in
      (h, Mhist h))
    (function Mhist h -> Some h | _ -> None)

(* bucket i covers [2^(i-32), 2^(i-31)): frexp v = (m, e) with v = m·2^e,
   0.5 <= m < 1, so the bucket index is e + 31 *)
let bucket_of v =
  if v <= 0. then 0
  else
    let _, e = Float.frexp v in
    max 0 (min (n_buckets - 1) (e + 31))

let observe h v =
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  gauge_add h.h_sum v

let hist_count h = Atomic.get h.h_count
let hist_sum h = Atomic.get h.h_sum

(* ------------------------------------------------------------------ *)
(* Dumps                                                               *)
(* ------------------------------------------------------------------ *)

let sorted_entries () =
  Mutex.lock registry_lock;
  let entries = Hashtbl.fold (fun name (m, doc) acc -> (name, m, doc) :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) entries

let snapshot () =
  List.concat_map
    (fun (name, m, _) ->
      match m with
      | Mcounter c -> [ (name, float_of_int (Atomic.get c)) ]
      | Mgauge g -> [ (name, Atomic.get g) ]
      | Mhist h ->
          [
            (name ^ ".count", float_of_int (Atomic.get h.h_count));
            (name ^ ".sum", Atomic.get h.h_sum);
          ])
    (sorted_entries ())

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* a float rendered as a syntactically valid JSON number *)
let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let to_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{ \"metrics\": [";
  List.iteri
    (fun i (name, m, doc) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n  { \"name\": \"";
      Buffer.add_string buf (json_escape name);
      Buffer.add_string buf "\"";
      if doc <> "" then begin
        Buffer.add_string buf ", \"doc\": \"";
        Buffer.add_string buf (json_escape doc);
        Buffer.add_string buf "\""
      end;
      (match m with
      | Mcounter c ->
          Buffer.add_string buf
            (Printf.sprintf ", \"kind\": \"counter\", \"value\": %d" (Atomic.get c))
      | Mgauge g ->
          Buffer.add_string buf
            (Printf.sprintf ", \"kind\": \"gauge\", \"value\": %s" (json_float (Atomic.get g)))
      | Mhist h ->
          Buffer.add_string buf
            (Printf.sprintf ", \"kind\": \"histogram\", \"count\": %d, \"sum\": %s"
               (Atomic.get h.h_count)
               (json_float (Atomic.get h.h_sum)));
          Buffer.add_string buf ", \"buckets\": { ";
          let first = ref true in
          Array.iteri
            (fun i b ->
              let n = Atomic.get b in
              if n > 0 then begin
                if not !first then Buffer.add_string buf ", ";
                first := false;
                Buffer.add_string buf (Printf.sprintf "\"%d\": %d" (i - 32) n)
              end)
            h.h_buckets;
          Buffer.add_string buf " }");
      Buffer.add_string buf " }")
    (sorted_entries ());
  Buffer.add_string buf "\n] }\n";
  Buffer.contents buf

let to_text () =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%-40s %s\n" name (json_float v)))
    (snapshot ());
  Buffer.contents buf

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter
    (fun _ (m, _) ->
      match m with
      | Mcounter c -> Atomic.set c 0
      | Mgauge g -> Atomic.set g 0.
      | Mhist h ->
          Array.iter (fun b -> Atomic.set b 0) h.h_buckets;
          Atomic.set h.h_count 0;
          Atomic.set h.h_sum 0.)
    registry;
  Mutex.unlock registry_lock
