(** The full evaluation engine: compiles every workload (and its
    annotation variants), simulates every applicable parallelization plan
    across thread counts, and produces the data behind the paper's
    Table 2 and Figure 6. *)

module P = Commset_pipeline.Pipeline
module T = Commset_transforms
module W = Commset_workloads.Workload
module Registry = Commset_workloads.Registry
open Commset_support

type variant_eval = {
  v_name : string;  (** "" for the primary source *)
  v_comp : P.t;
  v_runs8 : P.run list;  (** all plans at 8 threads, best first *)
  v_sweep : (string * (int * float) list) list;
}

type bench_eval = {
  be_workload : W.t;
  be_primary : variant_eval;
  be_variants : variant_eval list;
  be_best : P.run;  (** best COMMSET plan over all variants, 8 threads *)
  be_best_noncomm : P.run option;  (** best non-COMMSET plan, 8 threads *)
}

let eval_variant ?(sweep = true) ~name ~setup source : variant_eval =
  let v_comp = P.compile ~name ~setup source in
  let v_runs8 = P.evaluate v_comp ~threads:8 in
  (* the 8-thread runs feed the sweep as precomputed results, so that
     configuration is simulated exactly once *)
  let v_sweep =
    if sweep then P.sweep v_comp ~max_threads:8 ~precomputed:[ (8, v_runs8) ] else []
  in
  { v_name = ""; v_comp; v_runs8; v_sweep }

let evaluate_workload ?(sweep = true) (w : W.t) : bench_eval =
  (* the primary source and its annotation variants compile and simulate
     independently; fan them out over the domain pool *)
  let primary, variants =
    match
      Pool.parmap
        (fun (vn, name, src) ->
          let ve = eval_variant ~sweep ~name ~setup:w.W.setup src in
          { ve with v_name = vn })
        (("", w.W.wname, w.W.source)
        :: List.map
             (fun (vn, src) -> (vn, w.W.wname ^ "/" ^ vn, src))
             w.W.variants)
    with
    | primary :: variants -> ({ primary with v_name = "" }, variants)
    | [] -> assert false
  in
  (* Table 2's "best" reflects the primary annotation choice; the extra
     variants (deterministic md5sum, single-file potrace, dynamic geti)
     appear in the Figure 6 curves and extension sections instead *)
  let all_runs = primary.v_runs8 in
  let comm_runs = List.filter (fun r -> r.P.plan.T.Plan.uses_commset) all_runs in
  let noncomm_runs =
    List.filter (fun r -> not r.P.plan.T.Plan.uses_commset) all_runs
  in
  let best_of = function
    | [] -> None
    | runs -> Some (List.fold_left (fun a b -> if b.P.speedup > a.P.speedup then b else a) (List.hd runs) runs)
  in
  let be_best =
    match best_of comm_runs with
    | Some r -> r
    | None -> Diag.error "workload '%s' has no COMMSET-enabled plan" w.W.wname
  in
  { be_workload = w; be_primary = primary; be_variants = variants; be_best;
    be_best_noncomm = best_of noncomm_runs }

let evaluate_all ?(sweep = true) () : bench_eval list =
  Pool.parmap (evaluate_workload ~sweep) Registry.all

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let strip_comm_prefix label =
  if String.length label > 5 && String.sub label 0 5 = "Comm-" then
    String.sub label 5 (String.length label - 5)
  else label

(* "Comm-PS-DSWP[DOALL:6|S] (seq-sync) + Spin" -> "PS-DSWP + Spin" *)
let scheme_of_run (r : P.run) =
  strip_comm_prefix r.P.plan.T.Plan.series
  |> String.split_on_char '('
  |> List.hd |> String.trim
  |> fun base ->
  let variant = T.Plan.sync_variant_to_string r.P.plan.T.Plan.variant in
  if String.length base >= 1 && String.contains base '+' then base
  else base ^ " + " ^ variant

let table2_rows (evals : bench_eval list) =
  List.map
    (fun be ->
      let w = be.be_workload in
      let c = be.be_primary.v_comp in
      [
        w.W.paper_name;
        Printf.sprintf "%.0f%%" (100. *. P.loop_fraction c);
        string_of_int (P.count_annotations w.W.source);
        string_of_int (P.sloc w.W.source);
        String.concat "," (P.features_used c);
        String.concat "," (P.applicable_transforms c);
        Printf.sprintf "%.1fx" be.be_best.P.speedup;
        scheme_of_run be.be_best;
        Printf.sprintf "%.1fx" w.W.paper_best_speedup;
        w.W.paper_best_scheme;
      ])
    evals

let render_table2 evals =
  Ascii.table
    ~header:
      [
        "Program"; "Loop"; "Annots"; "SLOC"; "Features"; "Transforms"; "Best"; "Scheme";
        "Paper"; "Paper scheme";
      ]
    (table2_rows evals)

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)
(* ------------------------------------------------------------------ *)

(* keep the chart readable: top COMMSET series, best non-COMMSET series *)
let figure6_series (be : bench_eval) =
  let tag v_name series =
    if v_name = "" then series else Printf.sprintf "%s [%s]" series v_name
  in
  let all =
    List.concat_map
      (fun v -> List.map (fun (s, pts) -> (tag v.v_name s, pts)) v.v_sweep)
      (be.be_primary :: be.be_variants)
  in
  let at8 pts = Option.value ~default:0. (List.assoc_opt 8 pts) in
  let is_comm (name, _) =
    String.length name >= 5 && String.sub name 0 5 = "Comm-"
  in
  let comm = List.filter is_comm all |> List.sort (fun a b -> compare (at8 (snd b)) (at8 (snd a))) in
  let noncomm =
    List.filter (fun s -> not (is_comm s)) all
    |> List.sort (fun a b -> compare (at8 (snd b)) (at8 (snd a)))
  in
  Listx.take 4 comm @ Listx.take 1 noncomm

let render_figure6 (be : bench_eval) =
  let series = figure6_series be in
  Printf.sprintf "Figure 6: %s (paper best: %.1fx via %s)\n%s"
    be.be_workload.W.paper_name be.be_workload.W.paper_best_speedup
    be.be_workload.W.paper_best_scheme
    (Ascii.chart ~max_threads:8 series)

let geomean values =
  match values with
  | [] -> 0.
  | _ ->
      exp (List.fold_left (fun acc v -> acc +. log (max 1e-9 v)) 0. values
           /. float_of_int (List.length values))

(** Figure 6i: geomean of the best COMMSET and best non-COMMSET speedups
    per thread count. *)
let geomean_series (evals : bench_eval list) =
  let best_at ~comm be t =
    let candidates =
      List.concat_map
        (fun v ->
          List.filter_map
            (fun (name, pts) ->
              let is_comm = String.length name >= 5 && String.sub name 0 5 = "Comm-" in
              if is_comm = comm then List.assoc_opt t pts else None)
            v.v_sweep)
        (be.be_primary :: be.be_variants)
    in
    (* with no applicable plan at this thread count the program simply
       runs sequentially *)
    List.fold_left max 1.0 candidates
  in
  let series comm =
    List.init 8 (fun i ->
        let t = i + 1 in
        (t, geomean (List.map (fun be -> best_at ~comm be t) evals)))
  in
  [ ("Comm (geomean of best)", series true); ("Best non-CommSet (geomean)", series false) ]

let render_geomean evals =
  "Figure 6i: geomean speedup across the eight programs\n"
  ^ Ascii.chart ~max_threads:8 (geomean_series evals)

(* ------------------------------------------------------------------ *)
(* Figures 2 and 3 (md5sum PDG and timelines)                          *)
(* ------------------------------------------------------------------ *)

let md5sum_comp () =
  let w = Registry.find "md5sum" |> Option.get in
  P.compile ~name:"md5sum" ~setup:w.W.setup w.W.source

let md5sum_det_comp () =
  let w = Registry.find "md5sum" |> Option.get in
  let det = List.assoc "deterministic" w.W.variants in
  P.compile ~name:"md5sum-det" ~setup:w.W.setup det

let render_figure2 ?comp () =
  let c = match comp with Some c -> c | None -> md5sum_comp () in
  let pdg = c.P.target.P.pdg in
  Printf.sprintf
    "Figure 2: PDG for md5sum's main loop with COMMSET annotations\n(%d edges annotated uco, %d ico)\n\n%s"
    c.P.target.P.n_uco c.P.target.P.n_ico
    (Fmt.str "%a" Commset_pdg.Pdg.pp pdg)

let render_timeline ?(limit = 40) (r : P.run) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%s: %.2fx\n" r.P.plan.T.Plan.label r.P.speedup);
  Array.iteri
    (fun tid intervals ->
      Buffer.add_string buf (Printf.sprintf "  thread %d: " tid);
      List.iteri
        (fun i (start, stop, tag) ->
          if i < limit then
            Buffer.add_string buf
              (Printf.sprintf "[%.0f-%.0f %s] " start stop tag))
        intervals;
      Buffer.add_char buf '\n')
    r.P.timelines;
  Buffer.contents buf

let render_figure3 ?comp ?comp_det () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "Figure 3: md5sum execution timelines (sequential vs PS-DSWP vs DOALL)\n\n";
  let c = match comp with Some c -> c | None -> md5sum_comp () in
  Buffer.add_string buf
    (Printf.sprintf "Sequential: %.0f cycles (baseline, 1.00x)\n\n"
       c.P.trace.Commset_runtime.Trace.seq_total);
  (match P.best ~record_timeline:true c ~threads:8 with
  | Some r -> Buffer.add_string buf (render_timeline ~limit:6 r)
  | None -> ());
  let cd = match comp_det with Some c -> c | None -> md5sum_det_comp () in
  (match P.best ~record_timeline:true cd ~threads:8 with
  | Some r ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (render_timeline ~limit:6 r)
  | None -> ());
  Buffer.contents buf
