lib/analysis/reaching.mli: Cfg Commset_ir Loops
