lib/support/gensym.mli:
