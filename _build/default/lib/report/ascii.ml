(** Plain-text table and chart rendering for the evaluation reports. *)

let rstrip s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = ' ' do
    decr n
  done;
  String.sub s 0 !n

(** Render a table: header row plus data rows, columns padded to fit. *)
let table ~header rows =
  let all = header :: rows in
  let n_cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init n_cols width in
  let render_row row =
    rstrip
      (String.concat "  "
         (List.mapi
            (fun c w ->
              let cell = Option.value ~default:"" (List.nth_opt row c) in
              cell ^ String.make (max 0 (w - String.length cell)) ' ')
            widths))
  in
  let sep = rstrip (String.concat "  " (List.map (fun w -> String.make w '-') widths)) in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)

(** Render speedup-vs-threads curves as an ASCII chart.
    [series] is a list of [(name, [(threads, speedup); ...])]. *)
let chart ?(height = 12) ~max_threads (series : (string * (int * float) list) list) =
  let max_y =
    List.fold_left
      (fun acc (_, pts) -> List.fold_left (fun a (_, s) -> max a s) acc pts)
      1.0 series
  in
  let max_y = ceil (max_y +. 0.5) in
  let marks = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&'; '$'; '~' |] in
  let col_of_thread t = (t - 1) * 6 in
  let width = col_of_thread max_threads + 2 in
  let grid = Array.make_matrix (height + 1) width ' ' in
  List.iteri
    (fun si (_, pts) ->
      let mark = marks.(si mod Array.length marks) in
      List.iter
        (fun (t, s) ->
          if t >= 1 && t <= max_threads then begin
            let row =
              height - int_of_float (Float.round (s /. max_y *. float_of_int height))
            in
            let row = max 0 (min height row) in
            grid.(row).(col_of_thread t) <- mark
          end)
        pts)
    series;
  let buf = Buffer.create 1024 in
  for r = 0 to height do
    let y = float_of_int (height - r) /. float_of_int height *. max_y in
    Buffer.add_string buf (Printf.sprintf "%5.1fx |" y);
    Buffer.add_string buf (rstrip (String.init width (fun c -> grid.(r).(c))));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf ("       +" ^ String.make width '-' ^ "\n");
  Buffer.add_string buf "        ";
  Buffer.add_string buf
    (rstrip
       (String.concat ""
          (List.init max_threads (fun i ->
               let s = string_of_int (i + 1) in
               s ^ String.make (max 0 (6 - String.length s)) ' '))));
  Buffer.add_string buf "  threads\n";
  List.iteri
    (fun si (name, _) ->
      Buffer.add_string buf
        (Printf.sprintf "   %c = %s\n" marks.(si mod Array.length marks) name))
    series;
  Buffer.contents buf
