(** Well-definedness and well-formedness checks (paper §3.1, §4.2).

    - Members must have structured, local control flow: a region's blocks
      may only branch among themselves plus a single external exit; a
      [return] (or a [break]/[continue] whose parent structure lies
      outside) escapes the region and is rejected.
    - No transitive call from one member of a commset to another member of
      the same commset.
    - The COMMSET graph (edge [S1 -> S2] when a member of [S1]
      transitively calls into a member of [S2]) must be acyclic. Together
      with rank-ordered lock acquisition and the acyclic pipeline queues
      this guarantees deadlock freedom (§4.6).
    - Commset predicates must be pure. *)

module Ir = Commset_ir.Ir
module A = Commset_analysis
open Commset_support

(* blocks belonging to a region *)
let region_blocks (f : Ir.func) rid =
  List.filter (fun b -> List.mem rid b.Ir.bregions) (Ir.blocks_in_order f)

let check_region_control_flow (f : Ir.func) (r : Ir.region) =
  let blocks = region_blocks f r.Ir.rid in
  let labels = List.map (fun b -> b.Ir.label) blocks in
  let external_targets =
    Listx.uniq
      (List.concat_map
         (fun b ->
           match b.Ir.term with
           | Ir.Ret _ ->
               Diag.error ~loc:r.Ir.rloc ~code:"CS010"
                 "commutative block in '%s' contains a 'return': members must have local, \
                  structured control flow"
                 f.Ir.fname
           | _ -> List.filter (fun s -> not (List.mem s labels)) (Ir.successors b))
         blocks)
  in
  match external_targets with
  | [] | [ _ ] -> ()
  | _ ->
      Diag.error ~loc:r.Ir.rloc ~code:"CS010"
        "commutative block in '%s' has %d exits (a 'break' or 'continue' escapes it): members \
         must have local, structured control flow"
        f.Ir.fname (List.length external_targets)

(* the function whose body contains a member's code *)
let owner_function (m : Metadata.member) =
  match m with Metadata.Mregion (f, _) | Metadata.Mfun f | Metadata.Mnamed (f, _) -> f

(* direct user-function callees from within a member's code *)
let direct_callees (t : Metadata.t) (m : Metadata.member) =
  let prog = t.Metadata.prog in
  let callees_of_instrs instrs =
    List.filter_map
      (fun i ->
        match Ir.callee_of i with
        | Some c when Hashtbl.mem prog.Ir.funcs c -> Some c
        | _ -> None)
      instrs
  in
  match m with
  | Metadata.Mregion (fname, rid) ->
      let f = Hashtbl.find prog.Ir.funcs fname in
      callees_of_instrs (Metadata.region_instrs f rid)
  | Metadata.Mfun fname ->
      let f = Hashtbl.find prog.Ir.funcs fname in
      let all = ref [] in
      Ir.iter_instrs f (fun _ i -> all := i :: !all);
      callees_of_instrs (List.rev !all)
  | Metadata.Mnamed (fname, bname) -> (
      match Metadata.named_region t fname bname with
      | Some r ->
          let f = Hashtbl.find prog.Ir.funcs fname in
          callees_of_instrs (Metadata.region_instrs f r.Ir.rid)
      | None -> [])

(* functions transitively reachable from a member's direct callees *)
let reachable_from (cg : A.Callgraph.t) (t : Metadata.t) (m : Metadata.member) =
  Listx.uniq (List.concat_map (fun c -> A.Callgraph.reachable cg c) (direct_callees t m))

let check_no_intra_set_calls (cg : A.Callgraph.t) (t : Metadata.t) =
  List.iter
    (fun (info : Metadata.set_info) ->
      let ms = Metadata.members_of t info.Metadata.sname in
      List.iter
        (fun m1 ->
          let reach = reachable_from cg t m1 in
          List.iter
            (fun m2 ->
              let target_reached =
                match m2 with
                | Metadata.Mfun f2 -> List.mem f2 reach
                | Metadata.Mregion (f2, _) | Metadata.Mnamed (f2, _) ->
                    (* function-granularity approximation: reaching the
                       enclosing function may reach the member block *)
                    m1 <> m2 && List.mem f2 reach
              in
              if target_reached then
                Diag.error ~code:"CS011"
                  "commset '%s': member %s transitively calls member %s of the same set \
                   (ambiguous commutativity and a deadlock risk)"
                  info.Metadata.sname
                  (Metadata.member_to_string m1)
                  (Metadata.member_to_string m2))
            ms)
        ms)
    (Metadata.sets_in_rank_order t)

let check_commset_graph_acyclic (cg : A.Callgraph.t) (t : Metadata.t) =
  let g = Digraph.create () in
  let sets = Metadata.sets_in_rank_order t in
  List.iter (fun (s : Metadata.set_info) -> Digraph.add_node g s.Metadata.sname) sets;
  List.iter
    (fun (s1 : Metadata.set_info) ->
      let ms1 = Metadata.members_of t s1.Metadata.sname in
      List.iter
        (fun m1 ->
          let reach = reachable_from cg t m1 in
          List.iter
            (fun (s2 : Metadata.set_info) ->
              if s1.Metadata.sname <> s2.Metadata.sname then
                let ms2 = Metadata.members_of t s2.Metadata.sname in
                if List.exists (fun m2 -> List.mem (owner_function m2) reach) ms2 then
                  Digraph.add_edge g s1.Metadata.sname s2.Metadata.sname)
            sets)
        ms1)
    sets;
  if Digraph.has_cycle g then
    Diag.error ~code:"CS012"
      "the COMMSET graph has a cycle: commutative members call into each other's commsets, \
       which would risk deadlock";
  g

let check_predicates_pure (t : Metadata.t) ~lookup =
  List.iter
    (fun (s : Metadata.set_info) ->
      match s.Metadata.predicate with
      | Some p ->
          A.Purity.check_predicate ~effects:t.Metadata.effects ~lookup
            ~set_name:s.Metadata.sname p.Metadata.body
      | None -> ())
    (Metadata.sets_in_rank_order t)

(** Run every check; raises [Diag.Error] on the first violation. Returns
    the COMMSET graph for inspection. *)
let check (t : Metadata.t) ~lookup : string Digraph.t =
  let prog = t.Metadata.prog in
  List.iter
    (fun fname ->
      let f = Hashtbl.find prog.Ir.funcs fname in
      List.iter (fun r -> check_region_control_flow f r) f.Ir.fregions)
    prog.Ir.func_order;
  let cg = A.Callgraph.build prog in
  check_no_intra_set_calls cg t;
  let g = check_commset_graph_acyclic cg t in
  check_predicates_pure t ~lookup;
  g
