(** Calibrated cycle-burner; see the interface. *)

module Clock = Commset_obs.Clock
module Costmodel = Commset_runtime.Costmodel

(* xorshift mix over a local int: no memory traffic, no allocation, and
   Sys.opaque_identity keeps the loop from being folded away *)
let kernel seed n =
  let x = ref seed in
  for _ = 1 to n do
    x := !x lxor (!x lsl 13);
    x := !x lxor (!x lsr 7);
    x := !x lxor (!x lsl 17)
  done;
  !x

(* 0 = not yet calibrated *)
let rate_cell = Atomic.make 0.0

let iters_per_ns () =
  let r = Atomic.get rate_cell in
  if r > 0. then r
  else begin
    (* a few milliseconds of kernel, timed on the monotonic clock; the
       max of two reps guards against a preemption mid-measurement
       understating the rate *)
    let n = 1 lsl 22 in
    let rep () =
      let t0 = Clock.now_ns () in
      ignore (Sys.opaque_identity (kernel (Sys.opaque_identity 0x2545F4914F6CDD1D) n));
      float_of_int n /. Float.max 1.0 (Clock.now_ns () -. t0)
    in
    let r = Float.max (rep ()) (rep ()) in
    Atomic.set rate_cell r;
    r
  end

type t = {
  ns_per_cycle : float;
  rate : float;  (** kernel iterations per nanosecond *)
  mutable debt_ns : float;
  mutable sink : int;  (** consumes kernel results *)
}

(* batch debts below ~64 ns: calling the kernel for a handful of
   iterations would measure call overhead, not work *)
let batch_ns = 64.

let create () =
  let ns = Costmodel.exec_ns_per_cycle () in
  {
    ns_per_cycle = ns;
    rate = (if ns > 0. then iters_per_ns () else 0.);
    debt_ns = 0.;
    sink = 0;
  }

let burn t cycles =
  if t.ns_per_cycle > 0. && cycles > 0. then begin
    t.debt_ns <- t.debt_ns +. (cycles *. t.ns_per_cycle);
    if t.debt_ns >= batch_ns then begin
      let iters = int_of_float (t.debt_ns *. t.rate) in
      t.debt_ns <- t.debt_ns -. (float_of_int iters /. t.rate);
      t.sink <- t.sink lxor kernel (t.sink lor 1) iters
    end
  end
