lib/report/table1.ml: Ascii List
