(** Strongly connected components of a PDG and the DAG-SCC used by the
    DSWP family of transforms (paper §4.4–4.5). The edge list is a
    parameter so callers can pass {!Pdg.effective_edges} (commutativity
    annotations applied). *)

open Commset_support

type t = {
  comps : int list array;  (** component id -> member node ids *)
  comp_of : int array;  (** node id -> component id *)
  dag_succs : int list array;  (** component DAG edges *)
  topo : int list;  (** component ids in topological order *)
  carried_internal : bool array;
      (** component id -> has a loop-carried edge among its own members *)
}

let compute (pdg : Pdg.t) ~(edges : Pdg.edge list) : t =
  let g = Digraph.create () in
  Array.iter (fun n -> Digraph.add_node g n.Pdg.nid) pdg.Pdg.nodes;
  List.iter (fun e -> Digraph.add_edge g e.Pdg.esrc e.Pdg.edst) edges;
  let comps_list = Digraph.sccs g in
  let n_nodes = Array.length pdg.Pdg.nodes in
  let n_comps = List.length comps_list in
  let comps = Array.make n_comps [] in
  let comp_of = Array.make n_nodes (-1) in
  (* Tarjan emits reverse topological order; re-number so that component
     ids follow topological order (sources first) *)
  List.iteri
    (fun rev_i members ->
      let cid = n_comps - 1 - rev_i in
      comps.(cid) <- members;
      List.iter (fun nid -> comp_of.(nid) <- cid) members)
    comps_list;
  let dag = Array.make n_comps [] in
  List.iter
    (fun e ->
      let a = comp_of.(e.Pdg.esrc) and b = comp_of.(e.Pdg.edst) in
      if a <> b && not (List.mem b dag.(a)) then dag.(a) <- b :: dag.(a))
    edges;
  let carried_internal = Array.make n_comps false in
  List.iter
    (fun e ->
      if e.Pdg.carried && comp_of.(e.Pdg.esrc) = comp_of.(e.Pdg.edst) then
        carried_internal.(comp_of.(e.Pdg.esrc)) <- true)
    edges;
  (* verify the renumbering is topological; Tarjan guarantees it *)
  let topo = List.init n_comps (fun i -> i) in
  Array.iteri (fun a succs -> List.iter (fun b -> assert (a < b || a = b)) succs) dag;
  { comps; comp_of; dag_succs = dag; topo; carried_internal }

let n_components t = Array.length t.comps
let members t cid = t.comps.(cid)
let component_of t nid = t.comp_of.(nid)
let has_carried_dep t cid = t.carried_internal.(cid)

let component_weight (pdg : Pdg.t) t cid =
  Listx.sum_float (fun nid -> pdg.Pdg.nodes.(nid).Pdg.weight) t.comps.(cid)

(** Components whose members are all loop-control nodes. *)
let is_loop_control (pdg : Pdg.t) t cid =
  List.for_all (fun nid -> pdg.Pdg.nodes.(nid).Pdg.loop_control) t.comps.(cid)
