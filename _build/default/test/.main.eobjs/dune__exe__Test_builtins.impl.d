test/test_builtins.ml: Alcotest Commset_analysis Commset_ir Commset_lang Commset_runtime List
