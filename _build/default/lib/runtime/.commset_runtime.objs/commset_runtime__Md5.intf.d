lib/runtime/md5.mli: Bytes
