(** Privatization of loop-local arrays: an array is iteration-private
    when every iteration works on a fresh allocation that never escapes
    the iteration, so conflicts on it cannot be loop-carried. *)

module Ir = Commset_ir.Ir

type t

val compute : Effects.t -> Effects.lookup -> Ir.func -> Loops.loop -> t
val is_private : t -> Ir.reg -> bool

(** Is a conflict on this location exempt from loop-carried treatment? *)
val location_is_private : t -> Effects.location -> bool
