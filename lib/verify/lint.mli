(** The annotation lint framework: registered passes over the COMMSET
    metadata and verification report, emitting structured diagnostics
    with stable [CS...] codes. *)

module Metadata = Commset_core.Metadata
module Diag = Commset_support.Diag

type ctx = {
  md : Metadata.t;
  report : Verdict.report option;  (** verification verdicts, when computed *)
  strict : bool;  (** also flag pairs that could not be proved (CS002) *)
}

type pass = { pcode : string; pname : string; prun : ctx -> unit }

(** The registry, in code order. *)
val passes : pass list

(** Run every registered pass and return the accumulated diagnostics. *)
val run_all : ctx -> Diag.diagnostic list
