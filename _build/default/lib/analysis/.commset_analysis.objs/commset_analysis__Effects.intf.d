lib/analysis/effects.mli: Commset_ir Format Hashtbl Set
