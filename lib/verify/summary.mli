(** Per-member effect summaries with operation classes, the input to the
    abstract-store differencing of {!Abstore}. Calls to user-defined
    functions are summarized transitively; structurally recognized
    patterns (read-modify-write array accumulation, deterministic global
    self-updates) upgrade otherwise-opaque writes; accesses to
    partitioned resources carry the partitioning *key* operand. *)

module Ir = Commset_ir.Ir
module Effects = Commset_analysis.Effects
module Metadata = Commset_core.Metadata

(** How a write combines with a concurrent write to the same location. *)
type opclass =
  | Accum of string  (** commutative-associative accumulation *)
  | Multiset of string  (** append to an order-insensitive sink *)
  | Alloc of string  (** allocator bump; equal up to handle renaming *)
  | Cursor of string  (** shared-cursor advance; drawn values exchanged *)
  | Rng  (** pseudo-random stream draw *)
  | Advance of string
      (** deterministic self-update [g = f(g)] of one global: both
          orders leave [f(f(g))], per-instance results exchanged *)
  | Overwrite  (** last-writer-wins store *)
  | Opaque of string  (** no algebraic structure known *)

val opclass_to_string : opclass -> string
val builtin_class : string -> opclass

(** Resources of a builtin partitioned by one of its arguments, as
    [(resource names, key argument index)]. *)
val builtin_key : string -> (string list * int) option

(** One abstract-store access of a member. *)
type access = {
  aloc : Effects.location;
  awrite : bool;
  aclass : opclass;
  avalue : Ir.operand option;  (** stored operand of a [Store_global] *)
  akey : Ir.operand option;
      (** sub-resource key, in the summarized function's own frame *)
}

(** Classified accesses of one instruction of [fname]; [visited] guards
    recursion through user-defined callees. *)
val accesses_of_instr :
  Metadata.t -> fname:string -> visited:string list -> Ir.instr -> access list

(** Summary of one commset member. *)
type t = {
  smember : Metadata.member;
  sowner : string;  (** the function whose registers the body reads *)
  sacc : access list;
  srw : Effects.rw;
}

val instrs_of_member : Metadata.t -> Metadata.member -> string * Ir.instr list
val of_member : Metadata.t -> Metadata.member -> t

(** The summary mentions state the engines cannot attribute precisely. *)
val has_unanalyzable : t -> bool
