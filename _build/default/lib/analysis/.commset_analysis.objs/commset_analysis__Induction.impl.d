lib/analysis/induction.ml: Cfg Commset_ir Commset_lang Dominance Hashtbl List Loops Option
