(** True parallel execution of the prepared program on OCaml 5 domains;
    see the interface for the architecture and DESIGN.md §14 for the
    ordering model. *)

module Plan = Commset_transforms.Plan
module Emit = Commset_transforms.Emit
module Pdg = Commset_pdg.Pdg
module Effects = Commset_analysis.Effects
module Ir = Commset_ir.Ir
module R = Commset_runtime
module Machine = Commset_runtime.Machine
module Value = Commset_runtime.Value
module Trace = Commset_runtime.Trace
module Precompile = Commset_runtime.Precompile
module Builtins = Commset_runtime.Builtins
module Costmodel = Commset_runtime.Costmodel
module Sim = Commset_runtime.Sim
module Recorder = Commset_obs.Recorder
module Metrics = Commset_obs.Metrics
module Clock = Commset_obs.Clock
module Attrib = Commset_obs.Attrib
module Diag = Commset_support.Diag

let src_log = Logs.Src.create "commset.realexec" ~doc:"Real prepared-program execution"

module Log = (val Logs.src_log src_log : Logs.LOG)

let m_iterations =
  Metrics.counter ~doc:"iterations dispatched to real worker domains" "exec.real_iterations"

let m_frontier_waits =
  Metrics.counter ~doc:"blocking episodes on the iteration frontier" "exec.frontier_waits"

let m_buffered =
  Metrics.counter ~doc:"commutative updates buffered per-domain" "exec.buffered_updates"

let m_worker_steps =
  Metrics.counter ~doc:"instructions retired on worker domains" "exec.worker_steps"

let g_merge = Metrics.gauge ~doc:"merge-phase seconds (last real run)" "exec.merge_s"

(* last-run attribution totals, for the metrics dumps *)
let g_attr_dispatch =
  Metrics.gauge ~doc:"attributed dispatch-queue wait ns (last real run)"
    "exec.attrib.dispatch_wait_ns"

let g_attr_lock =
  Metrics.gauge ~doc:"attributed commset-lock wait ns (last real run)" "exec.attrib.lock_wait_ns"

let g_attr_frontier =
  Metrics.gauge ~doc:"attributed frontier wait ns (last real run)" "exec.attrib.frontier_wait_ns"

let g_attr_builtin =
  Metrics.gauge ~doc:"attributed builtin ns (last real run)" "exec.attrib.builtin_ns"

let g_attr_compute =
  Metrics.gauge ~doc:"attributed compute ns (last real run)" "exec.attrib.compute_ns"

type result = {
  r_outputs : string list;
  r_wall_par_s : float;
  r_iterations : int;
  r_frontier_waits : int;
  r_lock_contended : int;
  r_queue_full_waits : int;
  r_queue_empty_waits : int;
  r_buffered : int;
  r_steps : int;
  r_merge_s : float;
  r_engine : string;
  r_codegen_fallback : string option;
  r_codegen_cache_hit : bool;
  r_codegen_compile_s : float;
  r_attrib : Attrib.summary option;
}

exception Aborted

(* ------------------------------------------------------------------ *)
(* Builtin classification                                              *)
(* ------------------------------------------------------------------ *)

(* Builtins whose calls are ordered events regardless of annotation:
   their result value depends on every earlier call (a shared cursor or
   seed), so running them out of iteration order changes program values,
   not just effect interleaving. The commset annotations only promise
   that the *final state* is order-free — the values each call returns
   are not. *)
let always_ordered = [ "rng_int"; "rng_range"; "rng_float"; "rng_gauss"; "rng_reseed"; "db_read"; "pkt_dequeue" ]

(* Bitmap ops are ordered only on shared handles; a handle allocated in
   the current iteration is private to its worker and runs lock-free. *)
let is_ordered_builtin name =
  List.mem name always_ordered || name = "bm_get" || name = "bm_set"

(* Machine-mutating builtins that declare no abstract resource (their
   effects are annotation-invisible by design) but mutate shared
   hashtables; they must still be serialized at the machine level. *)
let mutexed_by_name name = name = "graph_set_neighbor" || name = "graph_set_weight"

(* Simulated cost charged for a buffered call (the impl runs later, on
   the coordinator, where its cost is not charged to any worker). *)
let buffered_cost name argv =
  match name with
  | "stat_add" -> 16.
  | "stat_note_max" -> 14.
  | "hist_add" -> Costmodel.hist_cost
  | "vec_push" -> Costmodel.collection_op_cost
  | "log_write" ->
      let len =
        match argv with Value.Vstring s :: _ -> String.length s | _ -> 0
      in
      Costmodel.log_write_base +. (Costmodel.per_byte *. float_of_int len)
  | _ -> 10.

(* Merge per-worker buffers (each newest-first) into replay order. The
   stable sort keeps each worker's chronological order among equal keys,
   so for iteration-keyed update buffers — where every iteration belongs
   to exactly one worker — the result is the exact sequential order, no
   matter how iterations were distributed over workers. *)
let merge_order ~compare (bufs : ('k * 'a) list array) : ('k * 'a) list =
  Array.to_list bufs
  |> List.concat_map List.rev
  |> List.stable_sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Static ordering analysis                                            *)
(* ------------------------------------------------------------------ *)

type ordering = {
  o_ordered : bool array;  (** nid -> entry/exit participates in the frontier *)
  o_entry_await : bool array;  (** nid -> await the frontier at node entry *)
  o_node_locks : int array array;  (** nid -> commset lock indices, rank order *)
  o_expected : int array;  (** iteration -> expected ordered-event count *)
  o_counting : bool;  (** false: release only at iteration end (uncounted mode) *)
}

let shared_mem_loc = function
  | Effects.Lglobal _ | Effects.Lheap _ | Effects.Lunknown -> true
  | Effects.Lext _ -> false

let analyse ~(plan : Plan.t) ~(pdg : Pdg.t) ~(trace : Trace.t)
    ~(emitted : Emit.t) ~(rt : Precompile.rtarget) : ordering =
  let nnodes = Array.length pdg.Pdg.nodes in
  let ordered = Array.make nnodes false in
  let mark (e : Pdg.edge) =
    if e.Pdg.esrc < nnodes then ordered.(e.Pdg.esrc) <- true;
    if e.Pdg.edst < nnodes then ordered.(e.Pdg.edst) <- true
  in
  (* carried memory dependences the transforms still see *)
  List.iter
    (fun (e : Pdg.edge) ->
      match e.Pdg.ekind with
      | Pdg.Kmem _ when e.Pdg.carried -> mark e
      | _ -> ())
    (Pdg.effective_edges pdg);
  (* carried dependences through shared memory stay ordered even when
     annotated commutative: the annotation promises final-state
     equivalence, but intermediate *values* read from globals or the
     heap feed later computation, so reordering them diverges outputs *)
  List.iter
    (fun (e : Pdg.edge) ->
      match e.Pdg.ekind with
      | Pdg.Kmem locs when e.Pdg.carried && List.exists shared_mem_loc locs -> mark e
      | _ -> ())
    (Pdg.edges pdg);
  (* the coordinator's backbone and loop control are the coordinator's
     business; workers re-execute them on private registers *)
  List.iter
    (fun iid ->
      match Pdg.node_of_instr pdg iid with
      | Some nid when nid < nnodes -> ordered.(nid) <- false
      | _ -> ())
    (Precompile.rtarget_backbone rt);
  Array.iter
    (fun (nd : Pdg.node) -> if nd.Pdg.loop_control then ordered.(nd.Pdg.nid) <- false)
    pdg.Pdg.nodes;
  (* commset lock indices per node, from the emitter's registry *)
  let lock_idx = Hashtbl.create 8 in
  Array.iteri
    (fun i (ls : Sim.lock_spec) ->
      let n = ls.Sim.lname in
      if String.length n > 3 && String.sub n 0 3 = "cs:" then
        Hashtbl.replace lock_idx (String.sub n 3 (String.length n - 3)) i)
    emitted.Emit.locks;
  let node_locks = Array.make nnodes [||] in
  Hashtbl.iter
    (fun nid names ->
      if nid >= 0 && nid < nnodes then
        node_locks.(nid) <-
          Array.of_list (List.filter_map (fun nm -> Hashtbl.find_opt lock_idx nm) names))
    plan.Plan.node_locks;
  (* nodes whose dynamic instances perform ordered builtin calls: if such
     a node also holds commset locks, entry must await the frontier
     *before* acquiring, or a lock holder blocked on the frontier
     deadlocks against an earlier iteration needing the same lock *)
  let node_ob = Array.make nnodes false in
  let expected = Array.make (Trace.n_iterations trace) 0 in
  let counting = ref true in
  Array.iteri
    (fun k it ->
      List.iter
        (fun (e : Trace.node_exec) ->
          let nid = e.Trace.nid in
          List.iter
            (fun atom ->
              match atom with
              | Trace.Abuiltin { bname; _ } when is_ordered_builtin bname ->
                  expected.(k) <- expected.(k) + 1;
                  if nid < nnodes then node_ob.(nid) <- true
              | _ -> ())
            (Trace.exec_atoms e);
          if nid < nnodes && ordered.(nid) then
            match Trace.exec_actuals e with
            | [] ->
                (* a plain ordered instruction: its dynamic instance
                   count is unknowable from the trace, so the whole loop
                   releases the frontier only at iteration end *)
                counting := false
            | acts -> expected.(k) <- expected.(k) + List.length acts)
        (Trace.iteration_execs it))
    trace.Trace.iterations;
  let entry_await = Array.make nnodes false in
  for nid = 0 to nnodes - 1 do
    entry_await.(nid) <-
      ordered.(nid) || (Array.length node_locks.(nid) > 0 && node_ob.(nid))
  done;
  {
    o_ordered = ordered;
    o_entry_await = entry_await;
    o_node_locks = node_locks;
    o_expected = expected;
    o_counting = !counting;
  }

(* ------------------------------------------------------------------ *)
(* Output routing                                                      *)
(* ------------------------------------------------------------------ *)

(* Worker domains buffer output lines with monotonic timestamps; the
   coordinator emits directly. The key is per-domain, so one shared
   [machine.emit] closure routes correctly from every domain. *)
let out_key : (float * string) list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

let run ?(codegen = false) ?(attrib = true) ~(plan : Plan.t) ~(pdg : Pdg.t)
    ~(trace : Trace.t) ~(emitted : Emit.t) ~(prepared : Precompile.t)
    ~(setup : Machine.t -> unit) ~(jobs : int) () : (result, string) Stdlib.result =
  let loop = pdg.Pdg.loop in
  match
    Precompile.plan_real prepared ~fname:pdg.Pdg.func.Ir.fname
      ~header:loop.Commset_analysis.Loops.header
      ~latches:loop.Commset_analysis.Loops.latches ~body:loop.Commset_analysis.Loops.body
  with
  | Error why -> Error why
  | Ok rt ->
      (* compile the iteration body when asked; any failure degrades to
         the interpreted path with the reason surfaced in the result *)
      let cg, cg_fallback =
        if not codegen then (None, None)
        else
          let nid_of_iid iid =
            match Pdg.node_of_instr pdg iid with Some nid -> nid | None -> -1
          in
          match Commset_codegen.Codegen.prepare ~prepared ~rt ~nid_of_iid () with
          | Ok c ->
              Log.debug (fun m ->
                  m "plan '%s': codegen %s (key %s, %.3fs compile)" plan.Plan.label
                    (if c.Commset_codegen.Codegen.cg_cache_hit then "cache hit"
                     else "compiled")
                    (String.sub c.Commset_codegen.Codegen.cg_key 0 8)
                    c.Commset_codegen.Codegen.cg_compile_s);
              (Some c, None)
          | Error why ->
              Log.info (fun m ->
                  m "plan '%s': codegen fell back to interpreter: %s" plan.Plan.label
                    why);
              (None, Some why)
      in
      let ord = analyse ~plan ~pdg ~trace ~emitted ~rt in
      let program = Precompile.program prepared in
      let buffered =
        Effects.bufferable_updates program pdg.Pdg.func loop.Commset_analysis.Loops.body
      in
      let w = max 1 jobs in
      let n = Trace.n_iterations trace in
      Log.debug (fun m ->
          m "plan '%s': %d worker(s), %d traced iteration(s), %s frontier, %d buffered writer(s)"
            plan.Plan.label w n
            (if ord.o_counting then "counted" else "iteration-grained")
            (Hashtbl.length buffered));
      let machine = Machine.create () in
      setup machine;
      let ex = Precompile.executor ~machine prepared in
      machine.Machine.emit <-
        (fun s ->
          match Domain.DLS.get out_key with
          | Some buf -> buf := (Clock.now_ns (), s) :: !buf
          | None -> Machine.default_emit machine s);
      let locks = Locks.create emitted.Emit.locks in
      let machine_lock = Spin.lock_create () in
      let abort = Atomic.make false in
      let frontier = Atomic.make 0 in
      let released = Array.init n (fun _ -> Atomic.make false) in
      let release_iter k =
        if k >= 0 && k < n && not (Atomic.get released.(k)) then begin
          Atomic.set released.(k) true;
          let continue_ = ref true in
          while !continue_ do
            let f = Atomic.get frontier in
            if f < n && Atomic.get released.(f) then
              ignore (Atomic.compare_and_set frontier f (f + 1))
            else continue_ := false
          done
        end
      in
      let capacity = Atomic.get Costmodel.queue_capacity in
      let rings : (int * Value.t array) Spsc.t array =
        Array.init w (fun _ -> Spsc.create ~capacity)
      in
      (* per-worker mutable state, read by the coordinator after join *)
      let obufs = Array.init w (fun _ -> ref []) in
      let ubufs : (int * (string * Value.t list)) list ref array =
        Array.init w (fun _ -> ref [])
      in
      let errors : exn option ref array = Array.init w (fun _ -> ref None) in
      let wsteps = Array.make w 0 in
      let wcontended = Array.make w 0 in
      let wfrontier = Array.make w 0 in
      let wempty = Array.make w 0 in
      let wbuffered = Array.make w 0 in
      let full_waits = ref 0 in
      let ns = Costmodel.exec_ns_per_cycle () in
      (* attribution layer: per-worker accumulators, machine mutex as a
         pseudo-lock one past the commset lock table *)
      let lock_names = Array.map (fun (ls : Sim.lock_spec) -> ls.Sim.lname) emitted.Emit.locks in
      let machine_li = Array.length lock_names in
      let builtin_names =
        Array.of_list (List.map (fun (b : Builtins.t) -> b.Builtins.name) Builtins.all)
      in
      let att = Attrib.create ~enabled:attrib ~lock_names ~builtin_names ~jobs:w in
      let worker wi () =
        Recorder.with_span ~cat:"exec" "exec.real_worker" @@ fun () ->
        let aw = Attrib.worker att wi in
        let prof = Attrib.on aw in
        Domain.DLS.set out_key (Some obufs.(wi));
        let wst = Precompile.worker_state ex ~fuel:max_int in
        let ring = rings.(wi) in
        let burner = Burn.create () in
        let last_burned = ref 0. in
        let burn_to () =
          if ns > 0. then begin
            let t = Precompile.wstate_total wst in
            let d = t -. !last_burned in
            last_burned := t;
            if d > 0. then Burn.burn burner d
          end
        in
        let priv_bm : (int, Bytes.t) Hashtbl.t = Hashtbl.create 8 in
        let cur_k = ref 0 in
        let cur_nid = ref (-1) in
        let held : int list ref = ref [] in
        let ev = ref 0 in
        let await () =
          if Atomic.get frontier < !cur_k then begin
            wfrontier.(wi) <- wfrontier.(wi) + 1;
            let t0 = if prof then Clock.now_ns () else 0. in
            let b = Spin.backoff () in
            while Atomic.get frontier < !cur_k do
              if Atomic.get abort then raise Aborted;
              Spin.once b
            done;
            if prof then Attrib.add_frontier aw (Clock.now_ns () -. t0)
          end
        in
        let bump () =
          if ord.o_counting then begin
            ev := !ev + 1;
            if !cur_k < n && !ev >= ord.o_expected.(!cur_k) then release_iter !cur_k
          end
        in
        let exit_node () =
          (match !cur_nid with
          | -1 -> ()
          | nid ->
              (* release in reverse acquisition order *)
              List.iter (fun li -> Locks.release locks li) !held;
              held := [];
              if ord.o_ordered.(nid) then bump ());
          cur_nid := -1
        in
        let enter_node nid =
          if ord.o_entry_await.(nid) then await ();
          Array.iter
            (fun li ->
              if prof then begin
                let t0 = Clock.now_ns () in
                Locks.acquire locks li;
                Attrib.add_lock aw li (Clock.now_ns () -. t0)
              end
              else Locks.acquire locks li;
              held := li :: !held)
            ord.o_node_locks.(nid);
          cur_nid := nid
        in
        let on_instr (i : Ir.instr) =
          burn_to ();
          match Pdg.node_of_instr pdg i.Ir.iid with
          | Some nid when nid <> !cur_nid ->
              exit_node ();
              enter_node nid
          | Some _ -> ()
          | None -> exit_node ()
        in
        let with_mutex f =
          let on_contend () = wcontended.(wi) <- wcontended.(wi) + 1 in
          (if prof then begin
             let t0 = Clock.now_ns () in
             Spin.acquire ~on_contend machine_lock;
             Attrib.add_lock aw machine_li (Clock.now_ns () -. t0)
           end
           else Spin.acquire ~on_contend machine_lock);
          Fun.protect ~finally:(fun () -> Spin.release machine_lock) f
        in
        let bm_arg argv = match argv with Value.Vint h :: rest -> (h, rest) | _ -> (-1, []) in
        let builtin_raw (bi : Builtins.t) argv ~has_dst =
          let name = bi.Builtins.name in
          if Hashtbl.mem buffered name then begin
            ignore has_dst;
            ubufs.(wi) := (!cur_k, (name, argv)) :: !(ubufs.(wi));
            wbuffered.(wi) <- wbuffered.(wi) + 1;
            (Value.Vint 0, buffered_cost name argv)
          end
          else if name = "bm_set" || name = "bm_get" then begin
            let h, rest = bm_arg argv in
            match Hashtbl.find_opt priv_bm h with
            | Some bytes ->
                (* this worker allocated the handle this iteration: the
                   payload is private, no lock and no ordering needed *)
                let key = match rest with Value.Vint k :: _ -> k | _ -> -1 in
                let byte = key / 8 and bit = key mod 8 in
                if name = "bm_set" then begin
                  if byte < 0 || byte >= Bytes.length bytes then
                    Diag.error "runtime: bitmap key %d out of range" key;
                  Bytes.set bytes byte
                    (Char.chr (Char.code (Bytes.get bytes byte) lor (1 lsl bit)));
                  (Value.Vint 0, Costmodel.collection_op_cost)
                end
                else if byte < 0 || byte >= Bytes.length bytes then (Value.Vbool false, 8.)
                else
                  (Value.Vbool (Char.code (Bytes.get bytes byte) land (1 lsl bit) <> 0), 8.)
            | None ->
                burn_to ();
                await ();
                let r = with_mutex (fun () -> bi.Builtins.impl machine argv) in
                bump ();
                r
          end
          else if List.mem name always_ordered then begin
            burn_to ();
            await ();
            let r = with_mutex (fun () -> bi.Builtins.impl machine argv) in
            bump ();
            r
          end
          else if Builtins.resources bi <> [] || mutexed_by_name name then
            with_mutex (fun () ->
                let ((v, _) as r) = bi.Builtins.impl machine argv in
                (match name with
                | "bm_new" -> (
                    match v with
                    | Value.Vint id -> (
                        match Hashtbl.find_opt machine.Machine.bitmaps id with
                        | Some bytes -> Hashtbl.replace priv_bm id bytes
                        | None -> ())
                    | _ -> ())
                | "bm_free" -> (
                    match argv with
                    | Value.Vint id :: _ -> Hashtbl.remove priv_bm id
                    | _ -> ())
                | _ -> ());
                r)
          else bi.Builtins.impl machine argv
        in
        let builtin (bi : Builtins.t) argv ~has_dst =
          if not prof then builtin_raw bi argv ~has_dst
          else begin
            (* realize pending burn first so it lands in compute, then
               net out waits the builtin performs internally (frontier
               await, machine-mutex acquisition) — they are charged to
               their own causes *)
            burn_to ();
            let t0 = Clock.now_ns () in
            let w0 = Attrib.inner_waits aw in
            let ((_, cost) as r) = builtin_raw bi argv ~has_dst in
            let dt = Clock.now_ns () -. t0 -. (Attrib.inner_waits aw -. w0) in
            Attrib.add_builtin aw (Attrib.builtin_slot att bi.Builtins.name) ~ns:dt ~cost;
            r
          end
        in
        (* compiled-iteration context: the same node-transition and
           builtin machinery as the interpreted path, behind the ABI *)
        let cg_ctx =
          match cg with
          | None -> None
          | Some c ->
              Some
                ( c.Commset_codegen.Codegen.cg_fn,
                  {
                    Commset_codegen.Abi.cg_globals = Precompile.wstate_globals wst;
                    cg_gdefined = Precompile.wstate_gdefined wst;
                    cg_node =
                      (fun nid ->
                        burn_to ();
                        if nid <> !cur_nid then begin
                          exit_node ();
                          if nid >= 0 then enter_node nid
                        end);
                    cg_builtin = builtin;
                    cg_charge =
                      (fun ~steps ~cost ->
                        if prof then Attrib.charge_flush aw;
                        Precompile.wstate_charge wst ~steps ~cost);
                    cg_fuel_left = (fun () -> Precompile.wstate_fuel_left wst);
                  } )
        in
        let rec loop_items () =
          let item =
            match Spsc.try_pop ring with
            | Some it -> it
            | None ->
                wempty.(wi) <- wempty.(wi) + 1;
                let t0 = if prof then Clock.now_ns () else 0. in
                let b = Spin.backoff () in
                let rec wait () =
                  match Spsc.try_pop ring with
                  | Some it -> it
                  | None ->
                      if Atomic.get abort then raise Aborted;
                      Spin.once b;
                      wait ()
                in
                let it = wait () in
                if prof then Attrib.add_dispatch aw (Clock.now_ns () -. t0);
                it
          in
          let k, regs = item in
          if k >= 0 then begin
            if prof then Attrib.iter_begin aw (Clock.now_ns ());
            cur_k := k;
            ev := 0;
            cur_nid := -1;
            Hashtbl.reset priv_bm;
            (match cg_ctx with
            | Some (fn, ctx) -> fn ctx regs
            | None -> Precompile.run_iteration wst rt ~on_instr ~builtin regs);
            exit_node ();
            burn_to ();
            release_iter k;
            if prof then Attrib.iter_end aw (Clock.now_ns ());
            loop_items ()
          end
        in
        (try loop_items () with
        | Aborted -> ()
        | e ->
            (* free everything other domains could block on, then flag *)
            List.iter (fun li -> Locks.release locks li) !held;
            held := [];
            errors.(wi) := Some e;
            Atomic.set abort true;
            release_iter !cur_k);
        wsteps.(wi) <- max_int - Precompile.wstate_fuel_left wst;
        if prof then Attrib.set_charged aw (Precompile.wstate_total wst)
      in
      let domains = Array.init w (fun wi -> Domain.spawn (worker wi)) in
      let joined = ref false in
      let join_all () =
        if not !joined then begin
          joined := true;
          Array.iter Domain.join domains
        end
      in
      let first_error () =
        Array.fold_left
          (fun acc slot -> match acc with Some _ -> acc | None -> !slot)
          None errors
      in
      let dispatched = ref 0 in
      let finished = ref false in
      let merge_s = ref 0. in
      let prof_coord = Attrib.enabled att in
      let ring_push ring v =
        if not (Spsc.try_push ring v) then begin
          incr full_waits;
          let t0 = if prof_coord then Clock.now_ns () else 0. in
          let b = Spin.backoff () in
          while not (Spsc.try_push ring v) do
            if Atomic.get abort then begin
              join_all ();
              match first_error () with Some e -> raise e | None -> raise Aborted
            end;
            Spin.once b
          done;
          if prof_coord then Attrib.add_coord_dispatch att (Clock.now_ns () -. t0)
        end
      in
      let finish () =
        if not !finished then begin
          finished := true;
          Array.iter (fun r -> ring_push r (-1, [||])) rings;
          join_all ();
          (match first_error () with Some e -> raise e | None -> ());
          let t0 = Clock.now_ns () in
          Recorder.with_span ~cat:"exec" "exec.real_merge" (fun () ->
              (* replay buffered updates in iteration order: each
                 iteration belongs to exactly one worker and each worker
                 buffer is chronological, so a stable sort on the
                 iteration index reproduces the sequential update order
                 exactly — float accumulation order included *)
              let upds =
                merge_order ~compare:Int.compare (Array.map ( ! ) ubufs)
              in
              List.iter
                (fun (_, (name, argv)) ->
                  ignore ((Builtins.find_exn name).Builtins.impl machine argv))
                upds;
              (* worker output lines merge on the shared monotonic clock;
                 frontier-ordered emits carry ordered timestamps *)
              let outs =
                merge_order ~compare:Float.compare (Array.map ( ! ) obufs)
              in
              List.iter (fun (_, s) -> Machine.default_emit machine s) outs);
          merge_s := (Clock.now_ns () -. t0) /. 1e9
        end
      in
      (* inline fallback once the workers are retired (a re-entered
         target loop after the first exit): plain sequential execution *)
      let inline_wst = lazy (Precompile.worker_state ex ~fuel:max_int) in
      let on_iter k regs =
        if !finished then
          Precompile.run_iteration (Lazy.force inline_wst) rt ~on_instr:ignore
            ~builtin:(fun bi argv ~has_dst:_ -> bi.Builtins.impl machine argv)
            (Array.copy regs)
        else begin
          if k >= n then begin
            Atomic.set abort true;
            join_all ();
            Diag.error
              "real-exec: dispatched more iterations than the recorded trace (%d)" n
          end;
          incr dispatched;
          ring_push rings.(k mod w) (k, Array.copy regs)
        end
      in
      let burner = Burn.create () in
      let t0 = Clock.now_ns () in
      let coord_total =
        Fun.protect
          ~finally:(fun () ->
            if not !finished then begin
              Atomic.set abort true;
              join_all ()
            end)
          (fun () ->
            Recorder.with_span ~cat:"exec" "exec.real_coordinator" @@ fun () ->
            let t = Precompile.run_main_real ex rt ~on_iter ~on_loop_done:finish in
            finish ();
            t)
      in
      (* the coordinator's own charged cycles — prologue, loop control,
         epilogue — are serial work, realized like the workers' *)
      if ns > 0. then Burn.burn burner coord_total;
      let wall_par_s = (Clock.now_ns () -. t0) /. 1e9 in
      let sum a = Array.fold_left ( + ) 0 a in
      let steps = Precompile.steps ex + sum wsteps in
      let frontier_waits = sum wfrontier in
      let buffered_n = sum wbuffered in
      Metrics.add m_iterations !dispatched;
      Metrics.add m_frontier_waits frontier_waits;
      Metrics.add m_buffered buffered_n;
      Metrics.add m_worker_steps (sum wsteps);
      Metrics.gauge_set g_merge !merge_s;
      let attrib_summary =
        Attrib.summarize att ~coord_wall_ns:(wall_par_s *. 1e9) ~merge_ns:(!merge_s *. 1e9)
      in
      (match attrib_summary with
      | Some s ->
          Metrics.gauge_set g_attr_dispatch s.Attrib.a_dispatch_ns;
          Metrics.gauge_set g_attr_lock s.Attrib.a_lock_ns;
          Metrics.gauge_set g_attr_frontier s.Attrib.a_frontier_ns;
          Metrics.gauge_set g_attr_builtin s.Attrib.a_builtin_ns;
          Metrics.gauge_set g_attr_compute s.Attrib.a_compute_ns
      | None -> ());
      Log.info (fun m ->
          m "plan '%s': %d iteration(s) on %d worker(s), %.3f ms, %d frontier wait(s), %d buffered"
            plan.Plan.label !dispatched w (wall_par_s *. 1e3) frontier_waits buffered_n);
      Ok
        {
          r_outputs = Machine.outputs machine;
          r_wall_par_s = wall_par_s;
          r_iterations = !dispatched;
          r_frontier_waits = frontier_waits;
          r_lock_contended = Locks.contended_total locks + sum wcontended;
          r_queue_full_waits = !full_waits;
          r_queue_empty_waits = sum wempty;
          r_buffered = buffered_n;
          r_steps = steps;
          r_merge_s = !merge_s;
          r_engine = (match cg with Some _ -> "codegen" | None -> "real");
          r_codegen_fallback = cg_fallback;
          r_codegen_cache_hit =
            (match cg with
            | Some c -> c.Commset_codegen.Codegen.cg_cache_hit
            | None -> false);
          r_codegen_compile_s =
            (match cg with
            | Some c -> c.Commset_codegen.Codegen.cg_compile_s
            | None -> 0.);
          r_attrib = attrib_summary;
        }
