lib/workloads/hmmer.ml: Printf Workload
