(** Rendering of the commutativity sanitizer's verdict table, in plain
    text (one row per member pair) and as JSON for tooling. *)

module V = Commset_verify
module Verdict = V.Verdict
module Diag = Commset_support.Diag
module Loc = Commset_support.Loc

let verdict_cell = function
  | Verdict.Proved _ -> "proved"
  | Verdict.Unknown _ -> "unknown"
  | Verdict.Refuted _ -> "REFUTED"

let verdict_why = function
  | Verdict.Proved why | Verdict.Unknown why -> why
  | Verdict.Refuted cx ->
      Printf.sprintf "%s [%s]" cx.Verdict.cx_detail
        (Verdict.source_to_string cx.Verdict.cx_source)

let render (r : Verdict.report) : string =
  let rows =
    List.map
      (fun (p : Verdict.pair) ->
        [
          p.Verdict.pset;
          Verdict.pair_label p;
          verdict_cell p.Verdict.pverdict;
          string_of_int p.Verdict.ptrials;
          verdict_why p.Verdict.pverdict;
        ])
      r.Verdict.rpairs
  in
  let table =
    Ascii.table ~header:[ "commset"; "member pair"; "verdict"; "trials"; "why" ] rows
  in
  Printf.sprintf "%s\n%d pair(s): %d proved, %d unknown, %d refuted\n" table
    (List.length r.Verdict.rpairs)
    (Verdict.n_proved r) (Verdict.n_unknown r) (Verdict.n_refuted r)

(* ---- JSON ----------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_pair (p : Verdict.pair) =
  let source =
    match p.Verdict.pverdict with
    | Verdict.Refuted cx ->
        Printf.sprintf ",\"source\":\"%s\""
          (json_escape (Verdict.source_to_string cx.Verdict.cx_source))
    | _ -> ""
  in
  Printf.sprintf
    "{\"set\":\"%s\",\"pair\":\"%s\",\"verdict\":\"%s\",\"trials\":%d,\"why\":\"%s\"%s}"
    (json_escape p.Verdict.pset)
    (json_escape (Verdict.pair_label p))
    (json_escape (verdict_cell p.Verdict.pverdict))
    p.Verdict.ptrials
    (json_escape (verdict_why p.Verdict.pverdict))
    source

let json_of_diag (d : Diag.diagnostic) =
  let code = match d.Diag.code with Some c -> c | None -> "" in
  Printf.sprintf
    "{\"severity\":\"%s\",\"code\":\"%s\",\"loc\":\"%s\",\"message\":\"%s\"}"
    (match d.Diag.severity with
    | Diag.Error_sev -> "error"
    | Diag.Warning_sev -> "warning")
    (json_escape code)
    (json_escape (Format.asprintf "%a" Loc.pp d.Diag.loc))
    (json_escape d.Diag.message)

(** The whole lint outcome as one JSON object: verdicts plus diagnostics. *)
let render_json (r : Verdict.report) (diags : Diag.diagnostic list) : string =
  Printf.sprintf
    "{\"pairs\":[%s],\"diagnostics\":[%s],\"summary\":{\"proved\":%d,\"unknown\":%d,\"refuted\":%d}}"
    (String.concat "," (List.map json_of_pair r.Verdict.rpairs))
    (String.concat "," (List.map json_of_diag diags))
    (Verdict.n_proved r) (Verdict.n_unknown r) (Verdict.n_refuted r)
