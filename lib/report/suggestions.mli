(** Rendering of synthesized annotation suggestions ([commsetc suggest])
    in plain text and as JSON for tooling. *)

module Synth = Commset_synth.Synth

(** Plain-text report: predicted-speedup summary, one block of
    ready-to-paste pragma lines per suggestion (best first), and the
    CS015/CS016 notes. *)
val render : Synth.result -> string

(** The whole suggestion outcome as one JSON object; the schema is
    checked in CI against [ci/suggest-schema.json]. *)
val render_json : Synth.result -> string
