lib/runtime/costmodel.ml: Atomic Commset_ir Commset_lang
