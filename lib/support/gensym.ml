(** Deterministic fresh-name generation.

    Each [t] is an independent counter namespace, so separate compiler
    pipelines produce identical names for identical inputs — a property
    the golden tests rely on. The counter is atomic: a [t] shared across
    domains (e.g. by concurrent compiles fanned out by {!Pool}) never
    loses or duplicates a counter value. *)

type t = { prefix : string; next : int Atomic.t }

let create ?(prefix = "t") () = { prefix; next = Atomic.make 0 }

let fresh t =
  let n = Atomic.fetch_and_add t.next 1 in
  Printf.sprintf "%s%d" t.prefix n

let fresh_named t base =
  let n = Atomic.fetch_and_add t.next 1 in
  Printf.sprintf "%s.%d" base n

let reset t = Atomic.set t.next 0
