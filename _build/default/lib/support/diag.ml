(** Compiler diagnostics: errors and warnings carrying source locations.

    All front-end and analysis failures are reported through [error], which
    raises [Error]. Drivers catch it once at the top level. *)

type severity = Error_sev | Warning_sev

type diagnostic = { severity : severity; loc : Loc.t; message : string }

exception Error of diagnostic

let diagnostic severity loc message = { severity; loc; message }

let error ?(loc = Loc.dummy) fmt =
  Format.kasprintf (fun message -> raise (Error (diagnostic Error_sev loc message))) fmt

let errorf = error

let pp_severity ppf = function
  | Error_sev -> Fmt.string ppf "error"
  | Warning_sev -> Fmt.string ppf "warning"

let pp ppf d = Fmt.pf ppf "%a: %a: %s" Loc.pp d.loc pp_severity d.severity d.message

let to_string d = Fmt.str "%a" pp d

(** [guard f] runs [f ()] and converts a raised diagnostic into [Error]. *)
let guard f = match f () with v -> Ok v | exception Error d -> (Error d : ('a, diagnostic) result)

(** [message_of_exn e] renders a diagnostic exception for test assertions. *)
let message_of_exn = function Error d -> Some d.message | _ -> None
