(** Concrete evaluation of pure COMMSET predicate expressions over runtime
    values — the basis of the speculative (runtime-checked) commutativity
    mode, where a predicate that the symbolic interpreter cannot discharge
    statically is instead evaluated on the actual arguments of two
    dynamic member instances (the paper's §6 future-work direction, and
    what Galois does at runtime). *)

module Ast = Commset_lang.Ast
open Commset_support

type env = (string * Value.t) list

let rec eval (env : env) (e : Ast.expr) : Value.t =
  match e.Ast.edesc with
  | Ast.Int_lit n -> Value.Vint n
  | Ast.Float_lit f -> Value.Vfloat f
  | Ast.Bool_lit b -> Value.Vbool b
  | Ast.String_lit s -> Value.Vstring s
  | Ast.Var v -> (
      match List.assoc_opt v env with
      | Some value -> value
      | None -> Diag.error "predicate evaluation: unbound parameter '%s'" v)
  | Ast.Unop (Ast.Not, a) -> Value.Vbool (not (Value.to_bool (eval env a)))
  | Ast.Unop (Ast.Neg, a) -> (
      match eval env a with
      | Value.Vint n -> Value.Vint (-n)
      | Value.Vfloat f -> Value.Vfloat (-.f)
      | _ -> Diag.error "predicate evaluation: '-' on a non-number")
  | Ast.Binop (op, a, b) -> eval_binop env op a b
  | Ast.Call _ | Ast.Index _ ->
      Diag.error "predicate evaluation: impure expression (purity was checked earlier)"

and eval_binop env op a b =
  let va = eval env a and vb = eval env b in
  let open Value in
  match (op, va, vb) with
  | Ast.Add, Vint x, Vint y -> Vint (x + y)
  | Ast.Sub, Vint x, Vint y -> Vint (x - y)
  | Ast.Mul, Vint x, Vint y -> Vint (x * y)
  | Ast.Div, Vint x, Vint y ->
      if y = 0 then Diag.error "predicate evaluation: division by zero" else Vint (x / y)
  | Ast.Mod, Vint x, Vint y ->
      if y = 0 then Diag.error "predicate evaluation: modulo by zero" else Vint (x mod y)
  | Ast.Add, Vfloat x, Vfloat y -> Vfloat (x +. y)
  | Ast.Sub, Vfloat x, Vfloat y -> Vfloat (x -. y)
  | Ast.Mul, Vfloat x, Vfloat y -> Vfloat (x *. y)
  | Ast.Div, Vfloat x, Vfloat y -> Vfloat (x /. y)
  | Ast.Add, Vstring x, Vstring y -> Vstring (x ^ y)
  | Ast.Lt, Vint x, Vint y -> Vbool (x < y)
  | Ast.Le, Vint x, Vint y -> Vbool (x <= y)
  | Ast.Gt, Vint x, Vint y -> Vbool (x > y)
  | Ast.Ge, Vint x, Vint y -> Vbool (x >= y)
  | Ast.Lt, Vfloat x, Vfloat y -> Vbool (x < y)
  | Ast.Le, Vfloat x, Vfloat y -> Vbool (x <= y)
  | Ast.Gt, Vfloat x, Vfloat y -> Vbool (x > y)
  | Ast.Ge, Vfloat x, Vfloat y -> Vbool (x >= y)
  | Ast.Eq, x, y -> Vbool (x = y)
  | Ast.Neq, x, y -> Vbool (x <> y)
  | Ast.And, Vbool x, Vbool y -> Vbool (x && y)
  | Ast.Or, Vbool x, Vbool y -> Vbool (x || y)
  | _ -> Diag.error "predicate evaluation: ill-typed operation"

(** Evaluate a predicate body with the two instances' actuals bound to the
    two parameter lists. *)
let predicate_holds ~params1 ~params2 ~(actuals1 : Value.t list) ~(actuals2 : Value.t list)
    (body : Ast.expr) : bool =
  if List.length params1 <> List.length actuals1 || List.length params2 <> List.length actuals2
  then Diag.error "predicate evaluation: arity mismatch";
  let env = List.combine params1 actuals1 @ List.combine params2 actuals2 in
  Value.to_bool ~what:"predicate result" (eval env body)
