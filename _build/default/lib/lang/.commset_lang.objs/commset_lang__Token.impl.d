lib/lang/token.ml: Commset_support Loc Printf
