(** Renderers for [commsetc stat] and [commsetc run --format=json]: the
    execution observatory's per-plan attribution report, as aligned
    text tables ({!render_text}) or one strict-JSON document
    ({!render_json}, validated in CI against [ci/stat-schema.json]).

    Both renderers take the same inputs — the executed plans
    ({!Commset_pipeline.Pipeline.exec_run}, whose [xstats.x_attrib]
    carries the attribution summary when the engine produced one) plus
    run context — and surface, per plan: the predicted-vs-measured
    fidelity row, the per-cause time breakdown with p50/p95/p99
    per-iteration quantiles, the per-commset lock-contention table, the
    builtin time table, and coordinator backbone utilization. *)

module P = Commset_pipeline.Pipeline

(** What calibration did for this invocation, echoed into the report. *)
type calib_note = {
  cn_path : string;  (** profile path loaded or written *)
  cn_ns_per_cycle : float;
  cn_loaded : bool;  (** [true]: applied before the run; [false]: written after *)
}

val render_text :
  workload:string ->
  engine:string ->
  jobs:int ->
  cores:int ->
  ?calib:calib_note ->
  P.exec_run list ->
  string

(** Strict JSON (RFC 8259, accepted by {!Commset_obs.Json_strict}):
    [{"workload", "engine_requested", "jobs", "available_cores",
    "oversubscribed", "plans": [...], "calibration"}] where each plan
    object embeds the full stats record and an ["attribution"] object
    ([null] when the run had none). *)
val render_json :
  workload:string ->
  engine:string ->
  jobs:int ->
  cores:int ->
  ?calib:calib_note ->
  P.exec_run list ->
  string
