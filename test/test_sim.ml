(** Tests for the discrete-event multicore simulator: compute timing,
    mutual exclusion, FIFO handoff, queue backpressure, deadlock
    detection, transaction conflicts, and emission ordering. *)

module Sim = Commset_runtime.Sim
module Costmodel = Commset_runtime.Costmodel
open Commset_support

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let mutex_lock = { Sim.lflavor = Costmodel.Mutex; lname = "m" }
let spin_lock = { Sim.lflavor = Costmodel.Spin; lname = "s" }

let compute c = Sim.Compute { cost = c; tag = "w" }

let run ?(locks = [||]) ?(n_queues = 0) segs =
  Sim.run (Sim.create ~locks ~n_queues segs)

let test_compute_only () =
  let r = run [| [ compute 100.; compute 50. ]; [ compute 30. ] |] in
  check (Alcotest.float 0.001) "makespan is the longest thread" 150. r.Sim.makespan;
  check (Alcotest.float 0.001) "busy tracked" 150. r.Sim.thread_busy.(0);
  check (Alcotest.float 0.001) "busy tracked 2" 30. r.Sim.thread_busy.(1)

let test_mutual_exclusion () =
  (* two threads, one lock, critical sections of 100 each: they serialize *)
  let thread = [ Sim.Acquire 0; compute 100.; Sim.Release 0 ] in
  let r = run ~locks:[| mutex_lock |] [| thread; thread |] in
  check Alcotest.bool "serialized" true (r.Sim.makespan > 200.);
  check Alcotest.int "one contended acquire" 1 r.Sim.lock_contended

let test_lock_fifo_handoff () =
  (* three waiters resume in request order; emissions record the order *)
  let worker name =
    [ compute 1.; Sim.Acquire 0; Sim.Emit name; compute 50.; Sim.Release 0 ]
  in
  let r =
    run ~locks:[| spin_lock |]
      [| worker "a"; worker "b"; worker "c" |]
  in
  check
    Alcotest.(list string)
    "commit order follows arrival order" [ "a"; "b"; "c" ]
    (List.map snd r.Sim.outputs)

let test_release_unowned () =
  match Diag.guard (fun () -> run ~locks:[| mutex_lock |] [| [ Sim.Release 0 ] |]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "releasing an unowned lock must be detected"

let test_queue_fifo () =
  (* producer pushes three tokens; consumer pops three; finishes *)
  let producer = [ compute 10.; Sim.Push 0; Sim.Push 0; compute 5.; Sim.Push 0 ] in
  let consumer = [ Sim.Pop 0; Sim.Pop 0; Sim.Pop 0; Sim.Emit "done" ] in
  let r = run ~n_queues:1 [| producer; consumer |] in
  check Alcotest.int "consumer finished" 1 (List.length r.Sim.outputs)

let test_queue_blocking_consumer () =
  (* the consumer must wait for the producer's long compute *)
  let producer = [ compute 500.; Sim.Push 0 ] in
  let consumer = [ Sim.Pop 0; Sim.Emit "got" ] in
  let r = run ~n_queues:1 [| producer; consumer |] in
  match r.Sim.outputs with
  | [ (t, "got") ] -> check Alcotest.bool "popped after the push" true (t >= 500.)
  | _ -> Alcotest.fail "expected one output"

let test_queue_backpressure () =
  (* capacity is bounded: a producer pushing far ahead must block until
     the consumer drains *)
  let n = Atomic.get Costmodel.queue_capacity + 5 in
  let producer = List.init n (fun _ -> Sim.Push 0) in
  let consumer = List.concat (List.init n (fun _ -> [ compute 100.; Sim.Pop 0 ])) in
  let r = run ~n_queues:1 [| producer; consumer |] in
  (* the producer cannot finish before the consumer frees capacity *)
  check Alcotest.bool "producer throttled" true
    (r.Sim.makespan >= 100. *. float_of_int (n - Atomic.get Costmodel.queue_capacity))

let test_deadlock_detection () =
  (* consumer pops from an empty queue nobody fills *)
  match Diag.guard (fun () -> run ~n_queues:1 [| [ Sim.Pop 0 ] |]) with
  | Error d ->
      check Alcotest.bool "mentions deadlock" true
        (String.length d.Diag.message > 0)
  | Ok _ -> Alcotest.fail "expected deadlock detection"

let test_tm_conflict () =
  (* two transactions writing the same location: one aborts and retries *)
  let tx tag =
    Sim.Tx { cost = 100.; reads = [ "x" ]; writes = [ "x" ]; outputs = [ tag ]; tag; spec = None }
  in
  let r = run [| [ tx "a" ]; [ compute 1.; tx "b" ] |] in
  check Alcotest.bool "at least one abort" true (r.Sim.tx_aborts >= 1);
  check Alcotest.int "both committed" 2 (List.length r.Sim.outputs)

let test_tm_no_false_conflict () =
  (* disjoint read/write sets never conflict *)
  let tx loc = Sim.Tx { cost = 100.; reads = [ loc ]; writes = [ loc ]; outputs = []; tag = loc; spec = None } in
  let r = run [| [ tx "x" ]; [ tx "y" ] |] in
  check Alcotest.int "no aborts" 0 r.Sim.tx_aborts

let test_tm_readers_dont_conflict () =
  let tx = Sim.Tx { cost = 100.; reads = [ "x" ]; writes = []; outputs = []; tag = "r"; spec = None } in
  let r = run [| [ tx ]; [ tx ]; [ tx ] |] in
  check Alcotest.int "read-only txs commute" 0 r.Sim.tx_aborts

let test_emit_ordering () =
  let r =
    run [| [ compute 10.; Sim.Emit "late" ]; [ Sim.Emit "early" ] |]
  in
  check Alcotest.(list string) "outputs sorted by commit time" [ "early"; "late" ]
    (List.map snd r.Sim.outputs)

(* property: with any number of contenders, total busy time is preserved
   and the makespan at least the critical path *)
let prop_lock_conservation =
  QCheck.Test.make ~name:"locks never lose work" ~count:100
    QCheck.(pair (int_range 1 6) (int_range 1 40))
    (fun (threads, crit) ->
      let crit = float_of_int (crit * 10) in
      let body = [ Sim.Acquire 0; compute crit; Sim.Release 0 ] in
      let r =
        Sim.run
          (Sim.create ~locks:[| spin_lock |] ~n_queues:0 (Array.make threads body))
      in
      let total_busy = Array.fold_left ( +. ) 0. r.Sim.thread_busy in
      abs_float (total_busy -. (crit *. float_of_int threads)) < 0.001
      && r.Sim.makespan +. 0.001 >= crit *. float_of_int threads)

(* ---- more simulator properties ---- *)

(* random two-thread lock/compute programs: the makespan is at least the
   busiest thread and at most the serialized total *)
let prop_makespan_bounds =
  QCheck.Test.make ~name:"makespan between max-busy and serial total" ~count:150
    QCheck.(pair (small_list (int_range 1 30)) (small_list (int_range 1 30)))
    (fun (costs1, costs2) ->
      let thread costs =
        List.concat_map
          (fun c -> [ Sim.Acquire 0; compute (float_of_int (c * 10)); Sim.Release 0 ])
          costs
      in
      let r = run ~locks:[| spin_lock |] [| thread costs1; thread costs2 |] in
      let busy1 = r.Sim.thread_busy.(0) and busy2 = r.Sim.thread_busy.(1) in
      let serial = busy1 +. busy2 in
      r.Sim.makespan +. 0.001 >= max busy1 busy2
      (* overheads are bounded: base costs + handoffs per acquire *)
      && r.Sim.makespan
         <= serial
            +. (float_of_int (List.length costs1 + List.length costs2) *. 200.)
            +. 1.0)

(* queue token conservation: the consumer pops exactly what was pushed *)
let prop_queue_conservation =
  QCheck.Test.make ~name:"queue tokens conserved" ~count:150
    QCheck.(int_range 1 80)
    (fun n ->
      let producer = List.concat (List.init n (fun _ -> [ compute 5.; Sim.Push 0 ])) in
      let consumer =
        List.concat (List.init n (fun _ -> [ Sim.Pop 0; Sim.Emit "tok" ]))
      in
      let r = run ~n_queues:1 [| producer; consumer |] in
      List.length r.Sim.outputs = n)

(* ---- the commit index against a naive reference ---- *)

(* a commit is (time, thread, reads, writes) over a tiny alphabet so
   footprints overlap often *)
let commit_gen =
  QCheck.(
    quad (int_range 0 30) (int_range 0 3)
      (small_list (oneofl [ "a"; "b"; "c"; "d" ]))
      (small_list (oneofl [ "a"; "b"; "c"; "d" ])))

let build_index log =
  List.fold_left
    (fun idx (t, th, rs, ws) ->
      Sim.Commit_index.add idx ~time:(float_of_int t) ~thread:th ~reads:rs
        ~writes:ws ~spec:None)
    Sim.Commit_index.empty log

(* the naive full-log scan the index replaced *)
let naive_conflicts log ~thread ~start ~stop ~reads ~writes =
  let overlaps xs ys = List.exists (fun x -> List.mem x ys) xs in
  List.exists
    (fun (t, th, rs, ws) ->
      let t = float_of_int t in
      th <> thread && t > start && t < stop
      && (overlaps ws (reads @ writes) || overlaps rs writes))
    log

let prop_commit_index_agrees =
  QCheck.Test.make ~name:"commit index agrees with naive full-log scan"
    ~count:500
    QCheck.(
      pair (small_list commit_gen)
        (quad (int_range 0 3) (int_range 0 30) (int_range 0 30)
           (pair
              (small_list (oneofl [ "a"; "b"; "c"; "d" ]))
              (small_list (oneofl [ "a"; "b"; "c"; "d" ])))))
    (fun (log, (thread, t1, t2, (reads, writes))) ->
      let start = float_of_int (min t1 t2)
      and stop = float_of_int (max t1 t2) in
      Sim.Commit_index.conflicts (build_index log) ~commutes:None ~thread
        ~start ~stop
        ~reads:(Sim.Sset.of_list reads)
        ~writes:(Sim.Sset.of_list writes)
        ~spec:None
      = naive_conflicts log ~thread ~start ~stop ~reads ~writes)

let prop_prune_preserves_queries =
  QCheck.Test.make
    ~name:"pruning never changes a query whose window starts at or after the cut"
    ~count:500
    QCheck.(pair (small_list commit_gen) (int_range 0 30))
    (fun (log, cut) ->
      let idx = build_index log in
      let pruned =
        Sim.Commit_index.prune idx ~min_time:(float_of_int cut)
      in
      (* every commit at or before the cut is gone, the rest are kept *)
      let expect_size =
        List.length (List.filter (fun (t, _, _, _) -> t > cut) log)
      in
      Sim.Commit_index.size pruned = expect_size
      && List.for_all
           (fun start ->
             List.for_all
               (fun stop ->
                 Sim.Commit_index.conflicts idx ~commutes:None ~thread:99
                   ~start:(float_of_int start) ~stop:(float_of_int stop)
                   ~reads:(Sim.Sset.of_list [ "a"; "c" ])
                   ~writes:(Sim.Sset.of_list [ "b" ])
                   ~spec:None
                 = Sim.Commit_index.conflicts pruned ~commutes:None ~thread:99
                     ~start:(float_of_int start) ~stop:(float_of_int stop)
                     ~reads:(Sim.Sset.of_list [ "a"; "c" ])
                     ~writes:(Sim.Sset.of_list [ "b" ])
                     ~spec:None)
               [ start; start + 1; start + 10; 40 ])
           [ cut; cut + 3; 31 ])

let prop_cases =
  [
    qcheck prop_makespan_bounds;
    qcheck prop_queue_conservation;
    qcheck prop_commit_index_agrees;
    qcheck prop_prune_preserves_queries;
  ]

let suite =
  ( "sim",
    prop_cases
    @ [
      Alcotest.test_case "compute timing" `Quick test_compute_only;
      Alcotest.test_case "mutual exclusion" `Quick test_mutual_exclusion;
      Alcotest.test_case "FIFO handoff" `Quick test_lock_fifo_handoff;
      Alcotest.test_case "release unowned" `Quick test_release_unowned;
      Alcotest.test_case "queue FIFO" `Quick test_queue_fifo;
      Alcotest.test_case "queue blocking" `Quick test_queue_blocking_consumer;
      Alcotest.test_case "queue backpressure" `Quick test_queue_backpressure;
      Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
      Alcotest.test_case "TM conflict" `Quick test_tm_conflict;
      Alcotest.test_case "TM disjoint" `Quick test_tm_no_false_conflict;
      Alcotest.test_case "TM readers" `Quick test_tm_readers_dont_conflict;
      Alcotest.test_case "emit ordering" `Quick test_emit_ordering;
      qcheck prop_lock_conservation;
    ] )

