lib/report/ablation.mli:
