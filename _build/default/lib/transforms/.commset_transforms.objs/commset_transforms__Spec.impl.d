lib/transforms/spec.ml: Array Commset_core Commset_ir Commset_pdg Commset_runtime Commset_support Diag Doall Hashtbl List Plan Sync
