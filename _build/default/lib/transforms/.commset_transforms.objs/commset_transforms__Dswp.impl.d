lib/transforms/dswp.ml: Array Commset_pdg Commset_runtime Commset_support Hashtbl List Listx Plan Printf String Sync
