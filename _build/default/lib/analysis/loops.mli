(** Natural-loop detection from back edges; loops with the same header
    are merged. *)

module Ir = Commset_ir.Ir

type loop = {
  header : Ir.label;
  latches : Ir.label list;  (** sources of back edges into the header *)
  body : Ir.label list;  (** all labels in the loop, header included *)
  exits : Ir.label list;  (** labels outside the loop targeted from inside *)
  depth : int;  (** nesting depth, 1 = outermost *)
  parent : Ir.label option;  (** header of the innermost enclosing loop *)
}

type t = { loops : loop list }

val compute : Cfg.t -> Dominance.t -> t
val find_by_header : t -> Ir.label -> loop option
val outermost : t -> loop list
val in_loop : loop -> Ir.label -> bool

(** Blocks of the loop that belong to no deeper loop. *)
val own_blocks : t -> loop -> Ir.label list
