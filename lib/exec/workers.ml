(** Persistent warm worker-domain pool; see the interface for the
    architecture. *)

let src_log = Logs.Src.create "commset.workers" ~doc:"Warm serve worker pool"

module Log = (val Logs.src_log src_log : Logs.LOG)

type task = Run of (unit -> unit) | Quit

type t = {
  rings : task Spsc.t array;
  domains : unit Domain.t array;
  next : int ref;  (** round-robin tie-breaker; coordinator-only state *)
  executed : int Atomic.t;
  task_errors : int Atomic.t;
  backpressure : int Atomic.t;
  mutable stopped : bool;  (** coordinator-only *)
}

type stats = { w_executed : int; w_task_errors : int; w_backpressure : int }

let worker_loop (executed : int Atomic.t) (task_errors : int Atomic.t)
    (ring : task Spsc.t) () =
  let rec loop () =
    (* Spsc.pop parks through the adaptive backoff: one blocking episode
       escalates into the long-idle tier, so an empty ring costs one
       wakeup per idle-sleep cap *)
    match Spsc.pop ring with
    | Quit -> ()
    | Run f ->
        (try f ()
         with exn ->
           Atomic.incr task_errors;
           Log.err (fun m -> m "worker task raised: %s" (Printexc.to_string exn)));
        Atomic.incr executed;
        loop ()
  in
  loop ()

let spawn ?(ring = 256) ~jobs () =
  let jobs = max 1 jobs in
  let ring = max 1 ring in
  let executed = Atomic.make 0 in
  let task_errors = Atomic.make 0 in
  let rings = Array.init jobs (fun _ -> Spsc.create ~capacity:ring) in
  let domains =
    Array.init jobs (fun i -> Domain.spawn (worker_loop executed task_errors rings.(i)))
  in
  Log.info (fun m -> m "spawned %d warm worker(s), ring capacity %d" jobs ring);
  {
    rings;
    domains;
    next = ref 0;
    executed;
    task_errors;
    backpressure = Atomic.make 0;
    stopped = false;
  }

let size t = Array.length t.rings

let pending t = Array.fold_left (fun acc r -> acc + Spsc.length r) 0 t.rings

(* least-loaded ring, round-robin on ties, so one slow request does not
   serialize the queue behind it *)
let pick t =
  let n = Array.length t.rings in
  let start = !(t.next) in
  t.next := (start + 1) mod n;
  let best = ref (start mod n) in
  for k = 1 to n - 1 do
    let i = (start + k) mod n in
    if Spsc.length t.rings.(i) < Spsc.length t.rings.(!best) then best := i
  done;
  !best

let submit t f =
  if t.stopped then invalid_arg "Workers.submit: pool is shut down";
  let i = pick t in
  Spsc.push ~on_wait:(fun () -> Atomic.incr t.backpressure) t.rings.(i) (Run f)

let stats t =
  {
    w_executed = Atomic.get t.executed;
    w_task_errors = Atomic.get t.task_errors;
    w_backpressure = Atomic.get t.backpressure;
  }

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter (fun r -> Spsc.push r Quit) t.rings;
    Array.iter Domain.join t.domains;
    Log.info (fun m ->
        m "pool drained: %d task(s) executed, %d error(s)" (Atomic.get t.executed)
          (Atomic.get t.task_errors))
  end
