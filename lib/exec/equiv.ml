(** Commutativity-aware output equivalence; see the interface. *)

module Trace = Commset_runtime.Trace
module Sync = Commset_transforms.Sync

type verdict = Exact | Commutative_equal | Mismatch

let verdict_to_string = function
  | Exact -> "exact (deterministic)"
  | Commutative_equal -> "commutative-equal (multiset)"
  | Mismatch -> "MISMATCH"

let commutative_outputs ~(sync : Sync.t) ~(trace : Trace.t) =
  let tbl : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun it ->
      List.iter
        (fun (e : Trace.node_exec) ->
          if Hashtbl.mem sync.Sync.node_sets_all e.Trace.nid then
            List.iter
              (function Trace.Aout s -> Hashtbl.replace tbl s () | _ -> ())
              (Trace.exec_atoms e))
        (Trace.iteration_execs it))
    trace.Trace.iterations;
  fun s -> Hashtbl.mem tbl s

let check ~commutative ~(reference : string list) ~(actual : string list) : verdict =
  if List.equal String.equal reference actual then Exact
  else
    let split = List.partition commutative in
    let ref_comm, ref_ord = split reference in
    let act_comm, act_ord = split actual in
    if
      List.equal String.equal ref_ord act_ord
      && List.equal String.equal
           (List.sort String.compare ref_comm)
           (List.sort String.compare act_comm)
    then Commutative_equal
    else Mismatch
