(** Memory effect analysis: every instruction is summarized by the sets
    of abstract locations it may read and write; function summaries
    compose bottom-up over the call graph. See DESIGN.md for the
    abstraction (builtin resource effects, name-based array provenance,
    iteration privatization). *)

module Ir = Commset_ir.Ir

(** Provenance of an array value. *)
type source =
  | Sglobal of string  (** arrays reachable from a global *)
  | Sparam of int  (** arrays passed via a parameter of the current function *)
  | Slocal of Ir.reg  (** arrays held in a local register (allocated inside) *)
  | Sunknown

type location =
  | Lglobal of string  (** a global variable cell *)
  | Lheap of source  (** elements of arrays with the given provenance *)
  | Lext of string  (** an abstract resource owned by a builtin *)
  | Lunknown  (** conservative top, conflicts with everything *)

module LocSet : Set.S with type elt = location
module SrcSet : Set.S with type elt = source

type rw = { reads : LocSet.t; writes : LocSet.t }

val rw_empty : rw
val rw_union : rw -> rw -> rw
val add_read : location -> rw -> rw
val add_write : location -> rw -> rw

(** Effect specification of a builtin, supplied by the runtime. *)
type builtin_spec = {
  bs_reads : string list;  (** abstract resources read *)
  bs_writes : string list;  (** abstract resources written *)
  bs_reads_arrays : int list;  (** argument positions whose array elements are read *)
  bs_writes_arrays : int list;  (** argument positions whose array elements are written *)
  bs_allocates : bool;  (** the result is a freshly allocated array *)
}

type lookup = string -> builtin_spec option

type prov = (Ir.reg, SrcSet.t) Hashtbl.t

val prov_of : prov -> Ir.reg -> SrcSet.t

(** Summary of one function's effects, in its own terms. *)
type summary = {
  sm_rw : rw;  (** effects with [Sparam] relative to this function *)
  sm_ret_prov : SrcSet.t;  (** provenance of the returned array, if any *)
  sm_ret_fresh : bool;  (** the returned array is freshly allocated inside *)
}

type t

(** Build effect summaries for every function, bottom-up over the call
    graph with a fixpoint for recursive cycles. *)
val analyze : lookup -> Ir.program -> t

val summary : t -> string -> summary option
val prov_of_func : t -> string -> prov option

(** Effects of one instruction of [fname], in that function's own terms. *)
val instr_rw : t -> fname:string -> Ir.instr -> rw

(** Effects of a set of instructions of [fname]. *)
val instrs_rw : t -> fname:string -> Ir.instr list -> rw

(** Instantiate an effect set expressed in a callee's own terms at a call
    site in [fname] with the given argument operands and destination. *)
val instantiate_rw :
  t -> fname:string -> args:Ir.operand list -> dst:Ir.reg option -> rw -> rw

(** May these two locations denote overlapping state? *)
val locs_conflict : location -> location -> bool

val sets_conflict : LocSet.t -> LocSet.t -> bool

(** Write/write, write/read or read/write overlap. *)
val conflict : rw -> rw -> bool

(** The locations of the first effect set involved in a conflict with the
    second. *)
val conflict_locs : rw -> rw -> LocSet.t

val pp_source : Format.formatter -> source -> unit
val pp_location : Format.formatter -> location -> unit
val pp_rw : Format.formatter -> rw -> unit

(** {2 Commutative-update classes}

    Families of order-free update builtins: any interleaving of the
    writers reaches the same final state {e provided} the updates are
    ultimately applied in a single well-defined order — which is what
    the real-execution engine's per-domain buffering with an
    iteration-ordered lazy merge guarantees. *)

type update_family = {
  uf_name : string;
  uf_writers : string list;  (** order-free state updates returning unit *)
  uf_readers : string list;  (** observers of the accumulated state *)
}

val update_families : update_family list

(** Extern (builtin) calls reachable from [body], transitively through
    user-defined callees: [(callee, has_dst)] pairs. *)
val loop_extern_calls :
  Ir.program -> Ir.func -> Ir.label list -> (string * bool) list

(** Writers safe to buffer per-domain and replay at loop exit: every
    family with at least one writer call in the loop, no same-family
    reader in the loop, and no writer call using its result. *)
val bufferable_updates :
  Ir.program -> Ir.func -> Ir.label list -> (string, unit) Hashtbl.t
