(** Dominator and post-dominator trees (Cooper–Harvey–Kennedy iterative
    algorithm over reverse post-order). Post-dominance is computed on the
    reverse CFG with a virtual exit joining every [Ret] block. *)

module Ir = Commset_ir.Ir

type t = {
  idom : (Ir.label, Ir.label) Hashtbl.t;  (** immediate dominator; entry absent *)
  root : Ir.label;
}

(* generic CHK over an explicit graph *)
let compute_generic ~root ~nodes ~preds =
  (* nodes must be in reverse post-order starting with root *)
  let index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace index n i) nodes;
  let idom = Hashtbl.create 16 in
  Hashtbl.replace idom root root;
  let intersect a b =
    let rec walk a b =
      if a = b then a
      else if Hashtbl.find index a > Hashtbl.find index b then walk (Hashtbl.find idom a) b
      else walk a (Hashtbl.find idom b)
    in
    walk a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        if n <> root then begin
          let processed = List.filter (Hashtbl.mem idom) (preds n) in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if Hashtbl.find_opt idom n <> Some new_idom then begin
                Hashtbl.replace idom n new_idom;
                changed := true
              end
        end)
      nodes
  done;
  Hashtbl.remove idom root;
  { idom; root }

let compute (cfg : Cfg.t) =
  compute_generic ~root:cfg.Cfg.func.Ir.entry ~nodes:(Cfg.reachable_labels cfg)
    ~preds:(Cfg.predecessors cfg)

let idom t label = if label = t.root then None else Hashtbl.find_opt t.idom label

let rec dominates t a b =
  (* does a dominate b? (reflexive) *)
  if a = b then true
  else match idom t b with None -> false | Some d -> dominates t a d

(** All dominators of [label], from itself up to the root. *)
let dominators t label =
  let rec up acc l = match idom t l with None -> List.rev (l :: acc) | Some d -> up (l :: acc) d in
  up [] label

(* ------------------------------------------------------------------ *)
(* Post-dominance                                                      *)
(* ------------------------------------------------------------------ *)

type post = { pdom : t; virtual_exit : Ir.label }

let compute_post (cfg : Cfg.t) =
  let labels = Cfg.reachable_labels cfg in
  let virtual_exit = -1 in
  let exits =
    List.filter
      (fun l -> match (Ir.block cfg.Cfg.func l).Ir.term with Ir.Ret _ -> true | _ -> false)
      labels
  in
  (* reverse graph: successors become predecessors *)
  let rsuccs l = if l = virtual_exit then exits else Cfg.predecessors cfg l in
  let rpreds l =
    if l = virtual_exit then []
    else
      let s = Cfg.successors cfg l in
      if List.mem l exits then virtual_exit :: s else s
  in
  (* reverse post-order of the reverse graph from the virtual exit *)
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      List.iter dfs (rsuccs l);
      order := l :: !order
    end
  in
  dfs virtual_exit;
  let pdom = compute_generic ~root:virtual_exit ~nodes:!order ~preds:rpreds in
  { pdom; virtual_exit }

let post_dominates p a b = dominates p.pdom a b
let ipdom p label = idom p.pdom label
