lib/runtime/profile.mli: Commset_ir Machine
