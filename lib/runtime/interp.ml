(** Sequential IR interpreter with cycle accounting and instrumentation
    hooks. The profiler, the trace recorder, and the output-equivalence
    checks are all built on these hooks. *)

module Ir = Commset_ir.Ir
module Ast = Commset_lang.Ast
open Commset_support

type hooks = {
  mutable on_instr : Ir.func -> Ir.instr -> unit;
  mutable on_block : Ir.func -> Ir.label -> unit;
  mutable on_base_cost : float -> unit;
  mutable on_builtin : Builtins.t -> float -> unit;
  mutable on_output : string -> unit;
  mutable on_enter_func : Ir.func -> unit;
  mutable on_exit_func : Ir.func -> unit;
  mutable on_region_enter :
    Ir.func -> Ir.region -> (string * Value.t list) list -> Value.t array -> unit;
      (** fired on entry to a commutative region, with the predicate
          actuals of each of its commsets evaluated at that instant and
          the live register file (for replay, snapshot it) *)
  mutable on_call_actuals :
    Ir.instr -> Value.t list -> (string * (string * Value.t list) list) list -> unit;
      (** fired before a call to a user-defined function, with the
          evaluated argument values and, per COMMSETNAMEDARGADD enable on
          the call, the evaluated (block, set actuals) bindings *)
}

let null_hooks () =
  {
    on_instr = (fun _ _ -> ());
    on_block = (fun _ _ -> ());
    on_base_cost = (fun _ -> ());
    on_builtin = (fun _ _ -> ());
    on_output = (fun _ -> ());
    on_enter_func = (fun _ -> ());
    on_exit_func = (fun _ -> ());
    on_region_enter = (fun _ _ _ _ -> ());
    on_call_actuals = (fun _ _ _ -> ());
  }

type t = {
  prog : Ir.program;
  machine : Machine.t;
  globals : (string, Value.t) Hashtbl.t;
  hooks : hooks;
  region_entries : (string * Ir.label, Ir.region) Hashtbl.t;
      (** (function, label) -> region whose entry block it is *)
  mutable fuel : int;
  mutable total_cost : float;
}

let default_fuel = 200_000_000

let create ?(hooks = null_hooks ()) ?(fuel = default_fuel) ?(machine = Machine.create ()) prog =
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (name, _, const) -> Hashtbl.replace globals name (Value.of_const const))
    prog.Ir.prog_globals;
  let region_entries = Hashtbl.create 16 in
  Hashtbl.iter
    (fun fname f ->
      List.iter
        (fun (r : Ir.region) -> Hashtbl.replace region_entries (fname, r.Ir.rentry) r)
        f.Ir.fregions)
    prog.Ir.funcs;
  let t = { prog; machine; globals; hooks; region_entries; fuel; total_cost = 0. } in
  machine.Machine.emit <-
    (fun s ->
      Machine.default_emit machine s;
      t.hooks.on_output s);
  t

let charge t c =
  t.total_cost <- t.total_cost +. c;
  t.hooks.on_base_cost c

(* ------------------------------------------------------------------ *)
(* Operand / operator evaluation                                       *)
(* ------------------------------------------------------------------ *)

let eval_operand regs = function
  | Ir.Const c -> Value.of_const c
  | Ir.Reg r -> regs.(r)

let eval_binop op ty (a : Value.t) (b : Value.t) : Value.t =
  let open Value in
  let bad () = Diag.error "runtime: ill-typed binop" in
  match (op, ty) with
  | Ast.Add, Ast.Tint -> Vint (to_int a + to_int b)
  | Ast.Sub, Ast.Tint -> Vint (to_int a - to_int b)
  | Ast.Mul, Ast.Tint -> Vint (to_int a * to_int b)
  | Ast.Div, Ast.Tint ->
      let d = to_int b in
      if d = 0 then Diag.error "runtime: division by zero" else Vint (to_int a / d)
  | Ast.Mod, Ast.Tint ->
      let d = to_int b in
      if d = 0 then Diag.error "runtime: modulo by zero" else Vint (to_int a mod d)
  | Ast.Add, Ast.Tfloat -> Vfloat (to_float a +. to_float b)
  | Ast.Sub, Ast.Tfloat -> Vfloat (to_float a -. to_float b)
  | Ast.Mul, Ast.Tfloat -> Vfloat (to_float a *. to_float b)
  | Ast.Div, Ast.Tfloat ->
      let d = to_float b in
      Vfloat (to_float a /. d)
  | Ast.Add, Ast.Tstring -> Vstring (to_string_val a ^ to_string_val b)
  | Ast.Lt, Ast.Tint -> Vbool (to_int a < to_int b)
  | Ast.Le, Ast.Tint -> Vbool (to_int a <= to_int b)
  | Ast.Gt, Ast.Tint -> Vbool (to_int a > to_int b)
  | Ast.Ge, Ast.Tint -> Vbool (to_int a >= to_int b)
  | Ast.Lt, Ast.Tfloat -> Vbool (to_float a < to_float b)
  | Ast.Le, Ast.Tfloat -> Vbool (to_float a <= to_float b)
  | Ast.Gt, Ast.Tfloat -> Vbool (to_float a > to_float b)
  | Ast.Ge, Ast.Tfloat -> Vbool (to_float a >= to_float b)
  | Ast.Lt, Ast.Tstring -> Vbool (to_string_val a < to_string_val b)
  | Ast.Gt, Ast.Tstring -> Vbool (to_string_val a > to_string_val b)
  | Ast.Eq, _ -> Vbool (Value.equal a b)
  | Ast.Neq, _ -> Vbool (not (Value.equal a b))
  | Ast.And, Ast.Tbool -> Vbool (to_bool a && to_bool b)
  | Ast.Or, Ast.Tbool -> Vbool (to_bool a || to_bool b)
  | _ -> bad ()

let eval_unop op (a : Value.t) : Value.t =
  match (op, a) with
  | Ast.Neg, Value.Vint n -> Value.Vint (-n)
  | Ast.Neg, Value.Vfloat f -> Value.Vfloat (-.f)
  | Ast.Not, Value.Vbool x -> Value.Vbool (not x)
  | _ -> Diag.error "runtime: ill-typed unop"

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

exception Out_of_fuel

let rec exec_func t (func : Ir.func) (args : Value.t list) : Value.t option =
  t.hooks.on_enter_func func;
  let result = exec_func_body t func args in
  t.hooks.on_exit_func func;
  result

and exec_func_body t (func : Ir.func) (args : Value.t list) : Value.t option =
  let regs = Array.make (max 1 func.Ir.n_regs) (Value.Vint 0) in
  (* walk params and args in lockstep; extra args are ignored, like a
     C call through a mismatched prototype *)
  let rec bind i params args =
    match (params, args) with
    | [], _ -> ()
    | r :: params, v :: args ->
        regs.(r) <- v;
        bind (i + 1) params args
    | _ :: _, [] -> Diag.error "runtime: missing argument %d of %s" i func.Ir.fname
  in
  bind 0 func.Ir.param_regs args;
  let rec run label =
    (* fuel is also charged per block so empty infinite loops terminate *)
    if t.fuel <= 0 then raise Out_of_fuel;
    t.fuel <- t.fuel - 1;
    t.hooks.on_block func label;
    (match Hashtbl.find_opt t.region_entries (func.Ir.fname, label) with
    | Some region ->
        let actuals =
          List.map
            (fun (set, ops) -> (set, List.map (eval_operand regs) ops))
            region.Ir.rrefs
        in
        t.hooks.on_region_enter func region actuals regs
    | None -> ());
    let block = Ir.block func label in
    List.iter (exec_instr t func regs) block.Ir.instrs;
    charge t Costmodel.terminator_cost;
    match block.Ir.term with
    | Ir.Jump l -> run l
    | Ir.Branch (c, l1, l2) ->
        if Value.to_bool ~what:"branch condition" (eval_operand regs c) then run l1 else run l2
    | Ir.Ret vo -> Option.map (eval_operand regs) vo
  in
  run func.Ir.entry

and exec_instr t func regs (i : Ir.instr) =
  if t.fuel <= 0 then raise Out_of_fuel;
  t.fuel <- t.fuel - 1;
  t.hooks.on_instr func i;
  charge t (Costmodel.instr_cost i.Ir.desc);
  match i.Ir.desc with
  | Ir.Move (r, op) -> regs.(r) <- eval_operand regs op
  | Ir.Binop (op, ty, r, a, b) ->
      regs.(r) <- eval_binop op ty (eval_operand regs a) (eval_operand regs b)
  | Ir.Unop (op, _, r, a) -> regs.(r) <- eval_unop op (eval_operand regs a)
  | Ir.Load_global (r, g) -> (
      match Hashtbl.find_opt t.globals g with
      | Some v -> regs.(r) <- v
      | None -> Diag.error "runtime: unknown global '%s'" g)
  | Ir.Store_global (g, op) -> Hashtbl.replace t.globals g (eval_operand regs op)
  | Ir.Load_index (r, arr, idx) ->
      let a = Value.to_array ~what:"indexed value" (eval_operand regs arr) in
      let j = Value.to_int ~what:"index" (eval_operand regs idx) in
      if j < 0 || j >= Array.length a then
        Diag.error ~loc:i.Ir.iloc "runtime: index %d out of bounds (length %d)" j
          (Array.length a);
      regs.(r) <- a.(j)
  | Ir.Store_index (arr, idx, v) ->
      let a = Value.to_array ~what:"indexed value" (eval_operand regs arr) in
      let j = Value.to_int ~what:"index" (eval_operand regs idx) in
      if j < 0 || j >= Array.length a then
        Diag.error ~loc:i.Ir.iloc "runtime: index %d out of bounds (length %d)" j
          (Array.length a);
      a.(j) <- eval_operand regs v
  | Ir.Call { dst; callee; args; enabled } -> (
      let argv = List.map (eval_operand regs) args in
      match Builtins.find callee with
      | Some bi ->
          let v, cost = bi.Builtins.impl t.machine argv in
          (* builtin cost is reported through its own hook, not on_base_cost *)
          t.total_cost <- t.total_cost +. cost;
          t.hooks.on_builtin bi cost;
          (match dst with Some r -> regs.(r) <- v | None -> ())
      | None -> (
          match Ir.find_func t.prog callee with
          | Some f -> (
              let en_actuals =
                List.map
                  (fun (e : Ir.enable) ->
                    ( e.Ir.en_block,
                      List.map
                        (fun (set, ops) -> (set, List.map (eval_operand regs) ops))
                        e.Ir.en_sets ))
                  enabled
              in
              t.hooks.on_call_actuals i argv en_actuals;
              let result = exec_func t f argv in
              match (dst, result) with
              | Some r, Some v -> regs.(r) <- v
              | Some r, None -> regs.(r) <- Value.Vint 0
              | None, _ -> ())
          | None -> Diag.error ~loc:i.Ir.iloc "runtime: call to unknown function '%s'" callee))

(** Execute one commutative region of [func] in isolation, starting from
    its entry block with the given register file, and stop as soon as
    control leaves the region's blocks (the single external exit that
    well-formedness guarantees) or the function returns. Used by the
    commutativity sanitizer to replay a traced member instance on a cloned
    machine; deliberately does not re-fire [on_region_enter]. *)
let exec_region t (func : Ir.func) (regs : Value.t array) (region : Ir.region) : unit =
  let labels = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      if List.mem region.Ir.rid b.Ir.bregions then Hashtbl.replace labels b.Ir.label ())
    (Ir.blocks_in_order func);
  let rec run label =
    if Hashtbl.mem labels label then begin
      if t.fuel <= 0 then raise Out_of_fuel;
      t.fuel <- t.fuel - 1;
      t.hooks.on_block func label;
      let block = Ir.block func label in
      List.iter (exec_instr t func regs) block.Ir.instrs;
      charge t Costmodel.terminator_cost;
      match block.Ir.term with
      | Ir.Jump l -> run l
      | Ir.Branch (c, l1, l2) ->
          if Value.to_bool ~what:"branch condition" (eval_operand regs c) then run l1
          else run l2
      | Ir.Ret _ -> ()
    end
  in
  run region.Ir.rentry

(** Run [main()] to completion; returns total simulated cycles. *)
let run_main t =
  match Ir.find_func t.prog "main" with
  | Some main ->
      let _ = exec_func t main [] in
      t.total_cost
  | None -> Diag.error "program has no 'main' function"
