(** Structured *difference residue* of two member interleavings.

    Differencing the final abstract stores of [A;B] and [B;A] no longer
    collapses straight to a verdict: each conflicting location
    contributes one {!atom} describing exactly how (or whether) the two
    orders disagree there. The residue as a whole is the obstruction to
    commutativity — an empty (or all-[Agree]) residue means the orders
    provably reach equal stores, a [Benign]-only residue means they
    agree modulo the paper's observation equivalence (handle renaming,
    exchanged cursor/RNG draws), and the first [Opaque] or [Diverge]
    atom names the location and reason commutativity could not be
    established. The synthesizer consumes residues to decide which
    membership claims (and which predicates) make the obstruction
    vanish; the verifier folds them into {!Verdict.t}s. *)

module S = Commset_analysis.Symexec
module Effects = Commset_analysis.Effects

(** A provable disagreement of the final stores: location plus the two
    symbolic final values ([dv1] for order B;A, [dv2] for A;B). *)
type divergence = { dloc : Effects.location; dv1 : S.sval; dv2 : S.sval }

(** How the two orders relate at one location. *)
type status =
  | Agree  (** provably equal final state *)
  | Benign  (** equal modulo observation equivalence (renaming/exchange) *)
  | Opaque  (** cannot be decided with the available structure *)
  | Diverge of divergence  (** the final stores provably differ *)

type atom = {
  rloc : Effects.location option;
      (** the conflicting location, when the disagreement is localized *)
  rstatus : status;
  rdetail : string;  (** human-readable reason *)
}

type t = atom list

let rank = function Agree -> 0 | Benign -> 1 | Opaque -> 2 | Diverge _ -> 3

let status_label = function
  | Agree -> "agree"
  | Benign -> "benign"
  | Opaque -> "opaque"
  | Diverge _ -> "diverge"

let atom ?loc status detail = { rloc = loc; rstatus = status; rdetail = detail }

(** The worst status in the residue; an empty residue agrees. *)
let worst (r : t) =
  List.fold_left
    (fun acc a -> if rank a.rstatus > rank acc then a.rstatus else acc)
    Agree r

(** Clean residues are those a sound annotation may claim: every atom is
    [Agree] or [Benign]. *)
let clean r = rank (worst r) <= rank Benign

(** Exactly provable: every atom agrees outright. *)
let exact r = worst r = Agree

let divergence r =
  List.find_map
    (fun a -> match a.rstatus with Diverge d -> Some d | _ -> None)
    r

(* the most severe atom, for one-line summaries *)
let dominant (r : t) =
  List.fold_left
    (fun acc a ->
      match acc with
      | None -> Some a
      | Some b -> if rank a.rstatus > rank b.rstatus then Some a else acc)
    None r

let describe (r : t) =
  match dominant r with
  | None -> "no conflicting state"
  | Some a -> (
      let where =
        match a.rloc with
        | Some l -> Format.asprintf " at %a" Effects.pp_location l
        | None -> ""
      in
      match a.rstatus with
      | Agree -> a.rdetail
      | Benign -> a.rdetail
      | Opaque -> Printf.sprintf "%s%s" a.rdetail where
      | Diverge _ -> Printf.sprintf "final stores differ%s: %s" where a.rdetail)
