lib/lang/typecheck.ml: Ast Commset_support Diag Hashtbl List Loc Option
