(** Dynamic refutation of commutativity annotations: replay recorded
    member instances in both orders on cloned machine state and compare
    the outcomes. Upgrades [Unknown] pairs to [Refuted] with a concrete
    witness; never upgrades to [Proved] — a passed trial is evidence,
    not proof. *)

module Ir = Commset_ir.Ir
module Metadata = Commset_core.Metadata
module Machine = Commset_runtime.Machine
module Value = Commset_runtime.Value

(** How to re-execute a recorded instance. *)
type body =
  | Bregion of { bfunc : Ir.func; bregion : Ir.region; bregs : Value.t array }
  | Bfun of { bfunc : Ir.func; bargs : Value.t list }

(** One recorded dynamic instance of a member. *)
type inv = {
  imember : Metadata.member;
  iactuals : (string * Value.t list) list;
  ibody : body;
  iseq : int;
  isnap : (Machine.t * (string * Value.t) list) option;
}

(** Run the program once under instrumentation and record member
    instances with state snapshots. Passing [?prepared] (from
    [Precompile.prepare] of the same program) records on the
    prepared-program engine; replay always uses the reference
    interpreter's region/function entry points. *)
val record :
  max_snapshots:int ->
  ?prepared:Commset_runtime.Precompile.t ->
  md:Metadata.t ->
  setup:(Machine.t -> unit) ->
  Ir.program ->
  inv list

(** May this pair be replayed fairly (writes confined to snapshot-covered
    or member-local state)? *)
val eligible : Metadata.t -> Metadata.member -> Metadata.member -> bool

(** Try to refute one pair from recorded instances. *)
val refute_pair :
  prog:Ir.program ->
  max_trials:int ->
  inv list ->
  Metadata.set_info ->
  Metadata.member ->
  Metadata.member ->
  pself:bool ->
  Verdict.t option * int

(** Re-try every [Unknown] pair of a static report concretely. *)
val refine :
  ?max_snapshots:int ->
  ?max_trials:int ->
  ?prepared:Commset_runtime.Precompile.t ->
  md:Metadata.t ->
  setup:(Machine.t -> unit) ->
  Verdict.report ->
  Verdict.report
