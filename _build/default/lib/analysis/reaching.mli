(** Reaching definitions restricted to one loop, separating same-iteration
    facts from loop-carried facts.

    For a use of register [r] inside the loop: a def reaches it
    *intra-iteration* when a def-clear path avoids the back edge, and
    *loop-carried* when the def is live out of a latch and a def-clear
    path from the header reaches the use (loop-carried facts are killed
    by the current iteration's own defs, never re-generated). *)

module Ir = Commset_ir.Ir

type t

val compute : Cfg.t -> Loops.loop -> t

(** Defs of [reg] reaching the instruction [use_iid] within the same
    iteration, as defining-instruction ids. *)
val intra_defs : t -> use_iid:int -> reg:Ir.reg -> int list

(** Defs of [reg] reaching [use_iid] from earlier iterations. *)
val carried_defs : t -> use_iid:int -> reg:Ir.reg -> int list

(** Same queries at a block's terminator. *)
val intra_defs_at_end : t -> label:Ir.label -> reg:Ir.reg -> int list

val carried_defs_at_end : t -> label:Ir.label -> reg:Ir.reg -> int list
