(** The synchronization engine (§4.6): assigns each commset a lock ranked
    by registration order and computes the commsets whose locks every PDG
    node must hold. A commset needs no compiler lock when it is marked
    COMMSETNOSYNC or when all member effects come from internally
    thread-safe builtins (Lib mode). *)

module Pdg = Commset_pdg.Pdg
module Metadata = Commset_core.Metadata
module Trace = Commset_runtime.Trace

type set_sync = {
  ss_name : string;
  ss_rank : int;
  ss_nosync : bool;
  ss_lib_safe : bool;  (** all member effects come from thread-safe builtins *)
}

type t = {
  md : Metadata.t;
  set_sync : (string, set_sync) Hashtbl.t;
  node_locks : (int, string list) Hashtbl.t;  (** compiler-locked sets per node, rank order *)
  node_sets_all : (int, string list) Hashtbl.t;
}

val compute : Metadata.t -> Pdg.t -> Trace.t -> Commset_analysis.Privatization.t -> t

(** Commsets whose locks the node must hold, in global rank order. *)
val locks_of : t -> int -> string list

val any_compiler_locks : t -> bool

(** Are all locked members TM-safe (no irrevocable builtins, no output)? *)
val tm_applicable : t -> Trace.t -> bool

(** Empty assignment, for the non-COMMSET baseline plans. *)
val none : Metadata.t -> t
