lib/runtime/value.mli: Commset_ir Format
