(** Common shape of the eight evaluation workloads (paper Table 2):
    annotated miniC source, optional annotation variants, machine setup,
    and the paper's reported numbers for EXPERIMENTS.md comparisons. *)

type t = {
  wname : string;  (** short name used on the command line *)
  paper_name : string;  (** name in the paper's Table 2 *)
  description : string;
  source : string;  (** primary annotated miniC source *)
  variants : (string * string) list;  (** extra annotation variants (name, source) *)
  setup : Commset_runtime.Machine.t -> unit;
  paper_best_scheme : string;
  paper_best_speedup : float;  (** on eight threads *)
  paper_annotations : int;
  paper_sloc : int;
  paper_loop_fraction : float;
  paper_features : string list;  (** PI/PC/C/I/S/G *)
  paper_transforms : string list;
}

(** Strip every [#pragma] line: the sequential program the annotations
    decorate (the paper's elision property). *)
val strip_pragmas : string -> string
