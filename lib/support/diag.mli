(** Compiler diagnostics: errors and warnings carrying source locations.

    All front-end and analysis failures are reported through {!error},
    which raises {!Error}; drivers catch it once at the top level.
    Lint-style passes run under {!collect}, which accumulates many
    diagnostics instead of stopping at the first one. *)

type severity = Error_sev | Warning_sev

type diagnostic = {
  severity : severity;
  loc : Loc.t;
  code : string option;  (** stable machine-readable code, e.g. ["CS001"] *)
  message : string;
}

exception Error of diagnostic

val diagnostic : ?code:string -> severity -> Loc.t -> string -> diagnostic

(** [error ~loc ~code fmt ...] raises {!Error} with the formatted message. *)
val error : ?loc:Loc.t -> ?code:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val errorf : ?loc:Loc.t -> ?code:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [report d] appends [d] to the active {!collect} sink; outside of
    [collect] an error is raised and a warning is dropped. *)
val report : diagnostic -> unit

(** [warn ~loc ~code fmt ...] reports a warning diagnostic (see {!report}). *)
val warn : ?loc:Loc.t -> ?code:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** [collect f] runs [f ()] with an accumulation sink installed and
    returns every diagnostic reported, in order. A raised [Error] is
    captured as the final diagnostic instead of propagating. *)
val collect : (unit -> unit) -> diagnostic list

val pp_severity : Format.formatter -> severity -> unit
val pp : Format.formatter -> diagnostic -> unit
val to_string : diagnostic -> string

(** [guard f] runs [f ()] and converts a raised diagnostic into [Error]. *)
val guard : (unit -> 'a) -> ('a, diagnostic) result

(** [message_of_exn e] renders a diagnostic exception for test assertions. *)
val message_of_exn : exn -> string option
