lib/support/digraph.ml: Hashtbl List
