(** Recursive-descent parser for miniC, including the COMMSET pragma
    sub-grammar.

    Pragmas arrive from the lexer as raw [PRAGMA] lines; [parse_pragma]
    re-tokenizes the payload with the same lexer and parses it with the
    same expression grammar, so predicate expressions are ordinary miniC
    expressions. *)

open Commset_support
open Ast

type state = {
  mutable toks : Token.spanned list;
  mutable last_loc : Loc.t;
  mutable next_block_id : int;
}

let make_state toks = { toks; last_loc = Loc.dummy; next_block_id = 0 }

let peek st = match st.toks with [] -> Token.EOF | t :: _ -> t.Token.tok

let peek2 st = match st.toks with _ :: t :: _ -> t.Token.tok | _ -> Token.EOF

let cur_loc st = match st.toks with [] -> st.last_loc | t :: _ -> t.Token.loc

let advance st =
  match st.toks with
  | [] -> ()
  | t :: rest ->
      st.last_loc <- t.Token.loc;
      st.toks <- rest

let error st fmt = Diag.error ~loc:(cur_loc st) fmt

let expect st tok =
  if Token.equal (peek st) tok then advance st
  else
    error st "expected '%s' but found '%s'" (Token.to_string tok) (Token.to_string (peek st))

let expect_ident st =
  match peek st with
  | Token.IDENT name ->
      advance st;
      name
  | other -> error st "expected identifier but found '%s'" (Token.to_string other)

let fresh_block_id st =
  let id = st.next_block_id in
  st.next_block_id <- id + 1;
  id

(* ------------------------------------------------------------------ *)
(* Types                                                                *)
(* ------------------------------------------------------------------ *)

let rec parse_type st =
  let base =
    match peek st with
    | Token.KW_INT -> advance st; Tint
    | Token.KW_FLOAT -> advance st; Tfloat
    | Token.KW_BOOL -> advance st; Tbool
    | Token.KW_STRING -> advance st; Tstring
    | Token.KW_VOID -> advance st; Tvoid
    | other -> error st "expected a type but found '%s'" (Token.to_string other)
  in
  parse_array_suffix st base

and parse_array_suffix st base =
  if peek st = Token.LBRACKET && peek2 st = Token.RBRACKET then begin
    advance st;
    advance st;
    parse_array_suffix st (Tarray base)
  end
  else base

let looks_like_type st =
  match peek st with
  | Token.KW_INT | Token.KW_FLOAT | Token.KW_BOOL | Token.KW_STRING | Token.KW_VOID -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

let binop_of_token = function
  | Token.OROR -> Some (Or, 1)
  | Token.ANDAND -> Some (And, 2)
  | Token.EQEQ -> Some (Eq, 3)
  | Token.NEQ -> Some (Neq, 3)
  | Token.LT -> Some (Lt, 4)
  | Token.LE -> Some (Le, 4)
  | Token.GT -> Some (Gt, 4)
  | Token.GE -> Some (Ge, 4)
  | Token.PLUS -> Some (Add, 5)
  | Token.MINUS -> Some (Sub, 5)
  | Token.STAR -> Some (Mul, 6)
  | Token.SLASH -> Some (Div, 6)
  | Token.PERCENT -> Some (Mod, 6)
  | _ -> None

let mk_expr desc loc = { edesc = desc; eloc = loc; ety = None }

let rec parse_expr st = parse_binary st 1

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        loop (mk_expr (Binop (op, lhs, rhs)) (Loc.merge lhs.eloc rhs.eloc))
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  let loc = cur_loc st in
  match peek st with
  | Token.MINUS ->
      advance st;
      let e = parse_unary st in
      mk_expr (Unop (Neg, e)) (Loc.merge loc e.eloc)
  | Token.BANG ->
      advance st;
      let e = parse_unary st in
      mk_expr (Unop (Not, e)) (Loc.merge loc e.eloc)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = parse_primary st in
  let rec loop e =
    match peek st with
    | Token.LBRACKET ->
        advance st;
        let idx = parse_expr st in
        let close = cur_loc st in
        expect st Token.RBRACKET;
        loop (mk_expr (Index (e, idx)) (Loc.merge e.eloc close))
    | _ -> e
  in
  loop e

and parse_primary st =
  let loc = cur_loc st in
  match peek st with
  | Token.INT_LIT n ->
      advance st;
      mk_expr (Int_lit n) loc
  | Token.FLOAT_LIT f ->
      advance st;
      mk_expr (Float_lit f) loc
  | Token.STRING_LIT s ->
      advance st;
      mk_expr (String_lit s) loc
  | Token.KW_TRUE ->
      advance st;
      mk_expr (Bool_lit true) loc
  | Token.KW_FALSE ->
      advance st;
      mk_expr (Bool_lit false) loc
  | Token.IDENT name ->
      advance st;
      if peek st = Token.LPAREN then begin
        advance st;
        let args = parse_args st in
        let close = cur_loc st in
        expect st Token.RPAREN;
        mk_expr (Call (name, args)) (Loc.merge loc close)
      end
      else mk_expr (Var name) loc
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | other -> error st "expected an expression but found '%s'" (Token.to_string other)

and parse_args st =
  if peek st = Token.RPAREN then []
  else
    let rec loop acc =
      let e = parse_expr st in
      if peek st = Token.COMMA then begin
        advance st;
        loop (e :: acc)
      end
      else List.rev (e :: acc)
    in
    loop []

(* ------------------------------------------------------------------ *)
(* Pragmas                                                             *)
(* ------------------------------------------------------------------ *)

let parse_commset_ref st =
  let set_name = expect_ident st in
  let actuals =
    if peek st = Token.LPAREN then begin
      advance st;
      let args = parse_args st in
      expect st Token.RPAREN;
      args
    end
    else []
  in
  { set_name; actuals }

let parse_commset_refs st =
  let rec loop acc =
    let r = parse_commset_ref st in
    if peek st = Token.COMMA then begin
      advance st;
      loop (r :: acc)
    end
    else List.rev (r :: acc)
  in
  loop []

let parse_param_list st =
  expect st Token.LPAREN;
  let rec loop acc =
    match peek st with
    | Token.RPAREN ->
        advance st;
        List.rev acc
    | _ ->
        let name = expect_ident st in
        if peek st = Token.COMMA then begin
          advance st;
          loop (name :: acc)
        end
        else begin
          expect st Token.RPAREN;
          List.rev (name :: acc)
        end
  in
  loop []

(** Parse the payload of a [#pragma] line. Grammar:
    {v
    commset decl NAME (self|group)
    commset predicate NAME (p1,..) (q1,..) (expr)
    commset nosync NAME
    commset member REF {, REF}
    commset namedblock NAME
    commset namedarg NAME
    commset enable FN . BLOCK in REF {, REF}
    v} *)
let parse_pragma ploc text =
  let toks = Lexer.tokenize ~file:(Loc.to_string ploc) text in
  let st = make_state toks in
  let kind = expect_ident st in
  if kind <> "commset" then Diag.error ~loc:ploc "unknown pragma '%s' (expected 'commset')" kind;
  let directive = expect_ident st in
  let pdesc =
    match directive with
    | "decl" ->
        let set_name = expect_ident st in
        let k = expect_ident st in
        let kind =
          match k with
          | "self" -> Self_set
          | "group" -> Group_set
          | other -> error st "commset kind must be 'self' or 'group', found '%s'" other
        in
        P_decl { set_name; kind }
    | "predicate" ->
        let set_name = expect_ident st in
        let params1 = parse_param_list st in
        let params2 = parse_param_list st in
        expect st Token.LPAREN;
        let body = parse_expr st in
        expect st Token.RPAREN;
        P_predicate { set_name; params1; params2; body }
    | "nosync" -> P_nosync (expect_ident st)
    | "member" -> P_member (parse_commset_refs st)
    | "namedblock" -> P_namedblock (expect_ident st)
    | "namedarg" -> P_namedarg (expect_ident st)
    | "enable" ->
        let callee = expect_ident st in
        expect st Token.DOT;
        let block_name = expect_ident st in
        let in_kw = expect_ident st in
        if in_kw <> "in" then error st "expected 'in' in enable pragma, found '%s'" in_kw;
        let sets = parse_commset_refs st in
        P_enable { callee; block_name; sets }
    | other -> error st "unknown commset directive '%s'" other
  in
  if peek st <> Token.EOF then
    error st "trailing tokens in pragma after directive '%s'" directive;
  { pdesc; ploc }

let pragma_attaches_to_block p =
  match p.pdesc with
  | P_member _ | P_namedblock _ -> true
  | P_decl _ | P_predicate _ | P_nosync _ | P_namedarg _ | P_enable _ -> false

let pragma_attaches_to_fun p =
  match p.pdesc with
  | P_member _ | P_namedarg _ -> true
  | P_decl _ | P_predicate _ | P_nosync _ | P_namedblock _ | P_enable _ -> false

let pragma_is_global p =
  match p.pdesc with
  | P_decl _ | P_predicate _ | P_nosync _ -> true
  | P_member _ | P_namedblock _ | P_namedarg _ | P_enable _ -> false

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let mk_stmt desc loc = { sdesc = desc; sloc = loc }

(* Collect consecutive PRAGMA tokens in statement position. *)
let rec collect_pragmas st acc =
  match peek st with
  | Token.PRAGMA text ->
      let loc = cur_loc st in
      advance st;
      collect_pragmas st (parse_pragma loc text :: acc)
  | _ -> List.rev acc

let rec parse_block ?(annots = []) st =
  let open_loc = cur_loc st in
  expect st Token.LBRACE;
  let block_id = fresh_block_id st in
  let rec loop acc =
    match peek st with
    | Token.RBRACE ->
        advance st;
        List.rev acc
    | Token.EOF -> error st "unexpected end of input inside block"
    | _ -> loop (parse_stmt st :: acc)
  in
  let stmts = loop [] in
  { stmts; block_id; annots; bloc = Loc.merge open_loc st.last_loc }

and parse_stmt st =
  match peek st with
  | Token.PRAGMA _ ->
      let pragmas = collect_pragmas st [] in
      let block_pragmas, stmt_pragmas = List.partition pragma_attaches_to_block pragmas in
      (* statement-position pragmas like `enable` become Pragma_stmt nodes;
         block pragmas attach to the block that must follow. *)
      if block_pragmas <> [] then begin
        if peek st <> Token.LBRACE then
          error st "a 'member'/'namedblock' pragma must be followed by a '{' block";
        let b = parse_block ~annots:block_pragmas st in
        match stmt_pragmas with
        | [] -> mk_stmt (Block b) b.bloc
        | p :: _ -> Diag.error ~loc:p.ploc "pragma cannot be mixed with block annotations here"
      end
      else begin
        match stmt_pragmas with
        | [ p ] -> mk_stmt (Pragma_stmt p) p.ploc
        | p :: _ :: _ ->
            Diag.error ~loc:p.ploc "only one statement-position pragma is allowed at a time"
        | [] -> error st "empty pragma group"
      end
  | Token.LBRACE ->
      let b = parse_block st in
      mk_stmt (Block b) b.bloc
  | Token.KW_IF -> parse_if st
  | Token.KW_WHILE -> parse_while st
  | Token.KW_FOR -> parse_for st
  | Token.KW_RETURN ->
      let loc = cur_loc st in
      advance st;
      if peek st = Token.SEMI then begin
        advance st;
        mk_stmt (Return None) loc
      end
      else begin
        let e = parse_expr st in
        expect st Token.SEMI;
        mk_stmt (Return (Some e)) (Loc.merge loc e.eloc)
      end
  | Token.KW_BREAK ->
      let loc = cur_loc st in
      advance st;
      expect st Token.SEMI;
      mk_stmt Break loc
  | Token.KW_CONTINUE ->
      let loc = cur_loc st in
      advance st;
      expect st Token.SEMI;
      mk_stmt Continue loc
  | _ when looks_like_type st ->
      let s = parse_decl_stmt st in
      expect st Token.SEMI;
      s
  | _ ->
      let s = parse_simple_stmt st in
      expect st Token.SEMI;
      s

and parse_decl_stmt st =
  let loc = cur_loc st in
  let ty = parse_type st in
  let name = expect_ident st in
  let init =
    if peek st = Token.ASSIGN then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  mk_stmt (Decl (ty, name, init)) (Loc.merge loc st.last_loc)

(* assignment / call / increment, without the trailing semicolon *)
and parse_simple_stmt st =
  let loc = cur_loc st in
  match (peek st, peek2 st) with
  | Token.IDENT name, Token.ASSIGN ->
      advance st;
      advance st;
      let e = parse_expr st in
      mk_stmt (Assign (name, e)) (Loc.merge loc e.eloc)
  | Token.IDENT name, Token.PLUSPLUS ->
      advance st;
      advance st;
      let one = mk_expr (Int_lit 1) loc in
      let v = mk_expr (Var name) loc in
      mk_stmt (Assign (name, mk_expr (Binop (Add, v, one)) loc)) loc
  | Token.IDENT name, Token.MINUSMINUS ->
      advance st;
      advance st;
      let one = mk_expr (Int_lit 1) loc in
      let v = mk_expr (Var name) loc in
      mk_stmt (Assign (name, mk_expr (Binop (Sub, v, one)) loc)) loc
  | Token.IDENT name, Token.PLUSEQ ->
      advance st;
      advance st;
      let e = parse_expr st in
      let v = mk_expr (Var name) loc in
      mk_stmt (Assign (name, mk_expr (Binop (Add, v, e)) (Loc.merge loc e.eloc))) loc
  | Token.IDENT name, Token.MINUSEQ ->
      advance st;
      advance st;
      let e = parse_expr st in
      let v = mk_expr (Var name) loc in
      mk_stmt (Assign (name, mk_expr (Binop (Sub, v, e)) (Loc.merge loc e.eloc))) loc
  | _ ->
      (* expression statement, or array store `a[i] = e` *)
      let e = parse_expr st in
      if peek st = Token.ASSIGN then begin
        match e.edesc with
        | Index (arr, idx) ->
            advance st;
            let rhs = parse_expr st in
            mk_stmt (Store (arr, idx, rhs)) (Loc.merge loc rhs.eloc)
        | _ -> error st "left-hand side of assignment must be a variable or array element"
      end
      else
        match e.edesc with
        | Call _ -> mk_stmt (Expr e) e.eloc
        | _ -> error st "expression statement must be a call"

and parse_if st =
  let loc = cur_loc st in
  expect st Token.KW_IF;
  expect st Token.LPAREN;
  let cond = parse_expr st in
  expect st Token.RPAREN;
  let then_b = parse_stmt_as_block st in
  let else_b =
    if peek st = Token.KW_ELSE then begin
      advance st;
      Some (parse_stmt_as_block st)
    end
    else None
  in
  mk_stmt (If (cond, then_b, else_b)) (Loc.merge loc st.last_loc)

and parse_while st =
  let loc = cur_loc st in
  expect st Token.KW_WHILE;
  expect st Token.LPAREN;
  let cond = parse_expr st in
  expect st Token.RPAREN;
  let body = parse_stmt_as_block st in
  mk_stmt (While (cond, body)) (Loc.merge loc st.last_loc)

and parse_for st =
  let loc = cur_loc st in
  expect st Token.KW_FOR;
  expect st Token.LPAREN;
  let init =
    if peek st = Token.SEMI then None
    else if looks_like_type st then Some (parse_decl_stmt st)
    else Some (parse_simple_stmt st)
  in
  expect st Token.SEMI;
  let cond = if peek st = Token.SEMI then None else Some (parse_expr st) in
  expect st Token.SEMI;
  let step = if peek st = Token.RPAREN then None else Some (parse_simple_stmt st) in
  expect st Token.RPAREN;
  let body = parse_stmt_as_block st in
  mk_stmt (For (init, cond, step, body)) (Loc.merge loc st.last_loc)

(* A loop/conditional body: either a braced block (possibly annotated) or a
   single statement wrapped in a fresh block. *)
and parse_stmt_as_block st =
  match peek st with
  | Token.LBRACE -> parse_block st
  | Token.PRAGMA _ -> (
      let s = parse_stmt st in
      match s.sdesc with
      | Block b -> b
      | _ -> { stmts = [ s ]; block_id = fresh_block_id st; annots = []; bloc = s.sloc })
  | _ ->
      let s = parse_stmt st in
      { stmts = [ s ]; block_id = fresh_block_id st; annots = []; bloc = s.sloc }

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_params st =
  expect st Token.LPAREN;
  if peek st = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let ty = parse_type st in
      let name = expect_ident st in
      if peek st = Token.COMMA then begin
        advance st;
        loop ((ty, name) :: acc)
      end
      else begin
        expect st Token.RPAREN;
        List.rev ((ty, name) :: acc)
      end
    in
    loop []
  end

let parse_topdecl st pending_pragmas =
  let loc = cur_loc st in
  let ty = parse_type st in
  let name = expect_ident st in
  if peek st = Token.LPAREN then begin
    let params = parse_params st in
    let fannots = List.filter pragma_attaches_to_fun pending_pragmas in
    let strays = List.filter (fun p -> not (pragma_attaches_to_fun p)) pending_pragmas in
    (match strays with
    | [] -> ()
    | p :: _ -> Diag.error ~loc:p.ploc "this pragma cannot be attached to a function declaration");
    let body = parse_block st in
    Gfun { fname = name; params; ret = ty; body; fannots; floc = Loc.merge loc st.last_loc }
  end
  else begin
    (match pending_pragmas with
    | [] -> ()
    | p :: _ -> Diag.error ~loc:p.ploc "pragmas cannot be attached to a global variable");
    let init =
      if peek st = Token.ASSIGN then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    expect st Token.SEMI;
    Gvar { gty = ty; gname = name; ginit = init; gloc = Loc.merge loc st.last_loc }
  end

(** Parse a whole program from source text. *)
let parse_program ?(file = "<string>") src =
  let toks = Lexer.tokenize ~file src in
  let st = make_state toks in
  let rec loop globals decls =
    match peek st with
    | Token.EOF -> { global_pragmas = List.rev globals; decls = List.rev decls }
    | Token.PRAGMA _ ->
        let pragmas = collect_pragmas st [] in
        let global_ps, attached = List.partition pragma_is_global pragmas in
        if attached = [] then loop (List.rev_append global_ps globals) decls
        else begin
          (* attached pragmas must precede a function declaration *)
          if not (looks_like_type st) then
            Diag.error ~loc:(cur_loc st)
              "member/namedarg pragmas at top level must precede a function declaration";
          let d = parse_topdecl st attached in
          loop (List.rev_append global_ps globals) (d :: decls)
        end
    | _ when looks_like_type st ->
        let d = parse_topdecl st [] in
        loop globals (d :: decls)
    | other -> error st "expected a declaration but found '%s'" (Token.to_string other)
  in
  loop [] []

(** Parse a single expression, for tests and the predicate sub-grammar. *)
let parse_expr_string ?(file = "<expr>") src =
  let toks = Lexer.tokenize ~file src in
  let st = make_state toks in
  let e = parse_expr st in
  if peek st <> Token.EOF then error st "trailing tokens after expression";
  e
