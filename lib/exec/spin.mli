(** Busy-wait primitives for the real multicore backend: an adaptive
    backoff and a test-and-test-and-set spin lock.

    Both are tuned for the two machines we actually run on. On a
    multicore box a waiter stays on the CPU ({!Domain.cpu_relax}) for a
    couple hundred rounds — the expected wait for a short critical
    section or a draining queue slot is well under a microsecond. On an
    oversubscribed or single-core box the partner domain cannot run
    until the OS preempts us, so after the spin budget the waiter yields
    its timeslice with a short [nanosleep]; without that fallback a
    producer blocked on a full queue would burn its entire quantum
    spinning against a consumer that is not running. *)

(** Spin rounds before a waiter starts yielding to the OS scheduler —
    read from {!Commset_runtime.Costmodel.exec_spin_rounds}, so the
    [COMMSET_SPIN_ROUNDS] / [COMMSET_SPIN_SLEEP_US] environment knobs
    tune the backoff without a recompile. *)
val spin_rounds : unit -> int

(** One waiter's backoff state; create one per blocking episode. *)
type backoff

val backoff : unit -> backoff

(** One backoff step: {!Domain.cpu_relax} for the first {!spin_rounds}
    calls, then sleeps. The first
    {!Commset_runtime.Costmodel.exec_idle_sleep_after} sleeps use the
    base quantum (short blocking episodes behave exactly as before);
    after that the waiter is long-idle and the quantum doubles per
    sleep up to {!Commset_runtime.Costmodel.exec_idle_sleep_cap_s} —
    an idle daemon worker parks at ~0% CPU with wakeup latency bounded
    by the cap. *)
val once : backoff -> unit

(** Forget accumulated idleness: the next {!once} is back at the
    responsive tier. Call after a successful wait when reusing one
    backoff across episodes (long-lived worker loops). *)
val reset : backoff -> unit

(** The sleep quantum the next spent-budget {!once} would pay (tests
    pin the escalation schedule through this). *)
val current_sleep_s : backoff -> float

(** Test-and-test-and-set spin lock over a [bool Atomic.t]. *)
type lock

val lock_create : unit -> lock

(** Non-blocking acquire attempt. *)
val try_acquire : lock -> bool

(** Blocking acquire; [on_contend] fires once per episode in which the
    first attempt failed (the real counterpart of the simulator's
    contended-acquire statistic). *)
val acquire : ?on_contend:(unit -> unit) -> lock -> unit

val release : lock -> unit
