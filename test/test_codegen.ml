(** Tests for the miniC→OCaml codegen backend: the differential suite
    pins [~engine:Codegen_engine] and asserts every workload's every
    executable plan actually ran compiled (no silent fallback to the
    interpreted real engine) and matched the sequential reference at
    jobs 1, 2 and 4; codegen-vs-interpreter cross-checks compare
    outputs and retired instruction counts on the same compilation; the
    cache tests cover warm in-process hits and recovery from a
    corrupted on-disk [.cmxs]; and a qcheck property compiles random
    small loop bodies and checks the generated code agrees with
    {!Commset_runtime.Precompile.run_iteration} (the interpreted real
    engine) on outputs and steps. *)

module P = Commset_pipeline.Pipeline
module W = Commset_workloads.Workload
module Registry = Commset_workloads.Registry
module T = Commset_transforms
module R = Commset_runtime
module Costmodel = Commset_runtime.Costmodel
module Exec = Commset_exec.Exec
module Pdg = Commset_pdg.Pdg
module Loops = Commset_analysis.Loops
module Codegen = Commset_codegen.Codegen

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---- engine selection API ---- *)

let test_engine_names () =
  check Alcotest.string "codegen" "codegen"
    (Exec.engine_name Exec.Codegen_engine);
  check Alcotest.bool "of_string codegen" true
    (Exec.engine_of_string "codegen" = Some Exec.Codegen_engine);
  check Alcotest.bool "of_string junk" true
    (Exec.engine_of_string "jit" = None)

(* ---- differential suite: explicit codegen engine, no fallback ---- *)

let codegen_all_plans (w : W.t) () =
  Costmodel.set_exec_ns_per_cycle 0.0;
  let c = P.compile ~name:w.W.wname ~setup:w.W.setup w.W.source in
  List.iter
    (fun jobs ->
      List.iter
        (fun (plan : T.Plan.t) ->
          let x = P.run_parallel ~engine:Exec.Codegen_engine ~jobs c plan in
          (if x.P.xstats.Exec.x_engine <> "codegen" then
             let why =
               Option.value ~default:"(no reason)"
                 x.P.xstats.Exec.x_engine_reason
             in
             Alcotest.failf "%s: %s at %d job(s): fell back to %s: %s" w.W.wname
               plan.T.Plan.label jobs x.P.xstats.Exec.x_engine why);
          if x.P.xfidelity = P.Mismatch then
            Alcotest.failf "%s: %s at %d job(s): output mismatch" w.W.wname
              plan.T.Plan.label jobs;
          check Alcotest.bool
            (Printf.sprintf "%s at %d job(s): iterations executed"
               plan.T.Plan.label jobs)
            true
            (x.P.xstats.Exec.x_iterations > 0))
        (P.executable_plans c ~threads:jobs))
    [ 1; 2; 4 ]

let differential_cases =
  List.map
    (fun w ->
      Alcotest.test_case
        (Printf.sprintf "%s: codegen engine, no fallback, jobs 1/2/4" w.W.wname)
        `Quick (codegen_all_plans w))
    Registry.all

(* ---- codegen vs interpreted real engine on one compilation ---- *)

let test_codegen_vs_real () =
  Costmodel.set_exec_ns_per_cycle 0.0;
  let w = Option.get (Registry.find "md5sum") in
  let c = P.compile ~name:w.W.wname ~setup:w.W.setup w.W.source in
  match P.executable_plans c ~threads:2 with
  | [] -> Alcotest.fail "no executable plan at 2 jobs"
  | plan :: _ ->
      let real = P.run_parallel ~engine:Exec.Real_engine ~jobs:2 c plan in
      let cg = P.run_parallel ~engine:Exec.Codegen_engine ~jobs:2 c plan in
      check Alcotest.string "real engine ran" "real" real.P.xstats.Exec.x_engine;
      check Alcotest.string "codegen engine ran" "codegen"
        cg.P.xstats.Exec.x_engine;
      check Alcotest.bool "real matches reference" true
        (real.P.xfidelity <> P.Mismatch);
      check Alcotest.bool "codegen matches reference" true
        (cg.P.xfidelity <> P.Mismatch);
      (* fuel accounting is exact: compiled bodies retire precisely the
         interpreter's steps, so the all-domain totals agree *)
      check Alcotest.int "instructions retired agree"
        real.P.xstats.Exec.x_steps cg.P.xstats.Exec.x_steps;
      let sorted l = List.sort String.compare l in
      check
        Alcotest.(list string)
        "codegen and real output multisets agree"
        (sorted real.P.xstats.Exec.x_outputs)
        (sorted cg.P.xstats.Exec.x_outputs)

(* ---- cache behaviour ---- *)

(* Two runs of the same compilation in one process: the second must be
   an in-process cache hit with zero compile seconds, and agree with the
   first on outputs. (The first run may itself hit the on-disk cache
   from an earlier test binary run — only the warm run is asserted.) *)
let test_cache_warm_agrees () =
  Costmodel.set_exec_ns_per_cycle 0.0;
  let w = Option.get (Registry.find "geti") in
  let c = P.compile ~name:w.W.wname ~setup:w.W.setup w.W.source in
  match P.executable_plans c ~threads:2 with
  | [] -> Alcotest.fail "no executable plan at 2 jobs"
  | plan :: _ ->
      let cold = P.run_parallel ~engine:Exec.Codegen_engine ~jobs:2 c plan in
      let warm = P.run_parallel ~engine:Exec.Codegen_engine ~jobs:2 c plan in
      check Alcotest.string "cold ran compiled" "codegen"
        cold.P.xstats.Exec.x_engine;
      check Alcotest.string "warm ran compiled" "codegen"
        warm.P.xstats.Exec.x_engine;
      check Alcotest.bool "warm run is a cache hit" true
        warm.P.xstats.Exec.x_codegen_cache_hit;
      check (Alcotest.float 1e-9) "warm run spends no compiler time" 0.
        warm.P.xstats.Exec.x_codegen_compile_s;
      let sorted l = List.sort String.compare l in
      check
        Alcotest.(list string)
        "cold and warm output multisets agree"
        (sorted cold.P.xstats.Exec.x_outputs)
        (sorted warm.P.xstats.Exec.x_outputs)

(* Replicate the executor's translation entry to reach the cache paths
   of one concrete program. *)
let rt_and_source (c : P.t) =
  let tgt = c.P.target in
  let pdg = tgt.P.pdg in
  let loop = pdg.Pdg.loop in
  let rt =
    match
      R.Precompile.plan_real c.P.prepared ~fname:pdg.Pdg.func.Commset_ir.Ir.fname
        ~header:loop.Loops.header ~latches:loop.Loops.latches
        ~body:loop.Loops.body
    with
    | Ok rt -> rt
    | Error why -> Alcotest.failf "plan_real refused the loop: %s" why
  in
  let nid_of_iid iid =
    match Pdg.node_of_instr pdg iid with Some nid -> nid | None -> -1
  in
  let src =
    match Codegen.source ~prepared:c.P.prepared ~rt ~nid_of_iid () with
    | Ok src -> src
    | Error why -> Alcotest.failf "uncompilable body: %s" why
  in
  (rt, nid_of_iid, src)

let remove_if_exists p = try Sys.remove p with Sys_error _ -> ()

(* A corrupted on-disk [.cmxs] must not poison the engine: the loader
   evicts the entry and recompiles from source, once. The corruption is
   seeded in a private cache directory at a path this process never
   successfully dlopened — dlopen dedupes by pathname, so corrupting a
   previously loaded path would just serve the old healthy mapping
   instead of reading the corrupted file. *)
let test_corrupted_cache_recompiles () =
  let w = Option.get (Registry.find "url") in
  let c = P.compile ~name:w.W.wname ~setup:w.W.setup w.W.source in
  let rt, nid_of_iid, src = rt_and_source c in
  let key = Codegen.key_of_source src in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "commset-cgtest-%d" (Unix.getpid ()))
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let old_cache = Sys.getenv_opt "COMMSET_CODEGEN_CACHE" in
  Unix.putenv "COMMSET_CODEGEN_CACHE" dir;
  Fun.protect ~finally:(fun () ->
      Unix.putenv "COMMSET_CODEGEN_CACHE" (Option.value ~default:"" old_cache);
      Codegen.reset_memo ())
  @@ fun () ->
  let ml, cmxs = Codegen.cache_paths ~key in
  remove_if_exists ml;
  remove_if_exists cmxs;
  let oc = open_out_bin cmxs in
  output_string oc "not a cmxs";
  close_out oc;
  Codegen.reset_memo ();
  let prepare () =
    match Codegen.prepare ~prepared:c.P.prepared ~rt ~nid_of_iid () with
    | Ok cg -> cg
    | Error why -> Alcotest.failf "codegen prepare failed: %s" why
  in
  let healed = prepare () in
  check Alcotest.bool "corrupted entry is recompiled, not reused" false
    healed.Codegen.cg_cache_hit;
  check Alcotest.string "recompile uses the source key" key
    healed.Codegen.cg_key;
  check Alcotest.bool "recompile rewrote the cmxs" true (Sys.file_exists cmxs);
  (* the recompiled entry is valid again: a fresh disk-path load hits *)
  Codegen.reset_memo ();
  let warm = prepare () in
  check Alcotest.bool "healed entry serves a disk cache hit" true
    warm.Codegen.cg_cache_hit

(* ---- property: random small loop bodies compile and agree ---- *)

(* Random int expression over the induction variable and constants,
   using only total operators (no division/modulo: both engines would
   trap identically, but a trapping program fails compilation's tracing
   run before any engine comparison happens). *)
type rexpr =
  | Rvar
  | Rconst of int
  | Radd of rexpr * rexpr
  | Rsub of rexpr * rexpr
  | Rmul of rexpr * rexpr

let rec rexpr_to_minic = function
  | Rvar -> "i"
  | Rconst n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | Radd (a, b) ->
      Printf.sprintf "(%s + %s)" (rexpr_to_minic a) (rexpr_to_minic b)
  | Rsub (a, b) ->
      Printf.sprintf "(%s - %s)" (rexpr_to_minic a) (rexpr_to_minic b)
  | Rmul (a, b) ->
      Printf.sprintf "(%s * %s)" (rexpr_to_minic a) (rexpr_to_minic b)

let gen_rexpr =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof [ return Rvar; map (fun k -> Rconst k) (int_range (-9) 9) ]
        else
          let sub = self (n / 2) in
          frequency
            [
              (1, return Rvar);
              (1, map (fun k -> Rconst k) (int_range (-9) 9));
              (2, map2 (fun a b -> Radd (a, b)) sub sub);
              (2, map2 (fun a b -> Rsub (a, b)) sub sub);
              (2, map2 (fun a b -> Rmul (a, b)) sub sub);
            ]))

let arb_rexpr = QCheck.make ~print:rexpr_to_minic gen_rexpr

let program_of_rexpr e =
  Printf.sprintf
    {|
#pragma commset decl PSET self
#pragma commset predicate PSET (a) (b) (a != b)

void main() {
  int n = 8;
  for (int i = 0; i < n; i++) {
    int x = %s;
    #pragma commset member PSET(i)
    {
      print(int_to_string(x));
    }
  }
}
|}
    (rexpr_to_minic e)

let prop_random_bodies_agree =
  QCheck.Test.make ~name:"codegen: random loop bodies compile and agree"
    ~count:12 arb_rexpr (fun e ->
      Costmodel.set_exec_ns_per_cycle 0.0;
      let c = P.compile ~name:"cg-prop" (program_of_rexpr e) in
      match P.executable_plans c ~threads:2 with
      | [] -> QCheck.Test.fail_report "no executable plan"
      | plan :: _ ->
          let real = P.run_parallel ~engine:Exec.Real_engine ~jobs:2 c plan in
          let cg = P.run_parallel ~engine:Exec.Codegen_engine ~jobs:2 c plan in
          if cg.P.xstats.Exec.x_engine <> "codegen" then
            QCheck.Test.fail_reportf "fell back: %s"
              (Option.value ~default:"(no reason)"
                 cg.P.xstats.Exec.x_engine_reason);
          if cg.P.xfidelity = P.Mismatch then
            QCheck.Test.fail_report "codegen output mismatches the reference";
          let sorted l = List.sort String.compare l in
          sorted cg.P.xstats.Exec.x_outputs
          = sorted real.P.xstats.Exec.x_outputs
          && cg.P.xstats.Exec.x_steps = real.P.xstats.Exec.x_steps)

let suite =
  ( "codegen",
    [
      Alcotest.test_case "engine name and parsing" `Quick test_engine_names;
      Alcotest.test_case "codegen vs real agree on md5sum" `Quick
        test_codegen_vs_real;
      Alcotest.test_case "warm cache hit agrees with cold run" `Quick
        test_cache_warm_agrees;
      Alcotest.test_case "corrupted cache entry is recompiled" `Quick
        test_corrupted_cache_recompiles;
      qcheck prop_random_bodies_agree;
    ]
    @ differential_cases )
