(** Rendering of the commutativity sanitizer's verdict table. *)

module Verdict = Commset_verify.Verdict
module Diag = Commset_support.Diag

(** Plain-text table, one row per member pair, with a summary line. *)
val render : Verdict.report -> string

(** The whole lint outcome as one JSON object: per-pair verdicts, the
    lint diagnostics, and the proved/unknown/refuted summary. *)
val render_json : Verdict.report -> Diag.diagnostic list -> string
