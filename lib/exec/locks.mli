(** Realization of the synchronization engine's lock assignment (§4.6)
    on real OS/atomic primitives: one lock object per {!Sim.lock_spec}
    the emitter registered.

    Flavor mapping: [Mutex] and [Libsafe] specs become [Mutex.t] (futex
    fast path uncontended, OS-blocking under contention — exactly the
    behaviour the cost model charges them for); [Spin] specs become
    test-and-test-and-set spin locks.

    Deadlock freedom is inherited, not re-established: every segment
    list acquires a node's commset locks in global rank order (the
    emitter lays them out that way from [Sync.locks_of]), so the locks
    here never need ordering logic of their own. *)

module Sim = Commset_runtime.Sim

type t

val create : Sim.lock_spec array -> t

(** Number of realized locks. *)
val count : t -> int

val acquire : t -> int -> unit
val release : t -> int -> unit

(** Total acquires that found the lock held (all locks, all domains) —
    the measured counterpart of the simulator's [lock_contended]. *)
val contended_total : t -> int
