lib/transforms/emit.mli: Commset_pdg Commset_runtime Plan
