lib/report/ablation.ml: Ascii Buffer Commset_pipeline Commset_runtime Commset_transforms Commset_workloads Fun List Option Printf String
