(** Commutativity-condition synthesis: invert the annotation verifier
    into an annotation *suggester* for plain (pragma-free) miniC.

    [suggest] strips every COMMSET pragma from the input, enumerates
    candidate members in the hottest loop (existing bare blocks, wraps
    of effectful statements, interface-level functions), probes every
    candidate pair through the symbolic differencing engine to obtain
    per-iteration-fact difference residues, synthesizes the weakest
    predicate under which each residue vanishes ([true], or the
    loop-induction-variable inequality [x1 != x2]), assembles mutually
    commuting candidates into commsets, re-verifies the assembled
    annotation bundle with the full verifier (static differencing plus
    dynamic replay), and ranks what survives by simulator-predicted
    speedup. Every emitted suggestion is Proved-or-dropped: a pair the
    verifier cannot prove never reaches the output. *)

module Ast = Commset_lang.Ast
module Diag = Commset_support.Diag

(** How a suggested member is anchored in the stripped source. *)
type anchor =
  | Ablock of int  (** an existing bare block, by 1-based source line *)
  | Awrap of int  (** an effectful statement to wrap, by source line *)
  | Adecl_split of int
      (** a declaration whose initializer call moves into a new block *)
  | Afun of string  (** interface-level membership of a function *)

type member = {
  m_anchor : anchor;
  m_desc : string;  (** one-line description of the member body *)
  m_refs : string list;  (** commset references to paste, e.g. ["GSET0(i)"; "SELF"] *)
}

(** One synthesized commset (or a bundle of SELF-only memberships). *)
type suggestion = {
  sg_set : string option;  (** [None] when only SELF memberships are emitted *)
  sg_kind : Ast.set_kind;
  sg_predicate : string option;  (** pretty predicate body over (x1)(x2) *)
  sg_members : member list;
  sg_pragmas : string list;  (** ready-to-paste pragma lines, global ones first *)
  sg_speedup : float option;
      (** predicted best speedup at 8 threads with only this suggestion
          installed; [None] when individual ranking was skipped *)
  sg_recommended : bool;  (** part of the best-performing verified bundle *)
}

type result = {
  r_name : string;
  r_baseline : float;  (** predicted best speedup of the stripped program *)
  r_bundle : float;  (** predicted best speedup with every suggestion installed *)
  r_hand : float option;
      (** predicted best speedup of the original annotated input, when it
          had any pragmas to strip *)
  r_suggestions : suggestion list;
  r_diags : Diag.diagnostic list;  (** CS015/CS016 notes *)
  r_source : string;  (** the stripped source with every suggestion applied *)
  r_stripped : string;  (** the stripped source the suggestions anchor into *)
}

(** Synthesize annotations for [source]. [rank_individual] additionally
    compiles one variant per suggestion to predict its lone speedup
    (slower; on by default). [min_speedup] suppresses every suggestion
    when the verified bundle's predicted speedup stays below it.
    Raises {!Diag.Error} when the input does not compile. *)
val suggest :
  ?name:string ->
  ?setup:(Commset_runtime.Machine.t -> unit) ->
  ?rank_individual:bool ->
  ?min_speedup:float ->
  string ->
  result
