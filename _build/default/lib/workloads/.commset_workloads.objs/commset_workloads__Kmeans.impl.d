lib/workloads/kmeans.ml: Printf Workload
