lib/runtime/machine.ml: Array Bytes Char Commset_support Diag Hashtbl Int64 List Option Printf String
