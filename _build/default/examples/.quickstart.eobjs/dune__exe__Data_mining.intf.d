examples/data_mining.mli:
