lib/ir/ir.mli: Commset_lang Commset_support Format Hashtbl Loc
