(** The COMMSET dependence analyzer — the paper's Algorithm 1.

    Every memory-dependence PDG edge is examined. For the pair of member
    facets whose effects actually conflict on the edge's locations, the
    analyzer intersects their commset memberships and decides:

    - an unpredicated shared set of the right kind (Self for an edge
      between two instances of the same member, Group otherwise) makes
      the edge unconditionally commutative ([uco]);
    - a predicated set triggers a symbolic proof: the predicate body is
      interpreted with each side's actuals classified as affine functions
      of a basic induction variable, under the fact that the two
      instances run in distinct iterations (loop-carried edge) or in the
      same iteration (intra-iteration edge). A proven loop-carried edge
      whose destination dominates its source becomes [uco], otherwise
      [ico]; a proven intra-iteration edge becomes [uco]. *)

module Ir = Commset_ir.Ir
module A = Commset_analysis
module Effects = A.Effects
module Pdg = Commset_pdg.Pdg
open Commset_support

type verdict = Vnone | Vico | Vuco

let weaker a b =
  match (a, b) with
  | Vnone, _ | _, Vnone -> Vnone
  | Vico, _ | _, Vico -> Vico
  | Vuco, Vuco -> Vuco

type ctx = {
  md : Metadata.t;
  pdg : Pdg.t;
  dom : A.Dominance.t;
  induction : A.Induction.t;
  caller : string;
}

(* symbolic value of an actual operand on one side of the predicate *)
let sval_of_operand ctx side (op : Ir.operand) =
  match op with
  | Ir.Const (Ir.Cint n) -> A.Symexec.const_int n
  | Ir.Const (Ir.Cbool b) -> A.Symexec.Sbool (if b then A.Symexec.True else A.Symexec.False)
  | Ir.Const _ -> A.Symexec.Stop
  | Ir.Reg r ->
      A.Symexec.sval_of_classification side (A.Induction.classify ctx.induction op) ~sym_id:r

(* Does the predicate of [info] hold for the two actual lists under the
   iteration fact? *)
let predicate_holds ctx (info : Metadata.set_info) (p : Metadata.predicate) ~fact ~actuals1
    ~actuals2 =
  if
    List.length actuals1 <> List.length p.Metadata.params1
    || List.length actuals2 <> List.length p.Metadata.params2
  then
    Diag.error "commset '%s': instance actuals do not match the predicate arity"
      info.Metadata.sname;
  let sv1 = List.map (sval_of_operand ctx A.Symexec.Side1) actuals1 in
  let sv2 = List.map (sval_of_operand ctx A.Symexec.Side2) actuals2 in
  let env =
    A.Symexec.bind_params ~params1:p.Metadata.params1 ~params2:p.Metadata.params2 ~actuals1:sv1
      ~actuals2:sv2
  in
  A.Symexec.prove fact env p.Metadata.body

(* facet-pair verdict for one edge *)
let facet_pair_verdict ctx ~carried ~(src : Pdg.node) ~(dst : Pdg.node) (f1 : Metadata.facet)
    (f2 : Metadata.facet) : verdict =
  let same_member = f1.Metadata.fmember = f2.Metadata.fmember in
  let common =
    List.filter_map
      (fun (s1, ops1) ->
        match List.assoc_opt s1 f2.Metadata.fsets with
        | Some ops2 -> Some (s1, ops1, ops2)
        | None -> None)
      f1.Metadata.fsets
  in
  let candidate_ok (info : Metadata.set_info) =
    match (same_member, info.Metadata.kind) with
    | true, Metadata.Self_set -> true
    | false, Metadata.Group_set -> true
    | true, Metadata.Group_set | false, Metadata.Self_set -> false
  in
  let verdict_for (sname, ops1, ops2) =
    let info = Metadata.set_info_exn ctx.md sname in
    if not (candidate_ok info) then Vnone
    else
      match info.Metadata.predicate with
      | None -> Vuco (* Algorithm 1, lines 9-11 *)
      | Some p ->
          if carried then
            if
              predicate_holds ctx info p ~fact:A.Symexec.Distinct_iterations ~actuals1:ops1
                ~actuals2:ops2
            then
              (* lines 22-30: uco when the destination dominates the source *)
              if A.Dominance.dominates ctx.dom dst.Pdg.nlabel src.Pdg.nlabel then Vuco else Vico
            else Vnone
          else if
            predicate_holds ctx info p ~fact:A.Symexec.Same_iteration ~actuals1:ops1
              ~actuals2:ops2
          then Vuco (* lines 32-35 *)
          else Vnone
  in
  (* the strongest verdict over the candidate sets wins: membership in any
     one commutative set suffices *)
  List.fold_left
    (fun acc cand ->
      match acc with
      | Vuco -> Vuco
      | _ -> ( match verdict_for cand with Vuco -> Vuco | Vico -> Vico | Vnone -> acc))
    Vnone common

(* restrict an rw to the locations of the edge *)
let restrict_rw (rw : Effects.rw) locs =
  let keep s =
    Effects.LocSet.filter
      (fun l -> List.exists (fun l' -> Effects.locs_conflict l l') locs)
      s
  in
  { Effects.reads = keep rw.Effects.reads; writes = keep rw.Effects.writes }

(** Annotate every memory edge of the PDG in place. Returns the number of
    edges annotated uco / ico. *)
let annotate (md : Metadata.t) (pdg : Pdg.t) (dom : A.Dominance.t)
    (induction : A.Induction.t) : int * int =
  let ctx = { md; pdg; dom; induction; caller = pdg.Pdg.func.Ir.fname } in
  let n_uco = ref 0 and n_ico = ref 0 in
  List.iter
    (fun (e : Pdg.edge) ->
      match e.Pdg.ekind with
      | Pdg.Kmem locs ->
          let src = pdg.Pdg.nodes.(e.Pdg.esrc) and dst = pdg.Pdg.nodes.(e.Pdg.edst) in
          let facets1 = Metadata.facets md ~caller:ctx.caller src in
          let facets2 = Metadata.facets md ~caller:ctx.caller dst in
          (* all facet pairs that actually conflict on this edge's locations *)
          let conflicting_pairs =
            List.concat_map
              (fun f1 ->
                List.filter_map
                  (fun f2 ->
                    let r1 = restrict_rw f1.Metadata.frw locs in
                    let r2 = restrict_rw f2.Metadata.frw locs in
                    (* a self edge relates two dynamic instances of the same
                       node; distinct-node edges relate different members *)
                    if Effects.conflict r1 r2 then Some (f1, f2) else None)
                  facets2)
              facets1
          in
          let verdict =
            match conflicting_pairs with
            | [] -> Vnone
            | pairs ->
                List.fold_left
                  (fun acc (f1, f2) ->
                    weaker acc (facet_pair_verdict ctx ~carried:e.Pdg.carried ~src ~dst f1 f2))
                  Vuco pairs
          in
          (match verdict with
          | Vuco ->
              incr n_uco;
              e.Pdg.commut <- Pdg.Cuco
          | Vico ->
              incr n_ico;
              e.Pdg.commut <- Pdg.Cico
          | Vnone -> e.Pdg.commut <- Pdg.Cnone)
      | Pdg.Kreg _ | Pdg.Kcontrol -> ())
    pdg.Pdg.edges;
  (!n_uco, !n_ico)

(* ------------------------------------------------------------------ *)
(* Speculative relaxation (runtime-checked predicates)                 *)
(* ------------------------------------------------------------------ *)

(* can this facet pair commute *if* its shared predicated set's predicate
   were checked at runtime? *)
let facet_pair_speculable (md : Metadata.t) (f1 : Metadata.facet) (f2 : Metadata.facet) =
  let same_member = f1.Metadata.fmember = f2.Metadata.fmember in
  List.exists
    (fun (s1, _) ->
      match List.assoc_opt s1 f2.Metadata.fsets with
      | None -> false
      | Some _ -> (
          let info = Metadata.set_info_exn md s1 in
          let kind_ok =
            match (same_member, info.Metadata.kind) with
            | true, Metadata.Self_set | false, Metadata.Group_set -> true
            | true, Metadata.Group_set | false, Metadata.Self_set -> false
          in
          kind_ok && info.Metadata.predicate <> None))
    f1.Metadata.fsets

(** Is this (statically unrelaxed) edge relaxable by evaluating its
    members' commutativity predicates at runtime — the optimistic mode
    Galois uses and the paper lists as future work? True when every
    conflicting facet pair shares a *predicated* set of the right kind. *)
let speculable (md : Metadata.t) (pdg : Pdg.t) (e : Pdg.edge) : bool =
  match e.Pdg.ekind with
  | Pdg.Kreg _ | Pdg.Kcontrol -> false
  | Pdg.Kmem locs ->
      let caller = pdg.Pdg.func.Commset_ir.Ir.fname in
      let src = pdg.Pdg.nodes.(e.Pdg.esrc) and dst = pdg.Pdg.nodes.(e.Pdg.edst) in
      let facets1 = Metadata.facets md ~caller src in
      let facets2 = Metadata.facets md ~caller dst in
      let pairs =
        List.concat_map
          (fun f1 ->
            List.filter_map
              (fun f2 ->
                let r1 = restrict_rw f1.Metadata.frw locs in
                let r2 = restrict_rw f2.Metadata.frw locs in
                if Effects.conflict r1 r2 then Some (f1, f2) else None)
              facets2)
          facets1
      in
      pairs <> [] && List.for_all (fun (f1, f2) -> facet_pair_speculable md f1 f2) pairs
