(** Scalar reduction recognition — the classic auto-parallelization
    transform the paper points at when noting that "annotations like
    reduction proposed in IPOT can be easily integrated with COMMSET"
    (§6). A reduction is a loop-carried recurrence

    {v acc = acc OP x v}

    with an associative-commutative [OP], where [acc]'s intermediate
    values are never otherwise observed inside the loop. DOALL may then
    give each thread a private accumulator and combine at the end, so
    the recurrence's carried register edges stop blocking it.

    (For floating-point [OP] this asserts re-association, the same
    semantic-commutativity judgement the paper makes for 456.hmmer's
    histogram SUM.) *)

module Ir = Commset_ir.Ir
module Ast = Commset_lang.Ast

type op = Rsum | Rprod

type t = {
  racc : Ir.reg;  (** the accumulator register *)
  rop : op;
  rty : Ast.ty;
  rnodes : int list;  (** the PDG nodes forming the recurrence (move + binop) *)
}

let op_of = function Ast.Add -> Some Rsum | Ast.Mul -> Some Rprod | _ -> None

(* all uses of [reg] among the loop's PDG nodes *)
let users (pdg : Pdg.t) reg =
  List.filter
    (fun n ->
      List.exists
        (fun i -> List.mem reg (Ir.instr_uses i))
        (Pdg.node_instrs n)
      ||
      match n.Pdg.kind with
      | Pdg.Nbranch (_, o) -> List.mem reg (Ir.operand_uses o)
      | _ -> false)
    (Pdg.nodes pdg)

let detect (pdg : Pdg.t) : t list =
  let defs_of = Hashtbl.create 32 in
  Array.iter
    (fun (n : Pdg.node) ->
      List.iter
        (fun i ->
          List.iter
            (fun r ->
              let cur = Option.value ~default:[] (Hashtbl.find_opt defs_of r) in
              Hashtbl.replace defs_of r ((n, i) :: cur))
            (Ir.instr_defs i))
        (Pdg.node_instrs n))
    pdg.Pdg.nodes;
  let unique_def r =
    match Hashtbl.find_opt defs_of r with Some [ (n, i) ] -> Some (n, i) | _ -> None
  in
  (* candidate accumulators: registers defined exactly once, by a Move
     from a temporary computed as `acc OP x` *)
  Hashtbl.fold
    (fun acc defs found ->
      match defs with
      | [ (move_node, { Ir.desc = Ir.Move (_, Ir.Reg t); _ }) ] -> (
          match unique_def t with
          | Some (binop_node, { Ir.desc = Ir.Binop (bop, ty, _, a, b); _ }) -> (
              match op_of bop with
              | Some rop
                when (a = Ir.Reg acc && b <> Ir.Reg acc)
                     || (b = Ir.Reg acc && a <> Ir.Reg acc) -> (
                  (* the only consumers of acc inside the loop must be the
                     recurrence itself, so no intermediate value escapes *)
                  let consumers = users pdg acc in
                  let recurrence = [ move_node.Pdg.nid; binop_node.Pdg.nid ] in
                  match
                    List.filter
                      (fun (n : Pdg.node) -> not (List.mem n.Pdg.nid recurrence))
                      consumers
                  with
                  | [] ->
                      { racc = acc; rop; rty = ty; rnodes = recurrence } :: found
                  | _ -> found)
              | _ -> found)
          | _ -> found)
      | _ -> found)
    defs_of []

(** Node ids covered by some reduction. *)
let covered_nodes (rs : t list) =
  List.concat_map (fun r -> r.rnodes) rs

(** Is this carried edge part of a recognized reduction's recurrence? *)
let edge_exempt (rs : t list) (e : Pdg.edge) =
  let covered = covered_nodes rs in
  List.mem e.Pdg.esrc covered && List.mem e.Pdg.edst covered

let pp ppf (r : t) =
  Fmt.pf ppf "reduction %%%d (%s, %s)" r.racc
    (match r.rop with Rsum -> "sum" | Rprod -> "product")
    (Ast.ty_to_string r.rty)
