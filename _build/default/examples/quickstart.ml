(** Quickstart: the whole COMMSET pipeline on the paper's running example.

    Run with [dune exec examples/quickstart.exe]. Walks through:
    annotated source (paper Figure 1) → compile → annotated PDG →
    parallelization plans → simulated speedups and output fidelity. *)

module P = Commset_pipeline.Pipeline
module W = Commset_workloads.Workload
module T = Commset_transforms

let () =
  let w = Option.get (Commset_workloads.Registry.find "md5sum") in

  print_endline "=== Figure 1: md5sum extended with COMMSET pragmas ===";
  print_endline w.W.source;

  (* compile: frontend, metadata manager, well-formedness, profiling,
     PDG construction and Algorithm 1 *)
  let c = P.compile ~name:"md5sum" ~setup:w.W.setup w.W.source in
  Printf.printf "=== Compilation ===\n";
  Printf.printf "COMMSET annotations: %d, features: %s\n"
    (P.count_annotations w.W.source)
    (String.concat "," (P.features_used c));
  Printf.printf "hottest loop: %.0f%% of execution\n" (100. *. P.loop_fraction c);
  Printf.printf "Algorithm 1: %d edges uco, %d edges ico\n" c.P.target.P.n_uco
    c.P.target.P.n_ico;
  Printf.printf "applicable transforms: %s\n\n"
    (String.concat ", " (P.applicable_transforms c));

  (* every plan at 8 threads, simulated *)
  print_endline "=== Plans on the simulated 8-core machine ===";
  List.iter
    (fun (r : P.run) ->
      Printf.printf "  %-44s %5.2fx  output %s\n" r.P.plan.T.Plan.label r.P.speedup
        (P.fidelity_to_string r.P.fidelity))
    (P.evaluate c ~threads:8);

  (* the deterministic-output variant: one fewer SELF annotation flips the
     compiler from DOALL to a pipelined schedule (paper Figure 3) *)
  let det = List.assoc "deterministic" w.W.variants in
  let cd = P.compile ~name:"md5sum-deterministic" ~setup:w.W.setup det in
  print_endline "\n=== One fewer annotation: deterministic output ===";
  List.iter
    (fun (r : P.run) ->
      Printf.printf "  %-44s %5.2fx  output %s\n" r.P.plan.T.Plan.label r.P.speedup
        (P.fidelity_to_string r.P.fidelity))
    (Commset_support.Listx.take 2 (P.evaluate cd ~threads:8))
