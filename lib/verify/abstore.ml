(** Abstract-store differencing of two member interleavings.

    The two interleavings [A;B] and [B;A] are not executed instruction by
    instruction; instead each conflicting abstract location is resolved
    by the *operation classes* of the writes landing on it ({!Summary}):
    class-algebraic writes (accumulation, multiset append) commute by
    construction, last-writer-wins stores commute exactly when both
    orders leave the same final value — decided with {!Symexec.int_eq}
    over the induction-classified stored operands — and everything else
    is conservatively unsure or, when the final values provably differ,
    divergent. *)

module S = Commset_analysis.Symexec
module Effects = Commset_analysis.Effects

(** One write of one member to one location, with the stored value when
    it is symbolically known. *)
type write = {
  wloc : Effects.location;
  wclass : Summary.opclass;
  wvalue : S.sval option;
}

type divergence = { dloc : Effects.location; dv1 : S.sval; dv2 : S.sval }

(** Result of differencing the two orders over one iteration fact. *)
type outcome =
  | Commute of string  (** both orders provably reach equal stores *)
  | Unsure of string  (** neither proved nor refuted *)
  | Diverge of divergence  (** the final stores provably differ *)

let outcome_rank = function Commute _ -> 0 | Unsure _ -> 1 | Diverge _ -> 2
let join_outcome a b = if outcome_rank a >= outcome_rank b then a else b

let loc_str l = Format.asprintf "%a" Effects.pp_location l

let same_tag_class writes =
  match writes with
  | [] -> None
  | w :: rest ->
      let tag_of = function
        | Summary.Accum t -> Some (`Accum, t)
        | Summary.Multiset t -> Some (`Multiset, t)
        | Summary.Alloc t -> Some (`Alloc, t)
        | Summary.Cursor t -> Some (`Cursor, t)
        | Summary.Rng -> Some (`Rng, "rng")
        | Summary.Overwrite -> Some (`Overwrite, "")
        | Summary.Opaque _ -> None
      in
      let first = tag_of w.wclass in
      if first <> None && List.for_all (fun w' -> tag_of w'.wclass = first) rest
      then first
      else None

(* Final value a sequence of last-writer-wins stores leaves at a
   location: the last write with a known value, or None. *)
let final_value ws =
  List.fold_left (fun _ w -> w.wvalue) None ws

(* Outcome at one location, given each member's writes to it and whether
   the *other* member reads it. *)
let diff_loc fact l ~w1 ~w2 ~r1 ~r2 : outcome =
  match (w1, w2) with
  | [], [] -> Commute "no writes"
  | _ :: _, [] | [], _ :: _ ->
      if (w1 <> [] && r2) || (w2 <> [] && r1) then
        Unsure
          (Printf.sprintf
             "read/write skew on %s: one member reads what the other writes"
             (loc_str l))
      else Commute "single writer, partner indifferent"
  | _ -> (
      match same_tag_class (w1 @ w2) with
      | Some (`Accum, t) ->
          Commute (Printf.sprintf "commutative accumulation (%s)" t)
      | Some (`Multiset, t) ->
          Commute (Printf.sprintf "append-only sink (%s), multiset semantics" t)
      | Some (`Alloc, t) ->
          Unsure
            (Printf.sprintf
               "allocation order permutes %s handles (commutes up to renaming)" t)
      | Some (`Cursor, t) ->
          Unsure
            (Printf.sprintf
               "shared %s cursor: positions commute, drawn values are exchanged" t)
      | Some (`Rng, _) -> Unsure "random-stream draws are exchanged"
      | Some (`Overwrite, _) -> (
          (* In A;B the final value is B's last store; in B;A it is A's. *)
          match (final_value w2, final_value w1) with
          | Some vab, Some vba -> (
              match S.int_eq fact vab vba with
              | S.True -> Commute "both orders store the same final value"
              | S.False -> Diverge { dloc = l; dv1 = vba; dv2 = vab }
              | S.Maybe ->
                  Unsure
                    (Printf.sprintf "final value of %s depends on order"
                       (loc_str l)))
          | _ ->
              Unsure
                (Printf.sprintf "stored value at %s is not symbolically known"
                   (loc_str l)))
      | None ->
          Unsure
            (Printf.sprintf "writes of mixed operation classes on %s" (loc_str l)))

(** Difference the final stores of [A;B] and [B;A].

    [writes1]/[writes2] are the members' classified writes with their
    symbolic stored values (member 1 bound to {!S.Side1}, member 2 to
    {!S.Side2}); [reads1]/[reads2] their read footprints. Only locations
    where the two footprints actually conflict contribute. *)
let diff fact ~(reads1 : Effects.LocSet.t) ~(writes1 : write list)
    ~(reads2 : Effects.LocSet.t) ~(writes2 : write list) : outcome =
  let wlocs =
    List.fold_left
      (fun s w -> Effects.LocSet.add w.wloc s)
      Effects.LocSet.empty (writes1 @ writes2)
  in
  let touches1 l =
    Effects.LocSet.exists (Effects.locs_conflict l)
      (List.fold_left
         (fun s w -> Effects.LocSet.add w.wloc s)
         reads1 writes1)
  and touches2 l =
    Effects.LocSet.exists (Effects.locs_conflict l)
      (List.fold_left
         (fun s w -> Effects.LocSet.add w.wloc s)
         reads2 writes2)
  in
  Effects.LocSet.fold
    (fun l acc ->
      if not (touches1 l && touches2 l) then acc
      else
        let w1 = List.filter (fun w -> Effects.locs_conflict w.wloc l) writes1
        and w2 = List.filter (fun w -> Effects.locs_conflict w.wloc l) writes2 in
        let r1 = Effects.LocSet.exists (Effects.locs_conflict l) reads1
        and r2 = Effects.LocSet.exists (Effects.locs_conflict l) reads2 in
        join_outcome acc (diff_loc fact l ~w1 ~w2 ~r1 ~r2))
    wlocs
    (Commute "disjoint write sets")
