lib/core/metadata.mli: Commset_analysis Commset_ir Commset_lang Commset_pdg Hashtbl
