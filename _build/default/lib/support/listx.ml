(** List helpers shared across the compiler; only what the stdlib lacks. *)

(** [index_of p xs] is the 0-based index of the first element satisfying
    [p], if any. *)
let index_of p xs =
  let rec loop i = function
    | [] -> None
    | x :: rest -> if p x then Some i else loop (i + 1) rest
  in
  loop 0 xs

(** [take n xs] is the first [n] elements of [xs] (all of [xs] if shorter). *)
let take n xs =
  let rec loop n acc = function
    | x :: rest when n > 0 -> loop (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  loop n [] xs

(** [drop n xs] is [xs] without its first [n] elements. *)
let rec drop n xs = match xs with _ :: rest when n > 0 -> drop (n - 1) rest | _ -> xs

(** [uniq xs] removes duplicates, keeping first occurrences, preserving order. *)
let uniq xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

(** All unordered pairs of distinct positions of [xs]. *)
let pairs xs =
  let rec loop acc = function
    | [] -> List.rev acc
    | x :: rest -> loop (List.rev_append (List.map (fun y -> (x, y)) rest) acc) rest
  in
  loop [] xs

(** [sum f xs] folds integer measure [f] over [xs]. *)
let sum f xs = List.fold_left (fun acc x -> acc + f x) 0 xs

let sum_float f xs = List.fold_left (fun acc x -> acc +. f x) 0. xs

(** [group_by key xs] buckets [xs] by [key], preserving insertion order of
    both buckets and bucket members. *)
let group_by key xs =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let k = key x in
      match Hashtbl.find_opt tbl k with
      | Some bucket -> Hashtbl.replace tbl k (x :: bucket)
      | None ->
          order := k :: !order;
          Hashtbl.add tbl k [ x ])
    xs;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order
