(** A strict JSON parser (RFC 8259 grammar, no extensions) and a
    Chrome trace-event validator over it.

    Strictness: no trailing commas, no comments, no [NaN]/[Infinity],
    no unquoted keys, duplicate keys within one object rejected, the
    whole input must be consumed. This is the in-repo acceptance gate
    for everything the exporters emit — if Perfetto or [about://tracing]
    would choke, so does this parser, in CI. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** in source order; keys unique *)

val parse : string -> (t, string) result

(** Member lookup on an [Obj]; [None] on other constructors. *)
val member : string -> t -> t option

(** [validate_chrome_trace s] parses [s] strictly and checks it is a
    Chrome trace-event JSON object: a top-level object with a
    ["traceEvents"] array; every event an object with a one-character
    ["ph"] among [B E X i I C M], numeric ["pid"]/["tid"], a numeric
    ["ts"] (except metadata events), a non-negative ["dur"] on [X]
    events, a string ["name"] (except [E] events, where it is optional),
    and balanced [B]/[E] nesting per [(pid, tid)] track. Returns the
    number of events on success. *)
val validate_chrome_trace : string -> (int, string) result
