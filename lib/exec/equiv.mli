(** Output equivalence between a real parallel execution and the
    sequential reference, refined by the effect classification the
    synchronization engine already computed: outputs produced by commset
    members are the ones the annotations declare order-free, so they are
    compared as multisets, while every other output must appear in
    exactly its sequential position (relative to the other
    non-commutative outputs). This is the executable counterpart of the
    sanitizer's effect classes — and strictly stronger than a whole-
    stream multiset comparison, which would forgive an illegal
    reordering of two ordinary prints. *)

module Trace = Commset_runtime.Trace
module Sync = Commset_transforms.Sync

type verdict =
  | Exact  (** byte-identical output streams *)
  | Commutative_equal
      (** non-commutative outputs in sequential order; commutative
          outputs equal as multisets *)
  | Mismatch

val verdict_to_string : verdict -> string

(** [commutative_outputs ~sync ~trace] classifies output lines: [true]
    for lines emitted (at least once) by a PDG node belonging to some
    commset under [sync]. With the no-COMMSET sync assignment this
    classifies nothing, so baseline plans are held to exact ordering. *)
val commutative_outputs : sync:Sync.t -> trace:Trace.t -> string -> bool

(** [check ~commutative ~reference ~actual] compares full output
    streams. *)
val check :
  commutative:(string -> bool) -> reference:string list -> actual:string list -> verdict
