(** The end-to-end COMMSET parallelization pipeline (paper Figure 5) and
    the library's main public entry point:

    source → frontend → lowering → effect analysis → metadata manager →
    well-formedness checks → profiling (hot-loop selection) → PDG →
    Algorithm 1 → DOALL / (PS-)DSWP / speculative plans with automatic
    concurrency control → simulated multicore execution with performance
    estimates and output-fidelity checks. *)

module Ast = Commset_lang.Ast
module Tc = Commset_lang.Typecheck
module Ir = Commset_ir.Ir
module A = Commset_analysis
module Pdg = Commset_pdg.Pdg
module Metadata = Commset_core.Metadata
module T = Commset_transforms
module R = Commset_runtime
module V = Commset_verify
open Commset_support

(** Prepares a fresh machine's input data (files, packets, database rows). *)
type setup = R.Machine.t -> unit

(** Analyses of the hottest loop. *)
type target = {
  func : Ir.func;
  cfg : A.Cfg.t;
  dom : A.Dominance.t;
  post : A.Dominance.post;
  loop : A.Loops.loop;
  induction : A.Induction.t;
  priv : A.Privatization.t;
  reaching : A.Reaching.t;
  pdg : Pdg.t;  (** annotated with uco/ico *)
  pdg_plain : Pdg.t;  (** identical PDG without commutativity annotations *)
  n_uco : int;
  n_ico : int;
}

(** Thread-count-independent planning inputs for one PDG, computed once
    at compile time and reused by every {!plans} call of a sweep. *)
type plan_ctx = { reductions : Commset_pdg.Reduction.t list; scc : Commset_pdg.Scc.t }

(** A compiled program: every static stage plus one profiling run and one
    tracing run (both on the prepared-program engine). *)
type t = {
  name : string;
  source : string;
  ast : Ast.program;
  tcenv : Tc.t;
  prog : Ir.program;
  prepared : R.Precompile.t;
      (** prepared once; every interpreter run of this compilation
          (profiling, tracing, verification, CLI execution) shares it *)
  effects : A.Effects.t;
  md : Metadata.t;
  commset_graph : string Digraph.t;
  profile : R.Profile.t;
  target : target;
  trace : R.Trace.t;
  sync : T.Sync.t;
  sync_none : T.Sync.t;
  plan_ctx_comm : plan_ctx;
  plan_ctx_plain : plan_ctx;
  setup : setup;
  verification : V.Verdict.report option;
      (** per-pair commutativity verdicts, when compiled with [~verify:true] *)
}

(** How a simulated schedule's output compares with the sequential run. *)
type output_fidelity = Exact | Multiset_equal | Mismatch

type run = {
  plan : T.Plan.t;
  speedup : float;
  makespan : float;  (** whole-program simulated cycles *)
  fidelity : output_fidelity;
  lock_contended : int;
  tx_aborts : int;
  timelines : (float * float * string) list array;
}

val fidelity_to_string : output_fidelity -> string

(** Compile a miniC source. Raises {!Diag.Error} on any frontend,
    metadata, well-formedness or runtime failure. With [~verify:true]
    the commutativity sanitizer also runs (static differencing plus
    dynamic replay) and its verdicts land in [verification]. *)
val compile : ?name:string -> ?setup:setup -> ?verify:bool -> string -> t

(** All plans at a thread count: COMMSET-enabled plans over the annotated
    PDG plus non-COMMSET baseline plans over the plain PDG. *)
val plans : t -> threads:int -> T.Plan.t list

val simulate : ?record_timeline:bool -> t -> T.Plan.t -> run

(** Simulate every plan; sorted by speedup, best first. Independent
    simulations fan out over the {!Commset_support.Pool} domain pool;
    the result is identical to the sequential path. *)
val evaluate : ?record_timeline:bool -> t -> threads:int -> run list

val best : ?record_timeline:bool -> t -> threads:int -> run option

(** One plan executed on real OCaml domains (the {!Commset_exec}
    backend) beside one simulation of the same plan. *)
type exec_run = {
  xplan : T.Plan.t;
  xpredicted : float;  (** the simulator's speedup prediction *)
  xstats : Commset_exec.Exec.stats;
  xfidelity : output_fidelity;  (** the executor's equivalence verdict *)
}

(** Plans at [threads] the real backend can execute; TM and speculative
    plans are simulator-only. *)
val executable_plans : t -> threads:int -> T.Plan.t list

(** Execute a plan on real domains with the mandatory output-equivalence
    check; raises a CS014 {!Diag.Error} on unsupported plans. [engine]
    selects the realization (default: real program execution with burn
    fallback); [jobs] pins the real engine's worker-domain count
    (default: {!Commset_exec.Exec.default_jobs}); [attrib] (default
    [true]) toggles the real/codegen engines' per-iteration attribution
    layer (the summary lands in [xstats.x_attrib]). *)
val run_parallel :
  ?engine:Commset_exec.Exec.engine ->
  ?jobs:int ->
  ?attrib:bool ->
  t ->
  T.Plan.t ->
  exec_run

(** Speedup curves: series name -> (threads, speedup) points.
    [precomputed] supplies already-evaluated run lists per thread count
    (e.g. the 8-thread runs from {!evaluate}) so those configurations are
    not simulated a second time. *)
val sweep :
  ?min_threads:int ->
  ?precomputed:(int * run list) list ->
  t ->
  max_threads:int ->
  (string * (int * float) list) list

(** {2 Compile-time / serve-time split (daemon mode)}

    [commsetc serve] amortizes compilation across requests: a {!service}
    is the compile-time state (parse → verify → plan), keyed by
    {!content_key} into the daemon's plan cache, and {!serve_request} is
    the serve-time state — a fresh machine per request, safe to run
    concurrently from the warm pool's worker domains. *)

type service = {
  sv_key : string;  (** {!content_key} of the source text *)
  sv_name : string;
  sv_compiled : t;
  sv_threads : int;  (** thread count [sv_best] was planned for *)
  sv_best : run option;
      (** strongest executable plan by simulated speedup, if any *)
  sv_compile_s : float;  (** wall seconds the compile-time stages took *)
}

(** Content hash of a source text — the plan-cache key. *)
val content_key : string -> string

val prepare_service :
  ?name:string -> ?setup:setup -> ?verify:bool -> ?threads:int -> string -> service

(** Execute the service once on a fresh machine; returns the output
    stream. Concurrency-safe across domains. *)
val serve_request : service -> string list

(** The compile-time sequential reference stream (Equiv sampling). *)
val service_reference : service -> string list

(** Output classifier for {!Commset_exec.Equiv.check}. *)
val service_commutative : service -> string -> bool

(** {2 Calibration fidelity gate} *)

type gate_verdict =
  | Gate_ok of float  (** worst relative gap over the gated runs *)
  | Gate_exceeded of (string * float) list
      (** (plan label, gap) for every run outside the band *)
  | Gate_skipped of string  (** why the gate did not apply *)

(** Gate measured runs on the calibration fidelity band
    ({!Commset_runtime.Costmodel.fidelity_band} unless [band] is given):
    skipped (with the reason) when [cores < jobs + 1] — oversubscribed
    measurements are time-slicing artifacts. *)
val fidelity_gate : cores:int -> jobs:int -> ?band:float -> exec_run list -> gate_verdict

(* reporting helpers *)
val count_annotations : string -> int
val sloc : string -> int
val loop_fraction : t -> float

(** COMMSET feature letters used (Table 2: PI, PC, C, I, S, G). *)
val features_used : t -> string list

val applicable_transforms : t -> string list
