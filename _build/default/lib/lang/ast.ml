(** Abstract syntax of miniC with COMMSET annotations.

    COMMSET directives appear as pragmas attached to blocks, function
    declarations, or the global scope, mirroring the paper's design in
    which eliding every pragma leaves a well-defined sequential program. *)

open Commset_support

type ty = Tint | Tfloat | Tbool | Tstring | Tvoid | Tarray of ty

let rec ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tbool -> "bool"
  | Tstring -> "string"
  | Tvoid -> "void"
  | Tarray t -> ty_to_string t ^ "[]"

let ty_equal (a : ty) (b : ty) = a = b

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Neq
  | And
  | Or

type unop = Neg | Not

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Neq -> "!="
  | And -> "&&"
  | Or -> "||"

let unop_to_string = function Neg -> "-" | Not -> "!"

type expr = { edesc : expr_desc; eloc : Loc.t; mutable ety : ty option }

and expr_desc =
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | String_lit of string
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Index of expr * expr  (** [a[i]] *)

(** COMMSET surface annotations, parsed from pragma lines. *)
type set_kind = Self_set | Group_set

type commset_ref = {
  set_name : string;  (** "SELF" denotes the implicit per-member self set *)
  actuals : expr list;  (** predicate actuals, e.g. [FSET(i)] *)
}

type pragma_desc =
  | P_decl of { set_name : string; kind : set_kind }
      (** [#pragma commset decl NAME self|group] *)
  | P_predicate of {
      set_name : string;
      params1 : string list;
      params2 : string list;
      body : expr;
    }  (** [#pragma commset predicate NAME (a,b) (c,d) (expr)] *)
  | P_nosync of string  (** [#pragma commset nosync NAME] *)
  | P_member of commset_ref list
      (** [#pragma commset member REF, ...] on a block or function *)
  | P_namedblock of string  (** [#pragma commset namedblock NAME] on a block *)
  | P_namedarg of string  (** [#pragma commset namedarg NAME] on a function *)
  | P_enable of { callee : string; block_name : string; sets : commset_ref list }
      (** [#pragma commset enable FN.BLOCK in REF, ...] in client code *)

type pragma = { pdesc : pragma_desc; ploc : Loc.t }

type stmt = { sdesc : stmt_desc; sloc : Loc.t }

and stmt_desc =
  | Decl of ty * string * expr option
  | Assign of string * expr
  | Store of expr * expr * expr  (** [a[i] = e] *)
  | Expr of expr  (** call evaluated for effect *)
  | If of expr * block * block option
  | While of expr * block
  | For of stmt option * expr option * stmt option * block
  | Return of expr option
  | Break
  | Continue
  | Block of block
  | Pragma_stmt of pragma  (** statement-position pragma, e.g. [enable] *)

and block = {
  stmts : stmt list;
  block_id : int;  (** unique id assigned by the parser *)
  annots : pragma list;  (** member / namedblock pragmas attached to this block *)
  bloc : Loc.t;
}

type fundecl = {
  fname : string;
  params : (ty * string) list;
  ret : ty;
  body : block;
  fannots : pragma list;  (** member / namedarg pragmas on the declaration *)
  floc : Loc.t;
}

type topdecl =
  | Gfun of fundecl
  | Gvar of { gty : ty; gname : string; ginit : expr option; gloc : Loc.t }

type program = {
  global_pragmas : pragma list;  (** decl / predicate / nosync directives *)
  decls : topdecl list;
}

let functions p =
  List.filter_map (function Gfun f -> Some f | Gvar _ -> None) p.decls

let globals p =
  List.filter_map
    (function Gvar { gty; gname; ginit; gloc } -> Some (gty, gname, ginit, gloc) | Gfun _ -> None)
    p.decls

let find_function p name = List.find_opt (fun f -> f.fname = name) (functions p)

(** Iterate every block of a function body, outermost first. *)
let rec iter_blocks_stmt f s =
  match s.sdesc with
  | If (_, b1, b2) ->
      iter_blocks f b1;
      Option.iter (iter_blocks f) b2
  | While (_, b) -> iter_blocks f b
  | For (_, _, _, b) -> iter_blocks f b
  | Block b -> iter_blocks f b
  | Decl _ | Assign _ | Store _ | Expr _ | Return _ | Break | Continue | Pragma_stmt _ -> ()

and iter_blocks f b =
  f b;
  List.iter (iter_blocks_stmt f) b.stmts

(** Iterate every statement in a block, depth first, pre-order. *)
let rec iter_stmts f b =
  List.iter
    (fun s ->
      f s;
      match s.sdesc with
      | If (_, b1, b2) ->
          iter_stmts f b1;
          Option.iter (iter_stmts f) b2
      | While (_, b') -> iter_stmts f b'
      | For (init, _, step, b') ->
          Option.iter f init;
          Option.iter f step;
          iter_stmts f b'
      | Block b' -> iter_stmts f b'
      | Decl _ | Assign _ | Store _ | Expr _ | Return _ | Break | Continue | Pragma_stmt _ -> ())
    b.stmts

(** Iterate every expression under a statement. *)
let rec iter_exprs_expr f e =
  f e;
  match e.edesc with
  | Binop (_, a, b) ->
      iter_exprs_expr f a;
      iter_exprs_expr f b
  | Unop (_, a) -> iter_exprs_expr f a
  | Call (_, args) -> List.iter (iter_exprs_expr f) args
  | Index (a, i) ->
      iter_exprs_expr f a;
      iter_exprs_expr f i
  | Int_lit _ | Float_lit _ | Bool_lit _ | String_lit _ | Var _ -> ()

let iter_exprs_stmt f s =
  match s.sdesc with
  | Decl (_, _, Some e) | Assign (_, e) | Expr e | Return (Some e) -> iter_exprs_expr f e
  | Store (a, i, e) ->
      iter_exprs_expr f a;
      iter_exprs_expr f i;
      iter_exprs_expr f e
  | If (c, _, _) | While (c, _) -> iter_exprs_expr f c
  | For (_, cond, _, _) -> Option.iter (iter_exprs_expr f) cond
  | Decl (_, _, None) | Return None | Break | Continue | Block _ | Pragma_stmt _ -> ()
