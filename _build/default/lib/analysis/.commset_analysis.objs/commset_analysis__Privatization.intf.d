lib/analysis/privatization.mli: Commset_ir Effects Loops
