lib/runtime/sim.ml: Array Commset_support Costmodel Diag List Queue Value
