(** potrace — bitmap tracing (paper §5.5).

    The code pattern resembles md5sum: read each bitmap, trace it into a
    vector path (pure, heavy), encode and write the output. In the
    primary (multi-output) configuration every image gets its own output
    file and the write block carries a SELF annotation — DOALL applies
    and I/O costs dominate at high thread counts. In the [singlefile]
    variant all images append to one output file: the SELF annotation on
    the write block is omitted to keep sequential output semantics, DOALL
    becomes inapplicable, and PS-DSWP's sequential write stage caps the
    speedup (the paper reports 2.2x). *)

let n_bitmaps = 96
let bitmap_size = 2048

let common_prologue =
  {|
// potrace: vectorize bitmaps into smooth paths
#pragma commset decl FSET group
#pragma commset decl RSET self
#pragma commset predicate FSET (i1) (i2) (i1 != i2)
#pragma commset predicate RSET (r1) (r2) (r1 != r2)
|}

let source_multi =
  Printf.sprintf
    {|%s
void main() {
  int nbitmaps = %d;
  for (int i = 0; i < nbitmaps; i++) {
    string name = "bmp/img" + int_to_string(i);
    string cached = "";
    #pragma commset member FSET(i), SELF
    {
      cached = cache_get(name);
    }
    if (strlen(cached) == 0) {
    int fd = 0;
    #pragma commset member FSET(i), SELF
    {
      fd = fopen(name);
    }
    string data = "";
    bool done = false;
    while (!done) {
      #pragma commset member FSET(i), RSET(i)
      {
        string chunk = fread(fd, 1024);
        if (strlen(chunk) == 0) {
          done = true;
        } else {
          data = data + chunk;
        }
      }
    }
    string path = trace_bitmap(data);
    int out = 0;
    #pragma commset member FSET(i), SELF
    {
      out = fopen("out/img" + int_to_string(i) + ".svg");
    }
    #pragma commset member FSET(i), SELF
    {
      string svg = svg_encode(path);
      fwrite(out, svg);
    }
    #pragma commset member FSET(i), SELF
    {
      fclose(out);
    }
    #pragma commset member FSET(i), SELF
    {
      fclose(fd);
    }
    #pragma commset member FSET(i), SELF
    {
      cache_put(name, path);
    }
    }
  }
}
|}
    common_prologue n_bitmaps

let source_singlefile =
  Printf.sprintf
    {|%s
string chain = "";

void main() {
  int nbitmaps = %d;
  int out = fopen("out/all.svg");
  for (int i = 0; i < nbitmaps; i++) {
    string name = "bmp/img" + int_to_string(i);
    string cached = "";
    #pragma commset member FSET(i), SELF
    {
      cached = cache_get(name);
    }
    if (strlen(cached) == 0) {
    int fd = 0;
    #pragma commset member FSET(i), SELF
    {
      fd = fopen(name);
    }
    string data = "";
    bool done = false;
    while (!done) {
      #pragma commset member FSET(i), RSET(i)
      {
        string chunk = fread(fd, 1024);
        if (strlen(chunk) == 0) {
          done = true;
        } else {
          data = data + chunk;
        }
      }
    }
    string path = trace_bitmap(data);
    // sequential output semantics: the output carries a hash chain over
    // the whole stream, so each record depends on every earlier one
    {
      string svg = svg_encode(path);
      chain = md5_hex(chain + svg);
      fwrite(out, svg + chain);
    }
    #pragma commset member FSET(i), SELF
    {
      fclose(fd);
    }
    #pragma commset member FSET(i), SELF
    {
      cache_put(name, path);
    }
    }
  }
  fclose(out);
}
|}
    common_prologue n_bitmaps

let setup m =
  let st = ref 99 in
  let next () =
    st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
    !st
  in
  for i = 0 to n_bitmaps - 1 do
    let buf = Bytes.init bitmap_size (fun _ -> Char.chr (next () land 0xFF)) in
    Commset_runtime.Machine.add_file m
      (Printf.sprintf "bmp/img%d" i)
      (Bytes.to_string buf)
  done

let workload : Workload.t =
  {
    Workload.wname = "potrace";
    paper_name = "potrace";
    description = "bitmap tracing with per-image or single-file output";
    source = source_multi;
    variants = [ ("singlefile", source_singlefile) ];
    setup;
    paper_best_scheme = "DOALL + Lib";
    paper_best_speedup = 5.5;
    paper_annotations = 10;
    paper_sloc = 8292;
    paper_loop_fraction = 1.0;
    paper_features = [ "PC"; "C"; "S"; "G" ];
    paper_transforms = [ "DOALL"; "PS-DSWP" ];
  }
