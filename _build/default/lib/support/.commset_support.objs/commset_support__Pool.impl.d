lib/support/pool.ml: Array Atomic Domain Fun List Option Printexc String Sys
