(** The real multicore execution backend; see the interface for the
    architecture and DESIGN.md §13–14 for the predicted-vs-measured
    methodology. *)

module Plan = Commset_transforms.Plan
module Sync = Commset_transforms.Sync
module Emit = Commset_transforms.Emit
module Pdg = Commset_pdg.Pdg
module R = Commset_runtime
module Sim = Commset_runtime.Sim
module Costmodel = Commset_runtime.Costmodel
module Recorder = Commset_obs.Recorder
module Metrics = Commset_obs.Metrics
module Clock = Commset_obs.Clock
module Diag = Commset_support.Diag

let src_log = Logs.Src.create "commset.exec" ~doc:"Real multicore execution backend"

module Log = (val Logs.src_log src_log : Logs.LOG)

let m_runs = Metrics.counter ~doc:"real-backend plan executions" "exec.runs"

let m_contended =
  Metrics.counter ~doc:"real contended lock acquires" "exec.lock_contended"

let m_full_waits =
  Metrics.counter ~doc:"blocking episodes on full SPSC queues" "exec.queue_full_waits"

let m_empty_waits =
  Metrics.counter ~doc:"blocking episodes on empty SPSC queues" "exec.queue_empty_waits"

let g_wall_par = Metrics.gauge ~doc:"parallel-leg seconds (last run)" "exec.wall_par_s"
let g_wall_seq = Metrics.gauge ~doc:"sequential-leg seconds (last run)" "exec.wall_seq_s"

type engine = Burn_engine | Real_engine | Codegen_engine

let engine_name = function
  | Burn_engine -> "burn"
  | Real_engine -> "real"
  | Codegen_engine -> "codegen"

let engine_of_string = function
  | "burn" -> Some Burn_engine
  | "real" -> Some Real_engine
  | "codegen" -> Some Codegen_engine
  | _ -> None

type stats = {
  x_label : string;
  x_engine : string;
  x_threads : int;
  x_wall_seq_s : float;
  x_wall_par_s : float;
  x_measured_speedup : float;
  x_verdict : Equiv.verdict;
  x_lock_contended : int;
  x_queue_full_waits : int;
  x_queue_empty_waits : int;
  x_iterations : int;
  x_frontier_waits : int;
  x_buffered_updates : int;
  x_steps : int;
  x_merge_s : float;
  x_outputs : string list;
  x_engine_reason : string option;
  x_codegen_cache_hit : bool;
  x_codegen_compile_s : float;
  x_attrib : Commset_obs.Attrib.summary option;
}

let supported (plan : Plan.t) =
  match plan.Plan.variant with
  | Plan.Tm ->
      Error "TM plans run as software transactions, which only the simulator models"
  | Plan.Spec ->
      Error
        "speculative plans need the simulator's runtime conflict detection and rollback"
  | Plan.Mutex | Plan.Spin | Plan.Lib -> Ok ()

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* ------------------------------------------------------------------ *)
(* Sequential legs                                                     *)
(* ------------------------------------------------------------------ *)

(** The equivalence reference: a fresh sequential execution of the
    prepared program on a fresh machine (not merely the recorded trace —
    the reference the user cares about is what the sequential program
    actually prints today). With [~timed:true] the run also burns its
    charged cycles at the executor's scale, making its wall time the
    like-for-like baseline for the real engine's parallel leg. *)
let seq_reference ~timed ~(prepared : R.Precompile.t) ~setup : string list * float =
  Recorder.with_span ~cat:"exec" "exec.seq_reference" @@ fun () ->
  let machine = R.Machine.create () in
  setup machine;
  let t0 = Clock.now_ns () in
  let total = R.Precompile.run_main (R.Precompile.executor ~machine prepared) in
  if timed && Costmodel.exec_ns_per_cycle () > 0. then Burn.burn (Burn.create ()) total;
  let wall = (Clock.now_ns () -. t0) /. 1e9 in
  (R.Machine.outputs machine, wall)

(** The burn engine's measured baseline: the whole program's charged
    cycles burned on one domain with no synchronization — the same work
    realization its parallel leg uses, so the ratio of the two walls is
    a like-for-like speedup. *)
let seq_calibrated_leg (trace : R.Trace.t) : float =
  Recorder.with_span ~cat:"exec" "exec.seq_leg" @@ fun () ->
  let b = Burn.create () in
  let t0 = Clock.now_ns () in
  Burn.burn b trace.R.Trace.other_cost;
  Array.iter
    (fun it ->
      List.iter
        (fun (e : R.Trace.node_exec) ->
          List.iter
            (fun atom ->
              let c = R.Trace.atom_cost atom in
              if c > 0. then Burn.burn b c)
            (R.Trace.exec_atoms e))
        (R.Trace.iteration_execs it))
    trace.R.Trace.iterations;
  (Clock.now_ns () -. t0) /. 1e9

(* ------------------------------------------------------------------ *)
(* Burn engine: calibrated replay of the emitted segment lists          *)
(* ------------------------------------------------------------------ *)

type worker_stats = { mutable w_full : int; mutable w_empty : int }

let run_segments ~(locks : Locks.t) ~(queues : int Spsc.t array) (segs : Sim.seg list)
    (outs : (float * string) list ref) (ws : worker_stats) =
  let b = Burn.create () in
  List.iter
    (fun (seg : Sim.seg) ->
      match seg with
      | Sim.Compute { cost; _ } -> Burn.burn b cost
      | Sim.Acquire i -> Locks.acquire locks i
      | Sim.Release i -> Locks.release locks i
      | Sim.Push q ->
          Spsc.push ~on_wait:(fun () -> ws.w_full <- ws.w_full + 1) queues.(q) 1
      | Sim.Pop q ->
          ignore (Spsc.pop ~on_wait:(fun () -> ws.w_empty <- ws.w_empty + 1) queues.(q))
      | Sim.Emit s -> outs := (Clock.now_ns (), s) :: !outs
      | Sim.Tx _ ->
          (* [supported] already rejected TM/Spec plans *)
          Diag.error "internal: transactional segment reached the real backend")
    segs

let run_burn ~(plan : Plan.t) ~(trace : R.Trace.t) ~(emitted : Emit.t) () :
    string list * float * float * int * int * int =
  let n_threads = Array.length emitted.Emit.seg_lists in
  Log.debug (fun m ->
      m "plan '%s' (burn): %d thread(s), %d lock(s), %d queue(s)" plan.Plan.label
        n_threads
        (Array.length emitted.Emit.locks)
        emitted.Emit.n_queues);
  let wall_seq_s = seq_calibrated_leg trace in
  let locks = Locks.create emitted.Emit.locks in
  let queues =
    Array.init emitted.Emit.n_queues (fun _ ->
        Spsc.create ~capacity:(Atomic.get Costmodel.queue_capacity))
  in
  let outputs_per : (float * string) list ref array =
    Array.init n_threads (fun _ -> ref [])
  in
  let wstats = Array.init n_threads (fun _ -> { w_full = 0; w_empty = 0 }) in
  (* start barrier: workers spawn, check in, and wait for [go], so domain
     spawn latency stays outside the timed window *)
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let worker ti () =
    Recorder.with_span ~cat:"exec" "exec.worker" @@ fun () ->
    Atomic.incr ready;
    let b = Spin.backoff () in
    while not (Atomic.get go) do
      Spin.once b
    done;
    run_segments ~locks ~queues emitted.Emit.seg_lists.(ti) outputs_per.(ti) wstats.(ti)
  in
  let domains = Array.init (n_threads - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  let b = Spin.backoff () in
  while Atomic.get ready < n_threads - 1 do
    Spin.once b
  done;
  let t0 = Clock.now_ns () in
  (* the serial non-loop part of the program runs on the coordinator,
     exactly as [makespan + other_cost] prices it in the simulator *)
  let burn0 = Burn.create () in
  Burn.burn burn0 trace.R.Trace.other_cost;
  Atomic.set go true;
  worker 0 ();
  Array.iter Domain.join domains;
  let wall_par_s = (Clock.now_ns () -. t0) /. 1e9 in
  (* merge the per-domain output logs on the shared monotonic clock:
     causally ordered emits (same lock, or up/downstream of a queue
     token) carry ordered timestamps *)
  let merged =
    Array.to_list outputs_per
    |> List.concat_map (fun r -> List.rev !r)
    |> List.stable_sort (fun (t1, _) (t2, _) -> Float.compare t1 t2)
    |> List.map snd
  in
  let actual =
    trace.R.Trace.outputs_before @ merged @ trace.R.Trace.outputs_after
  in
  let full = Array.fold_left (fun acc w -> acc + w.w_full) 0 wstats in
  let empty = Array.fold_left (fun acc w -> acc + w.w_empty) 0 wstats in
  let contended = Locks.contended_total locks in
  (actual, wall_seq_s, wall_par_s, contended, full, empty)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run ?(engine = Real_engine) ?jobs ?(attrib = true) ~(plan : Plan.t) ~(pdg : Pdg.t)
    ~(trace : R.Trace.t) ~(sync : Sync.t) ~(prepared : R.Precompile.t) ~setup () :
    stats =
  (match supported plan with
  | Ok () -> ()
  | Error why ->
      Diag.error ~code:"CS014" "plan '%s' cannot run on the real backend: %s"
        plan.Plan.label why);
  Recorder.with_span ~cat:"exec" "exec.run" @@ fun () ->
  Metrics.incr m_runs;
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let reference, seq_timed_wall =
    seq_reference ~timed:(engine <> Burn_engine) ~prepared ~setup
  in
  (* both are sequential runs of the same deterministic program; a
     divergence means the compilation artifacts are out of sync *)
  if not (List.equal String.equal reference trace.R.Trace.seq_outputs) then
    Diag.error
      "internal: fresh sequential reference diverged from the recorded trace of '%s'"
      plan.Plan.label;
  let emitted = Emit.emit ~plan ~pdg ~trace in
  let real_result, real_refused =
    match engine with
    | Burn_engine -> (None, None)
    | Real_engine | Codegen_engine -> (
        match
          Realexec.run
            ~codegen:(engine = Codegen_engine)
            ~attrib ~plan ~pdg ~trace ~emitted ~prepared ~setup ~jobs ()
        with
        | Ok r -> (Some r, None)
        | Error why ->
            Log.warn (fun m ->
                m "plan '%s': real engine refused the target loop (%s); %s"
                  plan.Plan.label why "falling back to calibrated burns");
            (None, Some why))
  in
  let stats =
    match real_result with
    | Some r ->
        let wall_seq_s = seq_timed_wall in
        let wall_par_s = r.Realexec.r_wall_par_s in
        let verdict =
          Equiv.check
            ~commutative:(Equiv.commutative_outputs ~sync ~trace)
            ~reference ~actual:r.Realexec.r_outputs
        in
        (if r.Realexec.r_iterations <> R.Trace.n_iterations trace then
           Log.warn (fun m ->
               m "plan '%s': dispatched %d iteration(s), trace recorded %d"
                 plan.Plan.label r.Realexec.r_iterations (R.Trace.n_iterations trace)));
        {
          x_label = plan.Plan.label;
          x_engine = r.Realexec.r_engine;
          x_threads = jobs;
          x_wall_seq_s = wall_seq_s;
          x_wall_par_s = wall_par_s;
          x_measured_speedup = wall_seq_s /. Float.max 1e-9 wall_par_s;
          x_verdict = verdict;
          x_lock_contended = r.Realexec.r_lock_contended;
          x_queue_full_waits = r.Realexec.r_queue_full_waits;
          x_queue_empty_waits = r.Realexec.r_queue_empty_waits;
          x_iterations = r.Realexec.r_iterations;
          x_frontier_waits = r.Realexec.r_frontier_waits;
          x_buffered_updates = r.Realexec.r_buffered;
          x_steps = r.Realexec.r_steps;
          x_merge_s = r.Realexec.r_merge_s;
          x_outputs = r.Realexec.r_outputs;
          x_engine_reason = r.Realexec.r_codegen_fallback;
          x_codegen_cache_hit = r.Realexec.r_codegen_cache_hit;
          x_codegen_compile_s = r.Realexec.r_codegen_compile_s;
          x_attrib = r.Realexec.r_attrib;
        }
    | None ->
        let actual, wall_seq_s, wall_par_s, contended, full, empty =
          run_burn ~plan ~trace ~emitted ()
        in
        let verdict =
          Equiv.check
            ~commutative:(Equiv.commutative_outputs ~sync ~trace)
            ~reference ~actual
        in
        {
          x_label = plan.Plan.label;
          x_engine = "burn";
          x_threads = Array.length emitted.Emit.seg_lists;
          x_wall_seq_s = wall_seq_s;
          x_wall_par_s = wall_par_s;
          x_measured_speedup = wall_seq_s /. Float.max 1e-9 wall_par_s;
          x_verdict = verdict;
          x_lock_contended = contended;
          x_queue_full_waits = full;
          x_queue_empty_waits = empty;
          x_iterations = R.Trace.n_iterations trace;
          x_frontier_waits = 0;
          x_buffered_updates = 0;
          x_steps = 0;
          x_merge_s = 0.;
          x_outputs = actual;
          x_engine_reason = real_refused;
          x_codegen_cache_hit = false;
          x_codegen_compile_s = 0.;
          x_attrib = None;
        }
  in
  Metrics.add m_contended stats.x_lock_contended;
  Metrics.add m_full_waits stats.x_queue_full_waits;
  Metrics.add m_empty_waits stats.x_queue_empty_waits;
  Metrics.gauge_set g_wall_par stats.x_wall_par_s;
  Metrics.gauge_set g_wall_seq stats.x_wall_seq_s;
  Log.info (fun m ->
      m "plan '%s' (%s): %.3f ms sequential, %.3f ms on %d domain(s), %s"
        plan.Plan.label stats.x_engine (stats.x_wall_seq_s *. 1e3)
        (stats.x_wall_par_s *. 1e3) stats.x_threads
        (Equiv.verdict_to_string stats.x_verdict));
  stats
