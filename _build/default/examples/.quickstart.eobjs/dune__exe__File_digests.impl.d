examples/file_digests.ml: Char Commset_pipeline Commset_runtime Commset_transforms List Printf String
