(** Pretty-printer for miniC ASTs. Output re-parses to an equal AST
    (modulo locations and block ids); the round-trip property tests rely
    on printing being a fixpoint. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_pragma : Format.formatter -> Ast.pragma -> unit
val pp_fundecl : Format.formatter -> Ast.fundecl -> unit
val pp_topdecl : Format.formatter -> Ast.topdecl -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
val expr_to_string : Ast.expr -> string
