(** Daemon core; see the interface for the architecture. *)

module P = Commset_pipeline.Pipeline
module Workers = Commset_exec.Workers
module Equiv = Commset_exec.Equiv
module Clock = Commset_obs.Clock
module Recorder = Commset_obs.Recorder
module Metrics = Commset_obs.Metrics
module J = Commset_obs.Json_strict
module Diag = Commset_support.Diag
module Plan = Commset_transforms.Plan

let src_log = Logs.Src.create "commset.serve" ~doc:"Request-serving daemon"

module Log = (val Logs.src_log src_log : Logs.LOG)

type lookup = string -> (string * P.setup, string) result

type config = {
  s_jobs : int;
  s_ring : int;
  s_cache_capacity : int;
  s_equiv_every : int;
  s_threads : int;
  s_verify : bool;
  s_lookup : lookup;
}

let default_config ~lookup =
  {
    s_jobs = Commset_exec.Exec.default_jobs ();
    s_ring = 256;
    s_cache_capacity = 8;
    s_equiv_every = 100;
    s_threads = 8;
    s_verify = false;
    s_lookup = lookup;
  }

type load = { l_spec : Gen.spec; l_requests : int }

type latency = { p50_us : float; p95_us : float; p99_us : float; mean_us : float }

type workload_report = {
  wr_name : string;
  wr_key : string;
  wr_requests : int;
  wr_compile_s : float;
  wr_best_plan : string option;
  wr_predicted : float option;
}

type report = {
  r_offered : int;
  r_served : int;
  r_failed : int;
  r_duration_s : float;
  r_throughput_rps : float;
  r_offered_rate_rps : float option;
  r_jobs : int;
  r_cores : int;
  r_oversubscribed : bool;
  r_queue : latency;
  r_service : latency;
  r_total : latency;
  r_equiv_every : int;
  r_equiv_checked : int;
  r_equiv_failures : int;
  r_equiv_first_failure : string option;
  r_cache : Plancache.stats;
  r_pool : Commset_exec.Workers.stats;
  r_workloads : workload_report list;
  r_drained : bool;
  r_stopped_by : string;
  r_seed : int option;
  r_burst : float option;
  r_mix : (string * float) list;
  r_services : (string * P.service) list;
}

(* one flag per process: a daemon serves until told to drain *)
let stop = Atomic.make false
let request_stop () = Atomic.set stop true

let c_requests = Metrics.counter ~doc:"serve requests admitted" "serve.requests"
let c_equiv_checked = Metrics.counter ~doc:"serve Equiv samples" "serve.equiv_checks"
let c_equiv_failures = Metrics.counter ~doc:"serve Equiv mismatches" "serve.equiv_failures"

(** One cached compiled workload plus its serve-time counters. *)
type svc = {
  sv : P.service;
  commutative : string -> bool;  (** computed once per compile *)
  served : int Atomic.t;
  tick : int Atomic.t;  (** Equiv sampling clock *)
}

type conn = {
  c_fd : Unix.file_descr;
  c_mu : Mutex.t;  (** serializes worker response writes and close *)
  c_framer : Proto.Framer.t;
  mutable c_closed : bool;
}

type kind = By_name of string | Inline of string

type pending = {
  q_id : int;
  q_kind : kind;
  q_echo : bool;
  q_enqueue_ns : float;
      (** generated requests carry their intended arrival time, so
          coordinator backpressure shows up as queue wait (open loop) *)
  q_conn : conn option;
}

type state = {
  cfg : config;
  cache : svc Plancache.t;
  pool : Workers.t;
  seen : (string, svc) Hashtbl.t;  (** every service ever compiled, by key *)
  seen_mu : Mutex.t;
  queue_h : Metrics.histogram;
  service_h : Metrics.histogram;
  total_h : Metrics.histogram;
  done_ok : int Atomic.t;
  done_err : int Atomic.t;
  equiv_checked : int Atomic.t;
  equiv_failures : int Atomic.t;
  first_failure : string option ref;
  fail_mu : Mutex.t;
}

(* ---------- request execution (worker domains) ---------- *)

let exec_source st ~name ~setup source =
  let key = P.content_key source in
  match
    Plancache.find_or_compile st.cache ~key ~compile:(fun () ->
        let sv =
          P.prepare_service ~name ~setup ~verify:st.cfg.s_verify ~threads:st.cfg.s_threads
            source
        in
        let svc =
          {
            sv;
            commutative = P.service_commutative sv;
            served = Atomic.make 0;
            tick = Atomic.make 0;
          }
        in
        Mutex.lock st.seen_mu;
        Hashtbl.replace st.seen key svc;
        Mutex.unlock st.seen_mu;
        svc)
  with
  | svc, hit -> Ok (svc, hit, P.serve_request svc.sv)
  | exception Diag.Error d -> Error (Diag.to_string d)
  | exception exn -> Error (Printexc.to_string exn)

let sample_equiv st name svc outputs =
  let every = st.cfg.s_equiv_every in
  if every > 0 && Atomic.fetch_and_add svc.tick 1 mod every = 0 then begin
    Atomic.incr st.equiv_checked;
    Metrics.incr c_equiv_checked;
    match
      Equiv.check ~commutative:svc.commutative ~reference:(P.service_reference svc.sv)
        ~actual:outputs
    with
    | Equiv.Exact | Equiv.Commutative_equal -> ()
    | Equiv.Mismatch ->
        Atomic.incr st.equiv_failures;
        Metrics.incr c_equiv_failures;
        Mutex.lock st.fail_mu;
        if !(st.first_failure) = None then
          st.first_failure :=
            Some
              (Printf.sprintf "%s: response stream diverged from the sequential reference"
                 name);
        Mutex.unlock st.fail_mu;
        Log.err (fun m -> m "Equiv mismatch on %s" name)
  end

let respond req resp =
  match req.q_conn with
  | None -> ()
  | Some conn ->
      Mutex.lock conn.c_mu;
      (if not conn.c_closed then
         try Proto.send_frame conn.c_fd (Proto.response_to_json resp)
         with _ -> conn.c_closed <- true (* peer went away; coordinator reaps the fd *));
      Mutex.unlock conn.c_mu

let handle st req =
  Recorder.with_span ~cat:"serve" "serve.request" @@ fun () ->
  let t_start = Clock.now_ns () in
  let queue_ns = Float.max 0. (t_start -. req.q_enqueue_ns) in
  let name, outcome =
    match req.q_kind with
    | By_name n -> (
        match st.cfg.s_lookup n with
        | Error msg -> (n, Error msg)
        | Ok (source, setup) -> (n, exec_source st ~name:n ~setup source))
    | Inline source ->
        let name = "inline:" ^ String.sub (P.content_key source) 0 8 in
        (name, exec_source st ~name ~setup:(fun _ -> ()) source)
  in
  (match outcome with
  | Ok (svc, _, outputs) ->
      Atomic.incr svc.served;
      sample_equiv st name svc outputs
  | Error _ -> ());
  let service_ns = Clock.now_ns () -. t_start in
  (* observe in µs, not ns: the log₂ histogram represents [2⁻³², 2³²),
     and a saturated daemon's queue waits overflow a 2³²-ns (~4.3 s)
     ceiling; 2³² µs (~71 min) does not *)
  Metrics.observe st.queue_h (queue_ns /. 1e3);
  Metrics.observe st.service_h (service_ns /. 1e3);
  Metrics.observe st.total_h ((queue_ns +. service_ns) /. 1e3);
  let base =
    {
      Proto.rs_id = req.q_id;
      rs_error = None;
      rs_workload = name;
      rs_hit = false;
      rs_n_outputs = 0;
      rs_digest = "";
      rs_outputs = None;
      rs_queue_us = queue_ns /. 1e3;
      rs_service_us = service_ns /. 1e3;
    }
  in
  match outcome with
  | Ok (_, hit, outputs) ->
      Atomic.incr st.done_ok;
      respond req
        {
          base with
          rs_hit = hit;
          rs_n_outputs = List.length outputs;
          rs_digest = Digest.to_hex (Digest.string (String.concat "\n" outputs));
          rs_outputs = (if req.q_echo then Some outputs else None);
        }
  | Error msg ->
      Atomic.incr st.done_err;
      Log.warn (fun m -> m "request %d (%s) failed: %s" req.q_id name msg);
      respond req { base with rs_error = Some msg }

(* ---------- coordinator ---------- *)

let close_conn conns conn =
  Mutex.lock conn.c_mu;
  if not conn.c_closed then begin
    conn.c_closed <- true;
    try Unix.close conn.c_fd with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock conn.c_mu;
  conns := List.filter (fun c -> c != conn) !conns

let run ?load ?socket cfg =
  if load = None && socket = None then
    invalid_arg "Server.run: need a generated load and/or a socket";
  Atomic.set stop false;
  let cfg = { cfg with s_jobs = max 1 cfg.s_jobs } in
  let st =
    {
      cfg;
      cache = Plancache.create ~capacity:(max 1 cfg.s_cache_capacity);
      pool = Workers.spawn ~ring:cfg.s_ring ~jobs:cfg.s_jobs ();
      seen = Hashtbl.create 16;
      seen_mu = Mutex.create ();
      queue_h = Metrics.hist_make ();
      service_h = Metrics.hist_make ();
      total_h = Metrics.hist_make ();
      done_ok = Atomic.make 0;
      done_err = Atomic.make 0;
      equiv_checked = Atomic.make 0;
      equiv_failures = Atomic.make 0;
      first_failure = ref None;
      fail_mu = Mutex.create ();
    }
  in
  let listener =
    Option.map
      (fun path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 16;
        Log.info (fun m -> m "listening on %s" path);
        (fd, path))
      socket
  in
  let conns = ref [] in
  let gen = Option.map (fun l -> (Gen.create l.l_spec, ref (max 0 l.l_requests))) load in
  let submitted = ref 0 in
  let next_id = ref 0 in
  let t0 = Clock.now_ns () in
  let now_s () = (Clock.now_ns () -. t0) /. 1e9 in
  let admit ~id ~kind ~echo ~enqueue_ns ~conn =
    incr submitted;
    Metrics.incr c_requests;
    let req = { q_id = id; q_kind = kind; q_echo = echo; q_enqueue_ns = enqueue_ns; q_conn = conn } in
    Workers.submit st.pool (fun () -> handle st req)
  in
  (* one-arrival lookahead into the generator's schedule *)
  let pending_arrival = ref None in
  let fetch () =
    pending_arrival :=
      match gen with
      | Some (g, remaining) when !remaining > 0 ->
          decr remaining;
          Some (Gen.next g)
      | _ -> None
  in
  fetch ();
  let read_chunk = Bytes.create 4096 in
  let service_conn conn =
    match Unix.read conn.c_fd read_chunk 0 (Bytes.length read_chunk) with
    | 0 -> close_conn conns conn
    | n -> (
        match Proto.Framer.feed conn.c_framer read_chunk n with
        | payloads ->
            List.iter
              (fun payload ->
                match Proto.request_of_json payload with
                | Ok r ->
                    let kind =
                      match (r.Proto.rq_workload, r.Proto.rq_source) with
                      | Some w, _ -> By_name w
                      | _, Some s -> Inline s
                      | None, None -> assert false
                    in
                    admit ~id:r.Proto.rq_id ~kind ~echo:r.Proto.rq_echo
                      ~enqueue_ns:(Clock.now_ns ()) ~conn:(Some conn)
                | Error e ->
                    (* malformed frame: answer from the coordinator, keep the conn *)
                    Mutex.lock conn.c_mu;
                    (if not conn.c_closed then
                       try
                         Proto.send_frame conn.c_fd
                           (Proto.response_to_json
                              {
                                Proto.rs_id = 0;
                                rs_error = Some e;
                                rs_workload = "";
                                rs_hit = false;
                                rs_n_outputs = 0;
                                rs_digest = "";
                                rs_outputs = None;
                                rs_queue_us = 0.;
                                rs_service_us = 0.;
                              })
                       with _ -> conn.c_closed <- true);
                    Mutex.unlock conn.c_mu)
              payloads
        | exception Failure e ->
            Log.err (fun m -> m "dropping connection: %s" e);
            close_conn conns conn)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn conns conn
  in
  let select_and_service lfd timeout =
    let fds = lfd :: List.map (fun c -> c.c_fd) !conns in
    match Unix.select fds [] [] timeout with
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = lfd then begin
              let cfd, _ = Unix.accept lfd in
              conns :=
                { c_fd = cfd; c_mu = Mutex.create (); c_framer = Proto.Framer.create (); c_closed = false }
                :: !conns
            end
            else
              match List.find_opt (fun c -> c.c_fd = fd) !conns with
              | Some conn -> service_conn conn
              | None -> ())
          readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let chunked_sleep delay =
    let delay = Float.min delay 0.05 in
    if delay > 0. then
      try Unix.sleepf delay with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let running = ref true in
  while !running && not (Atomic.get stop) do
    match (!pending_arrival, listener) with
    | Some (at, w), _ when at <= now_s () ->
        incr next_id;
        (* enqueue stamp = intended arrival: coordinator lag is queue wait *)
        admit ~id:!next_id ~kind:(By_name w) ~echo:false
          ~enqueue_ns:(t0 +. (at *. 1e9))
          ~conn:None;
        fetch ()
    | Some (at, _), None -> chunked_sleep (at -. now_s ())
    | Some (at, _), Some (lfd, _) ->
        select_and_service lfd (Float.max 0. (Float.min (at -. now_s ()) 0.05))
    | None, Some (lfd, _) -> select_and_service lfd 0.1
    | None, None -> running := false
  done;
  let stopped_by = if Atomic.get stop then "signal" else "completed" in
  Log.info (fun m ->
      m "draining: %d admitted, %d queued (%s)" !submitted (Workers.pending st.pool) stopped_by);
  Workers.shutdown st.pool;
  let t_end = Clock.now_ns () in
  List.iter (fun c -> close_conn conns c) !conns;
  Option.iter
    (fun (fd, path) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    listener;
  let lat h =
    let n = Metrics.hist_count h in
    {
      p50_us = Metrics.hist_quantile h 0.5;
      p95_us = Metrics.hist_quantile h 0.95;
      p99_us = Metrics.hist_quantile h 0.99;
      mean_us = (if n = 0 then 0. else Metrics.hist_sum h /. float_of_int n);
    }
  in
  let served = Atomic.get st.done_ok and failed = Atomic.get st.done_err in
  let duration_s = Float.max 1e-9 ((t_end -. t0) /. 1e9) in
  let workloads =
    Hashtbl.fold
      (fun key svc acc ->
        {
          wr_name = svc.sv.P.sv_name;
          wr_key = key;
          wr_requests = Atomic.get svc.served;
          wr_compile_s = svc.sv.P.sv_compile_s;
          wr_best_plan = Option.map (fun r -> r.P.plan.Plan.label) svc.sv.P.sv_best;
          wr_predicted = Option.map (fun r -> r.P.speedup) svc.sv.P.sv_best;
        }
        :: acc)
      st.seen []
    |> List.sort (fun a b -> compare a.wr_name b.wr_name)
  in
  let cores = Domain.recommended_domain_count () in
  {
    r_offered = !submitted;
    r_served = served;
    r_failed = failed;
    r_duration_s = duration_s;
    r_throughput_rps = float_of_int (served + failed) /. duration_s;
    r_offered_rate_rps = Option.map (fun l -> l.l_spec.Gen.g_rate) load;
    r_jobs = cfg.s_jobs;
    r_cores = cores;
    r_oversubscribed = cores < cfg.s_jobs + 1;
    r_queue = lat st.queue_h;
    r_service = lat st.service_h;
    r_total = lat st.total_h;
    r_equiv_every = cfg.s_equiv_every;
    r_equiv_checked = Atomic.get st.equiv_checked;
    r_equiv_failures = Atomic.get st.equiv_failures;
    r_equiv_first_failure = !(st.first_failure);
    r_cache = Plancache.stats st.cache;
    r_pool = Workers.stats st.pool;
    r_workloads = workloads;
    r_drained = served + failed = !submitted;
    r_stopped_by = stopped_by;
    r_seed = Option.map (fun l -> l.l_spec.Gen.g_seed) load;
    r_burst = Option.map (fun l -> l.l_spec.Gen.g_burst) load;
    r_mix = (match load with Some l -> l.l_spec.Gen.g_mix | None -> []);
    r_services =
      Hashtbl.fold (fun _ svc acc -> (svc.sv.P.sv_name, svc.sv) :: acc) st.seen []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }

(* ---------- report JSON ---------- *)

let esc = Metrics.json_escape

let json_latency l =
  Printf.sprintf {|{"p50_us":%.1f,"p95_us":%.1f,"p99_us":%.1f,"mean_us":%.1f}|} l.p50_us
    l.p95_us l.p99_us l.mean_us

let json_opt_num = function None -> "null" | Some x -> Printf.sprintf "%.6f" x
let json_opt_str = function None -> "null" | Some s -> Printf.sprintf {|"%s"|} (esc s)

let report_json r =
  let cache = r.r_cache in
  let lookups = cache.Plancache.pc_hits + cache.Plancache.pc_misses in
  let hit_rate =
    if lookups = 0 then 1.0 else float_of_int cache.Plancache.pc_hits /. float_of_int lookups
  in
  let workloads =
    r.r_workloads
    |> List.map (fun w ->
           Printf.sprintf
             {|{"name":"%s","key":"%s","requests":%d,"compile_s":%.6f,"best_plan":%s,"predicted_speedup":%s}|}
             (esc w.wr_name) (esc w.wr_key) w.wr_requests w.wr_compile_s
             (json_opt_str w.wr_best_plan)
             (json_opt_num w.wr_predicted))
    |> String.concat ","
  in
  let mix =
    r.r_mix
    |> List.map (fun (n, w) -> Printf.sprintf {|{"name":"%s","weight":%.3f}|} (esc n) w)
    |> String.concat ","
  in
  let s =
    Printf.sprintf
      {|{"requests_offered":%d,"requests_served":%d,"requests_failed":%d,"duration_s":%.6f,"throughput_rps":%.1f,"offered_rate_rps":%s,"jobs":%d,"available_cores":%d,"oversubscribed":%b,"latency_us":{"queue":%s,"service":%s,"total":%s},"equiv":{"every":%d,"checked":%d,"failures":%d,"first_failure":%s},"plan_cache":{"capacity":%d,"entries":%d,"hits":%d,"misses":%d,"evictions":%d,"single_flight_waits":%d,"compile_failures":%d,"hit_rate":%.6f},"pool":{"executed":%d,"task_errors":%d,"backpressure_waits":%d},"workloads":[%s],"drained":%b,"stopped_by":"%s","seed":%s,"burst":%s,"mix":[%s]}|}
      r.r_offered r.r_served r.r_failed r.r_duration_s r.r_throughput_rps
      (json_opt_num r.r_offered_rate_rps)
      r.r_jobs r.r_cores r.r_oversubscribed (json_latency r.r_queue)
      (json_latency r.r_service) (json_latency r.r_total) r.r_equiv_every r.r_equiv_checked
      r.r_equiv_failures
      (json_opt_str r.r_equiv_first_failure)
      cache.Plancache.pc_capacity cache.Plancache.pc_entries cache.Plancache.pc_hits
      cache.Plancache.pc_misses cache.Plancache.pc_evictions cache.Plancache.pc_waits
      cache.Plancache.pc_failures hit_rate r.r_pool.Workers.w_executed
      r.r_pool.Workers.w_task_errors r.r_pool.Workers.w_backpressure workloads r.r_drained
      r.r_stopped_by
      (match r.r_seed with None -> "null" | Some s -> string_of_int s)
      (json_opt_num r.r_burst) mix
  in
  match J.parse s with
  | Ok _ -> s
  | Error e -> failwith ("Server.report_json produced invalid JSON: " ^ e)
