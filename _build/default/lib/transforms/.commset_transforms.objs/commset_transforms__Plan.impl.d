lib/transforms/plan.ml: Commset_runtime Hashtbl List Printf String
