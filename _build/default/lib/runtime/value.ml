(** Runtime values of the miniC interpreter. *)

module Ir = Commset_ir.Ir
open Commset_support

type t =
  | Vint of int
  | Vfloat of float
  | Vbool of bool
  | Vstring of string
  | Varray of t array

let of_const = function
  | Ir.Cint n -> Vint n
  | Ir.Cfloat f -> Vfloat f
  | Ir.Cbool b -> Vbool b
  | Ir.Cstring s -> Vstring s

let to_int ?(what = "value") = function
  | Vint n -> n
  | _ -> Diag.error "runtime: %s is not an int" what

let to_float ?(what = "value") = function
  | Vfloat f -> f
  | _ -> Diag.error "runtime: %s is not a float" what

let to_bool ?(what = "value") = function
  | Vbool b -> b
  | _ -> Diag.error "runtime: %s is not a bool" what

let to_string_val ?(what = "value") = function
  | Vstring s -> s
  | _ -> Diag.error "runtime: %s is not a string" what

let to_array ?(what = "value") = function
  | Varray a -> a
  | _ -> Diag.error "runtime: %s is not an array" what

let rec pp ppf = function
  | Vint n -> Fmt.int ppf n
  | Vfloat f -> Fmt.pf ppf "%g" f
  | Vbool b -> Fmt.bool ppf b
  | Vstring s -> Fmt.pf ppf "%S" s
  | Varray a ->
      Fmt.pf ppf "[|%a|]" Fmt.(list ~sep:(any "; ") pp) (Array.to_list a |> List.filteri (fun i _ -> i < 8))

let to_display_string = function
  | Vint n -> string_of_int n
  | Vfloat f -> Printf.sprintf "%g" f
  | Vbool b -> string_of_bool b
  | Vstring s -> s
  | Varray _ -> "<array>"
