examples/quickstart.mli:
