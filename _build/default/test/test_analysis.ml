(** Tests for the analysis library: dominance, post-dominance, natural
    loops, reaching definitions, induction variables, effects/provenance,
    privatization, purity, and the symbolic predicate interpreter. *)

module L = Commset_lang
module Ir = Commset_ir.Ir
module A = Commset_analysis
module R = Commset_runtime

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let compile src =
  let ast = L.Parser.parse_program ~file:"<test>" src in
  let _ = L.Typecheck.check ~externs:R.Builtins.extern_sigs ast in
  Commset_ir.Lower.lower_program ast

let analyses prog name =
  let func = Option.get (Ir.find_func prog name) in
  let cfg = A.Cfg.of_func func in
  let dom = A.Dominance.compute cfg in
  let loops = A.Loops.compute cfg dom in
  (func, cfg, dom, loops)

let loop_src =
  "void main() { for (int i = 0; i < 9; i++) { if (i > 4) { print(\"hi\"); } } }"

(* ---- dominance ---- *)

let test_dominance () =
  let prog = compile loop_src in
  let _f, cfg, dom, _ = analyses prog "main" in
  let labels = A.Cfg.reachable_labels cfg in
  (* entry dominates everything; every node dominates itself *)
  List.iter
    (fun l ->
      check Alcotest.bool "entry dominates" true (A.Dominance.dominates dom 0 l);
      check Alcotest.bool "reflexive" true (A.Dominance.dominates dom l l))
    labels;
  (* the loop header dominates the body and latch *)
  check Alcotest.bool "header dominates body" true (A.Dominance.dominates dom 1 2);
  check Alcotest.bool "body does not dominate header" false (A.Dominance.dominates dom 2 1);
  (* dominators chain is consistent with idom *)
  List.iter
    (fun l ->
      match A.Dominance.idom dom l with
      | Some d -> check Alcotest.bool "idom dominates" true (A.Dominance.dominates dom d l)
      | None -> check Alcotest.int "only the entry lacks an idom" 0 l)
    labels

let test_postdominance () =
  let prog = compile loop_src in
  let _f, cfg, _, _ = analyses prog "main" in
  let post = A.Dominance.compute_post cfg in
  (* the loop exit post-dominates the header; the 'then' block of the if
     does not post-dominate the if's block *)
  check Alcotest.bool "exit postdominates header" true (A.Dominance.post_dominates post 4 1);
  check Alcotest.bool "then-block not postdominating" false
    (A.Dominance.post_dominates post 5 2)

(* ---- loops ---- *)

let test_loops () =
  let prog =
    compile
      "void main() { for (int i = 0; i < 3; i++) { for (int j = 0; j < 3; j++) { print(\"x\"); } } }"
  in
  let _f, cfg, dom, loops = analyses prog "main" in
  ignore cfg;
  ignore dom;
  check Alcotest.int "two loops" 2 (List.length loops.A.Loops.loops);
  let outer = List.find (fun l -> l.A.Loops.depth = 1) loops.A.Loops.loops in
  let inner = List.find (fun l -> l.A.Loops.depth = 2) loops.A.Loops.loops in
  check Alcotest.bool "inner nested in outer" true (List.mem inner.A.Loops.header outer.A.Loops.body);
  check Alcotest.(option int) "inner parent" (Some outer.A.Loops.header) inner.A.Loops.parent;
  check Alcotest.bool "outer has an exit" true (outer.A.Loops.exits <> [])

(* ---- reaching definitions ---- *)

let test_reaching () =
  let prog =
    compile "void main() { int acc = 0; for (int i = 0; i < 5; i++) { acc = acc + i; } print(int_to_string(acc)); }"
  in
  let func, cfg, dom, loops = analyses prog "main" in
  let loop = List.hd (A.Loops.outermost loops) in
  let reach = A.Reaching.compute cfg loop in
  ignore dom;
  (* find the `acc + i` binop: its use of acc must see a carried def (the
     Move from the previous iteration) and no intra def *)
  let acc_reg = ref (-1) in
  Hashtbl.iter (fun r n -> if n = "acc" then acc_reg := r) func.Ir.reg_names;
  let checked = ref false in
  Ir.iter_instrs func (fun _ i ->
      match i.Ir.desc with
      | Ir.Binop (L.Ast.Add, L.Ast.Tint, _, Ir.Reg a, Ir.Reg _) when a = !acc_reg ->
          checked := true;
          check Alcotest.bool "no intra def of acc" true
            (A.Reaching.intra_defs reach ~use_iid:i.Ir.iid ~reg:a = []);
          check Alcotest.bool "carried def of acc" true
            (A.Reaching.carried_defs reach ~use_iid:i.Ir.iid ~reg:a <> [])
      | _ -> ());
  check Alcotest.bool "found the accumulation" true !checked

let test_reaching_killed () =
  (* a variable reassigned at the top of every iteration never carries *)
  let prog =
    compile "void main() { for (int i = 0; i < 5; i++) { int t = i * 2; print(int_to_string(t)); } }"
  in
  let func, cfg, _, loops = analyses prog "main" in
  let loop = List.hd (A.Loops.outermost loops) in
  let reach = A.Reaching.compute cfg loop in
  let t_reg = ref (-1) in
  Hashtbl.iter (fun r n -> if n = "t" then t_reg := r) func.Ir.reg_names;
  Ir.iter_instrs func (fun _ i ->
      if List.mem !t_reg (Ir.instr_uses i) then
        check Alcotest.bool "t never carried" true
          (A.Reaching.carried_defs reach ~use_iid:i.Ir.iid ~reg:!t_reg = []))

(* ---- induction variables ---- *)

let test_induction () =
  let prog =
    compile
      "void main() { for (int i = 0; i < 10; i++) { int k = i * 4 + 1; print(int_to_string(k)); } }"
  in
  let func, cfg, dom, loops = analyses prog "main" in
  let loop = List.hd (A.Loops.outermost loops) in
  let ind = A.Induction.compute func cfg dom loop in
  (match A.Induction.basic_ivs ind with
  | [ iv ] -> check Alcotest.int "step" 1 iv.A.Induction.step
  | _ -> Alcotest.fail "expected exactly one basic IV");
  let k_reg = ref (-1) and i_reg = ref (-1) in
  Hashtbl.iter
    (fun r n -> if n = "k" then k_reg := r else if n = "i" then i_reg := r)
    func.Ir.reg_names;
  (match A.Induction.classify ind (Ir.Reg !k_reg) with
  | A.Induction.Affine { mul = 4; add = 1; _ } -> ()
  | _ -> Alcotest.fail "k should be affine 4*i+1");
  (match A.Induction.classify ind (Ir.Reg !i_reg) with
  | A.Induction.Affine { mul = 1; add = 0; _ } -> ()
  | _ -> Alcotest.fail "i is the IV itself");
  match A.Induction.classify ind (Ir.Const (Ir.Cint 3)) with
  | A.Induction.Invariant -> ()
  | _ -> Alcotest.fail "constants are invariant"

let test_no_induction_in_pointer_chase () =
  let prog =
    compile
      "void main() { graph_build_nodes(8); int n = graph_first(); while (n >= 0) { n = graph_next(n); } }"
  in
  let func, cfg, dom, loops = analyses prog "main" in
  let loop = List.hd (A.Loops.outermost loops) in
  let ind = A.Induction.compute func cfg dom loop in
  check Alcotest.int "no basic IV in a linked-list walk" 0
    (List.length (A.Induction.basic_ivs ind))

(* ---- symbolic predicate interpreter ---- *)

let sym_env affine1 affine2 =
  [ ("a", affine1); ("b", affine2) ]

let parse_expr = L.Parser.parse_expr_string

let test_symexec () =
  let open A.Symexec in
  let iv1 side = Sint { iv_id = 7; side; mul = 1; add = 0 } in
  (* a != b with both sides the IV, distinct iterations: provable *)
  check Alcotest.bool "iv inequality across iterations" true
    (prove Distinct_iterations (sym_env (iv1 Side1) (iv1 Side2)) (parse_expr "a != b"));
  (* same iteration: the predicate is false, not provable *)
  check Alcotest.bool "same iteration not provable" false
    (prove Same_iteration (sym_env (iv1 Side1) (iv1 Side2)) (parse_expr "a != b"));
  (* affine with equal coefficients: still distinct *)
  let aff side = Sint { iv_id = 7; side; mul = 3; add = 5 } in
  check Alcotest.bool "affine inequality" true
    (prove Distinct_iterations (sym_env (aff Side1) (aff Side2)) (parse_expr "a != b"));
  (* different multipliers: unknown, hence not provable *)
  let aff2 side = Sint { iv_id = 7; side; mul = 2; add = 0 } in
  check Alcotest.bool "mixed multipliers unprovable" false
    (prove Distinct_iterations (sym_env (aff Side1) (aff2 Side2)) (parse_expr "a != b"));
  (* invariant operands are equal on both sides *)
  let inv = Ssym (3, Side1) in
  check Alcotest.bool "invariant equality disproves" false
    (prove Distinct_iterations (sym_env inv inv) (parse_expr "a != b"));
  (* arithmetic on the predicate side: (a + 1) != (b + 1) *)
  check Alcotest.bool "arith both sides" true
    (prove Distinct_iterations (sym_env (iv1 Side1) (iv1 Side2))
       (parse_expr "(a + 1) != (b + 1)"));
  (* constants fold *)
  check Alcotest.bool "constant true" true
    (prove Same_iteration [] (parse_expr "1 != 2"));
  check Alcotest.bool "disjunction" true
    (prove Distinct_iterations (sym_env (iv1 Side1) (iv1 Side2))
       (parse_expr "false || a != b"))

(* property: the symbolic verdict 'provable' implies every concrete
   instantiation with distinct IV values satisfies the predicate *)
let prop_symexec_sound =
  QCheck.Test.make ~name:"symexec proofs are sound on concrete values" ~count:300
    QCheck.(triple (int_bound 6) (pair small_int small_int) (pair small_int small_int))
    (fun (shape, (x1, x2), (mul_raw, add)) ->
      let mul = 1 + (abs mul_raw mod 5) in
      let exprs =
        [| "a != b"; "a + 1 != b + 1"; "a * 2 != b * 2"; "b != a"; "a != b || a == b";
           "a - b != 0"; "a != b && true" |]
      in
      let src = exprs.(shape) in
      let e = parse_expr src in
      let open A.Symexec in
      let aff side = Sint { iv_id = 1; side; mul; add } in
      let provable = prove Distinct_iterations (sym_env (aff Side1) (aff Side2)) e in
      if not provable then true (* nothing claimed *)
      else if x1 = x2 then true (* fact requires distinct iterations *)
      else begin
        (* concrete evaluation of the predicate *)
        let v1 = (mul * x1) + add and v2 = (mul * x2) + add in
        let rec eval (e : L.Ast.expr) =
          match e.L.Ast.edesc with
          | L.Ast.Int_lit n -> `I n
          | L.Ast.Bool_lit b -> `B b
          | L.Ast.Var "a" -> `I v1
          | L.Ast.Var "b" -> `I v2
          | L.Ast.Binop (op, l, r) -> (
              match (op, eval l, eval r) with
              | L.Ast.Add, `I a, `I b -> `I (a + b)
              | L.Ast.Sub, `I a, `I b -> `I (a - b)
              | L.Ast.Mul, `I a, `I b -> `I (a * b)
              | L.Ast.Eq, `I a, `I b -> `B (a = b)
              | L.Ast.Neq, `I a, `I b -> `B (a <> b)
              | L.Ast.And, `B a, `B b -> `B (a && b)
              | L.Ast.Or, `B a, `B b -> `B (a || b)
              | _ -> `B false)
          | _ -> `B false
        in
        eval e = `B true
      end)

(* ---- effects and privatization ---- *)

let effects_of src =
  let prog = compile src in
  (prog, A.Effects.analyze R.Builtins.lookup_spec prog)

let test_effects_builtin () =
  let prog, eff = effects_of "void main() { print(\"x\"); int f = fopen(\"p\"); }" in
  let func = Option.get (Ir.find_func prog "main") in
  let saw_print = ref false and saw_open = ref false in
  Ir.iter_instrs func (fun _ i ->
      let rw = A.Effects.instr_rw eff ~fname:"main" i in
      match Ir.callee_of i with
      | Some "print" ->
          saw_print := true;
          check Alcotest.bool "print writes stdout" true
            (A.Effects.LocSet.mem (A.Effects.Lext "io.stdout") rw.A.Effects.writes)
      | Some "fopen" ->
          saw_open := true;
          check Alcotest.bool "fopen writes fdtable" true
            (A.Effects.LocSet.mem (A.Effects.Lext "io.fdtable") rw.A.Effects.writes)
      | _ -> ());
  check Alcotest.bool "saw both" true (!saw_print && !saw_open)

let test_effects_interprocedural () =
  let prog, eff =
    effects_of
      "int g = 0; void helper() { g = g + 1; } void main() { helper(); }"
  in
  let func = Option.get (Ir.find_func prog "main") in
  Ir.iter_instrs func (fun _ i ->
      match Ir.callee_of i with
      | Some "helper" ->
          let rw = A.Effects.instr_rw eff ~fname:"main" i in
          check Alcotest.bool "callee summary propagates" true
            (A.Effects.LocSet.mem (A.Effects.Lglobal "g") rw.A.Effects.writes)
      | _ -> ());
  ignore prog

let test_effects_param_arrays () =
  let prog, eff =
    effects_of
      "void fill(float[] m) { m[0] = 1.0; } void main() { float[] a = farray(3); fill(a); }"
  in
  ignore prog;
  match A.Effects.summary eff "fill" with
  | Some sm ->
      check Alcotest.bool "writes heap of param 0" true
        (A.Effects.LocSet.mem
           (A.Effects.Lheap (A.Effects.Sparam 0))
           sm.A.Effects.sm_rw.A.Effects.writes)
  | None -> Alcotest.fail "no summary for fill"

let test_conflicts () =
  let open A.Effects in
  let w loc = { reads = LocSet.empty; writes = LocSet.singleton loc } in
  let r loc = { reads = LocSet.singleton loc; writes = LocSet.empty } in
  check Alcotest.bool "w/w conflict" true (conflict (w (Lext "rng")) (w (Lext "rng")));
  check Alcotest.bool "r/w conflict" true (conflict (r (Lglobal "g")) (w (Lglobal "g")));
  check Alcotest.bool "r/r no conflict" false (conflict (r (Lext "a")) (r (Lext "a")));
  check Alcotest.bool "distinct no conflict" false (conflict (w (Lext "a")) (w (Lext "b")));
  check Alcotest.bool "unknown conflicts" true (conflict (w Lunknown) (r (Lext "a")))

let test_privatization () =
  let prog, eff =
    effects_of
      "void main() { for (int i = 0; i < 4; i++) { int[] a = iarray(8); a[0] = i; print(int_to_string(a[0])); } }"
  in
  let func, cfg, dom, loops = analyses prog "main" in
  ignore cfg;
  ignore dom;
  let loop = List.hd (A.Loops.outermost loops) in
  let priv = A.Privatization.compute eff R.Builtins.lookup_spec func loop in
  let a_reg = ref (-1) in
  Hashtbl.iter (fun r n -> if n = "a" then a_reg := r) func.Ir.reg_names;
  check Alcotest.bool "fresh per-iteration array is private" true
    (A.Privatization.is_private priv !a_reg)

let test_privatization_escape () =
  let prog, eff =
    effects_of
      "int[] keep; void main() { for (int i = 0; i < 4; i++) { int[] a = iarray(8); a[0] = i; keep = a; } }"
  in
  let func, cfg, dom, loops = analyses prog "main" in
  ignore cfg;
  ignore dom;
  let loop = List.hd (A.Loops.outermost loops) in
  let priv = A.Privatization.compute eff R.Builtins.lookup_spec func loop in
  let a_reg = ref (-1) in
  Hashtbl.iter (fun r n -> if n = "a" then a_reg := r) func.Ir.reg_names;
  check Alcotest.bool "escaping array is not private" false
    (A.Privatization.is_private priv !a_reg)

(* ---- purity ---- *)

let test_purity () =
  let lookup = R.Builtins.lookup_spec in
  let pure e = A.Purity.expr_verdict lookup None (parse_expr e) = A.Purity.Pure in
  check Alcotest.bool "arith pure" true (pure "a + b * 2 != 0");
  check Alcotest.bool "pure builtin ok" true (pure "imin(a, b) > 0");
  check Alcotest.bool "rng impure" false (pure "rng_int(4) != a");
  check Alcotest.bool "array read impure" false (pure "a[0] != 1")

(* ---- call graph ---- *)

let test_callgraph () =
  let prog =
    compile "void c() { } void b() { c(); } void a() { b(); } void main() { a(); }"
  in
  let cg = A.Callgraph.build prog in
  check Alcotest.bool "direct" true (A.Callgraph.calls cg "a" "b");
  check Alcotest.bool "transitive" true (A.Callgraph.transitively_calls cg "a" "c");
  check Alcotest.bool "not backwards" false (A.Callgraph.transitively_calls cg "c" "a");
  check Alcotest.bool "main not recursive" false (A.Callgraph.is_recursive cg "main")

let suite =
  ( "analysis",
    [
      Alcotest.test_case "dominance" `Quick test_dominance;
      Alcotest.test_case "post-dominance" `Quick test_postdominance;
      Alcotest.test_case "natural loops" `Quick test_loops;
      Alcotest.test_case "reaching: carried accumulator" `Quick test_reaching;
      Alcotest.test_case "reaching: killed per iteration" `Quick test_reaching_killed;
      Alcotest.test_case "induction variables" `Quick test_induction;
      Alcotest.test_case "pointer chase has no IV" `Quick test_no_induction_in_pointer_chase;
      Alcotest.test_case "symexec verdicts" `Quick test_symexec;
      Alcotest.test_case "builtin effects" `Quick test_effects_builtin;
      Alcotest.test_case "interprocedural effects" `Quick test_effects_interprocedural;
      Alcotest.test_case "param array effects" `Quick test_effects_param_arrays;
      Alcotest.test_case "conflicts" `Quick test_conflicts;
      Alcotest.test_case "privatization" `Quick test_privatization;
      Alcotest.test_case "privatization escape" `Quick test_privatization_escape;
      Alcotest.test_case "purity" `Quick test_purity;
      Alcotest.test_case "call graph" `Quick test_callgraph;
      qcheck prop_symexec_sound;
    ] )
