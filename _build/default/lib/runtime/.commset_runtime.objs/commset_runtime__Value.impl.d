lib/runtime/value.ml: Array Commset_ir Commset_support Diag Fmt List Printf
