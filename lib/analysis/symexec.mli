(** Symbolic interpretation of COMMSET predicates (paper §4.4): prove that
    a predicate such as [(i1 != i2)] always holds when its parameter lists
    are bound to two member instances' actuals under a fact about their
    iterations (distinct, by strict monotonicity of a basic induction
    variable, or equal). *)

module Ast = Commset_lang.Ast

type tribool = True | False | Maybe

(** Which of the two instances a symbolic value belongs to. *)
type side = Side1 | Side2

type sval =
  | Sbool of tribool
  | Sint of { iv_id : int; side : side; mul : int; add : int }
      (** [mul·IV(side) + add]; [mul = 0] encodes the constant [add];
          negative [iv_id]s below [-1] are pseudo-IVs for per-iteration
          fresh values such as allocation handles *)
  | Ssym of int * side  (** opaque value, equal only to itself on the same side *)
  | Sinj of string * sval
      (** [f(v)] for an injective [f]: equal iff descriptors and
          arguments are equal, incomparable across descriptors *)
  | Stop  (** unknown *)

val tri_not : tribool -> tribool
val tri_and : tribool -> tribool -> tribool
val tri_or : tribool -> tribool -> tribool

type iteration_fact = Distinct_iterations | Same_iteration

type env = (string * sval) list

val const_int : int -> sval

(** Are two symbolic integers equal, under the iteration fact? *)
val int_eq : iteration_fact -> sval -> sval -> tribool

(** Three-valued evaluation of a predicate body. *)
val eval : iteration_fact -> env -> Ast.expr -> sval

(** [prove fact env body]: is the predicate definitely true? *)
val prove : iteration_fact -> env -> Ast.expr -> bool

(** Bind the two parameter lists to the two instances' symbolic actuals. *)
val bind_params :
  params1:string list ->
  params2:string list ->
  actuals1:sval list ->
  actuals2:sval list ->
  env

(** Symbolic value of a classified operand on one side; [sym_id] must be
    stable (e.g. the register number) so the same invariant operand gets
    equal symbols on both sides. *)
val sval_of_classification : side -> Induction.classification -> sym_id:int -> sval
