lib/runtime/sim.mli: Costmodel Set Value
