(** Per-iteration execution traces of a target loop: one sequential run
    attributes every simulated cycle, builtin call, output line and
    predicate actual to the PDG node that produced it; the parallel
    simulator replays these traces under a parallelization plan. *)

module Ir = Commset_ir.Ir
module Pdg = Commset_pdg.Pdg

type atom =
  | Acompute of float
  | Abuiltin of {
      bname : string;
      cost : float;
      resources : string list;
      thread_safe : bool;
      tm_safe : bool;
    }
  | Aout of string

(** Predicate actuals observed for one dynamic member instance. *)
type actuals =
  | Aregion_sets of (string * Value.t list) list  (** set -> actual values *)
  | Acall_args of string * Value.t list  (** callee, argument values *)

type node_exec = {
  nid : int;
  mutable atoms : atom list;  (** reverse order *)
  mutable eactuals : actuals list;  (** reverse order, one per instance *)
}

type iteration = {
  mutable execs : node_exec list;  (** reverse order of first execution *)
  exec_tbl : (int, node_exec) Hashtbl.t;
}

type t = {
  iterations : iteration array;
  other_cost : float;  (** cycles outside the target loop *)
  outputs_before : string list;
  outputs_after : string list;
  seq_outputs : string list;  (** full sequential output, in order *)
  seq_total : float;  (** total sequential cycles *)
}

val exec_atoms : node_exec -> atom list
val exec_actuals : node_exec -> actuals list
val iteration_execs : iteration -> node_exec list
val atom_cost : atom -> float
val exec_cost : node_exec -> float
val iteration_cost : iteration -> float
val n_iterations : t -> int

(** Average simulated cost of one instance of a node, for pipeline
    balancing. *)
val node_mean_cost : t -> int -> float

(** Total cost of all loop iterations. *)
val loop_cost : t -> float

(** Run the program once sequentially and record the trace of the PDG's
    target loop. Passing [?prepared] (from [Precompile.prepare] of the
    same program) records on the prepared-program engine. *)
val record : ?machine:Machine.t -> ?prepared:Precompile.t -> Ir.program -> Pdg.t -> t * Machine.t

(** Update PDG node weights in place from the trace (profile-guided
    pipeline balancing, §4.5). *)
val apply_weights : t -> Pdg.t -> unit
