(** Parallelization plans: the output of the transforms, consumed by the
    segment emitter and the simulator. *)

type sync_variant = Mutex | Spin | Tm | Lib | Spec

let sync_variant_to_string = function
  | Mutex -> "Mutex"
  | Spin -> "Spin"
  | Tm -> "TM"
  | Lib -> "Lib"
  | Spec -> "Spec"

type stage = {
  snodes : int list;  (** PDG node ids (loop-control nodes excluded) *)
  sparallel : bool;  (** can be replicated onto several threads *)
  sthreads : int;  (** replicas assigned *)
}

type shape =
  | Sdoall
  | Sdswp of stage list  (** includes PS-DSWP when a stage has sthreads > 1 *)

(** Runtime-checked (speculative) commutativity context, attached to
    [Spec]-variant plans: which nodes run as speculative transactions,
    how their recorded trace actuals resolve to per-set key values, and
    the concrete commutativity check the simulator consults on
    transaction-footprint overlap. *)
type spec_ctx = {
  sc_members : (int, string) Hashtbl.t;  (** node id -> member identity *)
  sc_resolve :
    int -> Commset_runtime.Trace.actuals -> (string * Commset_runtime.Value.t list) list;
  sc_commutes :
    Commset_runtime.Sim.spec_info -> Commset_runtime.Sim.spec_info -> bool;
}

type t = {
  shape : shape;
  threads : int;
  variant : sync_variant;
  node_locks : (int, string list) Hashtbl.t;
      (** node id -> commset names whose locks it must hold, in rank order *)
  uses_commset : bool;  (** did commutativity annotations enable this plan? *)
  label : string;  (** full description, e.g. "Comm-PS-DSWP[DOALL:6|S] + Spin" *)
  series : string;  (** thread-count-independent name for speedup curves *)
  spec_ctx : spec_ctx option;  (** present on [Spec]-variant plans *)
}

let is_psdswp t =
  match t.shape with
  | Sdswp stages -> List.exists (fun s -> s.sthreads > 1) stages
  | Sdoall -> false

let shape_name t =
  match t.shape with
  | Sdoall -> "DOALL"
  | Sdswp stages ->
      if is_psdswp t then
        Printf.sprintf "PS-DSWP[%s]"
          (String.concat "|"
             (List.map (fun s -> if s.sthreads > 1 then Printf.sprintf "P%d" s.sthreads else "S") stages))
      else Printf.sprintf "DSWP[%d]" (List.length stages)

let describe t =
  Printf.sprintf "%s%s + %s (%d threads)"
    (if t.uses_commset then "Comm-" else "")
    (shape_name t)
    (sync_variant_to_string t.variant)
    t.threads
